// The write-back race conditions of Section 2.3 (transactions 13, 14a,
// 14b), forced deterministically and narrated step by step.  These are the
// "subtleties of directory protocols" the paper's introduction highlights:
// a processor's write-back must be acknowledged precisely so these races
// can be told apart from the common case.
#include <iostream>

#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/program.hpp"

using namespace lcdc;

namespace {

using proto::MsgType;
using workload::evict;
using workload::load;
using workload::store;

constexpr BlockId A = 0;

struct Demo {
  trace::Trace trace;
  sim::System sys;

  Demo()
      : sys(
            [] {
              SystemConfig cfg;
              cfg.numProcessors = 2;
              cfg.numDirectories = 1;
              cfg.numBlocks = 1;
              return cfg;
            }(),
            trace, net::Network::Mode::Manual) {}

  bool deliver(MsgType type, NodeId dst, const char* note) {
    const bool ok = sys.deliverManualFirst([&](const net::Envelope& e) {
      return e.msg.type == type && e.dst == dst;
    });
    std::cout << "  " << (ok ? "->" : "!!") << ' ' << note << '\n';
    return ok;
  }

  bool finish() {
    while (!sys.network().empty()) sys.deliverManual(0);
    const auto report = verify::checkAll(trace, verify::VerifyConfig{2});
    std::cout << "  verification: " << report.summary() << "\n\n";
    return report.ok() && sys.quiescent();
  }
};

bool transaction13() {
  std::cout << "Transaction 13 — write-back races a forwarded Get-Shared:\n";
  Demo d;
  d.sys.setProgram(0, {{store(A, 0, 0xA1), evict(A)}});
  d.sys.setProgram(1, {{load(A, 0)}});
  d.sys.kick(0);
  d.deliver(MsgType::GetX, d.sys.home(A), "N1 takes A read-write");
  d.deliver(MsgType::DataExclusive, 0,
            "N1 stores to A; its eviction sends a Writeback (in flight)");
  d.sys.kick(1);
  d.deliver(MsgType::GetS, d.sys.home(A),
            "N2's Get-Shared: home goes Busy-Shared, forwards to N1");
  d.deliver(MsgType::Writeback, d.sys.home(A),
            "the Writeback lands at the busy home: requests are COMBINED — "
            "home serves N2 from the written-back data and busy-acks N1");
  d.deliver(MsgType::WbBusyAck, 0,
            "N1 learns its forward must be ignored (it has not arrived yet)");
  d.deliver(MsgType::FwdGetS, 0, "the stale forward arrives and is dropped");
  d.deliver(MsgType::DataShared, 1, "N2 reads N1's value");
  return d.finish();
}

bool transaction14a() {
  std::cout << "Transaction 14a — write-back races a forwarded "
               "Get-Exclusive:\n";
  Demo d;
  d.sys.setProgram(0, {{store(A, 0, 0xA1), evict(A)}});
  d.sys.setProgram(1, {{store(A, 0, 0xA2)}});
  d.sys.kick(0);
  d.deliver(MsgType::GetX, d.sys.home(A), "N1 takes A read-write");
  d.deliver(MsgType::DataExclusive, 0,
            "N1 stores; its eviction sends a Writeback (in flight)");
  d.sys.kick(1);
  d.deliver(MsgType::GetX, d.sys.home(A),
            "N2's Get-Exclusive: home goes Busy-Exclusive, forwards to N1");
  d.deliver(MsgType::Writeback, d.sys.home(A),
            "the Writeback lands at the busy home: home hands N2 the "
            "written-back block WITH ownership, busy-acks N1");
  d.deliver(MsgType::WbBusyAck, 0, "N1 will drop the stale forward");
  d.deliver(MsgType::FwdGetX, 0, "...which arrives now and is dropped");
  d.deliver(MsgType::OwnerData, 1, "N2 becomes the owner and stores");
  return d.finish();
}

bool transaction14b() {
  std::cout << "Transaction 14b — the new owner's write-back beats the old "
               "owner's update:\n";
  Demo d;
  d.sys.setProgram(0, {{store(A, 0, 0xA1)}});
  d.sys.setProgram(1, {{store(A, 0, 0xA2), evict(A)}});
  d.sys.kick(0);
  d.deliver(MsgType::GetX, d.sys.home(A), "N1 takes A read-write");
  d.deliver(MsgType::DataExclusive, 0, "N1 stores to A");
  d.sys.kick(1);
  d.deliver(MsgType::GetX, d.sys.home(A),
            "N2's Get-Exclusive is forwarded to owner N1");
  d.deliver(MsgType::FwdGetX, 0,
            "N1 hands the block to N2 and sends an update to the home "
            "(the update dawdles in the network)");
  d.deliver(MsgType::OwnerData, 1,
            "N2 owns A, stores, and its eviction writes back immediately");
  d.deliver(MsgType::Writeback, d.sys.home(A),
            "the Writeback arrives while the home is still Busy-Exclusive "
            "and CACHED names the write-backer: home accepts the data, acks, "
            "and waits in Busy-Idle");
  d.deliver(MsgType::WbAck, 1, "N2 invalidates its copy");
  d.deliver(MsgType::UpdateX, d.sys.home(A),
            "the straggling update finally lands: Busy-Idle -> Idle");
  return d.finish();
}

}  // namespace

int main() {
  std::cout << "Write-back races (Section 2.3, transactions 13/14)\n"
            << "===================================================\n\n";
  const bool ok = transaction13() & transaction14a() & transaction14b();
  std::cout << (ok ? "All three races resolved correctly and verified.\n"
                   : "FAILURE: a race did not resolve cleanly.\n");
  return ok ? 0 : 1;
}
