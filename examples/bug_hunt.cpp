// Bug hunting with Lamport clocks: inject a realistic coherence bug into
// the protocol, run a contended workload, and let the Section 3 checkers
// produce a precise diagnosis — the executable version of the paper's
// pitch that its technique is "precise (unlike informal arguments) and
// intuitive (unlike formal arguments)".
//
//   $ ./bug_hunt                       # default: skip-inv-ack-wait
//   $ ./bug_hunt stale-data-from-home
//   $ ./bug_hunt ignore-invalidation
//   $ ./bug_hunt forward-stale-value
//   $ ./bug_hunt no-busy-nack
#include <cstring>
#include <iostream>

#include "common/expect.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

using namespace lcdc;

int main(int argc, char** argv) {
  Mutant mutant = Mutant::SkipInvAckWait;
  if (argc > 1) {
    const Mutant all[] = {Mutant::SkipInvAckWait, Mutant::StaleDataFromHome,
                          Mutant::IgnoreInvalidation,
                          Mutant::ForwardStaleValue, Mutant::NoBusyNack};
    bool found = false;
    for (const Mutant m : all) {
      if (std::strcmp(argv[1], toString(m)) == 0) {
        mutant = m;
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown mutant '" << argv[1] << "'\n";
      return 2;
    }
  }

  std::cout << "Injected bug: " << toString(mutant) << "\n\n";

  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 6;
    cfg.numDirectories = 2;
    cfg.numBlocks = 6;
    cfg.cacheCapacity = 2;
    cfg.seed = seed;
    cfg.proto.mutant = mutant;

    workload::WorkloadConfig w;
    w.numProcessors = cfg.numProcessors;
    w.numBlocks = cfg.numBlocks;
    w.wordsPerBlock = cfg.proto.wordsPerBlock;
    w.opsPerProcessor = 800;
    w.storePercent = 50;
    w.evictPercent = 12;
    w.seed = seed * 31 + 7;
    const auto programs = workload::hotBlock(w, 85, 3);

    trace::Trace trace;
    sim::System system(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    try {
      const sim::RunResult result = system.run(20'000'000);
      if (!result.ok()) {
        std::cout << "seed " << seed << ": progress failure ("
                  << toString(result.outcome) << ")\n";
        return 0;
      }
      const auto report =
          verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
      if (!report.ok()) {
        std::cout << "seed " << seed << ": caught after " << result.opsBound
                  << " operations.  Diagnosis:\n\n";
        std::size_t shown = 0;
        for (const auto& v : report.violations) {
          std::cout << "  [" << v.check << "]\n    " << v.detail << "\n";
          if (++shown == 5) break;
        }
        std::cout << "\n(" << report.violations.size()
                  << " violations total; each names the operations, "
                     "transactions and epochs\ninvolved — the precise, "
                     "localized counterexample the paper promises.)\n";
        return 0;
      }
      std::cout << "seed " << seed << ": not triggered yet\n";
    } catch (const ProtocolError& e) {
      std::cout << "seed " << seed
                << ": protocol invariant violated (Appendix-B style "
                   "impossibility fired):\n  "
                << e.what() << '\n';
      return 0;
    }
  }
  std::cout << "bug never triggered in 50 seeds (unexpected)\n";
  return 1;
}
