// Consistency models beyond SC (the paper's Section 5 future work), live:
// give each processor a FIFO store buffer with load forwarding and run
// Dekker's litmus test.
//
//   p0:  St x = 1 ; Ld y          p1:  St y = 1 ; Ld x
//
// Sequential consistency forbids both loads returning 0; TSO (the store
// buffers delay the stores past the loads) allows it.  The run shows the
// Lamport-clock framework telling the two models apart: the same trace is
// *rejected* by the SC checker and *accepted* by the TSO checker.
#include <cstdlib>

#include "common/expect.hpp"
#include <iostream>
#include <map>

#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/program.hpp"

using namespace lcdc;

namespace {

struct Outcome {
  Word p0 = 0, p1 = 0;
  bool scOk = false, tsoOk = false;
};

Outcome dekker(std::uint32_t storeBufferDepth, std::uint64_t seed) {
  using workload::load;
  using workload::store;
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 2;
  cfg.storeBufferDepth = storeBufferDepth;
  cfg.seed = seed;
  trace::Trace trace;
  sim::System sys(cfg, trace);
  sys.setProgram(0, {{store(0, 0, 1), load(1, 0)}});
  sys.setProgram(1, {{store(1, 0, 1), load(0, 0)}});
  if (!sys.run().ok()) throw SimError("litmus run failed");
  Outcome out;
  for (const auto& op : trace.operations()) {
    if (op.kind != OpKind::Load) continue;
    (op.proc == 0 ? out.p0 : out.p1) = op.value;
  }
  verify::VerifyConfig sc{2};
  out.scOk = verify::checkAll(trace, sc).ok();
  verify::VerifyConfig tso{2};
  tso.tso = true;
  out.tsoOk = verify::checkAll(trace, tso).ok();
  return out;
}

void sweep(const char* label, std::uint32_t depth, std::uint64_t seeds) {
  std::map<std::pair<Word, Word>, int> histogram;
  int scRejects = 0, tsoRejects = 0;
  for (std::uint64_t s = 1; s <= seeds; ++s) {
    const Outcome o = dekker(depth, s);
    histogram[{o.p0, o.p1}] += 1;
    scRejects += !o.scOk;
    tsoRejects += !o.tsoOk;
  }
  std::cout << label << " (" << seeds << " seeds):\n";
  for (const auto& [k, n] : histogram) {
    std::cout << "  p0 reads " << k.first << ", p1 reads " << k.second
              << "  x" << n
              << (k.first == 0 && k.second == 0 ? "   <- forbidden under SC"
                                                : "")
              << '\n';
  }
  std::cout << "  SC checker rejected " << scRejects << " runs; TSO checker "
            << "rejected " << tsoRejects << ".\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seeds =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60;
  std::cout << "Dekker's litmus: p0{St x=1; Ld y}  ||  p1{St y=1; Ld x}\n\n";
  sweep("SC processors (no store buffer)", 0, seeds);
  sweep("TSO processors (store buffer depth 4)", 4, seeds);
  std::cout << "The 0/0 outcome appears only with store buffers, and only "
               "the SC checker\nrejects it — the Lamport total order is a "
               "TSO witness there, not an SC one.\n";
  return 0;
}
