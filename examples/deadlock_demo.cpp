// The Figure 2 deadlock, live: silent eviction (Put-Shared) plus buffered
// invalidations wedge two nodes — unless the requester applies the
// Section 2.5 implicit-acknowledgment fix.
//
//   $ ./deadlock_demo           # with the fix (completes)
//   $ ./deadlock_demo --broken  # without it (deadlocks, on purpose)
#include <cstring>
#include <iostream>

#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/program.hpp"

using namespace lcdc;

int main(int argc, char** argv) {
  using proto::MsgType;
  using workload::evict;
  using workload::load;
  using workload::store;

  const bool broken = argc > 1 && std::strcmp(argv[1], "--broken") == 0;

  std::cout <<
      "Figure 2 (the Put-Shared deadlock):\n"
      "  N1 had block A read-only, silently evicted it, and re-requests it.\n"
      "  N2's Get-Exclusive wins the race; the home invalidates N1's stale\n"
      "  CACHED entry and forwards N1's request to N2.\n"
      "  N1 buffers the invalidation behind its outstanding request;\n"
      "  N2 buffers the forward behind its missing invalidation ack.\n"
      "  Deadlock detection is " << (broken ? "OFF" : "ON") << ".\n\n";

  trace::Trace trace;
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 1;
  if (broken) cfg.proto.mutant = Mutant::NoDeadlockDetection;
  sim::System sys(cfg, trace, net::Network::Mode::Manual);
  const NodeId n1 = 0, n2 = 1;
  const BlockId A = 0;

  sys.setProgram(n1, {{load(A, 0), evict(A), load(A, 0)}});
  sys.setProgram(n2, {{store(A, 0, 0xA2)}});

  auto deliver = [&](MsgType type, NodeId dst, const char* note) {
    if (sys.deliverManualFirst([&](const net::Envelope& e) {
          return e.msg.type == type && e.dst == dst;
        })) {
      std::cout << "  -> " << note << '\n';
    }
  };

  sys.kick(n1);
  deliver(MsgType::GetS, sys.home(A), "N1 Get-Shared(A) -> home");
  deliver(MsgType::DataShared, n1,
          "N1 reads A, Put-Shareds it, re-requests it (GETS in flight)");
  sys.kick(n2);
  deliver(MsgType::GetX, sys.home(A),
          "home serializes N2's GETX: invalidation -> N1 (in flight)");
  deliver(MsgType::GetS, sys.home(A),
          "home (Exclusive) forwards N1's GETS -> N2");
  deliver(MsgType::FwdGetS, n2, "forward reaches N2 (no reply yet: buffered)");
  deliver(MsgType::DataExclusive, n2,
          "N2's reply arrives: it now knows it awaits N1's ack");
  while (!sys.network().empty()) sys.deliverManual(0);

  if (!sys.allProgramsDone()) {
    std::cout <<
        "\nDEADLOCK: no messages in flight, but\n"
        "  N1 waits for data for block A (invalidation buffered), and\n"
        "  N2 waits for N1's invalidation ack (forward buffered).\n"
        "This is exactly the cycle of Figure 2.  Re-run without --broken.\n";
    return broken ? 0 : 1;
  }

  const auto& n2stats = sys.processor(n2).cache().stats();
  const auto& n1stats = sys.processor(n1).cache().stats();
  std::cout <<
      "\nCompleted.  What happened instead of the deadlock (Section 2.5):\n"
      "  * N2 recognized the forwarded request came from the very node it\n"
      "    awaits an ack from, and took it as an implicit ack ("
      << n2stats.deadlocksResolved << " resolution);\n"
      "  * N2 bound its store FIRST, then sent A to N1 with 'ignore the\n"
      "    buffered invalidation' (" << n1stats.invsDropped
      << " invalidation dropped, unacknowledged);\n"
      "  * N1's second load of A therefore sees N2's store.\n\n";

  const auto report = verify::checkAll(trace, verify::VerifyConfig{2});
  std::cout << "verification: " << report.summary() << '\n';
  return report.ok() ? 0 : 1;
}
