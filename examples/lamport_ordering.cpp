// A guided walk through the paper's Section 3.2 example (Tables 2 and 3):
// how Lamport clocks order a load *before* a store that physically
// completed later — and why that inversion is exactly what makes the
// execution sequentially consistent.
//
// We drive the network manually so the race happens the same way every
// time, then print the execution twice: in physical order and in Lamport
// order.
#include <algorithm>
#include <iostream>
#include <vector>

#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/program.hpp"

using namespace lcdc;

int main() {
  using proto::MsgType;
  using workload::load;
  using workload::store;

  std::cout <<
      "Two nodes, two blocks (Section 3.2 of the paper).\n"
      "  N1 holds block A read-only and block B read-write.\n"
      "  N2 wants block A read-write and will invalidate N1.\n\n";

  trace::Trace trace;
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 2;
  sim::System sys(cfg, trace, net::Network::Mode::Manual);
  const NodeId n1 = 0, n2 = 1;
  const BlockId A = 0, B = 1;

  sys.setProgram(n1, {{load(A, 0), store(B, 0, 0xB1), load(A, 0)}});
  sys.setProgram(n2, {{store(A, 0, 0xA2)}});

  auto deliver = [&](MsgType type, NodeId dst, const char* note) {
    const bool ok = sys.deliverManualFirst([&](const net::Envelope& e) {
      return e.msg.type == type && e.dst == dst;
    });
    std::cout << (ok ? "  -> " : "  !! ") << note << '\n';
    return ok;
  };

  std::cout << "Physical schedule:\n";
  sys.kick(n1);
  deliver(MsgType::GetS, sys.home(A), "N1's Get-Shared(A) reaches the home");
  deliver(MsgType::DataShared, n1, "N1 caches A read-only");
  deliver(MsgType::GetX, sys.home(B), "N1's Get-Exclusive(B) reaches the home");
  sys.kick(n2);
  std::cout << "  -> N2 sends Get-Exclusive for A (in flight)\n";
  deliver(MsgType::DataExclusive, n1,
          "N1 owns B: binds 'store to B', then binds 'load from A'");
  deliver(MsgType::GetX, sys.home(A),
          "home serializes N2's Get-Exclusive: invalidation sweeps towards N1");
  deliver(MsgType::Inv, n1, "N1 invalidates A and acks N2");
  deliver(MsgType::InvAck, n2, "N2 collects the ack and binds 'store to A'");
  while (!sys.network().empty()) sys.deliverManual(0);

  std::cout << "\nThe recorded LD/ST operations, in PHYSICAL (binding) "
               "order:\n";
  for (const auto& op : trace.operations()) {
    std::cout << "  p" << op.proc << ' ' << toString(op.kind) << " block "
              << (op.block == A ? 'A' : 'B') << " = " << std::hex
              << op.value << std::dec << "   Lamport ts "
              << toString(op.ts) << '\n';
  }

  std::cout << "\n...and re-sorted into LAMPORT order (the hypothetical "
               "total order of the\nsequential-consistency definition):\n";
  std::vector<proto::OpRecord> ops(trace.operations().begin(),
                                   trace.operations().end());
  std::sort(ops.begin(), ops.end(),
            [](const proto::OpRecord& a, const proto::OpRecord& b) {
              return a.ts < b.ts;
            });
  for (const auto& op : ops) {
    std::cout << "  " << toString(op.ts) << "  p" << op.proc << ' '
              << toString(op.kind) << " block " << (op.block == A ? 'A' : 'B')
              << " = " << std::hex << op.value << std::dec << '\n';
  }

  std::cout <<
      "\nNote the inversion: N1's second load of A binds while N2's store is "
      "already\nunder way, yet Lamport time places the load (with its "
      "pre-store value) before\nthe store — a legal sequentially consistent "
      "ordering.  The checkers agree:\n";
  const auto report = verify::checkAll(trace, verify::VerifyConfig{2});
  std::cout << "  " << report.summary() << '\n';
  return report.ok() ? 0 : 1;
}
