// The companion-paper extension: verify a snooping-*bus* MSI protocol with
// the identical checker suite.  Where the directory protocol's clocks tick
// per node, a bus gives every node the same global ruler — the bus sequence
// number — and a node's clock is simply the last bus command it has
// processed.  Epochs, claims, lemmas and the Main Theorem carry over
// unchanged.
#include <iostream>

#include "bus/bus_system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace lcdc;

  bus::BusConfig cfg;
  cfg.numProcessors = 8;
  cfg.numBlocks = 16;
  cfg.cacheCapacity = 4;    // evictions: write-backs + silent drops
  cfg.snoopDelayMax = 24;   // nodes see the bus order at different times
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 23;

  workload::WorkloadConfig w;
  w.numProcessors = cfg.numProcessors;
  w.numBlocks = cfg.numBlocks;
  w.wordsPerBlock = cfg.wordsPerBlock;
  w.opsPerProcessor = 3000;
  w.storePercent = 40;
  w.evictPercent = 8;
  w.seed = cfg.seed;
  const auto programs = workload::uniformRandom(w);

  trace::Trace trace;
  bus::BusSystem system(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    system.setProgram(p, programs[p]);
  }
  const bus::BusRunResult run = system.run();
  std::cout << "bus simulation: " << toString(run.outcome) << " — "
            << run.grants << " bus transactions ("
            << run.upgradeConversions << " upgrades converted to BusRdX by "
            << "the arbiter), " << run.opsBound << " LD/ST operations, "
            << system.silentEvictions() << " silent evictions\n";
  if (!run.ok()) return 1;

  // The exact same verifier as the directory protocol:
  const auto report =
      verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
  std::cout << "verification (same checkers as the directory protocol): "
            << report.summary() << '\n';
  if (!report.ok()) {
    for (const auto& v : report.violations) {
      std::cout << "  [" << v.check << "] " << v.detail << '\n';
    }
    return 1;
  }
  std::cout << "Note: silent eviction needed *no* deadlock machinery here — "
               "bus invalidations\nare never acknowledged, so the Figure 2 "
               "cycle cannot form.\n";
  return 0;
}
