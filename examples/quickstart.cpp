// Quickstart: simulate an SGI-Origin-2000-like directory protocol under an
// unordered network, timestamp every protocol event with Lamport clocks,
// and verify that the execution is sequentially consistent.
//
//   $ ./quickstart [seed]
//
// This walks the whole public API surface in ~60 lines:
//   1. configure a system (processors, directories, blocks, network),
//   2. generate a workload and run it to quiescence,
//   3. run the Section 3 checkers (Claims 2-4, Lemmas 1-3, Main Theorem)
//      over the recorded trace.
#include <cstdlib>
#include <iostream>

#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace lcdc;

  // 1. The target system of the paper's Figure 1.
  SystemConfig cfg;
  cfg.numProcessors = 8;    // processing nodes (CPU + cache + NI)
  cfg.numDirectories = 4;   // directory nodes (directory slice + memory)
  cfg.numBlocks = 64;       // coherence-block-granularity memory
  cfg.cacheCapacity = 8;    // per-node cache capacity -> evictions happen
  cfg.minLatency = 1;       // unordered network: per-message latency
  cfg.maxLatency = 40;      //   in [1, 40] ticks, so messages overtake
  cfg.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1998;

  // 2. A contended read/write/evict mix, then run to quiescence.
  workload::WorkloadConfig wl;
  wl.numProcessors = cfg.numProcessors;
  wl.numBlocks = cfg.numBlocks;
  wl.wordsPerBlock = cfg.proto.wordsPerBlock;
  wl.opsPerProcessor = 5000;
  wl.storePercent = 40;
  wl.evictPercent = 8;
  wl.seed = cfg.seed;
  const auto programs = workload::uniformRandom(wl);

  trace::Trace trace;  // records transactions, stamps, operations
  sim::System system(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    system.setProgram(p, programs[p]);
  }
  const sim::RunResult run = system.run();
  std::cout << "simulation: " << toString(run.outcome) << " after "
            << run.eventsProcessed << " events (" << run.opsBound
            << " LD/ST operations, " << trace.serializations().size()
            << " coherence transactions)\n";
  if (!run.ok()) return 1;

  // 3. Verify the execution against the paper's claims and lemmas.
  const verify::CheckReport report =
      verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
  std::cout << "verification: " << report.summary() << '\n';
  if (!report.ok()) {
    for (const auto& v : report.violations) {
      std::cout << "  [" << v.check << "] " << v.detail << '\n';
    }
    return 1;
  }
  std::cout << "sequential consistency established: every load returned the "
               "most recent\nstore in the Lamport total order.\n";
  return 0;
}
