// Experiment S16: time-to-detection, coverage-guided fuzzing vs. random
// campaigning (extends S3/S9 to the fuzz stage).
//
// For every seeded mutant of all three backends, this harness measures how
// many executions each strategy needs before the first failing case:
//
//   * fuzz   — campaign::runFuzz with fuzzStopOnFailure (corpus-guided
//              waves, swarm sampling, Pct/Fifo mode flips);
//   * random — the classic independent derivation, executed sequentially
//              until the first failure (the S3 discipline).
//
// Each row reports the median over several independent master seeds, so
// one lucky draw doesn't decide the comparison.  The harness exits 0 iff
// the fuzzer matches or beats the random baseline's median for every
// backend — the acceptance bar for the fuzz stage — and additionally
// replays every corpus entry twice to confirm saved inputs reproduce the
// same verdict byte-for-byte.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/corpus.hpp"
#include "common/expect.hpp"

using namespace lcdc;

namespace {

struct Row {
  ProtocolKind protocol;
  Mutant mutant;
};

const Row kRows[] = {
    {ProtocolKind::Directory, Mutant::SkipInvAckWait},
    {ProtocolKind::Directory, Mutant::StaleDataFromHome},
    {ProtocolKind::Directory, Mutant::IgnoreInvalidation},
    {ProtocolKind::Directory, Mutant::ForwardStaleValue},
    {ProtocolKind::Directory, Mutant::NoBusyNack},
    {ProtocolKind::Directory, Mutant::NoDeadlockDetection},
    {ProtocolKind::Bus, Mutant::IgnoreInvalidation},
    {ProtocolKind::Tardis, Mutant::DropLeaseBump},
};

constexpr std::uint64_t kBudget = 512;  ///< executions per trial (miss = 512)
constexpr std::uint64_t kTrials = 5;    ///< independent master seeds per row

std::uint64_t median(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Executions until the fuzz stage's first failure (kBudget on a miss).
std::uint64_t fuzzDetect(const Row& row, std::uint64_t masterSeed) {
  campaign::CampaignConfig cfg;
  cfg.protocol = row.protocol;
  cfg.mutant = row.mutant;
  cfg.fuzz = true;
  cfg.fuzzStopOnFailure = true;
  cfg.seeds = kBudget;
  cfg.masterSeed = masterSeed;
  cfg.minimize = false;
  const campaign::CampaignResult r = campaign::run(cfg);
  return r.fuzz.firstFailureExecution == 0 ? kBudget
                                           : r.fuzz.firstFailureExecution;
}

/// Executions until the first failing random derivation (the S3 loop).
std::uint64_t randomDetect(const Row& row, std::uint64_t masterSeed) {
  campaign::CampaignConfig cfg;
  cfg.protocol = row.protocol;
  cfg.mutant = row.mutant;
  cfg.masterSeed = masterSeed;
  for (std::uint64_t i = 0; i < kBudget; ++i) {
    const campaign::CaseSpec spec = campaign::deriveCase(cfg, i);
    const campaign::CaseOutcome o = campaign::runCase(spec, 5'000'000);
    if (!o.clean()) return i + 1;
  }
  return kBudget;
}

/// Grow one pristine-protocol corpus and replay every entry twice:
/// identical outcomes or the persistence story is broken.
bool corpusReplayDeterministic() {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "lcdc-s16-corpus").string();
  fs::remove_all(dir);
  campaign::CampaignConfig cfg;
  cfg.fuzz = true;
  cfg.seeds = 128;
  cfg.masterSeed = 616;
  cfg.minimize = false;
  cfg.corpusDir = dir;
  (void)campaign::run(cfg);
  const std::vector<campaign::CaseSpec> corpus = campaign::loadCorpus(dir);
  bool ok = !corpus.empty();
  for (const campaign::CaseSpec& spec : corpus) {
    const campaign::CaseOutcome a = campaign::runCase(spec, 5'000'000);
    const campaign::CaseOutcome b = campaign::runCase(spec, 5'000'000);
    ok = ok && a.signature == b.signature && a.opsBound == b.opsBound &&
         a.txnsSerialized == b.txnsSerialized &&
         a.coverage.counts == b.coverage.counts;
  }
  std::cout << "corpus replay: " << corpus.size() << " entries, "
            << (ok ? "deterministic" : "DIVERGED") << '\n';
  fs::remove_all(dir);
  return ok;
}

}  // namespace

int main() {
  std::cout << "S16: median executions to first detection over " << kTrials
            << " master seeds, budget " << kBudget << " (miss = " << kBudget
            << ")\n\n";
  std::cout << "backend  mutant                 fuzz  random\n";

  // Per-backend totals of row medians; the acceptance bar compares these.
  std::map<ProtocolKind, std::pair<std::uint64_t, std::uint64_t>> totals;
  for (const Row& row : kRows) {
    std::vector<std::uint64_t> fz, rd;
    for (std::uint64_t t = 0; t < kTrials; ++t) {
      fz.push_back(fuzzDetect(row, 100 + t));
      rd.push_back(randomDetect(row, 100 + t));
    }
    const std::uint64_t fm = median(fz);
    const std::uint64_t rm = median(rd);
    totals[row.protocol].first += fm;
    totals[row.protocol].second += rm;
    std::cout << toString(row.protocol);
    for (std::size_t i = std::string(toString(row.protocol)).size(); i < 9;
         ++i) {
      std::cout << ' ';
    }
    std::cout << toString(row.mutant);
    for (std::size_t i = std::string(toString(row.mutant)).size(); i < 23;
         ++i) {
      std::cout << ' ';
    }
    std::cout << fm << "     " << rm << '\n';
  }

  bool ok = true;
  std::cout << '\n';
  for (const auto& [protocol, t] : totals) {
    const bool beats = t.first <= t.second;
    ok = ok && beats;
    std::cout << toString(protocol) << ": fuzz " << t.first << " vs random "
              << t.second << " (summed medians) — "
              << (beats ? "fuzzer matches or beats random" : "FUZZER SLOWER")
              << '\n';
  }
  ok = corpusReplayDeterministic() && ok;
  return ok ? 0 : 1;
}
