// Experiment S3: does the verification technique actually catch bugs?
//
// Each row injects one realistic coherence bug (Mutant) into the protocol
// and hunts for it with the Lamport-clock checkers over randomized
// contended runs.  Reported: which detector fires first, after how many
// seeds, and how many bound operations the failing run had — i.e. the
// technique's bug-finding latency.
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "common/expect.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

using namespace lcdc;

namespace {

struct Hunt {
  bool caught = false;
  std::string how = "-";
  std::string lamportView = "-";  ///< what the checkers say about the
                                  ///  failing run's (possibly partial) trace
  std::uint64_t seedsTried = 0;
  std::uint64_t opsInFailingRun = 0;
  double seconds = 0;
};

Hunt hunt(Mutant mutant) {
  Hunt h;
  bench::Stopwatch timer;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    h.seedsTried = seed;
    SystemConfig cfg;
    cfg.numProcessors = 6;
    cfg.numDirectories = 2;
    cfg.numBlocks = 6;
    cfg.cacheCapacity = 2;
    cfg.seed = seed;
    cfg.proto.mutant = mutant;

    workload::WorkloadConfig w;
    w.numProcessors = cfg.numProcessors;
    w.numBlocks = cfg.numBlocks;
    w.wordsPerBlock = cfg.proto.wordsPerBlock;
    w.opsPerProcessor = 800;
    w.storePercent = 50;
    w.evictPercent = 12;
    w.seed = seed * 31 + 7;
    const auto programs = workload::hotBlock(w, 85, 3);

    trace::Trace trace;
    sim::System system(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    const auto lamportOnPartial = [&] {
      verify::VerifyConfig vc{cfg.numProcessors};
      vc.expectComplete = false;  // the run was cut short
      const auto partial = verify::checkAll(trace, vc);
      return partial.ok() ? std::string("clean so far")
                          : "flags " + partial.violations.front().check;
    };
    try {
      const sim::RunResult result = system.run(20'000'000);
      h.opsInFailingRun = result.opsBound;
      if (result.outcome == sim::RunResult::Outcome::Deadlock ||
          result.outcome == sim::RunResult::Outcome::Livelock) {
        h.caught = true;
        h.how = std::string("watchdog: ") + toString(result.outcome);
        h.lamportView = lamportOnPartial();
        break;
      }
      const auto report =
          verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
      if (!report.ok()) {
        h.caught = true;
        h.how = "checker: " + report.violations.front().check;
        h.lamportView = "flags " + report.violations.front().check;
        break;
      }
    } catch (const ProtocolError&) {
      h.caught = true;
      h.how = "Appendix-B invariant";
      h.lamportView = lamportOnPartial();
      break;
    }
  }
  h.seconds = timer.seconds();
  return h;
}

}  // namespace

int main() {
  bench::banner("S3 — fault injection: Lamport-clock checkers vs protocol bugs");

  const Mutant mutants[] = {
      Mutant::None,
      Mutant::SkipInvAckWait,
      Mutant::StaleDataFromHome,
      Mutant::IgnoreInvalidation,
      Mutant::ForwardStaleValue,
      Mutant::NoBusyNack,
      Mutant::NoDeadlockDetection,
  };

  bench::Table t({"injected bug", "caught", "first detector",
                  "Lamport checkers on failing trace", "seeds tried",
                  "time (s)"});
  bool allGood = true;
  for (const Mutant m : mutants) {
    const Hunt h = hunt(m);
    const bool expectedCaught = m != Mutant::None;
    if (h.caught != expectedCaught) allGood = false;
    t.row(toString(m),
          h.caught ? "yes" : (m == Mutant::None ? "no (correct)" : "NO"),
          h.how, h.lamportView, h.seedsTried, h.seconds);
  }
  t.print();
  std::cout << "\nEvery injected bug is caught on the first seed.  Two "
               "detection layers work\ntogether: the always-on Appendix-B "
               "impossibility checks trip the moment the\nprotocol deviates "
               "structurally, and the Lamport-clock checkers flag the\n"
               "trace (sequential consistency, epochs, claims) even when "
               "the run is cut\nshort — while the faithful protocol is "
               "never flagged (no false positives).\n";
  return allGood ? 0 : 1;
}
