// Experiment S6 — the companion result (paper reference [23], Sections 1
// and 5): the same Lamport-clock lemma structure verifies a *bus* protocol;
// "only the proofs of the timestamping claims differ".
//
// This bench runs identical workloads through the directory protocol and
// the snooping-bus protocol and pushes both traces through the *identical*
// verify::checkAll suite — same Lemmas 1-3, same Claims, same Main Theorem,
// zero protocol-specific checker code.
#include <iostream>

#include "bench_util.hpp"
#include "bus/bus_system.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

using namespace lcdc;

namespace {

struct Row {
  std::string protocol;
  std::uint64_t ops = 0;
  std::uint64_t txns = 0;
  std::uint64_t epochs = 0;
  std::string verdict;
  double verifySec = 0;
};

Row runDirectory(const std::vector<workload::Program>& programs,
                 NodeId procs, BlockId blocks, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.numProcessors = procs;
  cfg.numDirectories = std::max<NodeId>(1, procs / 2);
  cfg.numBlocks = blocks;
  cfg.cacheCapacity = 4;
  cfg.seed = seed;
  trace::Trace trace;
  sim::System system(cfg, trace);
  for (NodeId p = 0; p < procs; ++p) system.setProgram(p, programs[p]);
  const sim::RunResult r = system.run();
  bench::Stopwatch timer;
  const auto report = verify::checkAll(trace, verify::VerifyConfig{procs});
  Row row;
  row.protocol = "directory (SGI-Origin-like)";
  row.ops = trace.operations().size();
  row.txns = trace.serializations().size();
  row.epochs = report.epochsBuilt;
  row.verdict = !r.ok() ? toString(r.outcome)
                        : (report.ok() ? "verified SC" : "VIOLATION");
  row.verifySec = timer.seconds();
  return row;
}

Row runBus(const std::vector<workload::Program>& programs, NodeId procs,
           BlockId blocks, std::uint64_t seed) {
  bus::BusConfig cfg;
  cfg.numProcessors = procs;
  cfg.numBlocks = blocks;
  cfg.cacheCapacity = 4;
  cfg.snoopDelayMax = 24;
  cfg.seed = seed;
  trace::Trace trace;
  bus::BusSystem system(cfg, trace);
  for (NodeId p = 0; p < procs; ++p) system.setProgram(p, programs[p]);
  const bus::BusRunResult r = system.run();
  bench::Stopwatch timer;
  const auto report = verify::checkAll(trace, verify::VerifyConfig{procs});
  Row row;
  row.protocol = "snooping bus (MSI)";
  row.ops = trace.operations().size();
  row.txns = trace.serializations().size();
  row.epochs = report.epochsBuilt;
  row.verdict = !r.ok() ? toString(r.outcome)
                        : (report.ok() ? "verified SC" : "VIOLATION");
  row.verifySec = timer.seconds();
  return row;
}

}  // namespace

int main() {
  bench::banner(
      "S6 — one verifier, two protocols (the companion result, ref. [23])");

  bench::Table t({"workload", "protocol", "ops", "txns", "epochs",
                  "verify (s)", "result"});
  struct Wl {
    const char* name;
    std::vector<workload::Program> (*make)(const workload::WorkloadConfig&);
  };
  const Wl wls[] = {
      {"uniform", workload::uniformRandom},
      {"migratory", workload::migratory},
      {"producer-consumer", workload::producerConsumer},
      {"false-sharing", workload::falseSharing},
  };
  bool allOk = true;
  for (const Wl& wl : wls) {
    const NodeId procs = 8;
    const BlockId blocks = 8;
    workload::WorkloadConfig w;
    w.numProcessors = procs;
    w.numBlocks = blocks;
    w.wordsPerBlock = 4;
    w.opsPerProcessor = 1500;
    w.storePercent = 40;
    w.evictPercent = 8;
    w.seed = 1998;
    const auto programs = wl.make(w);

    const Row d = runDirectory(programs, procs, blocks, 7);
    const Row b = runBus(programs, procs, blocks, 7);
    allOk = allOk && d.verdict == "verified SC" && b.verdict == "verified SC";
    t.row(wl.name, d.protocol, d.ops, d.txns, d.epochs, d.verifySec,
          d.verdict);
    t.row("", b.protocol, b.ops, b.txns, b.epochs, b.verifySec, b.verdict);
  }
  t.print();
  std::cout << "\nThe checker suite (Lemmas 1-3, Claims 2-3, the Main "
               "Theorem) is byte-for-byte\nthe same for both protocols; only "
               "the protocols' timestamping rules differ —\nexactly the "
               "paper's claim about its companion bus result.\n";
  return allOk ? 0 : 1;
}
