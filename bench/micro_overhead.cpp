// Experiment S4: micro-costs of the verification technique
// (google-benchmark).  If Lamport-clock checking is to be used as an
// always-on dynamic verifier (the executable form of the paper's
// technique), its per-event costs must be negligible next to the protocol
// work itself.
#include <benchmark/benchmark.h>

#include "clock/lamport.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

namespace {

using namespace lcdc;

/// One canonical mid-size trace shared by the checker benchmarks.
const trace::Trace& fixtureTrace() {
  static const trace::Trace trace = [] {
    trace::Trace t;
    SystemConfig cfg;
    cfg.numProcessors = 8;
    cfg.numDirectories = 4;
    cfg.numBlocks = 32;
    cfg.cacheCapacity = 6;
    cfg.seed = 2026;
    workload::WorkloadConfig w;
    w.numProcessors = cfg.numProcessors;
    w.numBlocks = cfg.numBlocks;
    w.wordsPerBlock = cfg.proto.wordsPerBlock;
    w.opsPerProcessor = 4000;
    w.storePercent = 40;
    w.evictPercent = 8;
    w.seed = 5;
    const auto programs = workload::uniformRandom(w);
    sim::System system(cfg, t);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    (void)system.run();
    return t;
  }();
  return trace;
}

void BM_OpStamping(benchmark::State& state) {
  clk::OpStamper stamper(0);
  GlobalTime txnTs = 1;
  std::uint64_t i = 0;
  for (auto _ : state) {
    if ((++i & 0xFF) == 0) ++txnTs;  // occasional epoch advance
    benchmark::DoNotOptimize(stamper.stamp(txnTs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OpStamping);

void BM_EpochConstruction(benchmark::State& state) {
  const trace::Trace& t = fixtureTrace();
  const verify::VerifyConfig cfg{8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::buildEpochs(t, cfg));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * t.stamps().size()));
}
BENCHMARK(BM_EpochConstruction);

void BM_ScReplay(benchmark::State& state) {
  const trace::Trace& t = fixtureTrace();
  const verify::VerifyConfig cfg{8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::checkSequentialConsistency(t, cfg));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * t.operations().size()));
}
BENCHMARK(BM_ScReplay);

void BM_ClaimChecks(benchmark::State& state) {
  const trace::Trace& t = fixtureTrace();
  const verify::VerifyConfig cfg{8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::checkClaim2(t, cfg));
    benchmark::DoNotOptimize(verify::checkClaim3(t, cfg));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * t.stamps().size()));
}
BENCHMARK(BM_ClaimChecks);

void BM_FullVerification(benchmark::State& state) {
  const trace::Trace& t = fixtureTrace();
  const verify::VerifyConfig cfg{8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::checkAll(t, cfg));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * t.operations().size()));
}
BENCHMARK(BM_FullVerification);

void BM_SimulationWithTracing(benchmark::State& state) {
  for (auto _ : state) {
    trace::Trace t;
    SystemConfig cfg;
    cfg.numProcessors = 4;
    cfg.numDirectories = 2;
    cfg.numBlocks = 16;
    cfg.seed = 11;
    workload::WorkloadConfig w;
    w.numProcessors = cfg.numProcessors;
    w.numBlocks = cfg.numBlocks;
    w.wordsPerBlock = cfg.proto.wordsPerBlock;
    w.opsPerProcessor = 500;
    w.seed = 3;
    const auto programs = workload::uniformRandom(w);
    sim::System system(cfg, t);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    benchmark::DoNotOptimize(system.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 2000));
}
BENCHMARK(BM_SimulationWithTracing)->Unit(benchmark::kMillisecond);

void BM_SimulationNoTracing(benchmark::State& state) {
  for (auto _ : state) {
    SystemConfig cfg;
    cfg.numProcessors = 4;
    cfg.numDirectories = 2;
    cfg.numBlocks = 16;
    cfg.seed = 11;
    workload::WorkloadConfig w;
    w.numProcessors = cfg.numProcessors;
    w.numBlocks = cfg.numBlocks;
    w.wordsPerBlock = cfg.proto.wordsPerBlock;
    w.opsPerProcessor = 500;
    w.seed = 3;
    const auto programs = workload::uniformRandom(w);
    sim::System system(cfg, proto::nullSink());
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    benchmark::DoNotOptimize(system.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 2000));
}
BENCHMARK(BM_SimulationNoTracing)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
