// Reproduction of Table 3: the same execution as bench/table2_physical_time
// re-sorted by Lamport timestamps.  The headline property of the paper's
// example: N1's load from A orders *before* N2's store to A in Lamport time
// (with the load returning the pre-store value), even though the store
// completed later in physical time — the timestamps construct a
// sequentially consistent witness order.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "scenario_tables.hpp"

using namespace lcdc;

int main() {
  bench::banner("Table 3 — 2 nodes, 2 blocks, Lamport time");

  bench::ScenarioResult r = bench::runTables23Scenario();
  if (!r.verified) {
    std::cerr << "scenario failed verification: " << r.verifySummary << '\n';
    return 1;
  }

  std::sort(r.events.begin(), r.events.end(),
            [](const bench::ScenarioEvent& a, const bench::ScenarioEvent& b) {
              if (a.lamport != b.lamport) return a.lamport < b.lamport;
              if (a.local != b.local) return a.local < b.local;
              return a.node < b.node;
            });

  bench::Table t({"Timestamp", "N1", "N2"});
  for (const auto& ev : r.events) {
    std::string ts = std::to_string(ev.lamport);
    if (ev.local != 0) ts += "." + std::to_string(ev.local);
    t.row(ts, ev.node == 0 ? ev.what : "", ev.node == 1 ? ev.what : "");
  }
  t.print();

  // The pivotal inversion, checked programmatically.
  const auto find = [&](NodeId n, const std::string& what) {
    for (const auto& ev : r.events) {
      if (ev.node == n && ev.what == what) return ev;
    }
    return bench::ScenarioEvent{};
  };
  const auto loadA = find(0, "load from A");
  const auto storeA = find(1, "store to A");
  const auto storeB = find(0, "store to B");
  std::cout << "\nKey orderings (as in the paper's Table 3):\n"
            << "  * N1's 'store to B' and 'load from A' share global time "
            << storeB.lamport << " (locals " << storeB.local << " and "
            << loadA.local << ");\n"
            << "  * N1's load from A (t=" << loadA.lamport
            << ") orders BEFORE N2's store to A (t=" << storeA.lamport
            << ") in Lamport time,\n    so the load's pre-store value is "
               "sequentially consistent.\n";
  return 0;
}
