// Experiment S9: campaign throughput scaling — seeds/second of the
// parallel verification campaign as the worker count grows.
//
// The paper's scalability argument (Section 4) is about one execution; the
// campaign subsystem multiplies it: every sub-run (simulate + full checker
// suite) is independent, so throughput should scale with cores until the
// memory system saturates.  This bench sweeps --jobs over {1,2,4,8} on a
// fixed mixed campaign and reports seeds/s, speedup over one worker, and
// how much work-stealing the pool needed.
//
// Note: numbers depend on the hardware parallelism actually available —
// on a single-core container every jobs level collapses to ~1x, and the
// recorded EXPERIMENTS.md entry says so explicitly.
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "campaign/campaign.hpp"

using namespace lcdc;

int main(int argc, char** argv) {
  const std::uint64_t seeds = argc > 1 ? std::stoull(argv[1]) : 192;

  std::cout << "S9 — campaign throughput scaling (" << seeds
            << " mixed seeds per point, hardware threads: "
            << std::thread::hardware_concurrency() << ")\n\n";

  bench::Table table(
      {"jobs", "wall s", "seeds/s", "speedup", "stolen", "failures"});
  double baseline = 0;
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    campaign::CampaignConfig cfg;
    cfg.masterSeed = 2026;
    cfg.seeds = seeds;
    cfg.jobs = jobs;
    cfg.minimize = false;
    const campaign::CampaignResult r = campaign::run(cfg);
    const double perSec =
        r.seconds > 0 ? static_cast<double>(r.seedsRun) / r.seconds : 0.0;
    if (jobs == 1) baseline = perSec;
    table.row(jobs, r.seconds, perSec,
              baseline > 0 ? perSec / baseline : 0.0,
              r.pool.tasksStolen, r.failures.size());
  }
  table.print();
  return 0;
}
