// S13 — steady-state throughput of the simulate-and-verify loop.
//
// The campaign's unit of work is "seed one System, run it to quiescence,
// verify the event stream online" (Figure 1's target system driven under
// the Section 3.2 checkers).  This bench measures that loop the way the
// campaign consumes it: a per-worker System and checker set reused across
// sub-runs via System::reset, with the whole event hot path — message
// fields, network queue, envelope storage — required to stay off the heap
// at steady state.
//
// Heap traffic is counted exactly, by overriding global operator new in
// this translation unit; "steady state" is every repetition after the
// first (the warm-up rep grows pools, slabs and small-vector spill space
// to their high-water marks).
//
// Modes:
//   (default)              throughput + allocation table over a workload mix
//   --fresh                construct a new System per rep (the seed engine's
//                          behaviour; the A/B for EXPERIMENTS.md S13)
//   --hashes               print the seed-equivalence fingerprint matrix
//                          (tests/seed_equiv_test.cpp pins these values)
//   --floor-events-per-sec F   exit 1 if steady-state events/s < F  (CI)
//   --max-allocs-per-event A   exit 1 if steady-state allocs/event > A (CI)
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <optional>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "bench_util.hpp"
#include "run_fingerprint.hpp"
#include "sim/perf.hpp"
#include "sim/system.hpp"
#include "verify/stream.hpp"
#include "workload/generators.hpp"

// -- exact heap-allocation accounting ----------------------------------------

namespace {
std::atomic<std::uint64_t> gAllocs{0};
}

void* operator new(std::size_t n) {
  gAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace lcdc;

struct Options {
  std::uint64_t ops = 20'000;
  std::uint64_t reps = 5;
  std::uint64_t hashSeeds = 20;
  bool hashes = false;
  bool fresh = false;
  double floorEventsPerSec = 0;
  double maxAllocsPerEvent = -1;
};

SystemConfig benchConfig(std::uint64_t seed) {
  SystemConfig sys;
  sys.numProcessors = 8;
  sys.numDirectories = 4;
  sys.numBlocks = 64;
  sys.cacheCapacity = 4;
  sys.minLatency = 1;
  sys.maxLatency = 40;
  sys.seed = seed;
  return sys;
}

struct RepResult {
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  std::uint64_t opsBound = 0;
  double seconds = 0;
  net::CalendarStats queue;
};

/// One measured repetition against a caller-prepared System.
RepResult measureRun(sim::System& system,
                     const std::vector<workload::Program>& progs) {
  for (NodeId p = 0; p < system.config().numProcessors; ++p) {
    system.setProgram(p, progs[p]);
  }
  const std::uint64_t a0 = gAllocs.load(std::memory_order_relaxed);
  bench::Stopwatch timer;
  const sim::RunResult r = system.run();
  RepResult rep;
  rep.seconds = timer.seconds();
  rep.allocs = gAllocs.load(std::memory_order_relaxed) - a0;
  rep.events = r.eventsProcessed;
  rep.opsBound = r.opsBound;
  rep.queue = system.network().queueStats();
  if (!r.ok()) {
    std::cerr << "bench run did not quiesce: " << toString(r.outcome) << '\n';
    std::exit(2);
  }
  return rep;
}

int runThroughput(const Options& opt) {
  const workload::Kind kinds[] = {workload::Kind::Hot, workload::Kind::Uniform,
                                  workload::Kind::Migratory};
  bench::Table table({"workload", "rep", "events", "seconds", "events/s",
                      "allocs", "allocs/event"});
  double steadyEvents = 0, steadySeconds = 0, steadyAllocs = 0;
  sim::SimPerfCounters steady;

  for (const workload::Kind kind : kinds) {
    const SystemConfig sys = benchConfig(0xBE1ULL);
    workload::WorkloadConfig w;
    w.numProcessors = sys.numProcessors;
    w.numBlocks = sys.numBlocks;
    w.wordsPerBlock = sys.proto.wordsPerBlock;
    w.opsPerProcessor = opt.ops;
    w.storePercent = 35;
    w.evictPercent = 6;
    w.seed = 0xB0B1ULL;
    const auto progs = workload::make(kind, w);

    verify::StreamCheckerSet checkers(proto::verifyConfigFor(sys));
    proto::TeeSink tee{&checkers};
    std::optional<sim::System> reused;
    if (!opt.fresh) reused.emplace(sys, tee);

    for (std::uint64_t rep = 0; rep < opt.reps; ++rep) {
      RepResult r;
      if (opt.fresh) {
        // The seed engine's life cycle: everything rebuilt per sub-run.
        verify::StreamCheckerSet fresh(proto::verifyConfigFor(sys));
        proto::TeeSink freshTee{&fresh};
        sim::System system(sys, freshTee);
        r = measureRun(system, progs);
        fresh.finish();
      } else {
        reused->reset(sys.seed);
        checkers.reset(proto::verifyConfigFor(sys));
        r = measureRun(*reused, progs);
        checkers.finish();
      }
      const double evs =
          r.seconds > 0 ? static_cast<double>(r.events) / r.seconds : 0;
      const double ape =
          r.events > 0 ? static_cast<double>(r.allocs) /
                             static_cast<double>(r.events)
                       : 0;
      table.row(workload::toString(kind), rep == 0 ? "warm-up" :
                std::to_string(rep), r.events, r.seconds, evs, r.allocs, ape);
      if (rep > 0) {
        steadyEvents += static_cast<double>(r.events);
        steadySeconds += r.seconds;
        steadyAllocs += static_cast<double>(r.allocs);
        steady.note(r.events, r.opsBound,
                    static_cast<std::uint64_t>(r.seconds * 1e9), r.queue);
      }
    }
  }
  table.print();
  steady.print(std::cout);

  const double eventsPerSec =
      steadySeconds > 0 ? steadyEvents / steadySeconds : 0;
  const double allocsPerEvent =
      steadyEvents > 0 ? steadyAllocs / steadyEvents : 0;
  std::cout << "steady state (" << (opt.fresh ? "fresh" : "reused")
            << " systems, reps after warm-up): " << eventsPerSec
            << " events/s, " << allocsPerEvent << " allocs/event\n";

  if (opt.floorEventsPerSec > 0 && eventsPerSec < opt.floorEventsPerSec) {
    std::cerr << "FAIL: events/s " << eventsPerSec << " below floor "
              << opt.floorEventsPerSec << '\n';
    return 1;
  }
  if (opt.maxAllocsPerEvent >= 0 && allocsPerEvent > opt.maxAllocsPerEvent) {
    std::cerr << "FAIL: allocs/event " << allocsPerEvent << " above ceiling "
              << opt.maxAllocsPerEvent << '\n';
    return 1;
  }
  return 0;
}

const char* hashModeName(net::Network::Mode mode) {
  switch (mode) {
    case net::Network::Mode::Fifo: return "fifo";
    case net::Network::Mode::Pct: return "pct";
    default: return "random";
  }
}

int printHashes(const Options& opt) {
  for (const auto& cell : lcdc::testing::fingerprintMatrix()) {
    std::cout << workload::toString(cell.kind) << ' '
              << hashModeName(cell.mode) << " 0x" << std::hex
              << lcdc::testing::cellFingerprint(cell, opt.hashSeeds)
              << std::dec << '\n';
  }
  // The PCT companion table (pinned separately in tests/pct_test.cpp).
  for (const auto& cell : lcdc::testing::pctFingerprintMatrix()) {
    std::cout << workload::toString(cell.kind) << ' '
              << hashModeName(cell.mode) << " 0x" << std::hex
              << lcdc::testing::cellFingerprint(cell, opt.hashSeeds)
              << std::dec << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto val = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << a << " requires a value\n";
        std::exit(64);
      }
      return argv[++i];
    };
    if (a == "--ops") opt.ops = std::stoull(val());
    else if (a == "--reps") opt.reps = std::stoull(val());
    else if (a == "--seeds") opt.hashSeeds = std::stoull(val());
    else if (a == "--hashes") opt.hashes = true;
    else if (a == "--fresh") opt.fresh = true;
    else if (a == "--floor-events-per-sec") {
      opt.floorEventsPerSec = std::stod(val());
    } else if (a == "--max-allocs-per-event") {
      opt.maxAllocsPerEvent = std::stod(val());
    } else {
      std::cerr << "unknown option " << a << '\n';
      return 64;
    }
  }
  if (opt.hashes) return printHashes(opt);
  return runThroughput(opt);
}
