// Experiment S7 — consistency models beyond SC (the paper's Section 5
// future work).  Processors gain FIFO store buffers with load forwarding;
// the coherence protocol underneath is unchanged.  We measure:
//
//   (a) Dekker's litmus: the SC-forbidden 0/0 outcome appears exactly when
//       store buffers are enabled, the SC checker rejects those executions,
//       and the TSO checker accepts every one of them;
//   (b) contended random workloads: the deeper the store buffer, the more
//       executions stop being SC while remaining TSO — with the
//       protocol-level properties (Claims 2-3, Lemma 1, the value chain)
//       holding throughout, since they never depended on the processor
//       model.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

using namespace lcdc;

namespace {

struct LitmusRow {
  std::uint64_t bothZero = 0;
  std::uint64_t scRejected = 0;
  std::uint64_t tsoRejected = 0;
};

LitmusRow dekkerSweep(std::uint32_t depth, std::uint64_t seeds) {
  using workload::load;
  using workload::store;
  LitmusRow row;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.numDirectories = 1;
    cfg.numBlocks = 2;
    cfg.storeBufferDepth = depth;
    cfg.seed = seed;
    trace::Trace trace;
    sim::System sys(cfg, trace);
    sys.setProgram(0, {{store(0, 0, 1), load(1, 0)}});
    sys.setProgram(1, {{store(1, 0, 1), load(0, 0)}});
    if (!sys.run().ok()) continue;
    Word p0 = 1, p1 = 1;
    for (const auto& op : trace.operations()) {
      if (op.kind != OpKind::Load) continue;
      (op.proc == 0 ? p0 : p1) = op.value;
    }
    row.bothZero += p0 == 0 && p1 == 0;
    verify::VerifyConfig sc{2};
    row.scRejected += !verify::checkAll(trace, sc).ok();
    verify::VerifyConfig tso{2};
    tso.tso = true;
    row.tsoRejected += !verify::checkAll(trace, tso).ok();
  }
  return row;
}

struct WorkloadRow {
  std::uint64_t scViolatingRuns = 0;
  std::uint64_t tsoViolatingRuns = 0;
  std::uint64_t protocolViolatingRuns = 0;
  std::uint64_t forwardedLoads = 0;
};

WorkloadRow workloadSweep(std::uint32_t depth, std::uint64_t seeds) {
  WorkloadRow row;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 6;
    cfg.numDirectories = 2;
    cfg.numBlocks = 6;
    cfg.cacheCapacity = 3;
    cfg.storeBufferDepth = depth;
    cfg.seed = seed;
    workload::WorkloadConfig w;
    w.numProcessors = cfg.numProcessors;
    w.numBlocks = cfg.numBlocks;
    w.wordsPerBlock = cfg.proto.wordsPerBlock;
    w.opsPerProcessor = 600;
    w.storePercent = 50;
    w.evictPercent = 8;
    w.seed = seed * 11 + 3;
    const auto programs = workload::hotBlock(w, 80, 3);
    trace::Trace trace;
    sim::System sys(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      sys.setProgram(p, programs[p]);
    }
    if (!sys.run().ok()) continue;
    for (const auto& op : trace.operations()) {
      row.forwardedLoads += op.forwarded;
    }
    verify::VerifyConfig sc{cfg.numProcessors};
    row.scViolatingRuns += !verify::checkAll(trace, sc).ok();
    verify::VerifyConfig tso{cfg.numProcessors};
    tso.tso = true;
    row.tsoViolatingRuns += !verify::checkAll(trace, tso).ok();
    const bool protocolOk = verify::checkClaim2(trace, sc).ok() &&
                            verify::checkClaim3(trace, sc).ok() &&
                            verify::checkValueChain(trace, sc).ok();
    row.protocolViolatingRuns += !protocolOk;
  }
  return row;
}

}  // namespace

int main() {
  bench::banner("S7a — Dekker's litmus under SC and TSO processors");
  {
    bench::Table t({"store buffer", "runs", "0/0 outcomes (SC-forbidden)",
                    "SC checker rejects", "TSO checker rejects"});
    for (const std::uint32_t depth : {0u, 2u, 4u, 8u}) {
      const LitmusRow r = dekkerSweep(depth, 100);
      t.row(depth == 0 ? "none (SC)" : std::to_string(depth), 100,
            r.bothZero, r.scRejected, r.tsoRejected);
    }
    t.print();
  }

  bench::banner("S7b — contended workloads: SC vs TSO verdicts per run");
  {
    bench::Table t({"store buffer", "runs", "fail SC", "fail TSO",
                    "fail protocol claims", "forwarded loads"});
    for (const std::uint32_t depth : {0u, 2u, 8u}) {
      const WorkloadRow r = workloadSweep(depth, 25);
      t.row(depth == 0 ? "none (SC)" : std::to_string(depth), 25,
            r.scViolatingRuns, r.tsoViolatingRuns, r.protocolViolatingRuns,
            r.forwardedLoads);
    }
    t.print();
  }
  std::cout << "\nThe coherence-protocol properties never fail — they are "
               "independent of the\nprocessor's consistency model, exactly "
               "the modularity the paper's proof\nstructure promises "
               "(protocol lemmas vs processor facts).\n";
  return 0;
}
