// Experiment S10: the cost of the streaming observer pipeline.
//
// The batch path records the whole run (O(events) memory) and verifies
// afterwards; the streaming path verifies online through StreamCheckerSet
// with bounded per-block/per-processor state.  This bench sweeps the run
// length at a fixed configuration and reports, for each mode, wall time
// and peak verification memory — the expected picture is batch memory
// growing linearly with the event count while streaming memory stays flat,
// at a small (single-digit percent) throughput cost.
#include <cstdint>
#include <iostream>
#include <string>

#include "backend/backend.hpp"
#include "bench_util.hpp"
#include "proto/observer.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "verify/stream.hpp"
#include "workload/generators.hpp"

using namespace lcdc;

namespace {

SystemConfig benchConfig() {
  SystemConfig cfg;
  cfg.numProcessors = 8;
  cfg.numDirectories = 4;
  cfg.numBlocks = 64;
  cfg.cacheCapacity = 4;
  cfg.seed = 42;
  return cfg;
}

std::vector<workload::Program> benchPrograms(const SystemConfig& cfg,
                                             std::uint64_t opsPerProc) {
  workload::WorkloadConfig w;
  w.numProcessors = cfg.numProcessors;
  w.numBlocks = cfg.numBlocks;
  w.wordsPerBlock = cfg.proto.wordsPerBlock;
  w.opsPerProcessor = opsPerProc;
  w.storePercent = 40;
  w.evictPercent = 8;
  w.seed = 42 * 31 + 7;
  return workload::hotBlock(w, 70, 8);
}

struct Measurement {
  bool ok = false;
  double seconds = 0;       ///< simulate + verify, end to end
  std::size_t peakBytes = 0;  ///< trace storage (batch) / checker state
  std::uint64_t events = 0;
};

Measurement runBatch(std::uint64_t opsPerProc) {
  const SystemConfig cfg = benchConfig();
  const auto programs = benchPrograms(cfg, opsPerProc);
  const bench::Stopwatch clock;
  trace::Trace trace;
  sim::System sys(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) sys.setProgram(p, programs[p]);
  Measurement m;
  if (!sys.run().ok()) return m;
  const auto report =
      verify::checkAll(trace, proto::verifyConfigFor(cfg));
  m.ok = report.ok();
  m.seconds = clock.seconds();
  m.peakBytes = trace.memoryBytes();
  m.events = trace.operations().size() + trace.stamps().size() +
             trace.serializations().size() + trace.values().size();
  return m;
}

Measurement runStreaming(std::uint64_t opsPerProc) {
  const SystemConfig cfg = benchConfig();
  const auto programs = benchPrograms(cfg, opsPerProc);
  const bench::Stopwatch clock;
  verify::StreamCheckerSet checkers(proto::verifyConfigFor(cfg));
  verify::StatsObserver stats(&checkers);
  proto::TeeSink tee{&checkers, &stats};
  sim::System sys(cfg, tee);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) sys.setProgram(p, programs[p]);
  Measurement m;
  if (!sys.run().ok()) return m;
  checkers.finish();
  m.ok = checkers.report().ok();
  m.seconds = clock.seconds();
  m.peakBytes =
      std::max(stats.stats().peakCheckerBytes, checkers.memoryFootprint());
  m.events = stats.stats().events;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::banner(
      "S10 — streaming pipeline: flat memory vs O(events), at what cost");

  const std::uint64_t sweeps[] = {1'000, 4'000, 16'000, 64'000, 256'000};
  bench::Table t({"ops/proc", "events", "batch KiB", "stream KiB",
                  "mem ratio", "batch (s)", "stream (s)", "slowdown",
                  "result"});
  for (const std::uint64_t ops : sweeps) {
    if (quick && ops > 16'000) continue;
    const Measurement batch = runBatch(ops);
    const Measurement stream = runStreaming(ops);
    const double ratio =
        stream.peakBytes > 0
            ? static_cast<double>(batch.peakBytes) /
                  static_cast<double>(stream.peakBytes)
            : 0.0;
    const double slowdown =
        batch.seconds > 0 ? stream.seconds / batch.seconds : 0.0;
    t.row(ops, stream.events, batch.peakBytes / 1024,
          stream.peakBytes / 1024, bench::fixed(ratio, 1) + "x",
          bench::fixed(batch.seconds, 3), bench::fixed(stream.seconds, 3),
          bench::fixed(slowdown, 2) + "x",
          batch.ok && stream.ok ? "OK" : "VIOLATION/FAIL");
  }
  t.print();
  std::cout << "\nbatch memory grows with the event count; streaming state "
               "is bounded by\nthe configuration (blocks x words, "
               "processors, settle windows).\n";
  return 0;
}
