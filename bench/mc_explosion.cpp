// Experiment S2: the state-space explosion of the baseline technique the
// paper argues against (Section 1: model checking "does not scale well to
// systems of a practical size"; Section 4 lists verifications limited to
// ~4 nodes and one cache block).
//
// The model checker explores the *same* protocol transition code as the
// simulator, exhaustively, for growing (processors x blocks); reachable
// state counts and wall time explode where the Lamport-clock checker
// (bench/scaling_checker) stays linear.
#include <iostream>

#include "bench_util.hpp"
#include "mc/model_checker.hpp"

using namespace lcdc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::banner("S2 — explicit-state model checking: reachable states");

  struct Cfg {
    NodeId procs;
    BlockId blocks;
    bool evictions;
  };
  const Cfg cfgs[] = {
      {2, 1, false}, {2, 1, true},  {3, 1, false}, {2, 2, false},
      {3, 1, true},  {2, 2, true},  {4, 1, false}, {3, 2, false},
  };

  bench::Table t({"procs", "blocks", "evictions", "states", "transitions",
                  "peak frontier", "time (s)", "result"});
  for (const Cfg& c : cfgs) {
    if (quick && (c.procs + c.blocks > 4)) continue;
    mc::McConfig cfg;
    cfg.numProcessors = c.procs;
    cfg.numBlocks = c.blocks;
    cfg.allowEvictions = c.evictions;
    cfg.maxStates = quick ? 200'000 : 1'000'000;

    bench::Stopwatch timer;
    const mc::McResult r = mc::explore(cfg);
    std::string verdict = r.ok() ? "safe" : "VIOLATION";
    std::string states = std::to_string(r.statesExplored);
    if (r.hitStateLimit) {
      states = "> " + states;
      verdict = "exploded (limit hit)";
    }
    t.row(c.procs, c.blocks, c.evictions ? "yes" : "no", states,
          r.transitions, r.frontierPeak, timer.seconds(), verdict);
  }
  t.print();
  std::cout << "\nEach extra processor or block multiplies the space; with "
               "evictions enabled\n(the full protocol of Section 2.5) even "
               "3 processors x 1 block is already in\nthe millions — the "
               "scale wall the paper's related work (Origin 2000 verified\n"
               "for 4 clusters x 1 block, S3.mp for 1 block) ran into.\n";
  return 0;
}
