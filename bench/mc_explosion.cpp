// Experiment S2: the state-space explosion of the baseline technique the
// paper argues against (Section 1: model checking "does not scale well to
// systems of a practical size"; Section 4 lists verifications limited to
// ~4 nodes and one cache block).
//
// The model checker explores the *same* protocol transition code as the
// simulator, exhaustively, for growing (processors x blocks); reachable
// state counts and wall time explode where the Lamport-clock checker
// (bench/scaling_checker) stays linear.
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_util.hpp"
#include "mc/model_checker.hpp"

using namespace lcdc;

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::banner("S2 — explicit-state model checking: reachable states");

  struct Cfg {
    NodeId procs;
    BlockId blocks;
    bool evictions;
  };
  const Cfg cfgs[] = {
      {2, 1, false}, {2, 1, true},  {3, 1, false}, {2, 2, false},
      {3, 1, true},  {2, 2, true},  {4, 1, false}, {3, 2, false},
  };

  bench::Table t({"procs", "blocks", "evictions", "states", "transitions",
                  "peak frontier", "time (s)", "result"});
  for (const Cfg& c : cfgs) {
    if (quick && (c.procs + c.blocks > 4)) continue;
    mc::McConfig cfg;
    cfg.numProcessors = c.procs;
    cfg.numBlocks = c.blocks;
    cfg.allowEvictions = c.evictions;
    cfg.maxStates = quick ? 200'000 : 1'000'000;

    bench::Stopwatch timer;
    const mc::McResult r = mc::explore(cfg);
    std::string verdict = r.ok() ? "safe" : "VIOLATION";
    std::string states = std::to_string(r.statesExplored);
    if (r.hitStateLimit) {
      states = "> " + states;
      verdict = "exploded (limit hit)";
    }
    t.row(c.procs, c.blocks, c.evictions ? "yes" : "no", states,
          r.transitions, r.frontierPeak, timer.seconds(), verdict);
  }
  t.print();
  std::cout << "\nEach extra processor or block multiplies the space; with "
               "evictions enabled\n(the full protocol of Section 2.5) even "
               "3 processors x 1 block is already in\nthe millions — the "
               "scale wall the paper's related work (Origin 2000 verified\n"
               "for 4 clusters x 1 block, S3.mp for 1 block) ran into.\n";

  // ---- S11a: parallel wave BFS — throughput vs worker count -------------
  // The wave-synchronous design makes states/transitions identical for any
  // --jobs; only wall time changes.  On a single-core host the sweep shows
  // the (small) coordination overhead instead of speedup — record core
  // count alongside the numbers.
  bench::banner("S11a — parallel exploration: states/sec vs jobs");
  {
    mc::McConfig cfg;
    cfg.numProcessors = 3;
    cfg.numBlocks = 1;
    cfg.allowEvictions = true;
    cfg.maxStates = quick ? 60'000 : 400'000;

    bench::Table jt({"jobs", "states", "transitions", "time (s)",
                     "states/sec"});
    for (const unsigned jobs : {1u, 2u, 4u}) {
      cfg.jobs = jobs;
      bench::Stopwatch timer;
      const mc::McResult r = mc::explore(cfg);
      const double secs = timer.seconds();
      jt.row(jobs, r.statesExplored, r.transitions, secs,
             secs > 0 ? static_cast<std::uint64_t>(
                            static_cast<double>(r.statesExplored) / secs)
                      : 0);
    }
    jt.print();
    std::cout << "\nhardware threads available: "
              << std::thread::hardware_concurrency() << '\n';
  }

  // ---- S11b: reductions — symmetry and ample-set POR --------------------
  // Equal-depth comparison: configs where the full space is out of reach
  // on this host are cut at a fixed BFS depth, so reduced and unreduced
  // counts cover the same schedule prefix tree.  depth 0 = full space.
  bench::banner("S11b — symmetry + POR: reduced state counts");
  {
    struct RCfg {
      NodeId procs;
      BlockId blocks;
      std::uint64_t depth;  // 0 = explore to exhaustion
    };
    const RCfg rcfgs[] = {{2, 1, 0}, {3, 1, 0}, {3, 2, quick ? 8u : 10u}};
    struct Mode {
      const char* name;
      bool sym;
      bool por;
    };
    const Mode modes[] = {{"none", false, false},
                          {"sym", true, false},
                          {"por", false, true},
                          {"sym+por", true, true}};

    bench::Table rt({"procs", "blocks", "depth", "reduction", "states",
                     "ample states", "time (s)", "result"});
    for (const RCfg& c : rcfgs) {
      if (quick && c.procs + c.blocks > 4 && c.depth == 0) continue;
      std::uint64_t baseline = 0;
      for (const Mode& m : modes) {
        mc::McConfig cfg;
        cfg.numProcessors = c.procs;
        cfg.numBlocks = c.blocks;
        cfg.allowEvictions = true;
        cfg.maxStates = quick ? 200'000 : 2'000'000;
        cfg.maxDepth = c.depth;
        cfg.symmetry = m.sym;
        cfg.por = m.por;

        bench::Stopwatch timer;
        const mc::McResult r = mc::explore(cfg);
        if (baseline == 0) baseline = r.statesExplored;
        std::string label = m.name;
        if (baseline > 0 && r.statesExplored > 0 &&
            std::string(m.name) != "none") {
          char buf[32];
          std::snprintf(buf, sizeof buf, " (%.1fx)",
                        static_cast<double>(baseline) /
                            static_cast<double>(r.statesExplored));
          label += buf;
        }
        rt.row(c.procs, c.blocks,
               c.depth == 0 ? std::string("full") : std::to_string(c.depth),
               label, r.statesExplored, r.ampleStates, timer.seconds(),
               r.ok() ? "safe" : "VIOLATION");
      }
    }
    rt.print();
    std::cout << "\nBoth reductions preserve every verdict (tests pin this "
                 "per mutant); together\nthey push the same depth-bounded "
                 "space down ~6x at 3 procs x 2 blocks.\n";
  }

  // ---- S12: binary encoding + flat visited set — where the time goes ----
  // The binary engine's perf counters, per jobs count, on the S11a
  // workload: throughput, stored bytes per state, per-call encode/insert
  // cost, and the visited-set probe-length histogram (collisions are the
  // price of open addressing; >8-probe inserts should be vanishingly
  // rare at <=50% load).
  bench::banner("S12 — binary state codec + flat visited set: perf counters");
  {
    mc::McConfig cfg;
    cfg.numProcessors = 3;
    cfg.numBlocks = 1;
    cfg.allowEvictions = true;
    cfg.maxStates = quick ? 60'000 : 400'000;
    cfg.perf = true;  // opt into nanosecond timers

    bench::Table pt({"jobs", "states/sec", "enc B/state", "visited B/state",
                     "encode ns", "insert ns", "probe 0/1/2/3-4/5-8/>8"});
    for (const unsigned jobs : {1u, 2u, 4u}) {
      cfg.jobs = jobs;
      bench::Stopwatch timer;
      const mc::McResult r = mc::explore(cfg);
      const double secs = timer.seconds();
      const mc::McPerfCounters& p = r.perf;
      const std::uint64_t states = std::max<std::uint64_t>(
          r.statesExplored, 1);
      std::string hist;
      for (std::size_t i = 0; i < p.probeHist.size(); ++i) {
        if (i != 0) hist += '/';
        hist += std::to_string(p.probeHist[i]);
      }
      pt.row(jobs,
             secs > 0 ? static_cast<std::uint64_t>(
                            static_cast<double>(r.statesExplored) / secs)
                      : 0,
             p.storedStates > 0 ? p.storedEncodingBytes / p.storedStates : 0,
             r.visitedBytes / states,
             p.encodeCalls > 0 ? p.encodeNanos / p.encodeCalls : 0,
             p.insertCalls > 0 ? p.insertNanos / p.insertCalls : 0, hist);
    }
    pt.print();
    std::cout << "\n'visited B/state' counts everything the checker retains "
                 "per distinct state\n(flat-set slots, canonical encodings, "
                 "parent/action arrays) — the quantity\n--mem-limit-mb "
                 "bounds.  The string-keyed engine this replaced held "
                 "~1 KiB/state\non the same workload (EXPERIMENTS.md S12).\n";
  }
  return 0;
}
