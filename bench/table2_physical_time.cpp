// Reproduction of Table 2: the Section 3.2 two-node/two-block scenario laid
// out in *physical* time (the order events actually happen in the
// simulator).  Compare with bench/table3_lamport_time, which re-sorts the
// same execution by Lamport timestamps.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "scenario_tables.hpp"

using namespace lcdc;

int main() {
  bench::banner("Table 2 — 2 nodes, 2 blocks, physical time");

  bench::ScenarioResult r = bench::runTables23Scenario();
  if (!r.verified) {
    std::cerr << "scenario failed verification: " << r.verifySummary << '\n';
    return 1;
  }

  std::sort(r.events.begin(), r.events.end(),
            [](const bench::ScenarioEvent& a, const bench::ScenarioEvent& b) {
              return a.order < b.order;
            });

  bench::Table t({"Time", "N1", "N2"});
  int step = 1;
  for (const auto& ev : r.events) {
    t.row(step++, ev.node == 0 ? ev.what : "",
          ev.node == 1 ? ev.what : "");
  }
  t.print();

  std::cout << "\nAs in the paper's Table 2: N1 binds its load from A, then "
               "answers the\ninvalidation; N2's store to A happens last in "
               "physical time.\n(The warm-up transactions that install A "
               "read-only at N1 and B read-write\nare explicit in the "
               "simulator and elided from the rows, so absolute clock\n"
               "values differ from the paper's; the ordering is what "
               "matters.)\n";
  return 0;
}
