// Experiment S5 — ablations of the design choices Section 2.5 discusses.
//
// (a) The Put-Shared extension itself: silent eviction buys fewer
//     protocol messages for clean read-only evictions, at the price of the
//     stale-invalidation traffic and the deadlock machinery.  We run the
//     same capacity-pressured workload with the extension on and off.
//     (The paper's *other* alternative — applying invalidations immediately
//     as NACKs, as Origin/DASH do — is only sketched in the paper and
//     defers to [4]; under this protocol's directory states it is
//     underspecified, so we ablate what the paper fully specifies.  See
//     DESIGN.md.)
//
// (b) Network reordering intensity: we sweep the per-message latency
//     spread to measure how often the write-back races (13/14) and the
//     Figure 2 machinery fire, and how retry pressure responds — while
//     correctness is untouched at every point.
#include <iostream>

#include "bench_util.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

using namespace lcdc;

namespace {

struct Totals {
  std::uint64_t msgs = 0;
  std::uint64_t nacks = 0;
  std::uint64_t putShareds = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t staleInvAcks = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t race13 = 0;
  std::uint64_t race14 = 0;
  net::Tick endTime = 0;
  bool verified = true;
};

Totals run(bool putShared, net::Tick maxLatency, std::uint64_t seeds) {
  Totals sum;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 8;
    cfg.numDirectories = 4;
    cfg.numBlocks = 12;
    cfg.cacheCapacity = 3;
    cfg.seed = seed;
    cfg.proto.putSharedEnabled = putShared;
    cfg.maxLatency = maxLatency;

    workload::WorkloadConfig w;
    w.numProcessors = cfg.numProcessors;
    w.numBlocks = cfg.numBlocks;
    w.wordsPerBlock = cfg.proto.wordsPerBlock;
    w.opsPerProcessor = 1200;
    w.storePercent = 45;
    w.evictPercent = 10;
    w.seed = seed * 17;
    const auto programs = workload::hotBlock(w, 75, 4);

    trace::Trace trace;
    sim::System system(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    const sim::RunResult result = system.run();
    const auto report =
        verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
    sum.verified = sum.verified && result.ok() && report.ok();

    sum.msgs += system.network().stats().sent;
    proto::DirStats d = system.aggregateDirStats();
    for (const auto& [k, v] : d.nackByKind) sum.nacks += v;
    sum.race13 +=
        d.txnByKind[static_cast<std::uint8_t>(TxnKind::Wb_BusyShared)];
    sum.race14 +=
        d.txnByKind[static_cast<std::uint8_t>(TxnKind::Wb_BusyExclusive)] +
        d.txnByKind[static_cast<std::uint8_t>(
            TxnKind::Wb_BusyExclusiveSelf)];
    const proto::CacheStats c = system.aggregateCacheStats();
    sum.putShareds += c.putShareds;
    sum.writebacks += c.writebacks;
    sum.staleInvAcks += c.staleInvAcks;
    sum.deadlocks += c.deadlocksResolved;
    sum.endTime += result.endTime;
  }
  return sum;
}

}  // namespace

int main() {
  bench::banner("S5a — Put-Shared (Section 2.5) on vs off (20 seeds each)");
  {
    bench::Table t({"put-shared", "messages", "NACKs", "silent evictions",
                    "writebacks", "stale inv acks", "deadlocks resolved",
                    "sum end-time", "verified"});
    for (const bool ps : {true, false}) {
      const Totals s = run(ps, 40, 20);
      t.row(ps ? "on" : "off", s.msgs, s.nacks, s.putShareds, s.writebacks,
            s.staleInvAcks, s.deadlocks, s.endTime,
            s.verified ? "yes" : "NO");
    }
    t.print();
    std::cout << "\nWith the extension off, read-only lines pin cache space "
                 "(no silent\nevictions), and neither stale-invalidation "
                 "acks nor the deadlock machinery\nexist; with it on, both "
                 "appear — and every run still verifies.\n";
  }

  bench::banner("S5b — race frequency vs network reordering (20 seeds each)");
  {
    bench::Table t({"latency spread", "txn 13", "txn 14a/b", "NACKs",
                    "deadlocks resolved", "verified"});
    for (const net::Tick spread : {1u, 5u, 20u, 80u, 320u}) {
      const Totals s = run(true, spread, 20);
      t.row("1.." + std::to_string(spread), s.race13, s.race14, s.nacks,
            s.deadlocks, s.verified ? "yes" : "NO");
    }
    t.print();
    std::cout << "\nThe write-back races and the Figure 2 path fire even on "
                 "a near-FIFO network:\nthey are *path-crossing* races "
                 "(writeback vs forward travel different links),\nnot "
                 "same-path reordering.  What reordering intensity drives up "
                 "is NACK\npressure (replies overtaken by new requests keep "
                 "the directory busy longer).\nSequential consistency holds "
                 "at every point of the sweep.\n";
  }
  return 0;
}
