// Experiment S1: the paper's scalability claim for the Lamport-clock
// technique — "our approach can precisely verify the operation of a
// protocol in a system consisting of any number of nodes and memory
// blocks" (Section 4).
//
// We sweep processors × blocks × operations and report simulation and
// verification wall time.  The checker's cost is near-linear in the trace
// size and *independent of the state space* — contrast with
// bench/mc_explosion.
#include <iostream>

#include "bench_util.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

using namespace lcdc;

namespace {

struct Row {
  NodeId procs;
  BlockId blocks;
  std::uint64_t opsPerProc;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::banner("S1 — Lamport-clock checker scalability (nodes x blocks x ops)");

  const Row rows[] = {
      {2, 4, 2'000},   {4, 16, 2'000},   {8, 64, 2'000},
      {16, 128, 2'000}, {32, 256, 2'000}, {64, 1024, 2'000},
      {8, 64, 10'000},  {8, 64, 50'000},  {16, 256, 25'000},
      {32, 512, 12'500},
  };

  bench::Table t({"procs", "blocks", "ops total", "txns", "epochs",
                  "sim (s)", "verify (s)", "result"});
  for (const Row& row : rows) {
    if (quick && static_cast<std::uint64_t>(row.procs) * row.opsPerProc >
                     64'000) {
      continue;
    }
    SystemConfig cfg;
    cfg.numProcessors = row.procs;
    cfg.numDirectories = std::max<NodeId>(1, row.procs / 2);
    cfg.numBlocks = row.blocks;
    cfg.cacheCapacity = 16;
    cfg.seed = row.procs * 1000 + row.blocks;

    workload::WorkloadConfig w;
    w.numProcessors = cfg.numProcessors;
    w.numBlocks = cfg.numBlocks;
    w.wordsPerBlock = cfg.proto.wordsPerBlock;
    w.opsPerProcessor = row.opsPerProc;
    w.storePercent = 35;
    w.evictPercent = 5;
    w.seed = cfg.seed;
    const auto programs = workload::uniformRandom(w);

    trace::Trace trace;
    sim::System system(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    bench::Stopwatch simTimer;
    const sim::RunResult result = system.run();
    const double simSec = simTimer.seconds();
    if (!result.ok()) {
      t.row(row.procs, row.blocks, row.procs * row.opsPerProc, "-", "-",
            simSec, "-", toString(result.outcome));
      continue;
    }
    bench::Stopwatch verifyTimer;
    const auto report =
        verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
    const double verSec = verifyTimer.seconds();
    t.row(row.procs, row.blocks, result.opsBound,
          trace.serializations().size(), report.epochsBuilt, simSec, verSec,
          report.ok() ? "verified SC" : "VIOLATION");
  }
  t.print();
  std::cout << "\nVerification cost tracks trace size (ops + transactions), "
               "not configuration\nsize: 64 processors and 1024 blocks check "
               "as easily as 2x4 — the paper's\nscalability argument for "
               "reasoning in Lamport time.\n";
  return 0;
}
