// Reproduction of Figure 2: the deadlock produced by allowing Put-Shared
// with buffered invalidations, and its Section 2.5 resolution.
//
// Two rows per network mode: with the deadlock detection disabled the
// scripted scenario wedges (and, under a random network, the watchdog
// reports deadlock); with the paper's fix the same schedule completes and
// passes full verification.
#include <iostream>

#include "bench_util.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/program.hpp"

using namespace lcdc;

namespace {

struct Outcome {
  std::string status;
  std::uint64_t deadlocksResolved = 0;
  std::uint64_t invsDropped = 0;
  bool verified = false;
};

/// The scripted Figure 2 schedule on a manual network.
Outcome scripted(Mutant mutant) {
  using workload::evict;
  using workload::load;
  using workload::store;
  using proto::MsgType;

  trace::Trace trace;
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 1;
  cfg.proto.mutant = mutant;
  sim::System sys(cfg, trace, net::Network::Mode::Manual);
  const NodeId n1 = 0, n2 = 1;
  const BlockId A = 0;

  sys.setProgram(n1, {{load(A, 0), evict(A), load(A, 0)}});
  sys.setProgram(n2, {{store(A, 0, 0xA2)}});

  auto deliver = [&](MsgType type, NodeId dst) {
    return sys.deliverManualFirst([&](const net::Envelope& e) {
      return e.msg.type == type && e.dst == dst;
    });
  };

  // 1. N1 reads A, silently evicts it, re-requests it (steps 2/4 in the
  //    figure).  2. N2's Get-Exclusive (step 1) beats the re-request; the
  //    home invalidates N1 (step 3).  3. N1's Get-Shared is forwarded to
  //    N2; the forward and N2's reply arrive in the worst order.
  sys.kick(n1);
  deliver(MsgType::GetS, sys.home(A));
  deliver(MsgType::DataShared, n1);
  sys.kick(n2);
  deliver(MsgType::GetX, sys.home(A));
  deliver(MsgType::GetS, sys.home(A));
  deliver(MsgType::FwdGetS, n2);
  deliver(MsgType::DataExclusive, n2);
  while (!sys.network().empty()) sys.deliverManual(0);

  Outcome out;
  out.deadlocksResolved = sys.processor(1).cache().stats().deadlocksResolved;
  out.invsDropped = sys.processor(0).cache().stats().invsDropped;
  if (!sys.allProgramsDone()) {
    out.status = "DEADLOCK (N1 waits for data, N2 waits for N1's ack)";
    return out;
  }
  const auto report = verify::checkAll(trace, verify::VerifyConfig{2});
  out.verified = report.ok();
  out.status = "completed";
  return out;
}

/// The same programs under a randomly-reordering network (many seeds): the
/// buggy protocol eventually hits the race; the fixed one never wedges.
Outcome randomized(Mutant mutant, std::uint64_t seeds) {
  Outcome out;
  out.status = "completed (all seeds)";
  out.verified = true;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    using workload::evict;
    using workload::load;
    using workload::store;
    trace::Trace trace;
    SystemConfig cfg;
    cfg.numProcessors = 3;
    cfg.numDirectories = 1;
    cfg.numBlocks = 1;
    cfg.proto.mutant = mutant;
    cfg.seed = seed;
    cfg.minLatency = 1;
    cfg.maxLatency = 60;  // aggressive reordering
    sim::System sys(cfg, trace);
    // Everyone cycles: read, silently evict, read again / write.
    for (NodeId p = 0; p < 2; ++p) {
      workload::Program prog;
      for (int i = 0; i < 30; ++i) {
        prog.steps.push_back(load(0, 0));
        prog.steps.push_back(evict(0));
      }
      sys.setProgram(p, std::move(prog));
    }
    workload::Program writer;
    for (int i = 0; i < 30; ++i) {
      writer.steps.push_back(store(0, 0, workload::makeStoreValue(2, i)));
      writer.steps.push_back(evict(0));
    }
    sys.setProgram(2, std::move(writer));

    const sim::RunResult r = sys.run(5'000'000);
    out.deadlocksResolved +=
        sys.aggregateCacheStats().deadlocksResolved;
    out.invsDropped += sys.aggregateCacheStats().invsDropped;
    if (!r.ok()) {
      out.status = "DEADLOCK at seed " + std::to_string(seed) + " (" +
                   toString(r.outcome) + ")";
      out.verified = false;
      return out;
    }
    const auto report = verify::checkAll(trace, verify::VerifyConfig{3});
    if (!report.ok()) {
      out.status = "verification failed at seed " + std::to_string(seed);
      out.verified = false;
      return out;
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Figure 2 — Put-Shared deadlock and the Section 2.5 fix");

  bench::Table t({"network", "deadlock detection", "outcome",
                  "implicit acks", "invs dropped", "verified"});

  const Outcome s0 = scripted(Mutant::NoDeadlockDetection);
  t.row("scripted (fig. 2 order)", "off", s0.status, s0.deadlocksResolved,
        s0.invsDropped, s0.verified ? "yes" : "-");
  const Outcome s1 = scripted(Mutant::None);
  t.row("scripted (fig. 2 order)", "on", s1.status, s1.deadlocksResolved,
        s1.invsDropped, s1.verified ? "yes" : "NO");

  const Outcome r0 = randomized(Mutant::NoDeadlockDetection, 60);
  t.row("random x60 seeds", "off", r0.status, r0.deadlocksResolved,
        r0.invsDropped, r0.verified ? "yes" : "-");
  const Outcome r1 = randomized(Mutant::None, 60);
  t.row("random x60 seeds", "on", r1.status, r1.deadlocksResolved,
        r1.invsDropped, r1.verified ? "yes" : "NO");
  t.print();

  std::cout << "\nWith detection off, the very message order of Figure 2 "
               "wedges both nodes;\nwith the paper's implicit-ack "
               "resolution the same order (and every random\nschedule) "
               "completes and passes the full Section 3 property suite.\n";
  // Exit status reflects the expected shape.
  const bool shapeHolds = s0.status.find("DEADLOCK") == 0 && s1.verified &&
                          r0.status.find("DEADLOCK") == 0 && r1.verified;
  return shapeHolds ? 0 : 1;
}
