// The Section 3.2 example scenario behind Tables 2 and 3: two nodes, two
// blocks.  N1 holds block A read-only and block B read-write; N2 takes A
// read-write.  N1's load from A binds before the invalidation is answered,
// so Lamport time orders it *before* N2's store even though the store
// completes later in physical time.
//
// Shared by the table2 (physical time) and table3 (Lamport time) benches.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/program.hpp"

namespace lcdc::bench {

struct ScenarioEvent {
  trace::EventOrder order = 0;  ///< physical (real-time) order
  NodeId node = kNoNode;        ///< kNoNode for home events
  GlobalTime lamport = 0;       ///< global timestamp (ops: full tuple below)
  LocalTime local = 0;
  std::string what;
};

struct ScenarioResult {
  std::vector<ScenarioEvent> events;  ///< in physical order
  trace::Trace trace;
  bool verified = false;
  std::string verifySummary;
};

/// Run the scripted scenario deterministically and collect a readable event
/// log from the trace.
inline ScenarioResult runTables23Scenario() {
  using workload::load;
  using workload::store;
  using proto::MsgType;

  ScenarioResult result;
  SystemConfig cfg;
  cfg.numProcessors = 2;
  cfg.numDirectories = 1;
  cfg.numBlocks = 2;
  sim::System sys(cfg, result.trace, net::Network::Mode::Manual);
  const NodeId n1 = 0, n2 = 1;
  const BlockId A = 0, B = 1;

  sys.setProgram(n1, {{load(A, 0), store(B, 0, 0xB1), load(A, 1)}});
  sys.setProgram(n2, {{store(A, 0, 0xA2)}});

  auto deliver = [&](MsgType type, NodeId dst) {
    (void)sys.deliverManualFirst([&](const net::Envelope& e) {
      return e.msg.type == type && e.dst == dst;
    });
  };

  // Physical schedule (paper's Table 2 shape):
  sys.kick(n1);                            // N1: GetS(A)
  deliver(MsgType::GetS, sys.home(A));
  deliver(MsgType::DataShared, n1);        // N1 now shares A; GetX(B) goes out
  deliver(MsgType::GetX, sys.home(B));
  sys.kick(n2);                            // N2: send Get-Exclusive for A
  deliver(MsgType::DataExclusive, n1);     // N1: store to B; bind load from A
  deliver(MsgType::GetX, sys.home(A));     // home: invalidation sweep for A
  deliver(MsgType::Inv, n1);               // N1: invalidate A, send ack
  deliver(MsgType::InvAck, n2);            // N2: receive ack for A
  while (!sys.network().empty()) sys.deliverManual(0);

  const auto report = verify::checkAll(result.trace, verify::VerifyConfig{2});
  result.verified = report.ok() && sys.allProgramsDone() && sys.quiescent();
  result.verifySummary = report.summary();

  // Build the readable event log from the trace records.
  const auto blockName = [&](BlockId b) { return b == A ? "A" : "B"; };
  for (const auto& op : result.trace.operations()) {
    // Skip N1's warm-up load of A (the paper's scenario starts with A
    // already cached read-only at N1).
    if (op.proc == n1 && op.kind == OpKind::Load && op.progIdx == 0) continue;
    ScenarioEvent ev;
    ev.order = op.order;
    ev.node = op.proc;
    ev.lamport = op.ts.global;
    ev.local = op.ts.local;
    ev.what = std::string(op.kind == OpKind::Load ? "load from " : "store to ") +
              blockName(op.block);
    result.events.push_back(ev);
  }
  for (const auto& s : result.trace.stamps()) {
    if (s.node >= cfg.numProcessors) continue;  // home bookkeeping
    if (s.block != A) continue;
    if (s.oldA == s.newA) continue;
    // N1's warm-up acquisition of A is setup, not part of the paper's
    // scenario window.
    if (s.node == n1 && s.role == proto::StampRole::Upgrade) continue;
    ScenarioEvent ev;
    ev.order = s.order;
    ev.node = s.node;
    ev.lamport = s.ts;
    ev.local = 0;
    if (s.role == proto::StampRole::Downgrade) {
      ev.what = "invalidate A, send ack";
    } else {
      ev.what = "receive ack for A";
    }
    result.events.push_back(ev);
  }
  return result;
}

}  // namespace lcdc::bench
