// Reproduction of Table 1 ("Protocol requests") and the Section 2.3
// transaction taxonomy: run a contended mixed workload and report every
// request type and every one of the 14 transactions (plus the NACK cases)
// actually taken, demonstrating that the implementation exercises the
// complete protocol of the paper — races included.
#include <cstdint>
#include <iostream>

#include "bench_util.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

using namespace lcdc;

int main() {
  bench::banner("Table 1 — protocol requests and the 14 transactions");

  proto::DirStats dirs;
  proto::CacheStats caches{};
  std::uint64_t ops = 0;
  bench::Stopwatch timer;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SystemConfig cfg;
    cfg.numProcessors = 8;
    cfg.numDirectories = 4;
    cfg.numBlocks = 16;
    cfg.cacheCapacity = 3;
    cfg.seed = seed;

    workload::WorkloadConfig w;
    w.numProcessors = cfg.numProcessors;
    w.numBlocks = cfg.numBlocks;
    w.wordsPerBlock = cfg.proto.wordsPerBlock;
    w.opsPerProcessor = 1500;
    w.storePercent = 45;
    w.evictPercent = 10;
    w.seed = seed * 131;
    const auto programs = workload::hotBlock(w, 75, 4);

    trace::Trace trace;
    sim::System system(cfg, trace);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      system.setProgram(p, programs[p]);
    }
    const sim::RunResult result = system.run();
    if (!result.ok()) {
      std::cerr << "run failed: " << toString(result.outcome) << '\n';
      return 1;
    }
    const auto report =
        verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
    if (!report.ok()) {
      std::cerr << "verification failed: " << report.summary() << '\n';
      return 1;
    }
    dirs.merge(system.aggregateDirStats());
    const proto::CacheStats c = system.aggregateCacheStats();
    caches.putShareds += c.putShareds;
    caches.writebacks += c.writebacks;
    caches.deadlocksResolved += c.deadlocksResolved;
    caches.staleInvAcks += c.staleInvAcks;
    ops += result.opsBound;
  }

  const auto count = [&](TxnKind k) {
    return dirs.txnByKind[static_cast<std::uint8_t>(k)];
  };
  const auto nackCount = [&](NackKind k) {
    return dirs.nackByKind[static_cast<std::uint8_t>(k)];
  };

  std::cout << "Workload: 20 seeds x 8 processors x 1500 steps, hot-block "
               "mix, capacity 3 lines/cache\n"
            << "Operations bound: " << ops << "; requests: " << dirs.requests
            << "; wall time " << timer.seconds() << " s. All Section 3 "
            << "properties verified on every run.\n\n";

  bench::Table t1({"Request", "Current cache permission",
                   "Desired cache permission", "count"});
  t1.row("Get-Shared", "invalid", "read-only",
         count(TxnKind::GetS_Idle) + count(TxnKind::GetS_Shared) +
             count(TxnKind::GetS_Exclusive) +
             nackCount(NackKind::GetS_Busy));
  t1.row("Get-Exclusive", "invalid", "read-write",
         count(TxnKind::GetX_Idle) + count(TxnKind::GetX_Shared) +
             count(TxnKind::GetX_Exclusive) + nackCount(NackKind::GetX_Busy));
  t1.row("Upgrade", "read-only", "read-write",
         count(TxnKind::Upg_Shared) + nackCount(NackKind::Upg_Exclusive) +
             nackCount(NackKind::Upg_Busy));
  t1.row("Writeback", "read-write", "invalid",
         count(TxnKind::Wb_Exclusive) + count(TxnKind::Wb_BusyShared) +
             count(TxnKind::Wb_BusyExclusive) +
             count(TxnKind::Wb_BusyExclusiveSelf));
  t1.print();

  bench::banner("Section 2.3 — all 14 transactions taken");
  bench::Table t2({"#", "Transaction (request / directory state)", "count"});
  t2.row("1", "Get-Shared / Idle", count(TxnKind::GetS_Idle));
  t2.row("2", "Get-Shared / Shared", count(TxnKind::GetS_Shared));
  t2.row("3", "Get-Shared / Exclusive (forward)",
         count(TxnKind::GetS_Exclusive));
  t2.row("4", "Get-Shared / Busy-Any (NACK)", nackCount(NackKind::GetS_Busy));
  t2.row("5", "Get-Exclusive / Idle", count(TxnKind::GetX_Idle));
  t2.row("6", "Get-Exclusive / Shared (invalidations)",
         count(TxnKind::GetX_Shared));
  t2.row("7", "Get-Exclusive / Exclusive (forward)",
         count(TxnKind::GetX_Exclusive));
  t2.row("8", "Get-Exclusive / Busy-Any (NACK)",
         nackCount(NackKind::GetX_Busy));
  t2.row("9", "Upgrade / Shared", count(TxnKind::Upg_Shared));
  t2.row("10", "Upgrade / Exclusive (NACK, retry as Get-Exclusive)",
         nackCount(NackKind::Upg_Exclusive));
  t2.row("11", "Upgrade / Busy-Any (NACK)", nackCount(NackKind::Upg_Busy));
  t2.row("12", "Writeback / Exclusive", count(TxnKind::Wb_Exclusive));
  t2.row("13", "Writeback / Busy-Shared (combined)",
         count(TxnKind::Wb_BusyShared));
  t2.row("14a", "Writeback / Busy-Exclusive (combined)",
         count(TxnKind::Wb_BusyExclusive));
  t2.row("14b", "Writeback / Busy-Exclusive (update race)",
         count(TxnKind::Wb_BusyExclusiveSelf));
  t2.print();

  bench::banner("Section 2.5 — extension traffic");
  bench::Table t3({"event", "count"});
  t3.row("Put-Shared silent evictions", caches.putShareds);
  t3.row("writebacks", caches.writebacks);
  t3.row("stale invalidations acknowledged", caches.staleInvAcks);
  t3.row("deadlocks resolved by implicit ack", caches.deadlocksResolved);
  t3.print();
  return 0;
}
