// Shared helpers for the benchmark/reproduction binaries: aligned table
// printing (every bench regenerates one of the paper's tables/figures as
// text) and simple wall-clock timing.
#pragma once

#include <chrono>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace lcdc::bench {

/// Minimal fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Cells>
  void row(Cells&&... cells) {
    std::vector<std::string> r;
    (r.push_back(toCell(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
      for (const auto& r : rows_) {
        if (c < r.size()) width[c] = std::max(width[c], r[c].size());
      }
    }
    printRow(os, headers_, width);
    std::string sep;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      sep += std::string(width[c] + 2, '-');
      if (c + 1 < headers_.size()) sep += "+";
    }
    os << sep << '\n';
    for (const auto& r : rows_) printRow(os, r, width);
  }

 private:
  template <typename T>
  static std::string toCell(T&& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(v));
    } else {
      std::ostringstream os;
      os << v;
      return os.str();
    }
  }

  static void printRow(std::ostream& os, const std::vector<std::string>& r,
                       const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << std::left
         << (c < r.size() ? r[c] : std::string()) << ' ';
      if (c + 1 < width.size()) os << '|';
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const std::string& title) {
  std::cout << '\n' << "== " << title << " ==\n\n";
}

/// Fixed-point formatting for table cells.
inline std::string fixed(double v, int places) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(places) << v;
  return os.str();
}

}  // namespace lcdc::bench
