// Experiment S8 — liveness under NACK-based retry (Section 5 future work:
// "Lamport clocks are a useful tool for reasoning about the possibilities
// of deadlock, livelock, and starvation in a directory protocol").
//
// The protocol guarantees safety but relies on retries for progress; this
// bench quantifies how close the retry storm comes to starving someone:
// per-processor completion fairness and the worst consecutive-NACK streak
// any single request endured, swept against contention intensity.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

using namespace lcdc;

int main() {
  bench::banner(
      "S8 — liveness under contention: NACK retries and starvation headroom");

  bench::Table t({"procs on 1 block", "ops", "NACKs", "NACK/txn",
                  "worst NACK streak", "ops fairness (min/max per proc)",
                  "end time", "verified"});
  for (const NodeId procs : {2u, 4u, 8u, 16u, 32u}) {
    SystemConfig cfg;
    cfg.numProcessors = procs;
    cfg.numDirectories = 1;
    cfg.numBlocks = 1;  // everything fights over one block
    cfg.seed = procs;

    workload::WorkloadConfig w;
    w.numProcessors = procs;
    w.numBlocks = 1;
    w.wordsPerBlock = cfg.proto.wordsPerBlock;
    w.opsPerProcessor = 300;
    w.storePercent = 50;
    w.evictPercent = 10;
    w.seed = procs * 3 + 1;
    const auto programs = workload::uniformRandom(w);

    trace::Trace trace;
    sim::System system(cfg, trace);
    for (NodeId p = 0; p < procs; ++p) system.setProgram(p, programs[p]);
    const sim::RunResult result = system.run();
    const auto report =
        verify::checkAll(trace, verify::VerifyConfig{procs});

    std::uint64_t nacks = 0, worstStreak = 0;
    std::uint64_t minOps = ~0ull, maxOps = 0;
    for (NodeId p = 0; p < procs; ++p) {
      const sim::ProcStats& ps = system.processor(p).stats();
      worstStreak = std::max(worstStreak, ps.maxNackStreak);
      const std::uint64_t ops = ps.loadsBound + ps.storesBound;
      minOps = std::min(minOps, ops);
      maxOps = std::max(maxOps, ops);
    }
    nacks = system.aggregateCacheStats().nacksReceived;
    const double perTxn =
        trace.serializations().empty()
            ? 0.0
            : static_cast<double>(nacks) /
                  static_cast<double>(trace.serializations().size());

    t.row(procs, result.opsBound, nacks, perTxn, worstStreak,
          std::to_string(minOps) + " / " + std::to_string(maxOps),
          result.endTime,
          result.ok() && report.ok() ? "yes" : "NO");
  }
  t.print();
  std::cout << "\nEvery configuration drains: the randomized retry delay "
               "keeps the NACK storm\nfair (no processor starves; the worst "
               "consecutive-NACK streak stays small\nrelative to the retry "
               "count), while safety is verified end to end.  A\nNACK-based "
               "protocol's *liveness* is statistical — exactly why the paper "
               "lists\nstarvation reasoning as future work rather than a "
               "theorem.\n";
  return 0;
}
