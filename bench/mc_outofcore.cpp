// Experiment S17: out-of-core model checking (DESIGN.md §14).
//
// Three questions, each answered on the full 3-proc x 1-block space with
// evictions (the largest space this suite explores to exhaustion):
//
//   S17a  what does spilling the frontier to disk cost?  In-RAM arenas
//         vs spill-to-disk segments: same counts (pinned), throughput,
//         tracked-bytes peak, and the spill traffic itself.
//   S17b  what do the lossy visited modes buy?  exact vs hash-compaction
//         vs bitstate: bytes/state retained and the measured omission
//         bound each mode reports.
//   S17c  what does checkpoint/resume cost, and does a resumed run land
//         on the uninterrupted counts?  A mem-limited run that stops
//         resumably, then its resume to exhaustion.
//
// The headline disk-scale run (>= 10^8 states under a fixed
// --mem-limit-mb) is driven through the CLI — see EXPERIMENTS.md S17 for
// the command lines and recorded numbers; this binary keeps the
// repeatable, minutes-scale slice of the experiment.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "mc/model_checker.hpp"

using namespace lcdc;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() / ("lcdc_s17_" + tag);
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

mc::McConfig baseConfig(bool quick) {
  mc::McConfig cfg;
  cfg.numProcessors = 3;
  cfg.numBlocks = 1;
  cfg.allowEvictions = true;
  cfg.maxStates = 2'000'000;
  // Quick mode bounds by DEPTH, not state count: a depth bound stops at a
  // completed wave, where counts are pinned for any engine and --jobs; a
  // state cap cuts mid-wave, where the prefix is scheduling-dependent.
  if (quick) cfg.maxDepth = 14;
  cfg.perf = true;
  return cfg;
}

double mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

std::uint64_t rate(std::uint64_t states, double secs) {
  return secs > 0
             ? static_cast<std::uint64_t>(static_cast<double>(states) / secs)
             : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  // ---- S17a: in-RAM arenas vs spill-to-disk frontier --------------------
  bench::banner("S17a — frontier residence: in-RAM arenas vs disk segments");
  std::uint64_t ramStates = 0;
  std::uint64_t ramTransitions = 0;
  {
    bench::Table t({"frontier", "states", "waves", "time (s)", "states/sec",
                    "tracked peak MiB", "spill MiB", "segments"});
    {
      mc::McConfig cfg = baseConfig(quick);
      bench::Stopwatch timer;
      const mc::McResult r = mc::explore(cfg);
      const double secs = timer.seconds();
      ramStates = r.statesExplored;
      ramTransitions = r.transitions;
      t.row("ram", r.statesExplored, r.wavesCompleted, secs,
            rate(r.statesExplored, secs), mib(r.trackedBytesPeak), 0.0, 0);
    }
    {
      TempDir dir("spill");
      mc::McConfig cfg = baseConfig(quick);
      cfg.spillDir = dir.path.string();
      bench::Stopwatch timer;
      const mc::McResult r = mc::explore(cfg);
      const double secs = timer.seconds();
      t.row("spill", r.statesExplored, r.wavesCompleted, secs,
            rate(r.statesExplored, secs), mib(r.trackedBytesPeak),
            mib(r.perf.spillBytesWritten), r.perf.spillSegments);
      if (r.statesExplored != ramStates || r.transitions != ramTransitions) {
        std::cerr << "FAIL: spill counts diverge from the in-RAM engine\n";
        return 1;
      }
    }
    t.print();
    std::cout << "\nSame counts by construction (wave-synchronous BFS; "
                 "tests/mc_outofcore_test\npins it across --jobs).  The "
                 "tracked peak drops because frontier blobs live\nin sealed "
                 "segment files instead of ping-pong arenas; what remains "
                 "is the\nvisited set — the part the lossy modes below "
                 "shrink.\n";
  }

  // ---- S17b: visited-set representations --------------------------------
  bench::banner("S17b — visited modes: exact vs compact vs bitstate");
  {
    struct Mode {
      const char* name;
      mc::VisitedMode mode;
      std::uint64_t bitstateMb;
    };
    const Mode modes[] = {
        {"exact", mc::VisitedMode::Exact, 0},
        {"compact", mc::VisitedMode::Compact, 0},
        {"bitstate 8 MiB", mc::VisitedMode::Bitstate, 8},
        {"bitstate 1 MiB", mc::VisitedMode::Bitstate, 1},
    };
    bench::Table t({"visited", "states", "visited B/state", "P(omission) <=",
                    "time (s)"});
    for (const Mode& m : modes) {
      mc::McConfig cfg = baseConfig(quick);
      cfg.visited = m.mode;
      if (m.bitstateMb != 0) cfg.bitstateMb = m.bitstateMb;
      if (m.mode == mc::VisitedMode::Bitstate) cfg.por = false;
      bench::Stopwatch timer;
      const mc::McResult r = mc::explore(cfg);
      const std::uint64_t states =
          std::max<std::uint64_t>(r.statesExplored, 1);
      t.row(m.name, r.statesExplored, r.visitedBytes / states,
            r.omissionBound, timer.seconds());
    }
    t.print();
    std::cout << "\nCompact keeps 64-bit fingerprints only (no canonical "
                 "encodings, no parent\nedges); bitstate keeps k bits per "
                 "state in a fixed array.  Both report the\nomission bound "
                 "they actually incurred — shrink the bitstate array and "
                 "the\nbound degrades in plain sight.\n";
  }

  // ---- S17c: checkpoint at the mem limit, then resume --------------------
  bench::banner("S17c — resumable stop: checkpoint at --mem-limit-mb, resume");
  {
    TempDir dir("ckpt");
    mc::McConfig stopCfg = baseConfig(quick);
    stopCfg.memLimitMb = quick ? 8 : 12;
    stopCfg.checkpointDir = dir.path.string();

    bench::Table t({"phase", "states", "waves", "time (s)",
                    "checkpoint MiB", "verdict"});
    bench::Stopwatch stopTimer;
    const mc::McResult stopped = mc::explore(stopCfg);
    const double stopSecs = stopTimer.seconds();
    t.row("mem-limited", stopped.statesExplored, stopped.wavesCompleted,
          stopSecs, mib(stopped.perf.checkpointBytes),
          stopped.memLimitHit ? "stopped, checkpointed" : "ran to the end");

    mc::McConfig resumeCfg = baseConfig(quick);
    resumeCfg.memLimitMb = 0;  // lift the cap; the digest ignores limits
    resumeCfg.resumeDir = dir.path.string();
    bench::Stopwatch resumeTimer;
    const mc::McResult resumed = mc::explore(resumeCfg);
    const double resumeSecs = resumeTimer.seconds();
    t.row("resumed", resumed.statesExplored, resumed.wavesCompleted,
          resumeSecs, mib(resumed.perf.checkpointBytes),
          resumed.ok() ? "clean" : "VIOLATION");
    t.print();

    if (stopped.memLimitHit &&
        (resumed.statesExplored != ramStates ||
         resumed.transitions != ramTransitions)) {
      std::cerr << "FAIL: resumed totals diverge from the uninterrupted "
                   "run\n";
      return 1;
    }
    std::cout << "\nThe resumed totals are cumulative and equal the "
                 "uninterrupted run's —\nexit code 6 now means 'out of "
                 "budget, state saved', not 'start over'.\n";
  }
  return 0;
}
