// Reproduction of Figure 1: the target multiprocessor system.  The figure
// is architectural, so this bench realizes it as the simulator's topology
// report plus per-component message accounting for a representative run —
// processing nodes (CPU + cache + network interface), directory nodes
// (directory + memory), and the unordered interconnection network between
// them.
#include <iostream>

#include "bench_util.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

using namespace lcdc;

int main() {
  bench::banner("Figure 1 — the target multiprocessor system");

  SystemConfig cfg;
  cfg.numProcessors = 8;
  cfg.numDirectories = 4;
  cfg.numBlocks = 64;
  cfg.cacheCapacity = 8;
  cfg.seed = 1998;

  std::cout << "Topology (node ids):\n";
  bench::Table topo({"node", "role", "components"});
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    topo.row(p, "processing node", "CPU + cache + network interface");
  }
  for (NodeId d = 0; d < cfg.numDirectories; ++d) {
    std::string blocks = "blocks { ";
    for (BlockId b = d; b < cfg.numBlocks; b += cfg.numDirectories) {
      if (b < 4 * cfg.numDirectories) blocks += std::to_string(b) + " ";
    }
    blocks += "... } + memory";
    topo.row(cfg.numProcessors + d, "directory node",
             "directory for " + blocks);
  }
  topo.print();
  std::cout << "\nInterconnect: reliable, eventual, *unordered* delivery "
               "(per-message random\nlatency in ["
            << cfg.minLatency << ", " << cfg.maxLatency << "] ticks).\n";

  workload::WorkloadConfig w;
  w.numProcessors = cfg.numProcessors;
  w.numBlocks = cfg.numBlocks;
  w.wordsPerBlock = cfg.proto.wordsPerBlock;
  w.opsPerProcessor = 4000;
  w.storePercent = 35;
  w.evictPercent = 6;
  w.seed = 77;
  const auto programs = workload::uniformRandom(w);

  trace::Trace trace;
  sim::System system(cfg, trace);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    system.setProgram(p, programs[p]);
  }
  bench::Stopwatch timer;
  const sim::RunResult result = system.run();
  const auto report =
      verify::checkAll(trace, verify::VerifyConfig{cfg.numProcessors});
  if (!result.ok() || !report.ok()) {
    std::cerr << "run/verification failed: " << toString(result.outcome)
              << " / " << report.summary() << '\n';
    return 1;
  }

  bench::banner("Representative run — message traffic by type");
  const auto& stats = system.network().stats();
  bench::Table t({"message type", "count"});
  for (std::size_t i = 0; i < stats.sentByType.size(); ++i) {
    if (stats.sentByType[i] == 0) continue;
    t.row(proto::toString(static_cast<proto::MsgType>(i)),
          stats.sentByType[i]);
  }
  t.row("TOTAL", stats.sent);
  t.print();

  std::cout << "\nRun: " << result.opsBound << " operations, "
            << trace.serializations().size() << " transactions, "
            << result.eventsProcessed << " events, " << timer.seconds()
            << " s wall; verification: " << report.summary() << '\n';
  return 0;
}
