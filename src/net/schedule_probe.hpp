// Opt-in schedule-shape instrumentation for the fuzzer's novelty signal.
//
// The campaign's coverage counters only see *what* the protocol did (which
// transaction cases serialized); the fuzzer also needs to know *how* the
// network scheduled the run, so that two inputs exercising the same cases
// under very different delivery orders still count as distinct.  A probe
// attached to a Network observes every send/delivery and condenses the
// schedule into three cheap features:
//
//  * reorder depth    — how far a delivery overtook earlier sends, measured
//    as max(maxSeqDelivered - seq) over deliveries that were overtaken;
//  * interleave bits  — a 256-bucket bitmap of rolling hashes over the last
//    few (destination, message-type) deliveries: a fingerprint of local
//    delivery interleavings;
//  * block contention — the maximum number of messages simultaneously in
//    flight for any single block.
//
// The probe is deliberately not part of NetStats: it costs a little work per
// message, so the hot path only pays for it when a fuzz stage attaches one
// (Network::setProbe), and the 240-cell seed-equivalence pins are unaffected.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/envelope.hpp"

namespace lcdc::net {

struct ScheduleProbe {
  static constexpr std::size_t kInterleaveBuckets = 256;

  std::uint64_t maxReorderDepth = 0;
  std::uint64_t maxBlockContention = 0;
  std::array<std::uint64_t, kInterleaveBuckets / 64> interleaveBits{};

  void noteSend(const Envelope& env) {
    const auto block = static_cast<std::size_t>(env.msg.block);
    if (block >= inFlightPerBlock_.size()) {
      inFlightPerBlock_.resize(block + 1, 0);
    }
    const std::uint64_t n = ++inFlightPerBlock_[block];
    if (n > maxBlockContention) maxBlockContention = n;
  }

  void noteDeliver(const Envelope& env) {
    if (maxSeqDelivered_ > env.seq) {
      const std::uint64_t depth = maxSeqDelivered_ - env.seq;
      if (depth > maxReorderDepth) maxReorderDepth = depth;
    }
    if (env.seq > maxSeqDelivered_) maxSeqDelivered_ = env.seq;

    // Rolling hash over the last few (dst, type) pairs; the window length is
    // implicit in the multiplier decay (~8 deliveries influence each hash).
    rolling_ = rolling_ * 0x100000001b3ULL +
               (static_cast<std::uint64_t>(env.dst) * 31 +
                static_cast<std::uint64_t>(env.msg.type));
    const std::uint64_t mixed = rolling_ ^ (rolling_ >> 29);
    const std::size_t bucket =
        static_cast<std::size_t>(mixed) % kInterleaveBuckets;
    interleaveBits[bucket / 64] |= std::uint64_t{1} << (bucket % 64);

    const auto block = static_cast<std::size_t>(env.msg.block);
    if (block < inFlightPerBlock_.size() && inFlightPerBlock_[block] > 0) {
      --inFlightPerBlock_[block];
    }
  }

  void reset() {
    maxReorderDepth = 0;
    maxBlockContention = 0;
    interleaveBits.fill(0);
    maxSeqDelivered_ = 0;
    rolling_ = 0;
    inFlightPerBlock_.assign(inFlightPerBlock_.size(), 0);
  }

 private:
  MsgSeq maxSeqDelivered_ = 0;
  std::uint64_t rolling_ = 0;
  std::vector<std::uint64_t> inFlightPerBlock_;
};

}  // namespace lcdc::net
