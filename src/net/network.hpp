// The interconnection network of Figure 1.
//
// Section 2.1 fixes exactly two properties: delivery is *reliable and
// eventual*, and there is *no ordering guarantee whatsoever* between
// messages.  We model this as a bag of in-flight envelopes:
//
//  * RandomLatency — every message independently draws a delivery latency
//    in [minLatency, maxLatency]; overlapping messages routinely overtake
//    one another, which is what exposes the paper's race conditions
//    (transactions 13/14, Figure 2).
//  * Fifo          — constant latency; a degenerate ordered network used to
//    show the protocol also works when races never fire.
//  * Manual        — tests and scripted scenarios pick the exact delivery
//    order, to force a specific race deterministically.
//  * Pct           — PCT-style randomized priorities: every message draws a
//    random priority at send time and the highest-priority pending message
//    is always delivered next, with periodic "change points" that redraw
//    every pending priority.  Unlike RandomLatency (whose reorder window is
//    bounded by maxLatency ticks), Pct can hold one message back behind an
//    unbounded number of later sends, which is exactly the deep-reorder
//    shape the fuzzer wants.  Delivery times are the send time plus
//    minLatency, clamped to be monotone across deliveries.
//
// Messages are never dropped, duplicated or corrupted.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/calendar_queue.hpp"
#include "net/envelope.hpp"
#include "proto/messages.hpp"

namespace lcdc::net {

/// Per-message-type traffic counters.
struct NetStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::vector<std::uint64_t> sentByType;       ///< indexed by MsgType
  std::vector<std::uint64_t> deliveredByType;  ///< indexed by MsgType

  NetStats();
};

struct ScheduleProbe;

class Network {
 public:
  enum class Mode { RandomLatency, Fifo, Manual, Pct };

  Network(Mode mode, Rng rng, Tick minLatency, Tick maxLatency);

  /// Inject a message.  `src` is recorded into the message envelope.
  MsgSeq send(NodeId src, NodeId dst, Tick now, proto::Message msg);

  [[nodiscard]] bool empty() const { return inFlight() == 0; }
  [[nodiscard]] std::size_t inFlight() const;

  /// Timed modes: the delivery time of the next due envelope (kNever when
  /// the network is empty).
  [[nodiscard]] Tick nextDeliveryTime() const;

  /// Timed modes: remove and return the next due envelope.
  [[nodiscard]] Envelope popNext();

  /// Manual mode: inspect the in-flight bag (in send order).
  [[nodiscard]] const std::deque<Envelope>& pending() const;

  /// Manual mode: remove and return the i-th pending envelope.
  [[nodiscard]] Envelope deliverIndex(std::size_t i);

  /// Manual mode: remove and return the envelope with sequence `seq`.
  [[nodiscard]] Envelope deliverSeq(MsgSeq seq);

  /// Manual mode convenience: deliver the first pending message matching a
  /// predicate; returns nullopt when none matches.
  template <typename Pred>
  [[nodiscard]] std::optional<Envelope> deliverFirst(Pred&& pred) {
    for (std::size_t i = 0; i < manual_.size(); ++i) {
      if (pred(manual_[i])) return deliverIndex(i);
    }
    return std::nullopt;
  }

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  /// Calendar-queue operation counters (timed modes), for SimPerfCounters.
  [[nodiscard]] const CalendarStats& queueStats() const {
    return timed_.stats();
  }

  /// Return to the just-constructed state with a fresh random stream, but
  /// keep the envelope pool's slabs and every container's capacity — the
  /// campaign resets one Network per worker thousands of times.  Detaches
  /// any schedule probe; re-attach after the reset.
  void reset(Rng rng);

  /// Attach (or detach, with nullptr) a schedule-shape probe.  The probe is
  /// borrowed, not owned; it must outlive the runs it observes.
  void setProbe(ScheduleProbe* probe) { probe_ = probe; }

 private:
  struct PctEntry {
    std::uint64_t prio = 0;
    Envelope env;
  };
  // Max-heap order: highest priority first, lowest seq among ties.
  static bool pctLess(const PctEntry& a, const PctEntry& b) {
    if (a.prio != b.prio) return a.prio < b.prio;
    return a.env.seq > b.env.seq;
  }

  void countDelivered(const Envelope& env);

  Mode mode_;
  Rng rng_;
  Tick minLatency_;
  Tick maxLatency_;
  MsgSeq nextSeq_ = 1;
  CalendarQueue timed_;
  std::deque<Envelope> manual_;
  std::vector<PctEntry> pct_;
  Tick pctFloor_ = 0;                     ///< monotone delivery-time clamp
  std::uint64_t pctUntilChangePoint_ = 0; ///< deliveries until a reshuffle
  ScheduleProbe* probe_ = nullptr;
  NetStats stats_;
};

}  // namespace lcdc::net
