// The envelope vocabulary shared by the network front-end and its queue
// implementations (calendar queue, manual bag).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "proto/messages.hpp"

namespace lcdc::net {

/// Simulated time, in abstract ticks.
using Tick = std::uint64_t;

/// Monotone per-network sequence number; breaks delivery-time ties so runs
/// are fully deterministic.
using MsgSeq = std::uint64_t;

inline constexpr Tick kNever = ~Tick{0};

/// A message in flight.
struct Envelope {
  MsgSeq seq = 0;
  NodeId dst = kNoNode;
  Tick sentAt = 0;
  Tick deliverAt = 0;  ///< unused in Manual mode
  proto::Message msg;
};

}  // namespace lcdc::net
