// A bucketed calendar queue for in-flight envelopes.
//
// The timed network modes need exactly one operation mix: push an envelope
// with a delivery tick at most `maxLatency` ahead of the current time, and
// pop envelopes in (deliverAt, seq) order.  A binary heap does this in
// O(log n) with a full Envelope move per sift step; the calendar queue does
// it in O(1) expected per operation and never moves an envelope after
// insertion:
//
//  * Envelopes live in slab-allocated pool nodes (common/arena.hpp blocks)
//    that are recycled through a free list — after the pool reaches its
//    high-water mark the queue performs no heap allocation at all.
//  * A power-of-two timing wheel of singly-linked buckets covers the ticks
//    `[cursor, cursor + wheelSize)`.  The wheel is sized from `maxLatency`
//    so in-window pushes (the overwhelming majority) are a list append.
//  * Pushes beyond the window — possible when retry timers advance
//    simulated time far past the last delivery — go to a small min-heap of
//    node indices (the "overflow"); pop compares the wheel head against the
//    overflow top under the same (deliverAt, seq) key.
//
// Determinism argument (DESIGN.md §10): the pop order is *identical* to
// std::priority_queue<Envelope, ..., Later>'s.  Within one delivery tick a
// wheel bucket holds envelopes in insertion order, and sequence numbers are
// assigned monotonically, so FIFO order within a bucket is seq order; the
// window invariant (cursor never passes the smallest queued tick) means a
// bucket never mixes two ticks; and mixed wheel/overflow ties are broken by
// comparing the full (deliverAt, seq) key.  A per-slot occupancy bitmap
// makes the next-bucket scan a couple of word operations.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <new>
#include <vector>

#include "common/arena.hpp"
#include "common/expect.hpp"
#include "common/types.hpp"
#include "net/envelope.hpp"

namespace lcdc::net {

/// Operation counters for SimPerfCounters (always-on; they are a handful of
/// increments per event).
struct CalendarStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t overflowPushes = 0;  ///< pushes beyond the wheel window
  std::uint64_t overflowPops = 0;
  std::uint64_t maxDepth = 0;     ///< high-water in-flight envelopes
  std::uint64_t poolNodes = 0;    ///< pool high-water (slab-carved nodes)
};

class CalendarQueue {
 public:
  explicit CalendarQueue(Tick maxLatency) {
    // Window = a few times the latency bound, so only time jumps larger
    // than the bound itself (timer-driven idle periods) hit the overflow.
    std::size_t want = 64;
    const Tick span = 4 * (maxLatency + 2);
    while (want < span && want < (std::size_t{1} << 16)) want <<= 1;
    mask_ = static_cast<Tick>(want - 1);
    slots_.assign(want, Slot{});
    bitmap_.assign(want / 64, 0);
    overflow_.reserve(16);
  }

  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  ~CalendarQueue() {
    // Pool nodes are constructed once per slab and recycled; destroy them
    // all here (the arena only releases the raw bytes).
    for (Node* slab : slabs_) {
      for (std::uint32_t i = 0; i < kSlabNodes; ++i) slab[i].~Node();
    }
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const CalendarStats& stats() const { return stats_; }

  void push(Envelope&& env) {
    LCDC_EXPECT(env.deliverAt >= cursor_,
                "calendar push before the delivery cursor");
    const std::uint32_t idx = allocNode();
    Node& n = node(idx);
    n.env = std::move(env);
    n.next = kNil;
    if (n.env.deliverAt - cursor_ <= mask_) {
      Slot& s = slots_[static_cast<std::size_t>(n.env.deliverAt & mask_)];
      if (s.tail == kNil) {
        s.head = idx;
        markSlot(n.env.deliverAt & mask_);
      } else {
        node(s.tail).next = idx;
      }
      s.tail = idx;
      ++wheelCount_;
    } else {
      overflow_.push_back(idx);
      std::push_heap(overflow_.begin(), overflow_.end(), laterByIndex());
      stats_.overflowPushes += 1;
    }
    ++size_;
    stats_.pushes += 1;
    if (size_ > stats_.maxDepth) stats_.maxDepth = size_;
  }

  /// Delivery tick of the next envelope in (deliverAt, seq) order.
  [[nodiscard]] Tick nextDeliveryTime() const {
    if (size_ == 0) return kNever;
    const std::uint32_t w = wheelHead();
    if (w == kNil) return node(overflow_.front()).env.deliverAt;
    if (overflow_.empty()) return node(w).env.deliverAt;
    const Node& a = node(w);
    const Node& b = node(overflow_.front());
    return a.env.deliverAt <= b.env.deliverAt ? a.env.deliverAt
                                              : b.env.deliverAt;
  }

  /// Remove and return the next envelope in (deliverAt, seq) order.
  Envelope pop() {
    LCDC_EXPECT(size_ > 0, "pop on empty calendar queue");
    const std::uint32_t w = wheelHead();
    bool fromWheel = w != kNil;
    if (fromWheel && !overflow_.empty()) {
      const Node& a = node(w);
      const Node& b = node(overflow_.front());
      // Exact priority_queue order: earlier tick wins, seq breaks ties.
      fromWheel = a.env.deliverAt < b.env.deliverAt ||
                  (a.env.deliverAt == b.env.deliverAt && a.env.seq < b.env.seq);
    }
    std::uint32_t idx;
    if (fromWheel) {
      Slot& s = slots_[static_cast<std::size_t>(node(w).env.deliverAt & mask_)];
      idx = s.head;
      s.head = node(idx).next;
      if (s.head == kNil) {
        s.tail = kNil;
        clearSlot(node(idx).env.deliverAt & mask_);
      }
      --wheelCount_;
    } else {
      std::pop_heap(overflow_.begin(), overflow_.end(), laterByIndex());
      idx = overflow_.back();
      overflow_.pop_back();
      stats_.overflowPops += 1;
    }
    Node& n = node(idx);
    cursor_ = n.env.deliverAt;
    Envelope out = std::move(n.env);
    freeNode(idx);
    --size_;
    stats_.pops += 1;
    return out;
  }

  /// Empty the queue but keep every slab and the heap's capacity, so the
  /// next run reuses the high-water footprint without re-allocating.
  void clear() {
    while (size_ > 0) (void)pop();
    cursor_ = 0;
  }

  /// Zero the operation counters (pool high-water is kept: the nodes are
  /// still carved and will be reused by the next run).
  void resetStats() {
    const std::uint64_t pool = stats_.poolNodes;
    stats_ = CalendarStats{};
    stats_.poolNodes = pool;
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kSlabNodes = 256;  // nodes per arena slab

  struct Node {
    Envelope env;
    std::uint32_t next = kNil;
  };
  struct Slot {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  [[nodiscard]] Node& node(std::uint32_t idx) {
    return slabs_[idx / kSlabNodes][idx % kSlabNodes];
  }
  [[nodiscard]] const Node& node(std::uint32_t idx) const {
    return slabs_[idx / kSlabNodes][idx % kSlabNodes];
  }

  /// Comparator for the overflow heap: "later" ordering over node indices,
  /// making std::push_heap/pop_heap yield the earliest (deliverAt, seq).
  struct LaterByIndex {
    const CalendarQueue* q;
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      const Envelope& ea = q->node(a).env;
      const Envelope& eb = q->node(b).env;
      if (ea.deliverAt != eb.deliverAt) return ea.deliverAt > eb.deliverAt;
      return ea.seq > eb.seq;
    }
  };
  [[nodiscard]] LaterByIndex laterByIndex() const {
    return LaterByIndex{this};
  }

  std::uint32_t allocNode() {
    if (freeHead_ != kNil) {
      const std::uint32_t idx = freeHead_;
      freeHead_ = node(idx).next;
      return idx;
    }
    // Carve a fresh slab; nodes are constructed once and recycled forever.
    std::size_t usable = 0;
    auto* raw = arena_.grabBlock(kSlabNodes * sizeof(Node), usable);
    Node* nodes = reinterpret_cast<Node*>(raw);
    for (std::uint32_t i = 0; i < kSlabNodes; ++i) {
      ::new (static_cast<void*>(nodes + i)) Node();
    }
    const std::uint32_t base =
        static_cast<std::uint32_t>(slabs_.size()) * kSlabNodes;
    slabs_.push_back(nodes);
    stats_.poolNodes += kSlabNodes;
    // Link all but the first node into the free list.
    for (std::uint32_t i = kSlabNodes - 1; i >= 1; --i) {
      nodes[i].next = freeHead_;
      freeHead_ = base + i;
    }
    return base;
  }

  void freeNode(std::uint32_t idx) {
    node(idx).next = freeHead_;
    freeHead_ = idx;
  }

  void markSlot(Tick slot) {
    bitmap_[static_cast<std::size_t>(slot >> 6)] |=
        std::uint64_t{1} << (slot & 63);
  }
  void clearSlot(Tick slot) {
    bitmap_[static_cast<std::size_t>(slot >> 6)] &=
        ~(std::uint64_t{1} << (slot & 63));
  }

  /// Head node of the earliest non-empty wheel bucket (kNil when the wheel
  /// is empty).  Because every wheel tick lies in [cursor, cursor + wheel
  /// size), the first occupied slot at or cyclically after the cursor's
  /// slot is the minimum tick.
  [[nodiscard]] std::uint32_t wheelHead() const {
    if (wheelCount_ == 0) return kNil;
    const std::size_t words = bitmap_.size();
    const std::size_t start = static_cast<std::size_t>(cursor_ & mask_);
    std::size_t word = start >> 6;
    // First word: mask off bits below the cursor's position.
    std::uint64_t bits = bitmap_[word] & (~std::uint64_t{0} << (start & 63));
    for (std::size_t n = 0; n <= words; ++n) {
      if (bits != 0) {
        const std::size_t slot =
            (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
        return slots_[slot].head;
      }
      word = (word + 1) % words;
      bits = bitmap_[word];
    }
    return kNil;  // unreachable while wheelCount_ > 0
  }

  Tick mask_ = 0;          ///< wheelSize - 1 (wheelSize is a power of two)
  Tick cursor_ = 0;        ///< every queued tick is >= cursor_
  std::size_t size_ = 0;
  std::size_t wheelCount_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint64_t> bitmap_;
  std::vector<std::uint32_t> overflow_;  ///< min-heap of node indices
  std::uint32_t freeHead_ = kNil;
  Arena arena_{kSlabNodes * sizeof(Node)};
  std::vector<Node*> slabs_;
  CalendarStats stats_;
};

}  // namespace lcdc::net
