#include "net/network.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "net/schedule_probe.hpp"

namespace lcdc::net {

namespace {
// PCT change points fire after a burst of deliveries drawn from this range;
// reshuffling all pending priorities bounds starvation and moves the
// preemption points around the schedule, as in the PCT algorithm.
constexpr std::uint64_t kPctBurstMin = 8;
constexpr std::uint64_t kPctBurstMax = 64;
constexpr std::uint64_t kPctPrioSpan = 1u << 20;
}  // namespace

NetStats::NetStats()
    : sentByType(proto::kNumMsgTypes, 0),
      deliveredByType(proto::kNumMsgTypes, 0) {}

Network::Network(Mode mode, Rng rng, Tick minLatency, Tick maxLatency)
    : mode_(mode), rng_(rng), minLatency_(minLatency),
      maxLatency_(maxLatency), timed_(maxLatency) {
  LCDC_EXPECT(minLatency_ <= maxLatency_, "latency bounds inverted");
  LCDC_EXPECT(minLatency_ >= 1, "zero latency would allow same-tick loops");
  if (mode_ == Mode::Pct) {
    pctUntilChangePoint_ = rng_.uniform(kPctBurstMin, kPctBurstMax);
  }
}

void Network::reset(Rng rng) {
  rng_ = rng;
  nextSeq_ = 1;
  timed_.clear();
  timed_.resetStats();
  manual_.clear();
  pct_.clear();
  pctFloor_ = 0;
  probe_ = nullptr;
  if (mode_ == Mode::Pct) {
    pctUntilChangePoint_ = rng_.uniform(kPctBurstMin, kPctBurstMax);
  }
  stats_.sent = 0;
  stats_.delivered = 0;
  std::fill(stats_.sentByType.begin(), stats_.sentByType.end(), 0);
  std::fill(stats_.deliveredByType.begin(), stats_.deliveredByType.end(), 0);
}

MsgSeq Network::send(NodeId src, NodeId dst, Tick now, proto::Message msg) {
  msg.src = src;
  Envelope env;
  env.seq = nextSeq_++;
  env.dst = dst;
  env.sentAt = now;
  env.msg = std::move(msg);
  stats_.sent += 1;
  const auto typeIdx = static_cast<std::size_t>(env.msg.type);
  if (typeIdx < stats_.sentByType.size()) stats_.sentByType[typeIdx] += 1;
  if (probe_ != nullptr) probe_->noteSend(env);

  switch (mode_) {
    case Mode::RandomLatency:
      env.deliverAt = now + rng_.uniform(minLatency_, maxLatency_);
      timed_.push(std::move(env));
      break;
    case Mode::Fifo:
      env.deliverAt = now + minLatency_;
      timed_.push(std::move(env));
      break;
    case Mode::Manual:
      env.deliverAt = now;
      manual_.push_back(std::move(env));
      break;
    case Mode::Pct: {
      env.deliverAt = now + minLatency_;
      PctEntry e;
      e.prio = rng_.uniform(0, kPctPrioSpan - 1);
      e.env = std::move(env);
      pct_.push_back(std::move(e));
      std::push_heap(pct_.begin(), pct_.end(), pctLess);
      break;
    }
  }
  return nextSeq_ - 1;
}

std::size_t Network::inFlight() const {
  switch (mode_) {
    case Mode::Manual: return manual_.size();
    case Mode::Pct: return pct_.size();
    default: return timed_.size();
  }
}

Tick Network::nextDeliveryTime() const {
  LCDC_EXPECT(mode_ != Mode::Manual, "nextDeliveryTime in Manual mode");
  if (mode_ == Mode::Pct) {
    if (pct_.empty()) return kNever;
    return std::max(pct_.front().env.deliverAt, pctFloor_);
  }
  return timed_.nextDeliveryTime();
}

void Network::countDelivered(const Envelope& env) {
  stats_.delivered += 1;
  const auto typeIdx = static_cast<std::size_t>(env.msg.type);
  if (typeIdx < stats_.deliveredByType.size()) {
    stats_.deliveredByType[typeIdx] += 1;
  }
  if (probe_ != nullptr) probe_->noteDeliver(env);
}

Envelope Network::popNext() {
  LCDC_EXPECT(mode_ != Mode::Manual, "popNext in Manual mode");
  if (mode_ == Mode::Pct) {
    LCDC_EXPECT(!pct_.empty(), "popNext on empty network");
    std::pop_heap(pct_.begin(), pct_.end(), pctLess);
    Envelope env = std::move(pct_.back().env);
    pct_.pop_back();
    // Deliveries must be monotone in time even when a starved low-priority
    // message finally surfaces with a stale deliverAt.
    env.deliverAt = std::max(env.deliverAt, pctFloor_);
    pctFloor_ = env.deliverAt;
    if (!pct_.empty() && --pctUntilChangePoint_ == 0) {
      for (PctEntry& e : pct_) e.prio = rng_.uniform(0, kPctPrioSpan - 1);
      std::make_heap(pct_.begin(), pct_.end(), pctLess);
      pctUntilChangePoint_ = rng_.uniform(kPctBurstMin, kPctBurstMax);
    }
    countDelivered(env);
    return env;
  }
  LCDC_EXPECT(!timed_.empty(), "popNext on empty network");
  Envelope env = timed_.pop();
  countDelivered(env);
  return env;
}

const std::deque<Envelope>& Network::pending() const {
  LCDC_EXPECT(mode_ == Mode::Manual, "pending() outside Manual mode");
  return manual_;
}

Envelope Network::deliverIndex(std::size_t i) {
  LCDC_EXPECT(mode_ == Mode::Manual, "deliverIndex outside Manual mode");
  LCDC_EXPECT(i < manual_.size(), "deliverIndex out of range");
  Envelope env = std::move(manual_[i]);
  manual_.erase(manual_.begin() + static_cast<std::ptrdiff_t>(i));
  countDelivered(env);
  return env;
}

Envelope Network::deliverSeq(MsgSeq seq) {
  LCDC_EXPECT(mode_ == Mode::Manual, "deliverSeq outside Manual mode");
  // Sequence numbers are assigned monotonically and erases keep relative
  // order, so the pending bag is always sorted by seq: the seq -> index
  // mapping is a binary search, with no side table to maintain.
  const auto it = std::lower_bound(
      manual_.begin(), manual_.end(), seq,
      [](const Envelope& e, MsgSeq s) { return e.seq < s; });
  LCDC_EXPECT(it != manual_.end() && it->seq == seq,
              "deliverSeq: unknown sequence number");
  Envelope env = std::move(*it);
  manual_.erase(it);
  countDelivered(env);
  return env;
}

}  // namespace lcdc::net
