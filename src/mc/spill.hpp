// Out-of-core storage for the model checker (DESIGN.md §14): spill
// segments holding one wave's frontier blobs on disk, the append-only
// visited log, the bitstate dump, and the checkpoint manifest tying them
// together.
//
// A *spill segment* is one chunk's worth of next-wave frontier records,
// written append-only while the chunk expands and sealed at the wave
// barrier.  Draining the next wave reads the sealed segments back in
// chunk order through mmap, so the concatenation of segment records is
// byte-for-byte the same frontier sequence the in-RAM engine builds in
// its ping-pong arenas — which is the whole determinism argument for
// `--visited exact` + spill matching the in-RAM engine for any `--jobs`.
//
// Segment file layout (all integers little-endian):
//   48-byte header: magic "LCSPILL1", u32 version, u32 reserved,
//                   u64 config digest, u64 record count,
//                   u64 payload bytes, u64 flight-count sum
//   records:        varint state id, varint flightCount,
//                   varint blobLen, blobLen bytes (WorldCodec blob)
// The header is patched on seal; readers validate magic/version/digest
// and bound every varint read, throwing SimError (never UB or invariant
// aborts) on truncated, corrupt, or version-mismatched input — the same
// contract the fuzz corpus format established in PR 8.
//
// The *checkpoint manifest* (`MANIFEST`, text, written tmp+rename so a
// kill mid-checkpoint leaves the previous checkpoint intact) records the
// exploration counters at a wave boundary plus the files that rebuild
// the explorer: the visited log's valid byte length (tails past it are
// torn writes and ignored), the bitstate dump, and the pending wave's
// segment list.  `lcdc mc --resume DIR` replays these and continues.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace lcdc::mc {

struct McConfig;

/// Digest over the semantic exploration parameters (topology, protocol
/// switches, reductions, visited mode) — the fields that determine the
/// state space and its counts.  Tuning knobs that only shape *how* the
/// space is walked (jobs, memory limit, state/depth caps, spill and
/// checkpoint paths) are excluded, so a resumed run may lift its caps or
/// change its thread count but never silently switch protocols.
[[nodiscard]] std::uint64_t configDigest(const McConfig& cfg);

inline constexpr std::uint32_t kSpillVersion = 1;

/// A sealed segment as listed in a wave's frontier (order matters).
struct SegmentInfo {
  std::string path;
  std::uint64_t records = 0;
  std::uint64_t flightSum = 0;
  std::uint64_t payloadBytes = 0;
};

/// Append-only writer for one spill segment.  Single-threaded (each
/// expansion chunk owns its writer); buffers in memory and flushes to
/// the file in large writes.  `seal()` patches the header and closes;
/// destroying an unsealed writer removes the partial file.
class SpillSegmentWriter {
 public:
  SpillSegmentWriter(std::string path, std::uint64_t configDigest);
  ~SpillSegmentWriter();
  SpillSegmentWriter(const SpillSegmentWriter&) = delete;
  SpillSegmentWriter& operator=(const SpillSegmentWriter&) = delete;

  void add(std::uint64_t id, std::uint32_t flightCount, const std::byte* blob,
           std::size_t len);
  /// Flush, patch the header with the final counts, close.  Returns the
  /// segment's catalogue entry.
  [[nodiscard]] SegmentInfo seal();

  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] std::uint64_t bytesWritten() const { return fileBytes_; }
  /// Current in-memory buffer footprint (counted by --mem-limit-mb).
  [[nodiscard]] std::size_t bufferBytes() const { return buf_.capacity(); }

 private:
  void flushBuf();

  std::string path_;
  std::uint64_t digest_ = 0;
  std::FILE* f_ = nullptr;
  std::vector<std::byte> buf_;
  std::uint64_t records_ = 0;
  std::uint64_t payloadBytes_ = 0;
  std::uint64_t flightSum_ = 0;
  std::uint64_t fileBytes_ = 0;
  bool sealed_ = false;
};

/// mmap-backed reader over a sealed segment.  Validates the header on
/// open and bounds every record read; all failure modes raise SimError.
class SpillSegmentReader {
 public:
  struct Record {
    std::uint64_t id = 0;
    std::uint32_t flightCount = 0;
    const std::byte* blob = nullptr;
    std::uint32_t len = 0;
  };

  SpillSegmentReader(const std::string& path, std::uint64_t expectDigest);
  ~SpillSegmentReader();
  SpillSegmentReader(const SpillSegmentReader&) = delete;
  SpillSegmentReader& operator=(const SpillSegmentReader&) = delete;

  /// Advance to the next record; false once `records()` have been read.
  [[nodiscard]] bool next(Record& r);

  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] std::uint64_t flightSum() const { return flightSum_; }
  [[nodiscard]] std::uint64_t payloadBytes() const { return payloadBytes_; }

 private:
  int fd_ = -1;
  const std::byte* map_ = nullptr;
  std::size_t mapLen_ = 0;
  std::size_t pos_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t read_ = 0;
  std::uint64_t flightSum_ = 0;
  std::uint64_t payloadBytes_ = 0;
};

/// Append-only log of visited-state records, one per state id in id
/// order.  Exact mode appends (encLen, enc, parent, packedAction);
/// compact mode appends bare fingerprints.  The manifest pins the log's
/// valid byte length, so a torn tail from a mid-write kill is truncated
/// on resume instead of misparsed.
class VisitedLogWriter {
 public:
  /// Open `path` for appending with the first `validBytes` preserved
  /// (anything past them — a torn tail — is truncated away).
  VisitedLogWriter(const std::string& path, std::uint64_t validBytes);
  ~VisitedLogWriter();
  VisitedLogWriter(const VisitedLogWriter&) = delete;
  VisitedLogWriter& operator=(const VisitedLogWriter&) = delete;

  void appendExact(const std::byte* enc, std::size_t len, std::uint32_t parent,
                   std::uint64_t action);
  void appendFp(std::uint64_t fp);
  /// Flush buffered records to the file; the manifest may then pin the
  /// returned offset as the new valid length.
  [[nodiscard]] std::uint64_t flush();
  [[nodiscard]] std::uint64_t offset() const { return offset_ + buf_.size(); }
  [[nodiscard]] std::size_t bufferBytes() const { return buf_.capacity(); }

 private:
  std::FILE* f_ = nullptr;
  std::vector<std::byte> buf_;
  std::uint64_t offset_ = 0;
};

/// mmap-backed reader over the first `validBytes` of a visited log.
class VisitedLogReader {
 public:
  VisitedLogReader(const std::string& path, std::uint64_t validBytes);
  ~VisitedLogReader();
  VisitedLogReader(const VisitedLogReader&) = delete;
  VisitedLogReader& operator=(const VisitedLogReader&) = delete;

  /// Exact-mode record; false at end of the valid prefix.
  [[nodiscard]] bool nextExact(std::vector<std::byte>& enc,
                               std::uint32_t& parent, std::uint64_t& action);
  /// Compact-mode record; false at end of the valid prefix.
  [[nodiscard]] bool nextFp(std::uint64_t& fp);

 private:
  int fd_ = -1;
  const std::byte* map_ = nullptr;
  std::size_t mapLen_ = 0;
  std::size_t pos_ = 0;
};

/// Bitstate dump: header (magic "LCBLOOM1", u32 version, u32 hashes,
/// u64 digest, u64 word count) + raw words.  Rewritten whole at each
/// checkpoint (tmp+rename).
void writeBitstateFile(const std::string& path, std::uint64_t configDigest,
                       std::uint32_t hashes,
                       const std::vector<std::uint64_t>& words);
[[nodiscard]] std::vector<std::uint64_t> readBitstateFile(
    const std::string& path, std::uint64_t expectDigest,
    std::uint32_t& hashesOut);

/// Everything a resume needs, as stored in `DIR/MANIFEST`.
struct CheckpointManifest {
  std::uint64_t configDigest = 0;
  std::string visitedMode;  ///< "exact" | "compact" | "bitstate"
  std::uint64_t wavesCompleted = 0;
  std::uint64_t statesExplored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t frontierPeak = 0;
  std::uint64_t ampleStates = 0;
  std::uint64_t nextId = 0;
  std::uint64_t txnNext = 1;
  std::uint64_t encodeCalls = 0;
  std::uint64_t insertCalls = 0;
  std::uint64_t storedStates = 0;
  std::uint64_t storedEncodingBytes = 0;
  std::array<std::uint64_t, 6> probeHist{};
  std::uint64_t visitedLogBytes = 0;
  std::uint64_t visitedLogRecords = 0;
  std::uint64_t bitstateWords = 0;
  std::uint32_t bitstateHashes = 0;
  /// Pending (not yet expanded) wave, in frontier order.  `path` holds
  /// the basename; readManifest rejoins it with the checkpoint dir.
  std::vector<SegmentInfo> frontier;
};

/// Write `DIR/MANIFEST` atomically (tmp file + rename).
void writeManifest(const std::string& dir, const CheckpointManifest& m);

/// Parse `DIR/MANIFEST`; every structural problem — missing file, bad
/// version line, short/garbled fields — raises SimError.
[[nodiscard]] CheckpointManifest readManifest(const std::string& dir);

}  // namespace lcdc::mc
