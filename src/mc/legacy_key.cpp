#include "mc/legacy_key.hpp"

#include <algorithm>

namespace lcdc::mc {

LegacyCanonicalizer::LegacyCanonicalizer(const McConfig& cfg)
    : cfg_(cfg),
      perms_(makeNodePermutations(cfg.numProcessors, cfg.symmetry)) {
  for (const auto& perm : perms_) {
    std::vector<NodeId> inv(perm.size());
    for (NodeId i = 0; i < perm.size(); ++i) inv[perm[i]] = i;
    invPerms_.push_back(std::move(inv));
  }
}

std::string LegacyCanonicalizer::key(const World& w) {
  std::string best = keyWithPerm(w, perms_[0], invPerms_[0]);
  for (std::size_t i = 1; i < perms_.size(); ++i) {
    std::string k = keyWithPerm(w, perms_[i], invPerms_[i]);
    if (k < best) best = std::move(k);
  }
  return best;
}

NodeId LegacyCanonicalizer::mapNode(NodeId n,
                                    const std::vector<NodeId>& perm) const {
  return n < cfg_.numProcessors ? perm[n] : n;
}

std::string LegacyCanonicalizer::keyWithPerm(const World& w,
                                             const std::vector<NodeId>& perm,
                                             const std::vector<NodeId>& inv) {
  txnMap_.clear();
  out_.str(std::string());
  for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
    const proto::DirEntry& e = w.dirs[0].entry(b);
    out_ << 'D' << static_cast<int>(e.core.state) << ','
         << mapNode(e.core.busyRequester, perm) << ','
         << static_cast<int>(e.core.busyReq) << ",[";
    std::vector<NodeId> cached;
    cached.reserve(e.core.cached.size());
    for (const NodeId n : e.core.cached) cached.push_back(mapNode(n, perm));
    std::sort(cached.begin(), cached.end());
    for (const NodeId n : cached) out_ << n << ' ';
    out_ << ']';
    if (cfg_.modelData) {
      out_ << 'v';
      if (e.mem.empty()) {
        out_ << '-';
      } else {
        out_ << e.mem[0];
      }
    }
    out_ << ';';
  }
  // Caches in canonical (permuted) id order.
  for (NodeId i = 0; i < cfg_.numProcessors; ++i) {
    const proto::CacheController& cache = w.caches[inv[i]];
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      emitLine(cache.findLine(b), perm);
    }
  }
  // Flight bag: order-independent — sorted by a view of each message in
  // which txn ids already canonicalized by the dir/cache sections appear
  // as their small marker and ids first seen in flight collapse to a
  // placeholder.  Sorting on raw txn ids would leak the global
  // allocation order (path- and scheduling-dependent) into the key,
  // splitting identical states.  Two in-flight messages can tie only
  // when they are content-identical up to such fresh ids; either order
  // then yields the same final key (markers are assigned positionally,
  // and one (requester, block) never has two concurrent transactions).
  std::vector<std::pair<std::string, std::string>> msgs;  // {view, raw}
  msgs.reserve(w.flight.size());
  for (const Flight& f : w.flight) {
    std::string raw = preKey(f, perm);
    msgs.emplace_back(sortView(raw), std::move(raw));
  }
  std::sort(msgs.begin(), msgs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& m : msgs) out_ << 'F' << remapInString(m.second) << ';';
  return out_.str();
}

std::string LegacyCanonicalizer::sortView(const std::string& s) const {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '<') {
      const std::size_t end = s.find('>', i);
      const TransactionId id = std::stoull(s.substr(i + 1, end - i - 1));
      if (id == kNoTransaction) {
        out += '~';
      } else if (const auto it = txnMap_.find(id); it != txnMap_.end()) {
        out += std::to_string(it->second);
      } else {
        out += '?';
      }
      i = end;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string LegacyCanonicalizer::preKey(const Flight& f,
                                        const std::vector<NodeId>& perm) {
  std::ostringstream os;
  os << mapNode(f.dst, perm) << ',' << static_cast<int>(f.msg.type) << ','
     << f.msg.block << ',' << mapNode(f.msg.src, perm) << ','
     << mapNode(f.msg.requester, perm) << ','
     << static_cast<int>(f.msg.nackKind) << ','
     << static_cast<int>(f.msg.nackedReq) << ','
     << f.msg.ignoreBufferedInv << ",[";
  std::vector<NodeId> targets;
  targets.reserve(f.msg.invTargets.size());
  for (const NodeId n : f.msg.invTargets) targets.push_back(mapNode(n, perm));
  std::sort(targets.begin(), targets.end());
  for (const NodeId n : targets) os << n << ' ';
  os << ']';
  if (cfg_.modelData) {
    os << 'v';
    if (f.msg.data.empty()) {
      os << '-';
    } else {
      os << f.msg.data[0];
    }
  }
  os << ",t<" << f.msg.txn << ">,c<" << f.msg.closesTxn << '>';
  return os.str();
}

std::string LegacyCanonicalizer::remapInString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '<') {
      const std::size_t end = s.find('>', i);
      const TransactionId id = std::stoull(s.substr(i + 1, end - i - 1));
      out += std::to_string(remap(id));
      i = end;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::uint64_t LegacyCanonicalizer::remap(TransactionId id) {
  if (id == kNoTransaction) return ~std::uint64_t{0};
  const auto [it, inserted] = txnMap_.try_emplace(id, txnMap_.size());
  return it->second;
}

void LegacyCanonicalizer::emitLine(const proto::Line* line,
                                   const std::vector<NodeId>& perm) {
  if (line == nullptr) {
    out_ << "L-;";
    return;
  }
  out_ << 'L' << static_cast<int>(line->cstate)
       << static_cast<int>(line->astate) << ",i" << remap(line->ignoreFwdTxn)
       << ",d" << remap(line->dropInvTxn) << ',';
  if (cfg_.modelData) {
    out_ << 'v';
    if (line->data.empty()) {
      out_ << '-';
    } else {
      out_ << line->data[0];
    }
    // The ForwardStaleValue mutant sends epochStartData on forwards, so
    // the projection must distinguish it or the abstraction leaks.
    if (cfg_.proto.mutant == Mutant::ForwardStaleValue &&
        !line->epochStartData.empty()) {
      out_ << 'e' << line->epochStartData[0];
    }
    out_ << ',';
  }
  if (line->mshr) {
    const proto::Mshr& m = *line->mshr;
    out_ << 'M' << static_cast<int>(m.req) << m.replySeen << m.invListKnown
         << ",[";
    std::vector<NodeId> acks;
    acks.reserve(m.acksPending.size());
    for (const NodeId n : m.acksPending) acks.push_back(mapNode(n, perm));
    std::sort(acks.begin(), acks.end());
    for (const NodeId n : acks) out_ << n << ' ';
    out_ << "],[";
    std::vector<NodeId> early;
    early.reserve(m.earlyAcks.size());
    for (const NodeId n : m.earlyAcks) early.push_back(mapNode(n, perm));
    std::sort(early.begin(), early.end());
    for (const NodeId n : early) out_ << n << ' ';
    out_ << "],p";
    if (m.pendingFwd) {
      out_ << static_cast<int>(m.pendingFwd->type) << '/'
           << mapNode(m.pendingFwd->requester, perm);
    } else {
      out_ << '-';
    }
    if (cfg_.modelData) {
      out_ << ",v";
      if (m.data.empty()) {
        out_ << '-';
      } else {
        out_ << m.data[0];
      }
    }
    out_ << ",b[";
    for (const proto::Message& bm : m.buffered) {
      out_ << static_cast<int>(bm.type) << '/' << mapNode(bm.requester, perm)
           << '/' << remap(bm.txn) << ' ';
    }
    out_ << ']';
  } else {
    out_ << "M-";
  }
  out_ << ';';
}

}  // namespace lcdc::mc
