#include "mc/state_codec.hpp"

#include <algorithm>
#include <cstring>

#include "common/expect.hpp"

namespace lcdc::mc {

namespace {

/// Width needed to store values 0..maxValue.
unsigned bitsFor(std::uint64_t maxValue) {
  unsigned w = 1;
  while ((std::uint64_t{1} << w) <= maxValue) ++w;
  return w;
}

constexpr unsigned kDirStateW = 3;
constexpr unsigned kReqW = 2;
constexpr unsigned kCStateW = 2;
constexpr unsigned kAStateW = 2;
constexpr unsigned kMsgTypeW = 4;
constexpr unsigned kNackW = 4;
constexpr unsigned kTxnW = 8;
constexpr unsigned kValW = 8;
constexpr unsigned kBufCountW = 8;
constexpr unsigned kFlightCountW = 16;

/// modelData value code: 0 = absent, else word-0 value + 1.  Values are
/// bounded (stores bump a mod-4 counter), so 8 bits are ample.
std::uint16_t valCode(const BlockValue& v) {
  if (v.empty()) return 0;
  LCDC_EXPECT(v[0] <= 254, "modelData value out of 8-bit code range");
  return static_cast<std::uint16_t>(v[0] + 1);
}

}  // namespace

// -- bit-stream primitives ---------------------------------------------------

class StateCodec::BitWriter {
 public:
  explicit BitWriter(std::vector<std::byte>& out) : out_(out) {}

  void put(std::uint64_t v, unsigned w) {
    if (w > 32) {
      put(v & 0xFFFFFFFFu, 32);
      put(v >> 32, w - 32);
      return;
    }
    acc_ |= (v & ((std::uint64_t{1} << w) - 1)) << nbits_;
    nbits_ += w;
    while (nbits_ >= 8) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFF));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  /// Flush the partial byte (zero-padded) so the next write starts on a
  /// byte boundary — used to keep flight-view records memcmp-able.
  void alignByte() {
    if (nbits_ != 0) {
      out_.push_back(static_cast<std::byte>(acc_ & 0xFF));
      acc_ = 0;
      nbits_ = 0;
    }
  }

 private:
  std::vector<std::byte>& out_;
  std::uint64_t acc_ = 0;
  unsigned nbits_ = 0;
};

class StateCodec::BitReader {
 public:
  BitReader(const std::byte* data, std::size_t len) : data_(data), len_(len) {}

  std::uint64_t get(unsigned w) {
    if (w > 32) {
      const std::uint64_t lo = get(32);
      return lo | (get(w - 32) << 32);
    }
    while (nbits_ < w) {
      LCDC_EXPECT(pos_ < len_, "canonical decode ran past the buffer");
      acc_ |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(
                  data_[pos_++]))
              << nbits_;
      nbits_ += 8;
    }
    const std::uint64_t v = acc_ & ((std::uint64_t{1} << w) - 1);
    acc_ >>= w;
    nbits_ -= w;
    return v;
  }

 private:
  const std::byte* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned nbits_ = 0;
};

// -- codec -------------------------------------------------------------------

StateCodec::StateCodec(const McConfig& cfg)
    : cfg_(cfg),
      perms_(makeNodePermutations(cfg.numProcessors, cfg.symmetry)) {
  for (const auto& perm : perms_) {
    std::vector<NodeId> inv(perm.size());
    for (NodeId i = 0; i < perm.size(); ++i) inv[perm[i]] = i;
    invPerms_.push_back(std::move(inv));
  }
  noneNode_ = cfg.numProcessors + 1;
  nodeW_ = bitsFor(noneNode_);
  blockW_ = bitsFor(cfg.numBlocks > 1 ? cfg.numBlocks - 1 : 1);
  maskW_ = cfg.numProcessors;
  LCDC_EXPECT(maskW_ <= 32, "processor mask exceeds 32 bits");
  msgBits_ = 3 * nodeW_ + kMsgTypeW + blockW_ + kNackW + kReqW + 1 + maskW_ +
             (cfg.modelData ? kValW : 0) + 2 * kTxnW;
}

std::uint32_t StateCodec::mapNode(NodeId n,
                                  const std::vector<NodeId>& perm) const {
  if (n == kNoNode) return noneNode_;
  return n < cfg_.numProcessors ? perm[n] : n;
}

std::uint16_t StateCodec::txnCodeAssign(TransactionId id) {
  if (id == kNoTransaction) return 0;
  for (std::size_t i = 0; i < txnSlots_.size(); ++i) {
    if (txnSlots_[i] == id) return static_cast<std::uint16_t>(i + 1);
  }
  txnSlots_.push_back(id);
  LCDC_EXPECT(txnSlots_.size() <= 253, "too many live txns for 8-bit codes");
  return static_cast<std::uint16_t>(txnSlots_.size());
}

std::uint16_t StateCodec::txnViewCode(TransactionId id) const {
  if (id == kNoTransaction) return 0;
  for (std::size_t i = 0; i < txnSlots_.size(); ++i) {
    if (txnSlots_[i] == id) return static_cast<std::uint16_t>(i + 2);
  }
  return 1;  // fresh ids collapse to one code so sorting is id-blind
}

void StateCodec::writeMsgFields(BitWriter& bw, const Flight& f,
                                const std::vector<NodeId>& perm,
                                std::uint16_t txnCode,
                                std::uint16_t closesCode) const {
  bw.put(mapNode(f.dst, perm), nodeW_);
  bw.put(static_cast<std::uint8_t>(f.msg.type), kMsgTypeW);
  bw.put(f.msg.block, blockW_);
  bw.put(mapNode(f.msg.src, perm), nodeW_);
  bw.put(mapNode(f.msg.requester, perm), nodeW_);
  bw.put(static_cast<std::uint8_t>(f.msg.nackKind), kNackW);
  bw.put(static_cast<std::uint8_t>(f.msg.nackedReq), kReqW);
  bw.put(f.msg.ignoreBufferedInv ? 1 : 0, 1);
  std::uint32_t invMask = 0;
  for (const NodeId n : f.msg.invTargets) {
    LCDC_EXPECT(n < cfg_.numProcessors, "inv target out of processor range");
    invMask |= std::uint32_t{1} << perm[n];
  }
  bw.put(invMask, maskW_);
  if (cfg_.modelData) bw.put(valCode(f.msg.data), kValW);
  bw.put(txnCode, kTxnW);
  bw.put(closesCode, kTxnW);
}

void StateCodec::encodeWithPerm(const World& w,
                                const std::vector<NodeId>& perm,
                                const std::vector<NodeId>& inv,
                                std::vector<std::byte>& out) {
  txnSlots_.clear();
  out.clear();
  BitWriter bw(out);

  // Directory section (no txn ids live here).
  for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
    const proto::DirEntry& e = w.dirs[0].entry(b);
    bw.put(static_cast<std::uint8_t>(e.core.state), kDirStateW);
    bw.put(mapNode(e.core.busyRequester, perm), nodeW_);
    bw.put(static_cast<std::uint8_t>(e.core.busyReq), kReqW);
    std::uint32_t cachedMask = 0;
    for (const NodeId n : e.core.cached) {
      LCDC_EXPECT(n < cfg_.numProcessors, "cached node out of range");
      cachedMask |= std::uint32_t{1} << perm[n];
    }
    bw.put(cachedMask, maskW_);
    if (cfg_.modelData) bw.put(valCode(e.mem), kValW);
  }

  // Caches in canonical (permuted) id order; txn markers are assigned in
  // this traversal order, exactly as the string key assigned them.
  for (NodeId i = 0; i < cfg_.numProcessors; ++i) {
    const proto::CacheController& cache = w.caches[inv[i]];
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      const proto::Line* line = cache.findLine(b);
      if (line == nullptr) {
        bw.put(0, 1);
        continue;
      }
      bw.put(1, 1);
      bw.put(static_cast<std::uint8_t>(line->cstate), kCStateW);
      bw.put(static_cast<std::uint8_t>(line->astate), kAStateW);
      bw.put(txnCodeAssign(line->ignoreFwdTxn), kTxnW);
      bw.put(txnCodeAssign(line->dropInvTxn), kTxnW);
      if (cfg_.modelData) {
        bw.put(valCode(line->data), kValW);
        // The ForwardStaleValue mutant sends epochStartData on forwards,
        // so the projection must distinguish it or the abstraction leaks.
        if (cfg_.proto.mutant == Mutant::ForwardStaleValue) {
          bw.put(valCode(line->epochStartData), kValW);
        }
      }
      if (!line->mshr) {
        bw.put(0, 1);
        continue;
      }
      bw.put(1, 1);
      const proto::Mshr& m = *line->mshr;
      bw.put(static_cast<std::uint8_t>(m.req), kReqW);
      bw.put(m.replySeen ? 1 : 0, 1);
      bw.put(m.invListKnown ? 1 : 0, 1);
      std::uint32_t acksMask = 0;
      for (const NodeId n : m.acksPending) {
        LCDC_EXPECT(n < cfg_.numProcessors, "ack-pending node out of range");
        acksMask |= std::uint32_t{1} << perm[n];
      }
      bw.put(acksMask, maskW_);
      std::uint32_t earlyMask = 0;
      for (const NodeId n : m.earlyAcks) {
        LCDC_EXPECT(n < cfg_.numProcessors, "early-ack node out of range");
        earlyMask |= std::uint32_t{1} << perm[n];
      }
      bw.put(earlyMask, maskW_);
      if (m.pendingFwd) {
        bw.put(1, 1);
        bw.put(static_cast<std::uint8_t>(m.pendingFwd->type), kMsgTypeW);
        bw.put(mapNode(m.pendingFwd->requester, perm), nodeW_);
      } else {
        bw.put(0, 1);
      }
      if (cfg_.modelData) bw.put(valCode(m.data), kValW);
      LCDC_EXPECT(m.buffered.size() <= 255, "buffered queue exceeds 8 bits");
      bw.put(m.buffered.size(), kBufCountW);
      for (const proto::Message& bm : m.buffered) {
        bw.put(static_cast<std::uint8_t>(bm.type), kMsgTypeW);
        bw.put(mapNode(bm.requester, perm), nodeW_);
        bw.put(txnCodeAssign(bm.txn), kTxnW);
      }
    }
  }

  // Flight bag: sort by an id-blind fixed-width view (already-assigned txn
  // ids show their marker, fresh ids collapse), then emit in that order
  // while assigning fresh markers — the binary twin of the string key's
  // sortView/remap pass.  Ties are content-identical up to fresh ids, so
  // either order yields the same final bytes.
  LCDC_EXPECT(w.flight.size() <= 65535, "flight bag exceeds 16-bit count");
  const std::size_t msgBytes = (msgBits_ + 7) / 8;
  viewScratch_.clear();
  {
    BitWriter vw(viewScratch_);
    for (const Flight& f : w.flight) {
      writeMsgFields(vw, f, perm, txnViewCode(f.msg.txn),
                     txnViewCode(f.msg.closesTxn));
      vw.alignByte();
    }
  }
  order_.resize(w.flight.size());
  for (std::uint32_t i = 0; i < order_.size(); ++i) order_[i] = i;
  const std::byte* views = viewScratch_.data();
  std::sort(order_.begin(), order_.end(),
            [views, msgBytes](std::uint32_t a, std::uint32_t b) {
              return std::memcmp(views + a * msgBytes, views + b * msgBytes,
                                 msgBytes) < 0;
            });
  bw.put(w.flight.size(), kFlightCountW);
  for (const std::uint32_t i : order_) {
    const Flight& f = w.flight[i];
    writeMsgFields(bw, f, perm, txnCodeAssign(f.msg.txn),
                   txnCodeAssign(f.msg.closesTxn));
  }
  bw.alignByte();
}

void StateCodec::encode(const World& w, std::vector<std::byte>& out) {
  encodeWithPerm(w, perms_[0], invPerms_[0], out);
  for (std::size_t i = 1; i < perms_.size(); ++i) {
    encodeWithPerm(w, perms_[i], invPerms_[i], cur_);
    LCDC_EXPECT(cur_.size() == out.size(),
                "permuted encodings must have equal length");
    if (std::memcmp(cur_.data(), out.data(), out.size()) < 0) {
      out.swap(cur_);
    }
  }
}

DecodedState StateCodec::decode(const std::byte* data, std::size_t len) const {
  BitReader br(data, len);
  DecodedState d;
  d.dirs.resize(cfg_.numBlocks);
  for (auto& e : d.dirs) {
    e.state = static_cast<std::uint8_t>(br.get(kDirStateW));
    e.busyRequester = static_cast<std::uint32_t>(br.get(nodeW_));
    e.busyReq = static_cast<std::uint8_t>(br.get(kReqW));
    e.cachedMask = static_cast<std::uint32_t>(br.get(maskW_));
    if (cfg_.modelData) e.memVal = static_cast<std::uint16_t>(br.get(kValW));
  }
  d.lines.resize(static_cast<std::size_t>(cfg_.numProcessors) *
                 cfg_.numBlocks);
  for (auto& line : d.lines) {
    line.present = br.get(1) != 0;
    if (!line.present) continue;
    line.cstate = static_cast<std::uint8_t>(br.get(kCStateW));
    line.astate = static_cast<std::uint8_t>(br.get(kAStateW));
    line.ignoreFwdTxn = static_cast<std::uint16_t>(br.get(kTxnW));
    line.dropInvTxn = static_cast<std::uint16_t>(br.get(kTxnW));
    if (cfg_.modelData) {
      line.dataVal = static_cast<std::uint16_t>(br.get(kValW));
      if (cfg_.proto.mutant == Mutant::ForwardStaleValue) {
        line.epochVal = static_cast<std::uint16_t>(br.get(kValW));
      }
    }
    line.hasMshr = br.get(1) != 0;
    if (!line.hasMshr) continue;
    auto& m = line.mshr;
    m.req = static_cast<std::uint8_t>(br.get(kReqW));
    m.replySeen = br.get(1) != 0;
    m.invListKnown = br.get(1) != 0;
    m.acksMask = static_cast<std::uint32_t>(br.get(maskW_));
    m.earlyMask = static_cast<std::uint32_t>(br.get(maskW_));
    m.hasPendingFwd = br.get(1) != 0;
    if (m.hasPendingFwd) {
      m.pendingFwdType = static_cast<std::uint8_t>(br.get(kMsgTypeW));
      m.pendingFwdRequester = static_cast<std::uint32_t>(br.get(nodeW_));
    }
    if (cfg_.modelData) m.dataVal = static_cast<std::uint16_t>(br.get(kValW));
    m.buffered.resize(br.get(kBufCountW));
    for (auto& bm : m.buffered) {
      bm.type = static_cast<std::uint8_t>(br.get(kMsgTypeW));
      bm.requester = static_cast<std::uint32_t>(br.get(nodeW_));
      bm.txn = static_cast<std::uint16_t>(br.get(kTxnW));
    }
  }
  d.flight.resize(br.get(kFlightCountW));
  for (auto& msg : d.flight) {
    msg.dst = static_cast<std::uint32_t>(br.get(nodeW_));
    msg.type = static_cast<std::uint8_t>(br.get(kMsgTypeW));
    msg.block = static_cast<std::uint32_t>(br.get(blockW_));
    msg.src = static_cast<std::uint32_t>(br.get(nodeW_));
    msg.requester = static_cast<std::uint32_t>(br.get(nodeW_));
    msg.nackKind = static_cast<std::uint8_t>(br.get(kNackW));
    msg.nackedReq = static_cast<std::uint8_t>(br.get(kReqW));
    msg.ignoreBufferedInv = br.get(1) != 0;
    msg.invMask = static_cast<std::uint32_t>(br.get(maskW_));
    if (cfg_.modelData) msg.dataVal = static_cast<std::uint16_t>(br.get(kValW));
    msg.txn = static_cast<std::uint16_t>(br.get(kTxnW));
    msg.closesTxn = static_cast<std::uint16_t>(br.get(kTxnW));
  }
  return d;
}

void StateCodec::encodeDecoded(const DecodedState& d,
                               std::vector<std::byte>& out) const {
  out.clear();
  BitWriter bw(out);
  for (const auto& e : d.dirs) {
    bw.put(e.state, kDirStateW);
    bw.put(e.busyRequester, nodeW_);
    bw.put(e.busyReq, kReqW);
    bw.put(e.cachedMask, maskW_);
    if (cfg_.modelData) bw.put(e.memVal, kValW);
  }
  for (const auto& line : d.lines) {
    bw.put(line.present ? 1 : 0, 1);
    if (!line.present) continue;
    bw.put(line.cstate, kCStateW);
    bw.put(line.astate, kAStateW);
    bw.put(line.ignoreFwdTxn, kTxnW);
    bw.put(line.dropInvTxn, kTxnW);
    if (cfg_.modelData) {
      bw.put(line.dataVal, kValW);
      if (cfg_.proto.mutant == Mutant::ForwardStaleValue) {
        bw.put(line.epochVal, kValW);
      }
    }
    bw.put(line.hasMshr ? 1 : 0, 1);
    if (!line.hasMshr) continue;
    const auto& m = line.mshr;
    bw.put(m.req, kReqW);
    bw.put(m.replySeen ? 1 : 0, 1);
    bw.put(m.invListKnown ? 1 : 0, 1);
    bw.put(m.acksMask, maskW_);
    bw.put(m.earlyMask, maskW_);
    bw.put(m.hasPendingFwd ? 1 : 0, 1);
    if (m.hasPendingFwd) {
      bw.put(m.pendingFwdType, kMsgTypeW);
      bw.put(m.pendingFwdRequester, nodeW_);
    }
    if (cfg_.modelData) bw.put(m.dataVal, kValW);
    bw.put(m.buffered.size(), kBufCountW);
    for (const auto& bm : m.buffered) {
      bw.put(bm.type, kMsgTypeW);
      bw.put(bm.requester, nodeW_);
      bw.put(bm.txn, kTxnW);
    }
  }
  bw.put(d.flight.size(), kFlightCountW);
  for (const auto& msg : d.flight) {
    bw.put(msg.dst, nodeW_);
    bw.put(msg.type, kMsgTypeW);
    bw.put(msg.block, blockW_);
    bw.put(msg.src, nodeW_);
    bw.put(msg.requester, nodeW_);
    bw.put(msg.nackKind, kNackW);
    bw.put(msg.nackedReq, kReqW);
    bw.put(msg.ignoreBufferedInv ? 1 : 0, 1);
    bw.put(msg.invMask, maskW_);
    if (cfg_.modelData) bw.put(msg.dataVal, kValW);
    bw.put(msg.txn, kTxnW);
    bw.put(msg.closesTxn, kTxnW);
  }
  bw.alignByte();
}

}  // namespace lcdc::mc
