// The original text canonical key, preserved verbatim from the string-key
// explorer.  It is no longer on the exploration hot path; it survives for
// two reasons:
//
//   1. Differential oracle: the codec tests assert, over thousands of
//      sampled reachable states, that two worlds get equal binary
//      encodings (`StateCodec`) iff they get equal legacy string keys —
//      the property that makes the binary engine's state counts provably
//      byte-identical to the old engine's.
//   2. POR candidate ordering: the ample-set rule ranks safe-delivery
//      candidates by canonical successor key.  Equal *classes* are not
//      enough there — the explorer must pick the same representative the
//      old engine picked, or POR-reduced state counts drift.  Ordering by
//      this string keeps `--por` results bit-for-bit stable (and POR runs
//      are the one place the string cost is acceptable: the reduction
//      already trades throughput for fewer states).
#pragma once

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mc/world.hpp"

namespace lcdc::mc {

class LegacyCanonicalizer {
 public:
  explicit LegacyCanonicalizer(const McConfig& cfg);

  /// Canonical key: the lexicographic minimum over all processor-id
  /// permutations (just the identity without symmetry reduction).
  std::string key(const World& w);

 private:
  [[nodiscard]] NodeId mapNode(NodeId n, const std::vector<NodeId>& perm) const;
  std::string keyWithPerm(const World& w, const std::vector<NodeId>& perm,
                          const std::vector<NodeId>& inv);
  [[nodiscard]] std::string sortView(const std::string& s) const;
  std::string preKey(const Flight& f, const std::vector<NodeId>& perm);
  std::string remapInString(const std::string& s);
  std::uint64_t remap(TransactionId id);
  void emitLine(const proto::Line* line, const std::vector<NodeId>& perm);

  const McConfig& cfg_;
  std::vector<std::vector<NodeId>> perms_;
  std::vector<std::vector<NodeId>> invPerms_;
  std::map<TransactionId, std::uint64_t> txnMap_;
  std::ostringstream out_;
};

}  // namespace lcdc::mc
