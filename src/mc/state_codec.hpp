// Bit-packed canonical state encoding — the binary replacement for the
// text canonical key (see `legacy_key.hpp` for the preserved original and
// DESIGN.md §9 for the layout and the equivalence argument).
//
// The codec encodes exactly the fields the string key encoded — the
// protocol-control projection of a `World` (clocks, raw txn ids, serials,
// stamps and, without `modelData`, data values are projected away) — into
// a fixed-layout bit stream:
//
//   * field widths are fixed per configuration (node ids in
//     ceil(log2(P+2)) bits, txn markers in 8, masks in P bits, ...), so
//     equal canonical states produce byte-identical buffers;
//   * live transaction ids are renumbered to small integers numerically,
//     in encounter order, with 0 meaning "no transaction" — no string
//     rewriting;
//   * the flight bag is sorted by an id-blind fixed-width binary view of
//     each message (already-assigned txns show their marker, fresh ids
//     collapse to one code), mirroring the string key's sort-view trick;
//   * with symmetry, the encoding is produced per processor permutation
//     into a scratch buffer and the bytewise minimum wins — no P! string
//     allocations, no heap traffic beyond two reused scratch vectors.
//
// Two different worlds get equal encodings iff they got equal legacy
// string keys (the codec tests check this against `LegacyCanonicalizer`
// over sampled reachable states), which is what keeps the binary engine's
// state counts byte-identical to the old engine's.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mc/world.hpp"

namespace lcdc::mc {

/// A decoded canonical state, used by the round-trip property test
/// (`encode(decode(e)) == e`).  Fields hold canonical (already renumbered
/// / permuted) values, not raw protocol state.
struct DecodedState {
  struct Dir {
    std::uint8_t state = 0;
    std::uint32_t busyRequester = 0;
    std::uint8_t busyReq = 0;
    std::uint32_t cachedMask = 0;
    std::uint16_t memVal = 0;  ///< modelData: 0 = absent, else value+1
  };
  struct Buffered {
    std::uint8_t type = 0;
    std::uint32_t requester = 0;
    std::uint16_t txn = 0;
  };
  struct Mshr {
    std::uint8_t req = 0;
    bool replySeen = false;
    bool invListKnown = false;
    std::uint32_t acksMask = 0;
    std::uint32_t earlyMask = 0;
    bool hasPendingFwd = false;
    std::uint8_t pendingFwdType = 0;
    std::uint32_t pendingFwdRequester = 0;
    std::uint16_t dataVal = 0;
    std::vector<Buffered> buffered;
  };
  struct Line {
    bool present = false;
    std::uint8_t cstate = 0;
    std::uint8_t astate = 0;
    std::uint16_t ignoreFwdTxn = 0;
    std::uint16_t dropInvTxn = 0;
    std::uint16_t dataVal = 0;
    std::uint16_t epochVal = 0;
    bool hasMshr = false;
    Mshr mshr;
  };
  struct Msg {
    std::uint32_t dst = 0;
    std::uint8_t type = 0;
    std::uint32_t block = 0;
    std::uint32_t src = 0;
    std::uint32_t requester = 0;
    std::uint8_t nackKind = 0;
    std::uint8_t nackedReq = 0;
    bool ignoreBufferedInv = false;
    std::uint32_t invMask = 0;
    std::uint16_t dataVal = 0;
    std::uint16_t txn = 0;
    std::uint16_t closesTxn = 0;
  };
  std::vector<Dir> dirs;     ///< one per block
  std::vector<Line> lines;   ///< canonical cache-major, block-minor order
  std::vector<Msg> flight;   ///< in canonical (sorted) order
};

class StateCodec {
 public:
  explicit StateCodec(const McConfig& cfg);

  /// Canonical encoding of `w` into `out` (replaced, not appended): the
  /// bytewise minimum over all processor permutations.  Reuses internal
  /// scratch; one StateCodec must not be shared across threads.
  void encode(const World& w, std::vector<std::byte>& out);

  /// Inverse of the layout, for the round-trip test.
  [[nodiscard]] DecodedState decode(const std::byte* data,
                                    std::size_t len) const;
  /// Re-encode a decoded state (no canonicalization: the fields are
  /// already canonical).  `encodeDecoded(decode(e)) == e` must hold.
  void encodeDecoded(const DecodedState& d, std::vector<std::byte>& out) const;

  /// Bits per encoded in-flight message (fixed per configuration).
  [[nodiscard]] unsigned messageBits() const { return msgBits_; }

 private:
  class BitWriter;
  class BitReader;

  void encodeWithPerm(const World& w, const std::vector<NodeId>& perm,
                      const std::vector<NodeId>& inv,
                      std::vector<std::byte>& out);
  [[nodiscard]] std::uint32_t mapNode(NodeId n,
                                      const std::vector<NodeId>& perm) const;
  [[nodiscard]] std::uint16_t txnCodeAssign(TransactionId id);
  [[nodiscard]] std::uint16_t txnViewCode(TransactionId id) const;
  void writeMsgFields(BitWriter& bw, const Flight& f,
                      const std::vector<NodeId>& perm, std::uint16_t txnCode,
                      std::uint16_t closesCode) const;

  const McConfig& cfg_;
  std::vector<std::vector<NodeId>> perms_;
  std::vector<std::vector<NodeId>> invPerms_;
  unsigned nodeW_ = 0;   ///< covers 0..P+1 (P = home, P+1 = "no node")
  unsigned blockW_ = 0;
  unsigned maskW_ = 0;   ///< P bits
  unsigned msgBits_ = 0;
  std::uint32_t noneNode_ = 0;  ///< the canonical "no node" code (P+1)

  // Reused scratch (why this type is not thread-shareable).
  std::vector<TransactionId> txnSlots_;
  std::vector<std::byte> cur_;
  std::vector<std::byte> viewScratch_;
  std::vector<std::uint32_t> order_;
};

}  // namespace lcdc::mc
