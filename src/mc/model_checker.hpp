// Explicit-state model checker over the directory protocol — the baseline
// verification technique the paper contrasts with (Section 1: such methods
// "do not scale well to systems of a practical size"; Section 4 lists
// protocol verifications limited to a handful of nodes and one cache
// block).
//
// Design points:
//   * It drives the *same* `proto::CacheController`/`DirectoryController`
//     transition code as the simulator, so it model-checks exactly the
//     protocol we run (including fault-injected mutants).
//   * A world state = every controller's protocol-relevant state plus the
//     multiset of in-flight messages; successors are (a) delivering any
//     in-flight message — the unordered network — and (b) any processor
//     issuing any legal request or local action.
//   * States are canonicalized before hashing: logical clocks, timestamps,
//     data values, serial numbers and statistics are projected away (the
//     protocol never branches on them), and live transaction ids are
//     renumbered, so the reachable state space is finite and exploration
//     terminates.
//   * Safety checks per state: the single-writer/multiple-reader invariant,
//     protocol-invariant (Appendix B) violations surfacing as exceptions,
//     and definite deadlocks (no message in flight yet requests
//     outstanding).
//
// The bench `mc_explosion` tabulates reachable-state counts against
// (processors × blocks) — the state-space explosion that motivates the
// paper's Lamport-clock alternative.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace lcdc::mc {

struct McConfig {
  NodeId numProcessors = 2;
  BlockId numBlocks = 1;
  ProtoConfig proto{};
  /// Allow processors to issue Writebacks / Put-Shareds (more actions =>
  /// bigger space).
  bool allowEvictions = true;
  /// Abort exploration after this many distinct states.
  std::uint64_t maxStates = 2'000'000;
};

struct McResult {
  std::uint64_t statesExplored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t frontierPeak = 0;
  bool hitStateLimit = false;
  bool deadlockFound = false;
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const {
    return violations.empty() && !deadlockFound;
  }
};

/// Breadth-first exploration of the reachable protocol state space.
[[nodiscard]] McResult explore(const McConfig& cfg);

}  // namespace lcdc::mc
