// Parallel explicit-state model checker over the directory protocol — the
// baseline verification technique the paper contrasts with (Section 1:
// such methods "do not scale well to systems of a practical size";
// Section 4 lists protocol verifications limited to a handful of nodes and
// one cache block).  This engine pushes that wall outward with threads and
// two sound reductions, which is exactly the lineage of Qadeer's SC
// model-checking work cited in PAPERS.md.
//
// Design points:
//   * It drives the *same* `proto::CacheController`/`DirectoryController`
//     transition code as the simulator, so it model-checks exactly the
//     protocol we run (including fault-injected mutants).
//   * A world state = every controller's protocol-relevant state plus the
//     multiset of in-flight messages; successors are (a) delivering any
//     in-flight message — the unordered network — and (b) any processor
//     issuing any legal request or local action.
//   * States are canonicalized before hashing: logical clocks, timestamps,
//     data values, serial numbers and statistics are projected away (the
//     protocol never branches on them), and live transaction ids are
//     renumbered, so the reachable state space is finite and exploration
//     terminates.  With `symmetry`, processor ids are canonicalized too
//     (lexicographic minimum over all id permutations, Murphi-scalarset
//     style).  With `modelData`, word-0 data values and a bounded store
//     action are modeled instead of projected, plus a per-state value
//     coherence check — this is what lets MC refute value-only mutants.
//   * Exploration is a wave-synchronous parallel BFS over *binary* state
//     encodings (DESIGN.md §9): canonical states are bit-packed by
//     `StateCodec`, deduplicated in one flat open-addressing fingerprint
//     set (`common/flat_set.hpp`, CAS insertion, full-encoding compare on
//     fingerprint hits), and frontier worlds live as lossless varint
//     blobs (`WorldCodec`) in ping-pong bump arenas.  Each wave's
//     frontier is chunked across the work-stealing `lcdc::ThreadPool`,
//     the visited table grows only at wave boundaries, and all stop
//     decisions (violation found, deadlock, state cap, memory limit)
//     happen at wave boundaries, so `statesExplored` / `transitions` /
//     verdicts are identical for any `jobs` value — and byte-identical
//     to the original string-key engine (`legacy_key.hpp` remains as the
//     differential oracle).
//   * Every visited state keeps a compact parent edge (4-byte parent id +
//     the action packed into 8 bytes), so any violation or deadlock
//     reconstructs into a concrete schedule; `replay.hpp` re-executes
//     that schedule through `sim::System` with the streaming Lamport
//     checkers attached.
//   * Safety checks per state: the single-writer/multiple-reader invariant,
//     protocol-invariant (Appendix B) violations surfacing as exceptions,
//     definite deadlocks (no message in flight yet requests outstanding),
//     and — under `modelData` — value coherence of settled blocks.
//
// The bench `mc_explosion` tabulates reachable-state counts against
// (processors × blocks) — the state-space explosion that motivates the
// paper's Lamport-clock alternative — plus the effect of jobs and of the
// two reductions on that wall.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "mc/perf.hpp"
#include "proto/messages.hpp"

namespace lcdc::mc {

/// How visited states are remembered (DESIGN.md §14).
enum class VisitedMode : std::uint8_t {
  /// Lossless: 64-bit fingerprint plus the full canonical encoding; a
  /// fingerprint hit falls back to byte equality.  The only mode whose
  /// counts are exhaustive; omission bound 0.
  Exact = 0,
  /// Hash compaction: only the 64-bit fingerprint is kept, a hit is
  /// trusted.  ~12 B/state; expected omissions n(n-1)/2 / 2^64.
  Compact,
  /// Holzmann bitstate (supertrace): k bits per state in a Bloom array
  /// sized by `bitstateMb`.  O(1) bits/state; omission bound
  /// insertCalls * (ones/m)^k at the end-of-run fill ratio.  Tracks no
  /// state ids, so counterexamples carry no schedule and POR (whose
  /// proviso needs discovery ids) is rejected.
  Bitstate,
};

[[nodiscard]] const char* toString(VisitedMode m);

struct McConfig {
  NodeId numProcessors = 2;
  BlockId numBlocks = 1;
  ProtoConfig proto{};
  /// Which coherence backend to explore.  `Directory` runs the
  /// controller-driven engine described above; `Tardis` runs a
  /// self-contained rank-compressed abstraction (`tardis_mc.cpp`) whose
  /// state space is finite because timestamps are kept as relative ranks.
  /// `Bus` is not model-checkable — `explore` throws `SimError`.
  ProtocolKind protocol = ProtocolKind::Directory;
  /// Allow processors to issue Writebacks / Put-Shareds (more actions =>
  /// bigger space).
  bool allowEvictions = true;
  /// Abort exploration after this many distinct states.  The cap is
  /// enforced at wave boundaries: the final wave expands exactly the
  /// prefix of the frontier that fits, so a capped run drains cleanly and
  /// reports the same `statesExplored` for any `jobs` value.
  std::uint64_t maxStates = 2'000'000;
  /// Worker threads for the wave-parallel BFS.
  unsigned jobs = 1;
  /// Symmetry reduction over processor ids: hash the lexicographic minimum
  /// over all processor-id permutations.  Sound because processors are
  /// fully interchangeable (the protocol's control logic never branches on
  /// the numeric value of a processor id).
  bool symmetry = false;
  /// Ample-set partial-order reduction: when a state has a "safe" message
  /// delivery — pure MSHR bookkeeping at one cache that emits nothing,
  /// changes no control state, and has no in-flight sibling to the same
  /// (cache, block) — expand only that delivery.  A visited-successor
  /// proviso falls back to full expansion (see DESIGN.md for the soundness
  /// argument).
  bool por = false;
  /// Model word-0 data values instead of projecting them away: adds a
  /// bounded store action (version counter mod 4), keys states on values,
  /// and checks per-state value coherence of settled blocks.  Required to
  /// refute value-only mutants such as ForwardStaleValue.
  bool modelData = false;
  /// Keep at most this many distinct violation strings.
  std::size_t maxViolations = 32;
  /// Stop after this many BFS waves (0 = unlimited).  States within depth
  /// D form a well-defined sub-space, so equal-depth comparisons measure
  /// reduction factors on configurations too large to explore fully.
  std::uint64_t maxDepth = 0;
  /// Stop gracefully (MemLimit verdict, `McResult::memLimitHit`) at the
  /// next wave boundary once the explorer's tracked structures — visited
  /// slabs, encoding/frontier arenas, edge arrays — exceed this many MiB.
  /// 0 = unlimited.  Checked only between waves, so a run that stops here
  /// still reports exact, jobs-independent counts for the waves it did.
  std::uint64_t memLimitMb = 0;
  /// Collect nanosecond-level timing in `McResult::perf` (byte counters
  /// and the probe histogram are always collected).
  bool perf = false;
  /// Visited-set representation (see VisitedMode).
  VisitedMode visited = VisitedMode::Exact;
  /// Bitstate mode only: Bloom array budget in MiB (rounded down to a
  /// power of two of bits).
  std::uint64_t bitstateMb = 64;
  /// Non-empty: spill each wave's frontier blobs to sealed segment files
  /// under this directory instead of holding them in the ping-pong
  /// arenas, bounding frontier RSS by the spill write buffers.  Counts
  /// and verdicts are byte-identical to the in-RAM engine for any
  /// `jobs` (the segment concatenation preserves frontier order).
  std::string spillDir;
  /// Non-empty: checkpoint the visited structures + the pending wave's
  /// spill segments at wave boundaries into this directory (implies
  /// spilling there unless `spillDir` names somewhere else), making the
  /// memory-limit stop resumable.
  std::string checkpointDir;
  /// Checkpoint every N wave boundaries (also on a memory-limit or
  /// max-depth stop regardless of cadence).
  std::uint64_t checkpointEvery = 1;
  /// Non-empty: restore visited set, counters, and pending frontier from
  /// this checkpoint directory and continue exploring.
  std::string resumeDir;
};

/// One scheduled step of an exploration path.  `Deliver` indexes into the
/// in-flight vector of the *predecessor* state, which maps 1:1 onto the
/// manual-mode network deque of a replaying `sim::System` (both append
/// sends in outbox order and erase at the delivered index); `dst`, `block`
/// and `msgType` are recorded so replay can cross-check the mapping.
struct Action {
  enum class Kind : std::uint8_t { Deliver, Issue, Evict, Store };
  Kind kind = Kind::Deliver;
  std::uint32_t flightIndex = 0;  ///< Deliver: index into parent's flight
  NodeId dst = kNoNode;           ///< Deliver: receiving node
  proto::MsgType msgType{};       ///< Deliver: message type (cross-check)
  NodeId proc = kNoNode;          ///< Issue/Evict/Store: acting processor
  BlockId block = 0;              ///< block concerned
  ReqType req{};                  ///< Issue: request type
};

using Schedule = std::vector<Action>;

[[nodiscard]] std::string toString(const Action& a);

/// A reconstructed failing path: the exact message-delivery / request
/// schedule from the initial state to the bad state.
struct Counterexample {
  std::string kind;    ///< "violation" | "deadlock"
  std::string detail;  ///< first violation text / deadlock description
  Schedule schedule;
};

struct McResult {
  std::uint64_t statesExplored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t frontierPeak = 0;
  /// States expanded through a POR singleton ample set.
  std::uint64_t ampleStates = 0;
  /// Fully expanded BFS waves (the depth the exploration reached).
  std::uint64_t wavesCompleted = 0;
  bool hitStateLimit = false;
  /// Exploration stopped at a wave boundary because `memLimitMb` was
  /// exceeded (the MemLimit verdict; counts up to that wave are exact).
  bool memLimitHit = false;
  bool deadlockFound = false;
  std::vector<std::string> violations;
  /// First failing path found (wave order), when any check failed.
  std::optional<Counterexample> counterexample;
  /// Encode/insert/expand instrumentation (timing only with cfg.perf).
  McPerfCounters perf;
  /// End-of-run footprint of the visited structures: flat-set slabs +
  /// canonical-encoding arena + parent/action/encoding-ref arrays.
  std::uint64_t visitedBytes = 0;
  /// Peak bytes reserved by the two ping-pong frontier-blob arenas.
  std::uint64_t frontierBytesPeak = 0;
  /// Peak of the tracked-bytes sum `--mem-limit-mb` bounds (visited
  /// slabs, arenas, id arrays, spill buffers, bitstate array).
  std::uint64_t trackedBytesPeak = 0;
  /// Process peak RSS (getrusage ru_maxrss) at the end of the run — the
  /// ground truth the tracked-bytes accounting approximates.
  std::uint64_t peakRssBytes = 0;
  /// Probability bound on missed states for the lossy visited modes
  /// (0 for exact; see VisitedMode for the formulas).
  double omissionBound = 0.0;
  /// True when this result continues a `--resume` checkpoint (counts
  /// then cover the combined run).
  bool resumed = false;

  [[nodiscard]] bool ok() const {
    return violations.empty() && !deadlockFound;
  }
};

/// Wave-synchronous parallel breadth-first exploration of the reachable
/// protocol state space.
[[nodiscard]] McResult explore(const McConfig& cfg);

}  // namespace lcdc::mc
