#include "mc/world_codec.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "trace/codec.hpp"

namespace lcdc::mc {

namespace {

// The varint primitives and Message/list encoders moved to the shared
// trace codec (trace/codec.hpp) so world blobs, archived binary traces
// and the dsm wire format share one byte-level vocabulary.  The
// world-state composites (MSHR, cache line, directory entry) stay here:
// they are model-checker snapshots, not protocol artifacts.
using trace::codec::getMessage;
using trace::codec::getNodes;
using trace::codec::getStamps;
using trace::codec::getWords;
using trace::codec::putMessage;
using trace::codec::putNodes;
using trace::codec::putStamps;
using trace::codec::putU64;
using trace::codec::putWords;
using Reader = trace::codec::Reader;

void putMshr(std::vector<std::byte>& out, const proto::Mshr& m) {
  putU64(out, static_cast<std::uint8_t>(m.req));
  putU64(out, m.replySeen ? 1 : 0);
  putU64(out, m.invListKnown ? 1 : 0);
  putNodes(out, m.acksPending);
  putNodes(out, m.earlyAcks);
  putWords(out, m.data);
  putU64(out, m.txn);
  putU64(out, m.serial);
  putStamps(out, m.stamps);
  putU64(out, m.earlyStamp);
  putU64(out, m.pendingFwd ? 1 : 0);
  if (m.pendingFwd) putMessage(out, *m.pendingFwd);
  putU64(out, m.buffered.size());
  for (const proto::Message& bm : m.buffered) putMessage(out, bm);
}

proto::Mshr getMshr(Reader& r) {
  proto::Mshr m;
  m.req = static_cast<ReqType>(r.u8());
  m.replySeen = r.b();
  m.invListKnown = r.b();
  m.acksPending = getNodes(r);
  m.earlyAcks = getNodes(r);
  m.data = getWords(r);
  m.txn = r.u64();
  m.serial = r.u64();
  m.stamps = getStamps(r);
  m.earlyStamp = r.u64();
  if (r.b()) m.pendingFwd = getMessage(r);
  const std::size_t nBuf = r.u64();
  m.buffered.resize(nBuf);
  for (proto::Message& bm : m.buffered) bm = getMessage(r);
  return m;
}

void putLine(std::vector<std::byte>& out, const proto::Line& line) {
  putU64(out, static_cast<std::uint8_t>(line.cstate));
  putU64(out, static_cast<std::uint8_t>(line.astate));
  putWords(out, line.data);
  putU64(out, line.mshr ? 1 : 0);
  if (line.mshr) putMshr(out, *line.mshr);
  putU64(out, line.ignoreFwdTxn);
  putU64(out, line.dropInvTxn);
  putU64(out, line.epochTxn);
  putU64(out, line.epochSerial);
  putU64(out, line.epochTs);
  putWords(out, line.epochStartData);
}

proto::Line getLine(Reader& r) {
  proto::Line line;
  line.cstate = static_cast<CacheState>(r.u8());
  line.astate = static_cast<AState>(r.u8());
  line.data = getWords(r);
  if (r.b()) line.mshr = getMshr(r);
  line.ignoreFwdTxn = r.u64();
  line.dropInvTxn = r.u64();
  line.epochTxn = r.u64();
  line.epochSerial = r.u64();
  line.epochTs = r.u64();
  line.epochStartData = getWords(r);
  return line;
}

void putDirEntry(std::vector<std::byte>& out, const proto::DirEntry& e) {
  putU64(out, static_cast<std::uint8_t>(e.core.state));
  putNodes(out, e.core.cached);
  putU64(out, e.core.busyRequester);
  putU64(out, static_cast<std::uint8_t>(e.core.busyReq));
  putWords(out, e.mem);
  putU64(out, e.clock);
  putU64(out, e.serialCount);
  putU64(out, e.busyTxn.id);
  putU64(out, e.busyTxn.serial);
  putU64(out, static_cast<std::uint8_t>(e.busyTxn.kind));
  putU64(out, e.busyTxn.block);
  putU64(out, e.busyTxn.requester);
  putU64(out, e.busyHomeTs);
  putStamps(out, e.busyStamps);
}

proto::DirEntry getDirEntry(Reader& r) {
  proto::DirEntry e;
  e.core.state = static_cast<DirState>(r.u8());
  e.core.cached = getNodes(r);
  e.core.busyRequester = r.u32();
  e.core.busyReq = static_cast<ReqType>(r.u8());
  e.mem = getWords(r);
  e.clock = r.u64();
  e.serialCount = r.u64();
  e.busyTxn.id = r.u64();
  e.busyTxn.serial = r.u64();
  e.busyTxn.kind = static_cast<TxnKind>(r.u8());
  e.busyTxn.block = r.u32();
  e.busyTxn.requester = r.u32();
  e.busyHomeTs = r.u64();
  e.busyStamps = getStamps(r);
  return e;
}

}  // namespace

void WorldCodec::save(const World& w, std::vector<std::byte>& out) const {
  out.clear();
  // Caches (count fixed by configuration).  Lines are emitted sorted by
  // block id so a world's blob does not depend on hash-map iteration
  // order (tidy for debugging; nothing compares blobs).
  for (const proto::CacheController& cache : w.caches) {
    putU64(out, cache.clockRaw());
    const auto& lines = cache.linesRaw();
    putU64(out, lines.size());
    std::vector<BlockId> blocks;
    blocks.reserve(lines.size());
    for (const auto& [block, line] : lines) blocks.push_back(block);
    std::sort(blocks.begin(), blocks.end());
    for (const BlockId b : blocks) {
      putU64(out, b);
      putLine(out, lines.at(b));
    }
  }
  // The single directory slice.
  const auto& entries = w.dirs[0].entriesRaw();
  putU64(out, entries.size());
  std::vector<BlockId> blocks;
  blocks.reserve(entries.size());
  for (const auto& [block, e] : entries) blocks.push_back(block);
  std::sort(blocks.begin(), blocks.end());
  for (const BlockId b : blocks) {
    putU64(out, b);
    putDirEntry(out, entries.at(b));
  }
  // Flight bag, in order (order is part of the world: actions index it).
  putU64(out, w.flight.size());
  for (const Flight& f : w.flight) {
    putU64(out, f.dst);
    putMessage(out, f.msg);
  }
}

World WorldCodec::load(const std::byte* data, std::size_t len) const {
  Reader r{data, len};
  World w;
  for (NodeId p = 0; p < cfg_.numProcessors; ++p) {
    w.caches.emplace_back(p, cfg_.proto, proto::nullSink(), nullCacheClient());
    proto::CacheController& cache = w.caches.back();
    cache.clockRaw() = r.u64();
    const std::size_t nLines = r.u64();
    for (std::size_t i = 0; i < nLines; ++i) {
      const BlockId b = r.u32();
      cache.linesRaw().emplace(b, getLine(r));
    }
    cache.recountLinesHeld();
  }
  w.dirs.emplace_back(cfg_.numProcessors, cfg_.proto, proto::nullSink(),
                      *txns_);
  proto::DirectoryController& dir = w.dirs[0];
  const std::size_t nEntries = r.u64();
  for (std::size_t i = 0; i < nEntries; ++i) {
    const BlockId b = r.u32();
    dir.entriesRaw().emplace(b, getDirEntry(r));
  }
  const std::size_t nFlight = r.u64();
  w.flight.reserve(nFlight);
  for (std::size_t i = 0; i < nFlight; ++i) {
    Flight f;
    f.dst = r.u32();
    f.msg = getMessage(r);
    w.flight.push_back(std::move(f));
  }
  LCDC_EXPECT(r.pos == len, "world blob has trailing bytes");
  return w;
}

}  // namespace lcdc::mc
