// The model checker's state vocabulary, shared by the explorer, the two
// codecs (canonical binary key / lossless frontier blob) and the tests.
//
// A `World` is a full protocol state: every controller as a plain value
// plus the multiset of in-flight messages.  Controllers come from
// `src/proto` unchanged — the checker verifies exactly the code the
// simulator runs.
#pragma once

#include <vector>

#include "mc/model_checker.hpp"
#include "proto/cache.hpp"
#include "proto/directory.hpp"

namespace lcdc::mc {

/// One in-flight message with its destination (the network "bag").
struct Flight {
  NodeId dst = kNoNode;
  proto::Message msg;
};

/// A full world state.  Controllers are plain value types, so copying the
/// world is a deep copy of the protocol state.
struct World {
  std::vector<proto::CacheController> caches;
  std::vector<proto::DirectoryController> dirs;  // one in this checker
  std::vector<Flight> flight;
};

/// Processors never see callbacks in the model checker: there is no
/// program, only nondeterministic request intents.
[[nodiscard]] proto::CacheClient& nullCacheClient();

/// The exploration root: one directory slice at node id `numProcessors`
/// owning every block (initial value 0), plus one empty cache per
/// processor.  All copied worlds alias the shared `txns` counter.
[[nodiscard]] World makeInitialWorld(const McConfig& cfg,
                                     proto::TxnCounter& txns);

/// All processor-id permutations when symmetry reduction is on (identity
/// first).  Capped at 6 processors — beyond that the P! canonicalization
/// cost dwarfs what the reduction saves, so symmetry degrades to identity.
[[nodiscard]] std::vector<std::vector<NodeId>> makeNodePermutations(
    NodeId procs, bool symmetry);

}  // namespace lcdc::mc
