#include "mc/replay.hpp"

#include <sstream>
#include <vector>

#include "backend/backend.hpp"
#include "common/expect.hpp"
#include "proto/observer.hpp"
#include "sim/system.hpp"
#include "trace/trace.hpp"
#include "verify/stream.hpp"
#include "workload/program.hpp"

namespace lcdc::mc {

namespace {

/// The simulator configuration that mirrors an MC world: one directory
/// (home id == numProcessors), no programs, no retry pacing, manual
/// network.  Latency fields are irrelevant in manual mode.
SystemConfig replaySystemConfig(const McConfig& cfg) {
  SystemConfig sys;
  sys.proto = cfg.proto;
  sys.numProcessors = cfg.numProcessors;
  sys.numDirectories = 1;
  sys.numBlocks = cfg.numBlocks;
  sys.cacheCapacity = 0;
  sys.minLatency = 1;
  sys.maxLatency = 1;
  sys.retryDelay = 0;
  sys.seed = 1;
  sys.storeBufferDepth = 0;
  return sys;
}

}  // namespace

ReplayResult replayCounterexample(const McConfig& cfg,
                                  const Schedule& schedule,
                                  trace::Trace* traceOut) {
  ReplayResult res;
  const SystemConfig sysCfg = replaySystemConfig(cfg);
  verify::VerifyConfig vcfg = proto::verifyConfigFor(sysCfg);
  // A counterexample is a prefix of an execution: transactions may still
  // be open when the schedule ends.
  vcfg.expectComplete = false;
  verify::StreamCheckerSet checkers(vcfg);
  proto::TeeSink tee;
  if (traceOut != nullptr) tee.attach(*traceOut);
  tee.attach(checkers);

  sim::System sys(sysCfg, tee, net::Network::Mode::Manual);
  tee.onRunBegin(sysCfg);

  // Replayed stores carry globally unique values (the MC's mod-4 version
  // counter is an abstraction; control flow is value-independent, and
  // unique values give the value-chain checker maximal discrimination).
  std::vector<std::uint64_t> storeSeq(cfg.numProcessors, 0);

  const auto bindLoads = [&sys, &cfg] {
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      for (BlockId b = 0; b < cfg.numBlocks; ++b) {
        (void)sys.injectBind(p, b, OpKind::Load, 0, 0);
      }
    }
  };

  std::size_t applied = 0;
  try {
    for (const Action& a : schedule) {
      switch (a.kind) {
        case Action::Kind::Deliver: {
          const auto& pending = sys.network().pending();
          if (a.flightIndex >= pending.size()) {
            std::ostringstream os;
            os << "step " << applied << ": flight index " << a.flightIndex
               << " out of range (" << pending.size() << " pending)";
            res.divergence = os.str();
            break;
          }
          const net::Envelope& env = pending[a.flightIndex];
          if (env.dst != a.dst || env.msg.type != a.msgType ||
              env.msg.block != a.block) {
            std::ostringstream os;
            os << "step " << applied << ": pending message #" << a.flightIndex
               << " is " << proto::toString(env.msg.type) << " -> node "
               << env.dst << " (block " << env.msg.block
               << "), schedule expected " << toString(a);
            res.divergence = os.str();
            break;
          }
          sys.deliverManual(a.flightIndex);
          break;
        }
        case Action::Kind::Issue:
          sys.injectRequest(a.proc, a.block, a.req);
          break;
        case Action::Kind::Evict:
          sys.injectEvict(a.proc, a.block);
          break;
        case Action::Kind::Store: {
          const Word v =
              workload::makeStoreValue(a.proc, storeSeq[a.proc]++);
          if (!sys.injectBind(a.proc, a.block, OpKind::Store, 0, v)) {
            std::ostringstream os;
            os << "step " << applied << ": store by node " << a.proc
               << " on block " << a.block << " not bindable";
            res.divergence = os.str();
          }
          break;
        }
      }
      if (!res.divergence.empty()) break;
      applied += 1;
      bindLoads();
    }
    res.scheduleCompleted = res.divergence.empty();
  } catch (const ProtocolError& e) {
    // The schedule reproduced an Appendix-B invariant violation — exactly
    // what a "protocol invariant" MC counterexample predicts.
    res.invariant = e.what();
  }

  res.deadlocked = sys.network().empty() && !sys.quiescent();
  res.opsBound = sys.totalOpsBound();

  RunResult rr;
  rr.outcome = res.deadlocked ? RunResult::Outcome::Deadlock
                              : RunResult::Outcome::Quiescent;
  rr.opsBound = res.opsBound;
  rr.endTime = sys.now();
  rr.eventsProcessed = applied;
  tee.onRunEnd(rr);
  checkers.finish();
  res.report = checkers.report();
  return res;
}

}  // namespace lcdc::mc
