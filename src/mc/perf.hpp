// Instrumentation counters for the binary exploration core (`lcdc mc
// --perf`, campaign mc-stage reports, bench S12).
//
// Byte/call counters and the probe histogram are always collected (they
// are a handful of adds per state).  Nanosecond timers are collected only
// when `McConfig::perf` is set — two `steady_clock` reads per encode at
// ~180k states/s is measurable, so timing is opt-in.
#pragma once

#include <array>
#include <cstdint>

namespace lcdc::mc {

struct McPerfCounters {
  // -- always on -------------------------------------------------------------
  /// Canonical encodes performed (one per generated successor + root).
  std::uint64_t encodeCalls = 0;
  /// Visited-set insert attempts (equals encodeCalls on the hot path).
  std::uint64_t insertCalls = 0;
  /// Distinct states stored (visited-set insertions that won).
  std::uint64_t storedStates = 0;
  /// Total canonical-encoding bytes stored for distinct states.  This is
  /// deterministic for a given configuration (the state set is), unlike
  /// arena reservations, so it is safe for deterministic reports.
  std::uint64_t storedEncodingBytes = 0;
  /// Linear-probe length histogram for visited-set inserts:
  /// 0, 1, 2, 3-4, 5-8, >8 extra slots past the home slot.
  std::array<std::uint64_t, 6> probeHist{};
  /// Out-of-core traffic (zero for pure in-RAM runs): bytes written to /
  /// read back from frontier spill segments, sealed segment count, and
  /// bytes written into checkpoints (visited log + bitstate dumps).
  std::uint64_t spillBytesWritten = 0;
  std::uint64_t spillBytesRead = 0;
  std::uint64_t spillSegments = 0;
  std::uint64_t checkpointBytes = 0;
  /// Omission-probability bound for the lossy visited modes (0 for
  /// exact); set once at the end of a run, mirrored in McResult.
  double omissionBound = 0.0;

  // -- timing (zero unless McConfig::perf) -----------------------------------
  std::uint64_t encodeNanos = 0;     ///< canonical encode + min-over-perms
  std::uint64_t insertNanos = 0;     ///< fingerprint + flat-set insert
  std::uint64_t worldSaveNanos = 0;  ///< frontier blob serialization
  std::uint64_t worldLoadNanos = 0;  ///< frontier blob deserialization
  std::uint64_t expandNanos = 0;     ///< total worker time expanding chunks

  void merge(const McPerfCounters& o) {
    encodeCalls += o.encodeCalls;
    insertCalls += o.insertCalls;
    storedStates += o.storedStates;
    storedEncodingBytes += o.storedEncodingBytes;
    for (std::size_t i = 0; i < probeHist.size(); ++i) {
      probeHist[i] += o.probeHist[i];
    }
    spillBytesWritten += o.spillBytesWritten;
    spillBytesRead += o.spillBytesRead;
    spillSegments += o.spillSegments;
    checkpointBytes += o.checkpointBytes;
    if (o.omissionBound > omissionBound) omissionBound = o.omissionBound;
    encodeNanos += o.encodeNanos;
    insertNanos += o.insertNanos;
    worldSaveNanos += o.worldSaveNanos;
    worldLoadNanos += o.worldLoadNanos;
    expandNanos += o.expandNanos;
  }

  void noteProbes(std::uint32_t probes) {
    if (probes == 0) probeHist[0] += 1;
    else if (probes == 1) probeHist[1] += 1;
    else if (probes == 2) probeHist[2] += 1;
    else if (probes <= 4) probeHist[3] += 1;
    else if (probes <= 8) probeHist[4] += 1;
    else probeHist[5] += 1;
  }
};

}  // namespace lcdc::mc
