// Explicit-state exploration of the Tardis timestamp protocol (backend
// `tardis`, DESIGN.md §12).  Unlike the directory engine, which drives the
// production controllers, this is a self-contained abstract model: data
// values are projected away and every timestamp is kept only up to a
// rebasing against the state's minimum, which collapses most of the
// logical-time orbit.  Closure is still not guaranteed — Tardis timestamps
// grow without bound and blocks can drift apart — so exploration is
// bounded-exhaustive: it is exact up to `maxStates` / `maxDepth` and
// reports `hitStateLimit` when the cap, not the protocol, ended the walk.
//
// Safety checks per transition:
//   * exclusive grants must clear the lease frontier (u > rts) — the
//     invariant the `extendLease` clock bump maintains and the
//     `drop-lease-bump` mutant breaks;
//   * single-writer: at most one Exclusive line per block;
//   * no lease beyond the home frontier (leaseEnd <= rts);
//   * home-side ownership sanity (an owner never re-requests).
//
// Directory-only knobs (`symmetry`, `por`, `modelData`, `jobs`) are
// accepted and ignored; the model is small enough that the sequential BFS
// is never the bottleneck.  Counterexamples carry kind and detail but no
// replay schedule — `lcdc mc --replay` is a directory-backend feature.
#pragma once

#include "mc/model_checker.hpp"

namespace lcdc::mc {

[[nodiscard]] McResult exploreTardis(const McConfig& cfg);

}  // namespace lcdc::mc
