#include "mc/model_checker.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <mutex>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "common/expect.hpp"
#include "common/thread_pool.hpp"
#include "proto/cache.hpp"
#include "proto/directory.hpp"

namespace lcdc::mc {

namespace {

/// Processors never see callbacks in the model checker: there is no
/// program, only nondeterministic request intents.
class NullClient final : public proto::CacheClient {
 public:
  void onComplete(BlockId, ReqType) override {}
  void onNacked(BlockId, ReqType, NackKind) override {}
  void onLineUnblocked(BlockId) override {}
};

NullClient& nullClient() {
  static NullClient c;
  return c;
}

/// One in-flight message with its destination (the network "bag").
struct Flight {
  NodeId dst = kNoNode;
  proto::Message msg;
};

/// A full world state.  Controllers are plain value types, so copying the
/// world is a deep copy of the protocol state.
struct World {
  std::vector<proto::CacheController> caches;
  std::vector<proto::DirectoryController> dirs;  // one in this checker
  std::vector<Flight> flight;
};

/// All processor-id permutations when symmetry reduction is on (identity
/// first).  Capped at 6 processors — beyond that the P! canonicalization
/// cost dwarfs what the reduction saves, so symmetry degrades to identity.
std::vector<std::vector<NodeId>> makePerms(NodeId procs, bool symmetry) {
  std::vector<NodeId> ident(procs);
  std::iota(ident.begin(), ident.end(), NodeId{0});
  if (!symmetry || procs > 6) return {ident};
  std::vector<std::vector<NodeId>> out;
  std::vector<NodeId> perm = ident;
  do {
    out.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return out;
}

// -- canonical serialization -------------------------------------------------

class Canonicalizer {
 public:
  explicit Canonicalizer(const McConfig& cfg)
      : cfg_(cfg), perms_(makePerms(cfg.numProcessors, cfg.symmetry)) {
    for (const auto& perm : perms_) {
      std::vector<NodeId> inv(perm.size());
      for (NodeId i = 0; i < perm.size(); ++i) inv[perm[i]] = i;
      invPerms_.push_back(std::move(inv));
    }
  }

  /// Canonical key: the lexicographic minimum over all processor-id
  /// permutations (just the identity without symmetry reduction).
  std::string key(const World& w) {
    std::string best = keyWithPerm(w, perms_[0], invPerms_[0]);
    for (std::size_t i = 1; i < perms_.size(); ++i) {
      std::string k = keyWithPerm(w, perms_[i], invPerms_[i]);
      if (k < best) best = std::move(k);
    }
    return best;
  }

 private:
  [[nodiscard]] NodeId mapNode(NodeId n, const std::vector<NodeId>& perm) const {
    return n < cfg_.numProcessors ? perm[n] : n;
  }

  std::string keyWithPerm(const World& w, const std::vector<NodeId>& perm,
                          const std::vector<NodeId>& inv) {
    txnMap_.clear();
    out_.str(std::string());
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      const proto::DirEntry& e = w.dirs[0].entry(b);
      out_ << 'D' << static_cast<int>(e.core.state) << ','
           << mapNode(e.core.busyRequester, perm) << ','
           << static_cast<int>(e.core.busyReq) << ",[";
      std::vector<NodeId> cached;
      cached.reserve(e.core.cached.size());
      for (const NodeId n : e.core.cached) cached.push_back(mapNode(n, perm));
      std::sort(cached.begin(), cached.end());
      for (const NodeId n : cached) out_ << n << ' ';
      out_ << ']';
      if (cfg_.modelData) {
        out_ << 'v';
        if (e.mem.empty()) {
          out_ << '-';
        } else {
          out_ << e.mem[0];
        }
      }
      out_ << ';';
    }
    // Caches in canonical (permuted) id order.
    for (NodeId i = 0; i < cfg_.numProcessors; ++i) {
      const proto::CacheController& cache = w.caches[inv[i]];
      for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
        emitLine(cache.findLine(b), perm);
      }
    }
    // Flight bag: order-independent — sorted by a view of each message in
    // which txn ids already canonicalized by the dir/cache sections appear
    // as their small marker and ids first seen in flight collapse to a
    // placeholder.  Sorting on raw txn ids would leak the global
    // allocation order (path- and scheduling-dependent) into the key,
    // splitting identical states.  Two in-flight messages can tie only
    // when they are content-identical up to such fresh ids; either order
    // then yields the same final key (markers are assigned positionally,
    // and one (requester, block) never has two concurrent transactions).
    std::vector<std::pair<std::string, std::string>> msgs;  // {view, raw}
    msgs.reserve(w.flight.size());
    for (const Flight& f : w.flight) {
      std::string raw = preKey(f, perm);
      msgs.emplace_back(sortView(raw), std::move(raw));
    }
    std::sort(msgs.begin(), msgs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& m : msgs) out_ << 'F' << remapInString(m.second) << ';';
    return out_.str();
  }

  /// The id-blind sorting view of a message preKey (see above).
  [[nodiscard]] std::string sortView(const std::string& s) const {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '<') {
        const std::size_t end = s.find('>', i);
        const TransactionId id = std::stoull(s.substr(i + 1, end - i - 1));
        if (id == kNoTransaction) {
          out += '~';
        } else if (const auto it = txnMap_.find(id); it != txnMap_.end()) {
          out += std::to_string(it->second);
        } else {
          out += '?';
        }
        i = end;
      } else {
        out += s[i];
      }
    }
    return out;
  }

  /// Canonical message text with txn ids marked for later remapping.
  std::string preKey(const Flight& f, const std::vector<NodeId>& perm) {
    std::ostringstream os;
    os << mapNode(f.dst, perm) << ',' << static_cast<int>(f.msg.type) << ','
       << f.msg.block << ',' << mapNode(f.msg.src, perm) << ','
       << mapNode(f.msg.requester, perm) << ','
       << static_cast<int>(f.msg.nackKind) << ','
       << static_cast<int>(f.msg.nackedReq) << ','
       << f.msg.ignoreBufferedInv << ",[";
    std::vector<NodeId> targets;
    targets.reserve(f.msg.invTargets.size());
    for (const NodeId n : f.msg.invTargets) targets.push_back(mapNode(n, perm));
    std::sort(targets.begin(), targets.end());
    for (const NodeId n : targets) os << n << ' ';
    os << ']';
    if (cfg_.modelData) {
      os << 'v';
      if (f.msg.data.empty()) {
        os << '-';
      } else {
        os << f.msg.data[0];
      }
    }
    os << ",t<" << f.msg.txn << ">,c<" << f.msg.closesTxn << '>';
    return os.str();
  }

  /// Replace t<id>/c<id> markers with canonical small integers (assigned in
  /// encounter order across the whole key).
  std::string remapInString(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '<') {
        const std::size_t end = s.find('>', i);
        const TransactionId id = std::stoull(s.substr(i + 1, end - i - 1));
        out += std::to_string(remap(id));
        i = end;
      } else {
        out += s[i];
      }
    }
    return out;
  }

  std::uint64_t remap(TransactionId id) {
    if (id == kNoTransaction) return ~std::uint64_t{0};
    const auto [it, inserted] = txnMap_.try_emplace(id, txnMap_.size());
    return it->second;
  }

  void emitLine(const proto::Line* line, const std::vector<NodeId>& perm) {
    if (line == nullptr) {
      out_ << "L-;";
      return;
    }
    out_ << 'L' << static_cast<int>(line->cstate)
         << static_cast<int>(line->astate) << ",i" << remap(line->ignoreFwdTxn)
         << ",d" << remap(line->dropInvTxn) << ',';
    if (cfg_.modelData) {
      out_ << 'v';
      if (line->data.empty()) {
        out_ << '-';
      } else {
        out_ << line->data[0];
      }
      // The ForwardStaleValue mutant sends epochStartData on forwards, so
      // the projection must distinguish it or the abstraction leaks.
      if (cfg_.proto.mutant == Mutant::ForwardStaleValue &&
          !line->epochStartData.empty()) {
        out_ << 'e' << line->epochStartData[0];
      }
      out_ << ',';
    }
    if (line->mshr) {
      const proto::Mshr& m = *line->mshr;
      out_ << 'M' << static_cast<int>(m.req) << m.replySeen << m.invListKnown
           << ",[";
      std::vector<NodeId> acks;
      acks.reserve(m.acksPending.size());
      for (const NodeId n : m.acksPending) acks.push_back(mapNode(n, perm));
      std::sort(acks.begin(), acks.end());
      for (const NodeId n : acks) out_ << n << ' ';
      out_ << "],[";
      std::vector<NodeId> early;
      early.reserve(m.earlyAcks.size());
      for (const NodeId n : m.earlyAcks) early.push_back(mapNode(n, perm));
      std::sort(early.begin(), early.end());
      for (const NodeId n : early) out_ << n << ' ';
      out_ << "],p";
      if (m.pendingFwd) {
        out_ << static_cast<int>(m.pendingFwd->type) << '/'
             << mapNode(m.pendingFwd->requester, perm);
      } else {
        out_ << '-';
      }
      if (cfg_.modelData) {
        out_ << ",v";
        if (m.data.empty()) {
          out_ << '-';
        } else {
          out_ << m.data[0];
        }
      }
      out_ << ",b[";
      for (const proto::Message& bm : m.buffered) {
        out_ << static_cast<int>(bm.type) << '/' << mapNode(bm.requester, perm)
             << '/' << remap(bm.txn) << ' ';
      }
      out_ << ']';
    } else {
      out_ << "M-";
    }
    out_ << ';';
  }

  const McConfig& cfg_;
  std::vector<std::vector<NodeId>> perms_;
  std::vector<std::vector<NodeId>> invPerms_;
  std::map<TransactionId, std::uint64_t> txnMap_;
  std::ostringstream out_;
};

// -- the wave-parallel explorer ----------------------------------------------

class ParallelExplorer {
 public:
  explicit ParallelExplorer(const McConfig& cfg) : cfg_(cfg) {}

  McResult run();

 private:
  /// A frontier entry: the concrete world plus its id in the visited set.
  struct Node {
    World w;
    std::uint64_t id = 0;
  };

  /// Compact parent pointer: 16 bytes per visited state reconstruct any
  /// path back to the root.
  struct Edge {
    std::uint64_t parent = 0;
    Action action{};
  };

  /// One shard of the visited set.  The canonical key maps to a per-stripe
  /// local index; the global StateId is localIndex * kStripes + stripe, so
  /// ids are dense per stripe and the edge log doubles as the id table.
  struct Stripe {
    std::mutex mu;
    std::unordered_map<std::string, std::uint32_t> ids;
    std::vector<Edge> edges;
  };

  /// Seed of a counterexample: the leaf state plus (for violations thrown
  /// while generating successors) the action that triggered the throw.
  struct CexSeed {
    std::uint64_t leaf = 0;
    std::optional<Action> extra;
    std::string kind;
    std::string detail;
  };

  /// Chunk-local expansion output; merged at the wave barrier in chunk
  /// order so every result field is independent of worker scheduling.
  struct ChunkOut {
    std::vector<Node> next;
    std::vector<std::string> violations;
    std::uint64_t transitions = 0;
    std::uint64_t ampleStates = 0;
    bool deadlock = false;
    std::optional<CexSeed> cex;
  };

  static constexpr std::size_t kStripes = 64;
  static constexpr std::uint64_t kNoParent = ~std::uint64_t{0};

  World makeInitial() {
    World w;
    w.dirs.emplace_back(cfg_.numProcessors, cfg_.proto, proto::nullSink(),
                        txns_);
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      w.dirs[0].addBlock(b, BlockValue(cfg_.proto.wordsPerBlock, 0));
    }
    for (NodeId p = 0; p < cfg_.numProcessors; ++p) {
      w.caches.emplace_back(p, cfg_.proto, proto::nullSink(), nullClient());
    }
    return w;
  }

  std::uint64_t insert(std::string key, std::uint64_t parent, const Action& a,
                       bool& inserted) {
    const std::size_t sIdx = std::hash<std::string>{}(key) % kStripes;
    Stripe& st = stripes_[sIdx];
    const std::lock_guard<std::mutex> lk(st.mu);
    const auto [it, fresh] =
        st.ids.try_emplace(std::move(key),
                           static_cast<std::uint32_t>(st.edges.size()));
    inserted = fresh;
    if (fresh) st.edges.push_back(Edge{parent, a});
    return static_cast<std::uint64_t>(it->second) * kStripes + sIdx;
  }

  /// Was this key inserted in a wave *before* the current one?  The POR
  /// proviso consults this frozen horizon instead of the live set so the
  /// ample decision is a pure function of the (deterministic) per-wave
  /// state sets, not of worker timing.
  bool visitedBeforeWave(const std::string& key) {
    const std::size_t sIdx = std::hash<std::string>{}(key) % kStripes;
    Stripe& st = stripes_[sIdx];
    const std::lock_guard<std::mutex> lk(st.mu);
    const auto it = st.ids.find(key);
    return it != st.ids.end() && it->second < watermark_[sIdx];
  }

  Edge edgeAt(std::uint64_t id) {
    Stripe& st = stripes_[id % kStripes];
    const std::lock_guard<std::mutex> lk(st.mu);
    return st.edges[static_cast<std::size_t>(id / kStripes)];
  }

  Schedule reconstructSchedule(const CexSeed& seed) {
    Schedule rev;
    std::uint64_t cur = seed.leaf;
    while (true) {
      const Edge e = edgeAt(cur);
      if (e.parent == kNoParent) break;
      rev.push_back(e.action);
      cur = e.parent;
    }
    std::reverse(rev.begin(), rev.end());
    if (seed.extra) rev.push_back(*seed.extra);
    return rev;
  }

  void noteCex(ChunkOut& out, std::uint64_t leaf, std::optional<Action> extra,
               std::string kind, std::string detail) {
    if (out.cex) return;
    out.cex = CexSeed{leaf, std::move(extra), std::move(kind),
                      std::move(detail)};
  }

  /// Per-state safety checks: SWMR, value coherence (modelData), definite
  /// deadlock.  Returns true when this state itself violated an invariant
  /// (its successors are then not generated).
  bool checkState(const Node& n, ChunkOut& out) {
    const World& w = n.w;
    bool violating = false;
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      NodeId writer = kNoNode;
      std::uint32_t readers = 0;
      for (const auto& cache : w.caches) {
        const proto::Line* line = cache.findLine(b);
        if (line == nullptr) continue;
        if (line->cstate == CacheState::ReadWrite) {
          if (writer != kNoNode) {
            std::ostringstream os;
            os << "SWMR violated on block " << b << ": nodes " << writer
               << " and " << cache.self() << " both read-write";
            out.violations.push_back(os.str());
            noteCex(out, n.id, std::nullopt, "violation", os.str());
            violating = true;
          }
          writer = cache.self();
        } else if (line->cstate == CacheState::ReadOnly) {
          readers += 1;
        }
      }
      if (writer != kNoNode && readers > 0) {
        std::ostringstream os;
        os << "SWMR violated on block " << b << ": node " << writer
           << " is read-write while " << readers << " reader(s) persist";
        out.violations.push_back(os.str());
        noteCex(out, n.id, std::nullopt, "violation", os.str());
        violating = true;
      }
    }
    if (cfg_.modelData && checkValues(n, out)) violating = true;
    // Definite deadlock: requests outstanding but nothing in flight and no
    // local action can produce the awaited reply.
    if (w.flight.empty()) {
      for (const auto& cache : w.caches) {
        if (cache.quiescent()) continue;
        for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
          const proto::Line* line = cache.findLine(b);
          if (line != nullptr && line->mshr.has_value()) {
            out.deadlock = true;
            std::ostringstream os;
            os << "deadlock: node " << cache.self() << " waiting on block "
               << b << " with no messages in flight";
            noteCex(out, n.id, std::nullopt, "deadlock", os.str());
          }
        }
      }
    }
    return violating;
  }

  /// Value coherence of settled blocks (modelData): once a block has no
  /// in-flight message, no open MSHR and no pending drop bookkeeping, all
  /// live cached copies — plus home memory unless the directory is
  /// Exclusive — must hold the same word-0 value.
  bool checkValues(const Node& n, ChunkOut& out) {
    const World& w = n.w;
    bool violating = false;
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      const proto::DirEntry& e = w.dirs[0].entry(b);
      if (e.core.state != DirState::Idle && e.core.state != DirState::Shared &&
          e.core.state != DirState::Exclusive) {
        continue;  // mid-transaction
      }
      bool settled = true;
      for (const Flight& f : w.flight) {
        if (f.msg.block == b) settled = false;
      }
      for (const auto& cache : w.caches) {
        const proto::Line* line = cache.findLine(b);
        if (line != nullptr &&
            (line->mshr.has_value() ||
             line->ignoreFwdTxn != kNoTransaction ||
             line->dropInvTxn != kNoTransaction)) {
          settled = false;
        }
      }
      if (!settled) continue;
      std::optional<Word> ref;
      if (e.core.state != DirState::Exclusive && !e.mem.empty()) {
        ref = e.mem[0];
      }
      for (const auto& cache : w.caches) {
        const proto::Line* line = cache.findLine(b);
        if (line == nullptr || line->cstate == CacheState::Invalid ||
            line->data.empty()) {
          continue;
        }
        if (ref.has_value() && line->data[0] != *ref) {
          std::ostringstream os;
          os << "value coherence violated on block " << b << ": node "
             << cache.self() << " holds " << line->data[0]
             << " but the settled value is " << *ref;
          out.violations.push_back(os.str());
          noteCex(out, n.id, std::nullopt, "violation", os.str());
          violating = true;
        }
        if (!ref.has_value()) ref = line->data[0];
      }
    }
    return violating;
  }

  /// Deliver one message into `s`; false if it raised a protocol violation
  /// (the violation is recorded and the state not expanded further).
  bool deliver(World& s, const Flight& f, std::uint64_t parent,
               const Action& a, ChunkOut& out) {
    proto::Outbox ob;
    try {
      if (f.dst >= cfg_.numProcessors) {
        s.dirs[0].handle(f.msg, ob);
      } else {
        s.caches[f.dst].handle(f.msg, ob);
      }
      absorb(s, f.dst, ob);
    } catch (const ProtocolError& e) {
      const std::string v = std::string("protocol invariant: ") + e.what();
      out.violations.push_back(v);
      noteCex(out, parent, a, "violation", v);
      return false;
    }
    return true;
  }

  static void absorb(World& s, NodeId src, proto::Outbox& ob) {
    for (auto& entry : ob.msgs) {
      entry.msg.src = src;
      s.flight.push_back(Flight{entry.dst, std::move(entry.msg)});
    }
  }

  void record(World&& s, std::uint64_t parent, const Action& a,
              Canonicalizer& canon, ChunkOut& out) {
    bool inserted = false;
    const std::uint64_t id = insert(canon.key(s), parent, a, inserted);
    if (inserted) out.next.push_back(Node{std::move(s), id});
  }

  /// The control projection of one cache used by the POR safety test:
  /// everything the protocol branches on (states, MSHR presence/phase,
  /// buffered messages, drop bookkeeping), excluding pure-accounting
  /// fields (ack sets, stamps, data payloads) whose updates commute.
  std::string controlProjection(const proto::CacheController& c) const {
    std::ostringstream os;
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      const proto::Line* line = c.findLine(b);
      if (line == nullptr) {
        os << "-;";
        continue;
      }
      os << static_cast<int>(line->cstate) << static_cast<int>(line->astate)
         << ',' << line->ignoreFwdTxn << ',' << line->dropInvTxn << ',';
      if (line->mshr) {
        const proto::Mshr& m = *line->mshr;
        os << 'M' << static_cast<int>(m.req) << m.replySeen << m.invListKnown
           << ',' << m.txn << ",p";
        if (m.pendingFwd) {
          os << static_cast<int>(m.pendingFwd->type) << '/'
             << m.pendingFwd->requester << '/' << m.pendingFwd->txn;
        } else {
          os << '-';
        }
        os << ",b[";
        for (const proto::Message& bm : m.buffered) {
          os << static_cast<int>(bm.type) << '/' << bm.requester << '/'
             << bm.txn << ' ';
        }
        os << ']';
      } else {
        os << "M-";
      }
      os << ';';
    }
    return os.str();
  }

  /// Ample-set attempt: find a "safe" delivery — destined to a cache, the
  /// only in-flight message for that (cache, block), raising no error,
  /// emitting nothing, and leaving the cache's control projection
  /// untouched — and expand only it.  Candidates are ranked by canonical
  /// successor key (so the choice is a function of the canonical state,
  /// not of the representative's flight order) and a candidate whose
  /// successor was already visited in an earlier wave is skipped (the
  /// proviso that defeats the ignoring problem); with no eligible
  /// candidate the caller falls back to full expansion.
  bool expandAmple(const Node& n, Canonicalizer& canon, ChunkOut& out) {
    const World& w = n.w;
    struct Cand {
      std::string key;
      World succ;
      std::size_t idx;
    };
    std::vector<Cand> cands;
    for (std::size_t i = 0; i < w.flight.size(); ++i) {
      const Flight& f = w.flight[i];
      if (f.dst >= cfg_.numProcessors) continue;
      bool exclusive = true;
      for (std::size_t j = 0; j < w.flight.size(); ++j) {
        if (j != i && w.flight[j].dst == f.dst &&
            w.flight[j].msg.block == f.msg.block) {
          exclusive = false;
          break;
        }
      }
      if (!exclusive) continue;
      World s = w;
      s.flight.erase(s.flight.begin() + static_cast<std::ptrdiff_t>(i));
      proto::Outbox ob;
      try {
        s.caches[f.dst].handle(f.msg, ob);
      } catch (const ProtocolError&) {
        continue;  // not safe: full expansion will surface the violation
      }
      if (!ob.msgs.empty()) continue;
      if (controlProjection(w.caches[f.dst]) !=
          controlProjection(s.caches[f.dst])) {
        continue;
      }
      cands.push_back(Cand{canon.key(s), std::move(s), i});
    }
    if (cands.empty()) return false;
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.key < b.key; });
    for (Cand& c : cands) {
      if (visitedBeforeWave(c.key)) continue;
      const Flight& f = w.flight[c.idx];
      Action a;
      a.kind = Action::Kind::Deliver;
      a.flightIndex = static_cast<std::uint32_t>(c.idx);
      a.dst = f.dst;
      a.msgType = f.msg.type;
      a.block = f.msg.block;
      out.transitions += 1;
      bool inserted = false;
      const std::uint64_t id = insert(std::move(c.key), n.id, a, inserted);
      if (inserted) out.next.push_back(Node{std::move(c.succ), id});
      return true;
    }
    return false;
  }

  void issue(const World& w, NodeId p, BlockId b, ReqType req,
             std::uint64_t parent, Canonicalizer& canon, ChunkOut& out) {
    World s = w;
    proto::Outbox ob;
    s.caches[p].issueRequest(b, req, cfg_.numProcessors, ob);
    absorb(s, p, ob);
    Action a;
    a.kind = Action::Kind::Issue;
    a.proc = p;
    a.block = b;
    a.req = req;
    out.transitions += 1;
    record(std::move(s), parent, a, canon, out);
  }

  void expandState(const Node& n, Canonicalizer& canon, ChunkOut& out) {
    if (cfg_.por && expandAmple(n, canon, out)) {
      out.ampleStates += 1;
      return;
    }
    const World& w = n.w;
    // (a) Deliver any in-flight message (the unordered network).
    for (std::size_t i = 0; i < w.flight.size(); ++i) {
      World s = w;
      const Flight f = s.flight[i];
      s.flight.erase(s.flight.begin() + static_cast<std::ptrdiff_t>(i));
      Action a;
      a.kind = Action::Kind::Deliver;
      a.flightIndex = static_cast<std::uint32_t>(i);
      a.dst = f.dst;
      a.msgType = f.msg.type;
      a.block = f.msg.block;
      out.transitions += 1;
      if (deliver(s, f, n.id, a, out)) {
        record(std::move(s), n.id, a, canon, out);
      }
    }
    // (b) Any processor issues any legal request / local action.
    for (NodeId p = 0; p < cfg_.numProcessors; ++p) {
      for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
        const proto::CacheController& cache = w.caches[p];
        if (cache.requestBlocked(b)) continue;
        const CacheState cs = cache.state(b);
        if (cs == CacheState::Invalid) {
          issue(w, p, b, ReqType::GetShared, n.id, canon, out);
          issue(w, p, b, ReqType::GetExclusive, n.id, canon, out);
        } else if (cs == CacheState::ReadOnly) {
          issue(w, p, b, ReqType::Upgrade, n.id, canon, out);
          if (cfg_.allowEvictions && cfg_.proto.putSharedEnabled) {
            World s = w;
            s.caches[p].putShared(b);
            Action a;
            a.kind = Action::Kind::Evict;
            a.proc = p;
            a.block = b;
            out.transitions += 1;
            record(std::move(s), n.id, a, canon, out);
          }
        } else if (cfg_.allowEvictions) {
          World s = w;
          proto::Outbox ob;
          s.caches[p].writeback(b, cfg_.numProcessors, ob);
          absorb(s, p, ob);
          Action a;
          a.kind = Action::Kind::Evict;
          a.proc = p;
          a.block = b;
          out.transitions += 1;
          record(std::move(s), n.id, a, canon, out);
        }
      }
    }
    // (c) modelData: a writer bumps the block's bounded version counter
    // (word 0, mod 4) — the abstraction of "any store".
    if (cfg_.modelData) {
      for (NodeId p = 0; p < cfg_.numProcessors; ++p) {
        for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
          const proto::Line* line = w.caches[p].findLine(b);
          if (line == nullptr || line->data.empty() ||
              !w.caches[p].canBind(b, OpKind::Store)) {
            continue;
          }
          World s = w;
          const Word v = (line->data[0] + 1) & 3;
          (void)s.caches[p].bind(b, OpKind::Store, 0, v);
          Action a;
          a.kind = Action::Kind::Store;
          a.proc = p;
          a.block = b;
          out.transitions += 1;
          record(std::move(s), n.id, a, canon, out);
        }
      }
    }
  }

  void expandRange(const std::vector<Node>& frontier, std::size_t begin,
                   std::size_t end, ChunkOut& out) {
    Canonicalizer canon(cfg_);
    for (std::size_t i = begin; i < end; ++i) {
      const Node& n = frontier[i];
      const bool violating = checkState(n, out);
      if (!violating) expandState(n, canon, out);
    }
  }

  McConfig cfg_;
  std::array<Stripe, kStripes> stripes_;
  std::array<std::uint32_t, kStripes> watermark_{};
  proto::TxnCounter txns_;
  McResult result_;
};

McResult ParallelExplorer::run() {
  Canonicalizer rootCanon(cfg_);
  World init = makeInitial();
  bool inserted = false;
  const std::uint64_t rootId =
      insert(rootCanon.key(init), kNoParent, Action{}, inserted);
  std::vector<Node> frontier;
  frontier.push_back(Node{std::move(init), rootId});

  const unsigned jobs = std::max(1u, cfg_.jobs);
  ThreadPool pool(jobs);
  std::optional<CexSeed> cexSeed;

  while (!frontier.empty()) {
    result_.frontierPeak =
        std::max<std::uint64_t>(result_.frontierPeak, frontier.size());
    const std::uint64_t remaining = cfg_.maxStates - result_.statesExplored;
    std::size_t expandCount = frontier.size();
    if (remaining < frontier.size()) {
      expandCount = static_cast<std::size_t>(remaining);
      result_.hitStateLimit = true;
    }
    if (expandCount == 0) break;

    // Freeze the POR proviso horizon at the wave boundary.
    for (std::size_t s = 0; s < kStripes; ++s) {
      watermark_[s] = static_cast<std::uint32_t>(stripes_[s].edges.size());
    }

    const std::size_t chunkSize =
        std::max<std::size_t>(std::size_t{1},
                              expandCount / (std::size_t{jobs} * 4) + 1);
    const std::size_t nChunks = (expandCount + chunkSize - 1) / chunkSize;
    std::vector<ChunkOut> outs(nChunks);
    for (std::size_t c = 0; c < nChunks; ++c) {
      const std::size_t begin = c * chunkSize;
      const std::size_t end = std::min(expandCount, begin + chunkSize);
      pool.submit([this, &frontier, &outs, c, begin, end] {
        expandRange(frontier, begin, end, outs[c]);
      });
    }
    pool.wait();

    result_.statesExplored += expandCount;
    std::vector<Node> next;
    std::vector<std::string> waveViolations;
    for (ChunkOut& o : outs) {
      result_.transitions += o.transitions;
      result_.ampleStates += o.ampleStates;
      result_.deadlockFound = result_.deadlockFound || o.deadlock;
      for (std::string& v : o.violations) {
        waveViolations.push_back(std::move(v));
      }
      if (!cexSeed && o.cex) cexSeed = std::move(o.cex);
      for (Node& nd : o.next) next.push_back(std::move(nd));
    }
    std::sort(waveViolations.begin(), waveViolations.end());
    waveViolations.erase(
        std::unique(waveViolations.begin(), waveViolations.end()),
        waveViolations.end());
    for (std::string& v : waveViolations) {
      if (result_.violations.size() < cfg_.maxViolations) {
        result_.violations.push_back(std::move(v));
      }
    }
    result_.wavesCompleted += 1;
    // Stop decisions live at wave boundaries only, so counts and verdicts
    // are identical for any jobs value.
    if (!result_.violations.empty() || result_.deadlockFound ||
        result_.hitStateLimit) {
      break;
    }
    if (cfg_.maxDepth != 0 && result_.wavesCompleted >= cfg_.maxDepth) break;
    frontier = std::move(next);
  }

  if (cexSeed) {
    Counterexample cex;
    cex.kind = cexSeed->kind;
    cex.detail = cexSeed->detail;
    cex.schedule = reconstructSchedule(*cexSeed);
    result_.counterexample = std::move(cex);
  }
  return result_;
}

}  // namespace

std::string toString(const Action& a) {
  std::ostringstream os;
  switch (a.kind) {
    case Action::Kind::Deliver:
      os << "deliver #" << a.flightIndex << ' ' << proto::toString(a.msgType)
         << " -> node " << a.dst << " (block " << a.block << ')';
      break;
    case Action::Kind::Issue:
      os << "node " << a.proc << " issues " << lcdc::toString(a.req)
         << " on block " << a.block;
      break;
    case Action::Kind::Evict:
      os << "node " << a.proc << " evicts block " << a.block;
      break;
    case Action::Kind::Store:
      os << "node " << a.proc << " stores to block " << a.block;
      break;
  }
  return os.str();
}

McResult explore(const McConfig& cfg) {
  LCDC_EXPECT(cfg.numProcessors >= 1, "need at least one processor");
  LCDC_EXPECT(cfg.numBlocks >= 1, "need at least one block");
  ParallelExplorer explorer(cfg);
  return explorer.run();
}

}  // namespace lcdc::mc
