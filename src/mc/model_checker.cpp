#include "mc/model_checker.hpp"

#include <sys/resource.h>
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>

#include "common/arena.hpp"
#include "common/expect.hpp"
#include "common/flat_set.hpp"
#include "common/thread_pool.hpp"
#include "mc/legacy_key.hpp"
#include "mc/spill.hpp"
#include "mc/state_codec.hpp"
#include "mc/tardis_mc.hpp"
#include "mc/world.hpp"
#include "mc/world_codec.hpp"
#include "proto/cache.hpp"
#include "proto/directory.hpp"

namespace lcdc::mc {

namespace {

// -- packed parent edges -----------------------------------------------------
//
// 4-byte parent id + the action in one 64-bit word: kind(2) |
// flightIndex(16) | dst(8) | msgType(4) | proc(8) | block(16) | req(2).
// Node ids use 255 as the "no node" code; the explored configurations are
// orders of magnitude below every field's range (asserted on pack).

std::uint64_t packAction(const Action& a) {
  const auto node8 = [](NodeId n) -> std::uint64_t {
    if (n == kNoNode) return 0xFF;
    LCDC_EXPECT(n < 0xFF, "node id exceeds packed-action range");
    return n;
  };
  LCDC_EXPECT(a.flightIndex < 0xFFFF, "flight index exceeds packed range");
  LCDC_EXPECT(a.block < 0xFFFF, "block id exceeds packed range");
  return static_cast<std::uint64_t>(a.kind) |
         (static_cast<std::uint64_t>(a.flightIndex) << 2) |
         (node8(a.dst) << 18) |
         (static_cast<std::uint64_t>(a.msgType) << 26) |
         (node8(a.proc) << 30) |
         (static_cast<std::uint64_t>(a.block) << 38) |
         (static_cast<std::uint64_t>(a.req) << 54);
}

Action unpackAction(std::uint64_t v) {
  const auto node = [](std::uint64_t b) -> NodeId {
    return b == 0xFF ? kNoNode : static_cast<NodeId>(b);
  };
  Action a;
  a.kind = static_cast<Action::Kind>(v & 0x3);
  a.flightIndex = static_cast<std::uint32_t>((v >> 2) & 0xFFFF);
  a.dst = node((v >> 18) & 0xFF);
  a.msgType = static_cast<proto::MsgType>((v >> 26) & 0xF);
  a.proc = node((v >> 30) & 0xFF);
  a.block = static_cast<BlockId>((v >> 38) & 0xFFFF);
  a.req = static_cast<ReqType>((v >> 54) & 0x3);
  return a;
}

/// Optional steady-clock span accumulator (perf timing is opt-in).
class ScopedNanos {
 public:
  ScopedNanos(std::uint64_t& dst, bool enabled)
      : dst_(dst), enabled_(enabled) {
    if (enabled_) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedNanos() {
    if (enabled_) {
      dst_ += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0_)
              .count());
    }
  }

 private:
  std::uint64_t& dst_;
  bool enabled_;
  std::chrono::steady_clock::time_point t0_;
};

// -- the wave-parallel explorer ----------------------------------------------

class ParallelExplorer {
 public:
  explicit ParallelExplorer(const McConfig& cfg)
      : cfg_(cfg),
        mode_(cfg.visited),
        digest_(configDigest(cfg)),
        visited_(1u << 16, cfg.visited == VisitedMode::Compact
                               ? FlatFingerprintSet::Mode::Compact
                               : FlatFingerprintSet::Mode::Exact) {
    // `--checkpoint` (and `--resume`, which keeps checkpointing in
    // place) implies spilling the frontier into the checkpoint dir so
    // the manifest's segment list is self-contained.
    checkpointing_ = !cfg_.checkpointDir.empty() || !cfg_.resumeDir.empty();
    ckptDir_ =
        !cfg_.checkpointDir.empty() ? cfg_.checkpointDir : cfg_.resumeDir;
    spillPath_ = checkpointing_ ? ckptDir_ : cfg_.spillDir;
    spill_ = !spillPath_.empty();
    if (spill_) {
      if (::mkdir(spillPath_.c_str(), 0777) != 0 && errno != EEXIST) {
        throw SimError("cannot create spill directory '" + spillPath_ +
                       "': " + std::strerror(errno));
      }
    }
    if (mode_ == VisitedMode::Bitstate) {
      bloom_ = std::make_unique<BitstateFilter>(
          std::max<std::uint64_t>(1, cfg_.bitstateMb));
      waveClaim_ = std::make_unique<FlatFingerprintSet>(
          1u << 16, FlatFingerprintSet::Mode::Compact);
    }
  }

  McResult run();

 private:
  /// A frontier entry: the world as a lossless arena blob plus its id in
  /// the visited set.  `flightCount` feeds the per-wave successor upper
  /// bound without deserializing.
  struct FrontierRef {
    const std::byte* blob = nullptr;
    std::uint32_t len = 0;
    std::uint32_t id = 0;
    std::uint32_t flightCount = 0;
  };

  /// A deserialized frontier state under expansion.
  struct Node {
    World w;
    std::uint32_t id = 0;
  };

  /// Where a visited state's canonical encoding lives (in encArena_).
  struct EncRef {
    const std::byte* ptr = nullptr;
    std::uint32_t len = 0;
  };

  /// Seed of a counterexample: the leaf state plus (for violations thrown
  /// while generating successors) the action that triggered the throw.
  struct CexSeed {
    std::uint32_t leaf = 0;
    std::optional<Action> extra;
    std::string kind;
    std::string detail;
  };

  /// Chunk-local expansion output; merged at the wave barrier in chunk
  /// order so every result field is independent of worker scheduling.
  /// With spilling, successor blobs go through `writer` into sealed
  /// segment files (rolled over at kSegmentRecordCap records) instead of
  /// `next`; the in-order concatenation of `segs` across chunks is the
  /// same frontier sequence the arenas would hold, which is why exact
  /// counts stay byte-identical between the two paths.
  struct ChunkOut {
    std::vector<FrontierRef> next;
    std::vector<SegmentInfo> segs;
    std::unique_ptr<SpillSegmentWriter> writer;
    std::string segBase;
    std::uint32_t segSeq = 0;
    std::vector<std::string> violations;
    std::uint64_t transitions = 0;
    std::uint64_t ampleStates = 0;
    bool deadlock = false;
    std::optional<CexSeed> cex;
    McPerfCounters perf;
    /// First exception raised inside the chunk (SimError from a corrupt
    /// spill file, the 2^32-id guard, ...), rethrown at the barrier so
    /// failures surface as exceptions instead of terminating a worker.
    std::exception_ptr error;
  };

  /// One wave's frontier when spilling: the sealed segments in frontier
  /// order plus their aggregate counts.
  struct WaveSegs {
    std::vector<SegmentInfo> segs;
    std::uint64_t records = 0;
    std::uint64_t flightSum = 0;
  };

  /// Per-worker state: codecs, bump cursors into the shared arenas, and
  /// reused scratch buffers.  Strictly single-threaded while checked out.
  /// Contexts are pooled and reused across chunks and waves — a fresh
  /// context per chunk would abandon the tail of its current arena block
  /// every chunk, and for the persistent encoding arena that waste
  /// accumulates for the whole run (~1 MiB per chunk).  Pooling bounds
  /// the abandonment to at most one partial block per live context.
  struct WorkerCtx {
    WorkerCtx(const McConfig& cfg, proto::TxnCounter& txns, Arena& encArena,
              bool timingOn)
        : codec(cfg),
          wcodec(cfg, txns),
          legacy(cfg),
          encRef(encArena),
          nextRef(encArena),  // rebound to the wave's blob arena on checkout
          timing(timingOn) {}

    StateCodec codec;
    WorldCodec wcodec;
    LegacyCanonicalizer legacy;  ///< POR candidate ordering only
    ArenaRef encRef;
    ArenaRef nextRef;
    std::uint64_t waveEpoch = ~std::uint64_t{0};
    bool timing;
    std::vector<std::byte> enc;   ///< canonical-encoding scratch
    std::vector<std::byte> blob;  ///< world-blob scratch
  };

  /// Check a context out of the pool, rebinding its frontier-blob cursor
  /// when the wave (and thus the target ping-pong arena) changed since its
  /// last use.  A wave with C chunks touches at most min(C, jobs)
  /// contexts, so the pool never exceeds the worker count.
  std::unique_ptr<WorkerCtx> acquireCtx(std::uint64_t epoch,
                                        Arena& nextArena) {
    std::unique_ptr<WorkerCtx> ctx;
    {
      const std::lock_guard<std::mutex> lk(ctxMu_);
      if (!ctxPool_.empty()) {
        ctx = std::move(ctxPool_.back());
        ctxPool_.pop_back();
      }
    }
    if (!ctx) {
      ctx = std::make_unique<WorkerCtx>(cfg_, txns_, encArena_, cfg_.perf);
    }
    if (ctx->waveEpoch != epoch) {
      ctx->nextRef = ArenaRef(nextArena);
      ctx->waveEpoch = epoch;
    }
    return ctx;
  }

  void releaseCtx(std::unique_ptr<WorkerCtx> ctx) {
    const std::lock_guard<std::mutex> lk(ctxMu_);
    ctxPool_.push_back(std::move(ctx));
  }

  static constexpr std::uint32_t kNoParent = 0xFFFFFFFEu;

  /// Grow the per-id arrays (single-threaded, wave boundary only) so
  /// every id this wave can assign has a slot; workers then write their
  /// freshly claimed slots without further synchronization.  Exact mode
  /// keeps encodings + parent edges; compact mode keeps only the
  /// per-id fingerprint, and only while checkpointing (the visited log
  /// needs fingerprints in id order); bitstate keeps nothing per id.
  void growIdArrays(std::size_t needed) {
    if (mode_ == VisitedMode::Exact) {
      if (needed <= encs_.size()) return;
      const std::size_t target = std::max(needed, encs_.size() * 2);
      encs_.reserve(target);
      parents_.reserve(target);
      actions_.reserve(target);
      encs_.resize(needed);
      parents_.resize(needed);
      actions_.resize(needed);
    } else if (mode_ == VisitedMode::Compact && checkpointing_) {
      if (needed <= fpsById_.size()) return;
      fpsById_.reserve(std::max(needed, fpsById_.size() * 2));
      fpsById_.resize(needed);
    }
  }

  [[nodiscard]] bool encEquals(std::uint32_t payload,
                               const std::vector<std::byte>& enc) const {
    const EncRef& e = encs_[payload];
    return e.len == enc.size() &&
           std::memcmp(e.ptr, enc.data(), e.len) == 0;
  }

  /// Roll the chunk's open spill segment into its sealed list.
  static void sealChunk(ChunkOut& out) {
    if (out.writer) {
      out.segs.push_back(out.writer->seal());
      out.writer.reset();
    }
  }

  /// Successor records per segment file before rolling over to the next
  /// one; bounds both segment size and the per-task read granularity of
  /// the following wave.
  static constexpr std::uint64_t kSegmentRecordCap = 1u << 16;

  /// Insert a state already canonically encoded in `enc`; on winning,
  /// remember it according to the visited mode and append the world's
  /// frontier blob to `out.next` (in RAM) or the chunk's spill segment.
  void recordEncoded(const World& s, std::uint32_t parent, const Action& a,
                     WorkerCtx& ctx, ChunkOut& out) {
    const std::uint64_t fp =
        fingerprintHash(ctx.enc.data(), ctx.enc.size());
    out.perf.insertCalls += 1;
    bool fresh = false;
    std::uint32_t id = 0;
    {
      ScopedNanos t(out.perf.insertNanos, ctx.timing);
      if (mode_ == VisitedMode::Exact) {
        const FlatFingerprintSet::InsertResult res = visited_.insert(
            fp,
            [&](std::uint32_t payload) { return encEquals(payload, ctx.enc); },
            [&]() {
              const std::uint32_t nid =
                  nextId_.fetch_add(1, std::memory_order_relaxed);
              std::byte* p = ctx.encRef.alloc(ctx.enc.size());
              std::memcpy(p, ctx.enc.data(), ctx.enc.size());
              encs_[nid] =
                  EncRef{p, static_cast<std::uint32_t>(ctx.enc.size())};
              parents_[nid] = parent;
              actions_[nid] = packAction(a);
              return nid;
            });
        out.perf.noteProbes(res.probes);
        fresh = res.inserted;
        id = res.payload;
      } else if (mode_ == VisitedMode::Compact) {
        const FlatFingerprintSet::InsertResult res = visited_.insert(
            fp, [](std::uint32_t) { return true; },  // never called (Compact)
            [&]() {
              const std::uint32_t nid =
                  nextId_.fetch_add(1, std::memory_order_relaxed);
              if (checkpointing_) fpsById_[nid] = fp;
              return nid;
            });
        out.perf.noteProbes(res.probes);
        fresh = res.inserted;
        id = res.payload;
      } else {
        // Bitstate: membership against the wave-start Bloom snapshot
        // (bits are published only at the barrier, so the answer never
        // depends on in-wave interleaving); in-wave newness arbitrated
        // by the per-wave claim table, which is what keeps counts
        // jobs-independent even for this lossy mode.
        if (bloom_->testAll(fp)) {
          out.perf.noteProbes(0);
        } else {
          const FlatFingerprintSet::InsertResult res = waveClaim_->insert(
              fp, [](std::uint32_t) { return true; },
              [&]() {
                return claimNext_.fetch_add(1, std::memory_order_relaxed);
              });
          out.perf.noteProbes(res.probes);
          fresh = res.inserted;
        }
      }
    }
    if (!fresh) return;
    out.perf.storedStates += 1;
    out.perf.storedEncodingBytes += ctx.enc.size();
    {
      ScopedNanos t(out.perf.worldSaveNanos, ctx.timing);
      ctx.wcodec.save(s, ctx.blob);
    }
    if (spill_) {
      if (!out.writer) {
        out.writer = std::make_unique<SpillSegmentWriter>(
            out.segBase + "-" + std::to_string(out.segSeq++) + ".seg",
            digest_);
      }
      out.writer->add(id, static_cast<std::uint32_t>(s.flight.size()),
                      ctx.blob.data(), ctx.blob.size());
      if (out.writer->records() >= kSegmentRecordCap) sealChunk(out);
      return;
    }
    std::byte* bp = ctx.nextRef.alloc(ctx.blob.size());
    std::memcpy(bp, ctx.blob.data(), ctx.blob.size());
    out.next.push_back(FrontierRef{bp,
                                   static_cast<std::uint32_t>(ctx.blob.size()),
                                   id,
                                   static_cast<std::uint32_t>(s.flight.size())});
  }

  void record(const World& s, std::uint32_t parent, const Action& a,
              WorkerCtx& ctx, ChunkOut& out) {
    out.perf.encodeCalls += 1;
    {
      ScopedNanos t(out.perf.encodeNanos, ctx.timing);
      ctx.codec.encode(s, ctx.enc);
    }
    recordEncoded(s, parent, a, ctx, out);
  }

  /// Was this canonical encoding inserted in a wave *before* the current
  /// one?  The POR proviso consults this frozen horizon (`idWatermark_`:
  /// ids are allocated monotonically, so "id < watermark" ⇔ "discovered
  /// before this wave began") instead of the live set, keeping the ample
  /// decision a pure function of the per-wave state sets, not of worker
  /// timing.
  [[nodiscard]] bool visitedBeforeWave(const std::vector<std::byte>& enc) {
    const std::uint64_t fp = fingerprintHash(enc.data(), enc.size());
    const auto found = visited_.find(
        fp, [&](std::uint32_t payload) { return encEquals(payload, enc); });
    return found.has_value() && *found < idWatermark_;
  }

  Schedule reconstructSchedule(const CexSeed& seed) {
    Schedule rev;
    std::uint32_t cur = seed.leaf;
    while (parents_[cur] != kNoParent) {
      rev.push_back(unpackAction(actions_[cur]));
      cur = parents_[cur];
    }
    std::reverse(rev.begin(), rev.end());
    if (seed.extra) rev.push_back(*seed.extra);
    return rev;
  }

  void noteCex(ChunkOut& out, std::uint32_t leaf, std::optional<Action> extra,
               std::string kind, std::string detail) {
    if (out.cex) return;
    out.cex = CexSeed{leaf, std::move(extra), std::move(kind),
                      std::move(detail)};
  }

  /// Per-state safety checks: SWMR, value coherence (modelData), definite
  /// deadlock.  Returns true when this state itself violated an invariant
  /// (its successors are then not generated).
  bool checkState(const Node& n, ChunkOut& out) {
    const World& w = n.w;
    bool violating = false;
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      NodeId writer = kNoNode;
      std::uint32_t readers = 0;
      for (const auto& cache : w.caches) {
        const proto::Line* line = cache.findLine(b);
        if (line == nullptr) continue;
        if (line->cstate == CacheState::ReadWrite) {
          if (writer != kNoNode) {
            std::ostringstream os;
            os << "SWMR violated on block " << b << ": nodes " << writer
               << " and " << cache.self() << " both read-write";
            out.violations.push_back(os.str());
            noteCex(out, n.id, std::nullopt, "violation", os.str());
            violating = true;
          }
          writer = cache.self();
        } else if (line->cstate == CacheState::ReadOnly) {
          readers += 1;
        }
      }
      if (writer != kNoNode && readers > 0) {
        std::ostringstream os;
        os << "SWMR violated on block " << b << ": node " << writer
           << " is read-write while " << readers << " reader(s) persist";
        out.violations.push_back(os.str());
        noteCex(out, n.id, std::nullopt, "violation", os.str());
        violating = true;
      }
    }
    if (cfg_.modelData && checkValues(n, out)) violating = true;
    // Definite deadlock: requests outstanding but nothing in flight and no
    // local action can produce the awaited reply.
    if (w.flight.empty()) {
      for (const auto& cache : w.caches) {
        if (cache.quiescent()) continue;
        for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
          const proto::Line* line = cache.findLine(b);
          if (line != nullptr && line->mshr.has_value()) {
            out.deadlock = true;
            std::ostringstream os;
            os << "deadlock: node " << cache.self() << " waiting on block "
               << b << " with no messages in flight";
            noteCex(out, n.id, std::nullopt, "deadlock", os.str());
          }
        }
      }
    }
    return violating;
  }

  /// Value coherence of settled blocks (modelData): once a block has no
  /// in-flight message, no open MSHR and no pending drop bookkeeping, all
  /// live cached copies — plus home memory unless the directory is
  /// Exclusive — must hold the same word-0 value.
  bool checkValues(const Node& n, ChunkOut& out) {
    const World& w = n.w;
    bool violating = false;
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      const proto::DirEntry& e = w.dirs[0].entry(b);
      if (e.core.state != DirState::Idle && e.core.state != DirState::Shared &&
          e.core.state != DirState::Exclusive) {
        continue;  // mid-transaction
      }
      bool settled = true;
      for (const Flight& f : w.flight) {
        if (f.msg.block == b) settled = false;
      }
      for (const auto& cache : w.caches) {
        const proto::Line* line = cache.findLine(b);
        if (line != nullptr &&
            (line->mshr.has_value() ||
             line->ignoreFwdTxn != kNoTransaction ||
             line->dropInvTxn != kNoTransaction)) {
          settled = false;
        }
      }
      if (!settled) continue;
      std::optional<Word> ref;
      if (e.core.state != DirState::Exclusive && !e.mem.empty()) {
        ref = e.mem[0];
      }
      for (const auto& cache : w.caches) {
        const proto::Line* line = cache.findLine(b);
        if (line == nullptr || line->cstate == CacheState::Invalid ||
            line->data.empty()) {
          continue;
        }
        if (ref.has_value() && line->data[0] != *ref) {
          std::ostringstream os;
          os << "value coherence violated on block " << b << ": node "
             << cache.self() << " holds " << line->data[0]
             << " but the settled value is " << *ref;
          out.violations.push_back(os.str());
          noteCex(out, n.id, std::nullopt, "violation", os.str());
          violating = true;
        }
        if (!ref.has_value()) ref = line->data[0];
      }
    }
    return violating;
  }

  /// Deliver one message into `s`; false if it raised a protocol violation
  /// (the violation is recorded and the state not expanded further).
  bool deliver(World& s, const Flight& f, std::uint32_t parent,
               const Action& a, ChunkOut& out) {
    proto::Outbox ob;
    try {
      if (f.dst >= cfg_.numProcessors) {
        s.dirs[0].handle(f.msg, ob);
      } else {
        s.caches[f.dst].handle(f.msg, ob);
      }
      absorb(s, f.dst, ob);
    } catch (const ProtocolError& e) {
      const std::string v = std::string("protocol invariant: ") + e.what();
      out.violations.push_back(v);
      noteCex(out, parent, a, "violation", v);
      return false;
    }
    return true;
  }

  static void absorb(World& s, NodeId src, proto::Outbox& ob) {
    for (auto& entry : ob.msgs) {
      entry.msg.src = src;
      s.flight.push_back(Flight{entry.dst, std::move(entry.msg)});
    }
  }

  /// The control projection of one cache used by the POR safety test:
  /// everything the protocol branches on (states, MSHR presence/phase,
  /// buffered messages, drop bookkeeping), excluding pure-accounting
  /// fields (ack sets, stamps, data payloads) whose updates commute.
  std::string controlProjection(const proto::CacheController& c) const {
    std::ostringstream os;
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      const proto::Line* line = c.findLine(b);
      if (line == nullptr) {
        os << "-;";
        continue;
      }
      os << static_cast<int>(line->cstate) << static_cast<int>(line->astate)
         << ',' << line->ignoreFwdTxn << ',' << line->dropInvTxn << ',';
      if (line->mshr) {
        const proto::Mshr& m = *line->mshr;
        os << 'M' << static_cast<int>(m.req) << m.replySeen << m.invListKnown
           << ',' << m.txn << ",p";
        if (m.pendingFwd) {
          os << static_cast<int>(m.pendingFwd->type) << '/'
             << m.pendingFwd->requester << '/' << m.pendingFwd->txn;
        } else {
          os << '-';
        }
        os << ",b[";
        for (const proto::Message& bm : m.buffered) {
          os << static_cast<int>(bm.type) << '/' << bm.requester << '/'
             << bm.txn << ' ';
        }
        os << ']';
      } else {
        os << "M-";
      }
      os << ';';
    }
    return os.str();
  }

  /// Ample-set attempt: find a "safe" delivery — destined to a cache, the
  /// only in-flight message for that (cache, block), raising no error,
  /// emitting nothing, and leaving the cache's control projection
  /// untouched — and expand only it.  Candidates are ranked by the
  /// *legacy string* canonical successor key: equality classes alone
  /// would not pin down which candidate wins, and the old engine's POR
  /// counts depend on its exact representative choice, so the string
  /// order is kept here (and only here — POR runs already trade
  /// throughput for fewer states).  A candidate whose successor was
  /// already visited in an earlier wave is skipped (the proviso that
  /// defeats the ignoring problem); with no eligible candidate the caller
  /// falls back to full expansion.
  bool expandAmple(const Node& n, WorkerCtx& ctx, ChunkOut& out) {
    const World& w = n.w;
    struct Cand {
      std::string key;
      World succ;
      std::size_t idx;
    };
    std::vector<Cand> cands;
    for (std::size_t i = 0; i < w.flight.size(); ++i) {
      const Flight& f = w.flight[i];
      if (f.dst >= cfg_.numProcessors) continue;
      bool exclusive = true;
      for (std::size_t j = 0; j < w.flight.size(); ++j) {
        if (j != i && w.flight[j].dst == f.dst &&
            w.flight[j].msg.block == f.msg.block) {
          exclusive = false;
          break;
        }
      }
      if (!exclusive) continue;
      World s = w;
      s.flight.erase(s.flight.begin() + static_cast<std::ptrdiff_t>(i));
      proto::Outbox ob;
      try {
        s.caches[f.dst].handle(f.msg, ob);
      } catch (const ProtocolError&) {
        continue;  // not safe: full expansion will surface the violation
      }
      if (!ob.msgs.empty()) continue;
      if (controlProjection(w.caches[f.dst]) !=
          controlProjection(s.caches[f.dst])) {
        continue;
      }
      cands.push_back(Cand{ctx.legacy.key(s), std::move(s), i});
    }
    if (cands.empty()) return false;
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.key < b.key; });
    for (Cand& c : cands) {
      out.perf.encodeCalls += 1;
      {
        ScopedNanos t(out.perf.encodeNanos, ctx.timing);
        ctx.codec.encode(c.succ, ctx.enc);
      }
      if (visitedBeforeWave(ctx.enc)) continue;
      const Flight& f = w.flight[c.idx];
      Action a;
      a.kind = Action::Kind::Deliver;
      a.flightIndex = static_cast<std::uint32_t>(c.idx);
      a.dst = f.dst;
      a.msgType = f.msg.type;
      a.block = f.msg.block;
      out.transitions += 1;
      recordEncoded(c.succ, n.id, a, ctx, out);
      return true;
    }
    return false;
  }

  void issue(const World& w, NodeId p, BlockId b, ReqType req,
             std::uint32_t parent, WorkerCtx& ctx, ChunkOut& out) {
    World s = w;
    proto::Outbox ob;
    s.caches[p].issueRequest(b, req, cfg_.numProcessors, ob);
    absorb(s, p, ob);
    Action a;
    a.kind = Action::Kind::Issue;
    a.proc = p;
    a.block = b;
    a.req = req;
    out.transitions += 1;
    record(s, parent, a, ctx, out);
  }

  void expandState(const Node& n, WorkerCtx& ctx, ChunkOut& out) {
    if (cfg_.por && expandAmple(n, ctx, out)) {
      out.ampleStates += 1;
      return;
    }
    const World& w = n.w;
    // (a) Deliver any in-flight message (the unordered network).
    for (std::size_t i = 0; i < w.flight.size(); ++i) {
      World s = w;
      const Flight f = s.flight[i];
      s.flight.erase(s.flight.begin() + static_cast<std::ptrdiff_t>(i));
      Action a;
      a.kind = Action::Kind::Deliver;
      a.flightIndex = static_cast<std::uint32_t>(i);
      a.dst = f.dst;
      a.msgType = f.msg.type;
      a.block = f.msg.block;
      out.transitions += 1;
      if (deliver(s, f, n.id, a, out)) {
        record(s, n.id, a, ctx, out);
      }
    }
    // (b) Any processor issues any legal request / local action.
    for (NodeId p = 0; p < cfg_.numProcessors; ++p) {
      for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
        const proto::CacheController& cache = w.caches[p];
        if (cache.requestBlocked(b)) continue;
        const CacheState cs = cache.state(b);
        if (cs == CacheState::Invalid) {
          issue(w, p, b, ReqType::GetShared, n.id, ctx, out);
          issue(w, p, b, ReqType::GetExclusive, n.id, ctx, out);
        } else if (cs == CacheState::ReadOnly) {
          issue(w, p, b, ReqType::Upgrade, n.id, ctx, out);
          if (cfg_.allowEvictions && cfg_.proto.putSharedEnabled) {
            World s = w;
            s.caches[p].putShared(b);
            Action a;
            a.kind = Action::Kind::Evict;
            a.proc = p;
            a.block = b;
            out.transitions += 1;
            record(s, n.id, a, ctx, out);
          }
        } else if (cfg_.allowEvictions) {
          World s = w;
          proto::Outbox ob;
          s.caches[p].writeback(b, cfg_.numProcessors, ob);
          absorb(s, p, ob);
          Action a;
          a.kind = Action::Kind::Evict;
          a.proc = p;
          a.block = b;
          out.transitions += 1;
          record(s, n.id, a, ctx, out);
        }
      }
    }
    // (c) modelData: a writer bumps the block's bounded version counter
    // (word 0, mod 4) — the abstraction of "any store".
    if (cfg_.modelData) {
      for (NodeId p = 0; p < cfg_.numProcessors; ++p) {
        for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
          const proto::Line* line = w.caches[p].findLine(b);
          if (line == nullptr || line->data.empty() ||
              !w.caches[p].canBind(b, OpKind::Store)) {
            continue;
          }
          World s = w;
          const Word v = (line->data[0] + 1) & 3;
          (void)s.caches[p].bind(b, OpKind::Store, 0, v);
          Action a;
          a.kind = Action::Kind::Store;
          a.proc = p;
          a.block = b;
          out.transitions += 1;
          record(s, n.id, a, ctx, out);
        }
      }
    }
  }

  void expandRange(const std::vector<FrontierRef>& frontier, std::size_t begin,
                   std::size_t end, std::uint64_t epoch, Arena& nextArena,
                   ChunkOut& out) {
    std::unique_ptr<WorkerCtx> ctxOwner = acquireCtx(epoch, nextArena);
    WorkerCtx& ctx = *ctxOwner;
    try {
      ScopedNanos whole(out.perf.expandNanos, ctx.timing);
      for (std::size_t i = begin; i < end; ++i) {
        const FrontierRef& ref = frontier[i];
        Node n;
        {
          ScopedNanos t(out.perf.worldLoadNanos, ctx.timing);
          n.w = ctx.wcodec.load(ref.blob, ref.len);
        }
        n.id = ref.id;
        const bool violating = checkState(n, out);
        if (!violating) expandState(n, ctx, out);
      }
      sealChunk(out);
    } catch (...) {
      out.error = std::current_exception();
    }
    releaseCtx(std::move(ctxOwner));
  }

  /// Spill-mode expansion task: drain (a prefix of) one sealed segment.
  /// `recordBudget` < records() only in the final wave of a state-capped
  /// run — the cut is at record granularity, matching the in-RAM prefix.
  void expandSegment(const SegmentInfo& seg, std::uint64_t recordBudget,
                     std::uint64_t epoch, ChunkOut& out) {
    std::unique_ptr<WorkerCtx> ctxOwner = acquireCtx(epoch, waveArenas_[0]);
    WorkerCtx& ctx = *ctxOwner;
    try {
      ScopedNanos whole(out.perf.expandNanos, ctx.timing);
      SpillSegmentReader reader(seg.path, digest_);
      // A freshly sealed segment always agrees with its catalogue entry;
      // a mismatch means the file or the checkpoint manifest was altered
      // after the seal.
      if (reader.records() != seg.records ||
          reader.flightSum() != seg.flightSum ||
          reader.payloadBytes() != seg.payloadBytes) {
        throw SimError(
            "spill segment header disagrees with its catalogue entry "
            "(corrupt segment or manifest): " +
            seg.path);
      }
      SpillSegmentReader::Record r;
      std::uint64_t done = 0;
      while (done < recordBudget && reader.next(r)) {
        Node n;
        {
          ScopedNanos t(out.perf.worldLoadNanos, ctx.timing);
          n.w = ctx.wcodec.load(r.blob, r.len);
        }
        n.id = static_cast<std::uint32_t>(r.id);
        out.perf.spillBytesRead += r.len;
        const bool violating = checkState(n, out);
        if (!violating) expandState(n, ctx, out);
        done += 1;
      }
      if (done < recordBudget) {
        throw SimError("spill segment holds fewer records than its header "
                       "claims: " +
                       seg.path);
      }
      sealChunk(out);
    } catch (...) {
      out.error = std::current_exception();
    }
    releaseCtx(std::move(ctxOwner));
  }

  /// Bytes currently committed to the structures the explorer owns — the
  /// quantity `--mem-limit-mb` bounds.  (Transient per-chunk worlds and
  /// scratch are not tracked; they are small and wave-independent.)
  [[nodiscard]] std::uint64_t trackedBytesBase() const {
    std::uint64_t b = visited_.bytes() + encArena_.bytesReserved() +
                      waveArenas_[0].bytesReserved() +
                      waveArenas_[1].bytesReserved() +
                      encs_.capacity() * sizeof(EncRef) +
                      parents_.capacity() * sizeof(std::uint32_t) +
                      actions_.capacity() * sizeof(std::uint64_t) +
                      fpsById_.capacity() * sizeof(std::uint64_t);
    if (bloom_) b += bloom_->bytes();
    if (waveClaim_) b += waveClaim_->bytes();
    return b;
  }

  /// Per-worker spill write-buffer allowance charged while a wave runs
  /// (flush threshold plus one oversized record of slack).
  static constexpr std::uint64_t kSpillWriterBudget = std::uint64_t{2} << 20;

  /// What the tracked bytes will be AFTER this wave's boundary growth:
  /// visited-slab rehash (old + new slab live during the copy), bitstate
  /// claim growth, id-array growth, and the spill write buffers the
  /// workers are about to fill.  The memory-limit verdict tests this
  /// projection BEFORE reserving, so the growth transient itself can no
  /// longer overshoot `--mem-limit-mb` (it used to: only post-growth
  /// arena bytes were counted).
  [[nodiscard]] std::uint64_t projectedTrackedBytes(
      std::size_t frontierCap, std::uint64_t waveBound, unsigned jobs) const {
    std::uint64_t b = trackedBytesBase();
    b -= visited_.bytes();
    b += visited_.bytesAfterReserve(static_cast<std::size_t>(waveBound));
    if (waveClaim_) {
      b -= waveClaim_->bytes();
      b += waveClaim_->bytesAfterReserve(static_cast<std::size_t>(waveBound));
    }
    const std::size_t idsNeeded = static_cast<std::size_t>(
        nextId_.load(std::memory_order_relaxed) + waveBound);
    if (mode_ == VisitedMode::Exact && idsNeeded > encs_.capacity()) {
      b += (idsNeeded - encs_.capacity()) *
           (sizeof(EncRef) + sizeof(std::uint32_t) + sizeof(std::uint64_t));
    }
    if (mode_ == VisitedMode::Compact && checkpointing_ &&
        idsNeeded > fpsById_.capacity()) {
      b += (idsNeeded - fpsById_.capacity()) * sizeof(std::uint64_t);
    }
    b += frontierCap * sizeof(FrontierRef);
    if (spill_) b += static_cast<std::uint64_t>(jobs) * kSpillWriterBudget;
    return b;
  }

  static std::string fileBase(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
  }

  [[nodiscard]] std::string segBasePath(std::uint64_t epoch,
                                        std::size_t chunk) const {
    return spillPath_ + "/w" + std::to_string(epoch) + "-c" +
           std::to_string(chunk);
  }

  /// Bitstate barrier publication: fold the wave's claimed fingerprints
  /// into the Bloom array (single-threaded; queries resume next wave).
  void publishClaims() {
    waveClaim_->forEachFingerprint(
        [&](std::uint64_t fp) { bloom_->setAll(fp); });
  }

  void absorbSegs(ChunkOut& o, WaveSegs& next) {
    for (SegmentInfo& s : o.segs) {
      next.records += s.records;
      next.flightSum += s.flightSum;
      result_.perf.spillSegments += 1;
      result_.perf.spillBytesWritten += s.payloadBytes;
      next.segs.push_back(std::move(s));
    }
    o.segs.clear();
  }

  /// Remove a drained wave's segment files, sparing any referenced by
  /// the latest checkpoint manifest (a resume needs them intact).  Spared
  /// files are remembered so the next checkpoint, once its manifest no
  /// longer references them, can reclaim the disk — otherwise every
  /// checkpointed wave's segments would accumulate for the whole run.
  void deleteSegs(WaveSegs& w) {
    for (SegmentInfo& s : w.segs) {
      if (protected_.count(fileBase(s.path)) == 0) {
        std::remove(s.path.c_str());
      } else {
        retiredSegs_.push_back(std::move(s.path));
      }
    }
    w.segs.clear();
    w.records = 0;
    w.flightSum = 0;
  }

  /// Checkpoint at a wave boundary: append the not-yet-logged visited
  /// records (id order), rewrite the bitstate dump, then atomically
  /// publish a manifest pinning the pending wave's segments.  A kill at
  /// any point leaves either the old manifest (with its files intact —
  /// deletion spares them) or the new one; the manifest's visited-log
  /// byte length truncates torn tails on resume.
  void writeCheckpoint(const WaveSegs& pending) {
    if (!visitedLog_ && mode_ != VisitedMode::Bitstate) {
      visitedLog_ = std::make_unique<VisitedLogWriter>(
          ckptDir_ + "/visited.log", visitedLogBytes_);
    }
    const std::uint64_t nid = nextId_.load(std::memory_order_relaxed);
    if (mode_ == VisitedMode::Exact) {
      for (std::uint64_t id = loggedRecords_; id < nid; ++id) {
        visitedLog_->appendExact(encs_[id].ptr, encs_[id].len, parents_[id],
                                 actions_[id]);
      }
    } else if (mode_ == VisitedMode::Compact) {
      for (std::uint64_t id = loggedRecords_; id < nid; ++id) {
        visitedLog_->appendFp(fpsById_[id]);
      }
    }
    if (mode_ != VisitedMode::Bitstate) {
      const std::uint64_t before = visitedLogBytes_;
      visitedLogBytes_ = visitedLog_->flush();
      loggedRecords_ = nid;
      result_.perf.checkpointBytes += visitedLogBytes_ - before;
    } else {
      writeBitstateFile(ckptDir_ + "/bitstate.bits", digest_,
                        bloom_->hashCount(), bloom_->words());
      result_.perf.checkpointBytes += bloom_->bytes();
    }
    CheckpointManifest m;
    m.configDigest = digest_;
    m.visitedMode = toString(mode_);
    m.wavesCompleted = result_.wavesCompleted;
    m.statesExplored = result_.statesExplored;
    m.transitions = result_.transitions;
    m.frontierPeak = result_.frontierPeak;
    m.ampleStates = result_.ampleStates;
    m.nextId = nid;
    m.txnNext = txns_.next.load(std::memory_order_relaxed);
    m.encodeCalls = result_.perf.encodeCalls;
    m.insertCalls = result_.perf.insertCalls;
    m.storedStates = result_.perf.storedStates;
    m.storedEncodingBytes = result_.perf.storedEncodingBytes;
    m.probeHist = result_.perf.probeHist;
    m.visitedLogBytes = visitedLogBytes_;
    m.visitedLogRecords = loggedRecords_;
    if (mode_ == VisitedMode::Bitstate) {
      m.bitstateWords = bloom_->words().size();
      m.bitstateHashes = bloom_->hashCount();
    }
    m.frontier = pending.segs;
    writeManifest(ckptDir_, m);
    protected_.clear();
    for (const SegmentInfo& s : pending.segs) {
      protected_.insert(fileBase(s.path));
    }
    // The new manifest is durably in place; segments only the superseded
    // manifest referenced are dead weight now.  (A kill before this point
    // merely leaks files; it never invalidates a checkpoint.)
    for (const std::string& path : retiredSegs_) {
      if (protected_.count(fileBase(path)) == 0) std::remove(path.c_str());
    }
    retiredSegs_.clear();
  }

  /// Rebuild the explorer from `--resume DIR`: counters, the transaction
  /// counter (frontier blobs hold raw txn ids — freshly minted ids must
  /// stay unique within any world they meet), the visited structures,
  /// and the pending wave's segment list.
  void restoreFromCheckpoint(WaveSegs& wave) {
    const CheckpointManifest m = readManifest(cfg_.resumeDir);
    if (m.configDigest != digest_) {
      throw SimError(
          "checkpoint was written for a different configuration "
          "(config digest mismatch) — topology, protocol switches, "
          "reductions, and visited mode must match the checkpointed run");
    }
    if (m.visitedMode != toString(mode_)) {
      throw SimError("checkpoint visited mode is '" + m.visitedMode +
                     "' but this run asked for '" + toString(mode_) + "'");
    }
    result_.resumed = true;
    result_.statesExplored = m.statesExplored;
    result_.transitions = m.transitions;
    result_.frontierPeak = m.frontierPeak;
    result_.ampleStates = m.ampleStates;
    result_.wavesCompleted = m.wavesCompleted;
    result_.perf.encodeCalls = m.encodeCalls;
    result_.perf.insertCalls = m.insertCalls;
    result_.perf.storedStates = m.storedStates;
    result_.perf.storedEncodingBytes = m.storedEncodingBytes;
    result_.perf.probeHist = m.probeHist;
    txns_.next.store(m.txnNext, std::memory_order_relaxed);
    nextId_.store(static_cast<std::uint32_t>(m.nextId),
                  std::memory_order_relaxed);
    if (mode_ == VisitedMode::Exact) {
      if (m.visitedLogRecords != m.nextId) {
        throw SimError(
            "checkpoint manifest inconsistent: visited-log record count "
            "does not match nextId");
      }
      visited_.reserveFor(static_cast<std::size_t>(m.visitedLogRecords));
      growIdArrays(static_cast<std::size_t>(m.nextId));
      VisitedLogReader rd(cfg_.resumeDir + "/visited.log", m.visitedLogBytes);
      ArenaRef encRef(encArena_);
      std::vector<std::byte> buf;
      std::uint32_t parent = 0;
      std::uint64_t action = 0;
      std::uint64_t id = 0;
      while (rd.nextExact(buf, parent, action)) {
        if (id >= m.nextId) {
          throw SimError(
              "checkpoint visited log holds more records than nextId");
        }
        std::byte* p = encRef.alloc(buf.size());
        std::memcpy(p, buf.data(), buf.size());
        encs_[id] = EncRef{p, static_cast<std::uint32_t>(buf.size())};
        parents_[id] = parent;
        actions_[id] = action;
        const std::uint64_t fp = fingerprintHash(buf.data(), buf.size());
        const FlatFingerprintSet::InsertResult res = visited_.insert(
            fp, [&](std::uint32_t payload) { return encEquals(payload, buf); },
            [&]() { return static_cast<std::uint32_t>(id); });
        if (!res.inserted) {
          throw SimError("checkpoint visited log holds a duplicate state");
        }
        id += 1;
      }
      if (id != m.nextId) {
        throw SimError(
            "checkpoint visited log truncated: fewer records than nextId");
      }
    } else if (mode_ == VisitedMode::Compact) {
      if (m.visitedLogRecords != m.nextId) {
        throw SimError(
            "checkpoint manifest inconsistent: visited-log record count "
            "does not match nextId");
      }
      visited_.reserveFor(static_cast<std::size_t>(m.visitedLogRecords));
      growIdArrays(static_cast<std::size_t>(m.nextId));
      VisitedLogReader rd(cfg_.resumeDir + "/visited.log", m.visitedLogBytes);
      std::uint64_t fp = 0;
      std::uint64_t id = 0;
      while (rd.nextFp(fp)) {
        if (id >= m.nextId) {
          throw SimError(
              "checkpoint visited log holds more records than nextId");
        }
        if (checkpointing_) fpsById_[id] = fp;
        const FlatFingerprintSet::InsertResult res = visited_.insert(
            fp, [](std::uint32_t) { return true; },
            [&]() { return static_cast<std::uint32_t>(id); });
        if (!res.inserted) {
          throw SimError(
              "checkpoint visited log holds a duplicate fingerprint");
        }
        id += 1;
      }
      if (id != m.nextId) {
        throw SimError(
            "checkpoint visited log truncated: fewer records than nextId");
      }
    } else {
      std::uint32_t hashes = 0;
      std::vector<std::uint64_t> words =
          readBitstateFile(cfg_.resumeDir + "/bitstate.bits", digest_, hashes);
      bloom_->loadWords(std::move(words), hashes);
    }
    for (const SegmentInfo& s : m.frontier) {
      wave.records += s.records;
      wave.flightSum += s.flightSum;
      protected_.insert(fileBase(s.path));
    }
    wave.segs = m.frontier;
    loggedRecords_ = m.visitedLogRecords;
    visitedLogBytes_ = m.visitedLogBytes;
  }

  McConfig cfg_;
  VisitedMode mode_ = VisitedMode::Exact;
  std::uint64_t digest_ = 0;
  proto::TxnCounter txns_;
  std::mutex ctxMu_;
  std::vector<std::unique_ptr<WorkerCtx>> ctxPool_;
  FlatFingerprintSet visited_;
  Arena encArena_;        ///< canonical encodings of visited states
  Arena waveArenas_[2];   ///< ping-pong frontier-blob arenas
  std::atomic<std::uint32_t> nextId_{0};
  std::uint32_t idWatermark_ = 0;  ///< POR proviso horizon (wave start)
  std::vector<EncRef> encs_;
  std::vector<std::uint32_t> parents_;
  std::vector<std::uint64_t> actions_;
  McResult result_;

  // -- out-of-core state -------------------------------------------------
  bool spill_ = false;
  bool checkpointing_ = false;
  std::string spillPath_;
  std::string ckptDir_;
  std::unique_ptr<BitstateFilter> bloom_;        ///< bitstate mode
  std::unique_ptr<FlatFingerprintSet> waveClaim_;  ///< bitstate, per wave
  std::atomic<std::uint32_t> claimNext_{0};
  /// Compact + checkpointing: fingerprint per id, feeding the visited
  /// log in id order.
  std::vector<std::uint64_t> fpsById_;
  std::unique_ptr<VisitedLogWriter> visitedLog_;
  std::uint64_t loggedRecords_ = 0;
  std::uint64_t visitedLogBytes_ = 0;
  /// Basenames of segment files referenced by the latest manifest —
  /// deletion must spare them for resume.
  std::set<std::string> protected_;
  /// Drained-but-spared segment files from superseded checkpoints,
  /// reclaimed once a newer manifest stops referencing them.
  std::vector<std::string> retiredSegs_;
};

McResult ParallelExplorer::run() {
  const unsigned jobs = std::max(1u, cfg_.jobs);
  ThreadPool pool(jobs);
  std::optional<CexSeed> cexSeed;

  // Extra successors one expanded state can contribute beyond its
  // deliveries: two issues per (processor, block), one eviction-ish local
  // action folded into the same bound, plus a store under modelData.
  const std::uint64_t issueBound =
      static_cast<std::uint64_t>(cfg_.numProcessors) * cfg_.numBlocks *
      (2 + (cfg_.modelData ? 1 : 0));

  std::size_t cur = 0;
  std::vector<FrontierRef> frontier;  // in-RAM frontier
  WaveSegs wave;                      // spilled frontier

  if (!cfg_.resumeDir.empty()) {
    restoreFromCheckpoint(wave);
  } else {
    // Seed the root (wave arena 0 / segment w0-c0 holds the first
    // frontier's blobs).
    growIdArrays(16);
    ChunkOut rootOut;
    if (spill_) rootOut.segBase = segBasePath(0, 0);
    std::unique_ptr<WorkerCtx> ctx = acquireCtx(0, waveArenas_[0]);
    const World init = makeInitialWorld(cfg_, txns_);
    try {
      record(init, kNoParent, Action{}, *ctx, rootOut);
      sealChunk(rootOut);
    } catch (...) {
      rootOut.error = std::current_exception();
    }
    releaseCtx(std::move(ctx));
    if (rootOut.error) std::rethrow_exception(rootOut.error);
    result_.perf.merge(rootOut.perf);
    if (mode_ == VisitedMode::Bitstate) {
      publishClaims();
      waveClaim_->clear();
    }
    if (spill_) {
      absorbSegs(rootOut, wave);
    } else {
      frontier = std::move(rootOut.next);
    }
  }

  while (spill_ ? wave.records != 0 : !frontier.empty()) {
    const std::uint64_t frontSize = spill_ ? wave.records : frontier.size();
    result_.frontierPeak = std::max(result_.frontierPeak, frontSize);
    const std::uint64_t remaining =
        cfg_.maxStates > result_.statesExplored
            ? cfg_.maxStates - result_.statesExplored
            : 0;
    std::uint64_t expandCount = frontSize;
    if (remaining < frontSize) {
      expandCount = remaining;
      result_.hitStateLimit = true;
    }
    if (expandCount == 0) {
      if (spill_) deleteSegs(wave);
      break;
    }

    // This wave's successor upper bound: the visited table and the id
    // arrays may not grow mid-wave (the flat set must not rehash under
    // concurrent inserts; workers index the id arrays without locks).
    // The spilled path charges the whole wave's flight sum — an upper
    // bound either way, and capacity never affects counts.
    std::uint64_t waveBound = expandCount * issueBound;
    if (spill_) {
      waveBound += wave.flightSum;
    } else {
      for (std::uint64_t i = 0; i < expandCount; ++i) {
        waveBound += frontier[static_cast<std::size_t>(i)].flightCount;
      }
    }

    // Memory-limit verdict — decided only at wave boundaries (counts
    // stay exact and jobs-independent for every completed wave), and
    // tested against the PROJECTED post-growth footprint, so the
    // boundary growth itself can't overshoot the limit.  With
    // checkpointing the stop is resumable: the pending wave was either
    // just checkpointed or is checkpointed right here.
    if (cfg_.memLimitMb != 0 &&
        projectedTrackedBytes(frontier.capacity(), waveBound, jobs) >
            cfg_.memLimitMb * 1024 * 1024) {
      result_.memLimitHit = true;
      if (checkpointing_) writeCheckpoint(wave);
      break;
    }

    visited_.reserveFor(static_cast<std::size_t>(waveBound));
    if (mode_ == VisitedMode::Bitstate) {
      waveClaim_->reserveFor(static_cast<std::size_t>(waveBound));
      claimNext_.store(0, std::memory_order_relaxed);
    }
    const std::uint32_t baseId = nextId_.load(std::memory_order_relaxed);
    growIdArrays(static_cast<std::size_t>(baseId) +
                 static_cast<std::size_t>(waveBound));

    // Freeze the POR proviso horizon at the wave boundary.
    idWatermark_ = baseId;

    Arena& nextArena = waveArenas_[1 - cur];
    const std::uint64_t epoch = result_.wavesCompleted + 1;
    std::vector<ChunkOut> outs;
    if (spill_) {
      // One task per source segment, with a record budget cutting the
      // final partial segment of a state-capped run.  Segment order is
      // frontier order, so in-order merge keeps the global sequence
      // identical to the in-RAM path.
      std::vector<std::pair<const SegmentInfo*, std::uint64_t>> specs;
      std::uint64_t left = expandCount;
      for (const SegmentInfo& s : wave.segs) {
        if (left == 0) break;
        const std::uint64_t budget = std::min(s.records, left);
        left -= budget;
        specs.emplace_back(&s, budget);
      }
      outs.resize(specs.size());
      for (std::size_t c = 0; c < specs.size(); ++c) {
        outs[c].segBase = segBasePath(epoch, c);
        const SegmentInfo* seg = specs[c].first;
        const std::uint64_t budget = specs[c].second;
        pool.submit([this, seg, budget, epoch, &outs, c] {
          expandSegment(*seg, budget, epoch, outs[c]);
        });
      }
    } else {
      // Adaptive chunking: large chunks on small frontiers so
      // oversubscribed hosts don't pay merge cost for nothing, bounded
      // below at 64 states.
      const std::size_t chunkSize = std::max<std::size_t>(
          static_cast<std::size_t>(expandCount) / (std::size_t{8} * jobs),
          std::size_t{64});
      const std::size_t nChunks =
          (static_cast<std::size_t>(expandCount) + chunkSize - 1) / chunkSize;
      outs.resize(nChunks);
      for (std::size_t c = 0; c < nChunks; ++c) {
        const std::size_t begin = c * chunkSize;
        const std::size_t end = std::min(static_cast<std::size_t>(expandCount),
                                         begin + chunkSize);
        pool.submit([this, &frontier, &outs, &nextArena, epoch, c, begin,
                     end] {
          expandRange(frontier, begin, end, epoch, nextArena, outs[c]);
        });
      }
    }
    pool.wait();
    for (ChunkOut& o : outs) {
      if (o.error) std::rethrow_exception(o.error);
    }
    if (mode_ == VisitedMode::Bitstate) {
      publishClaims();
      waveClaim_->clear();
    }

    result_.statesExplored += expandCount;
    std::vector<FrontierRef> next;
    WaveSegs nextWave;
    std::vector<std::string> waveViolations;
    for (ChunkOut& o : outs) {
      result_.transitions += o.transitions;
      result_.ampleStates += o.ampleStates;
      result_.deadlockFound = result_.deadlockFound || o.deadlock;
      result_.perf.merge(o.perf);
      for (std::string& v : o.violations) {
        waveViolations.push_back(std::move(v));
      }
      if (!cexSeed && o.cex) cexSeed = std::move(o.cex);
      if (spill_) {
        absorbSegs(o, nextWave);
      } else {
        for (const FrontierRef& ref : o.next) next.push_back(ref);
      }
    }
    result_.frontierBytesPeak = std::max<std::uint64_t>(
        result_.frontierBytesPeak,
        waveArenas_[0].bytesReserved() + waveArenas_[1].bytesReserved());
    result_.trackedBytesPeak = std::max<std::uint64_t>(
        result_.trackedBytesPeak,
        trackedBytesBase() +
            (frontier.capacity() + next.capacity()) * sizeof(FrontierRef));
    std::sort(waveViolations.begin(), waveViolations.end());
    waveViolations.erase(
        std::unique(waveViolations.begin(), waveViolations.end()),
        waveViolations.end());
    for (std::string& v : waveViolations) {
      if (result_.violations.size() < cfg_.maxViolations) {
        result_.violations.push_back(std::move(v));
      }
    }
    result_.wavesCompleted += 1;
    // Stop decisions live at wave boundaries only, so counts and verdicts
    // are identical for any jobs value.
    if (!result_.violations.empty() || result_.deadlockFound ||
        result_.hitStateLimit) {
      // Terminal verdict: nothing to resume; drop unprotected segments.
      if (spill_) {
        deleteSegs(wave);
        deleteSegs(nextWave);
      }
      break;
    }
    if (cfg_.maxDepth != 0 && result_.wavesCompleted >= cfg_.maxDepth) {
      // Depth-capped stop is resumable (rerun with a larger --max-depth).
      if (checkpointing_) writeCheckpoint(nextWave);
      if (spill_) {
        deleteSegs(wave);
        if (!checkpointing_) deleteSegs(nextWave);
      }
      break;
    }
    if (checkpointing_ &&
        result_.wavesCompleted %
                std::max<std::uint64_t>(1, cfg_.checkpointEvery) ==
            0) {
      writeCheckpoint(nextWave);
    }
    if (spill_) {
      deleteSegs(wave);
      wave = std::move(nextWave);
    } else {
      frontier = std::move(next);
      // The expanded wave's blobs are dead; recycle its arena for the
      // wave after next.
      waveArenas_[cur].reset();
      cur = 1 - cur;
    }
  }

  if (cexSeed) {
    Counterexample cex;
    cex.kind = cexSeed->kind;
    cex.detail = cexSeed->detail;
    // Only exact mode keeps parent edges; lossy modes report the failing
    // state without a schedule (DESIGN.md §14).
    if (mode_ == VisitedMode::Exact) {
      cex.schedule = reconstructSchedule(*cexSeed);
    }
    result_.counterexample = std::move(cex);
  }
  result_.visitedBytes =
      visited_.bytes() + encArena_.bytesReserved() +
      encs_.capacity() * sizeof(EncRef) +
      parents_.capacity() * sizeof(std::uint32_t) +
      actions_.capacity() * sizeof(std::uint64_t) +
      fpsById_.capacity() * sizeof(std::uint64_t) +
      (bloom_ ? bloom_->bytes() : 0);
  if (mode_ == VisitedMode::Compact) {
    const double n = static_cast<double>(result_.perf.storedStates);
    result_.omissionBound =
        std::min(1.0, n * (n - 1.0) / 2.0 / std::pow(2.0, 64));
  } else if (mode_ == VisitedMode::Bitstate) {
    const double fill = static_cast<double>(bloom_->onesCount()) /
                        static_cast<double>(bloom_->bitCount());
    result_.omissionBound =
        std::min(1.0, static_cast<double>(result_.perf.insertCalls) *
                          std::pow(fill, static_cast<double>(
                                             bloom_->hashCount())));
  }
  result_.perf.omissionBound = result_.omissionBound;
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    // Linux reports ru_maxrss in KiB.
    result_.peakRssBytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
  }
  return result_;
}

}  // namespace

const char* toString(VisitedMode m) {
  switch (m) {
    case VisitedMode::Exact: return "exact";
    case VisitedMode::Compact: return "compact";
    case VisitedMode::Bitstate: return "bitstate";
  }
  return "?";
}

std::string toString(const Action& a) {
  std::ostringstream os;
  switch (a.kind) {
    case Action::Kind::Deliver:
      os << "deliver #" << a.flightIndex << ' ' << proto::toString(a.msgType)
         << " -> node " << a.dst << " (block " << a.block << ')';
      break;
    case Action::Kind::Issue:
      os << "node " << a.proc << " issues " << lcdc::toString(a.req)
         << " on block " << a.block;
      break;
    case Action::Kind::Evict:
      os << "node " << a.proc << " evicts block " << a.block;
      break;
    case Action::Kind::Store:
      os << "node " << a.proc << " stores to block " << a.block;
      break;
  }
  return os.str();
}

McResult explore(const McConfig& cfg) {
  LCDC_EXPECT(cfg.numProcessors >= 1, "need at least one processor");
  LCDC_EXPECT(cfg.numBlocks >= 1, "need at least one block");
  if (cfg.protocol == ProtocolKind::Bus) {
    throw SimError(
        "the bus backend is not model-checkable: its only nondeterminism is "
        "the snoop-queue order already covered by seeded 'lcdc run "
        "--protocol bus'");
  }
  if (cfg.visited == VisitedMode::Bitstate && cfg.por) {
    throw SimError(
        "--visited bitstate cannot combine with --por: the ample-set "
        "proviso compares state discovery ids, which bitstate mode does "
        "not assign");
  }
  if (!cfg.resumeDir.empty() && !cfg.checkpointDir.empty() &&
      cfg.resumeDir != cfg.checkpointDir) {
    throw SimError(
        "--resume and --checkpoint name different directories; a resumed "
        "run continues checkpointing into the resume directory, so drop "
        "--checkpoint or point both at the same place");
  }
  const bool outOfCore = !cfg.spillDir.empty() || !cfg.checkpointDir.empty() ||
                         !cfg.resumeDir.empty();
  if (outOfCore) {
    const std::string ckpt =
        cfg.checkpointDir.empty() ? cfg.resumeDir : cfg.checkpointDir;
    if (!cfg.spillDir.empty() && !ckpt.empty() && cfg.spillDir != ckpt) {
      throw SimError(
          "--spill and --checkpoint/--resume name different directories; "
          "checkpoints reference the spill segments by basename, so they "
          "must live in one directory");
    }
  }
  if (cfg.protocol == ProtocolKind::Tardis) {
    if (outOfCore || cfg.visited != VisitedMode::Exact) {
      throw SimError(
          "the tardis backend keeps its own in-RAM exploration state: "
          "--visited/--spill/--checkpoint/--resume apply to the directory "
          "protocol only");
    }
    return exploreTardis(cfg);
  }
  ParallelExplorer explorer(cfg);
  return explorer.run();
}

}  // namespace lcdc::mc
