#include "mc/model_checker.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/expect.hpp"
#include "proto/cache.hpp"
#include "proto/directory.hpp"

namespace lcdc::mc {

namespace {

/// Processors never see callbacks in the model checker: there is no
/// program, only nondeterministic request intents.
class NullClient final : public proto::CacheClient {
 public:
  void onComplete(BlockId, ReqType) override {}
  void onNacked(BlockId, ReqType, NackKind) override {}
  void onLineUnblocked(BlockId) override {}
};

NullClient& nullClient() {
  static NullClient c;
  return c;
}

/// One in-flight message with its destination (the network "bag").
struct Flight {
  NodeId dst = kNoNode;
  proto::Message msg;
};

/// A full world state.  Controllers are plain value types, so copying the
/// world is a deep copy of the protocol state.
struct World {
  std::vector<proto::CacheController> caches;
  std::vector<proto::DirectoryController> dirs;  // one in this checker
  std::vector<Flight> flight;
};

// -- canonical serialization -------------------------------------------------

class Canonicalizer {
 public:
  explicit Canonicalizer(const McConfig& cfg) : cfg_(cfg) {}

  std::string key(const World& w) {
    txnMap_.clear();
    out_.str(std::string());
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      const proto::DirEntry& e = w.dirs[0].entry(b);
      out_ << 'D' << static_cast<int>(e.core.state) << ','
           << e.core.busyRequester << ',' << static_cast<int>(e.core.busyReq)
           << ",[";
      for (const NodeId n : e.core.cached) out_ << n << ' ';
      out_ << "];";
    }
    for (const auto& cache : w.caches) {
      for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
        emitLine(cache.findLine(b));
      }
    }
    // Flight bag: order-independent — sort by a per-message canonical
    // string (original txn id as a deterministic tiebreaker).
    std::vector<std::string> msgs;
    msgs.reserve(w.flight.size());
    for (const Flight& f : w.flight) msgs.push_back(preKey(f));
    std::sort(msgs.begin(), msgs.end());
    for (const std::string& m : msgs) out_ << 'F' << remapInString(m) << ';';
    return out_.str();
  }

 private:
  /// Canonical message text with txn ids marked for later remapping.
  std::string preKey(const Flight& f) {
    std::ostringstream os;
    os << f.dst << ',' << static_cast<int>(f.msg.type) << ',' << f.msg.block
       << ',' << f.msg.src << ',' << f.msg.requester << ','
       << static_cast<int>(f.msg.nackKind) << ','
       << static_cast<int>(f.msg.nackedReq) << ','
       << f.msg.ignoreBufferedInv << ",[";
    std::vector<NodeId> targets = f.msg.invTargets;
    std::sort(targets.begin(), targets.end());
    for (const NodeId n : targets) os << n << ' ';
    os << "],t<" << f.msg.txn << ">,c<" << f.msg.closesTxn << '>';
    return os.str();
  }

  /// Replace t<id>/c<id> markers with canonical small integers (assigned in
  /// encounter order across the whole key).
  std::string remapInString(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '<') {
        const std::size_t end = s.find('>', i);
        const TransactionId id =
            std::stoull(s.substr(i + 1, end - i - 1));
        out += std::to_string(remap(id));
        i = end;
      } else {
        out += s[i];
      }
    }
    return out;
  }

  std::uint64_t remap(TransactionId id) {
    if (id == kNoTransaction) return ~std::uint64_t{0};
    const auto [it, inserted] = txnMap_.try_emplace(id, txnMap_.size());
    return it->second;
  }

  void emitLine(const proto::Line* line) {
    if (line == nullptr) {
      out_ << "L-;";
      return;
    }
    out_ << 'L' << static_cast<int>(line->cstate)
         << static_cast<int>(line->astate) << ",i" << remap(line->ignoreFwdTxn)
         << ",d" << remap(line->dropInvTxn) << ',';
    if (line->mshr) {
      const proto::Mshr& m = *line->mshr;
      out_ << 'M' << static_cast<int>(m.req) << m.replySeen << m.invListKnown
           << ",[";
      std::vector<NodeId> acks = m.acksPending;
      std::sort(acks.begin(), acks.end());
      for (const NodeId n : acks) out_ << n << ' ';
      out_ << "],[";
      std::vector<NodeId> early = m.earlyAcks;
      std::sort(early.begin(), early.end());
      for (const NodeId n : early) out_ << n << ' ';
      out_ << "],p";
      if (m.pendingFwd) {
        out_ << static_cast<int>(m.pendingFwd->type) << '/'
             << m.pendingFwd->requester;
      } else {
        out_ << '-';
      }
      out_ << ",b[";
      for (const proto::Message& bm : m.buffered) {
        out_ << static_cast<int>(bm.type) << '/' << bm.requester << '/'
             << remap(bm.txn) << ' ';
      }
      out_ << ']';
    } else {
      out_ << "M-";
    }
    out_ << ';';
  }

  const McConfig& cfg_;
  std::map<TransactionId, std::uint64_t> txnMap_;
  std::ostringstream out_;
};

// -- the explorer -------------------------------------------------------------

class Explorer {
 public:
  explicit Explorer(const McConfig& cfg) : cfg_(cfg), canon_(cfg) {}

  McResult run() {
    World init = makeInitial();
    std::deque<World> frontier;
    std::unordered_set<std::string> visited;
    visited.insert(canon_.key(init));
    frontier.push_back(std::move(init));

    while (!frontier.empty()) {
      result_.frontierPeak =
          std::max<std::uint64_t>(result_.frontierPeak, frontier.size());
      World w = std::move(frontier.front());
      frontier.pop_front();
      result_.statesExplored += 1;
      if (result_.statesExplored >= cfg_.maxStates) {
        result_.hitStateLimit = true;
        break;
      }

      checkState(w);
      if (!result_.violations.empty() &&
          result_.violations.size() > 8) {
        break;  // enough evidence
      }

      std::vector<World> succ = successors(w);
      for (World& s : succ) {
        result_.transitions += 1;
        std::string key = canon_.key(s);
        if (visited.insert(std::move(key)).second) {
          frontier.push_back(std::move(s));
        }
      }
    }
    return result_;
  }

 private:
  World makeInitial() {
    World w;
    w.dirs.emplace_back(cfg_.numProcessors, cfg_.proto, proto::nullSink(),
                        txns_);
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      w.dirs[0].addBlock(b, BlockValue(cfg_.proto.wordsPerBlock, 0));
    }
    for (NodeId p = 0; p < cfg_.numProcessors; ++p) {
      w.caches.emplace_back(p, cfg_.proto, proto::nullSink(), nullClient());
    }
    return w;
  }

  void checkState(const World& w) {
    // Single-writer / multiple-reader: the invariant behind Lemma 1.
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      NodeId writer = kNoNode;
      std::uint32_t readers = 0;
      for (const auto& cache : w.caches) {
        const proto::Line* line = cache.findLine(b);
        if (line == nullptr) continue;
        if (line->cstate == CacheState::ReadWrite) {
          if (writer != kNoNode) {
            std::ostringstream os;
            os << "SWMR violated on block " << b << ": nodes " << writer
               << " and " << cache.self() << " both read-write";
            result_.violations.push_back(os.str());
          }
          writer = cache.self();
        } else if (line->cstate == CacheState::ReadOnly) {
          readers += 1;
        }
      }
      if (writer != kNoNode && readers > 0) {
        std::ostringstream os;
        os << "SWMR violated on block " << b << ": node " << writer
           << " is read-write while " << readers << " reader(s) persist";
        result_.violations.push_back(os.str());
      }
    }
    // Definite deadlock: requests outstanding but nothing in flight and no
    // local action can produce the awaited reply.
    if (w.flight.empty()) {
      for (const auto& cache : w.caches) {
        if (!cache.quiescent()) {
          bool waiting = false;
          for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
            const proto::Line* line = cache.findLine(b);
            if (line != nullptr && line->mshr.has_value()) waiting = true;
          }
          if (waiting) result_.deadlockFound = true;
        }
      }
    }
  }

  std::vector<World> successors(const World& w) {
    std::vector<World> out;
    // (a) Deliver any in-flight message (the unordered network).
    for (std::size_t i = 0; i < w.flight.size(); ++i) {
      World s = w;
      rebind(s);
      const Flight f = s.flight[i];
      s.flight.erase(s.flight.begin() + static_cast<std::ptrdiff_t>(i));
      if (deliver(s, f)) out.push_back(std::move(s));
    }
    // (b) Any processor issues any legal request / local action.
    for (NodeId p = 0; p < cfg_.numProcessors; ++p) {
      for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
        const proto::CacheController& cache = w.caches[p];
        if (cache.requestBlocked(b)) continue;
        const CacheState cs = cache.state(b);
        if (cs == CacheState::Invalid) {
          out.push_back(issue(w, p, b, ReqType::GetShared));
          out.push_back(issue(w, p, b, ReqType::GetExclusive));
        } else if (cs == CacheState::ReadOnly) {
          out.push_back(issue(w, p, b, ReqType::Upgrade));
          if (cfg_.allowEvictions && cfg_.proto.putSharedEnabled) {
            World s = w;
            rebind(s);
            s.caches[p].putShared(b);
            out.push_back(std::move(s));
          }
        } else if (cfg_.allowEvictions) {
          World s = w;
          rebind(s);
          proto::Outbox ob;
          s.caches[p].writeback(b, cfg_.numProcessors, ob);
          absorb(s, p, ob);
          out.push_back(std::move(s));
        }
      }
    }
    return out;
  }

  World issue(const World& w, NodeId p, BlockId b, ReqType req) {
    World s = w;
    rebind(s);
    proto::Outbox ob;
    s.caches[p].issueRequest(b, req, cfg_.numProcessors, ob);
    absorb(s, p, ob);
    return s;
  }

  /// Deliver one message; false if it raised a protocol violation (the
  /// state is then recorded but not expanded).
  bool deliver(World& s, const Flight& f) {
    proto::Outbox ob;
    try {
      if (f.dst >= cfg_.numProcessors) {
        s.dirs[0].handle(f.msg, ob);
        absorb(s, f.dst, ob);
      } else {
        s.caches[f.dst].handle(f.msg, ob);
        absorb(s, f.dst, ob);
      }
    } catch (const ProtocolError& e) {
      result_.violations.push_back(std::string("protocol invariant: ") +
                                   e.what());
      return false;
    }
    return true;
  }

  void absorb(World& s, NodeId src, proto::Outbox& ob) {
    for (auto& entry : ob.msgs) {
      entry.msg.src = src;
      s.flight.push_back(Flight{entry.dst, std::move(entry.msg)});
    }
  }

  /// After copying a world, re-point controller callbacks at the shared
  /// sink/client singletons (they are stateless, so copies are fine; this
  /// exists for clarity and future-proofing).
  void rebind(World&) {}

  McConfig cfg_;
  Canonicalizer canon_;
  proto::TxnCounter txns_;
  McResult result_;
};

}  // namespace

McResult explore(const McConfig& cfg) {
  LCDC_EXPECT(cfg.numProcessors >= 1, "need at least one processor");
  LCDC_EXPECT(cfg.numBlocks >= 1, "need at least one block");
  Explorer explorer(cfg);
  return explorer.run();
}

}  // namespace lcdc::mc
