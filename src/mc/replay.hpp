// Counterexample replay: ties the paper's two verification worlds
// together.  A schedule reconstructed by the model checker (an MC
// counterexample) is re-executed step by step through `sim::System` in
// manual network mode with the streaming Lamport checkers attached, so
// the same failing behaviour becomes a Lamport-checked failing trace —
// the checker suite of Section 3 confirms the violation the exhaustive
// search found.
//
// Fidelity: a manual-mode System with no programs is the same pure
// message-transition machine the checker explores — identical controller
// code, one directory (home id == numProcessors, matching the MC world),
// and the manual network deque appends sends in outbox order and erases
// at the delivered index exactly like the MC flight vector, so MC flight
// indices map 1:1 onto pending-message indices.  Every Deliver step is
// cross-checked against the recorded (dst, type, block) and any mismatch
// is reported as a divergence instead of silently replaying a different
// run.
#pragma once

#include <cstdint>
#include <string>

#include "mc/model_checker.hpp"
#include "verify/checkers.hpp"

namespace lcdc::trace {
class Trace;
}

namespace lcdc::mc {

struct ReplayResult {
  /// Every schedule step was applied to the simulator.
  bool scheduleCompleted = false;
  /// Non-empty when the schedule stopped mapping onto the simulator (a
  /// bug in the MC<->sim correspondence, surfaced loudly).
  std::string divergence;
  /// An Appendix-B protocol invariant (LCDC_EXPECT) fired during replay.
  std::string invariant;
  /// The replayed schedule left requests outstanding with no messages in
  /// flight — the deadlock the checker reported, reproduced.
  bool deadlocked = false;
  std::uint64_t opsBound = 0;
  /// Verdict of the streaming Lamport checker suite over the replay.
  verify::CheckReport report;

  [[nodiscard]] bool flagged() const {
    return !report.ok() || deadlocked || !invariant.empty();
  }
};

/// Re-execute `schedule` (from `McResult::counterexample`) through a
/// simulator built for `cfg`'s configuration, verifying online with
/// `verify::StreamCheckerSet`.  After every step each processor binds any
/// loads its cache permits, so the operation-level checkers (program
/// order, sequential consistency, value chain) see the replay too.  When
/// `traceOut` is non-null the replay is also recorded there.
[[nodiscard]] ReplayResult replayCounterexample(const McConfig& cfg,
                                                const Schedule& schedule,
                                                trace::Trace* traceOut =
                                                    nullptr);

}  // namespace lcdc::mc
