#include "mc/spill.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/expect.hpp"
#include "common/flat_set.hpp"
#include "mc/model_checker.hpp"
#include "trace/codec.hpp"

namespace lcdc::mc {

namespace {

constexpr char kSpillMagic[8] = {'L', 'C', 'S', 'P', 'I', 'L', 'L', '1'};
constexpr char kBloomMagic[8] = {'L', 'C', 'B', 'L', 'O', 'O', 'M', '1'};
constexpr std::size_t kSpillHeaderBytes = 48;
constexpr std::size_t kBloomHeaderBytes = 24;
constexpr std::size_t kWriterFlushBytes = std::size_t{1} << 20;

void putLE32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

void putLE64(std::byte* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  }
}

std::uint32_t getLE32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t getLE64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

[[noreturn]] void throwIo(const std::string& what, const std::string& path) {
  throw SimError(what + " '" + path + "': " + std::strerror(errno));
}

/// Open + mmap a file read-only; throws SimError on any failure.
struct Mapping {
  int fd = -1;
  const std::byte* data = nullptr;
  std::size_t len = 0;
};

Mapping mapFile(const std::string& path) {
  Mapping m;
  m.fd = ::open(path.c_str(), O_RDONLY);
  if (m.fd < 0) throwIo("cannot open spill file", path);
  struct stat st{};
  if (::fstat(m.fd, &st) != 0) {
    const int e = errno;
    ::close(m.fd);
    errno = e;
    throwIo("cannot stat spill file", path);
  }
  m.len = static_cast<std::size_t>(st.st_size);
  if (m.len == 0) {
    // mmap of length 0 is EINVAL; an empty file is simply "no bytes".
    return m;
  }
  void* p = ::mmap(nullptr, m.len, PROT_READ, MAP_PRIVATE, m.fd, 0);
  if (p == MAP_FAILED) {
    const int e = errno;
    ::close(m.fd);
    errno = e;
    throwIo("cannot mmap spill file", path);
  }
  m.data = static_cast<const std::byte*>(p);
  return m;
}

void unmapFile(Mapping& m) {
  if (m.data != nullptr) {
    ::munmap(const_cast<std::byte*>(static_cast<const std::byte*>(m.data)),
             m.len);
  }
  if (m.fd >= 0) ::close(m.fd);
  m.data = nullptr;
  m.fd = -1;
}

}  // namespace

std::uint64_t configDigest(const McConfig& cfg) {
  std::vector<std::byte> buf;
  using trace::codec::putU64;
  putU64(buf, 0x4C43444331ULL);  // format tag "LCDC1"
  putU64(buf, cfg.numProcessors);
  putU64(buf, cfg.numBlocks);
  putU64(buf, static_cast<std::uint64_t>(cfg.protocol));
  putU64(buf, cfg.proto.wordsPerBlock);
  putU64(buf, cfg.proto.putSharedEnabled ? 1 : 0);
  putU64(buf, static_cast<std::uint64_t>(cfg.proto.mutant));
  putU64(buf, cfg.proto.leaseLength);
  putU64(buf, cfg.allowEvictions ? 1 : 0);
  putU64(buf, cfg.symmetry ? 1 : 0);
  putU64(buf, cfg.por ? 1 : 0);
  putU64(buf, cfg.modelData ? 1 : 0);
  putU64(buf, static_cast<std::uint64_t>(cfg.visited));
  putU64(buf, cfg.visited == VisitedMode::Bitstate ? cfg.bitstateMb : 0);
  return fingerprintHash(buf.data(), buf.size());
}

// -- SpillSegmentWriter ------------------------------------------------------

SpillSegmentWriter::SpillSegmentWriter(std::string path,
                                       std::uint64_t configDigest)
    : path_(std::move(path)), digest_(configDigest) {
  f_ = std::fopen(path_.c_str(), "wb");
  if (f_ == nullptr) throwIo("cannot create spill segment", path_);
  std::byte header[kSpillHeaderBytes] = {};
  if (std::fwrite(header, 1, kSpillHeaderBytes, f_) != kSpillHeaderBytes) {
    throwIo("cannot write spill segment header", path_);
  }
  fileBytes_ = kSpillHeaderBytes;
}

SpillSegmentWriter::~SpillSegmentWriter() {
  if (f_ != nullptr) std::fclose(f_);
  if (!sealed_) std::remove(path_.c_str());  // abandon partial segment
}

void SpillSegmentWriter::add(std::uint64_t id, std::uint32_t flightCount,
                             const std::byte* blob, std::size_t len) {
  using trace::codec::putU64;
  putU64(buf_, id);
  putU64(buf_, flightCount);
  putU64(buf_, len);
  buf_.insert(buf_.end(), blob, blob + len);
  records_ += 1;
  payloadBytes_ += len;
  flightSum_ += flightCount;
  if (buf_.size() >= kWriterFlushBytes) flushBuf();
}

void SpillSegmentWriter::flushBuf() {
  if (buf_.empty()) return;
  if (std::fwrite(buf_.data(), 1, buf_.size(), f_) != buf_.size()) {
    throwIo("cannot write spill segment", path_);
  }
  fileBytes_ += buf_.size();
  buf_.clear();
}

SegmentInfo SpillSegmentWriter::seal() {
  LCDC_EXPECT(!sealed_, "spill segment sealed twice");
  flushBuf();
  std::byte header[kSpillHeaderBytes] = {};
  std::memcpy(header, kSpillMagic, 8);
  putLE32(header + 8, kSpillVersion);
  putLE32(header + 12, 0);
  putLE64(header + 16, digest_);
  putLE64(header + 24, records_);
  putLE64(header + 32, payloadBytes_);
  putLE64(header + 40, flightSum_);
  if (std::fseek(f_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, kSpillHeaderBytes, f_) != kSpillHeaderBytes ||
      std::fflush(f_) != 0) {
    throwIo("cannot seal spill segment", path_);
  }
  std::fclose(f_);
  f_ = nullptr;
  sealed_ = true;
  SegmentInfo info;
  info.path = path_;
  info.records = records_;
  info.flightSum = flightSum_;
  info.payloadBytes = payloadBytes_;
  return info;
}

// -- SpillSegmentReader ------------------------------------------------------

SpillSegmentReader::SpillSegmentReader(const std::string& path,
                                       std::uint64_t expectDigest) {
  Mapping m = mapFile(path);
  fd_ = m.fd;
  map_ = m.data;
  mapLen_ = m.len;
  if (mapLen_ < kSpillHeaderBytes) {
    throw SimError("spill segment truncated (no header): " + path);
  }
  if (std::memcmp(map_, kSpillMagic, 8) != 0) {
    throw SimError("spill segment has wrong magic: " + path);
  }
  const std::uint32_t version = getLE32(map_ + 8);
  if (version != kSpillVersion) {
    throw SimError("spill segment version mismatch in " + path + ": got " +
                   std::to_string(version) + ", want " +
                   std::to_string(kSpillVersion));
  }
  const std::uint64_t digest = getLE64(map_ + 16);
  if (digest != expectDigest) {
    throw SimError(
        "spill segment was written for a different configuration: " + path);
  }
  records_ = getLE64(map_ + 24);
  payloadBytes_ = getLE64(map_ + 32);
  flightSum_ = getLE64(map_ + 40);
  pos_ = kSpillHeaderBytes;
  if (payloadBytes_ > mapLen_) {
    throw SimError("spill segment truncated (payload past end): " + path);
  }
}

SpillSegmentReader::~SpillSegmentReader() {
  Mapping m{fd_, map_, mapLen_};
  unmapFile(m);
}

bool SpillSegmentReader::next(Record& r) {
  if (read_ == records_) return false;
  trace::codec::Reader rd{map_, mapLen_, pos_};
  r.id = rd.u64();
  r.flightCount = rd.u32();
  const std::uint64_t len = rd.u64();
  if (len > mapLen_ - rd.pos) {
    throw SimError("spill segment record truncated (blob passes end of file)");
  }
  r.blob = map_ + rd.pos;
  r.len = static_cast<std::uint32_t>(len);
  pos_ = rd.pos + static_cast<std::size_t>(len);
  read_ += 1;
  return true;
}

// -- VisitedLogWriter / VisitedLogReader -------------------------------------

VisitedLogWriter::VisitedLogWriter(const std::string& path,
                                   std::uint64_t validBytes) {
  if (validBytes == 0) {
    f_ = std::fopen(path.c_str(), "wb");
  } else {
    // Keep the valid prefix, drop any torn tail, then append.
    if (::truncate(path.c_str(), static_cast<off_t>(validBytes)) != 0) {
      throwIo("cannot truncate visited log", path);
    }
    f_ = std::fopen(path.c_str(), "ab");
  }
  if (f_ == nullptr) throwIo("cannot open visited log", path);
  offset_ = validBytes;
}

VisitedLogWriter::~VisitedLogWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void VisitedLogWriter::appendExact(const std::byte* enc, std::size_t len,
                                   std::uint32_t parent,
                                   std::uint64_t action) {
  using trace::codec::putU64;
  putU64(buf_, len);
  buf_.insert(buf_.end(), enc, enc + len);
  putU64(buf_, parent);
  putU64(buf_, action);
}

void VisitedLogWriter::appendFp(std::uint64_t fp) {
  trace::codec::putU64(buf_, fp);
}

std::uint64_t VisitedLogWriter::flush() {
  if (!buf_.empty()) {
    if (std::fwrite(buf_.data(), 1, buf_.size(), f_) != buf_.size()) {
      throw SimError(std::string("cannot append to visited log: ") +
                     std::strerror(errno));
    }
    offset_ += buf_.size();
    buf_.clear();
  }
  if (std::fflush(f_) != 0) {
    throw SimError(std::string("cannot flush visited log: ") +
                   std::strerror(errno));
  }
  return offset_;
}

VisitedLogReader::VisitedLogReader(const std::string& path,
                                   std::uint64_t validBytes) {
  Mapping m = mapFile(path);
  fd_ = m.fd;
  map_ = m.data;
  mapLen_ = m.len;
  if (validBytes > mapLen_) {
    Mapping drop{fd_, map_, mapLen_};
    unmapFile(drop);
    fd_ = -1;
    map_ = nullptr;
    throw SimError("visited log shorter than the manifest's valid length: " +
                   path);
  }
  mapLen_ = static_cast<std::size_t>(validBytes);  // ignore torn tail
}

VisitedLogReader::~VisitedLogReader() {
  // mapLen_ was clamped to the valid prefix; unmap wants the original
  // mapping length, but munmap with a shorter length only unmaps part of
  // the mapping on some systems — remap bookkeeping keeps it simple: we
  // mapped st_size bytes, so re-derive it.
  if (map_ != nullptr || fd_ >= 0) {
    struct stat st{};
    std::size_t full = mapLen_;
    if (fd_ >= 0 && ::fstat(fd_, &st) == 0) {
      full = static_cast<std::size_t>(st.st_size);
    }
    Mapping m{fd_, map_, full};
    unmapFile(m);
  }
}

bool VisitedLogReader::nextExact(std::vector<std::byte>& enc,
                                 std::uint32_t& parent,
                                 std::uint64_t& action) {
  if (pos_ == mapLen_) return false;
  trace::codec::Reader rd{map_, mapLen_, pos_};
  const std::uint64_t len = rd.u64();
  if (len > mapLen_ - rd.pos) {
    throw SimError("visited log record truncated (encoding passes valid end)");
  }
  enc.assign(map_ + rd.pos, map_ + rd.pos + len);
  rd.pos += static_cast<std::size_t>(len);
  parent = rd.u32();
  action = rd.u64();
  pos_ = rd.pos;
  return true;
}

bool VisitedLogReader::nextFp(std::uint64_t& fp) {
  if (pos_ == mapLen_) return false;
  trace::codec::Reader rd{map_, mapLen_, pos_};
  fp = rd.u64();
  pos_ = rd.pos;
  return true;
}

// -- bitstate dump -----------------------------------------------------------

void writeBitstateFile(const std::string& path, std::uint64_t configDigest,
                       std::uint32_t hashes,
                       const std::vector<std::uint64_t>& words) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throwIo("cannot create bitstate dump", tmp);
  std::byte header[kBloomHeaderBytes] = {};
  std::memcpy(header, kBloomMagic, 8);
  putLE32(header + 8, kSpillVersion);
  putLE32(header + 12, hashes);
  putLE64(header + 16, configDigest);
  bool ok = std::fwrite(header, 1, kBloomHeaderBytes, f) == kBloomHeaderBytes;
  std::byte count[8];
  putLE64(count, words.size());
  ok = ok && std::fwrite(count, 1, 8, f) == 8;
  for (std::size_t i = 0; ok && i < words.size(); ++i) {
    std::byte w[8];
    putLE64(w, words[i]);
    ok = std::fwrite(w, 1, 8, f) == 8;
  }
  ok = ok && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) throwIo("cannot write bitstate dump", tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throwIo("cannot publish bitstate dump", path);
  }
}

std::vector<std::uint64_t> readBitstateFile(const std::string& path,
                                            std::uint64_t expectDigest,
                                            std::uint32_t& hashesOut) {
  Mapping m = mapFile(path);
  struct Closer {
    Mapping* m;
    ~Closer() { unmapFile(*m); }
  } closer{&m};
  if (m.len < kBloomHeaderBytes + 8) {
    throw SimError("bitstate dump truncated (no header): " + path);
  }
  if (std::memcmp(m.data, kBloomMagic, 8) != 0) {
    throw SimError("bitstate dump has wrong magic: " + path);
  }
  const std::uint32_t version = getLE32(m.data + 8);
  if (version != kSpillVersion) {
    throw SimError("bitstate dump version mismatch: " + path);
  }
  hashesOut = getLE32(m.data + 12);
  if (getLE64(m.data + 16) != expectDigest) {
    throw SimError(
        "bitstate dump was written for a different configuration: " + path);
  }
  const std::uint64_t nWords = getLE64(m.data + kBloomHeaderBytes);
  if (m.len - kBloomHeaderBytes - 8 < nWords * 8) {
    throw SimError("bitstate dump truncated (words past end): " + path);
  }
  std::vector<std::uint64_t> words(static_cast<std::size_t>(nWords));
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = getLE64(m.data + kBloomHeaderBytes + 8 + i * 8);
  }
  return words;
}

// -- checkpoint manifest -----------------------------------------------------

namespace {

std::string baseName(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

void writeManifest(const std::string& dir, const CheckpointManifest& m) {
  const std::string path = dir + "/MANIFEST";
  const std::string tmp = path + ".tmp";
  std::ostringstream os;
  os << "lcdc-mc-checkpoint v1\n";
  os << "config " << std::hex << m.configDigest << std::dec << '\n';
  os << "visited " << m.visitedMode << '\n';
  os << "waves " << m.wavesCompleted << '\n';
  os << "states " << m.statesExplored << '\n';
  os << "transitions " << m.transitions << '\n';
  os << "frontierPeak " << m.frontierPeak << '\n';
  os << "ample " << m.ampleStates << '\n';
  os << "nextId " << m.nextId << '\n';
  os << "txnNext " << m.txnNext << '\n';
  os << "encodeCalls " << m.encodeCalls << '\n';
  os << "insertCalls " << m.insertCalls << '\n';
  os << "storedStates " << m.storedStates << '\n';
  os << "storedEncodingBytes " << m.storedEncodingBytes << '\n';
  os << "probeHist";
  for (const std::uint64_t h : m.probeHist) os << ' ' << h;
  os << '\n';
  os << "visitedLog " << m.visitedLogBytes << ' ' << m.visitedLogRecords
     << '\n';
  os << "bitstate " << m.bitstateWords << ' ' << m.bitstateHashes << '\n';
  os << "segments " << m.frontier.size() << '\n';
  for (const SegmentInfo& s : m.frontier) {
    os << "seg " << baseName(s.path) << ' ' << s.records << ' ' << s.flightSum
       << ' ' << s.payloadBytes << '\n';
  }
  os << "end\n";
  const std::string text = os.str();
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throwIo("cannot create checkpoint manifest", tmp);
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) throwIo("cannot write checkpoint manifest", tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throwIo("cannot publish checkpoint manifest", path);
  }
}

namespace {

/// Pull the next line and split it at spaces; SimError on EOF.
std::vector<std::string> manifestLine(std::istream& is,
                                      const std::string& path) {
  std::string line;
  if (!std::getline(is, line)) {
    throw SimError("checkpoint manifest truncated: " + path);
  }
  std::vector<std::string> toks;
  std::istringstream ls(line);
  std::string t;
  while (ls >> t) toks.push_back(t);
  return toks;
}

std::uint64_t manifestU64(const std::vector<std::string>& toks,
                          std::size_t idx, const char* key,
                          const std::string& path) {
  if (idx >= toks.size()) {
    throw SimError(std::string("checkpoint manifest field '") + key +
                   "' malformed: " + path);
  }
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(toks[idx], &used, 10);
    if (used != toks[idx].size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw SimError(std::string("checkpoint manifest field '") + key +
                   "' is not a number: " + path);
  }
}

std::uint64_t expectKeyedU64(std::istream& is, const char* key,
                             const std::string& path) {
  const auto toks = manifestLine(is, path);
  if (toks.size() != 2 || toks[0] != key) {
    throw SimError(std::string("checkpoint manifest expected '") + key +
                   "' line: " + path);
  }
  return manifestU64(toks, 1, key, path);
}

}  // namespace

CheckpointManifest readManifest(const std::string& dir) {
  const std::string path = dir + "/MANIFEST";
  std::ifstream is(path);
  if (!is) {
    throw SimError("cannot open checkpoint manifest: " + path);
  }
  std::string header;
  if (!std::getline(is, header) || header != "lcdc-mc-checkpoint v1") {
    throw SimError("checkpoint manifest has wrong header (want "
                   "'lcdc-mc-checkpoint v1'): " +
                   path);
  }
  CheckpointManifest m;
  {
    const auto toks = manifestLine(is, path);
    if (toks.size() != 2 || toks[0] != "config") {
      throw SimError("checkpoint manifest expected 'config' line: " + path);
    }
    try {
      std::size_t used = 0;
      m.configDigest = std::stoull(toks[1], &used, 16);
      if (used != toks[1].size()) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      throw SimError("checkpoint manifest config digest malformed: " + path);
    }
  }
  {
    const auto toks = manifestLine(is, path);
    if (toks.size() != 2 || toks[0] != "visited" ||
        (toks[1] != "exact" && toks[1] != "compact" &&
         toks[1] != "bitstate")) {
      throw SimError("checkpoint manifest expected 'visited' line: " + path);
    }
    m.visitedMode = toks[1];
  }
  m.wavesCompleted = expectKeyedU64(is, "waves", path);
  m.statesExplored = expectKeyedU64(is, "states", path);
  m.transitions = expectKeyedU64(is, "transitions", path);
  m.frontierPeak = expectKeyedU64(is, "frontierPeak", path);
  m.ampleStates = expectKeyedU64(is, "ample", path);
  m.nextId = expectKeyedU64(is, "nextId", path);
  m.txnNext = expectKeyedU64(is, "txnNext", path);
  m.encodeCalls = expectKeyedU64(is, "encodeCalls", path);
  m.insertCalls = expectKeyedU64(is, "insertCalls", path);
  m.storedStates = expectKeyedU64(is, "storedStates", path);
  m.storedEncodingBytes = expectKeyedU64(is, "storedEncodingBytes", path);
  {
    const auto toks = manifestLine(is, path);
    if (toks.size() != 1 + m.probeHist.size() || toks[0] != "probeHist") {
      throw SimError("checkpoint manifest expected 'probeHist' line: " + path);
    }
    for (std::size_t i = 0; i < m.probeHist.size(); ++i) {
      m.probeHist[i] = manifestU64(toks, i + 1, "probeHist", path);
    }
  }
  {
    const auto toks = manifestLine(is, path);
    if (toks.size() != 3 || toks[0] != "visitedLog") {
      throw SimError("checkpoint manifest expected 'visitedLog' line: " + path);
    }
    m.visitedLogBytes = manifestU64(toks, 1, "visitedLog", path);
    m.visitedLogRecords = manifestU64(toks, 2, "visitedLog", path);
  }
  {
    const auto toks = manifestLine(is, path);
    if (toks.size() != 3 || toks[0] != "bitstate") {
      throw SimError("checkpoint manifest expected 'bitstate' line: " + path);
    }
    m.bitstateWords = manifestU64(toks, 1, "bitstate", path);
    m.bitstateHashes =
        static_cast<std::uint32_t>(manifestU64(toks, 2, "bitstate", path));
  }
  const std::uint64_t nSegs = expectKeyedU64(is, "segments", path);
  for (std::uint64_t i = 0; i < nSegs; ++i) {
    const auto toks = manifestLine(is, path);
    if (toks.size() != 5 || toks[0] != "seg") {
      throw SimError("checkpoint manifest expected 'seg' line: " + path);
    }
    if (toks[1].find('/') != std::string::npos || toks[1] == ".." ||
        toks[1].empty()) {
      throw SimError("checkpoint manifest segment name malformed: " + path);
    }
    SegmentInfo s;
    s.path = dir + "/" + toks[1];
    s.records = manifestU64(toks, 2, "seg", path);
    s.flightSum = manifestU64(toks, 3, "seg", path);
    s.payloadBytes = manifestU64(toks, 4, "seg", path);
    m.frontier.push_back(std::move(s));
  }
  {
    const auto toks = manifestLine(is, path);
    if (toks.size() != 1 || toks[0] != "end") {
      throw SimError("checkpoint manifest missing 'end' marker: " + path);
    }
  }
  return m;
}

}  // namespace lcdc::mc
