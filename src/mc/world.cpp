#include "mc/world.hpp"

#include <algorithm>
#include <numeric>

namespace lcdc::mc {

namespace {

class NullClient final : public proto::CacheClient {
 public:
  void onComplete(BlockId, ReqType) override {}
  void onNacked(BlockId, ReqType, NackKind) override {}
  void onLineUnblocked(BlockId) override {}
};

}  // namespace

proto::CacheClient& nullCacheClient() {
  static NullClient c;
  return c;
}

World makeInitialWorld(const McConfig& cfg, proto::TxnCounter& txns) {
  World w;
  w.dirs.emplace_back(cfg.numProcessors, cfg.proto, proto::nullSink(), txns);
  for (BlockId b = 0; b < cfg.numBlocks; ++b) {
    w.dirs[0].addBlock(b, BlockValue(cfg.proto.wordsPerBlock, 0));
  }
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    w.caches.emplace_back(p, cfg.proto, proto::nullSink(), nullCacheClient());
  }
  return w;
}

std::vector<std::vector<NodeId>> makeNodePermutations(NodeId procs,
                                                      bool symmetry) {
  std::vector<NodeId> ident(procs);
  std::iota(ident.begin(), ident.end(), NodeId{0});
  if (!symmetry || procs > 6) return {ident};
  std::vector<std::vector<NodeId>> out;
  std::vector<NodeId> perm = ident;
  do {
    out.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return out;
}

}  // namespace lcdc::mc
