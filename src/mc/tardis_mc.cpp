#include "mc/tardis_mc.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <sstream>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "common/expect.hpp"

namespace lcdc::mc {

namespace {

// Timestamps in the abstract model.  Values are rebased against the
// state's minimum before hashing, so only relative order and gaps up to
// the lease length survive into the visited set.
using Ts = std::uint64_t;

enum class HState : std::uint8_t { Idle, Shared, Exclusive, Busy };
enum class LState : std::uint8_t { I, S, X };

enum class MType : std::uint8_t {
  GetS,       // proc -> home (also models Renew: identical home transition)
  GetX,       // proc -> home
  DataS,      // home -> proc   ts = grantTs, ts2 = leaseEnd
  DataX,      // home -> proc   ts = grantTs
  Nack,       // home -> proc
  FlushReq,   // home -> owner  ts = the owner's grant ts (names the epoch)
  FlushData,  // owner -> home  ts = flushTs, ts2 = grant ts it closes
  Wb,         // owner -> home  ts = flushTs, ts2 = grant ts it closes
  WbAck,      // home -> proc
};

struct TMsg {
  MType type{};
  NodeId node = 0;  ///< the processor end of the hop (requester / owner)
  BlockId block = 0;
  Ts ts = 0;
  Ts ts2 = 0;

  friend bool operator<(const TMsg& a, const TMsg& b) {
    return std::tie(a.type, a.node, a.block, a.ts, a.ts2) <
           std::tie(b.type, b.node, b.block, b.ts, b.ts2);
  }
};

struct TLine {
  LState st = LState::I;
  Ts leaseEnd = 0;  ///< valid when st == S
  Ts grantTs = 0;   ///< valid when st == X (floor of the flush timestamp)
  Ts wbTs = 0;      ///< recorded flush timestamp while a Writeback is unacked
  Ts wbGrantTs = 0;  ///< the evicted epoch's grant ts (names what the Wb closes)
};

struct TProc {
  Ts pts = 0;  ///< last global time this processor bound an operation at
  bool waiting = false;
  BlockId waitBlock = 0;  ///< valid while waiting
  /// Nonzero: a FlushReq that overtook its own DataExclusive, parked
  /// keyed by the grant ts it names (grant timestamps start at 1).
  Ts deferTs = 0;
  std::uint32_t wbPending = 0;  ///< per-block Writeback-in-flight bitmask
  std::vector<TLine> lines;
};

struct THome {
  HState st = HState::Idle;
  NodeId owner = kNoNode;
  Ts ownerTs = 0;  ///< Exclusive/Busy: the owner's grant timestamp
  std::uint32_t sharers = 0;  ///< per-processor bitmask
  Ts rts = 0;                 ///< lease frontier
  Ts hc = 0;                  ///< entry clock
  NodeId pendReq = kNoNode;   ///< Busy: the single pending requester
  bool pendX = false;
  Ts pendTs = 0;
};

struct TWorld {
  std::vector<TProc> procs;
  std::vector<THome> homes;
  std::vector<TMsg> flight;
  std::uint32_t depth = 0;
};

/// Canonical byte key: every timestamp rebased by the state minimum, the
/// in-flight multiset sorted.  Two states that differ only by a uniform
/// shift of logical time behave identically and collapse to one key.
std::string encode(const TWorld& w) {
  Ts base = std::numeric_limits<Ts>::max();
  const auto see = [&base](Ts t) { base = std::min(base, t); };
  for (const TProc& p : w.procs) {
    see(p.pts);
    if (p.deferTs != 0) see(p.deferTs);
    for (BlockId b = 0; b < p.lines.size(); ++b) {
      const TLine& l = p.lines[b];
      if (l.st == LState::S) see(l.leaseEnd);
      if (l.st == LState::X) see(l.grantTs);
      if ((p.wbPending >> b) & 1u) see(l.wbGrantTs);
    }
  }
  for (const THome& h : w.homes) {
    see(h.rts);
    see(h.hc);
    if (h.st == HState::Busy) see(h.pendTs);
    if (h.st == HState::Busy || h.st == HState::Exclusive) see(h.ownerTs);
  }
  for (const TMsg& m : w.flight) {
    see(m.ts);
    if (m.type == MType::DataS || m.type == MType::FlushData ||
        m.type == MType::Wb) {
      see(m.ts2);
    }
  }
  if (base == std::numeric_limits<Ts>::max()) base = 0;

  std::string out;
  out.reserve(w.procs.size() * (8 + w.homes.size() * 16) +
              w.homes.size() * 24 + w.flight.size() * 12);
  const auto put8 = [&out](std::uint8_t v) {
    out.push_back(static_cast<char>(v));
  };
  const auto putTs = [&out](Ts v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>(v & 0xFF));
      v >>= 8;
    }
  };
  for (const TProc& p : w.procs) {
    putTs(p.pts - base);
    put8(p.waiting ? 1 : 0);
    put8(p.waiting ? static_cast<std::uint8_t>(p.waitBlock) : 0xFF);
    put8(p.deferTs != 0 ? 1 : 0);
    putTs(p.deferTs != 0 ? p.deferTs - base : 0);
    for (BlockId b = 0; b < p.lines.size(); ++b) {
      const TLine& l = p.lines[b];
      put8(static_cast<std::uint8_t>(l.st));
      putTs(l.st == LState::S ? l.leaseEnd - base : 0);
      putTs(l.st == LState::X ? l.grantTs - base : 0);
      const bool wb = (p.wbPending >> b) & 1u;
      put8(wb ? 1 : 0);
      putTs(wb ? l.wbTs - base : 0);
      putTs(wb ? l.wbGrantTs - base : 0);
    }
  }
  for (const THome& h : w.homes) {
    put8(static_cast<std::uint8_t>(h.st));
    put8(static_cast<std::uint8_t>(h.owner == kNoNode ? 0xFF : h.owner));
    putTs(h.st == HState::Busy || h.st == HState::Exclusive ? h.ownerTs - base
                                                            : 0);
    putTs(h.rts - base);
    putTs(h.hc - base);
    for (int i = 0; i < 4; ++i) {
      put8(static_cast<std::uint8_t>((h.sharers >> (8 * i)) & 0xFF));
    }
    if (h.st == HState::Busy) {
      put8(static_cast<std::uint8_t>(h.pendReq));
      put8(h.pendX ? 1 : 0);
      putTs(h.pendTs - base);
    }
  }
  std::vector<TMsg> sorted = w.flight;
  std::sort(sorted.begin(), sorted.end());
  for (const TMsg& m : sorted) {
    put8(static_cast<std::uint8_t>(m.type));
    put8(static_cast<std::uint8_t>(m.node));
    put8(static_cast<std::uint8_t>(m.block));
    putTs(m.ts - base);
    const bool hasTs2 = m.type == MType::DataS || m.type == MType::FlushData ||
                        m.type == MType::Wb;
    putTs((hasTs2 ? m.ts2 : base) - base);
  }
  return out;
}

class TardisExplorer {
 public:
  explicit TardisExplorer(const McConfig& cfg) : cfg_(cfg) {
    LCDC_EXPECT(cfg_.numProcessors >= 1 && cfg_.numProcessors <= 32,
                "tardis MC supports 1..32 processors");
    LCDC_EXPECT(cfg_.numBlocks >= 1 && cfg_.numBlocks <= 32,
                "tardis MC supports 1..32 blocks");
    if (cfg_.proto.mutant != Mutant::None &&
        cfg_.proto.mutant != Mutant::DropLeaseBump) {
      throw SimError(std::string("mutant '") + toString(cfg_.proto.mutant) +
                     "' targets the directory protocol; the tardis backend "
                     "only implements 'drop-lease-bump'");
    }
    lease_ = cfg_.proto.leaseLength == 0 ? 1 : cfg_.proto.leaseLength;
  }

  McResult run() {
    TWorld init;
    init.procs.resize(cfg_.numProcessors);
    for (TProc& p : init.procs) p.lines.resize(cfg_.numBlocks);
    init.homes.resize(cfg_.numBlocks);

    std::deque<TWorld> frontier;
    visit(init);
    frontier.push_back(std::move(init));
    res_.frontierPeak = 1;

    std::uint32_t waveDepth = 0;
    while (!frontier.empty() && !stop_) {
      const TWorld w = std::move(frontier.front());
      frontier.pop_front();
      if (w.depth > waveDepth) {
        waveDepth = w.depth;
        res_.wavesCompleted = waveDepth;
        if (cfg_.maxDepth != 0 && waveDepth >= cfg_.maxDepth) break;
      }
      expand(w, frontier);
      res_.frontierPeak = std::max<std::uint64_t>(res_.frontierPeak,
                                                  frontier.size());
      if (cfg_.memLimitMb != 0 &&
          visitedBytes_ > cfg_.memLimitMb * 1024ull * 1024ull) {
        res_.memLimitHit = true;
        break;
      }
    }
    res_.statesExplored = visited_.size();
    res_.visitedBytes = visitedBytes_;
    return res_;
  }

 private:
  void visit(const TWorld& w) {
    const std::string key = encode(w);
    visitedBytes_ += key.size() + 32;
    visited_.insert(key);
  }

  bool seen(const TWorld& w) { return visited_.count(encode(w)) != 0; }

  void violation(const std::string& detail) {
    if (std::find(res_.violations.begin(), res_.violations.end(), detail) ==
        res_.violations.end()) {
      if (res_.violations.size() < cfg_.maxViolations) {
        res_.violations.push_back(detail);
      }
    }
    if (!res_.counterexample) {
      Counterexample cx;
      cx.kind = "violation";
      cx.detail = detail;  // no schedule: tardis counterexamples are not
                           // replayable through the directory simulator
      res_.counterexample = std::move(cx);
    }
    stop_ = true;
  }

  /// Enqueue a successor (unless already visited), after the per-state
  /// structural checks.
  void emit(TWorld&& w, std::deque<TWorld>& frontier) {
    res_.transitions += 1;
    checkState(w);
    if (stop_) return;
    if (seen(w)) return;
    if (visited_.size() >= cfg_.maxStates) {
      res_.hitStateLimit = true;
      stop_ = true;
      return;
    }
    visit(w);
    frontier.push_back(std::move(w));
  }

  void checkState(const TWorld& w) {
    for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
      NodeId writer = kNoNode;
      for (NodeId p = 0; p < cfg_.numProcessors; ++p) {
        const TLine& l = w.procs[p].lines[b];
        if (l.st == LState::X) {
          if (writer != kNoNode) {
            std::ostringstream os;
            os << "two exclusive owners on block " << b << ": nodes " << writer
               << " and " << p;
            violation(os.str());
            return;
          }
          writer = p;
        }
        if (l.st == LState::S && l.leaseEnd > w.homes[b].rts) {
          std::ostringstream os;
          os << "node " << p << " holds a lease on block " << b
             << " beyond the home frontier (leaseEnd=" << l.leaseEnd
             << " rts=" << w.homes[b].rts << ")";
          violation(os.str());
          return;
        }
      }
    }
  }

  void expand(const TWorld& w, std::deque<TWorld>& frontier) {
    bool any = false;

    // (a) deliver any in-flight message — the unordered network.
    for (std::size_t i = 0; i < w.flight.size() && !stop_; ++i) {
      TWorld next = w;
      next.depth = w.depth + 1;
      const TMsg m = next.flight[i];
      next.flight.erase(next.flight.begin() +
                        static_cast<std::ptrdiff_t>(i));
      deliver(next, m);
      if (stop_) return;
      emit(std::move(next), frontier);
      any = true;
    }

    // (b) processor-initiated actions.
    for (NodeId p = 0; p < cfg_.numProcessors && !stop_; ++p) {
      const TProc& proc = w.procs[p];
      for (BlockId b = 0; b < cfg_.numBlocks && !stop_; ++b) {
        const TLine& line = proc.lines[b];
        const bool wbPending = (proc.wbPending >> b) & 1u;
        if (!proc.waiting && !wbPending && line.st != LState::X) {
          // GetS covers Renew: the home transition is identical, and
          // issuing from S models a lease that expired in logical time.
          for (const MType t : {MType::GetS, MType::GetX}) {
            TWorld next = w;
            next.depth = w.depth + 1;
            next.procs[p].waiting = true;
            next.procs[p].waitBlock = b;
            next.flight.push_back(TMsg{t, p, b, w.procs[p].pts, 0});
            emit(std::move(next), frontier);
            any = true;
            if (stop_) return;
          }
        }
        if (cfg_.allowEvictions && line.st == LState::X) {
          TWorld next = w;
          next.depth = w.depth + 1;
          TLine& l = next.procs[p].lines[b];
          const Ts flushTs = std::max(l.grantTs, next.procs[p].pts);
          const Ts grantTs = l.grantTs;
          l = TLine{};
          l.wbTs = flushTs;
          l.wbGrantTs = grantTs;
          next.procs[p].wbPending |= 1u << b;
          next.flight.push_back(TMsg{MType::Wb, p, b, flushTs, grantTs});
          emit(std::move(next), frontier);
          any = true;
          if (stop_) return;
        }
        if (cfg_.allowEvictions && line.st == LState::S) {
          TWorld next = w;  // Put-Shared: drop the lease locally, silently
          next.depth = w.depth + 1;
          next.procs[p].lines[b] = TLine{};
          emit(std::move(next), frontier);
          any = true;
          if (stop_) return;
        }
      }
    }

    if (!any && w.flight.empty()) {
      bool obligated = false;
      for (const TProc& p : w.procs) {
        if (p.waiting || p.wbPending != 0) obligated = true;
      }
      for (const THome& h : w.homes) {
        if (h.st == HState::Busy) obligated = true;
      }
      if (obligated) {
        res_.deadlockFound = true;
        if (!res_.counterexample) {
          Counterexample cx;
          cx.kind = "deadlock";
          cx.detail =
              "no message in flight, yet a request, writeback or busy home "
              "is outstanding";
          res_.counterexample = std::move(cx);
        }
        stop_ = true;
      }
    }
  }

  // -- transition rules, mirroring tardis::TardisSystem ----------------------

  void deliver(TWorld& w, const TMsg& m) {
    switch (m.type) {
      case MType::GetS:
      case MType::GetX:
        homeRequest(w, m, m.type == MType::GetX);
        return;
      case MType::Wb:
        homeWriteback(w, m);
        return;
      case MType::FlushData:
        homeFlushData(w, m);
        return;
      case MType::DataS: {
        TProc& p = w.procs[m.node];
        TLine& l = p.lines[m.block];
        l = TLine{};
        l.st = LState::S;
        l.leaseEnd = m.ts2;
        p.pts = std::max(p.pts, m.ts);  // the proc binds at the grant time
        p.waiting = false;
        p.deferTs = 0;  // a parked FlushReq named an exclusive grant: stale
        return;
      }
      case MType::DataX: {
        TProc& p = w.procs[m.node];
        TLine& l = p.lines[m.block];
        if (p.deferTs != 0 && p.deferTs == m.ts) {
          // The FlushReq that overtook this very grant: hand the block
          // straight back (no operation bound, so flushTs = grant ts).
          p.deferTs = 0;
          p.waiting = false;
          l = TLine{};
          w.flight.push_back(TMsg{MType::FlushData, m.node, m.block, m.ts,
                                  m.ts});
          return;
        }
        p.deferTs = 0;  // mismatch: stale flush from a previous ownership
        l = TLine{};
        l.st = LState::X;
        l.grantTs = m.ts;
        p.pts = std::max(p.pts, m.ts);
        p.waiting = false;
        return;
      }
      case MType::Nack: {
        TProc& p = w.procs[m.node];
        p.waiting = false;
        p.deferTs = 0;  // a parked FlushReq's grant will never arrive: stale
        return;
      }
      case MType::FlushReq: {
        TProc& p = w.procs[m.node];
        TLine& l = p.lines[m.block];
        // The grant-ts match is load-bearing: a stale FlushReq (its Busy
        // epoch already completed through our Writeback) can arrive after
        // we re-acquired the block, and answering it would flush the NEW
        // line while the home still records us as its owner.
        if (l.st == LState::X && l.grantTs == m.ts) {
          const Ts flushTs = std::max(l.grantTs, p.pts);
          const Ts grantTs = l.grantTs;
          l = TLine{};
          w.flight.push_back(TMsg{MType::FlushData, m.node, m.block, flushTs,
                                  grantTs});
        } else if ((p.wbPending >> m.block) & 1u) {
          // The eviction raced the flush: re-supply the written-back copy.
          w.flight.push_back(TMsg{MType::FlushData, m.node, m.block, l.wbTs,
                                  l.wbGrantTs});
        } else if (p.waiting && p.waitBlock == m.block) {
          // The FlushReq raced past its own DataExclusive: park it keyed
          // by the grant ts it names; the grant's arrival answers it.
          p.deferTs = m.ts;
        }
        // else: the home was already satisfied through our Writeback; drop.
        return;
      }
      case MType::WbAck: {
        TProc& p = w.procs[m.node];
        p.wbPending &= ~(1u << m.block);
        p.lines[m.block].wbTs = 0;
        p.lines[m.block].wbGrantTs = 0;
        return;
      }
    }
  }

  void homeRequest(TWorld& w, const TMsg& m, bool isGetX) {
    THome& h = w.homes[m.block];
    switch (h.st) {
      case HState::Busy:
        w.flight.push_back(TMsg{MType::Nack, m.node, m.block, 0, 0});
        return;
      case HState::Exclusive:
        if (h.owner == m.node) {
          std::ostringstream os;
          os << "owner " << m.node << " re-requesting block " << m.block
             << " while the home still records it exclusive";
          violation(os.str());
          return;
        }
        h.st = HState::Busy;
        h.pendReq = m.node;
        h.pendX = isGetX;
        h.pendTs = m.ts;
        w.flight.push_back(TMsg{MType::FlushReq, h.owner, m.block, h.ownerTs,
                                0});
        return;
      case HState::Idle:
      case HState::Shared:
        if (isGetX) {
          grantExclusive(w, h, m.block, m.node, m.ts);
        } else {
          grantShared(w, h, m.block, m.node, m.ts);
        }
        return;
    }
  }

  void grantShared(TWorld& w, THome& h, BlockId b, NodeId r, Ts reqTs) {
    const Ts u = 1 + std::max(h.hc, reqTs);
    h.hc = std::max(h.hc, u);  // the stamps at u raise the entry clock
    extendLease(h, u);
    h.sharers |= 1u << r;
    h.st = HState::Shared;
    w.flight.push_back(TMsg{MType::DataS, r, b, u, h.rts});
  }

  void grantExclusive(TWorld& w, THome& h, BlockId b, NodeId r, Ts reqTs) {
    const Ts u = 1 + std::max(h.hc, reqTs);
    // The invariant the lease bump exists for: the exclusive grant must
    // land strictly above every lease the home ever handed out, so the
    // leased readers' implicit S -> I downgrades (stamped at rts + 1) stay
    // above the writer's upgrade.  Claim 3(a) / Lemma 1 hang off this.
    if (u <= h.rts) {
      std::ostringstream os;
      os << "exclusive grant below the lease frontier on block " << b
         << ": grant ts " << u << " <= rts " << h.rts << " (requester " << r
         << ") — outstanding read leases overlap the new writer's epoch";
      violation(os.str());
      return;
    }
    if ((h.sharers & ~(1u << r)) != 0) h.hc = std::max(h.hc, h.rts + 1);
    h.hc = std::max(h.hc, u);
    h.sharers = 0;
    h.st = HState::Exclusive;
    h.owner = r;
    h.ownerTs = u;
    w.flight.push_back(TMsg{MType::DataX, r, b, u, 0});
  }

  void homeWriteback(TWorld& w, const TMsg& m) {
    THome& h = w.homes[m.block];
    // The epoch match (ts2 == ownerTs) is load-bearing: a stale flush from
    // an earlier ownership of the SAME node can linger in flight and must
    // not close an epoch it does not name (completing a later Busy period
    // early would hand out a second exclusive copy).
    if (h.st == HState::Exclusive && h.owner == m.node &&
        m.ts2 == h.ownerTs) {
      const Ts tsD = 1 + std::max(h.hc, m.ts);
      h.hc = std::max(h.hc, tsD);
      h.st = HState::Idle;
      h.owner = kNoNode;
      h.ownerTs = 0;
    } else if (h.st == HState::Busy && h.owner == m.node &&
               m.ts2 == h.ownerTs) {
      // The owner's eviction raced our FlushReq; its written-back copy is
      // the flush data.
      completeBusy(w, h, m.block, m.ts);
    }
    // else: stale (the flush already completed the handoff); just ack.
    w.flight.push_back(TMsg{MType::WbAck, m.node, m.block, 0, 0});
  }

  void homeFlushData(TWorld& w, const TMsg& m) {
    THome& h = w.homes[m.block];
    if (h.st == HState::Busy && h.owner == m.node && m.ts2 == h.ownerTs) {
      completeBusy(w, h, m.block, m.ts);
    }
    // else: stale — the racing Writeback got there first, or the flush
    // names an earlier ownership epoch of the same node; drop.
  }

  void completeBusy(TWorld& w, THome& h, BlockId b, Ts flushTs) {
    const NodeId r = h.pendReq;
    const Ts tsD = 1 + std::max(h.hc, flushTs);
    h.hc = std::max(h.hc, tsD);
    const Ts u = 1 + std::max(h.hc, h.pendTs);
    h.pendReq = kNoNode;
    h.pendTs = 0;
    if (h.pendX) {
      if (u <= h.rts) {
        std::ostringstream os;
        os << "exclusive grant below the lease frontier on block " << b
           << ": grant ts " << u << " <= rts " << h.rts << " (requester " << r
           << ", after owner flush) — outstanding read leases overlap the "
              "new writer's epoch";
        violation(os.str());
        return;
      }
      h.hc = std::max(h.hc, u);
      h.st = HState::Exclusive;
      h.owner = r;
      h.ownerTs = u;
      w.flight.push_back(TMsg{MType::DataX, r, b, u, 0});
    } else {
      h.hc = std::max(h.hc, u);
      extendLease(h, u);
      h.sharers = 1u << r;
      h.st = HState::Shared;
      h.owner = kNoNode;
      h.ownerTs = 0;
      w.flight.push_back(TMsg{MType::DataS, r, b, u, h.rts});
    }
  }

  void extendLease(THome& h, Ts u) {
    h.rts = std::max(h.rts, u + lease_);
    // The bump: the entry clock must clear the frontier so the next
    // exclusive grant is stamped above every outstanding lease.
    if (cfg_.proto.mutant != Mutant::DropLeaseBump) {
      h.hc = std::max(h.hc, h.rts);
    }
  }

  McConfig cfg_;
  Ts lease_ = 1;
  McResult res_;
  std::unordered_set<std::string> visited_;
  std::uint64_t visitedBytes_ = 0;
  bool stop_ = false;
};

}  // namespace

McResult exploreTardis(const McConfig& cfg) {
  TardisExplorer explorer(cfg);
  return explorer.run();
}

}  // namespace lcdc::mc
