// Lossless World <-> byte-blob serialization for the explorer's frontier.
//
// The canonical key (`StateCodec`) deliberately projects fields away —
// clocks, stamps, serials, raw txn ids, epoch bookkeeping — because the
// protocol's *reachable-state identity* does not depend on them.  Its
// *transitions* do, though: the cache branches on message stamps for the
// Section 2.5 deadlock detection, and the directory reuses `busyTxn.id`
// for transactions 13/14a.  So frontier states must be stored in full
// fidelity, and the canonical key must never be used to reconstruct one.
//
// Before this codec the frontier held live `World` values: per state,
// two controller vectors of hash maps, message vectors, stamp vectors —
// roughly 1.5-2 KB across ~15 heap allocations.  A varint blob is
// ~150-300 B in one arena allocation, which is where most of the
// resident-memory reduction comes from (EXPERIMENTS.md S12).
//
// Controller statistics are not serialized (nothing in the checker reads
// them); a loaded world restarts its stats at zero.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mc/world.hpp"

namespace lcdc::mc {

class WorldCodec {
 public:
  WorldCodec(const McConfig& cfg, proto::TxnCounter& txns)
      : cfg_(cfg), txns_(&txns) {}

  /// Serialize `w` into `out` (replaced, not appended).
  void save(const World& w, std::vector<std::byte>& out) const;

  /// Rebuild a full-fidelity World from a saved blob.  The world's
  /// controllers alias the codec's shared transaction counter.
  [[nodiscard]] World load(const std::byte* data, std::size_t len) const;

 private:
  const McConfig& cfg_;
  proto::TxnCounter* txns_;
};

}  // namespace lcdc::mc
