// Lamport-clock utilities shared by the simulator and the verifier.
//
// Transaction stamping lives inside the protocol controllers (it must ride
// on the protocol's own messages); this module holds the two pieces that do
// not: the per-processor *operation* stamping rule of Section 3.2 and the
// coherence-epoch abstraction of Section 3.3.
#pragma once

#include <cstdint>
#include <vector>

#include "common/timestamp.hpp"
#include "common/types.hpp"

namespace lcdc::clk {

/// Assigns full (global, local, pid) timestamps to a processor's LD/ST
/// stream, in program order:
///
///   global(OP) = max{ p_i's stamp of the transaction OP is bound to,
///                     global of the previous op in program order }
///   local(OP)  = 1 if OP is the first op with this global timestamp,
///                otherwise previous local + 1.
class OpStamper {
 public:
  explicit OpStamper(NodeId pid) : pid_(pid) {}

  [[nodiscard]] Timestamp stamp(GlobalTime boundTxnTs) {
    const GlobalTime g = boundTxnTs > lastGlobal_ ? boundTxnTs : lastGlobal_;
    const LocalTime l = (hasOp_ && g == lastGlobal_) ? lastLocal_ + 1 : 1;
    lastGlobal_ = g;
    lastLocal_ = l;
    hasOp_ = true;
    return Timestamp{g, l, pid_};
  }

  [[nodiscard]] GlobalTime lastGlobal() const { return lastGlobal_; }

  /// Return to the freshly constructed state (same pid).
  void reset() {
    lastGlobal_ = 0;
    lastLocal_ = 0;
    hasOp_ = false;
  }

 private:
  NodeId pid_;
  GlobalTime lastGlobal_ = 0;
  LocalTime lastLocal_ = 0;
  bool hasOp_ = false;
};

/// A coherence epoch (Section 3.3): an interval [start, end) of Lamport
/// time during which `node` holds `state` access to `block`.  `end` is
/// kOpenEpoch while the epoch has not (yet) been closed by a later
/// transaction.
inline constexpr GlobalTime kOpenEpoch = ~GlobalTime{0};

struct Epoch {
  NodeId node = kNoNode;
  BlockId block = 0;
  AState state = AState::I;
  GlobalTime start = 0;
  GlobalTime end = kOpenEpoch;
  /// Transaction that opened the epoch (what ops inside must be bound to).
  TransactionId txn = kNoTransaction;
  SerialIdx serial = 0;
};

}  // namespace lcdc::clk
