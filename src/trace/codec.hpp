// The shared binary codec: one varint (LEB128) vocabulary for every
// serialized protocol artifact — model-checker world blobs, archived
// binary traces, and the dsm wire format all encode proto::Message and
// the EventSink record types through these primitives, so there is
// exactly one byte-level definition of each (satellite of the `lcdc
// serve` subsystem; previously the varint machinery lived private to
// mc::WorldCodec).
//
// Encoding rules:
//   * integers are LEB128 varints (7 payload bits per byte, little-endian
//     groups, high bit = continuation);
//   * lists are a varint count followed by the elements;
//   * optionals are a 0/1 varint followed (when 1) by the value;
//   * struct fields are emitted in declaration order with no tags — the
//     format is versioned by its container (world blob, trace header,
//     wire HELLO), not per field.
//
// Readers throw SimError on truncated or malformed input; they never read
// past `len`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <variant>
#include <vector>

#include "common/config.hpp"
#include "proto/events.hpp"
#include "proto/messages.hpp"
#include "trace/trace.hpp"

namespace lcdc::trace {

namespace codec {

/// Append `v` to `out` as a LEB128 varint.
void putU64(std::vector<std::byte>& out, std::uint64_t v);

/// Bounded varint reader over a byte span.  Throws SimError("blob
/// truncated...") when a read would pass `len`.
struct Reader {
  const std::byte* data = nullptr;
  std::size_t len = 0;
  std::size_t pos = 0;

  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(u64()); }
  [[nodiscard]] std::uint8_t u8() { return static_cast<std::uint8_t>(u64()); }
  [[nodiscard]] bool b() { return u64() != 0; }
  [[nodiscard]] bool done() const { return pos == len; }
};

// -- container / protocol-type helpers ---------------------------------------

void putWords(std::vector<std::byte>& out, const BlockValue& v);
[[nodiscard]] BlockValue getWords(Reader& r);

void putNodes(std::vector<std::byte>& out, const proto::NodeList& v);
[[nodiscard]] proto::NodeList getNodes(Reader& r);

void putStamps(std::vector<std::byte>& out, const proto::StampList& v);
[[nodiscard]] proto::StampList getStamps(Reader& r);

/// Full proto::Message, every field in declaration order.
void putMessage(std::vector<std::byte>& out, const proto::Message& m);
[[nodiscard]] proto::Message getMessage(Reader& r);

/// SystemConfig (topology + protocol switches) — the dsm wire HELLO and
/// offline tools use this to agree on a run's shape.
void putConfig(std::vector<std::byte>& out, const SystemConfig& cfg);
[[nodiscard]] SystemConfig getConfig(Reader& r);

}  // namespace codec

// -- the uniform event record ------------------------------------------------

/// Kind-change record (EventSink::onTxnConverted).  The only protocol
/// event without a dedicated Trace record type; defined here so the
/// event stream can carry it uniformly.
struct ConvertRecord {
  TransactionId id = kNoTransaction;
  TxnKind newKind{};
  EventOrder order = 0;
};

/// One protocol event as a value: exactly the EventSink vocabulary.  The
/// dsm wire ships these from each node to the certifier; the binary trace
/// format archives them; applyEvent() replays them into any sink.
using EventRecord =
    std::variant<SerializeRecord, ConvertRecord, StampRecord, ValueRecord,
                 proto::OpRecord, NackRecord, PutSharedRecord, DeadlockRecord>;

namespace codec {

/// Tagged event encoding: a one-byte tag, then the record's fields.
void putEvent(std::vector<std::byte>& out, const EventRecord& e);
[[nodiscard]] EventRecord getEvent(Reader& r);

}  // namespace codec

/// Replay one event into a sink, dispatching on the record type.
void applyEvent(const EventRecord& e, proto::EventSink& sink);

// -- binary trace archival ---------------------------------------------------

/// Binary trace header: magic + format version.  loadFile() autodetects
/// this against the text format's 'H ' header.
inline constexpr unsigned char kBinaryTraceMagic[4] = {'L', 'C', 'T', 'B'};
inline constexpr std::uint64_t kBinaryTraceVersion = 1;

/// Write `t` in the binary format: magic, version, nextOrder, event count,
/// then every record through codec::putEvent (same vocabulary as the dsm
/// wire).  Round-trips exactly, orders included, like the text format.
void saveBinary(const Trace& t, std::ostream& os);

/// Read a trace written by saveBinary (the stream must start at the
/// magic).  Throws SimError on version or format mismatch.
[[nodiscard]] Trace loadBinary(std::istream& is);

}  // namespace lcdc::trace
