// Replay a recorded trace through any EventSink, in the original
// real-time observation order.
//
// Every Trace record carries the monotone `order` stamp the recorder
// assigned at observation time; merging the seven record vectors on that
// stamp reconstructs the exact event sequence the live run produced.
// This is what lets the batch checkers be thin adapters over the
// streaming cores (verify/stream.hpp): "check a trace" == "replay the
// trace into the streaming checker" — one implementation per property.
//
// Two deliberate differences from the live stream:
//   * onTxnConverted is never replayed — serialization records already
//     carry post-conversion kinds (the recorder rewrites them in place);
//   * the lifecycle hooks (onRunBegin/onRunEnd) are not fired — a trace
//     does not store its SystemConfig or RunResult; callers that need
//     them wrap the call.
#pragma once

#include "proto/events.hpp"
#include "trace/trace.hpp"

namespace lcdc::trace {

/// Feed every record of `trace` to `sink`, ordered by the records'
/// real-time `order` stamps (ties broken deterministically).
void replay(const Trace& trace, proto::EventSink& sink);

}  // namespace lcdc::trace
