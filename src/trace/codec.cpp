#include "trace/codec.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "common/expect.hpp"

namespace lcdc::trace {

namespace codec {

void putU64(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t Reader::u64() {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    // Malformed *input* (a corrupt blob, file or wire frame) is a runtime
    // condition, not a protocol invariant: throw SimError, which transport
    // layers treat as a fatal connection error.
    if (pos >= len) {
      throw SimError("blob truncated (varint runs past the end)");
    }
    const auto byte = std::to_integer<std::uint8_t>(data[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift >= 64) {
      throw SimError("blob malformed (varint wider than 64 bits)");
    }
  }
}

void putWords(std::vector<std::byte>& out, const BlockValue& v) {
  putU64(out, v.size());
  for (const Word w : v) putU64(out, w);
}

BlockValue getWords(Reader& r) {
  BlockValue v(r.u64());
  for (Word& w : v) w = r.u64();
  return v;
}

void putNodes(std::vector<std::byte>& out, const proto::NodeList& v) {
  putU64(out, v.size());
  for (const NodeId n : v) putU64(out, n);
}

proto::NodeList getNodes(Reader& r) {
  proto::NodeList v(r.u64());
  for (NodeId& n : v) n = r.u32();
  return v;
}

void putStamps(std::vector<std::byte>& out, const proto::StampList& v) {
  putU64(out, v.size());
  for (const proto::TsStamp& s : v) {
    putU64(out, s.node);
    putU64(out, s.ts);
  }
}

proto::StampList getStamps(Reader& r) {
  proto::StampList v(r.u64());
  for (proto::TsStamp& s : v) {
    s.node = r.u32();
    s.ts = r.u64();
  }
  return v;
}

void putMessage(std::vector<std::byte>& out, const proto::Message& m) {
  putU64(out, static_cast<std::uint8_t>(m.type));
  putU64(out, m.block);
  putU64(out, m.src);
  putU64(out, m.requester);
  putU64(out, m.txn);
  putU64(out, m.serial);
  putWords(out, m.data);
  putNodes(out, m.invTargets);
  putU64(out, m.ignoreBufferedInv ? 1 : 0);
  putU64(out, m.closesTxn);
  putU64(out, m.closesSerial);
  putU64(out, static_cast<std::uint8_t>(m.nackKind));
  putU64(out, static_cast<std::uint8_t>(m.nackedReq));
  putStamps(out, m.stamps);
}

proto::Message getMessage(Reader& r) {
  proto::Message m;
  m.type = static_cast<proto::MsgType>(r.u8());
  m.block = r.u32();
  m.src = r.u32();
  m.requester = r.u32();
  m.txn = r.u64();
  m.serial = r.u64();
  m.data = getWords(r);
  m.invTargets = getNodes(r);
  m.ignoreBufferedInv = r.b();
  m.closesTxn = r.u64();
  m.closesSerial = r.u64();
  m.nackKind = static_cast<NackKind>(r.u8());
  m.nackedReq = static_cast<ReqType>(r.u8());
  m.stamps = getStamps(r);
  return m;
}

void putConfig(std::vector<std::byte>& out, const SystemConfig& cfg) {
  putU64(out, cfg.proto.wordsPerBlock);
  putU64(out, cfg.proto.putSharedEnabled ? 1 : 0);
  putU64(out, static_cast<std::uint8_t>(cfg.proto.mutant));
  putU64(out, cfg.numProcessors);
  putU64(out, cfg.numDirectories);
  putU64(out, cfg.numBlocks);
  putU64(out, cfg.cacheCapacity);
  putU64(out, cfg.minLatency);
  putU64(out, cfg.maxLatency);
  putU64(out, cfg.retryDelay);
  putU64(out, cfg.seed);
  putU64(out, cfg.storeBufferDepth);
}

SystemConfig getConfig(Reader& r) {
  SystemConfig cfg;
  cfg.proto.wordsPerBlock = r.u32();
  cfg.proto.putSharedEnabled = r.b();
  cfg.proto.mutant = static_cast<Mutant>(r.u8());
  cfg.numProcessors = r.u32();
  cfg.numDirectories = r.u32();
  cfg.numBlocks = r.u32();
  cfg.cacheCapacity = r.u32();
  cfg.minLatency = r.u64();
  cfg.maxLatency = r.u64();
  cfg.retryDelay = r.u64();
  cfg.seed = r.u64();
  cfg.storeBufferDepth = r.u32();
  return cfg;
}

namespace {

// Event tags.  Append-only: decoders reject unknown tags, so new event
// kinds bump the containing format's version.
enum class EventTag : std::uint8_t {
  Serialize = 1,
  Convert = 2,
  Stamp = 3,
  Value = 4,
  Operation = 5,
  Nack = 6,
  PutShared = 7,
  Deadlock = 8,
};

void putTxnInfo(std::vector<std::byte>& out, const proto::TxnInfo& t) {
  putU64(out, t.id);
  putU64(out, t.serial);
  putU64(out, static_cast<std::uint8_t>(t.kind));
  putU64(out, t.block);
  putU64(out, t.requester);
}

proto::TxnInfo getTxnInfo(Reader& r) {
  proto::TxnInfo t;
  t.id = r.u64();
  t.serial = r.u64();
  t.kind = static_cast<TxnKind>(r.u8());
  t.block = r.u32();
  t.requester = r.u32();
  return t;
}

}  // namespace

void putEvent(std::vector<std::byte>& out, const EventRecord& e) {
  if (const auto* s = std::get_if<SerializeRecord>(&e)) {
    putU64(out, static_cast<std::uint8_t>(EventTag::Serialize));
    putTxnInfo(out, s->txn);
    putU64(out, s->order);
  } else if (const auto* c = std::get_if<ConvertRecord>(&e)) {
    putU64(out, static_cast<std::uint8_t>(EventTag::Convert));
    putU64(out, c->id);
    putU64(out, static_cast<std::uint8_t>(c->newKind));
    putU64(out, c->order);
  } else if (const auto* t = std::get_if<StampRecord>(&e)) {
    putU64(out, static_cast<std::uint8_t>(EventTag::Stamp));
    putU64(out, t->node);
    putU64(out, t->txn);
    putU64(out, t->serial);
    putU64(out, t->block);
    putU64(out, static_cast<std::uint8_t>(t->role));
    putU64(out, t->ts);
    putU64(out, static_cast<std::uint8_t>(t->oldA));
    putU64(out, static_cast<std::uint8_t>(t->newA));
    putU64(out, t->order);
  } else if (const auto* v = std::get_if<ValueRecord>(&e)) {
    putU64(out, static_cast<std::uint8_t>(EventTag::Value));
    putU64(out, v->node);
    putU64(out, v->txn);
    putU64(out, v->block);
    putWords(out, v->value);
    putU64(out, v->order);
  } else if (const auto* o = std::get_if<proto::OpRecord>(&e)) {
    putU64(out, static_cast<std::uint8_t>(EventTag::Operation));
    putU64(out, o->proc);
    putU64(out, o->progIdx);
    putU64(out, static_cast<std::uint8_t>(o->kind));
    putU64(out, o->block);
    putU64(out, o->word);
    putU64(out, o->value);
    putU64(out, o->boundTxn);
    putU64(out, o->boundSerial);
    putU64(out, o->ts.global);
    putU64(out, o->ts.local);
    putU64(out, o->ts.pid);
    putU64(out, o->forwarded ? 1 : 0);
    putU64(out, o->order);
  } else if (const auto* n = std::get_if<NackRecord>(&e)) {
    putU64(out, static_cast<std::uint8_t>(EventTag::Nack));
    putU64(out, n->requester);
    putU64(out, n->block);
    putU64(out, static_cast<std::uint8_t>(n->kind));
    putU64(out, n->order);
  } else if (const auto* p = std::get_if<PutSharedRecord>(&e)) {
    putU64(out, static_cast<std::uint8_t>(EventTag::PutShared));
    putU64(out, p->node);
    putU64(out, p->block);
    putU64(out, p->order);
  } else {
    const auto& d = std::get<DeadlockRecord>(e);
    putU64(out, static_cast<std::uint8_t>(EventTag::Deadlock));
    putU64(out, d.node);
    putU64(out, d.block);
    putU64(out, d.impliedAcker);
    putU64(out, d.order);
  }
}

EventRecord getEvent(Reader& r) {
  const auto tag = static_cast<EventTag>(r.u8());
  switch (tag) {
    case EventTag::Serialize: {
      SerializeRecord s;
      s.txn = getTxnInfo(r);
      s.order = r.u64();
      return s;
    }
    case EventTag::Convert: {
      ConvertRecord c;
      c.id = r.u64();
      c.newKind = static_cast<TxnKind>(r.u8());
      c.order = r.u64();
      return c;
    }
    case EventTag::Stamp: {
      StampRecord t;
      t.node = r.u32();
      t.txn = r.u64();
      t.serial = r.u64();
      t.block = r.u32();
      t.role = static_cast<proto::StampRole>(r.u8());
      t.ts = r.u64();
      t.oldA = static_cast<AState>(r.u8());
      t.newA = static_cast<AState>(r.u8());
      t.order = r.u64();
      return t;
    }
    case EventTag::Value: {
      ValueRecord v;
      v.node = r.u32();
      v.txn = r.u64();
      v.block = r.u32();
      v.value = getWords(r);
      v.order = r.u64();
      return v;
    }
    case EventTag::Operation: {
      proto::OpRecord o;
      o.proc = r.u32();
      o.progIdx = r.u64();
      o.kind = static_cast<OpKind>(r.u8());
      o.block = r.u32();
      o.word = r.u32();
      o.value = r.u64();
      o.boundTxn = r.u64();
      o.boundSerial = r.u64();
      o.ts.global = r.u64();
      o.ts.local = r.u64();
      o.ts.pid = r.u32();
      o.forwarded = r.b();
      o.order = r.u64();
      return o;
    }
    case EventTag::Nack: {
      NackRecord n;
      n.requester = r.u32();
      n.block = r.u32();
      n.kind = static_cast<NackKind>(r.u8());
      n.order = r.u64();
      return n;
    }
    case EventTag::PutShared: {
      PutSharedRecord p;
      p.node = r.u32();
      p.block = r.u32();
      p.order = r.u64();
      return p;
    }
    case EventTag::Deadlock: {
      DeadlockRecord d;
      d.node = r.u32();
      d.block = r.u32();
      d.impliedAcker = r.u32();
      d.order = r.u64();
      return d;
    }
  }
  throw SimError("unknown event tag " +
                 std::to_string(static_cast<unsigned>(tag)));
}

}  // namespace codec

void applyEvent(const EventRecord& e, proto::EventSink& sink) {
  if (const auto* s = std::get_if<SerializeRecord>(&e)) {
    sink.onSerialize(s->txn);
  } else if (const auto* c = std::get_if<ConvertRecord>(&e)) {
    sink.onTxnConverted(c->id, c->newKind);
  } else if (const auto* t = std::get_if<StampRecord>(&e)) {
    sink.onStamp(t->node, t->txn, t->serial, t->block, t->role, t->ts, t->oldA,
                 t->newA);
  } else if (const auto* v = std::get_if<ValueRecord>(&e)) {
    sink.onValueReceived(v->node, v->txn, v->block, v->value);
  } else if (const auto* o = std::get_if<proto::OpRecord>(&e)) {
    sink.onOperation(*o);
  } else if (const auto* n = std::get_if<NackRecord>(&e)) {
    sink.onNack(n->requester, n->block, n->kind);
  } else if (const auto* p = std::get_if<PutSharedRecord>(&e)) {
    sink.onPutShared(p->node, p->block);
  } else {
    const auto& d = std::get<DeadlockRecord>(e);
    sink.onDeadlockResolved(d.node, d.block, d.impliedAcker);
  }
}

void saveBinary(const Trace& t, std::ostream& os) {
  std::vector<std::byte> out;
  codec::putU64(out, kBinaryTraceVersion);
  // nextOrder mirrors the text header's 'H' line so empty/partial traces
  // round-trip exactly.
  EventOrder maxOrder = 0;
  const auto bump = [&maxOrder](EventOrder o) {
    if (o > maxOrder) maxOrder = o;
  };
  for (const auto& r : t.serializations()) bump(r.order);
  for (const auto& r : t.stamps()) bump(r.order);
  for (const auto& r : t.values()) bump(r.order);
  for (const auto& r : t.operations()) bump(r.order);
  for (const auto& r : t.nacks()) bump(r.order);
  for (const auto& r : t.putShareds()) bump(r.order);
  for (const auto& r : t.deadlockResolutions()) bump(r.order);
  codec::putU64(out, maxOrder + 1);

  const std::uint64_t count =
      t.serializations().size() + t.stamps().size() + t.values().size() +
      t.operations().size() + t.nacks().size() + t.putShareds().size() +
      t.deadlockResolutions().size();
  codec::putU64(out, count);
  // Same per-vector order as the text format (S, T, V, O, N, P, D).
  for (const auto& r : t.serializations()) codec::putEvent(out, r);
  for (const auto& r : t.stamps()) codec::putEvent(out, r);
  for (const auto& r : t.values()) codec::putEvent(out, r);
  for (const auto& r : t.operations()) codec::putEvent(out, r);
  for (const auto& r : t.nacks()) codec::putEvent(out, r);
  for (const auto& r : t.putShareds()) codec::putEvent(out, r);
  for (const auto& r : t.deadlockResolutions()) codec::putEvent(out, r);

  os.write(reinterpret_cast<const char*>(kBinaryTraceMagic),
           sizeof(kBinaryTraceMagic));
  os.write(reinterpret_cast<const char*>(out.data()),
           static_cast<std::streamsize>(out.size()));
  if (!os) throw SimError("binary trace save failed (stream error)");
}

Trace loadBinary(std::istream& is) {
  unsigned char magic[4] = {};
  is.read(reinterpret_cast<char*>(magic), sizeof(magic));
  if (is.gcount() != sizeof(magic) ||
      !std::equal(std::begin(magic), std::end(magic),
                  std::begin(kBinaryTraceMagic))) {
    throw SimError("not a binary trace (bad magic)");
  }
  std::vector<std::byte> bytes;
  {
    char chunk[4096];
    while (is.read(chunk, sizeof(chunk)) || is.gcount() > 0) {
      const auto n = static_cast<std::size_t>(is.gcount());
      const auto* p = reinterpret_cast<const std::byte*>(chunk);
      bytes.insert(bytes.end(), p, p + n);
      if (!is) break;
    }
  }
  codec::Reader r{bytes.data(), bytes.size()};
  const std::uint64_t version = r.u64();
  if (version != kBinaryTraceVersion) {
    throw SimError("unsupported binary trace version " +
                   std::to_string(version));
  }
  Trace t;
  t.nextOrder_ = r.u64();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const EventRecord e = codec::getEvent(r);
    if (const auto* s = std::get_if<SerializeRecord>(&e)) {
      t.txnIndex_[s->txn.id] = t.serializations_.size();
      t.serializations_.push_back(*s);
    } else if (const auto* c = std::get_if<ConvertRecord>(&e)) {
      // The recorder folds conversions into the serialization record, so
      // archived traces never contain standalone Convert events; apply it
      // the same way if one ever appears (forward compatibility).
      if (const auto it = t.txnIndex_.find(c->id); it != t.txnIndex_.end()) {
        t.serializations_[it->second].txn.kind = c->newKind;
      }
    } else if (const auto* st = std::get_if<StampRecord>(&e)) {
      t.stamps_.push_back(*st);
    } else if (const auto* v = std::get_if<ValueRecord>(&e)) {
      t.values_.push_back(*v);
    } else if (const auto* o = std::get_if<proto::OpRecord>(&e)) {
      t.operations_.push_back(*o);
    } else if (const auto* n = std::get_if<NackRecord>(&e)) {
      t.nacks_.push_back(*n);
    } else if (const auto* p = std::get_if<PutSharedRecord>(&e)) {
      t.putShareds_.push_back(*p);
    } else {
      t.deadlockResolutions_.push_back(std::get<DeadlockRecord>(e));
    }
  }
  if (!r.done()) throw SimError("binary trace has trailing bytes");
  return t;
}

}  // namespace lcdc::trace
