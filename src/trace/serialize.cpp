#include "trace/serialize.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/expect.hpp"
#include "trace/codec.hpp"

namespace lcdc::trace {

namespace {

[[noreturn]] void parseFail(std::size_t lineNo, const std::string& line) {
  throw SimError("trace parse error at line " + std::to_string(lineNo) +
                 ": '" + line + "'");
}

}  // namespace

void save(const Trace& t, std::ostream& os) {
  // nextOrder is derivable but we persist it so empty/partial traces
  // round-trip exactly.
  EventOrder maxOrder = 0;
  const auto bump = [&maxOrder](EventOrder o) {
    if (o > maxOrder) maxOrder = o;
  };
  for (const auto& r : t.serializations()) bump(r.order);
  for (const auto& r : t.stamps()) bump(r.order);
  for (const auto& r : t.values()) bump(r.order);
  for (const auto& r : t.operations()) bump(r.order);
  for (const auto& r : t.nacks()) bump(r.order);
  for (const auto& r : t.putShareds()) bump(r.order);
  for (const auto& r : t.deadlockResolutions()) bump(r.order);
  os << "H " << (maxOrder + 1) << '\n';

  for (const auto& r : t.serializations()) {
    os << "S " << r.txn.id << ' ' << r.txn.serial << ' '
       << static_cast<unsigned>(r.txn.kind) << ' ' << r.txn.block << ' '
       << r.txn.requester << ' ' << r.order << '\n';
  }
  for (const auto& r : t.stamps()) {
    os << "T " << r.node << ' ' << r.txn << ' ' << r.serial << ' ' << r.block
       << ' ' << static_cast<unsigned>(r.role) << ' ' << r.ts << ' '
       << static_cast<unsigned>(r.oldA) << ' '
       << static_cast<unsigned>(r.newA) << ' ' << r.order << '\n';
  }
  for (const auto& r : t.values()) {
    os << "V " << r.node << ' ' << r.txn << ' ' << r.block << ' ' << r.order;
    for (const Word w : r.value) os << ' ' << w;
    os << '\n';
  }
  for (const auto& r : t.operations()) {
    os << "O " << r.proc << ' ' << r.progIdx << ' '
       << static_cast<unsigned>(r.kind) << ' ' << r.block << ' ' << r.word
       << ' ' << r.value << ' ' << r.boundTxn << ' ' << r.boundSerial << ' '
       << r.ts.global << ' ' << r.ts.local << ' ' << r.ts.pid << ' '
       << (r.forwarded ? 1 : 0) << ' ' << r.order << '\n';
  }
  for (const auto& r : t.nacks()) {
    os << "N " << r.requester << ' ' << r.block << ' '
       << static_cast<unsigned>(r.kind) << ' ' << r.order << '\n';
  }
  for (const auto& r : t.putShareds()) {
    os << "P " << r.node << ' ' << r.block << ' ' << r.order << '\n';
  }
  for (const auto& r : t.deadlockResolutions()) {
    os << "D " << r.node << ' ' << r.block << ' ' << r.impliedAcker << ' '
       << r.order << '\n';
  }
  if (!os) throw SimError("trace save failed (stream error)");
}

Trace load(std::istream& is) {
  Trace t;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    switch (tag) {
      case 'H': {
        EventOrder next = 0;
        if (!(ls >> next)) parseFail(lineNo, line);
        t.nextOrder_ = next;
        break;
      }
      case 'S': {
        SerializeRecord r;
        unsigned kind = 0;
        if (!(ls >> r.txn.id >> r.txn.serial >> kind >> r.txn.block >>
              r.txn.requester >> r.order)) {
          parseFail(lineNo, line);
        }
        r.txn.kind = static_cast<TxnKind>(kind);
        t.txnIndex_[r.txn.id] = t.serializations_.size();
        t.serializations_.push_back(r);
        break;
      }
      case 'T': {
        StampRecord r;
        unsigned role = 0, oldA = 0, newA = 0;
        if (!(ls >> r.node >> r.txn >> r.serial >> r.block >> role >> r.ts >>
              oldA >> newA >> r.order)) {
          parseFail(lineNo, line);
        }
        r.role = static_cast<proto::StampRole>(role);
        r.oldA = static_cast<AState>(oldA);
        r.newA = static_cast<AState>(newA);
        t.stamps_.push_back(r);
        break;
      }
      case 'V': {
        ValueRecord r;
        if (!(ls >> r.node >> r.txn >> r.block >> r.order)) {
          parseFail(lineNo, line);
        }
        Word w = 0;
        while (ls >> w) r.value.push_back(w);
        t.values_.push_back(std::move(r));
        break;
      }
      case 'O': {
        proto::OpRecord r;
        unsigned kind = 0;
        unsigned forwarded = 0;
        if (!(ls >> r.proc >> r.progIdx >> kind >> r.block >> r.word >>
              r.value >> r.boundTxn >> r.boundSerial >> r.ts.global >>
              r.ts.local >> r.ts.pid >> forwarded >> r.order)) {
          parseFail(lineNo, line);
        }
        r.forwarded = forwarded != 0;
        r.kind = static_cast<OpKind>(kind);
        t.operations_.push_back(r);
        break;
      }
      case 'N': {
        NackRecord r;
        unsigned kind = 0;
        if (!(ls >> r.requester >> r.block >> kind >> r.order)) {
          parseFail(lineNo, line);
        }
        r.kind = static_cast<NackKind>(kind);
        t.nacks_.push_back(r);
        break;
      }
      case 'P': {
        PutSharedRecord r;
        if (!(ls >> r.node >> r.block >> r.order)) parseFail(lineNo, line);
        t.putShareds_.push_back(r);
        break;
      }
      case 'D': {
        DeadlockRecord r;
        if (!(ls >> r.node >> r.block >> r.impliedAcker >> r.order)) {
          parseFail(lineNo, line);
        }
        t.deadlockResolutions_.push_back(r);
        break;
      }
      default:
        parseFail(lineNo, line);
    }
  }
  return t;
}

void saveFile(const Trace& t, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw SimError("cannot open trace file for writing: " + path);
  save(t, os);
}

void saveFileWithMeta(const Trace& t, const std::string& path,
                      const std::vector<std::string>& metaLines) {
  std::ofstream os(path);
  if (!os) throw SimError("cannot open trace file for writing: " + path);
  for (const std::string& line : metaLines) {
    LCDC_EXPECT(line.find('\n') == std::string::npos,
                "metadata line contains a newline");
    os << "# " << line << '\n';
  }
  save(t, os);
}

void saveFileBinary(const Trace& t, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw SimError("cannot open trace file for writing: " + path);
  saveBinary(t, os);
}

Trace loadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SimError("cannot open trace file: " + path);
  // Autodetect: binary traces start with the codec magic, text traces
  // with a '#' comment or an 'H' header line.
  char probe[4] = {};
  is.read(probe, sizeof(probe));
  const bool binary =
      is.gcount() == sizeof(probe) &&
      std::equal(std::begin(probe), std::end(probe),
                 reinterpret_cast<const char*>(kBinaryTraceMagic));
  is.clear();
  is.seekg(0);
  return binary ? loadBinary(is) : load(is);
}

}  // namespace lcdc::trace
