#include "trace/trace.hpp"

namespace lcdc::trace {

void Trace::onSerialize(const proto::TxnInfo& txn) {
  txnIndex_[txn.id] = serializations_.size();
  serializations_.push_back(SerializeRecord{txn, nextOrder()});
}

void Trace::onTxnConverted(TransactionId id, TxnKind newKind) {
  const auto it = txnIndex_.find(id);
  if (it != txnIndex_.end()) {
    serializations_[it->second].txn.kind = newKind;
  }
}

void Trace::onStamp(NodeId node, TransactionId txn, SerialIdx serial,
                    BlockId block, proto::StampRole role, GlobalTime ts,
                    AState oldA, AState newA) {
  stamps_.push_back(
      StampRecord{node, txn, serial, block, role, ts, oldA, newA, nextOrder()});
}

void Trace::onValueReceived(NodeId node, TransactionId txn, BlockId block,
                            const BlockValue& value) {
  values_.push_back(ValueRecord{node, txn, block, value, nextOrder()});
}

void Trace::onOperation(const proto::OpRecord& op) {
  operations_.push_back(op);
  operations_.back().order = nextOrder();
}

void Trace::onNack(NodeId requester, BlockId block, NackKind kind) {
  nacks_.push_back(NackRecord{requester, block, kind, nextOrder()});
}

void Trace::onPutShared(NodeId node, BlockId block) {
  putShareds_.push_back(PutSharedRecord{node, block, nextOrder()});
}

void Trace::onDeadlockResolved(NodeId node, BlockId block,
                               NodeId impliedAcker) {
  deadlockResolutions_.push_back(
      DeadlockRecord{node, block, impliedAcker, nextOrder()});
}

const proto::TxnInfo* Trace::findTxn(TransactionId id) const {
  const auto it = txnIndex_.find(id);
  return it == txnIndex_.end() ? nullptr : &serializations_[it->second].txn;
}

void Trace::clear() {
  nextOrder_ = 1;
  serializations_.clear();
  stamps_.clear();
  values_.clear();
  operations_.clear();
  nacks_.clear();
  putShareds_.clear();
  deadlockResolutions_.clear();
  txnIndex_.clear();
}

}  // namespace lcdc::trace
