// Trace serialization: save an execution trace to a line-oriented text
// format and load it back, so verification can run offline (and traces
// from failing runs can be archived as reproducible counterexamples).
//
// Format: one record per line, first token is the record type:
//   H <nextOrder>                                              header
//   S <txn> <serial> <kind> <block> <requester> <order>        serialization
//   T <node> <txn> <serial> <block> <role> <ts> <oldA> <newA> <order>
//   V <node> <txn> <block> <order> <w0> <w1> ...               value receipt
//   O <proc> <progIdx> <kind> <block> <word> <value> <boundTxn>
//     <boundSerial> <g> <l> <pid> <order>                      operation
//   N <requester> <block> <kind> <order>                       NACK
//   P <node> <block> <order>                                   Put-Shared
//   D <node> <block> <acker> <order>                           deadlock fix
//
// The format is stable, append-only and diff-friendly; loading rebuilds the
// trace verbatim (orders included), so save/load round-trips exactly.
#pragma once

#include <iosfwd>

#include "trace/trace.hpp"

namespace lcdc::trace {

/// Write `t` to `os`.  Throws SimError on stream failure.
void save(const Trace& t, std::ostream& os);

/// Read a trace previously written by save().  Throws SimError on parse
/// errors.
[[nodiscard]] Trace load(std::istream& is);

/// Convenience file wrappers.  loadFile autodetects the format: files
/// beginning with the codec.hpp binary-trace magic load through
/// trace::loadBinary, anything else parses as the text format above —
/// so `lcdc verify` re-checks traces archived either way.
void saveFile(const Trace& t, const std::string& path);
void saveFileBinary(const Trace& t, const std::string& path);
[[nodiscard]] Trace loadFile(const std::string& path);

/// Archive a counterexample: like saveFile, but prefixed with `# `-comment
/// metadata lines (campaign seed, derived configuration, failure
/// signature, repro command).  load() skips comments, so archived traces
/// re-verify offline with the stock `lcdc verify` path.  Metadata lines
/// must not contain newlines.
void saveFileWithMeta(const Trace& t, const std::string& path,
                      const std::vector<std::string>& metaLines);

}  // namespace lcdc::trace
