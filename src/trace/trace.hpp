// The execution trace: everything the Section 3 proofs quantify over,
// recorded from a live run through the proto::EventSink interface.
//
// Every record carries a monotone `order` field — the *real-time* order in
// which the event was observed.  Claim 2 compares this real-time order
// against the directory serialization order; everything else compares
// Lamport timestamps.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/timestamp.hpp"
#include "common/types.hpp"
#include "proto/events.hpp"

namespace lcdc::trace {

using EventOrder = std::uint64_t;

struct SerializeRecord {
  proto::TxnInfo txn;
  EventOrder order = 0;
};

struct StampRecord {
  NodeId node = kNoNode;
  TransactionId txn = kNoTransaction;
  SerialIdx serial = 0;
  BlockId block = 0;
  proto::StampRole role{};
  GlobalTime ts = 0;
  AState oldA{};
  AState newA{};
  EventOrder order = 0;
};

struct ValueRecord {
  NodeId node = kNoNode;
  TransactionId txn = kNoTransaction;
  BlockId block = 0;
  BlockValue value;
  EventOrder order = 0;
};

struct NackRecord {
  NodeId requester = kNoNode;
  BlockId block = 0;
  NackKind kind{};
  EventOrder order = 0;
};

struct PutSharedRecord {
  NodeId node = kNoNode;
  BlockId block = 0;
  EventOrder order = 0;
};

struct DeadlockRecord {
  NodeId node = kNoNode;
  BlockId block = 0;
  NodeId impliedAcker = kNoNode;
  EventOrder order = 0;
};

/// Event recorder.  Owns every record of a run; the verify module consumes
/// it read-only.
class Trace : public proto::EventSink {
 public:
  void onSerialize(const proto::TxnInfo& txn) override;
  void onTxnConverted(TransactionId id, TxnKind newKind) override;
  void onStamp(NodeId node, TransactionId txn, SerialIdx serial, BlockId block,
               proto::StampRole role, GlobalTime ts, AState oldA,
               AState newA) override;
  void onValueReceived(NodeId node, TransactionId txn, BlockId block,
                       const BlockValue& value) override;
  void onOperation(const proto::OpRecord& op) override;
  void onNack(NodeId requester, BlockId block, NackKind kind) override;
  void onPutShared(NodeId node, BlockId block) override;
  void onDeadlockResolved(NodeId node, BlockId block,
                          NodeId impliedAcker) override;

  [[nodiscard]] const std::vector<SerializeRecord>& serializations() const {
    return serializations_;
  }
  [[nodiscard]] const std::vector<StampRecord>& stamps() const {
    return stamps_;
  }
  [[nodiscard]] const std::vector<ValueRecord>& values() const {
    return values_;
  }
  [[nodiscard]] const std::vector<proto::OpRecord>& operations() const {
    return operations_;
  }
  [[nodiscard]] const std::vector<NackRecord>& nacks() const { return nacks_; }
  [[nodiscard]] const std::vector<PutSharedRecord>& putShareds() const {
    return putShareds_;
  }
  [[nodiscard]] const std::vector<DeadlockRecord>& deadlockResolutions() const {
    return deadlockResolutions_;
  }

  /// Transaction lookup with kind conversions (transactions 13/14a) applied.
  [[nodiscard]] const proto::TxnInfo* findTxn(TransactionId id) const;

  /// Order stamp sequence (real time) — exposed so external events (the
  /// simulator's own markers) can interleave consistently.
  EventOrder nextOrder() { return nextOrder_++; }

  /// Bytes held by the record vectors — the O(events) cost the streaming
  /// pipeline exists to avoid (bench/streaming_overhead compares this
  /// against StreamCheckerSet::memoryFootprint()).
  [[nodiscard]] std::size_t memoryBytes() const {
    return serializations_.capacity() * sizeof(SerializeRecord) +
           stamps_.capacity() * sizeof(StampRecord) +
           values_.capacity() * sizeof(ValueRecord) +
           operations_.capacity() * sizeof(proto::OpRecord) +
           nacks_.capacity() * sizeof(NackRecord) +
           putShareds_.capacity() * sizeof(PutSharedRecord) +
           deadlockResolutions_.capacity() * sizeof(DeadlockRecord);
  }

  void clear();

 private:
  friend Trace load(std::istream& is);  // serialize.hpp round-trips verbatim
  friend Trace loadBinary(std::istream& is);  // codec.hpp, same contract

  EventOrder nextOrder_ = 1;
  std::vector<SerializeRecord> serializations_;
  std::vector<StampRecord> stamps_;
  std::vector<ValueRecord> values_;
  std::vector<proto::OpRecord> operations_;
  std::vector<NackRecord> nacks_;
  std::vector<PutSharedRecord> putShareds_;
  std::vector<DeadlockRecord> deadlockResolutions_;
  std::unordered_map<TransactionId, std::size_t> txnIndex_;
};

}  // namespace lcdc::trace
