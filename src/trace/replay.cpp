#include "trace/replay.hpp"

#include <cstdint>
#include <limits>

namespace lcdc::trace {

void replay(const Trace& trace, proto::EventSink& sink) {
  const auto& ser = trace.serializations();
  const auto& stamps = trace.stamps();
  const auto& values = trace.values();
  const auto& ops = trace.operations();
  const auto& nacks = trace.nacks();
  const auto& puts = trace.putShareds();
  const auto& deadlocks = trace.deadlockResolutions();

  std::size_t is = 0, ist = 0, iv = 0, io = 0, in = 0, ip = 0, idl = 0;
  for (;;) {
    // Seven-way merge on the real-time order stamp.  Strict `<` makes the
    // consideration order below the tie-break, which only matters for
    // hand-built traces whose records share an order value.
    EventOrder best = std::numeric_limits<EventOrder>::max();
    int which = -1;
    const auto consider = [&](int w, bool has, EventOrder order) {
      if (has && order < best) {
        best = order;
        which = w;
      }
    };
    consider(0, is < ser.size(), is < ser.size() ? ser[is].order : 0);
    consider(1, ist < stamps.size(), ist < stamps.size() ? stamps[ist].order : 0);
    consider(2, iv < values.size(), iv < values.size() ? values[iv].order : 0);
    consider(3, io < ops.size(), io < ops.size() ? ops[io].order : 0);
    consider(4, in < nacks.size(), in < nacks.size() ? nacks[in].order : 0);
    consider(5, ip < puts.size(), ip < puts.size() ? puts[ip].order : 0);
    consider(6, idl < deadlocks.size(),
             idl < deadlocks.size() ? deadlocks[idl].order : 0);
    if (which < 0) break;

    switch (which) {
      case 0:
        sink.onSerialize(ser[is].txn);
        ++is;
        break;
      case 1: {
        const StampRecord& s = stamps[ist];
        sink.onStamp(s.node, s.txn, s.serial, s.block, s.role, s.ts, s.oldA,
                     s.newA);
        ++ist;
        break;
      }
      case 2: {
        const ValueRecord& v = values[iv];
        sink.onValueReceived(v.node, v.txn, v.block, v.value);
        ++iv;
        break;
      }
      case 3:
        sink.onOperation(ops[io]);
        ++io;
        break;
      case 4: {
        const NackRecord& n = nacks[in];
        sink.onNack(n.requester, n.block, n.kind);
        ++in;
        break;
      }
      case 5: {
        const PutSharedRecord& p = puts[ip];
        sink.onPutShared(p.node, p.block);
        ++ip;
        break;
      }
      default: {
        const DeadlockRecord& d = deadlocks[idl];
        sink.onDeadlockResolved(d.node, d.block, d.impliedAcker);
        ++idl;
        break;
      }
    }
  }
}

}  // namespace lcdc::trace
