// The fuzzer's mutation engine: derive a child (workload, schedule) input
// from a corpus parent.
//
// An input is a full CaseSpec — programs plus the system shape's schedule
// dimensions (seed, latency window, retry delay, network mode).  Operators
// mutate both sides: program surgery (drop/duplicate/splice/retarget step
// ranges, evict bursts) changes WHAT the processors do, schedule shakes
// (reseed, latency window, Pct/Fifo mode flips, snoop/lease jiggles) change
// WHEN the network lets it happen.  Structural program edits renumber every
// store value afterwards (workload::makeStoreValue in program order), since
// the SC checker attributes loads by globally unique store values.
//
// Swarm sampling complements mutation: each fuzz wave draws a restricted
// configuration subspace (a subset of workload families, one latency band,
// mode biases) and fresh inputs are derived inside it.  Restricted sampling
// reaches feature combinations a uniform mixture statistically never holds
// long enough to exercise (swarm testing, Groce et al.).
#pragma once

#include "campaign/campaign.hpp"
#include "common/rng.hpp"
#include "common/small_vector.hpp"

namespace lcdc::campaign {

struct MutationConfig {
  ProtocolKind protocol = ProtocolKind::Directory;
  /// Bus inputs keep RandomLatency (the backend has no network to schedule).
  bool allowModeFlips = true;
  /// 1..maxOps operators are stacked per child.
  std::uint32_t maxOps = 3;
  /// Hard cap on mutated program length (duplication/splicing grows steps).
  std::size_t maxStepsPerProgram = 4096;
};

/// One wave's restricted configuration subspace.
struct Swarm {
  common::SmallVector<workload::Kind, 8> kinds;  ///< allowed families
  std::uint64_t latLo = 8, latHi = 48;           ///< maxLatency band
  /// Per-mille chance a fresh input uses the Pct / Fifo schedule (the rest
  /// stay RandomLatency).
  std::uint32_t pctPermille = 400;
  std::uint32_t fifoPermille = 50;
};

/// Draw a swarm for one wave.  Deterministic in `rng`.
[[nodiscard]] Swarm sampleSwarm(const MutationConfig& cfg, Rng& rng);

/// Derive a fresh input inside `swarm` (the fuzzer's exploration arm and
/// its corpus-seeding path).  Deterministic in `rng`.
void swarmDeriveInto(const MutationConfig& cfg, const CampaignConfig& campaign,
                     const Swarm& swarm, Rng& rng, CaseSpec& out);

/// Mutate `parent` into `out` with 1..maxOps stacked operators.  The child
/// is always well-formed: program count matches the processor count, store
/// values are globally unique, latency bounds stay legal, and the
/// description carries a "~op,op" suffix naming the applied operators.
void mutateInto(const MutationConfig& cfg, const CaseSpec& parent, Rng& rng,
                CaseSpec& out);

}  // namespace lcdc::campaign
