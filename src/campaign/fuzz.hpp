// The coverage-guided fuzzing stage of the campaign.
//
// Where the random campaign derives sub-run i independently from
// (masterSeed, i), the fuzzer closes the loop the ROADMAP pointed at: the
// coverage the campaign already collects becomes the feedback signal.  Each
// wave, candidates are bred — mostly mutations of corpus parents
// (campaign/mutate.hpp), a tithe of fresh swarm-derived inputs — executed
// in parallel with a schedule probe attached, and an input earns a corpus
// slot iff its outcome contributed at least one novelty key the map has
// never seen:
//
//   * transaction-case x log2-count buckets (the 15 paper cases),
//   * schedule shape: reorder-depth / per-block-contention log2 buckets and
//     the 256 interleaving-signature buckets (net::ScheduleProbe),
//   * Tardis lease renew/expire log2 buckets,
//   * failure signatures (a new named claim/lemma is always novel).
//
// Determinism carries over from the random campaign: candidates are bred
// sequentially from one Rng before each parallel wave, outcomes fold in
// index order, and stop decisions happen only at wave boundaries — so the
// report is byte-identical for any --jobs, and a persistent corpus
// (--corpus) grows identically too.  On start the corpus is replayed to
// rebuild the novelty map, which is what makes resume *accumulate*: a
// rediscovered input is no longer novel, so the budget goes to new ground.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "campaign/campaign.hpp"

namespace lcdc::campaign {

/// The fuzzer's seen-feature set.  admit() folds one outcome and returns
/// how many previously unseen keys it contributed (0 = nothing novel).
class NoveltyMap {
 public:
  std::size_t admit(const CaseOutcome& outcome);
  [[nodiscard]] std::size_t size() const { return seen_.size(); }

 private:
  std::unordered_set<std::uint64_t> seen_;
};

/// Run the coverage-guided stage.  cfg.seeds is the execution budget
/// (corpus replay included); cfg.corpusDir persists novel inputs.  Called
/// by campaign::run when cfg.fuzz is set.
[[nodiscard]] CampaignResult runFuzz(const CampaignConfig& cfg);

}  // namespace lcdc::campaign
