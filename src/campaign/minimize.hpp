// Delta-debugging minimizer for failing campaign schedules.
//
// A failure surfaced by a 5000-operation random schedule is a poor
// debugging artifact; the classic ddmin move (Zeller & Hildebrandt) is to
// shrink the *input* while re-checking that the *same* failure still
// fires.  Here the input is a CaseSpec (system shape + per-processor
// programs) and the oracle is campaign::runCase: a candidate is accepted
// only if its failure signature string equals the original's exactly —
// same checker, same outcome class — so the minimizer can never wander to
// a different bug.
//
// Three shrinking phases, each budgeted from one probe counter:
//   1. ddmin over the flattened operation list (drop complement chunks,
//      halving granularity) — removes the bulk of the schedule;
//   2. node reduction — drop whole processors (their program removed,
//      ids of the survivors compacted) while the failure persists;
//   3. parameter tightening — binary-search the network's maxLatency down
//      toward minLatency and halve the retry delay, shrinking the
//      adversarial latency spread the schedule actually needs.
// Phase 1 is re-run after phase 2: a smaller machine often makes more
// operations redundant.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/campaign.hpp"

namespace lcdc::campaign {

struct MinimizeOptions {
  /// Total probe (re-execution) budget across all phases.
  std::uint64_t maxAttempts = 400;
  /// Event budget per probe.
  std::uint64_t maxEventsPerRun = 5'000'000;
};

struct MinimizeResult {
  CaseSpec spec;          ///< the minimized case (== input if irreducible)
  std::string signature;  ///< the preserved failure signature
  std::uint64_t attempts = 0;
  std::size_t stepsBefore = 0;
  std::size_t stepsAfter = 0;
  NodeId procsBefore = 0;
  NodeId procsAfter = 0;
  [[nodiscard]] bool reduced() const {
    return stepsAfter < stepsBefore || procsAfter < procsBefore;
  }
};

/// Count the schedule's total program steps.
[[nodiscard]] std::size_t totalSteps(const CaseSpec& spec);

/// Shrink `failing` (whose runCase signature is `signature`) as far as the
/// probe budget allows.  The returned spec is guaranteed to still fail
/// with the same signature.
[[nodiscard]] MinimizeResult shrink(const CaseSpec& failing,
                                    const std::string& signature,
                                    const MinimizeOptions& opts);

}  // namespace lcdc::campaign
