#include "campaign/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <sstream>

#include "campaign/corpus.hpp"
#include "campaign/mutate.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace lcdc::campaign {

namespace {

/// Fixed wave width.  Deliberately NOT a function of cfg.jobs: candidates
/// are bred sequentially before each wave and folded in index order after
/// it, so a jobs-independent width makes the whole run (corpus growth,
/// stop decisions, report) byte-identical for any --jobs value.
constexpr std::uint64_t kWaveSize = 64;

/// Of each wave, roughly this fraction (per 100) is fresh swarm-derived
/// exploration; the rest mutates corpus parents (exploitation).
constexpr std::uint64_t kFreshPercent = 15;

/// Bucket a counter by its floor(log2): novelty cares about orders of
/// magnitude ("this input held 30 messages on one block"), not exact
/// counts, or every run would be trivially novel.
std::uint64_t log2Bucket(std::uint64_t v) {
  std::uint64_t b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

std::uint64_t fnv1a32(const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h & 0xFFFFFFFFULL;
}

/// Novelty key domains.  A key is domain<<56 | payload; domains keep the
/// feature spaces disjoint.
enum : std::uint64_t {
  kDomCase = 1,        ///< transaction case x log2 count
  kDomLeaseRenew = 2,  ///< log2 lease renewals
  kDomLeaseExpire = 3, ///< log2 lease expiries
  kDomReorder = 4,     ///< log2 max reorder depth
  kDomContention = 5,  ///< log2 max per-block in-flight
  kDomInterleave = 6,  ///< interleaving-signature bucket index
  kDomSignature = 7,   ///< failure signature hash
};

std::uint64_t noveltyKey(std::uint64_t domain, std::uint64_t payload) {
  return (domain << 56) | payload;
}

}  // namespace

std::size_t NoveltyMap::admit(const CaseOutcome& outcome) {
  std::size_t fresh = 0;
  const auto add = [&](std::uint64_t k) {
    if (seen_.insert(k).second) ++fresh;
  };
  for (std::size_t i = 0; i < kNumPoints; ++i) {
    const std::uint64_t n = outcome.coverage.counts[i];
    if (n == 0) continue;
    add(noveltyKey(kDomCase, (static_cast<std::uint64_t>(i) << 8) |
                                 log2Bucket(n)));
  }
  if (outcome.coverage.leaseRenewals != 0) {
    add(noveltyKey(kDomLeaseRenew,
                   log2Bucket(outcome.coverage.leaseRenewals)));
  }
  if (outcome.coverage.leaseExpiries != 0) {
    add(noveltyKey(kDomLeaseExpire,
                   log2Bucket(outcome.coverage.leaseExpiries)));
  }
  if (outcome.maxReorderDepth != 0) {
    add(noveltyKey(kDomReorder, log2Bucket(outcome.maxReorderDepth)));
  }
  if (outcome.maxBlockContention != 0) {
    add(noveltyKey(kDomContention, log2Bucket(outcome.maxBlockContention)));
  }
  for (std::size_t w = 0; w < outcome.interleaveBits.size(); ++w) {
    std::uint64_t bits = outcome.interleaveBits[w];
    while (bits != 0) {
      std::uint64_t bit = 0;
      while (((bits >> bit) & 1ULL) == 0) ++bit;
      bits &= bits - 1;
      add(noveltyKey(kDomInterleave, w * 64 + bit));
    }
  }
  if (!outcome.signature.empty()) {
    add(noveltyKey(kDomSignature, fnv1a32(outcome.signature)));
  }
  return fresh;
}

namespace {

std::string fuzzFileStem(std::uint64_t execution) {
  std::ostringstream os;
  os << "fuzz-" << std::setw(6) << std::setfill('0') << execution;
  return os.str();
}

/// One failing input, held until the post-run finalize pass (archive +
/// ddmin are sequential and expensive; the wave loop only records).
struct PendingFailure {
  std::uint64_t execution = 0;  ///< 1-based execution index
  CaseSpec spec;
  std::string signature;
  std::string detail;
};

}  // namespace

CampaignResult runFuzz(const CampaignConfig& cfg) {
  LCDC_EXPECT(cfg.fuzz, "runFuzz requires cfg.fuzz");
  const auto t0 = std::chrono::steady_clock::now();

  CampaignResult result;
  result.protocol = cfg.protocol;
  result.fuzz.ran = true;

  MutationConfig mcfg;
  mcfg.protocol = cfg.protocol;
  mcfg.allowModeFlips = cfg.protocol != ProtocolKind::Bus;

  // Load the persistent corpus.  Entries never carry a mutant (the corpus
  // stores inputs, not bugs); this campaign's own mutant is applied here.
  // A corpus recorded for a different backend is a usage error surfaced as
  // a clean SimError, same as a corrupt entry.
  std::vector<CaseSpec> corpus = loadCorpus(cfg.corpusDir);
  for (CaseSpec& spec : corpus) {
    if (spec.sys.protocol != cfg.protocol) {
      throw SimError(std::string("corpus entry for backend '") +
                     toString(spec.sys.protocol) + "' in a '" +
                     toString(cfg.protocol) + "' campaign: " + cfg.corpusDir);
    }
    spec.sys.proto.mutant = cfg.mutant;
  }
  result.fuzz.corpusLoaded = corpus.size();

  ThreadPool pool(cfg.jobs);
  NoveltyMap novelty;
  // The breeding stream is separate from the per-case seed space: every
  // candidate's own sys.seed/workload seed still comes from this stream,
  // but breeding decisions (swarm draws, parent picks, operators) consume
  // it sequentially, once, before each parallel wave.
  Rng breed(workload::deriveSeed(cfg.masterSeed, 0x66757A7AULL));  // "fuzz"

  std::vector<CaseSpec> wave;
  std::vector<CaseOutcome> outcomes;
  std::vector<PendingFailure> pending;
  std::uint64_t executions = 0;

  // Execute `wave` in parallel, then fold outcomes in index order.
  // `admitToCorpus` is false during the replay of loaded entries (they are
  // already members; replay only rebuilds the novelty map so resumption
  // accumulates instead of rediscovering).  Returns true when the wave
  // contained at least one failure.
  const auto runWave = [&](bool admitToCorpus) {
    outcomes.assign(wave.size(), CaseOutcome{});
    for (std::size_t i = 0; i < wave.size(); ++i) {
      pool.submit([&cfg, &wave, &outcomes, i] {
        outcomes[i] = runCase(wave[i], cfg.maxEventsPerRun,
                              /*traceOut=*/nullptr, cfg.streaming,
                              /*probeSchedule=*/true);
      });
    }
    pool.wait();
    bool sawFailure = false;
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const CaseOutcome& o = outcomes[i];
      ++executions;
      result.coverage.merge(o.coverage);
      result.opsBound += o.opsBound;
      result.txnsSerialized += o.txnsSerialized;
      result.perf.merge(o.perf);
      for (const auto& [check, n] : o.checkerFirings) {
        result.checkerFirings[check] += n;
      }
      const std::size_t novel = novelty.admit(o);
      if (admitToCorpus && novel > 0) {
        corpus.push_back(wave[i]);
        ++result.fuzz.corpusAdded;
        if (!cfg.corpusDir.empty()) saveEntry(wave[i], cfg.corpusDir);
      }
      if (!o.clean()) {
        sawFailure = true;
        if (result.fuzz.firstFailureExecution == 0) {
          result.fuzz.firstFailureExecution = executions;
        }
        pending.push_back(
            PendingFailure{executions, wave[i], o.signature, o.detail});
      }
    }
    return sawFailure;
  };

  // Phase 1: replay the loaded corpus.  Counts against the execution
  // budget (honest accounting: a resumed session really did run these),
  // and failures found here are reported like any other — a corpus grown
  // on the pristine protocol finds a seeded mutant during replay already.
  for (std::size_t at = 0; at < corpus.size() && executions < cfg.seeds;) {
    wave.clear();
    while (at < corpus.size() && wave.size() < kWaveSize &&
           executions + wave.size() < cfg.seeds) {
      wave.push_back(corpus[at++]);
    }
    if (wave.empty()) break;
    const bool sawFailure = runWave(/*admitToCorpus=*/false);
    if (cfg.fuzzStopOnFailure && sawFailure) break;
  }

  // Phase 2: breed-and-run waves until the budget is exhausted or a stop
  // condition holds at a wave boundary.
  bool stop = cfg.fuzzStopOnFailure && result.fuzz.firstFailureExecution != 0;
  while (!stop && executions < cfg.seeds) {
    const std::uint64_t remaining = cfg.seeds - executions;
    const std::uint64_t width = std::min(kWaveSize, remaining);
    const Swarm swarm = sampleSwarm(mcfg, breed);
    wave.clear();
    for (std::uint64_t j = 0; j < width; ++j) {
      CaseSpec child;
      if (corpus.empty() || breed.chance(kFreshPercent, 100)) {
        swarmDeriveInto(mcfg, cfg, swarm, breed, child);
      } else {
        const std::size_t parent =
            static_cast<std::size_t>(breed.uniform(0, corpus.size() - 1));
        mutateInto(mcfg, corpus[parent], breed, child);
      }
      child.sys.proto.mutant = cfg.mutant;
      wave.push_back(std::move(child));
    }
    const bool sawFailure = runWave(/*admitToCorpus=*/true);
    if (cfg.fuzzStopOnFailure && sawFailure) stop = true;
    if (cfg.untilCoverage &&
        result.coverage.transactionCasesComplete(cfg.protocol)) {
      stop = true;
    }
  }

  result.seedsRun = executions;
  result.fuzz.executions = executions;
  result.fuzz.corpusSize = corpus.size();
  result.fuzz.features = novelty.size();

  // Finalize failures sequentially, exactly like the random path: archive,
  // then ddmin the first cfg.maxMinimized while preserving the signature.
  for (const PendingFailure& pf : pending) {
    const bool shrinkThis =
        cfg.minimize && result.failures.size() < cfg.maxMinimized;
    result.failures.push_back(detail::finalizeFailure(
        cfg, pf.execution, pf.spec, pf.signature, pf.detail, shrinkThis,
        fuzzFileStem(pf.execution)));
  }

  result.pool = pool.stats();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace lcdc::campaign
