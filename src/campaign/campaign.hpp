// The parallel verification-campaign runner.
//
// The paper's argument (Sections 1 and 4) is that Lamport-clock checking
// *scales*: one seeded execution of an arbitrarily large configuration can
// be verified in time linear in its trace, where exhaustive model checking
// explodes.  This module industrialises that claim: it fans out N seeded
// sub-runs across a work-stealing thread pool, runs the full Section 3
// checker suite on every trace, and aggregates
//
//   (a) coverage — which of the 14 transaction cases, NACK paths,
//       Put-Shared/deadlock extension paths and store-buffering rules the
//       campaign's schedules actually reached (campaign/coverage.hpp),
//   (b) verdicts — per-claim firing statistics across all sub-runs,
//   (c) reproducers — for every failure, an archived trace plus a
//       delta-debugged minimal schedule that still trips the *same*
//       checker (campaign/minimize.hpp).
//
// Determinism: sub-run i of master seed M is a pure function of (M, i) —
// never of thread scheduling — and aggregation folds per-run results in
// seed order from an indexed table.  Hence the hard guarantee the tests
// pin down: same master seed and seed count => byte-identical report and
// identical failure set, for ANY --jobs value.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/coverage.hpp"
#include "common/config.hpp"
#include "common/thread_pool.hpp"
#include "net/network.hpp"
#include "sim/perf.hpp"
#include "workload/generators.hpp"

namespace lcdc::trace {
class Trace;
}

namespace lcdc::campaign {

struct CampaignConfig {
  /// Which coherence backend every sub-run (and the mc stage) drives.
  /// Tardis campaigns derive lease lengths per seed, pin storeBufferDepth
  /// to 0 (unsupported there) and add the lease-churn family to the mixed
  /// rotation; the directory derivation stream is untouched, so existing
  /// directory campaign reports stay byte-identical.
  ProtocolKind protocol = ProtocolKind::Directory;
  std::uint64_t masterSeed = 1;
  /// Number of sub-runs (an upper bound when untilCoverage is set).
  std::uint64_t seeds = 256;
  /// Worker threads.
  unsigned jobs = 1;
  /// Pin every sub-run to one generator family; nullopt = the mixed
  /// campaign (family and system shape derived per seed).
  std::optional<workload::Kind> workload;
  /// Fault injection applied to every sub-run.
  Mutant mutant = Mutant::None;
  /// Stop (at a wave boundary) once all 14 transaction cases are covered.
  bool untilCoverage = false;
  /// Delta-debug failing schedules into minimal reproducers.
  bool minimize = true;
  /// Shrink at most this many failures (minimization is sequential).
  std::size_t maxMinimized = 4;
  /// Archive failing (and minimized) traces under this directory; empty =
  /// keep failures in the report only.
  std::string outDir;
  /// Event budget per sub-run (guards against livelock-ish mutants).
  std::uint64_t maxEventsPerRun = 5'000'000;
  /// Probe budget for the minimizer, per failure.
  std::uint64_t minimizeAttempts = 400;
  /// Verify online through the streaming pipeline (TeeSink ->
  /// {CoverageObserver, StreamCheckerSet}) with no trace recording —
  /// per-run memory O(blocks + processors) instead of O(events).  Failing
  /// seeds are re-executed with a recorder attached, so archiving and
  /// minimization see full traces either way.  Signatures and reports are
  /// identical in both modes (the batch checkers replay through the same
  /// streaming cores).
  bool streaming = true;
  /// Exhaustively model-check a small configuration of the campaign's
  /// protocol variant (same mutant) before the seed fan-out — the
  /// complementary verification world: MC proves the small configuration,
  /// the Lamport checkers scale to the big ones.
  bool mcStage = false;
  NodeId mcProcs = 2;
  BlockId mcBlocks = 1;
  std::uint64_t mcMaxStates = 400'000;
  /// mc-stage out-of-core knobs, forwarded to `mc::explore` (DESIGN.md
  /// §14): visited-set mode ("exact" | "compact" | "bitstate"), tracked-
  /// memory limit in MiB (0 = unlimited), and the spill / checkpoint /
  /// resume directories.  Kept as strings here so campaign.hpp stays
  /// independent of the mc headers; `run` validates and maps them.
  std::string mcVisited = "exact";
  std::uint64_t mcMemLimitMb = 0;
  std::string mcSpillDir;
  std::string mcCheckpointDir;
  std::string mcResumeDir;
  /// Coverage-guided fuzzing stage (campaign/fuzz.hpp): instead of deriving
  /// every sub-run independently, mutate corpus entries and keep inputs
  /// that exercise novel coverage or schedule shapes.  `seeds` becomes the
  /// execution budget.  Deterministic for any --jobs, like the random path.
  bool fuzz = false;
  /// Persistent corpus directory; entries are loaded (and replayed, so the
  /// novelty map resumes where the last session stopped) on start and novel
  /// inputs are saved as they are found.  Empty = in-memory corpus only.
  std::string corpusDir;
  /// Fuzz only: stop at the first wave containing a failure instead of
  /// exhausting the budget (the time-to-detection harness uses this).
  bool fuzzStopOnFailure = false;
};

/// One fully derived sub-run: everything needed to re-execute it exactly.
struct CaseSpec {
  SystemConfig sys;
  std::vector<workload::Program> programs;
  std::string description;  ///< e.g. "hot procs=6 dirs=2 blocks=8 cap=2 ..."
  /// Network schedule family.  Random derivation always uses RandomLatency
  /// (keeping historical reports byte-identical); the fuzzer also flips
  /// cases to Pct (randomized priorities) and Fifo.  Ignored by the bus
  /// backend, which has no point-to-point network.
  net::Network::Mode netMode = net::Network::Mode::RandomLatency;
};

/// Derive sub-run `index` of a campaign.  Pure function of (config,
/// index); both the fan-out and the minimizer's re-derivation call this.
[[nodiscard]] CaseSpec deriveCase(const CampaignConfig& cfg,
                                  std::uint64_t index);

/// `deriveCase` into a retained spec: program step buffers and the
/// description string are reused (workload::makeInto), so a worker that
/// derives thousands of cases into one thread-local CaseSpec pays for
/// generation once per sub-run and for allocation only at its high-water
/// program size.  Produces exactly what deriveCase returns.
void deriveCaseInto(const CampaignConfig& cfg, std::uint64_t index,
                    CaseSpec& out);

/// Outcome of executing + verifying one case.
struct CaseOutcome {
  /// Failure signature: "" when clean, else "checker:<name>",
  /// "outcome:<deadlock|livelock|budget>", or "invariant" (an Appendix-B
  /// LCDC_EXPECT fired).  The minimizer preserves this string exactly.
  std::string signature;
  std::string detail;  ///< first violation / outcome detail / what()
  Coverage coverage;
  std::uint64_t opsBound = 0;
  std::uint64_t txnsSerialized = 0;
  std::map<std::string, std::uint64_t> checkerFirings;
  /// Hot-loop counters for this sub-run (wall-clock + queue ops).  Never
  /// read by the deterministic report; surfaced in the timing block.
  sim::SimPerfCounters perf;
  /// Schedule-shape features (net::ScheduleProbe), filled only when runCase
  /// is asked to probe (the fuzzer's novelty signal); zero otherwise and on
  /// the bus backend (no network).
  std::uint64_t maxReorderDepth = 0;
  std::uint64_t maxBlockContention = 0;
  std::array<std::uint64_t, 4> interleaveBits{};

  [[nodiscard]] bool clean() const { return signature.empty(); }
};

/// Execute one case and run the full checker suite over it.  With
/// `streaming` (the default) the checkers observe the run online and no
/// trace is kept; otherwise the run is recorded and batch-checked.  Both
/// paths produce identical outcomes.  When `traceOut` is non-null a
/// recorder is attached in either mode and the trace is left there (also
/// for failing runs — a deadlocked run leaves its truncated trace).
[[nodiscard]] CaseOutcome runCase(const CaseSpec& spec,
                                  std::uint64_t maxEvents,
                                  trace::Trace* traceOut = nullptr,
                                  bool streaming = true,
                                  bool probeSchedule = false);

/// One failing sub-run, with its minimization result when enabled.
struct Failure {
  std::uint64_t index = 0;
  std::string signature;
  std::string detail;
  std::string description;
  std::size_t steps = 0;       ///< schedule size before minimization
  NodeId procs = 0;
  std::string tracePath;       ///< archived original ("" if not archived)
  // -- minimizer output (minimized == true when it ran and reduced) ----------
  bool minimized = false;
  std::size_t minSteps = 0;
  NodeId minProcs = 0;
  std::uint64_t minMaxLatency = 0;
  std::string minimizedPath;   ///< archived minimal reproducer trace
};

/// Verdict of the optional model-checking stage.  Violation details are
/// deliberately not kept here: under symmetry reduction the representative
/// state (and hence the node ids in the text) can vary across job counts,
/// and this struct feeds the byte-identical report guarantee.  Run
/// `lcdc mc` directly for diagnostics.
struct McStageResult {
  bool ran = false;
  bool ok = true;
  bool deadlock = false;
  bool hitStateLimit = false;
  /// Stage stopped at the tracked-memory limit (counts up to the stop are
  /// exact and wave-deterministic, so the report may still print them).
  bool memLimitHit = false;
  std::uint64_t states = 0;
  std::uint64_t violations = 0;
  /// Visited-set mode the stage ran under ("exact" unless --mc-visited).
  std::string visited = "exact";
  /// Omission-probability bound for lossy visited modes (0 for exact).
  /// Deterministic for a fixed configuration — the stored-state set and
  /// Bloom fill are wave-deterministic — so report() may print it.
  double omissionBound = 0.0;
  /// Canonical-encoding bytes stored for distinct states.  Deterministic
  /// for a given configuration (the state set is), unlike arena or RSS
  /// numbers, so the report may print it; scheduling-dependent throughput
  /// stays in the timing block.
  std::uint64_t storedEncBytes = 0;
  NodeId procs = 0;
  BlockId blocks = 0;
};

/// Deterministic statistics of the fuzz stage (campaign/fuzz.hpp); every
/// field is a pure function of (config, corpus contents), so report() may
/// print them.
struct FuzzStats {
  bool ran = false;
  std::uint64_t executions = 0;      ///< cases executed (incl. corpus replay)
  std::uint64_t corpusLoaded = 0;    ///< entries loaded from --corpus
  std::uint64_t corpusAdded = 0;     ///< novel inputs admitted this session
  std::uint64_t corpusSize = 0;      ///< final corpus size
  std::uint64_t features = 0;        ///< distinct novelty keys observed
  /// 1-based execution index of the first failing case (0 = none) — the
  /// fuzzer's time-to-detection in executions.
  std::uint64_t firstFailureExecution = 0;
};

struct CampaignResult {
  /// Backend the campaign drove; selects the reachable-case target the
  /// coverage table is reported against.
  ProtocolKind protocol = ProtocolKind::Directory;
  Coverage coverage;
  FuzzStats fuzz;
  McStageResult mcStage;
  std::vector<Failure> failures;  ///< ordered by sub-run index
  std::uint64_t seedsRun = 0;
  std::uint64_t opsBound = 0;
  std::uint64_t txnsSerialized = 0;
  std::map<std::string, std::uint64_t> checkerFirings;
  // Non-deterministic extras, deliberately excluded from report():
  PoolStats pool;
  sim::SimPerfCounters perf;  ///< aggregated over every sub-run
  double seconds = 0;
  /// Wall-clock of the optional mc stage (0 when it did not run).
  double mcSeconds = 0;

  [[nodiscard]] bool ok() const {
    return failures.empty() && (!mcStage.ran || mcStage.ok);
  }
  /// Deterministic text report (coverage table, per-claim firings,
  /// failure list).  Contains no timing, thread counts or paths — equal
  /// bytes for equal (masterSeed, seeds, workload, mutant) regardless of
  /// --jobs.
  [[nodiscard]] std::string report() const;
};

/// Run the campaign.  Seeds execute on `cfg.jobs` pool workers; failures
/// are minimized and archived sequentially afterwards (deterministic).
/// With cfg.fuzz, dispatches to the coverage-guided stage (campaign/fuzz.hpp).
[[nodiscard]] CampaignResult run(const CampaignConfig& cfg);

namespace detail {
/// Archive and (optionally) delta-debug one failing case — the shared
/// post-processing of the random fan-out and the fuzz stage, so both
/// produce identical Failure records and reproducer files for the same
/// failing input.  `stem` names the archived trace files ("case-000123",
/// "fuzz-000042"); `shrink` gates the minimizer (the caller enforces
/// cfg.maxMinimized).
[[nodiscard]] Failure finalizeFailure(const CampaignConfig& cfg,
                                      std::uint64_t index,
                                      const CaseSpec& spec,
                                      const std::string& signature,
                                      const std::string& detailText,
                                      bool shrink, const std::string& stem);
}  // namespace detail

}  // namespace lcdc::campaign
