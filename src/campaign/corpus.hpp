// Persistent fuzz corpus: versioned on-disk CaseSpec entries.
//
// A corpus entry is one fully derived sub-run — system shape, network
// schedule family, and every program step — serialized as a line-oriented
// text file.  Entries are content-addressed (the filename embeds a hash of
// the serialization), so re-saving an input a later session rediscovers is
// a no-op and corpora from independent runs can be merged by copying files.
// Loading is strict: a corrupt file, an unknown format version, or an entry
// recorded for a different backend raises a clean SimError — never an
// invariant abort — because corpus directories outlive binaries and must be
// rejectable, not trusted.
//
// Mutants are deliberately NOT part of an entry: the fuzzer saves the
// *input* (workload + schedule), and whichever campaign replays it applies
// its own cfg.mutant.  That is what lets the time-to-detection harness
// grow one corpus on the pristine protocol and measure it against every
// seeded bug.
#pragma once

#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace lcdc::campaign {

/// Format version written to (and required in) every entry's header line.
inline constexpr int kCorpusVersion = 1;

/// Serialize one entry to its canonical text (mutant field omitted).
[[nodiscard]] std::string serializeEntry(const CaseSpec& spec);

/// Parse an entry; throws SimError on any malformed or version-mismatched
/// input.  The returned spec has mutant == None; callers apply their own.
[[nodiscard]] CaseSpec parseEntry(const std::string& text);

/// Content hash of the canonical serialization, as 16 hex digits — the
/// stable identity of an input across sessions and machines.
[[nodiscard]] std::string entryId(const CaseSpec& spec);

/// Write `spec` into `dir` as c-<id>.case (creating the directory if
/// needed).  Idempotent: an existing file with the same id is left alone.
/// Returns the file path.
std::string saveEntry(const CaseSpec& spec, const std::string& dir);

/// Load every *.case entry of `dir` in filename order (deterministic on
/// every filesystem).  Throws SimError naming the offending file on parse
/// errors; a missing directory yields an empty corpus.
[[nodiscard]] std::vector<CaseSpec> loadCorpus(const std::string& dir);

}  // namespace lcdc::campaign
