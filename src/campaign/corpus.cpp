#include "campaign/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/expect.hpp"

namespace lcdc::campaign {

namespace {

const char* modeName(net::Network::Mode m) {
  switch (m) {
    case net::Network::Mode::RandomLatency: return "random";
    case net::Network::Mode::Fifo: return "fifo";
    case net::Network::Mode::Pct: return "pct";
    case net::Network::Mode::Manual: break;
  }
  return nullptr;  // Manual schedules are not replayable from a corpus
}

net::Network::Mode modeFromName(const std::string& s) {
  if (s == "random") return net::Network::Mode::RandomLatency;
  if (s == "fifo") return net::Network::Mode::Fifo;
  if (s == "pct") return net::Network::Mode::Pct;
  throw SimError("corpus entry: unknown net mode '" + s + "'");
}

ProtocolKind protocolFromCorpusName(const std::string& s) {
  if (s == "dir") return ProtocolKind::Directory;
  if (s == "bus") return ProtocolKind::Bus;
  if (s == "tardis") return ProtocolKind::Tardis;
  throw SimError("corpus entry: unknown protocol '" + s + "'");
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Read one whitespace-delimited token, throwing (not aborting) on EOF.
std::string token(std::istringstream& in, const char* what) {
  std::string t;
  if (!(in >> t)) {
    throw SimError(std::string("corpus entry truncated: expected ") + what);
  }
  return t;
}

std::uint64_t number(std::istringstream& in, const char* what) {
  const std::string t = token(in, what);
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(t, &pos);
    if (pos != t.size()) throw std::invalid_argument(t);
    return v;
  } catch (const std::exception&) {
    throw SimError(std::string("corpus entry: bad number '") + t + "' for " +
                   what);
  }
}

}  // namespace

std::string serializeEntry(const CaseSpec& spec) {
  const char* mode = modeName(spec.netMode);
  LCDC_EXPECT(mode != nullptr, "manual-mode cases cannot enter the corpus");
  std::ostringstream os;
  os << "lcdc-corpus v" << kCorpusVersion << '\n';
  os << "protocol " << toString(spec.sys.protocol) << '\n';
  os << "net " << mode << '\n';
  os << "desc " << spec.description << '\n';
  const SystemConfig& s = spec.sys;
  os << "sys procs=" << static_cast<unsigned>(s.numProcessors)
     << " dirs=" << static_cast<unsigned>(s.numDirectories)
     << " blocks=" << s.numBlocks << " cap=" << s.cacheCapacity
     << " minlat=" << s.minLatency << " maxlat=" << s.maxLatency
     << " retry=" << s.retryDelay << " snoop=" << s.busSnoopDelayMax
     << " seed=" << s.seed << " sb=" << s.storeBufferDepth
     << " words=" << static_cast<unsigned>(s.proto.wordsPerBlock)
     << " ps=" << (s.proto.putSharedEnabled ? 1 : 0)
     << " lease=" << s.proto.leaseLength << '\n';
  for (const workload::Program& prog : spec.programs) {
    os << "prog " << prog.steps.size() << '\n';
    for (const workload::Step& st : prog.steps) {
      switch (st.kind) {
        case workload::StepKind::Load:
          os << "L " << st.block << ' ' << static_cast<unsigned>(st.word)
             << '\n';
          break;
        case workload::StepKind::Store:
          os << "S " << st.block << ' ' << static_cast<unsigned>(st.word)
             << ' ' << st.storeValue << '\n';
          break;
        case workload::StepKind::Evict:
          os << "E " << st.block << '\n';
          break;
        case workload::StepKind::PrefetchShared:
          os << "PS " << st.block << '\n';
          break;
        case workload::StepKind::PrefetchExclusive:
          os << "PX " << st.block << '\n';
          break;
      }
    }
  }
  os << "end\n";
  return os.str();
}

CaseSpec parseEntry(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  if (!std::getline(in, line)) throw SimError("corpus entry is empty");
  {
    std::istringstream hdr(line);
    std::string magic, version;
    hdr >> magic >> version;
    if (magic != "lcdc-corpus") {
      throw SimError("corpus entry: bad magic '" + magic + "'");
    }
    if (version != "v" + std::to_string(kCorpusVersion)) {
      throw SimError("corpus entry: unsupported format version '" + version +
                     "' (this build reads v" +
                     std::to_string(kCorpusVersion) + ")");
    }
  }

  CaseSpec spec;
  bool sawSys = false;
  bool sawEnd = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "protocol") {
      spec.sys.protocol = protocolFromCorpusName(token(ls, "protocol name"));
    } else if (key == "net") {
      spec.netMode = modeFromName(token(ls, "net mode"));
    } else if (key == "desc") {
      std::getline(ls, spec.description);
      if (!spec.description.empty() && spec.description.front() == ' ') {
        spec.description.erase(0, 1);
      }
    } else if (key == "sys") {
      std::string kv;
      while (ls >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) {
          throw SimError("corpus entry: bad sys field '" + kv + "'");
        }
        const std::string name = kv.substr(0, eq);
        std::istringstream vs(kv.substr(eq + 1));
        const std::uint64_t v = number(vs, name.c_str());
        if (name == "procs") {
          spec.sys.numProcessors = static_cast<NodeId>(v);
        } else if (name == "dirs") {
          spec.sys.numDirectories = static_cast<NodeId>(v);
        } else if (name == "blocks") {
          spec.sys.numBlocks = static_cast<BlockId>(v);
        } else if (name == "cap") {
          spec.sys.cacheCapacity = static_cast<std::uint32_t>(v);
        } else if (name == "minlat") {
          spec.sys.minLatency = v;
        } else if (name == "maxlat") {
          spec.sys.maxLatency = v;
        } else if (name == "retry") {
          spec.sys.retryDelay = v;
        } else if (name == "snoop") {
          spec.sys.busSnoopDelayMax = v;
        } else if (name == "seed") {
          spec.sys.seed = v;
        } else if (name == "sb") {
          spec.sys.storeBufferDepth = static_cast<std::uint32_t>(v);
        } else if (name == "words") {
          spec.sys.proto.wordsPerBlock = static_cast<WordIdx>(v);
        } else if (name == "ps") {
          spec.sys.proto.putSharedEnabled = v != 0;
        } else if (name == "lease") {
          spec.sys.proto.leaseLength = static_cast<std::uint32_t>(v);
        } else {
          throw SimError("corpus entry: unknown sys field '" + name + "'");
        }
      }
      sawSys = true;
    } else if (key == "prog") {
      const std::uint64_t n = number(ls, "program length");
      workload::Program prog;
      prog.steps.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        if (!std::getline(in, line)) {
          throw SimError("corpus entry truncated: expected a program step");
        }
        std::istringstream ss(line);
        const std::string op = token(ss, "step opcode");
        workload::Step st;
        if (op == "L") {
          st.kind = workload::StepKind::Load;
          st.block = static_cast<BlockId>(number(ss, "block"));
          st.word = static_cast<WordIdx>(number(ss, "word"));
        } else if (op == "S") {
          st.kind = workload::StepKind::Store;
          st.block = static_cast<BlockId>(number(ss, "block"));
          st.word = static_cast<WordIdx>(number(ss, "word"));
          st.storeValue = number(ss, "store value");
        } else if (op == "E") {
          st.kind = workload::StepKind::Evict;
          st.block = static_cast<BlockId>(number(ss, "block"));
        } else if (op == "PS") {
          st.kind = workload::StepKind::PrefetchShared;
          st.block = static_cast<BlockId>(number(ss, "block"));
        } else if (op == "PX") {
          st.kind = workload::StepKind::PrefetchExclusive;
          st.block = static_cast<BlockId>(number(ss, "block"));
        } else {
          throw SimError("corpus entry: unknown step opcode '" + op + "'");
        }
        prog.steps.push_back(st);
      }
      spec.programs.push_back(std::move(prog));
    } else if (key == "end") {
      sawEnd = true;
      break;
    } else {
      throw SimError("corpus entry: unknown line '" + key + "'");
    }
  }
  if (!sawSys) throw SimError("corpus entry has no sys line");
  if (!sawEnd) throw SimError("corpus entry truncated: missing end marker");
  if (spec.programs.size() != spec.sys.numProcessors) {
    throw SimError("corpus entry: program count does not match procs");
  }
  if (spec.sys.minLatency < 1 || spec.sys.minLatency > spec.sys.maxLatency) {
    throw SimError("corpus entry: invalid latency bounds");
  }
  return spec;
}

std::string entryId(const CaseSpec& spec) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0')
     << fnv1a(serializeEntry(spec));
  return os.str();
}

std::string saveEntry(const CaseSpec& spec, const std::string& dir) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const std::string text = serializeEntry(spec);
  std::ostringstream name;
  name << "c-" << std::hex << std::setw(16) << std::setfill('0')
       << fnv1a(text) << ".case";
  const std::string path = (fs::path(dir) / name.str()).string();
  if (fs::exists(path)) return path;  // content-addressed: already saved
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SimError("cannot write corpus entry: " + path);
  out << text;
  if (!out.good()) throw SimError("short write on corpus entry: " + path);
  return path;
}

std::vector<CaseSpec> loadCorpus(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<CaseSpec> corpus;
  if (dir.empty() || !fs::exists(dir)) return corpus;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".case") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  corpus.reserve(files.size());
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) throw SimError("cannot read corpus entry: " + p.string());
    std::ostringstream text;
    text << in.rdbuf();
    try {
      corpus.push_back(parseEntry(text.str()));
    } catch (const SimError& e) {
      throw SimError(p.string() + ": " + e.what());
    }
  }
  return corpus;
}

}  // namespace lcdc::campaign
