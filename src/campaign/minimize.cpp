#include "campaign/minimize.hpp"

#include <utility>
#include <vector>

namespace lcdc::campaign {

namespace {

/// Probe oracle: re-executes a candidate and accepts it only when the
/// failure signature is preserved exactly.  Owns the probe budget.
struct Probe {
  const MinimizeOptions& opts;
  const std::string& signature;
  std::uint64_t attempts = 0;

  [[nodiscard]] bool exhausted() const { return attempts >= opts.maxAttempts; }

  bool stillFails(const CaseSpec& candidate) {
    ++attempts;
    return runCase(candidate, opts.maxEventsPerRun).signature == signature;
  }
};

/// Flattened addresses of every program step, processor-major.
using FlatIndex = std::vector<std::pair<NodeId, std::size_t>>;

FlatIndex flatten(const CaseSpec& spec) {
  FlatIndex flat;
  flat.reserve(totalSteps(spec));
  for (std::size_t p = 0; p < spec.programs.size(); ++p) {
    for (std::size_t i = 0; i < spec.programs[p].steps.size(); ++i) {
      flat.emplace_back(static_cast<NodeId>(p), i);
    }
  }
  return flat;
}

/// Candidate with flattened positions [lo, hi) removed.
CaseSpec removeRange(const CaseSpec& base, const FlatIndex& flat,
                     std::size_t lo, std::size_t hi) {
  std::vector<std::vector<char>> drop(base.programs.size());
  for (std::size_t p = 0; p < base.programs.size(); ++p) {
    drop[p].assign(base.programs[p].steps.size(), 0);
  }
  for (std::size_t k = lo; k < hi; ++k) drop[flat[k].first][flat[k].second] = 1;

  CaseSpec cand;
  cand.sys = base.sys;
  cand.description = base.description;
  cand.programs.resize(base.programs.size());
  for (std::size_t p = 0; p < base.programs.size(); ++p) {
    auto& steps = cand.programs[p].steps;
    steps.reserve(base.programs[p].steps.size());
    for (std::size_t i = 0; i < base.programs[p].steps.size(); ++i) {
      if (!drop[p][i]) steps.push_back(base.programs[p].steps[i]);
    }
  }
  return cand;
}

/// Phase 1: ddmin's complement-removal loop over the operation list.
void ddminSteps(CaseSpec& current, Probe& probe) {
  FlatIndex flat = flatten(current);
  std::size_t chunks = 2;
  while (flat.size() >= 2 && !probe.exhausted()) {
    const std::size_t chunkSize = (flat.size() + chunks - 1) / chunks;
    bool reduced = false;
    for (std::size_t c = 0; c < chunks && !probe.exhausted(); ++c) {
      const std::size_t lo = c * chunkSize;
      const std::size_t hi = std::min(flat.size(), lo + chunkSize);
      if (lo >= hi) continue;
      CaseSpec candidate = removeRange(current, flat, lo, hi);
      if (probe.stillFails(candidate)) {
        current = std::move(candidate);
        flat = flatten(current);
        chunks = std::max<std::size_t>(chunks - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunkSize <= 1) break;  // finest granularity, nothing removable
      chunks = std::min(flat.size(), chunks * 2);
    }
  }
}

/// Phase 2: drop whole processors (surviving ids compact downwards — the
/// workload's store values stay globally unique because they are baked
/// into the steps).
void dropProcessors(CaseSpec& current, Probe& probe) {
  for (NodeId p = current.sys.numProcessors; p-- > 0;) {
    if (probe.exhausted() || current.sys.numProcessors <= 1) return;
    if (p >= current.sys.numProcessors) continue;
    CaseSpec candidate = current;
    candidate.programs.erase(candidate.programs.begin() +
                             static_cast<std::ptrdiff_t>(p));
    --candidate.sys.numProcessors;
    if (probe.stillFails(candidate)) current = std::move(candidate);
  }
}

/// Phase 3: shrink the adversarial latency spread and the retry pacing.
void tightenParameters(CaseSpec& current, Probe& probe) {
  if (current.sys.maxLatency > current.sys.minLatency && !probe.exhausted()) {
    CaseSpec uniform = current;
    uniform.sys.maxLatency = uniform.sys.minLatency;
    if (probe.stillFails(uniform)) {
      current = std::move(uniform);
    } else {
      // Binary-search the smallest maxLatency that still reproduces.
      std::uint64_t lo = current.sys.minLatency;
      std::uint64_t hi = current.sys.maxLatency;
      while (hi - lo > 1 && !probe.exhausted()) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        CaseSpec candidate = current;
        candidate.sys.maxLatency = mid;
        if (probe.stillFails(candidate)) {
          current = std::move(candidate);
          hi = mid;
        } else {
          lo = mid;
        }
      }
    }
  }
  while (current.sys.retryDelay > 1 && !probe.exhausted()) {
    CaseSpec candidate = current;
    candidate.sys.retryDelay /= 2;
    if (!probe.stillFails(candidate)) break;
    current = std::move(candidate);
  }
}

}  // namespace

std::size_t totalSteps(const CaseSpec& spec) {
  std::size_t n = 0;
  for (const auto& prog : spec.programs) n += prog.steps.size();
  return n;
}

MinimizeResult shrink(const CaseSpec& failing, const std::string& signature,
                      const MinimizeOptions& opts) {
  MinimizeResult result;
  result.signature = signature;
  result.stepsBefore = totalSteps(failing);
  result.procsBefore = failing.sys.numProcessors;

  Probe probe{opts, signature};
  if (!probe.stillFails(failing)) {
    // Caller's signature doesn't reproduce (stale spec?) — refuse to
    // shrink toward a different bug.
    result.spec = failing;
    result.stepsAfter = result.stepsBefore;
    result.procsAfter = result.procsBefore;
    result.attempts = probe.attempts;
    return result;
  }

  CaseSpec current = failing;
  ddminSteps(current, probe);
  dropProcessors(current, probe);
  // A smaller machine usually strands more operations; one more pass.
  ddminSteps(current, probe);
  tightenParameters(current, probe);

  current.description = failing.description + " [minimized]";
  result.attempts = probe.attempts;
  result.stepsAfter = totalSteps(current);
  result.procsAfter = current.sys.numProcessors;
  result.spec = std::move(current);
  return result;
}

}  // namespace lcdc::campaign
