// Coverage accounting for verification campaigns.
//
// The paper's case analysis (Section 2.3, Table 1) enumerates 14 distinct
// transactions — including the three NACK cases and the write-back races
// 13/14a/14b — plus the Section 2.5 extension behaviours (Put-Shared
// silent eviction, the Figure 2 deadlock resolution) and, in this
// reproduction, the TSO store-buffering rule.  A verification campaign is
// only convincing evidence if its schedules actually *reached* all of
// those paths; this module counts, per trace, how often each one fired.
//
// A Coverage is a plain array of counters: merging is associative and
// commutative, so the campaign aggregator can fold per-seed coverage in
// deterministic seed order regardless of which worker finished first.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "common/config.hpp"
#include "common/types.hpp"
#include "proto/observer.hpp"

namespace lcdc::trace {
class Trace;
}

namespace lcdc::campaign {

/// Every protocol path a campaign tracks.  The first kNumTransactionCases
/// entries are the paper's 14 transaction cases (14a/14b split, NACKs
/// numbered as in Section 2.3) — these define "full coverage" for
/// --until-coverage; the rest are extension paths reported alongside.
enum class Point : std::uint8_t {
  Txn1_GetS_Idle,
  Txn2_GetS_Shared,
  Txn3_GetS_Exclusive,
  Nack4_GetS_Busy,
  Txn5_GetX_Idle,
  Txn6_GetX_Shared,
  Txn7_GetX_Exclusive,
  Nack8_GetX_Busy,
  Txn9_Upg_Shared,
  Nack10_Upg_Exclusive,
  Nack11_Upg_Busy,
  Txn12_Wb_Exclusive,
  Txn13_Wb_BusyShared,
  Txn14a_Wb_BusyExclusive,
  Txn14b_Wb_BusyExclusiveSelf,
  // -- Section 2.5 extension paths ------------------------------------------
  PutShared,         ///< silent read-only eviction (never timestamped)
  DeadlockResolved,  ///< Figure 2 resolution by implicit acknowledgment
  // -- store-buffering rule (TSO extension) ----------------------------------
  ForwardedLoad,  ///< load served from the processor's own store buffer
  Count,
};

inline constexpr std::size_t kNumPoints =
    static_cast<std::size_t>(Point::Count);
inline constexpr std::size_t kNumTransactionCases = 15;

/// Short stable name ("1 get-shared/idle", "14b writeback/busy-excl-self",
/// "put-shared", ...) used in the campaign's coverage report.
[[nodiscard]] const char* toString(Point p);

/// Bitmask (bit i = transaction case i) of the cases protocol `k` can reach
/// at all.  The directory protocol reaches all 15; the bus serializes only
/// the four MSI command kinds (1, 5, 9, 12); Tardis has no writeback races
/// or upgrade NACKs (leases expire instead), leaving 10 reachable cases.
/// --until-coverage targets the backend's own reachable set, not the
/// directory's — a bus or Tardis campaign can genuinely complete.
[[nodiscard]] std::uint32_t reachableCaseMask(ProtocolKind k);
[[nodiscard]] std::size_t reachableCaseCount(ProtocolKind k);

struct Coverage {
  std::array<std::uint64_t, kNumPoints> counts{};
  /// Tardis lease traffic, filled from TardisStats after each sub-run
  /// (always zero on the directory and bus backends; the report prints
  /// these lines only when nonzero, so their output is unchanged).
  std::uint64_t leaseRenewals = 0;
  std::uint64_t leaseExpiries = 0;

  /// Tally every covered path of one recorded execution (complete or
  /// truncated — a deadlocked run's partial trace still counts).
  void record(const trace::Trace& trace);
  void merge(const Coverage& other);

  [[nodiscard]] std::uint64_t count(Point p) const {
    return counts[static_cast<std::size_t>(p)];
  }
  /// How many of the paper's transaction cases have fired at least once.
  [[nodiscard]] std::size_t transactionCasesCovered() const;
  [[nodiscard]] bool transactionCasesComplete() const {
    return transactionCasesCovered() == kNumTransactionCases;
  }
  /// Backend-aware variants: count/complete over `k`'s reachable case set.
  [[nodiscard]] std::size_t transactionCasesCovered(ProtocolKind k) const;
  [[nodiscard]] bool transactionCasesComplete(ProtocolKind k) const {
    return transactionCasesCovered(k) == reachableCaseCount(k);
  }

  /// Deterministic multi-line table of all points and counts.  Cases the
  /// backend cannot reach are printed as "n/a" rather than "MISS"; the
  /// directory report is byte-identical to the historical format.
  [[nodiscard]] std::string report(
      ProtocolKind k = ProtocolKind::Directory) const;
};

/// Online coverage: the same tally Coverage::record() computes from a
/// recorded trace, accumulated as a pipeline stage instead — the campaign's
/// streaming path needs no trace at all.  The one subtlety is write-back
/// conversion (cases 13/14a): the trace recorder rewrites the serialization
/// record in place, so batch counting sees post-conversion kinds; online we
/// observe the original onSerialize and rebucket on onTxnConverted, keeping
/// a bounded window of recent transaction kinds (conversions only ever hit
/// in-flight transactions, which are young).
class CoverageObserver final : public proto::ObserverAdapter {
 public:
  [[nodiscard]] const Coverage& coverage() const { return cov_; }
  /// Serializations observed (the campaign's txnsSerialized statistic).
  [[nodiscard]] std::uint64_t txnsSerialized() const { return serialized_; }

  void onSerialize(const proto::TxnInfo& txn) override;
  void onTxnConverted(TransactionId id, TxnKind newKind) override;
  void onOperation(const proto::OpRecord& op) override;
  void onNack(NodeId requester, BlockId block, NackKind kind) override;
  void onPutShared(NodeId node, BlockId block) override;
  void onDeadlockResolved(NodeId node, BlockId block,
                          NodeId impliedAcker) override;

 private:
  Coverage cov_;
  std::uint64_t serialized_ = 0;
  std::unordered_map<TransactionId, TxnKind> recentKinds_;
  std::deque<TransactionId> recentFifo_;  ///< eviction order, bounded
};

}  // namespace lcdc::campaign
