#include "campaign/coverage.hpp"

#include <sstream>

#include "common/types.hpp"
#include "trace/trace.hpp"

namespace lcdc::campaign {

namespace {

Point pointOf(TxnKind k) {
  switch (k) {
    case TxnKind::GetS_Idle: return Point::Txn1_GetS_Idle;
    case TxnKind::GetS_Shared: return Point::Txn2_GetS_Shared;
    case TxnKind::GetS_Exclusive: return Point::Txn3_GetS_Exclusive;
    case TxnKind::GetX_Idle: return Point::Txn5_GetX_Idle;
    case TxnKind::GetX_Shared: return Point::Txn6_GetX_Shared;
    case TxnKind::GetX_Exclusive: return Point::Txn7_GetX_Exclusive;
    case TxnKind::Upg_Shared: return Point::Txn9_Upg_Shared;
    case TxnKind::Wb_Exclusive: return Point::Txn12_Wb_Exclusive;
    case TxnKind::Wb_BusyShared: return Point::Txn13_Wb_BusyShared;
    case TxnKind::Wb_BusyExclusive: return Point::Txn14a_Wb_BusyExclusive;
    case TxnKind::Wb_BusyExclusiveSelf:
      return Point::Txn14b_Wb_BusyExclusiveSelf;
  }
  return Point::Count;
}

Point pointOf(NackKind k) {
  switch (k) {
    case NackKind::GetS_Busy: return Point::Nack4_GetS_Busy;
    case NackKind::GetX_Busy: return Point::Nack8_GetX_Busy;
    case NackKind::Upg_Exclusive: return Point::Nack10_Upg_Exclusive;
    case NackKind::Upg_Busy: return Point::Nack11_Upg_Busy;
  }
  return Point::Count;
}

/// Conversions can only target in-flight transactions, so a window this
/// deep always still holds the pre-conversion kind to rebucket from.
constexpr std::size_t kRecentKindsCap = 4096;

}  // namespace

const char* toString(Point p) {
  switch (p) {
    case Point::Txn1_GetS_Idle: return "1  get-shared/idle";
    case Point::Txn2_GetS_Shared: return "2  get-shared/shared";
    case Point::Txn3_GetS_Exclusive: return "3  get-shared/exclusive";
    case Point::Nack4_GetS_Busy: return "4  get-shared/busy (NACK)";
    case Point::Txn5_GetX_Idle: return "5  get-exclusive/idle";
    case Point::Txn6_GetX_Shared: return "6  get-exclusive/shared";
    case Point::Txn7_GetX_Exclusive: return "7  get-exclusive/exclusive";
    case Point::Nack8_GetX_Busy: return "8  get-exclusive/busy (NACK)";
    case Point::Txn9_Upg_Shared: return "9  upgrade/shared";
    case Point::Nack10_Upg_Exclusive: return "10 upgrade/exclusive (NACK)";
    case Point::Nack11_Upg_Busy: return "11 upgrade/busy (NACK)";
    case Point::Txn12_Wb_Exclusive: return "12 writeback/exclusive";
    case Point::Txn13_Wb_BusyShared: return "13 writeback/busy-shared";
    case Point::Txn14a_Wb_BusyExclusive: return "14a writeback/busy-excl";
    case Point::Txn14b_Wb_BusyExclusiveSelf:
      return "14b writeback/busy-excl-self";
    case Point::PutShared: return "put-shared (silent eviction)";
    case Point::DeadlockResolved: return "deadlock resolved (Figure 2)";
    case Point::ForwardedLoad: return "forwarded load (store buffer)";
    case Point::Count: break;
  }
  return "?";
}

void Coverage::record(const trace::Trace& trace) {
  const auto bump = [this](Point p) {
    if (p != Point::Count) ++counts[static_cast<std::size_t>(p)];
  };
  // Serialization records carry post-conversion kinds, so a writeback that
  // merged into a busy transaction (13/14a) is counted as the race it
  // became, exactly as the paper numbers it.
  for (const auto& s : trace.serializations()) bump(pointOf(s.txn.kind));
  for (const auto& n : trace.nacks()) bump(pointOf(n.kind));
  counts[static_cast<std::size_t>(Point::PutShared)] +=
      trace.putShareds().size();
  counts[static_cast<std::size_t>(Point::DeadlockResolved)] +=
      trace.deadlockResolutions().size();
  for (const auto& op : trace.operations()) {
    if (op.forwarded) bump(Point::ForwardedLoad);
  }
}

void Coverage::merge(const Coverage& other) {
  for (std::size_t i = 0; i < kNumPoints; ++i) counts[i] += other.counts[i];
  leaseRenewals += other.leaseRenewals;
  leaseExpiries += other.leaseExpiries;
}

std::uint32_t reachableCaseMask(ProtocolKind k) {
  constexpr auto bit = [](Point p) {
    return std::uint32_t{1} << static_cast<std::uint32_t>(p);
  };
  switch (k) {
    case ProtocolKind::Bus:
      // The arbiter serializes exactly four command kinds (kindOf in
      // bus_system.cpp); there are no NACKs and no writeback races — a
      // stale BusWB dies at the arbiter without serializing.
      return bit(Point::Txn1_GetS_Idle) | bit(Point::Txn5_GetX_Idle) |
             bit(Point::Txn9_Upg_Shared) | bit(Point::Txn12_Wb_Exclusive);
    case ProtocolKind::Tardis:
      // Tardis serializes cases 1-3/5-7/9/12 plus the two Busy NACKs; the
      // upgrade NACKs (10/11) and writeback races (13/14) cannot occur —
      // shared copies expire by lease instead of being tracked.
      return bit(Point::Txn1_GetS_Idle) | bit(Point::Txn2_GetS_Shared) |
             bit(Point::Txn3_GetS_Exclusive) | bit(Point::Nack4_GetS_Busy) |
             bit(Point::Txn5_GetX_Idle) | bit(Point::Txn6_GetX_Shared) |
             bit(Point::Txn7_GetX_Exclusive) | bit(Point::Nack8_GetX_Busy) |
             bit(Point::Txn9_Upg_Shared) | bit(Point::Txn12_Wb_Exclusive);
    case ProtocolKind::Directory:
      break;
  }
  return (std::uint32_t{1} << kNumTransactionCases) - 1;
}

std::size_t reachableCaseCount(ProtocolKind k) {
  std::uint32_t mask = reachableCaseMask(k);
  std::size_t n = 0;
  for (; mask != 0; mask &= mask - 1) ++n;
  return n;
}

std::size_t Coverage::transactionCasesCovered() const {
  std::size_t covered = 0;
  for (std::size_t i = 0; i < kNumTransactionCases; ++i) {
    if (counts[i] > 0) ++covered;
  }
  return covered;
}

std::size_t Coverage::transactionCasesCovered(ProtocolKind k) const {
  const std::uint32_t mask = reachableCaseMask(k);
  std::size_t covered = 0;
  for (std::size_t i = 0; i < kNumTransactionCases; ++i) {
    if ((mask & (std::uint32_t{1} << i)) != 0 && counts[i] > 0) ++covered;
  }
  return covered;
}

void CoverageObserver::onSerialize(const proto::TxnInfo& txn) {
  ++serialized_;
  const Point p = pointOf(txn.kind);
  if (p != Point::Count) ++cov_.counts[static_cast<std::size_t>(p)];
  recentKinds_[txn.id] = txn.kind;
  recentFifo_.push_back(txn.id);
  while (recentFifo_.size() > kRecentKindsCap) {
    recentKinds_.erase(recentFifo_.front());
    recentFifo_.pop_front();
  }
}

void CoverageObserver::onTxnConverted(TransactionId id, TxnKind newKind) {
  const auto it = recentKinds_.find(id);
  if (it == recentKinds_.end()) return;  // evicted: keep the original bucket
  const Point oldP = pointOf(it->second);
  const Point newP = pointOf(newKind);
  if (oldP != Point::Count && cov_.counts[static_cast<std::size_t>(oldP)] > 0) {
    --cov_.counts[static_cast<std::size_t>(oldP)];
  }
  if (newP != Point::Count) ++cov_.counts[static_cast<std::size_t>(newP)];
  it->second = newKind;
}

void CoverageObserver::onOperation(const proto::OpRecord& op) {
  if (op.forwarded) {
    ++cov_.counts[static_cast<std::size_t>(Point::ForwardedLoad)];
  }
}

void CoverageObserver::onNack(NodeId, BlockId, NackKind kind) {
  const Point p = pointOf(kind);
  if (p != Point::Count) ++cov_.counts[static_cast<std::size_t>(p)];
}

void CoverageObserver::onPutShared(NodeId, BlockId) {
  ++cov_.counts[static_cast<std::size_t>(Point::PutShared)];
}

void CoverageObserver::onDeadlockResolved(NodeId, BlockId, NodeId) {
  ++cov_.counts[static_cast<std::size_t>(Point::DeadlockResolved)];
}

std::string Coverage::report(ProtocolKind k) const {
  const std::uint32_t mask = reachableCaseMask(k);
  std::ostringstream os;
  os << "transaction-case coverage: " << transactionCasesCovered(k) << "/"
     << reachableCaseCount(k);
  if (k != ProtocolKind::Directory) os << " (" << toString(k) << "-reachable)";
  os << '\n';
  for (std::size_t i = 0; i < kNumPoints; ++i) {
    if (i == kNumTransactionCases) os << "extension paths:\n";
    const bool reachable =
        i >= kNumTransactionCases || (mask & (std::uint32_t{1} << i)) != 0;
    os << "  " << (counts[i] > 0 ? "hit " : (reachable ? "MISS" : "n/a "))
       << "  " << toString(static_cast<Point>(i)) << "  " << counts[i] << '\n';
  }
  if (leaseRenewals != 0 || leaseExpiries != 0) {
    os << "tardis leases:\n"
       << "  renewals  " << leaseRenewals << '\n'
       << "  expiries  " << leaseExpiries << '\n';
  }
  return os.str();
}

}  // namespace lcdc::campaign
