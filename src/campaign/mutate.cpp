#include "campaign/mutate.hpp"

#include <algorithm>
#include <sstream>

#include "common/expect.hpp"

namespace lcdc::campaign {

namespace {

/// Renumber every store value in program order.  Structural operators copy,
/// drop and duplicate steps freely; this pass restores the global-uniqueness
/// contract (value -> producing store is a bijection) the SC replay needs.
void renumberStores(std::vector<workload::Program>& programs) {
  for (NodeId p = 0; p < programs.size(); ++p) {
    std::uint64_t seq = 0;
    for (workload::Step& st : programs[p].steps) {
      if (st.kind == workload::StepKind::Store) {
        st.storeValue = workload::makeStoreValue(p, seq++);
      }
    }
  }
}

/// Pick a random nonempty [begin, len) range of `prog`, at most a quarter of
/// it (rounded up), so one operator nudges rather than rewrites.
bool pickRange(const workload::Program& prog, Rng& rng, std::size_t& begin,
               std::size_t& len) {
  const std::size_t n = prog.steps.size();
  if (n == 0) return false;
  const std::size_t maxLen = std::max<std::size_t>(1, n / 4);
  len = static_cast<std::size_t>(rng.uniform(1, maxLen));
  begin = static_cast<std::size_t>(rng.uniform(0, n - 1));
  len = std::min(len, n - begin);
  return true;
}

enum class Op : std::uint8_t {
  Reseed,
  Latency,
  ModeFlip,
  DropRange,
  DupRange,
  Splice,
  Retarget,
  EvictBurst,
  ShapeJiggle,
  Count,
};

const char* opName(Op op) {
  switch (op) {
    case Op::Reseed: return "seed";
    case Op::Latency: return "lat";
    case Op::ModeFlip: return "mode";
    case Op::DropRange: return "drop";
    case Op::DupRange: return "dup";
    case Op::Splice: return "splice";
    case Op::Retarget: return "hot";
    case Op::EvictBurst: return "evict";
    case Op::ShapeJiggle: return "shape";
    case Op::Count: break;
  }
  return "?";
}

/// Apply one operator; returns false when it could not apply (empty
/// program, disallowed flip...) so the caller draws another.
bool applyOp(const MutationConfig& cfg, Op op, Rng& rng, CaseSpec& spec,
             bool& structural) {
  const NodeId procs = spec.sys.numProcessors;
  switch (op) {
    case Op::Reseed:
      spec.sys.seed = rng();
      return true;
    case Op::Latency:
      spec.sys.maxLatency =
          std::max<std::uint64_t>(spec.sys.minLatency, rng.uniform(2, 64));
      spec.sys.retryDelay = rng.uniform(2, 16);
      if (spec.sys.protocol == ProtocolKind::Bus) {
        spec.sys.busSnoopDelayMax = rng.uniform(2, 32);
      }
      return true;
    case Op::ModeFlip: {
      if (!cfg.allowModeFlips || spec.sys.protocol == ProtocolKind::Bus) {
        return false;
      }
      const std::uint64_t roll = rng.uniform(0, 9);
      spec.netMode = roll < 5 ? net::Network::Mode::Pct
                     : roll < 8 ? net::Network::Mode::RandomLatency
                                : net::Network::Mode::Fifo;
      return true;
    }
    case Op::DropRange: {
      workload::Program& prog =
          spec.programs[rng.uniform(0, procs - 1)];
      std::size_t begin = 0, len = 0;
      if (!pickRange(prog, rng, begin, len)) return false;
      prog.steps.erase(
          prog.steps.begin() + static_cast<std::ptrdiff_t>(begin),
          prog.steps.begin() + static_cast<std::ptrdiff_t>(begin + len));
      structural = true;
      return true;
    }
    case Op::DupRange: {
      workload::Program& prog =
          spec.programs[rng.uniform(0, procs - 1)];
      std::size_t begin = 0, len = 0;
      if (!pickRange(prog, rng, begin, len)) return false;
      if (prog.steps.size() + len > cfg.maxStepsPerProgram) return false;
      std::vector<workload::Step> copy(
          prog.steps.begin() + static_cast<std::ptrdiff_t>(begin),
          prog.steps.begin() + static_cast<std::ptrdiff_t>(begin + len));
      prog.steps.insert(
          prog.steps.begin() + static_cast<std::ptrdiff_t>(begin + len),
          copy.begin(), copy.end());
      structural = true;
      return true;
    }
    case Op::Splice: {
      if (procs < 2) return false;
      const NodeId from = static_cast<NodeId>(rng.uniform(0, procs - 1));
      NodeId to = static_cast<NodeId>(rng.uniform(0, procs - 2));
      if (to >= from) ++to;
      std::size_t begin = 0, len = 0;
      if (!pickRange(spec.programs[from], rng, begin, len)) return false;
      workload::Program& dst = spec.programs[to];
      if (dst.steps.size() + len > cfg.maxStepsPerProgram) return false;
      const std::size_t at = dst.steps.empty()
                                 ? 0
                                 : static_cast<std::size_t>(rng.uniform(
                                       0, dst.steps.size()));
      const std::vector<workload::Step> copy(
          spec.programs[from].steps.begin() +
              static_cast<std::ptrdiff_t>(begin),
          spec.programs[from].steps.begin() +
              static_cast<std::ptrdiff_t>(begin + len));
      dst.steps.insert(dst.steps.begin() + static_cast<std::ptrdiff_t>(at),
                       copy.begin(), copy.end());
      structural = true;
      return true;
    }
    case Op::Retarget: {
      workload::Program& prog =
          spec.programs[rng.uniform(0, procs - 1)];
      std::size_t begin = 0, len = 0;
      if (!pickRange(prog, rng, begin, len)) return false;
      const BlockId hot =
          static_cast<BlockId>(rng.uniform(0, spec.sys.numBlocks - 1));
      for (std::size_t i = begin; i < begin + len; ++i) {
        prog.steps[i].block = hot;
        if (spec.sys.proto.wordsPerBlock > 0) {
          prog.steps[i].word = static_cast<WordIdx>(
              rng.uniform(0, spec.sys.proto.wordsPerBlock - 1));
        }
      }
      structural = true;  // retargeted stores collide; renumber for safety
      return true;
    }
    case Op::EvictBurst: {
      workload::Program& prog =
          spec.programs[rng.uniform(0, procs - 1)];
      if (prog.steps.size() + 4 > cfg.maxStepsPerProgram) return false;
      const BlockId b =
          static_cast<BlockId>(rng.uniform(0, spec.sys.numBlocks - 1));
      const std::size_t k = static_cast<std::size_t>(rng.uniform(1, 4));
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t at =
            prog.steps.empty()
                ? 0
                : static_cast<std::size_t>(rng.uniform(0, prog.steps.size()));
        prog.steps.insert(prog.steps.begin() + static_cast<std::ptrdiff_t>(at),
                          workload::evict(b));
      }
      structural = true;
      return true;
    }
    case Op::ShapeJiggle:
      spec.sys.cacheCapacity =
          rng.chance(70, 100)
              ? static_cast<std::uint32_t>(rng.uniform(2, 4))
              : 0;
      if (spec.sys.protocol == ProtocolKind::Tardis) {
        spec.sys.proto.leaseLength =
            static_cast<std::uint32_t>(rng.uniform(2, 48));
      }
      return true;
    case Op::Count:
      break;
  }
  return false;
}

}  // namespace

Swarm sampleSwarm(const MutationConfig& cfg, Rng& rng) {
  Swarm swarm;
  // Every family relevant to the backend, then keep a random nonempty
  // subset — the "swarm" restriction.
  common::SmallVector<workload::Kind, 8> all;
  all.push_back(workload::Kind::Hot);
  all.push_back(workload::Kind::Migratory);
  all.push_back(workload::Kind::Uniform);
  all.push_back(workload::Kind::FalseShare);
  all.push_back(workload::Kind::ProdCons);
  all.push_back(workload::Kind::ReadMostly);
  if (cfg.protocol == ProtocolKind::Tardis) {
    all.push_back(workload::Kind::LeaseChurn);
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (rng.chance(40, 100)) swarm.kinds.push_back(all[i]);
  }
  if (swarm.kinds.empty()) {
    swarm.kinds.push_back(all[rng.uniform(0, all.size() - 1)]);
  }
  // A narrow latency band per swarm: one wave probes tight races, the next
  // long overtake windows.
  swarm.latLo = rng.uniform(2, 24);
  swarm.latHi = swarm.latLo + rng.uniform(4, 40);
  if (cfg.allowModeFlips && cfg.protocol != ProtocolKind::Bus) {
    swarm.pctPermille = static_cast<std::uint32_t>(rng.uniform(100, 700));
    swarm.fifoPermille = static_cast<std::uint32_t>(rng.uniform(0, 100));
  } else {
    swarm.pctPermille = 0;
    swarm.fifoPermille = 0;
  }
  return swarm;
}

void swarmDeriveInto(const MutationConfig& cfg, const CampaignConfig& campaign,
                     const Swarm& swarm, Rng& rng, CaseSpec& out) {
  // Same shape space as deriveCaseInto, but the family, latency band and
  // network mode come from the swarm's restricted subspace.
  CampaignConfig derived = campaign;
  derived.workload =
      swarm.kinds[rng.uniform(0, swarm.kinds.size() - 1)];
  derived.masterSeed = rng();
  deriveCaseInto(derived, 0, out);
  out.sys.maxLatency = std::max<std::uint64_t>(
      out.sys.minLatency, rng.uniform(swarm.latLo, swarm.latHi));
  const std::uint64_t roll = rng.uniform(0, 999);
  if (roll < swarm.pctPermille) {
    out.netMode = net::Network::Mode::Pct;
  } else if (roll < swarm.pctPermille + swarm.fifoPermille) {
    out.netMode = net::Network::Mode::Fifo;
  } else {
    out.netMode = net::Network::Mode::RandomLatency;
  }
}

void mutateInto(const MutationConfig& cfg, const CaseSpec& parent, Rng& rng,
                CaseSpec& out) {
  out = parent;
  // Strip any previous operator tag so descriptions don't grow unboundedly
  // across generations.
  const auto tag = out.description.find(" ~");
  if (tag != std::string::npos) out.description.resize(tag);

  const std::uint32_t ops =
      static_cast<std::uint32_t>(rng.uniform(1, std::max(1u, cfg.maxOps)));
  bool structural = false;
  std::ostringstream applied;
  std::uint32_t done = 0;
  // A bounded number of draws: operators can decline (empty program, bus
  // restrictions), so cap attempts rather than loop forever.
  for (std::uint32_t attempt = 0; attempt < ops * 8 && done < ops;
       ++attempt) {
    const Op op = static_cast<Op>(
        rng.uniform(0, static_cast<std::uint64_t>(Op::Count) - 1));
    if (applyOp(cfg, op, rng, out, structural)) {
      applied << (done == 0 ? " ~" : ",") << opName(op);
      ++done;
    }
  }
  if (done == 0) {
    // Degenerate parent (e.g. all programs empty): at least reseed.
    out.sys.seed = rng();
    applied << " ~seed";
  }
  if (structural) renumberStores(out.programs);
  out.description += applied.str();
}

}  // namespace lcdc::campaign
