#include "campaign/campaign.hpp"

#include <chrono>
#include <filesystem>
#include <iomanip>
#include <memory>
#include <sstream>

#include "backend/backend.hpp"
#include "campaign/fuzz.hpp"
#include "campaign/minimize.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"
#include "mc/model_checker.hpp"
#include "net/schedule_probe.hpp"
#include "proto/observer.hpp"
#include "sim/system.hpp"
#include "tardis/tardis_system.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "verify/checkers.hpp"
#include "verify/stream.hpp"

namespace lcdc::campaign {

namespace {

workload::Kind pickKind(Rng& rng) {
  // Weighted toward the contended families: the rare cases (the write-back
  // races 13/14a/14b, upgrade NACKs) only fire under hot-block pressure
  // with capacity evictions.
  const std::uint64_t roll = rng.uniform(0, 99);
  if (roll < 40) return workload::Kind::Hot;
  if (roll < 55) return workload::Kind::Migratory;
  if (roll < 70) return workload::Kind::Uniform;
  if (roll < 80) return workload::Kind::FalseShare;
  if (roll < 90) return workload::Kind::ProdCons;
  return workload::Kind::ReadMostly;
}

workload::Kind pickKindTardis(Rng& rng) {
  // The tardis rotation leads with the lease-churn family (expiry/renewal
  // is the protocol's interesting regime) and keeps the contended
  // directory families for the exclusive-above-lease paths.
  const std::uint64_t roll = rng.uniform(0, 99);
  if (roll < 30) return workload::Kind::LeaseChurn;
  if (roll < 50) return workload::Kind::Hot;
  if (roll < 65) return workload::Kind::Migratory;
  if (roll < 75) return workload::Kind::Uniform;
  if (roll < 85) return workload::Kind::FalseShare;
  if (roll < 95) return workload::Kind::ProdCons;
  return workload::Kind::ReadMostly;
}

}  // namespace

CaseSpec deriveCase(const CampaignConfig& cfg, std::uint64_t index) {
  CaseSpec spec;
  deriveCaseInto(cfg, index, spec);
  return spec;
}

void deriveCaseInto(const CampaignConfig& cfg, std::uint64_t index,
                    CaseSpec& out) {
  // All shape decisions flow from the derived child seed — never from
  // thread identity or global state — so case `index` is reproducible in
  // isolation (the minimizer and the CLI's repro instructions rely on it).
  const std::uint64_t caseSeed = workload::deriveSeed(cfg.masterSeed, index);
  Rng rng(caseSeed);

  SystemConfig sys;
  sys.numProcessors = static_cast<NodeId>(rng.uniform(3, 8));
  sys.numDirectories = static_cast<NodeId>(
      rng.uniform(1, std::max<std::uint64_t>(2, sys.numProcessors / 2)));
  sys.numBlocks = static_cast<BlockId>(rng.uniform(4, 16));
  // Capacity pressure most of the time: evictions under contention are
  // what reach transactions 12/13/14a/14b.
  sys.cacheCapacity =
      rng.chance(70, 100) ? static_cast<std::uint32_t>(rng.uniform(2, 4)) : 0;
  sys.minLatency = 1;
  sys.maxLatency = rng.uniform(8, 48);
  sys.retryDelay = rng.uniform(4, 12);
  sys.proto.mutant = cfg.mutant;
  // The deadlock-detection mutant is only reachable through the Section
  // 2.5 extension, so keep it always-on for that mutant.
  sys.proto.putSharedEnabled =
      cfg.mutant == Mutant::NoDeadlockDetection || rng.chance(85, 100);
  sys.storeBufferDepth =
      rng.chance(15, 100) ? static_cast<std::uint32_t>(rng.uniform(2, 4)) : 0;
  if (cfg.protocol == ProtocolKind::Tardis) {
    sys.protocol = ProtocolKind::Tardis;
    // Tardis has no store buffer (the draw above stays, keeping this one
    // derivation path, but the depth is pinned to zero), and its lease
    // length is part of the explored shape: small values force the
    // expiry/renewal regime, large ones the invalidation-free steady state.
    sys.storeBufferDepth = 0;
    sys.proto.leaseLength = static_cast<std::uint32_t>(rng.uniform(2, 48));
  }
  if (cfg.protocol == ProtocolKind::Bus) {
    sys.protocol = ProtocolKind::Bus;
    // The bus supports neither TSO nor point-to-point latency; its explored
    // schedule dimension is the per-node snoop-processing delay instead.
    sys.storeBufferDepth = 0;
    sys.busSnoopDelayMax = rng.uniform(4, 24);
  }
  sys.seed = rng();

  workload::WorkloadConfig w;
  w.numProcessors = sys.numProcessors;
  w.numBlocks = sys.numBlocks;
  w.wordsPerBlock = sys.proto.wordsPerBlock;
  w.opsPerProcessor = rng.uniform(250, 700);
  w.storePercent = static_cast<std::uint32_t>(rng.uniform(25, 60));
  w.evictPercent = static_cast<std::uint32_t>(rng.uniform(4, 16));
  w.seed = rng();

  const workload::Kind kind =
      cfg.workload ? *cfg.workload
                   : (cfg.protocol == ProtocolKind::Tardis
                          ? pickKindTardis(rng)
                          : pickKind(rng));
  workload::makeInto(kind, w, out.programs);
  bool prefetch = false;
  if (rng.chance(20, 100)) {
    prefetch = true;
    out.programs = workload::addPrefetchHints(
        std::move(out.programs), /*lookahead=*/8,
        static_cast<std::uint32_t>(rng.uniform(10, 30)), rng());
  }

  out.sys = sys;
  std::ostringstream desc;
  desc << workload::toString(kind) << " procs=" << sys.numProcessors
       << " dirs=" << sys.numDirectories << " blocks=" << sys.numBlocks
       << " cap=" << sys.cacheCapacity << " lat=[" << sys.minLatency << ","
       << sys.maxLatency << "]" << " retry=" << sys.retryDelay
       << " ops=" << w.opsPerProcessor << " st%=" << w.storePercent
       << " ev%=" << w.evictPercent
       << " ps=" << (sys.proto.putSharedEnabled ? 1 : 0)
       << " sb=" << sys.storeBufferDepth << " pf=" << (prefetch ? 1 : 0);
  if (sys.protocol == ProtocolKind::Tardis) {
    desc << " lease=" << sys.proto.leaseLength;
  }
  if (sys.protocol == ProtocolKind::Bus) {
    desc << " snoop=" << sys.busSnoopDelayMax;
  }
  out.description = desc.str();
  out.netMode = net::Network::Mode::RandomLatency;
}

namespace {

std::string outcomeSignature(const sim::RunResult& result) {
  switch (result.outcome) {
    case sim::RunResult::Outcome::Deadlock: return "outcome:deadlock";
    case sim::RunResult::Outcome::Livelock: return "outcome:livelock";
    default: return "outcome:budget";
  }
}

/// Per-worker persistent engine: one System + one streaming checker set
/// per thread, rewound between sub-runs (System::reset /
/// StreamCheckerSet::reset) instead of reconstructed, so arena slabs,
/// pool free lists and container capacity are paid for once per thread
/// and the steady-state loop stays off the heap.  Reset-then-run is
/// byte-identical to construct-then-run (reset_reuse_test pins the
/// fingerprints), so outcomes stay a pure function of (masterSeed, index)
/// and the report stays byte-identical for any --jobs.
struct WorkerEngine {
  proto::TeeSink tee;  ///< re-wired per sub-run; Systems bind to it once
  std::optional<verify::StreamCheckerSet> checkers;
  std::optional<sim::System> system;
  SystemConfig shape;  ///< the configuration `system` was built with
  net::Network::Mode systemMode = net::Network::Mode::RandomLatency;
  std::optional<tardis::TardisSystem> tardisSystem;
  SystemConfig tardisShape;
  net::Network::Mode tardisMode = net::Network::Mode::RandomLatency;
  /// Bus runs construct fresh (no in-place reset on that backend); the slot
  /// only reuses the allocation across cases.
  std::unique_ptr<proto::BackendSystem> busSystem;
  /// Schedule-shape probe, attached to the case's network when the caller
  /// asked runCase to probe (the fuzzer's novelty features).
  net::ScheduleProbe probe;
  bool probeRequested = false;
};

WorkerEngine& workerEngine() {
  thread_local WorkerEngine engine;
  return engine;
}

/// True when the configurations differ at most in seed — the distance
/// System::reset can rewind across without reconstruction.
bool resettableTo(const SystemConfig& a, const SystemConfig& b) {
  return a.numProcessors == b.numProcessors &&
         a.numDirectories == b.numDirectories &&
         a.numBlocks == b.numBlocks && a.cacheCapacity == b.cacheCapacity &&
         a.minLatency == b.minLatency && a.maxLatency == b.maxLatency &&
         a.retryDelay == b.retryDelay &&
         a.storeBufferDepth == b.storeBufferDepth &&
         a.proto.wordsPerBlock == b.proto.wordsPerBlock &&
         a.proto.putSharedEnabled == b.proto.putSharedEnabled &&
         a.proto.mutant == b.proto.mutant &&
         a.proto.leaseLength == b.proto.leaseLength;
}

/// Acquire a retained per-worker system (sim::System or
/// tardis::TardisSystem — both expose the same reset/run surface).  A
/// network-mode switch forces reconstruction: the mode is baked into the
/// Network at construction and reset() keeps it.
template <class Sys>
Sys& acquireSystem(std::optional<Sys>& slot, SystemConfig& shape,
                   net::Network::Mode& shapeMode, proto::TeeSink& tee,
                   const SystemConfig& sys, net::Network::Mode mode) {
  if (slot && shapeMode == mode && resettableTo(shape, sys)) {
    slot->reset(sys.seed);
  } else {
    slot.emplace(sys, tee, mode);
    shape = sys;
    shapeMode = mode;
  }
  return *slot;
}

/// Run the prepared system and fill the timing/queue counters.
template <class Sys>
RunResult timedRun(Sys& system, std::uint64_t maxEvents, CaseOutcome& out) {
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult result = system.run(maxEvents);
  const auto nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  out.perf.note(result.eventsProcessed, result.opsBound, nanos,
                system.network().queueStats());
  return result;
}

/// Set programs, run, and harvest the backend-specific counters.  The two
/// runCase paths share this so streaming and recorded outcomes cannot
/// diverge in anything but how the events are observed.
RunResult executeCase(WorkerEngine& eng, const CaseSpec& spec,
                      std::uint64_t maxEvents, CaseOutcome& out) {
  if (spec.sys.protocol == ProtocolKind::Bus) {
    // No in-place reset on the bus backend: construct fresh per case.  The
    // adapter rejects unsupported shapes (TSO, foreign mutants) itself.
    eng.busSystem = proto::backendFor(ProtocolKind::Bus)
                        .makeSystem(spec.sys, eng.tee);
    for (NodeId p = 0; p < spec.sys.numProcessors; ++p) {
      eng.busSystem->setProgram(p, spec.programs[p]);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult result = eng.busSystem->run(maxEvents);
    const auto nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    out.perf.note(result.eventsProcessed, result.opsBound, nanos,
                  net::CalendarStats{});
    return result;
  }
  if (spec.sys.protocol == ProtocolKind::Tardis) {
    tardis::TardisSystem& system =
        acquireSystem(eng.tardisSystem, eng.tardisShape, eng.tardisMode,
                      eng.tee, spec.sys, spec.netMode);
    if (eng.probeRequested) {
      eng.probe.reset();
      system.network().setProbe(&eng.probe);
    }
    for (NodeId p = 0; p < spec.sys.numProcessors; ++p) {
      system.setProgram(p, spec.programs[p]);
    }
    return timedRun(system, maxEvents, out);
  }
  sim::System& system = acquireSystem(eng.system, eng.shape, eng.systemMode,
                                      eng.tee, spec.sys, spec.netMode);
  if (eng.probeRequested) {
    eng.probe.reset();
    system.network().setProbe(&eng.probe);
  }
  for (NodeId p = 0; p < spec.sys.numProcessors; ++p) {
    system.setProgram(p, spec.programs[p]);
  }
  return timedRun(system, maxEvents, out);
}

/// Copy the probe's schedule features into the outcome (zeros when the
/// probe was not requested or the backend has no network).
void harvestProbe(WorkerEngine& eng, const CaseSpec& spec, CaseOutcome& out) {
  if (!eng.probeRequested || spec.sys.protocol == ProtocolKind::Bus) return;
  out.maxReorderDepth = eng.probe.maxReorderDepth;
  out.maxBlockContention = eng.probe.maxBlockContention;
  out.interleaveBits = eng.probe.interleaveBits;
}

/// Fold the run's lease statistics into the outcome's coverage.  Called
/// after the coverage tally is assigned (it would be overwritten earlier),
/// including on the invariant-abort path, where the half-run's counters
/// are still meaningful.
void harvestLeaseStats(const WorkerEngine& eng, const CaseSpec& spec,
                       CaseOutcome& out) {
  if (spec.sys.protocol != ProtocolKind::Tardis || !eng.tardisSystem) return;
  out.coverage.leaseRenewals += eng.tardisSystem->stats().leaseRenewals;
  out.coverage.leaseExpiries += eng.tardisSystem->stats().leaseExpiries;
}

/// The streaming path: the checkers and the coverage tally observe the run
/// online through a TeeSink; nothing is recorded unless the caller asked
/// for a trace.  Per-run memory is the checkers' bounded state, not the
/// event count.
CaseOutcome runCaseStreaming(const CaseSpec& spec, std::uint64_t maxEvents,
                             trace::Trace* traceOut, bool probeSchedule) {
  WorkerEngine& eng = workerEngine();
  eng.probeRequested = probeSchedule;
  CoverageObserver cov;
  const verify::VerifyConfig vc = proto::verifyConfigFor(spec.sys);
  if (eng.checkers) {
    eng.checkers->reset(vc);
  } else {
    eng.checkers.emplace(vc);
  }
  verify::StreamCheckerSet& checkers = *eng.checkers;
  eng.tee.clear();
  if (traceOut) {
    traceOut->clear();
    eng.tee.attach(*traceOut);
  }
  eng.tee.attach(cov);
  eng.tee.attach(checkers);

  CaseOutcome out;
  try {
    const RunResult result = executeCase(eng, spec, maxEvents, out);
    out.opsBound = result.opsBound;
    out.txnsSerialized = cov.txnsSerialized();
    out.coverage = cov.coverage();
    harvestLeaseStats(eng, spec, out);
    harvestProbe(eng, spec, out);
    if (!result.ok()) {
      out.signature = outcomeSignature(result);
      out.detail = result.detail;
      return out;
    }
  } catch (const ProtocolError& e) {
    // An Appendix-B "impossible case" invariant fired inside the protocol
    // core.  The events observed so far still contribute coverage; the
    // next sub-run's reset rewinds the half-finished machine (every
    // component reset is unconditional, so a mid-flight abort leaves
    // nothing behind).
    out.txnsSerialized = cov.txnsSerialized();
    out.coverage = cov.coverage();
    harvestLeaseStats(eng, spec, out);
    harvestProbe(eng, spec, out);
    out.signature = "invariant";
    out.detail = e.what();
    return out;
  }

  checkers.finish();
  const verify::CheckReport report = checkers.report();
  out.checkerFirings = report.countsByCheck();
  if (!report.ok()) {
    out.signature = "checker:" + report.primaryCheck();
    out.detail = report.violations.front().detail;
  }
  return out;
}

/// The recorded path: run to a trace, then batch-check.  Kept for A/B
/// comparison (--no-streaming, the equivalence tests, the overhead bench);
/// the batch checkers replay through the same streaming cores, so the two
/// paths cannot disagree.
CaseOutcome runCaseRecorded(const CaseSpec& spec, std::uint64_t maxEvents,
                            trace::Trace* traceOut, bool probeSchedule) {
  WorkerEngine& eng = workerEngine();
  eng.probeRequested = probeSchedule;
  trace::Trace localTrace;
  trace::Trace& trace = traceOut ? *traceOut : localTrace;
  trace.clear();
  eng.tee.clear();
  eng.tee.attach(trace);

  CaseOutcome out;
  try {
    const RunResult result = executeCase(eng, spec, maxEvents, out);
    out.opsBound = result.opsBound;
    out.txnsSerialized = trace.serializations().size();
    out.coverage.record(trace);
    harvestLeaseStats(eng, spec, out);
    harvestProbe(eng, spec, out);
    if (!result.ok()) {
      out.signature = outcomeSignature(result);
      out.detail = result.detail;
      return out;
    }
  } catch (const ProtocolError& e) {
    out.txnsSerialized = trace.serializations().size();
    out.coverage.record(trace);
    harvestLeaseStats(eng, spec, out);
    harvestProbe(eng, spec, out);
    out.signature = "invariant";
    out.detail = e.what();
    return out;
  }

  const verify::CheckReport report =
      verify::checkAll(trace, proto::verifyConfigFor(spec.sys));
  out.checkerFirings = report.countsByCheck();
  if (!report.ok()) {
    out.signature = "checker:" + report.primaryCheck();
    out.detail = report.violations.front().detail;
  }
  return out;
}

}  // namespace

CaseOutcome runCase(const CaseSpec& spec, std::uint64_t maxEvents,
                    trace::Trace* traceOut, bool streaming,
                    bool probeSchedule) {
  return streaming
             ? runCaseStreaming(spec, maxEvents, traceOut, probeSchedule)
             : runCaseRecorded(spec, maxEvents, traceOut, probeSchedule);
}

namespace {

std::string caseFileStem(std::uint64_t index) {
  std::ostringstream os;
  os << "case-" << std::setw(6) << std::setfill('0') << index;
  return os.str();
}

/// Archive one trace with enough metadata to re-verify it offline.
std::string archiveTrace(const trace::Trace& trace, const std::string& outDir,
                         const std::string& stem, const CampaignConfig& cfg,
                         std::uint64_t index, const CaseSpec& spec,
                         const std::string& signature, bool complete) {
  namespace fs = std::filesystem;
  fs::create_directories(outDir);
  const std::string path = (fs::path(outDir) / (stem + ".trace")).string();
  std::vector<std::string> meta;
  meta.push_back("lcdc campaign counterexample");
  meta.push_back("master-seed: " + std::to_string(cfg.masterSeed) +
                 "  index: " + std::to_string(index));
  meta.push_back("case: " + spec.description);
  meta.push_back(std::string("mutant: ") + toString(cfg.mutant));
  meta.push_back("signature: " + signature);
  meta.push_back("re-verify: lcdc verify --trace " + path + " --procs " +
                 std::to_string(spec.sys.numProcessors) +
                 (spec.sys.storeBufferDepth > 0 ? " --model tso" : "") +
                 (complete ? "" : " --partial"));
  trace::saveFileWithMeta(trace, path, meta);
  return path;
}

}  // namespace

namespace detail {

Failure finalizeFailure(const CampaignConfig& cfg, std::uint64_t index,
                        const CaseSpec& spec, const std::string& signature,
                        const std::string& detailText, bool shrinkThis,
                        const std::string& stem) {
  Failure f;
  f.index = index;
  f.signature = signature;
  f.detail = detailText;
  f.description = spec.description;
  f.steps = totalSteps(spec);
  f.procs = spec.sys.numProcessors;

  if (!cfg.outDir.empty()) {
    trace::Trace original;
    (void)runCase(spec, cfg.maxEventsPerRun, &original, cfg.streaming);
    f.tracePath = archiveTrace(
        original, cfg.outDir, stem, cfg, index, spec, signature,
        /*complete=*/signature.rfind("outcome:", 0) != 0 &&
            signature != "invariant");
  }
  if (shrinkThis) {
    MinimizeOptions mo;
    mo.maxAttempts = cfg.minimizeAttempts;
    mo.maxEventsPerRun = cfg.maxEventsPerRun;
    const MinimizeResult mr = shrink(spec, signature, mo);
    f.minimized = mr.reduced();
    f.minSteps = mr.stepsAfter;
    f.minProcs = mr.procsAfter;
    f.minMaxLatency = mr.spec.sys.maxLatency;
    if (!cfg.outDir.empty()) {
      trace::Trace minTrace;
      const CaseOutcome minOutcome =
          runCase(mr.spec, cfg.maxEventsPerRun, &minTrace, cfg.streaming);
      LCDC_EXPECT(minOutcome.signature == signature,
                  "minimized case no longer reproduces");
      f.minimizedPath = archiveTrace(
          minTrace, cfg.outDir, stem + "-min", cfg, index, mr.spec, signature,
          /*complete=*/signature.rfind("outcome:", 0) != 0 &&
              signature != "invariant");
    }
  }
  return f;
}

}  // namespace detail

CampaignResult run(const CampaignConfig& cfg) {
  LCDC_EXPECT(cfg.seeds > 0, "campaign needs at least one seed");
  if (cfg.protocol == ProtocolKind::Tardis && cfg.mutant != Mutant::None &&
      cfg.mutant != Mutant::DropLeaseBump) {
    throw SimError(std::string("mutant '") + toString(cfg.mutant) +
                   "' targets the directory protocol; the tardis backend "
                   "only implements 'drop-lease-bump'");
  }
  if (cfg.protocol == ProtocolKind::Bus && cfg.mutant != Mutant::None &&
      cfg.mutant != Mutant::IgnoreInvalidation) {
    throw SimError(std::string("mutant '") + toString(cfg.mutant) +
                   "' targets the directory protocol; the bus backend "
                   "only implements 'ignore-invalidation'");
  }
  if (cfg.fuzz) return runFuzz(cfg);
  const auto t0 = std::chrono::steady_clock::now();

  CampaignResult result;
  result.protocol = cfg.protocol;

  // Optional exhaustive stage on a small configuration of the same
  // protocol variant.  Runs before the fan-out: if the protocol is broken
  // at (mcProcs x mcBlocks), the campaign should say so even when no
  // sampled schedule happens to trip it.  All counts it reports are
  // wave-deterministic, so the report stays byte-identical across --jobs.
  if (cfg.mcStage) {
    mc::McConfig mcCfg;
    mcCfg.protocol = cfg.protocol;
    mcCfg.numProcessors = cfg.mcProcs;
    mcCfg.numBlocks = cfg.mcBlocks;
    mcCfg.proto.mutant = cfg.mutant;
    mcCfg.maxStates = cfg.mcMaxStates;
    mcCfg.jobs = cfg.jobs;
    mcCfg.symmetry = true;
    mcCfg.por = true;
    mcCfg.modelData = true;
    if (cfg.mcVisited == "compact") {
      mcCfg.visited = mc::VisitedMode::Compact;
    } else if (cfg.mcVisited == "bitstate") {
      mcCfg.visited = mc::VisitedMode::Bitstate;
      // Bitstate tracks no discovery ids, which the ample-set proviso
      // needs; `mc::explore` rejects the combination.
      mcCfg.por = false;
    } else if (cfg.mcVisited != "exact") {
      throw SimError("mc-stage visited mode must be exact|compact|bitstate, "
                     "got '" + cfg.mcVisited + "'");
    }
    mcCfg.memLimitMb = cfg.mcMemLimitMb;
    mcCfg.spillDir = cfg.mcSpillDir;
    mcCfg.checkpointDir = cfg.mcCheckpointDir;
    mcCfg.resumeDir = cfg.mcResumeDir;
    const auto mcT0 = std::chrono::steady_clock::now();
    const mc::McResult mcRes = mc::explore(mcCfg);
    result.mcSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - mcT0)
            .count();
    result.mcStage.ran = true;
    result.mcStage.ok = mcRes.ok();
    result.mcStage.deadlock = mcRes.deadlockFound;
    result.mcStage.hitStateLimit = mcRes.hitStateLimit;
    result.mcStage.memLimitHit = mcRes.memLimitHit;
    result.mcStage.states = mcRes.statesExplored;
    result.mcStage.violations = mcRes.violations.size();
    result.mcStage.visited = mc::toString(mcCfg.visited);
    result.mcStage.omissionBound = mcRes.omissionBound;
    result.mcStage.storedEncBytes = mcRes.perf.storedEncodingBytes;
    result.mcStage.procs = cfg.mcProcs;
    result.mcStage.blocks = cfg.mcBlocks;
  }

  ThreadPool pool(cfg.jobs);

  // Per-seed outcome table, indexed by sub-run index.  Workers write only
  // their own slot; aggregation reads the table in index order after the
  // wave barrier — the scheduling-independent part of the determinism
  // guarantee.
  std::vector<CaseOutcome> outcomes(cfg.seeds);

  // Waves keep --until-coverage deterministic: the stop decision is taken
  // only at wave boundaries, on fully aggregated prefixes, so it depends
  // on seed indices alone, never on which worker finished first.
  const std::uint64_t waveSize =
      cfg.untilCoverage ? std::max<std::uint64_t>(64, cfg.jobs * 8ULL)
                        : cfg.seeds;
  std::uint64_t next = 0;
  while (next < cfg.seeds) {
    const std::uint64_t waveEnd = std::min(cfg.seeds, next + waveSize);
    for (std::uint64_t i = next; i < waveEnd; ++i) {
      pool.submit([&cfg, &outcomes, i] {
        // One retained spec per worker: program buffers and description
        // are reused across the thousands of cases this thread derives.
        thread_local CaseSpec spec;
        deriveCaseInto(cfg, i, spec);
        outcomes[i] = runCase(spec, cfg.maxEventsPerRun,
                              /*traceOut=*/nullptr, cfg.streaming);
      });
    }
    pool.wait();
    for (std::uint64_t i = next; i < waveEnd; ++i) {
      CaseOutcome& o = outcomes[i];
      result.coverage.merge(o.coverage);
      result.opsBound += o.opsBound;
      result.txnsSerialized += o.txnsSerialized;
      result.perf.merge(o.perf);
      for (const auto& [check, n] : o.checkerFirings) {
        result.checkerFirings[check] += n;
      }
    }
    result.seedsRun = waveEnd;
    next = waveEnd;
    if (cfg.untilCoverage &&
        result.coverage.transactionCasesComplete(cfg.protocol)) {
      break;
    }
  }

  // Collect failures in index order, then minimize/archive sequentially —
  // single-threaded on purpose, so reproducer contents are deterministic
  // too.
  for (std::uint64_t i = 0; i < result.seedsRun; ++i) {
    const CaseOutcome& o = outcomes[i];
    if (o.clean()) continue;
    const CaseSpec spec = deriveCase(cfg, i);
    const bool shrinkThis =
        cfg.minimize && result.failures.size() < cfg.maxMinimized;
    result.failures.push_back(detail::finalizeFailure(
        cfg, i, spec, o.signature, o.detail, shrinkThis, caseFileStem(i)));
  }

  result.pool = pool.stats();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

std::string CampaignResult::report() const {
  std::ostringstream os;
  os << "seeds run: " << seedsRun << '\n'
     << "operations bound: " << opsBound << '\n'
     << "transactions serialized: " << txnsSerialized << '\n';
  os << coverage.report(protocol);
  if (fuzz.ran) {
    os << "fuzz stage: executions=" << fuzz.executions
       << " corpus-loaded=" << fuzz.corpusLoaded
       << " corpus-added=" << fuzz.corpusAdded
       << " corpus-size=" << fuzz.corpusSize
       << " features=" << fuzz.features << '\n';
    if (fuzz.firstFailureExecution != 0) {
      os << "first failure at execution " << fuzz.firstFailureExecution
         << '\n';
    }
  }
  os << "checker firings:";
  if (checkerFirings.empty()) {
    os << " none\n";
  } else {
    os << '\n';
    for (const auto& [check, n] : checkerFirings) {
      os << "  " << check << ": " << n << '\n';
    }
  }
  if (mcStage.ran) {
    os << "mc stage: (" << static_cast<unsigned>(mcStage.procs) << " procs x "
       << mcStage.blocks << " blocks) "
       << (mcStage.ok ? "clean" : (mcStage.deadlock ? "DEADLOCK" : "VIOLATED"))
       << ", states=" << mcStage.states;
    if (mcStage.hitStateLimit) {
      // On a capped run the discovered-state set depends on frontier
      // order, so the encoding-byte total is not deterministic; omit it.
      os << " (state limit hit)";
    } else if (mcStage.states != 0) {
      os << ", enc-bytes/state="
         << mcStage.storedEncBytes / mcStage.states;
    }
    if (mcStage.memLimitHit) os << " (mem limit hit)";
    if (mcStage.visited != "exact") {
      os << ", visited=" << mcStage.visited << ", P(omission)<="
         << mcStage.omissionBound;
    }
    os << '\n';
  }
  os << "failures: " << failures.size() << '\n';
  for (const Failure& f : failures) {
    os << "  #" << f.index << " [" << f.signature << "] " << f.description
       << '\n'
       << "      " << f.detail << '\n';
    if (f.minimized) {
      os << "      minimized: steps " << f.steps << " -> " << f.minSteps
         << ", procs " << static_cast<unsigned>(f.procs) << " -> "
         << static_cast<unsigned>(f.minProcs) << ", max-latency "
         << f.minMaxLatency << '\n';
    }
  }
  return os.str();
}

}  // namespace lcdc::campaign
