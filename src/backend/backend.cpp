#include "backend/backend.hpp"

#include <iostream>
#include <ostream>

#include "bus/bus_system.hpp"
#include "common/expect.hpp"
#include "sim/system.hpp"
#include "tardis/tardis_system.hpp"

namespace lcdc::proto {

void BackendSystem::reset(std::uint64_t) {
  throw SimError("this backend does not support in-place reset");
}

void BackendSystem::printStats(std::ostream&) const {}

namespace {

// -- directory --------------------------------------------------------------

class DirectorySystem final : public BackendSystem {
 public:
  DirectorySystem(const SystemConfig& cfg, EventSink& sink,
                  net::Network::Mode mode)
      : sys_(cfg, sink, mode) {}

  void setProgram(NodeId proc, const workload::Program& program) override {
    sys_.setProgram(proc, program);
  }
  RunResult run(std::uint64_t maxEvents) override {
    return maxEvents == 0 ? sys_.run() : sys_.run(maxEvents);
  }
  [[nodiscard]] bool supportsReset() const override { return true; }
  void reset(std::uint64_t seed) override { sys_.reset(seed); }
  [[nodiscard]] net::Network* network() override { return &sys_.network(); }

 private:
  sim::System sys_;
};

class DirectoryBackend final : public CoherenceBackend {
 public:
  [[nodiscard]] ProtocolKind kind() const override {
    return ProtocolKind::Directory;
  }
  [[nodiscard]] const char* name() const override { return "dir"; }

  [[nodiscard]] verify::VerifyConfig verifyConfig(
      const SystemConfig& sys) const override {
    verify::VerifyConfig cfg;
    cfg.numProcessors = sys.numProcessors;
    cfg.tso = sys.storeBufferDepth > 0;
    cfg.protocol = ProtocolKind::Directory;
    return cfg;
  }
  [[nodiscard]] std::unique_ptr<BackendSystem> makeSystem(
      const SystemConfig& sys, EventSink& sink,
      net::Network::Mode mode) const override {
    SystemConfig cfg = sys;
    cfg.protocol = ProtocolKind::Directory;
    return std::make_unique<DirectorySystem>(cfg, sink, mode);
  }
  [[nodiscard]] bool supportsModelChecking() const override { return true; }
  [[nodiscard]] bool supportsNetworkMode(net::Network::Mode) const override {
    return true;
  }
};

// -- bus --------------------------------------------------------------------

/// Adapts bus::BusSystem, which predates this API: it takes its own config
/// record, has no network object, and does not emit the run lifecycle hooks
/// itself — the adapter stamps SystemConfig{protocol = Bus} into onRunBegin
/// and maps BusRunResult onto the common RunResult.
class BusAdapter final : public BackendSystem {
 public:
  BusAdapter(const SystemConfig& cfg, EventSink& sink)
      : cfg_(cfg), sink_(&sink), sys_(toBusConfig(cfg), sink) {}

  void setProgram(NodeId proc, const workload::Program& program) override {
    sys_.setProgram(proc, program);
  }
  RunResult run(std::uint64_t maxEvents) override {
    sink_->onRunBegin(cfg_);
    const bus::BusRunResult br =
        maxEvents == 0 ? sys_.run() : sys_.run(maxEvents);
    RunResult r;
    switch (br.outcome) {
      case bus::BusRunResult::Outcome::Quiescent:
        r.outcome = RunResult::Outcome::Quiescent;
        break;
      case bus::BusRunResult::Outcome::Stuck:
        r.outcome = RunResult::Outcome::Deadlock;
        r.detail = "bus stuck: snoop queues blocked with programs incomplete";
        break;
      case bus::BusRunResult::Outcome::BudgetExhausted:
        r.outcome = RunResult::Outcome::BudgetExhausted;
        break;
    }
    r.eventsProcessed = br.eventsProcessed;
    r.endTime = br.endTime;
    r.opsBound = br.opsBound;
    sink_->onRunEnd(r);
    return r;
  }

 private:
  [[nodiscard]] static bus::BusConfig toBusConfig(const SystemConfig& sys) {
    bus::BusConfig cfg;
    cfg.numProcessors = sys.numProcessors;
    cfg.numBlocks = sys.numBlocks;
    cfg.wordsPerBlock = sys.proto.wordsPerBlock;
    cfg.cacheCapacity = sys.cacheCapacity;
    cfg.snoopDelayMax = sys.busSnoopDelayMax;
    cfg.seed = sys.seed;
    cfg.mutant = sys.proto.mutant;
    return cfg;
  }

  SystemConfig cfg_;
  EventSink* sink_;
  bus::BusSystem sys_;
};

class BusBackend final : public CoherenceBackend {
 public:
  [[nodiscard]] ProtocolKind kind() const override {
    return ProtocolKind::Bus;
  }
  [[nodiscard]] const char* name() const override { return "bus"; }

  [[nodiscard]] verify::VerifyConfig verifyConfig(
      const SystemConfig& sys) const override {
    if (sys.storeBufferDepth > 0) {
      throw SimError(
          "bus backend does not support the TSO store-buffer extension "
          "(storeBufferDepth must be 0)");
    }
    verify::VerifyConfig cfg;
    cfg.numProcessors = sys.numProcessors;
    cfg.protocol = ProtocolKind::Bus;
    return cfg;
  }
  [[nodiscard]] std::unique_ptr<BackendSystem> makeSystem(
      const SystemConfig& sys, EventSink& sink,
      net::Network::Mode mode) const override {
    if (!supportsNetworkMode(mode)) {
      throw SimError(
          "bus backend has no point-to-point network; only the default "
          "random-latency mode is supported");
    }
    if (sys.storeBufferDepth > 0) {
      throw SimError(
          "bus backend does not support the TSO store-buffer extension "
          "(storeBufferDepth must be 0)");
    }
    if (sys.proto.mutant != Mutant::None &&
        sys.proto.mutant != Mutant::IgnoreInvalidation) {
      throw SimError(std::string("mutant '") + toString(sys.proto.mutant) +
                     "' is not implemented by the bus backend "
                     "(only ignore-invalidation)");
    }
    SystemConfig cfg = sys;
    cfg.protocol = ProtocolKind::Bus;
    return std::make_unique<BusAdapter>(cfg, sink);
  }
  [[nodiscard]] bool supportsModelChecking() const override { return false; }
  [[nodiscard]] bool supportsNetworkMode(
      net::Network::Mode mode) const override {
    return mode == net::Network::Mode::RandomLatency;
  }
};

// -- tardis -----------------------------------------------------------------

class TardisAdapter final : public BackendSystem {
 public:
  TardisAdapter(const SystemConfig& cfg, EventSink& sink,
                net::Network::Mode mode)
      : sys_(cfg, sink, mode) {}

  void setProgram(NodeId proc, const workload::Program& program) override {
    sys_.setProgram(proc, program);
  }
  RunResult run(std::uint64_t maxEvents) override {
    return maxEvents == 0 ? sys_.run() : sys_.run(maxEvents);
  }
  [[nodiscard]] bool supportsReset() const override { return true; }
  void reset(std::uint64_t seed) override { sys_.reset(seed); }
  [[nodiscard]] net::Network* network() override { return &sys_.network(); }
  void printStats(std::ostream& os) const override {
    const tardis::TardisStats& s = sys_.stats();
    os << "tardis: " << s.sharedGrants << " shared grants ("
       << s.leaseRenewals << " renewals, " << s.leaseExpiries
       << " lease expiries), " << s.exclusiveGrants << " exclusive grants, "
       << s.flushes << " flushes (" << s.deferredFlushes << " deferred), "
       << s.writebacks << " writebacks, " << s.nacksSent << " nacks\n";
  }

 private:
  tardis::TardisSystem sys_;
};

class TardisBackend final : public CoherenceBackend {
 public:
  [[nodiscard]] ProtocolKind kind() const override {
    return ProtocolKind::Tardis;
  }
  [[nodiscard]] const char* name() const override { return "tardis"; }

  [[nodiscard]] verify::VerifyConfig verifyConfig(
      const SystemConfig& sys) const override {
    if (sys.storeBufferDepth > 0) {
      throw SimError(
          "tardis backend does not support the TSO store-buffer extension "
          "(storeBufferDepth must be 0)");
    }
    verify::VerifyConfig cfg;
    cfg.numProcessors = sys.numProcessors;
    cfg.protocol = ProtocolKind::Tardis;
    return cfg;
  }
  [[nodiscard]] std::unique_ptr<BackendSystem> makeSystem(
      const SystemConfig& sys, EventSink& sink,
      net::Network::Mode mode) const override {
    SystemConfig cfg = sys;
    cfg.protocol = ProtocolKind::Tardis;
    return std::make_unique<TardisAdapter>(cfg, sink, mode);
  }
  [[nodiscard]] bool supportsModelChecking() const override { return true; }
  [[nodiscard]] bool supportsNetworkMode(net::Network::Mode) const override {
    return true;
  }
};

}  // namespace

const CoherenceBackend& backendFor(ProtocolKind kind) {
  static const DirectoryBackend dir;
  static const BusBackend bus;
  static const TardisBackend tardis;
  switch (kind) {
    case ProtocolKind::Directory: return dir;
    case ProtocolKind::Bus: return bus;
    case ProtocolKind::Tardis: return tardis;
  }
  throw SimError("unknown ProtocolKind");
}

ProtocolKind protocolFromName(const std::string& name) {
  if (name == "dir") return ProtocolKind::Directory;
  if (name == "directory") {
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::cerr << "warning: --protocol directory is deprecated; use "
                   "--protocol dir\n";
    }
    return ProtocolKind::Directory;
  }
  if (name == "bus") return ProtocolKind::Bus;
  if (name == "tardis") return ProtocolKind::Tardis;
  throw SimError("unknown protocol: " + name + " (dir|bus|tardis)");
}

verify::VerifyConfig verifyConfigFor(const SystemConfig& sys) {
  return backendFor(sys.protocol).verifyConfig(sys);
}

}  // namespace lcdc::proto
