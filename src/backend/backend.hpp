// The pluggable coherence-backend API (DESIGN.md §12).
//
// The paper's central claim is that the Lamport-clock checkers are
// *protocol-independent*: any coherence machine that (a) serializes the
// transactions touching a block at one agent, (b) stamps exactly one
// upgrader and at least one downgrader per transaction under the per-node
// clock discipline of Section 3.2, and (c) binds operations inside the
// epochs those stamps delimit, can be verified by the unchanged Section 3
// suite.  This module turns that claim into an interface: a
// CoherenceBackend packages one protocol implementation behind a uniform
// build-run-verify contract, and everything downstream — the lcdc driver,
// the campaign runner, the model checker — selects a backend by
// ProtocolKind instead of naming a concrete system type.
//
// What a backend must guarantee for the checkers to stay sound:
//
//   * Observation stream — the proto::EventSink callbacks (onSerialize /
//     onStamp / onOperation / onValueReceived / onRunBegin / onRunEnd)
//     with per-block serial numbers assigned in serialization order.
//   * Timestamping discipline — per (node, block), stamp timestamps are
//     strictly increasing in emission order (Claim 2); per transaction,
//     downgrades never exceed the upgrade (Claim 3(a)) and exclusive
//     upgrades strictly dominate all earlier upgrades of the block
//     (Claim 3(b)) — these two are *load-bearing*: checkEpochs' Lemma 1
//     scan assumes exclusive epochs appear in ascending order.
//   * Binding rule — an operation's timestamp lies inside the epoch of
//     the transaction it is bound to; stores only in exclusive epochs.
//   * Config honesty — onRunBegin carries a SystemConfig whose `protocol`
//     field names this backend, so a StreamCheckerSet configured for a
//     different backend fails loudly instead of silently mis-checking.
//
// The backend additionally owns the one canonical mapping from a
// SystemConfig to the verification settings (verifyConfig) — previously
// verify::VerifyConfig::fromSystem, which baked in directory-only
// assumptions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/run_result.hpp"
#include "net/network.hpp"
#include "proto/events.hpp"
#include "verify/checkers.hpp"
#include "workload/program.hpp"

namespace lcdc::proto {

/// A running instance of one backend: programs in, RunResult out.  The
/// observation stream flows through the EventSink given at construction.
class BackendSystem {
 public:
  virtual ~BackendSystem() = default;
  BackendSystem() = default;
  BackendSystem(const BackendSystem&) = delete;
  BackendSystem& operator=(const BackendSystem&) = delete;

  virtual void setProgram(NodeId proc, const workload::Program& program) = 0;

  /// Run to quiescence / deadlock / livelock.  maxEvents == 0 selects the
  /// backend's own default budget (the per-protocol defaults differ).
  virtual RunResult run(std::uint64_t maxEvents = 0) = 0;

  /// Rewind to the freshly constructed state under a new seed, in place.
  /// Only when supportsReset(); the default implementation throws.
  [[nodiscard]] virtual bool supportsReset() const { return false; }
  virtual void reset(std::uint64_t seed);

  /// The point-to-point network, for latency/queue statistics (--perf).
  /// Null for backends without one (the bus is a centralized medium).
  [[nodiscard]] virtual net::Network* network() { return nullptr; }

  /// Backend-specific statistics lines appended after the driver's
  /// "simulation:" summary.  Default prints nothing (the directory and bus
  /// counters already flow through verify::StatsObserver).
  virtual void printStats(std::ostream& os) const;
};

/// One coherence protocol implementation, registered by ProtocolKind.
/// Stateless: backends are shared singletons (backendFor), all run state
/// lives in the BackendSystem they build.
class CoherenceBackend {
 public:
  virtual ~CoherenceBackend() = default;

  [[nodiscard]] virtual ProtocolKind kind() const = 0;
  /// Canonical selector name ("dir", "bus", "tardis").
  [[nodiscard]] virtual const char* name() const = 0;

  /// The backend-provided verification settings for this system shape:
  /// node split, memory model, and the protocol tag the streaming checkers
  /// cross-check against onRunBegin.
  [[nodiscard]] virtual verify::VerifyConfig verifyConfig(
      const SystemConfig& sys) const = 0;

  /// Build a runnable system.  Throws SimError when the configuration or
  /// network mode is unsupported by this backend.
  [[nodiscard]] virtual std::unique_ptr<BackendSystem> makeSystem(
      const SystemConfig& sys, EventSink& sink,
      net::Network::Mode mode = net::Network::Mode::RandomLatency) const = 0;

  [[nodiscard]] virtual bool supportsModelChecking() const = 0;
  [[nodiscard]] virtual bool supportsNetworkMode(
      net::Network::Mode mode) const = 0;
};

/// The registry: one shared immutable backend per ProtocolKind.
[[nodiscard]] const CoherenceBackend& backendFor(ProtocolKind kind);

/// Parse a --protocol selector.  Accepts the canonical names plus the
/// deprecated alias "directory" (warns on stderr once per process).
/// Throws SimError on anything else.
[[nodiscard]] ProtocolKind protocolFromName(const std::string& name);

/// Convenience: backendFor(sys.protocol).verifyConfig(sys) — the
/// replacement for the deleted verify::VerifyConfig::fromSystem.
[[nodiscard]] verify::VerifyConfig verifyConfigFor(const SystemConfig& sys);

}  // namespace lcdc::proto
