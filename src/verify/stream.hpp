// Streaming (online) verification of the Section 3 claims and lemmas.
//
// Each checker here is the incremental core of one batch checker from
// checkers.hpp: it consumes protocol events as the simulator emits them,
// keeps bounded per-block/per-processor state instead of the whole trace,
// and fires Violations online.  The batch functions are thin adapters that
// replay a recorded trace (trace/replay.hpp) through these same cores, so
// every property has exactly one implementation and "streaming equals
// batch" holds by construction.
//
// Why online checking is possible at all: the Tardis-style observation
// that Lamport-clock invariants are per-event-local.  Claim 2 needs one
// previous stamp per (node, block); the epoch lemmas need each line's
// current epoch plus a short closed-epoch history; the SC replay needs one
// last-store cell per (block, word) behind a per-processor merge window —
// each processor emits its ops with monotone timestamps, so a k-way merge
// over bounded queues re-creates the global Lamport order online without
// ever sorting the whole trace.  Claim 3 is the one property whose
// witnesses (late writeback downgrades) arrive arbitrarily late, so its
// core keeps a per-block frontier of not-yet-settled transactions and
// finalizes them in serialization order.
//
// State bounds (memoryFootprint() reports the live number):
//   ProgramOrder  O(processors)            (+ TSO store-drain window)
//   Claim2        O(lines touched)          = O(nodes * blocks)
//   Claim3        O(blocks * settle window)
//   Epochs        O(lines * history cap)
//   SC replay     O(blocks * words + processors + reorder window)
//   Value chain   O(blocks * words * prune cap + live-txn window)
// None of these grows with execution length — the point of the redesign.
//
// Hot-path memory (DESIGN.md §10): node and processor ids index flat
// arrays (identical iteration order to the std::map keying they replace,
// so violation order is unchanged), and the per-transaction node
// containers — pending windows, live-transaction maps, merge queues —
// draw from a per-checker common::PoolResource.  reset() clears every
// structure in place, so a reused checker set re-runs with zero heap
// allocations once its high-water footprint is reached.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clock/lamport.hpp"
#include "common/pool_allocator.hpp"
#include "common/timestamp.hpp"
#include "common/types.hpp"
#include "proto/observer.hpp"
#include "verify/checkers.hpp"

namespace lcdc::verify {

template <class T>
using PoolDeque = std::deque<T, common::PoolAllocator<T>>;
template <class K, class V>
using PoolMap =
    std::map<K, V, std::less<K>,
             common::PoolAllocator<std::pair<const K, V>>>;
template <class K, class V>
using PoolUMap =
    std::unordered_map<K, V, std::hash<K>, std::equal_to<K>,
                       common::PoolAllocator<std::pair<const K, V>>>;
template <class T>
using PoolMultiset =
    std::multiset<T, std::less<T>, common::PoolAllocator<T>>;

/// Base of every streaming checker: an observer that accumulates a
/// CheckReport.  finish() flushes state that can only be judged at
/// end-of-stream (open epochs, unsettled transactions, pending forwarded
/// loads); it is idempotent and must be called before report() is read.
class StreamChecker : public proto::ObserverAdapter {
 public:
  explicit StreamChecker(const VerifyConfig& cfg) : cfg_(cfg) {}

  virtual void finish() { finished_ = true; }
  [[nodiscard]] const CheckReport& report() const { return report_; }

  /// Rearm for a fresh stream: clears the report and all checker state in
  /// place, retaining container capacity and pooled nodes so the next run
  /// allocates nothing once the high-water footprint is reached.
  virtual void reset(const VerifyConfig& cfg) {
    cfg_ = cfg;
    report_.violations.clear();
    report_.opsChecked = 0;
    report_.txnsChecked = 0;
    report_.epochsBuilt = 0;
    finished_ = false;
  }

  /// Approximate bytes of live checker state — the bench's evidence that
  /// streaming verification is O(blocks + processors), not O(events).
  [[nodiscard]] virtual std::size_t memoryFootprint() const = 0;

 protected:
  void addViolation(std::string check, std::string detail);

  VerifyConfig cfg_;
  CheckReport report_;
  bool finished_ = false;
  /// Node pool shared by this checker's containers; outlives them all
  /// (destroyed last, constructed first).
  common::PoolResource pool_;
};

/// "The Lamport ordering of LDs and STs within any processor is
/// consistent with program order" — SC: every next op must out-timestamp
/// the previous; TSO: loads out-timestamp earlier loads, stores
/// out-timestamp every program-earlier op (store->load exempt).
class StreamProgramOrder final : public StreamChecker {
 public:
  using StreamChecker::StreamChecker;
  void onOperation(const proto::OpRecord& op) override;
  void reset(const VerifyConfig& cfg) override;
  [[nodiscard]] std::size_t memoryFootprint() const override;

 private:
  struct ScState {
    bool has = false;
    proto::OpRecord last;
  };
  /// TSO state exploits the arrival-order facts of the simulator: loads
  /// bind (and are observed) in program order; stores retire FIFO, and
  /// every program-earlier op is observed before a store retires.
  struct TsoState {
    explicit TsoState(common::PoolResource* pool)
        : pendingLoads(common::PoolAllocator<proto::OpRecord>(pool)) {}
    std::optional<proto::OpRecord> maxLoad;       ///< max-ts arrived load
    std::optional<proto::OpRecord> maxStore;      ///< max-ts arrived store
    std::optional<proto::OpRecord> maxLoadBelow;  ///< max-ts store-consumed load
    PoolDeque<proto::OpRecord> pendingLoads;  ///< arrived, no later store yet
  };
  std::vector<ScState> sc_;   ///< indexed by processor id
  std::deque<TsoState> tso_;  ///< indexed by processor id
};

/// Claim 2: per (node, block), A-state changes occur in real time in
/// serialization order, with strictly increasing stamps.
class StreamClaim2 final : public StreamChecker {
 public:
  using StreamChecker::StreamChecker;
  void onStamp(NodeId node, TransactionId txn, SerialIdx serial, BlockId block,
               proto::StampRole role, GlobalTime ts, AState oldA,
               AState newA) override;
  void reset(const VerifyConfig& cfg) override;
  [[nodiscard]] std::size_t memoryFootprint() const override;

 private:
  struct Last {
    bool has = false;
    TransactionId txn = kNoTransaction;
    SerialIdx serial = 0;
    GlobalTime ts = 0;
  };
  std::vector<std::vector<Last>> last_;  ///< [node][block]
};

/// Claim 3 (a)/(b) plus the Section 3.1 structural facts.  Downgrade
/// stamps may be observed arbitrarily late (a writeback's downgrade is
/// emitted when the ack returns), so transactions wait in a per-block
/// pending window and finalize in serialization order once their stamps
/// have settled — or at finish().
class StreamClaim3 final : public StreamChecker {
 public:
  explicit StreamClaim3(const VerifyConfig& cfg);
  void onSerialize(const proto::TxnInfo& txn) override;
  void onTxnConverted(TransactionId id, TxnKind newKind) override;
  void onStamp(NodeId node, TransactionId txn, SerialIdx serial, BlockId block,
               proto::StampRole role, GlobalTime ts, AState oldA,
               AState newA) override;
  void finish() override;
  void reset(const VerifyConfig& cfg) override;
  [[nodiscard]] std::size_t memoryFootprint() const override;

 private:
  struct Agg {
    GlobalTime maxDowngrade = 0;
    std::size_t downgrades = 0;
    GlobalTime upgrade = 0;
    std::size_t upgrades = 0;
  };
  struct Pending {
    proto::TxnInfo txn;
    Agg agg;
  };
  struct BlockState {
    explicit BlockState(common::PoolResource* pool)
        : pending(std::less<SerialIdx>{},
                  common::PoolAllocator<std::pair<const SerialIdx, Pending>>(
                      pool)) {}
    SerialIdx maxSerial = 0;
    GlobalTime maxUpgrade = 0;      ///< over every finalized transaction
    GlobalTime maxExclUpgrade = 0;  ///< over finalized exclusive transactions
    PoolMap<SerialIdx, Pending> pending;
  };

  BlockState& blockAt(BlockId block);
  void tryFinalize(BlockState& bs);
  void finalize(BlockState& bs, const Pending& p);

  std::deque<BlockState> blocks_;  ///< indexed by block id
  PoolUMap<TransactionId, std::pair<BlockId, SerialIdx>> live_;
};

/// Lemmas 1 and 2 (+ Claim 4): per-line epochs are built incrementally
/// from stamp arrivals; overlap pairs are checked once, when the later
/// epoch closes, against a bounded per-block closed-epoch history;
/// operations check against their line's current epoch (or its short
/// history) and park on it only when the epoch's end cannot be bounded
/// yet — which on faithful traces never happens.
class StreamEpochs final : public StreamChecker {
 public:
  using StreamChecker::StreamChecker;
  void onStamp(NodeId node, TransactionId txn, SerialIdx serial, BlockId block,
               proto::StampRole role, GlobalTime ts, AState oldA,
               AState newA) override;
  void onOperation(const proto::OpRecord& op) override;
  void finish() override;
  void reset(const VerifyConfig& cfg) override;
  [[nodiscard]] std::size_t memoryFootprint() const override;

 private:
  struct Line {
    explicit Line(common::PoolResource* pool)
        : history(common::PoolAllocator<clk::Epoch>(pool)) {}
    bool sawStamp = false;
    bool hasCurrent = false;
    clk::Epoch current;
    std::vector<proto::OpRecord> parked;  ///< deferred end-of-epoch checks
    PoolDeque<clk::Epoch> history;        ///< closed epochs, newest at back
  };

  Line& lineAt(NodeId node, BlockId block);
  PoolDeque<clk::Epoch>& closedAt(BlockId block);
  [[nodiscard]] bool lemma1Relevant(const clk::Epoch& e) const;
  void closeCurrent(Line& line, GlobalTime end);
  void checkAgainstEpoch(const proto::OpRecord& op, const clk::Epoch& e,
                         bool endKnown);

  std::deque<std::deque<Line>> lines_;            ///< [node][block]
  std::deque<PoolDeque<clk::Epoch>> closedByBlock_;  ///< lemma 1, by block
  /// Max `end` ever pushed to closedByBlock_[b] — a conservative bound
  /// (cap evictions never lower it), so a new epoch starting at or after
  /// it cannot overlap anything in the history and skips the scan.
  std::vector<GlobalTime> closedMaxEnd_;
  std::vector<GlobalTime> lastStampTs_;           ///< indexed by node id
};

/// Main Theorem replay + the total-order sanity check + TSO forwarding.
/// Each processor's operations arrive with strictly increasing timestamps
/// (its Lamport clock is monotone in real time), but *across* processors
/// arrival order may disagree with Lamport order — the snooping-bus
/// companion protocol really does let a reader bind stale-epoch loads after
/// the writer's store, because its invalidations are fire-and-forget.  So
/// the replay runs behind a k-way merge: per-processor queues release the
/// globally smallest timestamp only once every processor has provably
/// advanced past it, re-creating the batch checker's sorted order online.
/// The window is as deep as the slowest processor lags (forced past
/// kScReorderCap so a finished processor cannot pin it); one last-store
/// cell per (block, word) does the rest.  Forwarded loads are judged
/// against their own processor's program-order store stream instead.
class StreamSequentialConsistency final : public StreamChecker {
 public:
  using StreamChecker::StreamChecker;
  void onOperation(const proto::OpRecord& op) override;
  void finish() override;
  void reset(const VerifyConfig& cfg) override;
  [[nodiscard]] std::size_t memoryFootprint() const override;

 private:
  struct ProcStream {
    explicit ProcStream(common::PoolResource* pool)
        : pending(common::PoolAllocator<proto::OpRecord>(pool)) {}
    bool heard = false;     ///< emitted at least one op this stream
    Timestamp lastArrival;  ///< newest ts seen; future ops are above it
    PoolDeque<proto::OpRecord> pending;  ///< arrived, not yet merge-released
  };
  struct StoreCell {
    bool has = false;
    proto::OpRecord op;
  };
  struct FwdState {
    explicit FwdState(common::PoolResource* pool)
        : pending(common::PoolAllocator<proto::OpRecord>(pool)) {}
    bool hasStore = false;
    proto::OpRecord lastStore;           ///< youngest retired store
    PoolDeque<proto::OpRecord> pending;  ///< forwarded loads awaiting retire
  };

  ProcStream& procAt(NodeId proc);
  StoreCell& storeCellAt(BlockId block, WordIdx word);
  [[nodiscard]] const StoreCell* findStoreCell(BlockId block,
                                               WordIdx word) const;
  void judgeForwarded(const proto::OpRecord& load,
                      const proto::OpRecord* source);
  void drain(bool atEnd);
  void retire(const proto::OpRecord& op);

  std::deque<ProcStream> procs_;  ///< indexed by processor id
  std::size_t buffered_ = 0;      ///< total ops across the merge queues
  /// Sticky: every processor in [0, numProcessors) has been heard from.
  /// Monotone within a stream, so once true the per-proc heard checks in
  /// drain() are settled forever.
  bool allHeard_ = false;
  bool hasRetired_ = false;
  proto::OpRecord lastRetired_;  ///< previous op in merged (Lamport) order
  std::vector<std::vector<StoreCell>> lastStore_;  ///< [block][word]
  std::map<std::tuple<NodeId, BlockId, WordIdx>, FwdState> fwd_;
};

/// Lemma 3 at every value transfer: each received word equals the most
/// recent store in Lamport order prior to the receiving epoch's start.
/// Receipts can be observed out of epoch-start order across nodes (the
/// snooping bus does this), and a transaction's upgrade stamp itself may
/// lag its serialization arbitrarily (a snoop-delayed sharer), so the
/// prune floor tracks transactions from serialization on: a serialized
/// transaction is "live" until its judgeable value receipt, contributing
/// a per-block floor — 0 at serialization, raised to its newest downgrade
/// stamp (Claim 3(a) keeps every downgrade at or below the upgrade still
/// to come), fixed at its upgrade stamp (= its epoch start t1).  Claim
/// 3(b) plus Lemma 1 push every *future* epoch start above the per-block
/// minimum of these floors, so store history per (block, word) can be
/// pruned to the youngest store below that minimum.
class StreamValueChain final : public StreamChecker {
 public:
  explicit StreamValueChain(const VerifyConfig& cfg);
  void onSerialize(const proto::TxnInfo& txn) override;
  void onStamp(NodeId node, TransactionId txn, SerialIdx serial, BlockId block,
               proto::StampRole role, GlobalTime ts, AState oldA,
               AState newA) override;
  void onOperation(const proto::OpRecord& op) override;
  void onValueReceived(NodeId node, TransactionId txn, BlockId block,
                       const BlockValue& value) override;
  void reset(const VerifyConfig& cfg) override;
  [[nodiscard]] std::size_t memoryFootprint() const override;

 private:
  struct StoreAt {
    GlobalTime global = 0;
    LocalTime local = 0;
    NodeId pid = kNoNode;
    Word value = 0;
  };
  struct NodeUpgrades {
    explicit NodeUpgrades(common::PoolResource* pool)
        : ts(std::less<TransactionId>{},
             common::PoolAllocator<std::pair<const TransactionId, GlobalTime>>(
                 pool)),
          fifo(common::PoolAllocator<TransactionId>(pool)) {}
    PoolMap<TransactionId, GlobalTime> ts;
    PoolDeque<TransactionId> fifo;  ///< eviction order, bounded
  };
  struct LiveTxn {
    BlockId block = 0;
    GlobalTime floor = 0;
    bool upgraded = false;
  };

  std::vector<StoreAt>& storesAt(BlockId block, WordIdx word);
  [[nodiscard]] std::vector<StoreAt>* findStores(BlockId block, WordIdx word);
  PoolMultiset<GlobalTime>& floorsAt(BlockId block);
  void trackLive(TransactionId txn, BlockId block, GlobalTime floor,
                 bool upgraded);
  void dropLive(TransactionId txn);
  void moveFloor(LiveTxn& t, GlobalTime ts);

  std::vector<std::vector<std::vector<StoreAt>>> stores_;  ///< [block][word]
  std::deque<NodeUpgrades> upgrades_;                      ///< by node id
  PoolUMap<TransactionId, LiveTxn> live_;
  PoolDeque<TransactionId> liveFifo_;  ///< eviction order, bounded
  std::deque<PoolMultiset<GlobalTime>> floors_;  ///< by block id
};

/// The full Section 3 suite as one pipeline stage: fans events out to the
/// six cores and merges their reports in the canonical checker order
/// (program order, Claim 2, Claim 3, epochs, SC, value chain) — the same
/// order checkAll always used, so primaryCheck() is stable across the
/// batch and streaming paths.
class StreamCheckerSet final : public proto::Observer {
 public:
  explicit StreamCheckerSet(const VerifyConfig& cfg);

  /// Flush every core.  Idempotent; report() calls it implicitly never —
  /// callers decide when the stream has ended.
  void finish();
  /// Rearm every core for a fresh stream, retaining pooled capacity — the
  /// campaign's per-worker reuse path (System::reset's counterpart).
  void reset(const VerifyConfig& cfg);
  [[nodiscard]] CheckReport report() const;
  [[nodiscard]] std::size_t memoryFootprint() const;
  [[nodiscard]] const VerifyConfig& config() const { return cfg_; }

  void onRunBegin(const SystemConfig& config) override;
  void onRunEnd(const RunResult& result) override;
  void onSerialize(const proto::TxnInfo& txn) override;
  void onTxnConverted(TransactionId id, TxnKind newKind) override;
  void onStamp(NodeId node, TransactionId txn, SerialIdx serial, BlockId block,
               proto::StampRole role, GlobalTime ts, AState oldA,
               AState newA) override;
  void onValueReceived(NodeId node, TransactionId txn, BlockId block,
                       const BlockValue& value) override;
  void onOperation(const proto::OpRecord& op) override;
  void onNack(NodeId requester, BlockId block, NackKind kind) override;
  void onPutShared(NodeId node, BlockId block) override;
  void onDeadlockResolved(NodeId node, BlockId block,
                          NodeId impliedAcker) override;

 private:
  VerifyConfig cfg_;
  StreamProgramOrder programOrder_;
  StreamClaim2 claim2_;
  StreamClaim3 claim3_;
  StreamEpochs epochs_;
  StreamSequentialConsistency sc_;
  StreamValueChain valueChain_;
  std::uint64_t opsSeen_ = 0;
  std::uint64_t txnsSeen_ = 0;
  bool finished_ = false;
};

/// Run statistics observer: per-event and per-transaction-kind counters,
/// event rate, and (when watching a checker set) its peak memory
/// footprint, sampled every 4096 events.
class StatsObserver final : public proto::Observer {
 public:
  StatsObserver() = default;
  explicit StatsObserver(const StreamCheckerSet* watch) : watch_(watch) {}

  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t serializations = 0;
    std::uint64_t conversions = 0;
    std::uint64_t stamps = 0;
    std::uint64_t upgrades = 0;
    std::uint64_t downgrades = 0;
    std::uint64_t valueTransfers = 0;
    std::uint64_t operations = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t forwardedLoads = 0;
    std::uint64_t nacks = 0;
    std::uint64_t putShareds = 0;
    std::uint64_t deadlocksResolved = 0;
    /// Serialized transactions by kind, as serialized (conversions are
    /// tallied separately in `conversions`).
    std::map<TxnKind, std::uint64_t> txnsByKind;
    std::size_t peakCheckerBytes = 0;
    bool haveConfig = false;
    SystemConfig config{};
    bool haveResult = false;
    RunResult result{};
    double seconds = 0;  ///< wall clock between onRunBegin and onRunEnd
  };

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] double eventsPerSecond() const;
  /// Multi-line human-readable summary (counters only — no wall-clock
  /// numbers, so output stays deterministic for equal event streams).
  [[nodiscard]] std::string report() const;

  void onRunBegin(const SystemConfig& config) override;
  void onRunEnd(const RunResult& result) override;
  void onSerialize(const proto::TxnInfo& txn) override;
  void onTxnConverted(TransactionId id, TxnKind newKind) override;
  void onStamp(NodeId node, TransactionId txn, SerialIdx serial, BlockId block,
               proto::StampRole role, GlobalTime ts, AState oldA,
               AState newA) override;
  void onValueReceived(NodeId node, TransactionId txn, BlockId block,
                       const BlockValue& value) override;
  void onOperation(const proto::OpRecord& op) override;
  void onNack(NodeId requester, BlockId block, NackKind kind) override;
  void onPutShared(NodeId node, BlockId block) override;
  void onDeadlockResolved(NodeId node, BlockId block,
                          NodeId impliedAcker) override;

 private:
  void noteEvent();

  Stats stats_;
  const StreamCheckerSet* watch_ = nullptr;
  std::uint64_t beginNanos_ = 0;
};

}  // namespace lcdc::verify
