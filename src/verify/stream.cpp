#include "verify/stream.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/expect.hpp"

namespace lcdc::verify {

namespace {

using proto::OpRecord;
using proto::StampRole;

// Settling lag before a transaction with a full stamp set finalizes online:
// a later downgrade (a second sharer's inval ack, a late writeback ack) can
// still arrive shortly after, so wait until the block's serialization has
// moved this far past the transaction.  Purely a false-negative/latency
// trade-off — finalizing early can only miss a violation, never invent one.
constexpr SerialIdx kSettleLag = 2;
// Backstops that keep state bounded even on adversarial (mutant) streams.
constexpr std::size_t kMaxPendingTxnsPerBlock = 4096;
constexpr std::size_t kLineHistoryCap = 64;
constexpr std::size_t kBlockHistoryCap = 128;
constexpr std::size_t kParkedOpsCap = 64;
constexpr std::size_t kUpgradeCap = 256;
constexpr std::size_t kLiveTxnCap = 4096;
/// SC merge window: past this many buffered ops the smallest head retires
/// even if some processor has not advanced past it — a processor whose
/// program finished (or a pathological trace) must not pin the window.
constexpr std::size_t kScReorderCap = 8192;

std::string opToString(const OpRecord& op) {
  std::ostringstream os;
  os << toString(op.kind) << " p" << op.proc << " #" << op.progIdx
     << " block " << op.block << " word " << op.word << " value "
     << op.value << " ts " << toString(op.ts) << " bound-to txn "
     << op.boundTxn << " (serial " << op.boundSerial << ")";
  return os.str();
}

std::string epochToString(const clk::Epoch& e) {
  std::ostringstream os;
  os << toString(e.state) << " epoch at node " << e.node << " for block "
     << e.block << " [" << e.start << ", ";
  if (e.end == clk::kOpenEpoch) {
    os << "open";
  } else {
    os << e.end;
  }
  os << ") opened by txn " << e.txn << " (serial " << e.serial << ")";
  return os.str();
}

bool isExclusiveKind(TxnKind k) {
  switch (k) {
    case TxnKind::GetS_Idle:
    case TxnKind::GetS_Shared:
    case TxnKind::GetS_Exclusive:
    // Transaction 13's unique *upgrade* belongs to its Get-Shared half (the
    // writeback half upgrades nobody — memory takes the value, and the
    // entry clock absorbs the owner's stamp instead), so for the
    // Claim 3(b) upgrade-ordering rule it behaves as a Get-Shared.
    case TxnKind::Wb_BusyShared:
      return false;
    default:
      return true;
  }
}

/// Epoch intersection under [start, end) semantics; kOpenEpoch (max value)
/// acts as infinity.
bool epochsOverlap(const clk::Epoch& a, const clk::Epoch& b) {
  return a.start < b.end && b.start < a.end;
}

}  // namespace

void StreamChecker::addViolation(std::string check, std::string detail) {
  if (report_.violations.size() < cfg_.maxViolations) {
    report_.violations.push_back(
        Violation{std::move(check), std::move(detail)});
  } else if (report_.violations.size() == cfg_.maxViolations) {
    report_.violations.push_back(Violation{"...", "further violations elided"});
  }
}

// ---------------------------------------------------------------------------
// Program order embeds into Lamport order
// ---------------------------------------------------------------------------
void StreamProgramOrder::onOperation(const OpRecord& op) {
  report_.opsChecked += 1;
  if (!cfg_.tso) {
    if (sc_.size() <= op.proc) sc_.resize(op.proc + 1);
    ScState& st = sc_[op.proc];
    if (st.has) {
      const OpRecord& prev = st.last;
      if (op.progIdx <= prev.progIdx) {
        addViolation("program-order",
                     "ops recorded out of program order: " + opToString(prev) +
                         " then " + opToString(op));
      }
      const bool increases =
          op.ts.global > prev.ts.global ||
          (op.ts.global == prev.ts.global && op.ts.local > prev.ts.local);
      if (!increases) {
        addViolation("program-order",
                     "Lamport order breaks program order: " + opToString(prev) +
                         " then " + opToString(op));
      }
    }
    st.has = true;
    st.last = op;
    return;
  }

  // TSO.  Loads bind (and are observed) in program order; stores retire
  // FIFO, and every program-earlier op has been observed by the time a
  // store retires — so the program-order-earlier op set of each arriving
  // op is fully known on arrival.
  while (tso_.size() <= op.proc) tso_.emplace_back(&pool_);
  TsoState& t = tso_[op.proc];
  if (op.kind == OpKind::Store) {
    // Fold the loads that are program-order-earlier than this store.
    while (!t.pendingLoads.empty() &&
           t.pendingLoads.front().progIdx < op.progIdx) {
      const OpRecord& l = t.pendingLoads.front();
      if (!t.maxLoadBelow || t.maxLoadBelow->ts < l.ts) t.maxLoadBelow = l;
      t.pendingLoads.pop_front();
    }
    // The max-timestamp program-earlier op; ties (impossible on faithful
    // streams) resolve to the program-earlier op, like the batch walk.
    const OpRecord* bound = t.maxStore ? &*t.maxStore : nullptr;
    if (t.maxLoadBelow) {
      const OpRecord& lb = *t.maxLoadBelow;
      if (bound == nullptr || bound->ts < lb.ts ||
          (bound->ts == lb.ts && lb.progIdx < bound->progIdx)) {
        bound = &lb;
      }
    }
    if (bound != nullptr && !(bound->ts < op.ts)) {
      addViolation("tso-program-order",
                   "TSO-forbidden reordering: " + opToString(*bound) +
                       " then " + opToString(op));
    }
    if (!t.maxStore || t.maxStore->ts < op.ts) t.maxStore = op;
    return;
  }
  // Loads (forwarded ones included): must out-timestamp every earlier load;
  // the store->load direction is the one TSO exempts.
  if (t.maxLoad && !(t.maxLoad->ts < op.ts)) {
    addViolation("tso-program-order",
                 "TSO-forbidden reordering: " + opToString(*t.maxLoad) +
                     " then " + opToString(op));
  }
  if (!t.maxLoad || t.maxLoad->ts < op.ts) t.maxLoad = op;
  t.pendingLoads.push_back(op);
}

void StreamProgramOrder::reset(const VerifyConfig& cfg) {
  StreamChecker::reset(cfg);
  for (ScState& st : sc_) st.has = false;
  for (TsoState& t : tso_) {
    t.maxLoad.reset();
    t.maxStore.reset();
    t.maxLoadBelow.reset();
    t.pendingLoads.clear();
  }
}

std::size_t StreamProgramOrder::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  bytes += sc_.size() * sizeof(ScState);
  for (const TsoState& t : tso_) {
    bytes += sizeof(TsoState);
    bytes += t.pendingLoads.size() * sizeof(OpRecord);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Claim 2
// ---------------------------------------------------------------------------
void StreamClaim2::onStamp(NodeId node, TransactionId txn, SerialIdx serial,
                           BlockId block, StampRole role, GlobalTime ts,
                           AState oldA, AState newA) {
  if (last_.size() <= node) last_.resize(node + 1);
  std::vector<Last>& row = last_[node];
  if (row.size() <= block) row.resize(block + 1);
  Last& prev = row[block];
  if (prev.has) {
    if (serial <= prev.serial) {
      std::ostringstream os;
      os << "node " << node << " block " << block
         << ": A-state change for txn " << txn << " (serial " << serial
         << ") applied after txn " << prev.txn << " (serial " << prev.serial
         << ")";
      addViolation("claim2", os.str());
    }
    if (ts <= prev.ts) {
      std::ostringstream os;
      os << "node " << node << " block " << block << ": clock not monotone ("
         << prev.ts << " then " << ts << ")";
      addViolation("claim2", os.str());
    }
  }
  prev.has = true;
  prev.txn = txn;
  prev.serial = serial;
  prev.ts = ts;
}

void StreamClaim2::reset(const VerifyConfig& cfg) {
  StreamChecker::reset(cfg);
  for (std::vector<Last>& row : last_) {
    for (Last& l : row) l.has = false;
  }
}

std::size_t StreamClaim2::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const std::vector<Last>& row : last_) {
    bytes += sizeof(row) + row.size() * sizeof(Last);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Claim 3
// ---------------------------------------------------------------------------
StreamClaim3::StreamClaim3(const VerifyConfig& cfg)
    : StreamChecker(cfg),
      live_(0, std::hash<TransactionId>{}, std::equal_to<TransactionId>{},
            common::PoolAllocator<
                std::pair<const TransactionId, std::pair<BlockId, SerialIdx>>>(
                &pool_)) {}

StreamClaim3::BlockState& StreamClaim3::blockAt(BlockId block) {
  while (blocks_.size() <= block) blocks_.emplace_back(&pool_);
  return blocks_[block];
}

void StreamClaim3::onSerialize(const proto::TxnInfo& txn) {
  BlockState& bs = blockAt(txn.block);
  bs.maxSerial = std::max(bs.maxSerial, txn.serial);
  bs.pending.insert_or_assign(txn.serial, Pending{txn, {}});
  live_[txn.id] = {txn.block, txn.serial};
  tryFinalize(bs);
}

void StreamClaim3::onTxnConverted(TransactionId id, TxnKind newKind) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  BlockState& bs = blockAt(it->second.first);
  const auto pit = bs.pending.find(it->second.second);
  if (pit != bs.pending.end()) pit->second.txn.kind = newKind;
}

void StreamClaim3::onStamp(NodeId node, TransactionId txn, SerialIdx serial,
                           BlockId block, StampRole role, GlobalTime ts,
                           AState oldA, AState newA) {
  const auto it = live_.find(txn);
  if (it == live_.end()) return;  // stamp for an already-finalized txn
  BlockState& bs = blockAt(it->second.first);
  const auto pit = bs.pending.find(it->second.second);
  if (pit == bs.pending.end()) return;
  Agg& a = pit->second.agg;
  if (role == StampRole::Downgrade) {
    a.downgrades += 1;
    a.maxDowngrade = std::max(a.maxDowngrade, ts);
  } else {
    a.upgrades += 1;
    a.upgrade = ts;
  }
  tryFinalize(bs);
}

void StreamClaim3::tryFinalize(BlockState& bs) {
  while (!bs.pending.empty()) {
    const auto it = bs.pending.begin();
    const Pending& p = it->second;
    const bool complete = p.agg.upgrades >= 1 && p.agg.downgrades >= 1;
    const bool settled = bs.maxSerial >= p.txn.serial + kSettleLag;
    if (!((complete && settled) ||
          bs.pending.size() > kMaxPendingTxnsPerBlock)) {
      break;
    }
    finalize(bs, p);
    live_.erase(p.txn.id);
    bs.pending.erase(it);
  }
}

void StreamClaim3::finalize(BlockState& bs, const Pending& p) {
  report_.txnsChecked += 1;
  const proto::TxnInfo& txn = p.txn;
  const Agg& t = p.agg;
  if (t.upgrades == 0) {
    if (cfg_.expectComplete) {
      std::ostringstream os;
      os << "txn " << txn.id << " (" << toString(txn.kind) << ", serial "
         << txn.serial << ", block " << txn.block << ") has no upgrade stamp";
      addViolation("claim3-structure", os.str());
    }
    return;
  }
  if (t.upgrades != 1) {
    std::ostringstream os;
    os << "txn " << txn.id << " has " << t.upgrades
       << " upgrade stamps (expected exactly one)";
    addViolation("claim3-structure", os.str());
  }
  if (t.downgrades == 0) {
    std::ostringstream os;
    os << "txn " << txn.id << " (" << toString(txn.kind)
       << ") has no downgrade stamp";
    addViolation("claim3-structure", os.str());
  }
  // Claim 3(a).
  if (t.maxDowngrade > t.upgrade) {
    std::ostringstream os;
    os << "claim 3(a): txn " << txn.id << " (" << toString(txn.kind)
       << ", block " << txn.block << "): downgrade stamp " << t.maxDowngrade
       << " exceeds upgrade stamp " << t.upgrade;
    addViolation("claim3a", os.str());
  }
  // Claim 3(b): for a pair (T, T') with T before T' and either exclusive,
  // upgrade(T) < upgrade(T').  Transactions finalize in serialization
  // order per block, so the running maxima match the batch sweep.
  const bool exclusive = isExclusiveKind(txn.kind);
  if (exclusive && t.upgrade <= bs.maxUpgrade) {
    std::ostringstream os;
    os << "claim 3(b): exclusive txn " << txn.id << " ("
       << toString(txn.kind) << ", serial " << txn.serial << ", block "
       << txn.block << ") upgrade stamp " << t.upgrade
       << " does not exceed an earlier transaction's " << bs.maxUpgrade;
    addViolation("claim3b", os.str());
  }
  if (!exclusive && t.upgrade <= bs.maxExclUpgrade) {
    std::ostringstream os;
    os << "claim 3(b): txn " << txn.id << " (" << toString(txn.kind)
       << ", serial " << txn.serial << ", block " << txn.block
       << ") upgrade stamp " << t.upgrade
       << " does not exceed an earlier exclusive transaction's "
       << bs.maxExclUpgrade;
    addViolation("claim3b", os.str());
  }
  bs.maxUpgrade = std::max(bs.maxUpgrade, t.upgrade);
  if (exclusive) bs.maxExclUpgrade = std::max(bs.maxExclUpgrade, t.upgrade);
}

void StreamClaim3::finish() {
  if (finished_) return;
  finished_ = true;
  for (BlockState& bs : blocks_) {
    while (!bs.pending.empty()) {
      const auto it = bs.pending.begin();
      finalize(bs, it->second);
      live_.erase(it->second.txn.id);
      bs.pending.erase(it);
    }
  }
}

void StreamClaim3::reset(const VerifyConfig& cfg) {
  StreamChecker::reset(cfg);
  for (BlockState& bs : blocks_) {
    bs.maxSerial = 0;
    bs.maxUpgrade = 0;
    bs.maxExclUpgrade = 0;
    bs.pending.clear();
  }
  live_.clear();
}

std::size_t StreamClaim3::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const BlockState& bs : blocks_) {
    bytes += sizeof(BlockState);
    bytes += bs.pending.size() * (sizeof(SerialIdx) + sizeof(Pending) + 48);
  }
  bytes += live_.size() *
           (sizeof(TransactionId) + sizeof(std::pair<BlockId, SerialIdx>) + 16);
  return bytes;
}

// ---------------------------------------------------------------------------
// Lemmas 1 and 2 (+ Claim 4)
// ---------------------------------------------------------------------------
StreamEpochs::Line& StreamEpochs::lineAt(NodeId node, BlockId block) {
  while (lines_.size() <= node) lines_.emplace_back();
  std::deque<Line>& row = lines_[node];
  while (row.size() <= block) row.emplace_back(&pool_);
  return row[block];
}

PoolDeque<clk::Epoch>& StreamEpochs::closedAt(BlockId block) {
  while (closedByBlock_.size() <= block) {
    closedByBlock_.emplace_back(common::PoolAllocator<clk::Epoch>(&pool_));
    closedMaxEnd_.push_back(0);
  }
  return closedByBlock_[block];
}

bool StreamEpochs::lemma1Relevant(const clk::Epoch& e) const {
  // Processor S/X epochs and directory X (Idle: memory is the valid copy)
  // epochs; directory A_S "epochs" carry no operations and their
  // boundaries are conventional (the home's by-definition downgrades).
  if (e.state == AState::I) return false;
  const bool isDir = e.node >= cfg_.numProcessors;
  return !isDir || e.state == AState::X;
}

void StreamEpochs::checkAgainstEpoch(const OpRecord& op, const clk::Epoch& e,
                                     bool endKnown) {
  if (op.ts.global < e.start ||
      (endKnown && e.end != clk::kOpenEpoch && op.ts.global >= e.end)) {
    addViolation("lemma2", "operation outside its epoch: " + opToString(op) +
                               " not in " + epochToString(e));
    return;
  }
  if (op.kind == OpKind::Store && e.state != AState::X) {
    addViolation("lemma2", "store outside an exclusive epoch: " +
                               opToString(op) + " in " + epochToString(e));
  }
  if (op.kind == OpKind::Load && e.state == AState::I) {
    addViolation("lemma2", "load inside an invalid interval: " + opToString(op));
  }
}

void StreamEpochs::closeCurrent(Line& line, GlobalTime end) {
  clk::Epoch e = line.current;
  e.end = end;
  // Ops whose end-of-epoch check had to wait: the epoch boundary is now
  // exact, so run the full containment + state check.
  for (const OpRecord& op : line.parked) checkAgainstEpoch(op, e, true);
  line.parked.clear();
  // Lemma 1: each overlap pair is counted exactly once — when the
  // later-closing epoch closes against the block's closed-epoch history
  // (the earlier-closing partner is already there).
  if (lemma1Relevant(e)) {
    auto& hist = closedAt(e.block);
    // Everything in the history ends at or before closedMaxEnd_, so an
    // epoch starting at or after it cannot overlap anything there.
    if (e.start < closedMaxEnd_[e.block]) {
      for (const clk::Epoch& other : hist) {
        if (other.node == e.node) continue;
        if (!epochsOverlap(e, other)) continue;
        if (e.state != AState::X && other.state != AState::X) continue;
        const bool eLater = e.start >= other.start;
        const clk::Epoch& later = eLater ? e : other;
        const clk::Epoch& earlier = eLater ? other : e;
        addViolation("lemma1", "overlapping epochs: " + epochToString(later) +
                                   " vs " + epochToString(earlier));
      }
    }
    hist.push_back(e);
    closedMaxEnd_[e.block] = std::max(closedMaxEnd_[e.block], e.end);
    if (hist.size() > kBlockHistoryCap) hist.pop_front();
  }
  line.history.push_back(e);
  if (line.history.size() > kLineHistoryCap) line.history.pop_front();
  line.hasCurrent = false;
}

void StreamEpochs::onStamp(NodeId node, TransactionId txn, SerialIdx serial,
                           BlockId block, StampRole role, GlobalTime ts,
                           AState oldA, AState newA) {
  if (lastStampTs_.size() <= node) lastStampTs_.resize(node + 1, 0);
  GlobalTime& lastTs = lastStampTs_[node];
  if (ts > lastTs) lastTs = ts;
  Line& line = lineAt(node, block);
  if (!line.sawStamp) {
    line.sawStamp = true;
    if (node >= cfg_.numProcessors) {
      // A directory entry starts Idle = A_X: memory is the valid copy.
      line.current = clk::Epoch{node, block, AState::X, 0, clk::kOpenEpoch,
                                kNoTransaction, 0};
      line.hasCurrent = true;
      report_.epochsBuilt += 1;
    }
  }
  if (line.hasCurrent) closeCurrent(line, ts);
  line.current =
      clk::Epoch{node, block, newA, ts, clk::kOpenEpoch, txn, serial};
  line.hasCurrent = true;
  report_.epochsBuilt += 1;
}

void StreamEpochs::onOperation(const OpRecord& op) {
  report_.opsChecked += 1;
  if (op.forwarded) {
    // Store-buffer forwarded loads never touch the coherence protocol;
    // they are validated by the TSO forwarding check instead.
    if (!cfg_.tso) {
      addViolation("lemma2",
                   "forwarded load in an SC-mode trace: " + opToString(op));
    }
    return;
  }
  Line& line = lineAt(op.proc, op.block);
  // Latest epoch of the bound transaction at this line: the current epoch
  // first, then the closed history newest-to-oldest.
  if (line.hasCurrent && line.current.txn == op.boundTxn) {
    const GlobalTime nodeClock =
        op.proc < lastStampTs_.size() ? lastStampTs_[op.proc] : 0;
    if (op.ts.global >= line.current.start && op.ts.global > nodeClock &&
        line.parked.size() < kParkedOpsCap) {
      // The epoch's end is still unknown and the node clock has not yet
      // passed the op, so containment cannot be decided — defer to close.
      // (On faithful streams ops never out-run their node's clock, so
      // this path is exercised only by hand-built or broken traces.)
      line.parked.push_back(op);
      return;
    }
    checkAgainstEpoch(op, line.current, false);
    return;
  }
  for (auto it = line.history.rbegin(); it != line.history.rend(); ++it) {
    if (it->txn == op.boundTxn) {
      checkAgainstEpoch(op, *it, true);
      return;
    }
  }
  addViolation("lemma2",
               "operation bound to a transaction with no epoch at its "
               "processor: " + opToString(op));
}

void StreamEpochs::finish() {
  if (finished_) return;
  finished_ = true;
  for (std::deque<Line>& row : lines_) {
    for (Line& line : row) {
      if (!line.hasCurrent) continue;
      const clk::Epoch e = line.current;  // end stays open
      for (const OpRecord& op : line.parked) checkAgainstEpoch(op, e, false);
      line.parked.clear();
      if (lemma1Relevant(e)) {
        auto& hist = closedAt(e.block);
        if (e.start < closedMaxEnd_[e.block]) {
          for (const clk::Epoch& other : hist) {
            if (other.node == e.node) continue;
            if (!epochsOverlap(e, other)) continue;
            if (e.state != AState::X && other.state != AState::X) continue;
            const bool eLater = e.start >= other.start;
            addViolation("lemma1",
                         "overlapping epochs: " +
                             epochToString(eLater ? e : other) + " vs " +
                             epochToString(eLater ? other : e));
          }
        }
        hist.push_back(e);
        closedMaxEnd_[e.block] = std::max(closedMaxEnd_[e.block], e.end);
        if (hist.size() > kBlockHistoryCap) hist.pop_front();
      }
      line.hasCurrent = false;
    }
  }
}

void StreamEpochs::reset(const VerifyConfig& cfg) {
  StreamChecker::reset(cfg);
  for (std::deque<Line>& row : lines_) {
    for (Line& line : row) {
      line.sawStamp = false;
      line.hasCurrent = false;
      line.parked.clear();
      line.history.clear();
    }
  }
  for (PoolDeque<clk::Epoch>& hist : closedByBlock_) hist.clear();
  std::fill(closedMaxEnd_.begin(), closedMaxEnd_.end(), 0);
  std::fill(lastStampTs_.begin(), lastStampTs_.end(), 0);
}

std::size_t StreamEpochs::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const std::deque<Line>& row : lines_) {
    for (const Line& line : row) {
      bytes += sizeof(Line);
      bytes += line.parked.size() * sizeof(OpRecord);
      bytes += line.history.size() * sizeof(clk::Epoch);
    }
  }
  for (const PoolDeque<clk::Epoch>& hist : closedByBlock_) {
    bytes += hist.size() * sizeof(clk::Epoch);
  }
  bytes += lastStampTs_.size() * sizeof(GlobalTime);
  return bytes;
}

// ---------------------------------------------------------------------------
// Main Theorem replay (+ total order, + TSO forwarding)
// ---------------------------------------------------------------------------
StreamSequentialConsistency::ProcStream& StreamSequentialConsistency::procAt(
    NodeId proc) {
  while (procs_.size() <= proc) procs_.emplace_back(&pool_);
  return procs_[proc];
}

StreamSequentialConsistency::StoreCell&
StreamSequentialConsistency::storeCellAt(BlockId block, WordIdx word) {
  if (lastStore_.size() <= block) lastStore_.resize(block + 1);
  std::vector<StoreCell>& row = lastStore_[block];
  if (row.size() <= word) row.resize(word + 1);
  return row[word];
}

const StreamSequentialConsistency::StoreCell*
StreamSequentialConsistency::findStoreCell(BlockId block, WordIdx word) const {
  if (block >= lastStore_.size()) return nullptr;
  const std::vector<StoreCell>& row = lastStore_[block];
  if (word >= row.size() || !row[word].has) return nullptr;
  return &row[word];
}

void StreamSequentialConsistency::judgeForwarded(const OpRecord& load,
                                                 const OpRecord* source) {
  if (source == nullptr) {
    addViolation("tso-forwarding",
                 "forwarded load with no program-order-earlier store: " +
                     opToString(load));
  } else if (source->value != load.value) {
    addViolation("tso-forwarding",
                 "forwarded load returned " + opToString(load) +
                     " but the youngest earlier store is " +
                     opToString(*source));
  }
}

void StreamSequentialConsistency::onOperation(const OpRecord& op) {
  report_.opsChecked += 1;
  if (op.forwarded) {
    if (!cfg_.tso) {
      // An SC machine has no store buffer; SC mode treats the forwarded
      // load as sourceless, like the batch check always did.
      judgeForwarded(op, nullptr);
    } else {
      // Judged once the processor's store stream retires past the load's
      // program position (or at finish): only then is "the youngest
      // program-order-earlier store" final.
      fwd_.try_emplace({op.proc, op.block, op.word}, &pool_)
          .first->second.pending.push_back(op);
    }
  } else if (op.kind == OpKind::Store && cfg_.tso) {
    FwdState& f =
        fwd_.try_emplace({op.proc, op.block, op.word}, &pool_).first->second;
    while (!f.pending.empty() && f.pending.front().progIdx < op.progIdx) {
      judgeForwarded(f.pending.front(), f.hasStore ? &f.lastStore : nullptr);
      f.pending.pop_front();
    }
    f.hasStore = true;
    f.lastStore = op;
  }

  // Everything — forwarded loads included, for the total-order scan —
  // enters the merge window and retires in global Lamport order.
  ProcStream& s = procAt(op.proc);
  s.heard = true;
  s.lastArrival = op.ts;
  s.pending.push_back(op);
  ++buffered_;
  drain(/*atEnd=*/false);
}

void StreamSequentialConsistency::drain(bool atEnd) {
  if (!allHeard_) {
    // Heard-ness is monotone, so this settles permanently once true.
    bool all = procs_.size() >= cfg_.numProcessors;
    for (NodeId p = 0; all && p < cfg_.numProcessors; ++p) {
      all = procs_[p].heard;
    }
    allHeard_ = all;
  }
  for (;;) {
    ProcStream* best = nullptr;
    bool anyEmpty = false;
    Timestamp minEmptyArrival{};
    const std::size_t n = procs_.size();
    for (std::size_t i = 0; i < n; ++i) {
      ProcStream& s = procs_[i];
      if (s.pending.empty()) {
        // Only real processors gate the merge (matching the safety rule
        // below); a rogue high-id stream never blocks it.
        if (i < cfg_.numProcessors) {
          if (!anyEmpty || s.lastArrival < minEmptyArrival) {
            minEmptyArrival = s.lastArrival;
          }
          anyEmpty = true;
        }
        continue;
      }
      if (best == nullptr || s.pending.front().ts < best->pending.front().ts) {
        best = &s;
      }
    }
    if (best == nullptr) return;
    if (!atEnd && buffered_ <= kScReorderCap) {
      // The head may retire only once every processor has provably moved
      // past it: a queue head above it, or a newest arrival at/above it
      // (per-processor timestamps are monotone, so everything that
      // processor emits later is above its newest arrival).
      if (!allHeard_) return;
      if (anyEmpty && minEmptyArrival < best->pending.front().ts) return;
    }
    retire(best->pending.front());
    best->pending.pop_front();
    --buffered_;
  }
}

void StreamSequentialConsistency::retire(const OpRecord& op) {
  // Total order sanity: merged timestamps must be globally unique (and the
  // merge emits them in nondecreasing order on any per-processor-monotone
  // stream, so a regression here means the stream itself was malformed).
  if (hasRetired_ && !(lastRetired_.ts < op.ts)) {
    if (lastRetired_.ts == op.ts) {
      addViolation("total-order", "two operations share a timestamp: " +
                                      opToString(lastRetired_) + " and " +
                                      opToString(op));
    } else {
      addViolation("total-order",
                   "operation timestamps regress in observation order: " +
                       opToString(lastRetired_) + " then " + opToString(op));
    }
  }
  hasRetired_ = true;
  lastRetired_ = op;

  if (op.forwarded) return;  // judged against its own store stream instead

  if (op.kind == OpKind::Store) {
    StoreCell& cell = storeCellAt(op.block, op.word);
    cell.has = true;
    cell.op = op;
    return;
  }
  const StoreCell* cell = findStoreCell(op.block, op.word);
  const Word expected = cell == nullptr ? 0 : cell->op.value;
  if (op.value != expected) {
    std::ostringstream os;
    os << "load returns " << op.value << " but the most recent store in "
       << "Lamport order "
       << (cell == nullptr
               ? std::string("is absent (expected the initial value 0)")
               : "is " + opToString(cell->op));
    os << "; load: " << opToString(op);
    addViolation(cfg_.tso ? "tso-memory-order" : "sequential-consistency",
                 os.str());
  }
}

void StreamSequentialConsistency::finish() {
  if (finished_) return;
  finished_ = true;
  // No further ops can arrive: release the merge window unconditionally
  // (still smallest-timestamp first), then judge forwarded loads with no
  // later same-word store — the youngest retired store is final now.
  drain(/*atEnd=*/true);
  for (auto& [key, f] : fwd_) {
    for (const OpRecord& l : f.pending) {
      judgeForwarded(l, f.hasStore ? &f.lastStore : nullptr);
    }
    f.pending.clear();
  }
}

void StreamSequentialConsistency::reset(const VerifyConfig& cfg) {
  StreamChecker::reset(cfg);
  for (ProcStream& s : procs_) {
    s.heard = false;
    s.lastArrival = Timestamp{};
    s.pending.clear();
  }
  buffered_ = 0;
  allHeard_ = false;
  hasRetired_ = false;
  for (std::vector<StoreCell>& row : lastStore_) {
    for (StoreCell& cell : row) cell.has = false;
  }
  for (auto& [key, f] : fwd_) {
    f.hasStore = false;
    f.pending.clear();
  }
}

std::size_t StreamSequentialConsistency::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const ProcStream& s : procs_) {
    bytes += sizeof(ProcStream);
    bytes += s.pending.size() * sizeof(OpRecord);
  }
  for (const std::vector<StoreCell>& row : lastStore_) {
    bytes += row.size() * sizeof(StoreCell);
  }
  for (const auto& [key, f] : fwd_) {
    bytes += sizeof(key) + sizeof(FwdState) + 48;
    bytes += f.pending.size() * sizeof(OpRecord);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Lemma 3 at every value transfer
// ---------------------------------------------------------------------------
StreamValueChain::StreamValueChain(const VerifyConfig& cfg)
    : StreamChecker(cfg),
      live_(0, std::hash<TransactionId>{}, std::equal_to<TransactionId>{},
            common::PoolAllocator<std::pair<const TransactionId, LiveTxn>>(
                &pool_)),
      liveFifo_(common::PoolAllocator<TransactionId>(&pool_)) {}

std::vector<StreamValueChain::StoreAt>& StreamValueChain::storesAt(
    BlockId block, WordIdx word) {
  if (stores_.size() <= block) stores_.resize(block + 1);
  std::vector<std::vector<StoreAt>>& row = stores_[block];
  if (row.size() <= word) row.resize(word + 1);
  return row[word];
}

std::vector<StreamValueChain::StoreAt>* StreamValueChain::findStores(
    BlockId block, WordIdx word) {
  if (block >= stores_.size()) return nullptr;
  std::vector<std::vector<StoreAt>>& row = stores_[block];
  if (word >= row.size()) return nullptr;
  return &row[word];
}

PoolMultiset<GlobalTime>& StreamValueChain::floorsAt(BlockId block) {
  while (floors_.size() <= block) {
    floors_.emplace_back(std::less<GlobalTime>{},
                         common::PoolAllocator<GlobalTime>(&pool_));
  }
  return floors_[block];
}

void StreamValueChain::trackLive(TransactionId txn, BlockId block,
                                 GlobalTime floor, bool upgraded) {
  live_.insert_or_assign(txn, LiveTxn{block, floor, upgraded});
  floorsAt(block).insert(floor);
  liveFifo_.push_back(txn);
  while (liveFifo_.size() > kLiveTxnCap) {
    dropLive(liveFifo_.front());
    liveFifo_.pop_front();
  }
}

void StreamValueChain::dropLive(TransactionId txn) {
  const auto it = live_.find(txn);
  if (it == live_.end()) return;
  if (it->second.block < floors_.size()) {
    auto& fs = floors_[it->second.block];
    const auto vit = fs.find(it->second.floor);
    if (vit != fs.end()) fs.erase(vit);
  }
  live_.erase(it);
}

void StreamValueChain::moveFloor(LiveTxn& t, GlobalTime ts) {
  auto& fs = floorsAt(t.block);
  const auto vit = fs.find(t.floor);
  if (vit != fs.end()) fs.erase(vit);
  fs.insert(ts);
  t.floor = ts;
}

void StreamValueChain::onSerialize(const proto::TxnInfo& txn) {
  dropLive(txn.id);  // id reuse is impossible on faithful streams
  trackLive(txn.id, txn.block, 0, /*upgraded=*/false);
}

void StreamValueChain::onStamp(NodeId node, TransactionId txn,
                               SerialIdx serial, BlockId block, StampRole role,
                               GlobalTime ts, AState oldA, AState newA) {
  const auto lit = live_.find(txn);
  if (role != StampRole::Upgrade) {
    // A downgrade raises the pending floor: Claim 3(a) keeps every
    // downgrade at or below the upgrade (= t1) still to come.
    if (lit != live_.end() && !lit->second.upgraded &&
        ts > lit->second.floor) {
      moveFloor(lit->second, ts);
    }
    return;
  }
  while (upgrades_.size() <= node) upgrades_.emplace_back(&pool_);
  NodeUpgrades& u = upgrades_[node];
  const auto it = u.ts.find(txn);
  if (it != u.ts.end()) {
    it->second = ts;  // re-stamp of a known transaction: supersede
  } else {
    u.ts.emplace(txn, ts);
    u.fifo.push_back(txn);
    while (u.fifo.size() > kUpgradeCap) {
      const auto evict = u.ts.find(u.fifo.front());
      u.fifo.pop_front();
      if (evict != u.ts.end()) u.ts.erase(evict);
    }
  }
  if (lit != live_.end()) {
    moveFloor(lit->second, ts);
    lit->second.upgraded = true;
  } else {
    // Serialization unobserved (truncated stream): start tracking here.
    trackLive(txn, block, ts, /*upgraded=*/true);
  }
}

void StreamValueChain::onOperation(const OpRecord& op) {
  if (op.kind != OpKind::Store) return;
  auto& v = storesAt(op.block, op.word);
  const StoreAt s{op.ts.global, op.ts.local, op.ts.pid, op.value};
  const auto pos = std::upper_bound(
      v.begin(), v.end(), s, [](const StoreAt& a, const StoreAt& b) {
        if (a.global != b.global) return a.global < b.global;
        if (a.local != b.local) return a.local < b.local;
        return a.pid < b.pid;
      });
  v.insert(pos, s);
}

void StreamValueChain::onValueReceived(NodeId node, TransactionId txn,
                                       BlockId block,
                                       const BlockValue& value) {
  if (node >= upgrades_.size()) return;
  NodeUpgrades& u = upgrades_[node];
  const auto tit = u.ts.find(txn);
  if (tit == u.ts.end()) return;  // downgrade-side receipt (home)
  const GlobalTime t1 = tit->second;
  // Consumed: a transaction has exactly one judgeable value receipt, so it
  // stops holding the prune floor down.
  u.ts.erase(tit);
  dropLive(txn);

  // Every future judgeable receipt on this block starts at or above the
  // minimum floor of its still-live transactions: a live one's t1 is at or
  // above its own floor, and a not-yet-serialized one's t1 exceeds the
  // epoch starts already live (Claim 3(b) for the exclusive side; for the
  // shared side any store under an older start would sit in an exclusive
  // epoch overlapping the new one, which Lemma 1 forbids).
  const GlobalTime pruneFloor =
      block >= floors_.size() || floors_[block].empty()
          ? clk::kOpenEpoch
          : *floors_[block].begin();

  report_.txnsChecked += 1;
  for (WordIdx w = 0; w < value.size(); ++w) {
    std::vector<StoreAt>* v = findStores(block, w);
    Word expected = 0;
    if (v != nullptr) {
      // Most recent store strictly before t1 (stores of the receiving
      // epoch itself have global >= t1).
      const auto firstAt = std::lower_bound(
          v->begin(), v->end(), t1,
          [](const StoreAt& s, GlobalTime t) { return s.global < t; });
      if (firstAt != v->begin()) expected = (firstAt - 1)->value;
    }
    if (value[w] != expected) {
      std::ostringstream os;
      os << "lemma 3: node " << node << " received word " << w << " of block "
         << block << " = " << value[w] << " for txn " << txn
         << " (epoch start " << t1 << "), but the most recent store prior to "
         << t1 << " wrote " << expected;
      addViolation("lemma3-values", os.str());
    }
    // Prune to the youngest store below the floor (plus everything above
    // it) — bounded history without ever dropping a store a future
    // receipt could still name.
    if (v != nullptr) {
      const auto keepFrom = std::lower_bound(
          v->begin(), v->end(), pruneFloor,
          [](const StoreAt& s, GlobalTime t) { return s.global < t; });
      if (keepFrom - v->begin() > 1) v->erase(v->begin(), keepFrom - 1);
    }
  }
}

void StreamValueChain::reset(const VerifyConfig& cfg) {
  StreamChecker::reset(cfg);
  for (std::vector<std::vector<StoreAt>>& row : stores_) {
    for (std::vector<StoreAt>& v : row) v.clear();
  }
  for (NodeUpgrades& u : upgrades_) {
    u.ts.clear();
    u.fifo.clear();
  }
  live_.clear();
  liveFifo_.clear();
  for (PoolMultiset<GlobalTime>& fs : floors_) fs.clear();
}

std::size_t StreamValueChain::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const std::vector<std::vector<StoreAt>>& row : stores_) {
    for (const std::vector<StoreAt>& v : row) {
      bytes += sizeof(v) + v.size() * sizeof(StoreAt);
    }
  }
  for (const NodeUpgrades& u : upgrades_) {
    bytes += sizeof(NodeUpgrades);
    bytes += u.ts.size() * (sizeof(TransactionId) + sizeof(GlobalTime) + 48);
    bytes += u.fifo.size() * sizeof(TransactionId);
  }
  bytes += live_.size() * (sizeof(TransactionId) + sizeof(LiveTxn) + 16);
  bytes += liveFifo_.size() * sizeof(TransactionId);
  for (const PoolMultiset<GlobalTime>& fs : floors_) {
    bytes += fs.size() * (sizeof(GlobalTime) + 48);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// The full suite as one pipeline stage
// ---------------------------------------------------------------------------
StreamCheckerSet::StreamCheckerSet(const VerifyConfig& cfg)
    : cfg_(cfg),
      programOrder_(cfg),
      claim2_(cfg),
      claim3_(cfg),
      epochs_(cfg),
      sc_(cfg),
      valueChain_(cfg) {}

void StreamCheckerSet::finish() {
  if (finished_) return;
  finished_ = true;
  programOrder_.finish();
  claim2_.finish();
  claim3_.finish();
  epochs_.finish();
  sc_.finish();
  valueChain_.finish();
}

void StreamCheckerSet::reset(const VerifyConfig& cfg) {
  cfg_ = cfg;
  programOrder_.reset(cfg);
  claim2_.reset(cfg);
  claim3_.reset(cfg);
  epochs_.reset(cfg);
  sc_.reset(cfg);
  valueChain_.reset(cfg);
  opsSeen_ = 0;
  txnsSeen_ = 0;
  finished_ = false;
}

CheckReport StreamCheckerSet::report() const {
  CheckReport r;
  const StreamChecker* cores[] = {&programOrder_, &claim2_, &claim3_,
                                  &epochs_,       &sc_,     &valueChain_};
  for (const StreamChecker* core : cores) {
    const CheckReport& part = core->report();
    r.violations.insert(r.violations.end(), part.violations.begin(),
                        part.violations.end());
    r.epochsBuilt = std::max(r.epochsBuilt, part.epochsBuilt);
  }
  r.opsChecked = opsSeen_;
  r.txnsChecked = txnsSeen_;
  return r;
}

std::size_t StreamCheckerSet::memoryFootprint() const {
  return sizeof(*this) + programOrder_.memoryFootprint() +
         claim2_.memoryFootprint() + claim3_.memoryFootprint() +
         epochs_.memoryFootprint() + sc_.memoryFootprint() +
         valueChain_.memoryFootprint();
}

void StreamCheckerSet::onRunBegin(const SystemConfig& config) {
  // A VerifyConfig built for one backend silently mis-checks another's
  // traffic (e.g. Tardis leases validated under directory assumptions), so
  // a mismatched pair is a programming error, not a verdict.
  if (config.protocol != cfg_.protocol) {
    throw SimError(std::string("checker/backend mismatch: checkers built "
                               "for protocol '") +
                   lcdc::toString(cfg_.protocol) + "' attached to a '" +
                   lcdc::toString(config.protocol) + "' run");
  }
}
void StreamCheckerSet::onRunEnd(const RunResult& result) {}

void StreamCheckerSet::onSerialize(const proto::TxnInfo& txn) {
  txnsSeen_ += 1;
  claim3_.onSerialize(txn);
  valueChain_.onSerialize(txn);
}

void StreamCheckerSet::onTxnConverted(TransactionId id, TxnKind newKind) {
  claim3_.onTxnConverted(id, newKind);
}

void StreamCheckerSet::onStamp(NodeId node, TransactionId txn,
                               SerialIdx serial, BlockId block, StampRole role,
                               GlobalTime ts, AState oldA, AState newA) {
  claim2_.onStamp(node, txn, serial, block, role, ts, oldA, newA);
  claim3_.onStamp(node, txn, serial, block, role, ts, oldA, newA);
  epochs_.onStamp(node, txn, serial, block, role, ts, oldA, newA);
  valueChain_.onStamp(node, txn, serial, block, role, ts, oldA, newA);
}

void StreamCheckerSet::onValueReceived(NodeId node, TransactionId txn,
                                       BlockId block,
                                       const BlockValue& value) {
  valueChain_.onValueReceived(node, txn, block, value);
}

void StreamCheckerSet::onOperation(const proto::OpRecord& op) {
  opsSeen_ += 1;
  programOrder_.onOperation(op);
  epochs_.onOperation(op);
  sc_.onOperation(op);
  valueChain_.onOperation(op);
}

void StreamCheckerSet::onNack(NodeId requester, BlockId block, NackKind kind) {}
void StreamCheckerSet::onPutShared(NodeId node, BlockId block) {}
void StreamCheckerSet::onDeadlockResolved(NodeId node, BlockId block,
                                          NodeId impliedAcker) {}

// ---------------------------------------------------------------------------
// StatsObserver
// ---------------------------------------------------------------------------
void StatsObserver::noteEvent() {
  stats_.events += 1;
  if (watch_ != nullptr && (stats_.events & 0xFFFU) == 0) {
    stats_.peakCheckerBytes =
        std::max(stats_.peakCheckerBytes, watch_->memoryFootprint());
  }
}

double StatsObserver::eventsPerSecond() const {
  return stats_.seconds > 0
             ? static_cast<double>(stats_.events) / stats_.seconds
             : 0.0;
}

std::string StatsObserver::report() const {
  std::ostringstream os;
  os << "events: " << stats_.events << '\n';
  os << "  serializations: " << stats_.serializations
     << " (conversions: " << stats_.conversions << ")\n";
  os << "  stamps: " << stats_.stamps << " (upgrades " << stats_.upgrades
     << ", downgrades " << stats_.downgrades << ")\n";
  os << "  operations: " << stats_.operations << " (loads " << stats_.loads
     << ", stores " << stats_.stores << ", forwarded "
     << stats_.forwardedLoads << ")\n";
  os << "  value transfers: " << stats_.valueTransfers << '\n';
  os << "  nacks: " << stats_.nacks << ", put-shared: " << stats_.putShareds
     << ", deadlocks resolved: " << stats_.deadlocksResolved << '\n';
  if (!stats_.txnsByKind.empty()) {
    os << "txns by kind (as serialized):\n";
    for (const auto& [kind, n] : stats_.txnsByKind) {
      os << "  " << toString(kind) << ": " << n << '\n';
    }
  }
  if (watch_ != nullptr) {
    os << "peak checker state: " << stats_.peakCheckerBytes << " bytes\n";
  }
  return os.str();
}

void StatsObserver::onRunBegin(const SystemConfig& config) {
  stats_.haveConfig = true;
  stats_.config = config;
  beginNanos_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void StatsObserver::onRunEnd(const RunResult& result) {
  stats_.haveResult = true;
  stats_.result = result;
  if (beginNanos_ != 0) {
    const auto now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    stats_.seconds = static_cast<double>(now - beginNanos_) * 1e-9;
  }
  if (watch_ != nullptr) {
    stats_.peakCheckerBytes =
        std::max(stats_.peakCheckerBytes, watch_->memoryFootprint());
  }
}

void StatsObserver::onSerialize(const proto::TxnInfo& txn) {
  noteEvent();
  stats_.serializations += 1;
  stats_.txnsByKind[txn.kind] += 1;
}

void StatsObserver::onTxnConverted(TransactionId id, TxnKind newKind) {
  noteEvent();
  stats_.conversions += 1;
}

void StatsObserver::onStamp(NodeId node, TransactionId txn, SerialIdx serial,
                            BlockId block, proto::StampRole role,
                            GlobalTime ts, AState oldA, AState newA) {
  noteEvent();
  stats_.stamps += 1;
  if (role == StampRole::Upgrade) {
    stats_.upgrades += 1;
  } else {
    stats_.downgrades += 1;
  }
}

void StatsObserver::onValueReceived(NodeId node, TransactionId txn,
                                    BlockId block, const BlockValue& value) {
  noteEvent();
  stats_.valueTransfers += 1;
}

void StatsObserver::onOperation(const proto::OpRecord& op) {
  noteEvent();
  stats_.operations += 1;
  if (op.kind == OpKind::Store) {
    stats_.stores += 1;
  } else {
    stats_.loads += 1;
    if (op.forwarded) stats_.forwardedLoads += 1;
  }
}

void StatsObserver::onNack(NodeId requester, BlockId block, NackKind kind) {
  noteEvent();
  stats_.nacks += 1;
}

void StatsObserver::onPutShared(NodeId node, BlockId block) {
  noteEvent();
  stats_.putShareds += 1;
}

void StatsObserver::onDeadlockResolved(NodeId node, BlockId block,
                                       NodeId impliedAcker) {
  noteEvent();
  stats_.deadlocksResolved += 1;
}

}  // namespace lcdc::verify
