#include "verify/stream.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace lcdc::verify {

namespace {

using proto::OpRecord;
using proto::StampRole;

// Settling lag before a transaction with a full stamp set finalizes online:
// a later downgrade (a second sharer's inval ack, a late writeback ack) can
// still arrive shortly after, so wait until the block's serialization has
// moved this far past the transaction.  Purely a false-negative/latency
// trade-off — finalizing early can only miss a violation, never invent one.
constexpr SerialIdx kSettleLag = 2;
// Backstops that keep state bounded even on adversarial (mutant) streams.
constexpr std::size_t kMaxPendingTxnsPerBlock = 4096;
constexpr std::size_t kLineHistoryCap = 64;
constexpr std::size_t kBlockHistoryCap = 128;
constexpr std::size_t kParkedOpsCap = 64;
constexpr std::size_t kUpgradeCap = 256;
constexpr std::size_t kLiveTxnCap = 4096;
/// SC merge window: past this many buffered ops the smallest head retires
/// even if some processor has not advanced past it — a processor whose
/// program finished (or a pathological trace) must not pin the window.
constexpr std::size_t kScReorderCap = 8192;

std::string opToString(const OpRecord& op) {
  std::ostringstream os;
  os << toString(op.kind) << " p" << op.proc << " #" << op.progIdx
     << " block " << op.block << " word " << op.word << " value "
     << op.value << " ts " << toString(op.ts) << " bound-to txn "
     << op.boundTxn << " (serial " << op.boundSerial << ")";
  return os.str();
}

std::string epochToString(const clk::Epoch& e) {
  std::ostringstream os;
  os << toString(e.state) << " epoch at node " << e.node << " for block "
     << e.block << " [" << e.start << ", ";
  if (e.end == clk::kOpenEpoch) {
    os << "open";
  } else {
    os << e.end;
  }
  os << ") opened by txn " << e.txn << " (serial " << e.serial << ")";
  return os.str();
}

bool isExclusiveKind(TxnKind k) {
  switch (k) {
    case TxnKind::GetS_Idle:
    case TxnKind::GetS_Shared:
    case TxnKind::GetS_Exclusive:
    // Transaction 13's unique *upgrade* belongs to its Get-Shared half (the
    // writeback half upgrades nobody — memory takes the value, and the
    // entry clock absorbs the owner's stamp instead), so for the
    // Claim 3(b) upgrade-ordering rule it behaves as a Get-Shared.
    case TxnKind::Wb_BusyShared:
      return false;
    default:
      return true;
  }
}

/// Epoch intersection under [start, end) semantics; kOpenEpoch (max value)
/// acts as infinity.
bool epochsOverlap(const clk::Epoch& a, const clk::Epoch& b) {
  return a.start < b.end && b.start < a.end;
}

}  // namespace

void StreamChecker::addViolation(std::string check, std::string detail) {
  if (report_.violations.size() < cfg_.maxViolations) {
    report_.violations.push_back(
        Violation{std::move(check), std::move(detail)});
  } else if (report_.violations.size() == cfg_.maxViolations) {
    report_.violations.push_back(Violation{"...", "further violations elided"});
  }
}

// ---------------------------------------------------------------------------
// Program order embeds into Lamport order
// ---------------------------------------------------------------------------
void StreamProgramOrder::onOperation(const OpRecord& op) {
  report_.opsChecked += 1;
  if (!cfg_.tso) {
    ScState& st = sc_[op.proc];
    if (st.has) {
      const OpRecord& prev = st.last;
      if (op.progIdx <= prev.progIdx) {
        addViolation("program-order",
                     "ops recorded out of program order: " + opToString(prev) +
                         " then " + opToString(op));
      }
      const bool increases =
          op.ts.global > prev.ts.global ||
          (op.ts.global == prev.ts.global && op.ts.local > prev.ts.local);
      if (!increases) {
        addViolation("program-order",
                     "Lamport order breaks program order: " + opToString(prev) +
                         " then " + opToString(op));
      }
    }
    st.has = true;
    st.last = op;
    return;
  }

  // TSO.  Loads bind (and are observed) in program order; stores retire
  // FIFO, and every program-earlier op has been observed by the time a
  // store retires — so the program-order-earlier op set of each arriving
  // op is fully known on arrival.
  TsoState& t = tso_[op.proc];
  if (op.kind == OpKind::Store) {
    // Fold the loads that are program-order-earlier than this store.
    while (!t.pendingLoads.empty() &&
           t.pendingLoads.front().progIdx < op.progIdx) {
      const OpRecord& l = t.pendingLoads.front();
      if (!t.maxLoadBelow || t.maxLoadBelow->ts < l.ts) t.maxLoadBelow = l;
      t.pendingLoads.pop_front();
    }
    // The max-timestamp program-earlier op; ties (impossible on faithful
    // streams) resolve to the program-earlier op, like the batch walk.
    const OpRecord* bound = t.maxStore ? &*t.maxStore : nullptr;
    if (t.maxLoadBelow) {
      const OpRecord& lb = *t.maxLoadBelow;
      if (bound == nullptr || bound->ts < lb.ts ||
          (bound->ts == lb.ts && lb.progIdx < bound->progIdx)) {
        bound = &lb;
      }
    }
    if (bound != nullptr && !(bound->ts < op.ts)) {
      addViolation("tso-program-order",
                   "TSO-forbidden reordering: " + opToString(*bound) +
                       " then " + opToString(op));
    }
    if (!t.maxStore || t.maxStore->ts < op.ts) t.maxStore = op;
    return;
  }
  // Loads (forwarded ones included): must out-timestamp every earlier load;
  // the store->load direction is the one TSO exempts.
  if (t.maxLoad && !(t.maxLoad->ts < op.ts)) {
    addViolation("tso-program-order",
                 "TSO-forbidden reordering: " + opToString(*t.maxLoad) +
                     " then " + opToString(op));
  }
  if (!t.maxLoad || t.maxLoad->ts < op.ts) t.maxLoad = op;
  t.pendingLoads.push_back(op);
}

std::size_t StreamProgramOrder::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  bytes += sc_.size() * (sizeof(NodeId) + sizeof(ScState) + 48);
  for (const auto& [proc, t] : tso_) {
    bytes += sizeof(NodeId) + sizeof(TsoState) + 48;
    bytes += t.pendingLoads.size() * sizeof(OpRecord);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Claim 2
// ---------------------------------------------------------------------------
void StreamClaim2::onStamp(NodeId node, TransactionId txn, SerialIdx serial,
                           BlockId block, StampRole role, GlobalTime ts,
                           AState oldA, AState newA) {
  Last& prev = last_[{node, block}];
  if (prev.has) {
    if (serial <= prev.serial) {
      std::ostringstream os;
      os << "node " << node << " block " << block
         << ": A-state change for txn " << txn << " (serial " << serial
         << ") applied after txn " << prev.txn << " (serial " << prev.serial
         << ")";
      addViolation("claim2", os.str());
    }
    if (ts <= prev.ts) {
      std::ostringstream os;
      os << "node " << node << " block " << block << ": clock not monotone ("
         << prev.ts << " then " << ts << ")";
      addViolation("claim2", os.str());
    }
  }
  prev.has = true;
  prev.txn = txn;
  prev.serial = serial;
  prev.ts = ts;
}

std::size_t StreamClaim2::memoryFootprint() const {
  return sizeof(*this) +
         last_.size() * (sizeof(std::pair<NodeId, BlockId>) + sizeof(Last) + 48);
}

// ---------------------------------------------------------------------------
// Claim 3
// ---------------------------------------------------------------------------
void StreamClaim3::onSerialize(const proto::TxnInfo& txn) {
  BlockState& bs = blocks_[txn.block];
  bs.maxSerial = std::max(bs.maxSerial, txn.serial);
  bs.pending.insert_or_assign(txn.serial, Pending{txn, {}});
  live_[txn.id] = {txn.block, txn.serial};
  tryFinalize(bs);
}

void StreamClaim3::onTxnConverted(TransactionId id, TxnKind newKind) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  BlockState& bs = blocks_[it->second.first];
  const auto pit = bs.pending.find(it->second.second);
  if (pit != bs.pending.end()) pit->second.txn.kind = newKind;
}

void StreamClaim3::onStamp(NodeId node, TransactionId txn, SerialIdx serial,
                           BlockId block, StampRole role, GlobalTime ts,
                           AState oldA, AState newA) {
  const auto it = live_.find(txn);
  if (it == live_.end()) return;  // stamp for an already-finalized txn
  BlockState& bs = blocks_[it->second.first];
  const auto pit = bs.pending.find(it->second.second);
  if (pit == bs.pending.end()) return;
  Agg& a = pit->second.agg;
  if (role == StampRole::Downgrade) {
    a.downgrades += 1;
    a.maxDowngrade = std::max(a.maxDowngrade, ts);
  } else {
    a.upgrades += 1;
    a.upgrade = ts;
  }
  tryFinalize(bs);
}

void StreamClaim3::tryFinalize(BlockState& bs) {
  while (!bs.pending.empty()) {
    const auto it = bs.pending.begin();
    const Pending& p = it->second;
    const bool complete = p.agg.upgrades >= 1 && p.agg.downgrades >= 1;
    const bool settled = bs.maxSerial >= p.txn.serial + kSettleLag;
    if (!((complete && settled) ||
          bs.pending.size() > kMaxPendingTxnsPerBlock)) {
      break;
    }
    finalize(bs, p);
    live_.erase(p.txn.id);
    bs.pending.erase(it);
  }
}

void StreamClaim3::finalize(BlockState& bs, const Pending& p) {
  report_.txnsChecked += 1;
  const proto::TxnInfo& txn = p.txn;
  const Agg& t = p.agg;
  if (t.upgrades == 0) {
    if (cfg_.expectComplete) {
      std::ostringstream os;
      os << "txn " << txn.id << " (" << toString(txn.kind) << ", serial "
         << txn.serial << ", block " << txn.block << ") has no upgrade stamp";
      addViolation("claim3-structure", os.str());
    }
    return;
  }
  if (t.upgrades != 1) {
    std::ostringstream os;
    os << "txn " << txn.id << " has " << t.upgrades
       << " upgrade stamps (expected exactly one)";
    addViolation("claim3-structure", os.str());
  }
  if (t.downgrades == 0) {
    std::ostringstream os;
    os << "txn " << txn.id << " (" << toString(txn.kind)
       << ") has no downgrade stamp";
    addViolation("claim3-structure", os.str());
  }
  // Claim 3(a).
  if (t.maxDowngrade > t.upgrade) {
    std::ostringstream os;
    os << "claim 3(a): txn " << txn.id << " (" << toString(txn.kind)
       << ", block " << txn.block << "): downgrade stamp " << t.maxDowngrade
       << " exceeds upgrade stamp " << t.upgrade;
    addViolation("claim3a", os.str());
  }
  // Claim 3(b): for a pair (T, T') with T before T' and either exclusive,
  // upgrade(T) < upgrade(T').  Transactions finalize in serialization
  // order per block, so the running maxima match the batch sweep.
  const bool exclusive = isExclusiveKind(txn.kind);
  if (exclusive && t.upgrade <= bs.maxUpgrade) {
    std::ostringstream os;
    os << "claim 3(b): exclusive txn " << txn.id << " ("
       << toString(txn.kind) << ", serial " << txn.serial << ", block "
       << txn.block << ") upgrade stamp " << t.upgrade
       << " does not exceed an earlier transaction's " << bs.maxUpgrade;
    addViolation("claim3b", os.str());
  }
  if (!exclusive && t.upgrade <= bs.maxExclUpgrade) {
    std::ostringstream os;
    os << "claim 3(b): txn " << txn.id << " (" << toString(txn.kind)
       << ", serial " << txn.serial << ", block " << txn.block
       << ") upgrade stamp " << t.upgrade
       << " does not exceed an earlier exclusive transaction's "
       << bs.maxExclUpgrade;
    addViolation("claim3b", os.str());
  }
  bs.maxUpgrade = std::max(bs.maxUpgrade, t.upgrade);
  if (exclusive) bs.maxExclUpgrade = std::max(bs.maxExclUpgrade, t.upgrade);
}

void StreamClaim3::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& [block, bs] : blocks_) {
    while (!bs.pending.empty()) {
      const auto it = bs.pending.begin();
      finalize(bs, it->second);
      live_.erase(it->second.txn.id);
      bs.pending.erase(it);
    }
  }
}

std::size_t StreamClaim3::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& [block, bs] : blocks_) {
    bytes += sizeof(BlockId) + sizeof(BlockState) + 48;
    bytes += bs.pending.size() * (sizeof(SerialIdx) + sizeof(Pending) + 48);
  }
  bytes += live_.size() *
           (sizeof(TransactionId) + sizeof(std::pair<BlockId, SerialIdx>) + 16);
  return bytes;
}

// ---------------------------------------------------------------------------
// Lemmas 1 and 2 (+ Claim 4)
// ---------------------------------------------------------------------------
bool StreamEpochs::lemma1Relevant(const clk::Epoch& e) const {
  // Processor S/X epochs and directory X (Idle: memory is the valid copy)
  // epochs; directory A_S "epochs" carry no operations and their
  // boundaries are conventional (the home's by-definition downgrades).
  if (e.state == AState::I) return false;
  const bool isDir = e.node >= cfg_.numProcessors;
  return !isDir || e.state == AState::X;
}

void StreamEpochs::checkAgainstEpoch(const OpRecord& op, const clk::Epoch& e,
                                     bool endKnown) {
  if (op.ts.global < e.start ||
      (endKnown && e.end != clk::kOpenEpoch && op.ts.global >= e.end)) {
    addViolation("lemma2", "operation outside its epoch: " + opToString(op) +
                               " not in " + epochToString(e));
    return;
  }
  if (op.kind == OpKind::Store && e.state != AState::X) {
    addViolation("lemma2", "store outside an exclusive epoch: " +
                               opToString(op) + " in " + epochToString(e));
  }
  if (op.kind == OpKind::Load && e.state == AState::I) {
    addViolation("lemma2", "load inside an invalid interval: " + opToString(op));
  }
}

void StreamEpochs::closeCurrent(Line& line, GlobalTime end) {
  clk::Epoch e = line.current;
  e.end = end;
  // Ops whose end-of-epoch check had to wait: the epoch boundary is now
  // exact, so run the full containment + state check.
  for (const OpRecord& op : line.parked) checkAgainstEpoch(op, e, true);
  line.parked.clear();
  // Lemma 1: each overlap pair is counted exactly once — when the
  // later-closing epoch closes against the block's closed-epoch history
  // (the earlier-closing partner is already there).
  if (lemma1Relevant(e)) {
    auto& hist = closedByBlock_[e.block];
    for (const clk::Epoch& other : hist) {
      if (other.node == e.node) continue;
      if (!epochsOverlap(e, other)) continue;
      if (e.state != AState::X && other.state != AState::X) continue;
      const bool eLater = e.start >= other.start;
      const clk::Epoch& later = eLater ? e : other;
      const clk::Epoch& earlier = eLater ? other : e;
      addViolation("lemma1", "overlapping epochs: " + epochToString(later) +
                                 " vs " + epochToString(earlier));
    }
    hist.push_back(e);
    if (hist.size() > kBlockHistoryCap) hist.pop_front();
  }
  line.history.push_back(e);
  if (line.history.size() > kLineHistoryCap) line.history.pop_front();
  line.hasCurrent = false;
}

void StreamEpochs::onStamp(NodeId node, TransactionId txn, SerialIdx serial,
                           BlockId block, StampRole role, GlobalTime ts,
                           AState oldA, AState newA) {
  GlobalTime& lastTs = lastStampTs_[node];
  if (ts > lastTs) lastTs = ts;
  Line& line = lines_[{node, block}];
  if (!line.sawStamp) {
    line.sawStamp = true;
    if (node >= cfg_.numProcessors) {
      // A directory entry starts Idle = A_X: memory is the valid copy.
      line.current = clk::Epoch{node, block, AState::X, 0, clk::kOpenEpoch,
                                kNoTransaction, 0};
      line.hasCurrent = true;
      report_.epochsBuilt += 1;
    }
  }
  if (line.hasCurrent) closeCurrent(line, ts);
  line.current =
      clk::Epoch{node, block, newA, ts, clk::kOpenEpoch, txn, serial};
  line.hasCurrent = true;
  report_.epochsBuilt += 1;
}

void StreamEpochs::onOperation(const OpRecord& op) {
  report_.opsChecked += 1;
  if (op.forwarded) {
    // Store-buffer forwarded loads never touch the coherence protocol;
    // they are validated by the TSO forwarding check instead.
    if (!cfg_.tso) {
      addViolation("lemma2",
                   "forwarded load in an SC-mode trace: " + opToString(op));
    }
    return;
  }
  Line& line = lines_[{op.proc, op.block}];
  // Latest epoch of the bound transaction at this line: the current epoch
  // first, then the closed history newest-to-oldest.
  if (line.hasCurrent && line.current.txn == op.boundTxn) {
    const auto lit = lastStampTs_.find(op.proc);
    const GlobalTime nodeClock = lit == lastStampTs_.end() ? 0 : lit->second;
    if (op.ts.global >= line.current.start && op.ts.global > nodeClock &&
        line.parked.size() < kParkedOpsCap) {
      // The epoch's end is still unknown and the node clock has not yet
      // passed the op, so containment cannot be decided — defer to close.
      // (On faithful streams ops never out-run their node's clock, so
      // this path is exercised only by hand-built or broken traces.)
      line.parked.push_back(op);
      return;
    }
    checkAgainstEpoch(op, line.current, false);
    return;
  }
  for (auto it = line.history.rbegin(); it != line.history.rend(); ++it) {
    if (it->txn == op.boundTxn) {
      checkAgainstEpoch(op, *it, true);
      return;
    }
  }
  addViolation("lemma2",
               "operation bound to a transaction with no epoch at its "
               "processor: " + opToString(op));
}

void StreamEpochs::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& [key, line] : lines_) {
    if (!line.hasCurrent) continue;
    const clk::Epoch e = line.current;  // end stays open
    for (const OpRecord& op : line.parked) checkAgainstEpoch(op, e, false);
    line.parked.clear();
    if (lemma1Relevant(e)) {
      auto& hist = closedByBlock_[e.block];
      for (const clk::Epoch& other : hist) {
        if (other.node == e.node) continue;
        if (!epochsOverlap(e, other)) continue;
        if (e.state != AState::X && other.state != AState::X) continue;
        const bool eLater = e.start >= other.start;
        addViolation("lemma1",
                     "overlapping epochs: " +
                         epochToString(eLater ? e : other) + " vs " +
                         epochToString(eLater ? other : e));
      }
      hist.push_back(e);
      if (hist.size() > kBlockHistoryCap) hist.pop_front();
    }
    line.hasCurrent = false;
  }
}

std::size_t StreamEpochs::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& [key, line] : lines_) {
    bytes += sizeof(key) + sizeof(Line) + 48;
    bytes += line.parked.size() * sizeof(OpRecord);
    bytes += line.history.size() * sizeof(clk::Epoch);
  }
  for (const auto& [block, hist] : closedByBlock_) {
    bytes += sizeof(BlockId) + 48 + hist.size() * sizeof(clk::Epoch);
  }
  bytes += lastStampTs_.size() * (sizeof(NodeId) + sizeof(GlobalTime) + 16);
  return bytes;
}

// ---------------------------------------------------------------------------
// Main Theorem replay (+ total order, + TSO forwarding)
// ---------------------------------------------------------------------------
namespace {
std::uint64_t wordKey(BlockId b, WordIdx w) {
  return (static_cast<std::uint64_t>(b) << 16) | w;
}
}  // namespace

void StreamSequentialConsistency::judgeForwarded(const OpRecord& load,
                                                 const OpRecord* source) {
  if (source == nullptr) {
    addViolation("tso-forwarding",
                 "forwarded load with no program-order-earlier store: " +
                     opToString(load));
  } else if (source->value != load.value) {
    addViolation("tso-forwarding",
                 "forwarded load returned " + opToString(load) +
                     " but the youngest earlier store is " +
                     opToString(*source));
  }
}

void StreamSequentialConsistency::onOperation(const OpRecord& op) {
  report_.opsChecked += 1;
  if (op.forwarded) {
    if (!cfg_.tso) {
      // An SC machine has no store buffer; SC mode treats the forwarded
      // load as sourceless, like the batch check always did.
      judgeForwarded(op, nullptr);
    } else {
      // Judged once the processor's store stream retires past the load's
      // program position (or at finish): only then is "the youngest
      // program-order-earlier store" final.
      fwd_[{op.proc, op.block, op.word}].pending.push_back(op);
    }
  } else if (op.kind == OpKind::Store && cfg_.tso) {
    FwdState& f = fwd_[{op.proc, op.block, op.word}];
    while (!f.pending.empty() && f.pending.front().progIdx < op.progIdx) {
      judgeForwarded(f.pending.front(), f.hasStore ? &f.lastStore : nullptr);
      f.pending.pop_front();
    }
    f.hasStore = true;
    f.lastStore = op;
  }

  // Everything — forwarded loads included, for the total-order scan —
  // enters the merge window and retires in global Lamport order.
  ProcStream& s = procs_[op.proc];
  s.lastArrival = op.ts;
  s.pending.push_back(op);
  ++buffered_;
  drain(/*atEnd=*/false);
}

void StreamSequentialConsistency::drain(bool atEnd) {
  for (;;) {
    ProcStream* best = nullptr;
    for (auto& [id, s] : procs_) {
      if (s.pending.empty()) continue;
      if (best == nullptr || s.pending.front().ts < best->pending.front().ts) {
        best = &s;
      }
    }
    if (best == nullptr) return;
    if (!atEnd && buffered_ <= kScReorderCap) {
      // The head may retire only once every processor has provably moved
      // past it: a queue head above it, or a newest arrival at/above it
      // (per-processor timestamps are monotone, so everything that
      // processor emits later is above its newest arrival).
      const Timestamp& head = best->pending.front().ts;
      bool safe = true;
      for (NodeId p = 0; p < cfg_.numProcessors && safe; ++p) {
        const auto it = procs_.find(p);
        if (it == procs_.end()) {
          safe = false;  // never heard from p; it could still emit below head
        } else if (it->second.pending.empty() &&
                   it->second.lastArrival < head) {
          safe = false;
        }
      }
      if (!safe) return;
    }
    retire(best->pending.front());
    best->pending.pop_front();
    --buffered_;
  }
}

void StreamSequentialConsistency::retire(const OpRecord& op) {
  // Total order sanity: merged timestamps must be globally unique (and the
  // merge emits them in nondecreasing order on any per-processor-monotone
  // stream, so a regression here means the stream itself was malformed).
  if (hasRetired_ && !(lastRetired_.ts < op.ts)) {
    if (lastRetired_.ts == op.ts) {
      addViolation("total-order", "two operations share a timestamp: " +
                                      opToString(lastRetired_) + " and " +
                                      opToString(op));
    } else {
      addViolation("total-order",
                   "operation timestamps regress in observation order: " +
                       opToString(lastRetired_) + " then " + opToString(op));
    }
  }
  hasRetired_ = true;
  lastRetired_ = op;

  if (op.forwarded) return;  // judged against its own store stream instead

  const std::uint64_t k = wordKey(op.block, op.word);
  if (op.kind == OpKind::Store) {
    lastStore_.insert_or_assign(k, op);
    return;
  }
  const auto it = lastStore_.find(k);
  const Word expected = it == lastStore_.end() ? 0 : it->second.value;
  if (op.value != expected) {
    std::ostringstream os;
    os << "load returns " << op.value << " but the most recent store in "
       << "Lamport order "
       << (it == lastStore_.end()
               ? std::string("is absent (expected the initial value 0)")
               : "is " + opToString(it->second));
    os << "; load: " << opToString(op);
    addViolation(cfg_.tso ? "tso-memory-order" : "sequential-consistency",
                 os.str());
  }
}

void StreamSequentialConsistency::finish() {
  if (finished_) return;
  finished_ = true;
  // No further ops can arrive: release the merge window unconditionally
  // (still smallest-timestamp first), then judge forwarded loads with no
  // later same-word store — the youngest retired store is final now.
  drain(/*atEnd=*/true);
  for (auto& [key, f] : fwd_) {
    for (const OpRecord& l : f.pending) {
      judgeForwarded(l, f.hasStore ? &f.lastStore : nullptr);
    }
    f.pending.clear();
  }
}

std::size_t StreamSequentialConsistency::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& [id, s] : procs_) {
    bytes += sizeof(NodeId) + sizeof(ProcStream) + 48;
    bytes += s.pending.size() * sizeof(OpRecord);
  }
  bytes += lastStore_.size() * (sizeof(std::uint64_t) + sizeof(OpRecord) + 16);
  for (const auto& [key, f] : fwd_) {
    bytes += sizeof(key) + sizeof(FwdState) + 48;
    bytes += f.pending.size() * sizeof(OpRecord);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// Lemma 3 at every value transfer
// ---------------------------------------------------------------------------
void StreamValueChain::trackLive(TransactionId txn, BlockId block,
                                 GlobalTime floor, bool upgraded) {
  live_.insert_or_assign(txn, LiveTxn{block, floor, upgraded});
  floors_[block].insert(floor);
  liveFifo_.push_back(txn);
  while (liveFifo_.size() > kLiveTxnCap) {
    dropLive(liveFifo_.front());
    liveFifo_.pop_front();
  }
}

void StreamValueChain::dropLive(TransactionId txn) {
  const auto it = live_.find(txn);
  if (it == live_.end()) return;
  const auto fit = floors_.find(it->second.block);
  if (fit != floors_.end()) {
    const auto vit = fit->second.find(it->second.floor);
    if (vit != fit->second.end()) fit->second.erase(vit);
    if (fit->second.empty()) floors_.erase(fit);
  }
  live_.erase(it);
}

void StreamValueChain::moveFloor(LiveTxn& t, GlobalTime ts) {
  auto& fs = floors_[t.block];
  const auto vit = fs.find(t.floor);
  if (vit != fs.end()) fs.erase(vit);
  fs.insert(ts);
  t.floor = ts;
}

void StreamValueChain::onSerialize(const proto::TxnInfo& txn) {
  dropLive(txn.id);  // id reuse is impossible on faithful streams
  trackLive(txn.id, txn.block, 0, /*upgraded=*/false);
}

void StreamValueChain::onStamp(NodeId node, TransactionId txn,
                               SerialIdx serial, BlockId block, StampRole role,
                               GlobalTime ts, AState oldA, AState newA) {
  const auto lit = live_.find(txn);
  if (role != StampRole::Upgrade) {
    // A downgrade raises the pending floor: Claim 3(a) keeps every
    // downgrade at or below the upgrade (= t1) still to come.
    if (lit != live_.end() && !lit->second.upgraded &&
        ts > lit->second.floor) {
      moveFloor(lit->second, ts);
    }
    return;
  }
  NodeUpgrades& u = upgrades_[node];
  const auto it = u.ts.find(txn);
  if (it != u.ts.end()) {
    it->second = ts;  // re-stamp of a known transaction: supersede
  } else {
    u.ts.emplace(txn, ts);
    u.fifo.push_back(txn);
    while (u.fifo.size() > kUpgradeCap) {
      const auto evict = u.ts.find(u.fifo.front());
      u.fifo.pop_front();
      if (evict != u.ts.end()) u.ts.erase(evict);
    }
  }
  if (lit != live_.end()) {
    moveFloor(lit->second, ts);
    lit->second.upgraded = true;
  } else {
    // Serialization unobserved (truncated stream): start tracking here.
    trackLive(txn, block, ts, /*upgraded=*/true);
  }
}

void StreamValueChain::onOperation(const OpRecord& op) {
  if (op.kind != OpKind::Store) return;
  auto& v = stores_[{op.block, op.word}];
  const StoreAt s{op.ts.global, op.ts.local, op.ts.pid, op.value};
  const auto pos = std::upper_bound(
      v.begin(), v.end(), s, [](const StoreAt& a, const StoreAt& b) {
        if (a.global != b.global) return a.global < b.global;
        if (a.local != b.local) return a.local < b.local;
        return a.pid < b.pid;
      });
  v.insert(pos, s);
}

void StreamValueChain::onValueReceived(NodeId node, TransactionId txn,
                                       BlockId block,
                                       const BlockValue& value) {
  const auto uit = upgrades_.find(node);
  if (uit == upgrades_.end()) return;
  const auto tit = uit->second.ts.find(txn);
  if (tit == uit->second.ts.end()) return;  // downgrade-side receipt (home)
  const GlobalTime t1 = tit->second;
  // Consumed: a transaction has exactly one judgeable value receipt, so it
  // stops holding the prune floor down.
  uit->second.ts.erase(tit);
  dropLive(txn);

  // Every future judgeable receipt on this block starts at or above the
  // minimum floor of its still-live transactions: a live one's t1 is at or
  // above its own floor, and a not-yet-serialized one's t1 exceeds the
  // epoch starts already live (Claim 3(b) for the exclusive side; for the
  // shared side any store under an older start would sit in an exclusive
  // epoch overlapping the new one, which Lemma 1 forbids).
  const auto fit = floors_.find(block);
  const GlobalTime pruneFloor = fit == floors_.end() || fit->second.empty()
                                    ? clk::kOpenEpoch
                                    : *fit->second.begin();

  report_.txnsChecked += 1;
  for (WordIdx w = 0; w < value.size(); ++w) {
    const auto sit = stores_.find({block, w});
    Word expected = 0;
    if (sit != stores_.end()) {
      const auto& v = sit->second;
      // Most recent store strictly before t1 (stores of the receiving
      // epoch itself have global >= t1).
      const auto firstAt = std::lower_bound(
          v.begin(), v.end(), t1,
          [](const StoreAt& s, GlobalTime t) { return s.global < t; });
      if (firstAt != v.begin()) expected = (firstAt - 1)->value;
    }
    if (value[w] != expected) {
      std::ostringstream os;
      os << "lemma 3: node " << node << " received word " << w << " of block "
         << block << " = " << value[w] << " for txn " << txn
         << " (epoch start " << t1 << "), but the most recent store prior to "
         << t1 << " wrote " << expected;
      addViolation("lemma3-values", os.str());
    }
    // Prune to the youngest store below the floor (plus everything above
    // it) — bounded history without ever dropping a store a future
    // receipt could still name.
    if (sit != stores_.end()) {
      auto& v = sit->second;
      const auto keepFrom = std::lower_bound(
          v.begin(), v.end(), pruneFloor,
          [](const StoreAt& s, GlobalTime t) { return s.global < t; });
      if (keepFrom - v.begin() > 1) v.erase(v.begin(), keepFrom - 1);
    }
  }
}

std::size_t StreamValueChain::memoryFootprint() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& [key, v] : stores_) {
    bytes += sizeof(key) + 48 + v.size() * sizeof(StoreAt);
  }
  for (const auto& [node, u] : upgrades_) {
    bytes += sizeof(NodeId) + 48;
    bytes += u.ts.size() * (sizeof(TransactionId) + sizeof(GlobalTime) + 48);
    bytes += u.fifo.size() * sizeof(TransactionId);
  }
  bytes += live_.size() * (sizeof(TransactionId) + sizeof(LiveTxn) + 16);
  bytes += liveFifo_.size() * sizeof(TransactionId);
  for (const auto& [block, fs] : floors_) {
    bytes += sizeof(BlockId) + 48 + fs.size() * (sizeof(GlobalTime) + 48);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// The full suite as one pipeline stage
// ---------------------------------------------------------------------------
StreamCheckerSet::StreamCheckerSet(const VerifyConfig& cfg)
    : cfg_(cfg),
      programOrder_(cfg),
      claim2_(cfg),
      claim3_(cfg),
      epochs_(cfg),
      sc_(cfg),
      valueChain_(cfg) {}

void StreamCheckerSet::finish() {
  if (finished_) return;
  finished_ = true;
  programOrder_.finish();
  claim2_.finish();
  claim3_.finish();
  epochs_.finish();
  sc_.finish();
  valueChain_.finish();
}

CheckReport StreamCheckerSet::report() const {
  CheckReport r;
  const StreamChecker* cores[] = {&programOrder_, &claim2_, &claim3_,
                                  &epochs_,       &sc_,     &valueChain_};
  for (const StreamChecker* core : cores) {
    const CheckReport& part = core->report();
    r.violations.insert(r.violations.end(), part.violations.begin(),
                        part.violations.end());
    r.epochsBuilt = std::max(r.epochsBuilt, part.epochsBuilt);
  }
  r.opsChecked = opsSeen_;
  r.txnsChecked = txnsSeen_;
  return r;
}

std::size_t StreamCheckerSet::memoryFootprint() const {
  return sizeof(*this) + programOrder_.memoryFootprint() +
         claim2_.memoryFootprint() + claim3_.memoryFootprint() +
         epochs_.memoryFootprint() + sc_.memoryFootprint() +
         valueChain_.memoryFootprint();
}

void StreamCheckerSet::onRunBegin(const SystemConfig& config) {}
void StreamCheckerSet::onRunEnd(const RunResult& result) {}

void StreamCheckerSet::onSerialize(const proto::TxnInfo& txn) {
  txnsSeen_ += 1;
  claim3_.onSerialize(txn);
  valueChain_.onSerialize(txn);
}

void StreamCheckerSet::onTxnConverted(TransactionId id, TxnKind newKind) {
  claim3_.onTxnConverted(id, newKind);
}

void StreamCheckerSet::onStamp(NodeId node, TransactionId txn,
                               SerialIdx serial, BlockId block, StampRole role,
                               GlobalTime ts, AState oldA, AState newA) {
  claim2_.onStamp(node, txn, serial, block, role, ts, oldA, newA);
  claim3_.onStamp(node, txn, serial, block, role, ts, oldA, newA);
  epochs_.onStamp(node, txn, serial, block, role, ts, oldA, newA);
  valueChain_.onStamp(node, txn, serial, block, role, ts, oldA, newA);
}

void StreamCheckerSet::onValueReceived(NodeId node, TransactionId txn,
                                       BlockId block,
                                       const BlockValue& value) {
  valueChain_.onValueReceived(node, txn, block, value);
}

void StreamCheckerSet::onOperation(const proto::OpRecord& op) {
  opsSeen_ += 1;
  programOrder_.onOperation(op);
  epochs_.onOperation(op);
  sc_.onOperation(op);
  valueChain_.onOperation(op);
}

void StreamCheckerSet::onNack(NodeId requester, BlockId block, NackKind kind) {}
void StreamCheckerSet::onPutShared(NodeId node, BlockId block) {}
void StreamCheckerSet::onDeadlockResolved(NodeId node, BlockId block,
                                          NodeId impliedAcker) {}

// ---------------------------------------------------------------------------
// StatsObserver
// ---------------------------------------------------------------------------
void StatsObserver::noteEvent() {
  stats_.events += 1;
  if (watch_ != nullptr && (stats_.events & 0xFFFU) == 0) {
    stats_.peakCheckerBytes =
        std::max(stats_.peakCheckerBytes, watch_->memoryFootprint());
  }
}

double StatsObserver::eventsPerSecond() const {
  return stats_.seconds > 0
             ? static_cast<double>(stats_.events) / stats_.seconds
             : 0.0;
}

std::string StatsObserver::report() const {
  std::ostringstream os;
  os << "events: " << stats_.events << '\n';
  os << "  serializations: " << stats_.serializations
     << " (conversions: " << stats_.conversions << ")\n";
  os << "  stamps: " << stats_.stamps << " (upgrades " << stats_.upgrades
     << ", downgrades " << stats_.downgrades << ")\n";
  os << "  operations: " << stats_.operations << " (loads " << stats_.loads
     << ", stores " << stats_.stores << ", forwarded "
     << stats_.forwardedLoads << ")\n";
  os << "  value transfers: " << stats_.valueTransfers << '\n';
  os << "  nacks: " << stats_.nacks << ", put-shared: " << stats_.putShareds
     << ", deadlocks resolved: " << stats_.deadlocksResolved << '\n';
  if (!stats_.txnsByKind.empty()) {
    os << "txns by kind (as serialized):\n";
    for (const auto& [kind, n] : stats_.txnsByKind) {
      os << "  " << toString(kind) << ": " << n << '\n';
    }
  }
  if (watch_ != nullptr) {
    os << "peak checker state: " << stats_.peakCheckerBytes << " bytes\n";
  }
  return os.str();
}

void StatsObserver::onRunBegin(const SystemConfig& config) {
  stats_.haveConfig = true;
  stats_.config = config;
  beginNanos_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void StatsObserver::onRunEnd(const RunResult& result) {
  stats_.haveResult = true;
  stats_.result = result;
  if (beginNanos_ != 0) {
    const auto now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    stats_.seconds = static_cast<double>(now - beginNanos_) * 1e-9;
  }
  if (watch_ != nullptr) {
    stats_.peakCheckerBytes =
        std::max(stats_.peakCheckerBytes, watch_->memoryFootprint());
  }
}

void StatsObserver::onSerialize(const proto::TxnInfo& txn) {
  noteEvent();
  stats_.serializations += 1;
  stats_.txnsByKind[txn.kind] += 1;
}

void StatsObserver::onTxnConverted(TransactionId id, TxnKind newKind) {
  noteEvent();
  stats_.conversions += 1;
}

void StatsObserver::onStamp(NodeId node, TransactionId txn, SerialIdx serial,
                            BlockId block, proto::StampRole role,
                            GlobalTime ts, AState oldA, AState newA) {
  noteEvent();
  stats_.stamps += 1;
  if (role == StampRole::Upgrade) {
    stats_.upgrades += 1;
  } else {
    stats_.downgrades += 1;
  }
}

void StatsObserver::onValueReceived(NodeId node, TransactionId txn,
                                    BlockId block, const BlockValue& value) {
  noteEvent();
  stats_.valueTransfers += 1;
}

void StatsObserver::onOperation(const proto::OpRecord& op) {
  noteEvent();
  stats_.operations += 1;
  if (op.kind == OpKind::Store) {
    stats_.stores += 1;
  } else {
    stats_.loads += 1;
    if (op.forwarded) stats_.forwardedLoads += 1;
  }
}

void StatsObserver::onNack(NodeId requester, BlockId block, NackKind kind) {
  noteEvent();
  stats_.nacks += 1;
}

void StatsObserver::onPutShared(NodeId node, BlockId block) {
  noteEvent();
  stats_.putShareds += 1;
}

void StatsObserver::onDeadlockResolved(NodeId node, BlockId block,
                                       NodeId impliedAcker) {
  noteEvent();
  stats_.deadlocksResolved += 1;
}

}  // namespace lcdc::verify
