#include "verify/checkers.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "trace/replay.hpp"
#include "verify/stream.hpp"

namespace lcdc::verify {

namespace {

using trace::StampRecord;

/// Batch checking is replay: feed the recorded events, in their original
/// observation order, through the streaming core and flush it.  One
/// implementation per property; the recorded-trace path and the live
/// online path cannot disagree.
template <typename Core>
CheckReport runCore(const trace::Trace& trace, const VerifyConfig& cfg) {
  Core core(cfg);
  trace::replay(trace, core);
  core.finish();
  return core.report();
}

}  // namespace

std::string CheckReport::summary() const {
  std::ostringstream os;
  os << (ok() ? "OK" : "VIOLATED") << " — " << opsChecked << " ops, "
     << txnsChecked << " txns, " << epochsBuilt << " epochs";
  if (!ok()) {
    os << "; " << violations.size() << " violation(s), first: ["
       << violations.front().check << "] " << violations.front().detail;
  }
  return os.str();
}

void CheckReport::merge(CheckReport other) {
  for (auto& v : other.violations) violations.push_back(std::move(v));
  opsChecked += other.opsChecked;
  txnsChecked += other.txnsChecked;
  epochsBuilt += other.epochsBuilt;
}

std::string CheckReport::primaryCheck() const {
  return violations.empty() ? std::string{} : violations.front().check;
}

std::map<std::string, std::uint64_t> CheckReport::countsByCheck() const {
  std::map<std::string, std::uint64_t> counts;
  for (const Violation& v : violations) ++counts[v.check];
  return counts;
}

// ---------------------------------------------------------------------------
// Epoch construction (Section 3.3)
// ---------------------------------------------------------------------------
std::vector<clk::Epoch> buildEpochs(const trace::Trace& trace,
                                    const VerifyConfig& cfg) {
  // Stamps are recorded in each node's real-time order, and each node's
  // clock is strictly monotone, so grouping by (node, block) while keeping
  // record order yields each node's epoch sequence directly.
  std::map<std::pair<NodeId, BlockId>, std::vector<const StampRecord*>> byLine;
  for (const StampRecord& s : trace.stamps()) {
    byLine[{s.node, s.block}].push_back(&s);
  }

  std::vector<clk::Epoch> epochs;
  for (const auto& [key, stamps] : byLine) {
    const auto [node, block] = key;
    clk::Epoch current;
    current.node = node;
    current.block = block;
    bool open = false;
    if (node >= cfg.numProcessors) {
      // A directory entry starts Idle = A_X: memory is the valid copy.
      current.state = AState::X;
      current.start = 0;
      open = true;
    }
    for (const StampRecord* s : stamps) {
      if (open) {
        current.end = s->ts;
        epochs.push_back(current);
      }
      current = clk::Epoch{node, block, s->newA, s->ts, clk::kOpenEpoch,
                           s->txn, s->serial};
      open = true;
    }
    if (open) epochs.push_back(current);
  }
  return epochs;
}

CheckReport checkProgramOrder(const trace::Trace& trace,
                              const VerifyConfig& cfg) {
  return runCore<StreamProgramOrder>(trace, cfg);
}

CheckReport checkClaim2(const trace::Trace& trace, const VerifyConfig& cfg) {
  return runCore<StreamClaim2>(trace, cfg);
}

CheckReport checkClaim3(const trace::Trace& trace, const VerifyConfig& cfg) {
  return runCore<StreamClaim3>(trace, cfg);
}

CheckReport checkEpochs(const trace::Trace& trace, const VerifyConfig& cfg) {
  return runCore<StreamEpochs>(trace, cfg);
}

CheckReport checkSequentialConsistency(const trace::Trace& trace,
                                       const VerifyConfig& cfg) {
  return runCore<StreamSequentialConsistency>(trace, cfg);
}

CheckReport checkValueChain(const trace::Trace& trace,
                            const VerifyConfig& cfg) {
  return runCore<StreamValueChain>(trace, cfg);
}

CheckReport checkAll(const trace::Trace& trace, const VerifyConfig& cfg) {
  StreamCheckerSet set(cfg);
  trace::replay(trace, set);
  set.finish();
  return set.report();
}

}  // namespace lcdc::verify
