#include "verify/checkers.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/expect.hpp"

namespace lcdc::verify {

namespace {

using trace::StampRecord;
using proto::OpRecord;
using proto::StampRole;

void addViolation(CheckReport& report, const VerifyConfig& cfg,
                  std::string check, std::string detail) {
  if (report.violations.size() < cfg.maxViolations) {
    report.violations.push_back(
        Violation{std::move(check), std::move(detail)});
  } else if (report.violations.size() == cfg.maxViolations) {
    report.violations.push_back(Violation{"...", "further violations elided"});
  }
}

std::string opToString(const OpRecord& op) {
  std::ostringstream os;
  os << toString(op.kind) << " p" << op.proc << " #" << op.progIdx
     << " block " << op.block << " word " << op.word << " value "
     << op.value << " ts " << toString(op.ts) << " bound-to txn "
     << op.boundTxn << " (serial " << op.boundSerial << ")";
  return os.str();
}

std::string epochToString(const clk::Epoch& e) {
  std::ostringstream os;
  os << toString(e.state) << " epoch at node " << e.node << " for block "
     << e.block << " [" << e.start << ", ";
  if (e.end == clk::kOpenEpoch) {
    os << "open";
  } else {
    os << e.end;
  }
  os << ") opened by txn " << e.txn << " (serial " << e.serial << ")";
  return os.str();
}

bool isExclusiveKind(TxnKind k) {
  switch (k) {
    case TxnKind::GetS_Idle:
    case TxnKind::GetS_Shared:
    case TxnKind::GetS_Exclusive:
    // Transaction 13's unique *upgrade* belongs to its Get-Shared half (the
    // writeback half upgrades nobody — memory takes the value, and the
    // entry clock absorbs the owner's stamp instead), so for the
    // Claim 3(b) upgrade-ordering rule it behaves as a Get-Shared.
    case TxnKind::Wb_BusyShared:
      return false;
    default:
      return true;
  }
}

}  // namespace

std::string CheckReport::summary() const {
  std::ostringstream os;
  os << (ok() ? "OK" : "VIOLATED") << " — " << opsChecked << " ops, "
     << txnsChecked << " txns, " << epochsBuilt << " epochs";
  if (!ok()) {
    os << "; " << violations.size() << " violation(s), first: ["
       << violations.front().check << "] " << violations.front().detail;
  }
  return os.str();
}

void CheckReport::merge(CheckReport other) {
  for (auto& v : other.violations) violations.push_back(std::move(v));
  opsChecked += other.opsChecked;
  txnsChecked += other.txnsChecked;
  epochsBuilt += other.epochsBuilt;
}

std::string CheckReport::primaryCheck() const {
  return violations.empty() ? std::string{} : violations.front().check;
}

std::map<std::string, std::uint64_t> CheckReport::countsByCheck() const {
  std::map<std::string, std::uint64_t> counts;
  for (const Violation& v : violations) ++counts[v.check];
  return counts;
}

// ---------------------------------------------------------------------------
// Epoch construction (Section 3.3)
// ---------------------------------------------------------------------------
std::vector<clk::Epoch> buildEpochs(const trace::Trace& trace,
                                    const VerifyConfig& cfg) {
  // Stamps are recorded in each node's real-time order, and each node's
  // clock is strictly monotone, so grouping by (node, block) while keeping
  // record order yields each node's epoch sequence directly.
  std::map<std::pair<NodeId, BlockId>, std::vector<const StampRecord*>> byLine;
  for (const StampRecord& s : trace.stamps()) {
    byLine[{s.node, s.block}].push_back(&s);
  }

  std::vector<clk::Epoch> epochs;
  for (const auto& [key, stamps] : byLine) {
    const auto [node, block] = key;
    clk::Epoch current;
    current.node = node;
    current.block = block;
    bool open = false;
    if (node >= cfg.numProcessors) {
      // A directory entry starts Idle = A_X: memory is the valid copy.
      current.state = AState::X;
      current.start = 0;
      open = true;
    }
    for (const StampRecord* s : stamps) {
      if (open) {
        current.end = s->ts;
        epochs.push_back(current);
      }
      current = clk::Epoch{node, block, s->newA, s->ts, clk::kOpenEpoch,
                           s->txn, s->serial};
      open = true;
    }
    if (open) epochs.push_back(current);
  }
  return epochs;
}

// ---------------------------------------------------------------------------
// Program order embeds into Lamport order
// ---------------------------------------------------------------------------
CheckReport checkProgramOrder(const trace::Trace& trace,
                              const VerifyConfig& cfg) {
  CheckReport report;
  if (!cfg.tso) {
    std::unordered_map<NodeId, const OpRecord*> last;
    for (const OpRecord& op : trace.operations()) {
      report.opsChecked += 1;
      const auto it = last.find(op.proc);
      if (it != last.end()) {
        const OpRecord& prev = *it->second;
        if (op.progIdx <= prev.progIdx) {
          addViolation(report, cfg, "program-order",
                       "ops recorded out of program order: " +
                           opToString(prev) + " then " + opToString(op));
        }
        const bool increases =
            op.ts.global > prev.ts.global ||
            (op.ts.global == prev.ts.global && op.ts.local > prev.ts.local);
        if (!increases) {
          addViolation(report, cfg, "program-order",
                       "Lamport order breaks program order: " +
                           opToString(prev) + " then " + opToString(op));
        }
      }
      last[op.proc] = &op;
    }
    return report;
  }

  // TSO: program order must embed into Lamport order for every pair except
  // store -> load.  Equivalently, walking each processor's ops in program
  // order: a load must out-timestamp every earlier load; a store must
  // out-timestamp every earlier operation.
  std::map<NodeId, std::vector<const OpRecord*>> byProc;
  for (const OpRecord& op : trace.operations()) {
    report.opsChecked += 1;
    byProc[op.proc].push_back(&op);
  }
  for (auto& [proc, ops] : byProc) {
    std::sort(ops.begin(), ops.end(),
              [](const OpRecord* a, const OpRecord* b) {
                return a->progIdx < b->progIdx;
              });
    const OpRecord* maxAll = nullptr;
    const OpRecord* maxLoad = nullptr;
    for (const OpRecord* op : ops) {
      const OpRecord* bound =
          op->kind == OpKind::Store ? maxAll : maxLoad;
      if (bound != nullptr && !(bound->ts < op->ts)) {
        addViolation(report, cfg, "tso-program-order",
                     "TSO-forbidden reordering: " + opToString(*bound) +
                         " then " + opToString(*op));
      }
      if (maxAll == nullptr || maxAll->ts < op->ts) maxAll = op;
      if (op->kind == OpKind::Load &&
          (maxLoad == nullptr || maxLoad->ts < op->ts)) {
        maxLoad = op;
      }
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Claim 2: A-state changes follow the directory serialization order
// ---------------------------------------------------------------------------
CheckReport checkClaim2(const trace::Trace& trace, const VerifyConfig& cfg) {
  CheckReport report;
  std::map<std::pair<NodeId, BlockId>, const StampRecord*> lastStamp;
  for (const StampRecord& s : trace.stamps()) {
    const auto key = std::make_pair(s.node, s.block);
    const auto it = lastStamp.find(key);
    if (it != lastStamp.end()) {
      const StampRecord& prev = *it->second;
      if (s.serial <= prev.serial) {
        std::ostringstream os;
        os << "node " << s.node << " block " << s.block
           << ": A-state change for txn " << s.txn << " (serial " << s.serial
           << ") applied after txn " << prev.txn << " (serial "
           << prev.serial << ")";
        addViolation(report, cfg, "claim2", os.str());
      }
      if (s.ts <= prev.ts) {
        std::ostringstream os;
        os << "node " << s.node << " block " << s.block
           << ": clock not monotone (" << prev.ts << " then " << s.ts << ")";
        addViolation(report, cfg, "claim2", os.str());
      }
    }
    lastStamp[key] = &s;
  }
  return report;
}

// ---------------------------------------------------------------------------
// Claim 3 + the Section 3.1 structural facts
// ---------------------------------------------------------------------------
CheckReport checkClaim3(const trace::Trace& trace, const VerifyConfig& cfg) {
  CheckReport report;

  struct TxnStamps {
    GlobalTime maxDowngrade = 0;
    std::size_t downgrades = 0;
    GlobalTime upgrade = 0;
    std::size_t upgrades = 0;
    NodeId upgrader = kNoNode;
  };
  std::unordered_map<TransactionId, TxnStamps> byTxn;
  for (const StampRecord& s : trace.stamps()) {
    TxnStamps& t = byTxn[s.txn];
    if (s.role == StampRole::Downgrade) {
      t.downgrades += 1;
      t.maxDowngrade = std::max(t.maxDowngrade, s.ts);
    } else {
      t.upgrades += 1;
      t.upgrade = s.ts;
      t.upgrader = s.node;
    }
  }

  // Per-block serialization order for Claim 3(b).
  std::map<BlockId, std::vector<const proto::TxnInfo*>> byBlock;
  for (const auto& rec : trace.serializations()) {
    byBlock[rec.txn.block].push_back(&rec.txn);
  }

  for (auto& [block, txns] : byBlock) {
    std::sort(txns.begin(), txns.end(),
              [](const proto::TxnInfo* a, const proto::TxnInfo* b) {
                return a->serial < b->serial;
              });
    GlobalTime maxUpgrade = 0;       // over every earlier transaction
    GlobalTime maxExclUpgrade = 0;   // over earlier exclusive transactions
    for (const proto::TxnInfo* txn : txns) {
      report.txnsChecked += 1;
      const auto it = byTxn.find(txn->id);
      if (it == byTxn.end() || it->second.upgrades == 0) {
        if (cfg.expectComplete) {
          std::ostringstream os;
          os << "txn " << txn->id << " (" << toString(txn->kind)
             << ", serial " << txn->serial << ", block " << block
             << ") has no upgrade stamp";
          addViolation(report, cfg, "claim3-structure", os.str());
        }
        continue;
      }
      const TxnStamps& t = it->second;
      if (t.upgrades != 1) {
        std::ostringstream os;
        os << "txn " << txn->id << " has " << t.upgrades
           << " upgrade stamps (expected exactly one)";
        addViolation(report, cfg, "claim3-structure", os.str());
      }
      if (t.downgrades == 0) {
        std::ostringstream os;
        os << "txn " << txn->id << " (" << toString(txn->kind)
           << ") has no downgrade stamp";
        addViolation(report, cfg, "claim3-structure", os.str());
      }
      // Claim 3(a).
      if (t.maxDowngrade > t.upgrade) {
        std::ostringstream os;
        os << "claim 3(a): txn " << txn->id << " (" << toString(txn->kind)
           << ", block " << block << "): downgrade stamp " << t.maxDowngrade
           << " exceeds upgrade stamp " << t.upgrade;
        addViolation(report, cfg, "claim3a", os.str());
      }
      // Claim 3(b): for a pair (T, T') with T before T' and either
      // exclusive, upgrade(T) < upgrade(T').
      const bool exclusive = isExclusiveKind(txn->kind);
      if (exclusive && t.upgrade <= maxUpgrade) {
        std::ostringstream os;
        os << "claim 3(b): exclusive txn " << txn->id << " ("
           << toString(txn->kind) << ", serial " << txn->serial << ", block "
           << block << ") upgrade stamp " << t.upgrade
           << " does not exceed an earlier transaction's " << maxUpgrade;
        addViolation(report, cfg, "claim3b", os.str());
      }
      if (!exclusive && t.upgrade <= maxExclUpgrade) {
        std::ostringstream os;
        os << "claim 3(b): txn " << txn->id << " (" << toString(txn->kind)
           << ", serial " << txn->serial << ", block " << block
           << ") upgrade stamp " << t.upgrade
           << " does not exceed an earlier exclusive transaction's "
           << maxExclUpgrade;
        addViolation(report, cfg, "claim3b", os.str());
      }
      maxUpgrade = std::max(maxUpgrade, t.upgrade);
      if (exclusive) maxExclUpgrade = std::max(maxExclUpgrade, t.upgrade);
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Lemmas 1 and 2 (+ Claim 4): epoch geometry and operation containment
// ---------------------------------------------------------------------------
CheckReport checkEpochs(const trace::Trace& trace, const VerifyConfig& cfg) {
  CheckReport report;
  const std::vector<clk::Epoch> epochs = buildEpochs(trace, cfg);
  report.epochsBuilt = epochs.size();

  // ---- Lemma 1: no overlap with exclusive epochs, per block. ----
  // Considered: processor S/X epochs and directory X epochs (Idle = memory
  // is the valid copy).  Directory A_S "epochs" carry no operations and the
  // home's by-definition downgrade stamps make their boundaries
  // conventional, so they are excluded (DESIGN.md).
  struct Boundary {
    GlobalTime time;
    bool isStart;
    const clk::Epoch* epoch;
  };
  std::map<BlockId, std::vector<Boundary>> boundaries;
  for (const clk::Epoch& e : epochs) {
    if (e.state == AState::I) continue;
    const bool isDir = e.node >= cfg.numProcessors;
    if (isDir && e.state != AState::X) continue;
    boundaries[e.block].push_back(Boundary{e.start, true, &e});
    if (e.end != clk::kOpenEpoch) {
      boundaries[e.block].push_back(Boundary{e.end, false, &e});
    }
  }
  for (auto& [block, bs] : boundaries) {
    std::sort(bs.begin(), bs.end(), [](const Boundary& a, const Boundary& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.isStart < b.isStart;  // ends before starts: [s, e) semantics
    });
    // Active epochs per node (a node has at most one active access epoch).
    std::map<NodeId, const clk::Epoch*> active;
    for (const Boundary& b : bs) {
      if (!b.isStart) {
        active.erase(b.epoch->node);
        continue;
      }
      for (const auto& [node, other] : active) {
        if (node == b.epoch->node) continue;
        const bool conflict =
            b.epoch->state == AState::X || other->state == AState::X;
        if (conflict) {
          addViolation(report, cfg, "lemma1",
                       "overlapping epochs: " + epochToString(*b.epoch) +
                           " vs " + epochToString(*other));
        }
      }
      active[b.epoch->node] = b.epoch;
    }
  }

  // ---- Lemma 2 / Claim 4: operation containment. ----
  std::map<std::tuple<NodeId, BlockId, TransactionId>, const clk::Epoch*>
      epochByTxn;
  for (const clk::Epoch& e : epochs) {
    if (e.node >= cfg.numProcessors) continue;
    epochByTxn[{e.node, e.block, e.txn}] = &e;
  }
  for (const OpRecord& op : trace.operations()) {
    report.opsChecked += 1;
    if (op.forwarded) {
      // Store-buffer forwarded loads never touch the coherence protocol;
      // they are validated by the TSO forwarding check instead.
      if (!cfg.tso) {
        addViolation(report, cfg, "lemma2",
                     "forwarded load in an SC-mode trace: " + opToString(op));
      }
      continue;
    }
    const auto it = epochByTxn.find({op.proc, op.block, op.boundTxn});
    if (it == epochByTxn.end()) {
      addViolation(report, cfg, "lemma2",
                   "operation bound to a transaction with no epoch at its "
                   "processor: " + opToString(op));
      continue;
    }
    const clk::Epoch& e = *it->second;
    if (op.ts.global < e.start ||
        (e.end != clk::kOpenEpoch && op.ts.global >= e.end)) {
      addViolation(report, cfg, "lemma2",
                   "operation outside its epoch: " + opToString(op) +
                       " not in " + epochToString(e));
      continue;
    }
    if (op.kind == OpKind::Store && e.state != AState::X) {
      addViolation(report, cfg, "lemma2",
                   "store outside an exclusive epoch: " + opToString(op) +
                       " in " + epochToString(e));
    }
    if (op.kind == OpKind::Load && e.state == AState::I) {
      addViolation(report, cfg, "lemma2",
                   "load inside an invalid interval: " + opToString(op));
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Lemma 3 + Main Theorem: sequential consistency by replay
// ---------------------------------------------------------------------------
CheckReport checkSequentialConsistency(const trace::Trace& trace,
                                       const VerifyConfig& cfg) {
  CheckReport report;
  std::vector<const OpRecord*> ops;
  ops.reserve(trace.operations().size());
  for (const OpRecord& op : trace.operations()) ops.push_back(&op);
  std::sort(ops.begin(), ops.end(),
            [](const OpRecord* a, const OpRecord* b) { return a->ts < b->ts; });

  // Total order sanity: timestamps must be unique.
  for (std::size_t i = 1; i < ops.size(); ++i) {
    if (ops[i - 1]->ts == ops[i]->ts) {
      addViolation(report, cfg, "total-order",
                   "two operations share a timestamp: " +
                       opToString(*ops[i - 1]) + " and " +
                       opToString(*ops[i]));
    }
  }

  // TSO: forwarded loads read the youngest program-order-earlier store of
  // their own processor; everything else follows the Lamport replay.
  std::map<std::tuple<NodeId, BlockId, WordIdx>, std::vector<const OpRecord*>>
      ownStores;
  if (cfg.tso) {
    for (const OpRecord& op : trace.operations()) {
      if (op.kind != OpKind::Store) continue;
      ownStores[{op.proc, op.block, op.word}].push_back(&op);
    }
    for (auto& [k, v] : ownStores) {
      std::sort(v.begin(), v.end(),
                [](const OpRecord* a, const OpRecord* b) {
                  return a->progIdx < b->progIdx;
                });
    }
  }

  std::unordered_map<std::uint64_t, const OpRecord*> lastStore;
  const auto key = [](BlockId b, WordIdx w) {
    return (static_cast<std::uint64_t>(b) << 16) | w;
  };
  for (const OpRecord* op : ops) {
    report.opsChecked += 1;
    if (op->forwarded) {
      const auto sit = ownStores.find({op->proc, op->block, op->word});
      const OpRecord* source = nullptr;
      if (sit != ownStores.end()) {
        for (const OpRecord* st : sit->second) {
          if (st->progIdx >= op->progIdx) break;
          source = st;
        }
      }
      if (source == nullptr) {
        addViolation(report, cfg, "tso-forwarding",
                     "forwarded load with no program-order-earlier store: " +
                         opToString(*op));
      } else if (source->value != op->value) {
        addViolation(report, cfg, "tso-forwarding",
                     "forwarded load returned " + opToString(*op) +
                         " but the youngest earlier store is " +
                         opToString(*source));
      }
      continue;
    }
    const std::uint64_t k = key(op->block, op->word);
    if (op->kind == OpKind::Store) {
      lastStore[k] = op;
      continue;
    }
    const auto it = lastStore.find(k);
    const Word expected = it == lastStore.end() ? 0 : it->second->value;
    if (op->value != expected) {
      std::ostringstream os;
      os << "load returns " << op->value << " but the most recent store in "
         << "Lamport order "
         << (it == lastStore.end()
                 ? std::string("is absent (expected the initial value 0)")
                 : "is " + opToString(*it->second));
      os << "; load: " << opToString(*op);
      addViolation(report, cfg,
                   cfg.tso ? "tso-memory-order" : "sequential-consistency",
                   os.str());
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Lemma 3, checked directly at every value transfer
// ---------------------------------------------------------------------------
CheckReport checkValueChain(const trace::Trace& trace,
                            const VerifyConfig& cfg) {
  CheckReport report;

  // Per (block, word): the store history in Lamport order.
  struct StoreAt {
    GlobalTime global;
    LocalTime local;
    NodeId pid;
    Word value;
  };
  std::map<std::pair<BlockId, WordIdx>, std::vector<StoreAt>> stores;
  for (const OpRecord& op : trace.operations()) {
    if (op.kind != OpKind::Store) continue;
    stores[{op.block, op.word}].push_back(
        StoreAt{op.ts.global, op.ts.local, op.ts.pid, op.value});
  }
  for (auto& [key, v] : stores) {
    std::sort(v.begin(), v.end(), [](const StoreAt& a, const StoreAt& b) {
      if (a.global != b.global) return a.global < b.global;
      if (a.local != b.local) return a.local < b.local;
      return a.pid < b.pid;
    });
  }

  // The upgrade stamp each node assigned per transaction (the epoch start
  // t1 at the receiving node).
  std::map<std::pair<NodeId, TransactionId>, GlobalTime> upgradeTs;
  for (const StampRecord& s : trace.stamps()) {
    if (s.role == StampRole::Upgrade) upgradeTs[{s.node, s.txn}] = s.ts;
  }

  for (const auto& rec : trace.values()) {
    const auto it = upgradeTs.find({rec.node, rec.txn});
    if (it == upgradeTs.end()) continue;  // downgrade-side receipt (home)
    const GlobalTime t1 = it->second;
    report.txnsChecked += 1;
    for (WordIdx w = 0; w < rec.value.size(); ++w) {
      // Most recent store strictly before t1 (stores of the receiving
      // epoch itself have global >= t1).
      Word expected = 0;
      const auto sit = stores.find({rec.block, w});
      if (sit != stores.end()) {
        for (const StoreAt& s : sit->second) {
          if (s.global >= t1) break;
          expected = s.value;
        }
      }
      if (rec.value[w] != expected) {
        std::ostringstream os;
        os << "lemma 3: node " << rec.node << " received word " << w
           << " of block " << rec.block << " = " << rec.value[w]
           << " for txn " << rec.txn << " (epoch start " << t1
           << "), but the most recent store prior to " << t1 << " wrote "
           << expected;
        addViolation(report, cfg, "lemma3-values", os.str());
      }
    }
  }
  return report;
}

CheckReport checkAll(const trace::Trace& trace, const VerifyConfig& cfg) {
  CheckReport report;
  const CheckReport parts[] = {
      checkProgramOrder(trace, cfg), checkClaim2(trace, cfg),
      checkClaim3(trace, cfg), checkEpochs(trace, cfg),
      checkSequentialConsistency(trace, cfg), checkValueChain(trace, cfg)};
  for (const CheckReport& part : parts) {
    report.violations.insert(report.violations.end(),
                             part.violations.begin(), part.violations.end());
    report.epochsBuilt = std::max(report.epochsBuilt, part.epochsBuilt);
  }
  report.opsChecked = trace.operations().size();
  report.txnsChecked = trace.serializations().size();
  return report;
}

}  // namespace lcdc::verify
