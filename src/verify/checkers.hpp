// Executable verification of the paper's Section 3 claims and lemmas over a
// recorded execution trace.
//
// The paper proves these properties once, by hand, for every execution; the
// executable reproduction *checks* them on each concrete execution.  Each
// checker mirrors one statement:
//
//   * checkProgramOrder — "By construction, the Lamport ordering of LDs and
//     STs within any processor is consistent with program order."
//   * checkClaim2 — A-state changes occur in real time in the order implied
//     by the directory serialization.
//   * checkClaim3 — (a) downgrade stamps <= the upgrade stamp per
//     transaction; (b) upgrade stamps increase along the serialization
//     whenever one of the pair is exclusive (Get-Exclusive / Upgrade /
//     Writeback); plus the Section 3.1 structural facts (exactly one
//     upgrader, at least one downgrader, the right node upgrades).
//   * checkEpochs — Lemma 1 (no epoch overlapping an exclusive epoch),
//     Lemma 2 / Claim 4 (every operation lies in the epoch of the
//     transaction it is bound to; stores only in exclusive epochs).
//   * checkSequentialConsistency — the Main Theorem: in Lamport order,
//     every load returns the most recent store (or the initial value).
//
// All checkers are pure functions of the trace: they can run on traces from
// the live simulator, from scripted scenarios, or from fault-injected
// mutants (where they are expected to fire).
//
// Since the streaming redesign each batch function here is a thin adapter:
// it replays the recorded trace (trace/replay.hpp) through the matching
// streaming core in verify/stream.hpp, so every property has exactly one
// implementation and batch results are identical-by-construction to what
// an online StreamCheckerSet observing the live run reports.
//
// Thread-safety: every checker reads the trace through const references
// and keeps all working state on its own stack — no globals, no caches.
// Distinct threads may therefore verify *distinct* traces concurrently
// (the campaign runner does exactly that); concurrent checks of the same
// Trace object are also safe as long as no thread mutates it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "clock/lamport.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "trace/trace.hpp"

namespace lcdc::verify {

struct Violation {
  std::string check;   ///< which property fired (e.g. "lemma1")
  std::string detail;  ///< human-readable diagnosis
};

struct CheckReport {
  std::vector<Violation> violations;
  std::uint64_t opsChecked = 0;
  std::uint64_t txnsChecked = 0;
  std::uint64_t epochsBuilt = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string summary() const;
  void merge(CheckReport other);

  /// Which property fired first ("" when the report is clean).  The
  /// campaign uses this as the failure signature the minimizer must
  /// preserve while shrinking a reproducer.
  [[nodiscard]] std::string primaryCheck() const;

  /// Violation count per property name — the campaign's per-claim firing
  /// statistics.  std::map so iteration order (and hence any printed
  /// aggregate) is deterministic.
  [[nodiscard]] std::map<std::string, std::uint64_t> countsByCheck() const;
};

struct VerifyConfig {
  /// Nodes < numProcessors are processors; the rest are directory nodes.
  NodeId numProcessors = 0;
  /// Stop collecting after this many violations (diagnostics stay bounded).
  std::size_t maxViolations = 25;
  /// Require every serialized transaction to have completed (quiescent
  /// runs); disable for truncated traces.
  bool expectComplete = true;
  /// Verify against TSO instead of SC (store-buffer extension): the
  /// program-order embedding exempts store->load pairs, and forwarded
  /// loads are checked against their own processor's program-order store
  /// stream instead of the Lamport replay.
  bool tso = false;
  /// Which coherence backend's observation stream this config was built
  /// for.  A streaming checker set cross-checks it against the
  /// SystemConfig stamped into onRunBegin and throws SimError on a
  /// mismatch — a config built for one backend silently mis-checks
  /// another's traffic otherwise (DESIGN.md §12).
  ///
  /// The canonical system-shape -> verification-settings mapping
  /// (formerly VerifyConfig::fromSystem) is backend-provided now:
  /// proto::verifyConfigFor(sys) in backend/backend.hpp.
  ProtocolKind protocol = ProtocolKind::Directory;
};

/// Build the per-node, per-block coherence epochs from the stamp records.
/// Directory nodes start in an implicit exclusive (Idle = A_X) epoch from
/// time 0; processors start with no access.
[[nodiscard]] std::vector<clk::Epoch> buildEpochs(const trace::Trace& trace,
                                                  const VerifyConfig& cfg);

[[nodiscard]] CheckReport checkProgramOrder(const trace::Trace& trace,
                                            const VerifyConfig& cfg);
[[nodiscard]] CheckReport checkClaim2(const trace::Trace& trace,
                                      const VerifyConfig& cfg);
[[nodiscard]] CheckReport checkClaim3(const trace::Trace& trace,
                                      const VerifyConfig& cfg);
[[nodiscard]] CheckReport checkEpochs(const trace::Trace& trace,
                                      const VerifyConfig& cfg);
[[nodiscard]] CheckReport checkSequentialConsistency(const trace::Trace& trace,
                                                     const VerifyConfig& cfg);

/// Lemma 3 checked directly at every transfer: "If block B is received by
/// node N at the start of epoch [t1, t2), then each word w of block B
/// equals the most recent store to word w prior to t1 or the initial
/// value."  Applied to every value receipt whose receiving node assigned
/// the transaction's upgrade stamp (processor completions; the home's
/// write-back receipts).
[[nodiscard]] CheckReport checkValueChain(const trace::Trace& trace,
                                          const VerifyConfig& cfg);

/// Run every checker and merge the reports.
[[nodiscard]] CheckReport checkAll(const trace::Trace& trace,
                                   const VerifyConfig& cfg);

}  // namespace lcdc::verify
