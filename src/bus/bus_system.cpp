#include "bus/bus_system.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/expect.hpp"

namespace lcdc::bus {

std::string toString(BusCmd c) {
  switch (c) {
    case BusCmd::BusRd: return "BusRd";
    case BusCmd::BusRdX: return "BusRdX";
    case BusCmd::BusUpgr: return "BusUpgr";
    case BusCmd::BusWB: return "BusWB";
  }
  return "BusCmd(?)";
}

std::string toString(BusRunResult::Outcome o) {
  switch (o) {
    case BusRunResult::Outcome::Quiescent: return "quiescent";
    case BusRunResult::Outcome::Stuck: return "stuck";
    case BusRunResult::Outcome::BudgetExhausted: return "budget-exhausted";
  }
  return "outcome(?)";
}

namespace {

/// Map bus commands onto the directory taxonomy so the unchanged verify
/// module classifies them correctly for Claim 3(b) (BusRd is the only
/// non-exclusive command).
TxnKind kindOf(BusCmd c) {
  switch (c) {
    case BusCmd::BusRd: return TxnKind::GetS_Idle;
    case BusCmd::BusRdX: return TxnKind::GetX_Idle;
    case BusCmd::BusUpgr: return TxnKind::Upg_Shared;
    case BusCmd::BusWB: return TxnKind::Wb_Exclusive;
  }
  return TxnKind::GetS_Idle;
}

}  // namespace

struct BusSystem::Impl {
  // -- static structure -------------------------------------------------------

  struct Line {
    MsiState state = MsiState::Invalid;
    /// Conceptual sharing state (survives silent eviction, like the
    /// directory protocol's A-state).
    AState astate = AState::I;
    BlockValue data;
    TransactionId epochTxn = kNoTransaction;
    SerialIdx epochSerial = 0;
    GlobalTime epochTs = 0;
  };

  struct Pending {
    BusCmd cmd{};
    BlockId block = 0;
    bool granted = false;
    bool aborted = false;       ///< stale BusWB dropped at grant
    bool ownGrantDone = false;  ///< processed our own command in bus order
    bool needsData = false;
    bool dataReceived = false;
    BlockValue data;
    BusSeq seq = 0;
    TransactionId txn = kNoTransaction;
    SerialIdx serial = 0;
    bool forEviction = false;  ///< capacity eviction preceding the real step
  };

  struct Proc {
    workload::Program program;
    std::size_t pc = 0;
    std::unordered_map<BlockId, Line> lines;
    std::optional<Pending> pending;
    GlobalTime clock = 0;  ///< bus seq of the last processed command
    clk::OpStamper stamper{0};
    Rng rng{0};
    Tick lastSnoopAt = 0;  ///< keeps snoop arrival FIFO
    /// Arrived-but-unprocessed snoops, in bus order.  The head blocks while
    /// it addresses the block of our own granted-but-incomplete transaction
    /// — the bus edition of the Section 2.4 buffering rule.  The wait chain
    /// is acyclic (grant sequence numbers strictly decrease along it), so
    /// this cannot deadlock.
    std::deque<BusSeq> snoopQueue;
  };

  struct Txn {
    BusSeq seq = 0;
    TransactionId id = kNoTransaction;
    SerialIdx serial = 0;
    BusCmd cmd{};
    NodeId requester = kNoNode;
    BlockId block = 0;
    NodeId responder = kNoNode;  ///< kNoNode: memory (or no data needed)
    bool memoryResponds = false;
  };

  /// Bus-order ghost state per block (what the arbiter knows at grant
  /// time); the caches converge to it as they drain their snoop queues.
  struct TrackEntry {
    std::vector<NodeId> sharers;
    NodeId owner = kNoNode;
    /// Granted write-backs/flushes whose data has not been applied to
    /// memory yet, in bus order.  Memory applies them strictly in this
    /// order (data may arrive out of order and waits in arrivedWb), and a
    /// memory response for sequence m parks until every write-back granted
    /// before m has been applied — so each parked read observes exactly the
    /// image of its own serialization point.
    std::set<BusSeq> pendingWbs;
    std::map<BusSeq, BlockValue> arrivedWb;
    SerialIdx serialCount = 0;
  };

  enum class EventKind : std::uint8_t {
    Grant,     ///< arbiter issues the next queued request
    Snoop,     ///< a cache processes bus command `bseq`
    Response,  ///< data reaches the requester of `bseq`
    MemWrite,  ///< write-back data reaches memory
  };

  struct Event {
    Tick time = 0;
    std::uint64_t order = 0;
    EventKind kind{};
    NodeId node = kNoNode;
    BusSeq bseq = 0;
    BlockValue data;
    friend bool operator>(const Event& a, const Event& b) {
      return a.time != b.time ? a.time > b.time : a.order > b.order;
    }
  };

  // -- state ------------------------------------------------------------------

  BusSystem* owner;
  BusConfig cfg;
  proto::EventSink* sink;
  Rng rng;
  std::vector<Proc> procs;
  std::unordered_map<BlockId, BlockValue> memory;
  std::unordered_map<BlockId, TrackEntry> track;
  std::unordered_map<BusSeq, Txn> txns;
  /// Memory responses parked behind an in-flight write-back, per block.
  std::unordered_map<BlockId, std::vector<BusSeq>> parkedResponses;
  std::deque<NodeId> arbiterQueue;  ///< requesters awaiting a grant (FIFO)
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  Tick now = 0;
  Tick nextGrantTime = 1;
  std::uint64_t nextEventOrder = 1;
  BusSeq nextSeq = 1;
  TransactionId nextTxn = 1;
  BusRunResult result;

  Impl(BusSystem* self, const BusConfig& config, proto::EventSink& s)
      : owner(self), cfg(config), sink(&s), rng(config.seed) {
    procs.resize(cfg.numProcessors);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      procs[p].stamper = clk::OpStamper(p);
      procs[p].rng = rng.fork();
    }
    for (BlockId b = 0; b < cfg.numBlocks; ++b) {
      memory.emplace(b, BlockValue(cfg.wordsPerBlock, 0));
      track.emplace(b, TrackEntry{});
    }
  }

  NodeId memNode() const { return cfg.numProcessors; }

  void push(Tick time, EventKind kind, NodeId node, BusSeq bseq,
            BlockValue data = {}) {
    events.push(Event{time, nextEventOrder++, kind, node, bseq,
                      std::move(data)});
  }

  // -- processor progression ---------------------------------------------------

  bool canBind(const Proc& p, const workload::Step& step) const {
    if (p.pending.has_value()) return false;
    const auto it = p.lines.find(step.block);
    if (it == p.lines.end()) return false;
    if (step.kind == workload::StepKind::Load) {
      return it->second.state != MsiState::Invalid;
    }
    return it->second.state == MsiState::Modified;
  }

  void bindEligible(NodeId id) {
    Proc& p = procs[id];
    while (p.pc < p.program.steps.size()) {
      const workload::Step& step = p.program.steps[p.pc];
      if (step.kind != workload::StepKind::Load &&
          step.kind != workload::StepKind::Store) {
        return;  // evictions/prefetches handled by progress()
      }
      if (!canBind(p, step)) return;
      Line& line = p.lines[step.block];
      proto::OpRecord op;
      op.proc = id;
      op.progIdx = p.pc;
      op.block = step.block;
      op.word = step.word;
      op.boundTxn = line.epochTxn;
      op.boundSerial = line.epochSerial;
      if (step.kind == workload::StepKind::Store) {
        op.kind = OpKind::Store;
        line.data[step.word] = step.storeValue;
        op.value = step.storeValue;
      } else {
        op.kind = OpKind::Load;
        op.value = line.data[step.word];
      }
      op.ts = p.stamper.stamp(line.epochTs);
      sink->onOperation(op);
      result.opsBound += 1;
      ++p.pc;
    }
  }

  void requestBus(NodeId id, BusCmd cmd, BlockId block, bool forEviction) {
    Proc& p = procs[id];
    LCDC_EXPECT(!p.pending.has_value(), "bus request while one is pending");
    Pending pend;
    pend.cmd = cmd;
    pend.block = block;
    pend.forEviction = forEviction;
    p.pending = std::move(pend);
    arbiterQueue.push_back(id);
    const Tick grantAt = std::max(now + 1, nextGrantTime);
    nextGrantTime = grantAt + 1;
    push(grantAt, EventKind::Grant, kNoNode, 0);
  }

  std::size_t linesHeld(const Proc& p) const {
    std::size_t n = 0;
    for (const auto& [b, line] : p.lines) {
      n += line.state != MsiState::Invalid;
    }
    return n;
  }

  void maybeCapacityEvict(NodeId id, BlockId incoming) {
    if (cfg.cacheCapacity == 0) return;
    Proc& p = procs[id];
    if (linesHeld(p) < cfg.cacheCapacity) return;
    // Prefer a silent eviction of a Shared line; else write back a
    // Modified one (which occupies the pending slot first).
    std::vector<BlockId> shared, modified;
    for (const auto& [b, line] : p.lines) {
      if (b == incoming) continue;
      if (line.state == MsiState::Shared) shared.push_back(b);
      if (line.state == MsiState::Modified) modified.push_back(b);
    }
    std::sort(shared.begin(), shared.end());
    std::sort(modified.begin(), modified.end());
    if (!shared.empty()) {
      const BlockId victim =
          shared[p.rng.uniform(0, shared.size() - 1)];
      p.lines[victim].state = MsiState::Invalid;
      p.lines[victim].data.clear();
      owner->silentEvictions_ += 1;
      return;
    }
    if (!modified.empty()) {
      const BlockId victim =
          modified[p.rng.uniform(0, modified.size() - 1)];
      requestBus(id, BusCmd::BusWB, victim, /*forEviction=*/true);
    }
  }

  void progress(NodeId id) {
    Proc& p = procs[id];
    bindEligible(id);
    while (p.pc < p.program.steps.size() && !p.pending.has_value()) {
      const workload::Step& step = p.program.steps[p.pc];
      if (step.kind == workload::StepKind::PrefetchShared ||
          step.kind == workload::StepKind::PrefetchExclusive) {
        // The bus model has a single outstanding-request slot per
        // processor, so prefetch hints are ignored rather than allowed to
        // block demand traffic.
        ++p.pc;
        bindEligible(id);
        continue;
      }
      if (step.kind == workload::StepKind::Evict) {
        const auto it = p.lines.find(step.block);
        if (it == p.lines.end() || it->second.state == MsiState::Invalid) {
          ++p.pc;
          bindEligible(id);
          continue;
        }
        if (it->second.state == MsiState::Shared) {
          // Silent eviction: no bus transaction, no acknowledgment, and —
          // unlike the directory protocol — no deadlock machinery needed.
          it->second.state = MsiState::Invalid;
          it->second.data.clear();
          owner->silentEvictions_ += 1;
          ++p.pc;
          bindEligible(id);
          continue;
        }
        requestBus(id, BusCmd::BusWB, step.block, /*forEviction=*/false);
        return;
      }
      if (canBind(p, step)) {
        bindEligible(id);
        continue;
      }
      const auto it = p.lines.find(step.block);
      const MsiState st = it == p.lines.end() ? MsiState::Invalid
                                              : it->second.state;
      BusCmd cmd;
      if (step.kind == workload::StepKind::Load) {
        LCDC_EXPECT(st == MsiState::Invalid, "load stall with a valid line");
        cmd = BusCmd::BusRd;
      } else if (st == MsiState::Shared) {
        cmd = BusCmd::BusUpgr;
      } else {
        LCDC_EXPECT(st == MsiState::Invalid, "store stall with ownership");
        cmd = BusCmd::BusRdX;
      }
      maybeCapacityEvict(id, step.block);
      if (p.pending.has_value()) return;  // eviction writeback first
      requestBus(id, cmd, step.block, /*forEviction=*/false);
      return;
    }
  }

  // -- arbitration --------------------------------------------------------------

  void grant() {
    LCDC_EXPECT(!arbiterQueue.empty(), "grant with empty arbiter queue");
    const NodeId id = arbiterQueue.front();
    arbiterQueue.pop_front();
    Proc& p = procs[id];
    LCDC_EXPECT(p.pending && !p.pending->granted, "grant without a request");
    Pending& pend = *p.pending;
    TrackEntry& te = track[pend.block];

    BusCmd cmd = pend.cmd;
    if (cmd == BusCmd::BusUpgr &&
        !std::binary_search(te.sharers.begin(), te.sharers.end(), id)) {
      // An intervening BusRdX invalidated the upgrader's copy (in bus
      // order): the arbiter converts the upgrade into a full read-exclusive
      // — the bus analogue of the directory protocol's transaction 10.
      cmd = BusCmd::BusRdX;
      result.upgradeConversions += 1;
    }
    if (cmd == BusCmd::BusWB && te.owner != id) {
      // The ownership was already taken over (in bus order) by a BusRdX
      // whose snoop will reach this cache first; the write-back is stale
      // and dies at the arbiter.
      pend.granted = true;
      pend.aborted = true;
      pend.ownGrantDone = true;
      result.writebackAborts += 1;
      finishPending(id);
      return;
    }

    Txn txn;
    txn.seq = nextSeq++;
    txn.id = nextTxn++;
    txn.serial = ++te.serialCount;
    txn.cmd = cmd;
    txn.requester = id;
    txn.block = pend.block;
    result.grants += 1;

    pend.granted = true;
    pend.cmd = cmd;
    pend.seq = txn.seq;
    pend.txn = txn.id;
    pend.serial = txn.serial;
    pend.needsData = cmd == BusCmd::BusRd || cmd == BusCmd::BusRdX;

    proto::TxnInfo info;
    info.id = txn.id;
    info.serial = txn.serial;
    info.kind = kindOf(cmd);
    info.block = pend.block;
    info.requester = id;
    sink->onSerialize(info);

    // Decide the responder and update the bus-order ghost state.
    switch (cmd) {
      case BusCmd::BusRd:
        if (te.owner != kNoNode) {
          // The owner supplies the data AND flushes it to memory (memory
          // becomes the clean copy once the entry is merely shared); until
          // the flush lands, memory responses for this block park.
          txn.responder = te.owner;
          insertSorted(te.sharers, te.owner);
          te.owner = kNoNode;
          te.pendingWbs.insert(txn.seq);
        } else {
          txn.memoryResponds = true;
        }
        insertSorted(te.sharers, id);
        break;
      case BusCmd::BusRdX:
        if (te.owner != kNoNode) {
          txn.responder = te.owner;
        } else {
          txn.memoryResponds = true;
        }
        te.sharers.clear();
        te.owner = id;
        break;
      case BusCmd::BusUpgr:
        te.sharers.clear();
        te.owner = id;
        break;
      case BusCmd::BusWB:
        te.owner = kNoNode;
        te.pendingWbs.insert(txn.seq);
        break;
    }

    // Memory stamps at grant: the home-like downgrade-by-definition for
    // data-granting commands, the transaction's upgrade for write-backs.
    if (cmd == BusCmd::BusWB) {
      sink->onStamp(memNode(), txn.id, txn.serial, txn.block,
                    proto::StampRole::Upgrade, txn.seq, AState::I, AState::X);
    } else {
      const AState memA = cmd == BusCmd::BusRd ? AState::S : AState::I;
      sink->onStamp(memNode(), txn.id, txn.serial, txn.block,
                    proto::StampRole::Downgrade, txn.seq, AState::X, memA);
    }

    // Memory answers right away when it is the responder — unless an
    // earlier write-back to the block is still in flight, in which case the
    // response parks until the data lands.
    if (txn.memoryResponds) {
      // Every pending write-back was granted earlier, i.e. has a smaller
      // sequence number, so any of them blocks this response.
      if (!te.pendingWbs.empty()) {
        parkedResponses[pend.block].push_back(txn.seq);
        result.parkedResponses += 1;
      } else {
        push(now + 1 + rng.uniform(0, cfg.snoopDelayMax),
             EventKind::Response, id, txn.seq, memory[pend.block]);
      }
    }

    txns.emplace(txn.seq, txn);

    // Broadcast: every cache snoops the command through its FIFO queue.
    for (NodeId n = 0; n < cfg.numProcessors; ++n) {
      Proc& snooper = procs[n];
      const Tick at = std::max(snooper.lastSnoopAt + 1,
                               now + 1 + snooper.rng.uniform(
                                             0, cfg.snoopDelayMax));
      snooper.lastSnoopAt = at;
      push(at, EventKind::Snoop, n, txn.seq);
    }
  }

  static void insertSorted(std::vector<NodeId>& v, NodeId n) {
    const auto it = std::lower_bound(v.begin(), v.end(), n);
    if (it == v.end() || *it != n) v.insert(it, n);
  }

  // -- snoop processing ----------------------------------------------------------

  bool headBlocked(const Proc& p, BusSeq seq) const {
    if (!p.pending || !p.pending->granted || p.pending->aborted) return false;
    const Txn& txn = txns.at(seq);
    return p.pending->block == txn.block && p.pending->seq < seq;
  }

  void drainQueue(NodeId id) {
    Proc& p = procs[id];
    while (!p.snoopQueue.empty()) {
      const BusSeq seq = p.snoopQueue.front();
      if (headBlocked(p, seq)) {
        result.headOfLineBlocks += 1;
        return;
      }
      p.snoopQueue.pop_front();
      processSnoop(id, seq);
    }
  }

  void processSnoop(NodeId id, BusSeq seq) {
    Proc& p = procs[id];
    const Txn& txn = txns.at(seq);
    LCDC_EXPECT(p.clock < seq, "snoop queue out of order");
    p.clock = seq;

    if (txn.requester == id) {
      ownGrant(id, seq);
      return;
    }

    Line& line = p.lines[txn.block];
    switch (txn.cmd) {
      case BusCmd::BusRd:
        if (txn.responder == id) {
          LCDC_EXPECT(line.state == MsiState::Modified,
                      "BusRd responder is not the owner");
          sink->onStamp(id, txn.id, txn.serial, txn.block,
                        proto::StampRole::Downgrade, seq, AState::X,
                        AState::S);
          line.astate = AState::S;
          line.state = MsiState::Shared;
          // We stay a reader: later loads bind to this shared epoch.
          line.epochTxn = txn.id;
          line.epochSerial = txn.serial;
          line.epochTs = seq;
          push(now + 1 + p.rng.uniform(0, cfg.snoopDelayMax),
               EventKind::Response, txn.requester, seq, line.data);
          // Flush the (possibly dirty) data to memory as well.
          push(now + 1 + p.rng.uniform(0, cfg.snoopDelayMax),
               EventKind::MemWrite, memNode(), seq, line.data);
        }
        break;
      case BusCmd::BusRdX:
      case BusCmd::BusUpgr:
        if (txn.responder == id) {
          LCDC_EXPECT(line.state == MsiState::Modified,
                      "BusRdX responder is not the owner");
          push(now + 1 + p.rng.uniform(0, cfg.snoopDelayMax),
               EventKind::Response, txn.requester, seq, line.data);
        }
        if (line.astate == AState::S || line.astate == AState::X) {
          sink->onStamp(id, txn.id, txn.serial, txn.block,
                        proto::StampRole::Downgrade, seq, line.astate,
                        AState::I);
          // MUTANT IgnoreInvalidation: a shared copy "forgets" to act on the
          // snooped invalidation.  The downgrade is stamped (the abstract
          // ghost state is correct), but the concrete line stays Shared with
          // its old data, so later loads bind stale values — caught by the
          // value/SC checkers, not by an invariant abort.
          if (cfg.mutant == Mutant::IgnoreInvalidation &&
              line.astate == AState::S && txn.responder != id) {
            line.astate = AState::I;
            break;
          }
          line.astate = AState::I;
          line.state = MsiState::Invalid;
          line.data.clear();
        }
        break;
      case BusCmd::BusWB:
        break;  // nobody else is affected
    }
  }

  void ownGrant(NodeId id, BusSeq seq) {
    Proc& p = procs[id];
    const Txn& txn = txns.at(seq);
    LCDC_EXPECT(p.pending && p.pending->granted && p.pending->seq == seq,
                "own grant without a matching pending request");
    Pending& pend = *p.pending;
    pend.ownGrantDone = true;

    if (txn.cmd == BusCmd::BusWB) {
      Line& line = p.lines[txn.block];
      LCDC_EXPECT(line.state == MsiState::Modified,
                  "granted write-back from a non-owner");
      sink->onStamp(id, txn.id, txn.serial, txn.block,
                    proto::StampRole::Downgrade, seq, AState::X, AState::I);
      line.astate = AState::I;
      line.state = MsiState::Invalid;
      // The data travels to memory now, carrying every bound store.
      push(now + 1 + p.rng.uniform(0, cfg.snoopDelayMax), EventKind::MemWrite,
           memNode(), seq, std::move(line.data));
      line.data.clear();
      finishPending(id);
      return;
    }
    tryCompleteRequest(id);
  }

  void response(NodeId id, BusSeq seq, BlockValue data) {
    Proc& p = procs[id];
    LCDC_EXPECT(p.pending && p.pending->granted && p.pending->seq == seq,
                "response without a matching pending request");
    p.pending->dataReceived = true;
    p.pending->data = std::move(data);
    tryCompleteRequest(id);
    drainQueue(id);  // a completion may unblock the snoop queue head
  }

  /// A BusRd/BusRdX/BusUpgr completes once its own grant has been processed
  /// (the clock reached the transaction's sequence number) and any data has
  /// arrived.
  void tryCompleteRequest(NodeId id) {
    Proc& p = procs[id];
    Pending& pend = *p.pending;
    if (!pend.ownGrantDone) return;
    if (pend.needsData && !pend.dataReceived) return;

    const Txn& txn = txns.at(pend.seq);
    Line& line = p.lines[pend.block];
    const AState newA =
        txn.cmd == BusCmd::BusRd ? AState::S : AState::X;
    sink->onStamp(id, pend.txn, pend.serial, pend.block,
                  proto::StampRole::Upgrade, pend.seq, line.astate, newA);
    line.astate = newA;
    line.state = txn.cmd == BusCmd::BusRd ? MsiState::Shared
                                          : MsiState::Modified;
    if (pend.needsData) {
      line.data = std::move(pend.data);
    } else if (line.data.empty()) {
      line.data.assign(cfg.wordsPerBlock, 0);
    }
    line.epochTxn = pend.txn;
    line.epochSerial = pend.serial;
    line.epochTs = pend.seq;
    sink->onValueReceived(id, pend.txn, pend.block, line.data);
    finishPending(id);
  }

  void finishPending(NodeId id) {
    procs[id].pending.reset();
    progress(id);
  }

  /// Un-park memory responses for `block` that no remaining pending
  /// write-back precedes.  MUST be called after *each* in-order
  /// application: a response snapshots the memory image, and that image is
  /// only correct for sequence m while every applied write-back is < m —
  /// unparking after a batch of applications could hand m an image
  /// containing a *later* write-back.
  void unparkMemoryResponses(BlockId block, TrackEntry& te) {
    const auto parked = parkedResponses.find(block);
    if (parked == parkedResponses.end()) return;
    std::vector<BusSeq> still;
    for (const BusSeq waiting : parked->second) {
      const bool blocked = !te.pendingWbs.empty() &&
                           *te.pendingWbs.begin() < waiting;
      if (blocked) {
        still.push_back(waiting);
        continue;
      }
      const Txn& w = txns.at(waiting);
      push(now + 1 + rng.uniform(0, cfg.snoopDelayMax), EventKind::Response,
           w.requester, waiting, memory[block]);
    }
    if (still.empty()) {
      parkedResponses.erase(parked);
    } else {
      parked->second = std::move(still);
    }
  }

  void memWrite(BusSeq seq, BlockValue data) {
    const BlockId block = txns.at(seq).block;
    TrackEntry& te = track[block];
    te.arrivedWb.emplace(seq, std::move(data));
    // Apply strictly in bus order (later data waits in arrivedWb),
    // un-parking after every single application so each parked read
    // observes exactly the image of its own serialization point.
    while (!te.pendingWbs.empty()) {
      const BusSeq head = *te.pendingWbs.begin();
      const auto it = te.arrivedWb.find(head);
      if (it == te.arrivedWb.end()) break;
      memory[block] = std::move(it->second);
      sink->onValueReceived(memNode(), txns.at(head).id, block,
                            memory[block]);
      te.arrivedWb.erase(it);
      te.pendingWbs.erase(te.pendingWbs.begin());
      unparkMemoryResponses(block, te);
    }
  }

  // -- the event loop -------------------------------------------------------------

  BusRunResult run(std::uint64_t maxEvents) {
    for (NodeId p = 0; p < cfg.numProcessors; ++p) progress(p);
    while (!events.empty() && result.eventsProcessed < maxEvents) {
      Event ev = events.top();
      events.pop();
      now = std::max(now, ev.time);
      result.eventsProcessed += 1;
      switch (ev.kind) {
        case EventKind::Grant: grant(); break;
        case EventKind::Snoop:
          procs[ev.node].snoopQueue.push_back(ev.bseq);
          drainQueue(ev.node);
          break;
        case EventKind::Response:
          response(ev.node, ev.bseq, std::move(ev.data));
          break;
        case EventKind::MemWrite: memWrite(ev.bseq, std::move(ev.data)); break;
      }
    }
    result.endTime = now;
    if (!events.empty()) {
      result.outcome = BusRunResult::Outcome::BudgetExhausted;
    } else {
      const bool done = std::all_of(
          procs.begin(), procs.end(), [](const Proc& p) {
            return p.pc >= p.program.steps.size() &&
                   !p.pending.has_value() && p.snoopQueue.empty();
          });
      result.outcome = done ? BusRunResult::Outcome::Quiescent
                            : BusRunResult::Outcome::Stuck;
    }
    return result;
  }
};

BusSystem::BusSystem(const BusConfig& config, proto::EventSink& sink)
    : impl_(std::make_unique<Impl>(this, config, sink)), config_(config) {
  LCDC_EXPECT(config.numProcessors >= 1, "need at least one processor");
  LCDC_EXPECT(config.numBlocks >= 1, "need at least one block");
  LCDC_EXPECT(config.wordsPerBlock >= 1, "blocks need at least one word");
}

BusSystem::~BusSystem() = default;

void BusSystem::setProgram(NodeId proc, workload::Program program) {
  LCDC_EXPECT(proc < config_.numProcessors, "no such processor");
  impl_->procs[proc].program = std::move(program);
  impl_->procs[proc].pc = 0;
}

BusRunResult BusSystem::run(std::uint64_t maxEvents) {
  return impl_->run(maxEvents);
}

MsiState BusSystem::lineState(NodeId proc, BlockId block) const {
  const auto& lines = impl_->procs.at(proc).lines;
  const auto it = lines.find(block);
  return it == lines.end() ? MsiState::Invalid : it->second.state;
}

const BlockValue& BusSystem::memoryImage(BlockId block) const {
  return impl_->memory.at(block);
}

}  // namespace lcdc::bus
