// A split-transaction snooping-bus MSI protocol, verified with the *same*
// Lamport-clock machinery as the directory protocol.
//
// The paper's companion result (reference [23], discussed in Sections 1
// and 5) proves a bus protocol with the identical lemma structure: "the
// proofs of the lemmas for the bus protocol are exactly as for the
// directory protocol ... only the proofs of the timestamping claims
// differ."  This module realizes that claim in code: bus executions are
// recorded through the very same proto::EventSink/trace::Trace interface,
// and verify::checkAll — Lemmas 1-3, Claims 2-3, the Main Theorem —
// consumes them unchanged.
//
// Protocol sketch (MSI, invalidation-based):
//   * A single arbiter serializes bus commands: BusRd (want read-only),
//     BusRdX (want read-write), BusUpgr (S -> M without data), BusWB
//     (write a Modified block back to memory).  The grant order *is* the
//     transaction serialization; the k-th grant has bus sequence number k.
//   * Every node (each cache, plus memory) snoops every command through a
//     private FIFO queue with random per-node delay — nodes see the same
//     order, at different times.  This is where all the interesting
//     relativity lives: a cache may keep binding loads to a line for which
//     an invalidation is already on the bus, exactly the Table 2 effect.
//   * The responder (the Modified owner if any, else memory) supplies data
//     when *it* processes the command, so the value carries every store
//     the owner bound before relinquishing — Fact 2, bus edition.
//   * An Upgrade granted after its requester lost its shared copy (an
//     intervening BusRdX invalidated it) is converted by the arbiter into
//     a full BusRdX — the bus analogue of the paper's transaction 10.
//   * Read-only lines may be evicted silently; on a bus this needs *no*
//     deadlock machinery because invalidations are never acknowledged —
//     a contrast this module makes measurable.
//
// Timestamping (the part that differs from the directory protocol): a
// node's logical clock is the bus sequence number of the last command it
// has processed.  Each affected node stamps a transaction with that
// transaction's own bus sequence number; downgrades therefore share the
// upgrade's stamp (Claim 3(a) holds with equality) and upgrades are
// strictly increasing along the serialization (Claim 3(b)).  Operations are
// stamped with the standard rule via clk::OpStamper.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "clock/lamport.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "proto/events.hpp"
#include "workload/program.hpp"

namespace lcdc::bus {

using Tick = std::uint64_t;
using BusSeq = std::uint64_t;

enum class BusCmd : std::uint8_t { BusRd, BusRdX, BusUpgr, BusWB };
[[nodiscard]] std::string toString(BusCmd c);

enum class MsiState : std::uint8_t { Invalid, Shared, Modified };

struct BusConfig {
  NodeId numProcessors = 4;
  BlockId numBlocks = 16;
  WordIdx wordsPerBlock = 4;
  std::uint32_t cacheCapacity = 0;  ///< 0 = unbounded
  /// Max random snoop-processing delay per node per command.
  Tick snoopDelayMax = 16;
  std::uint64_t seed = 1;
  /// Seeded protocol bug (campaign / fuzzing target).  The bus implements
  /// only Mutant::IgnoreInvalidation: a shared copy survives a snooped
  /// BusRdX/BusUpgr, so later loads keep binding stale values.
  Mutant mutant = Mutant::None;
};

struct BusRunResult {
  enum class Outcome { Quiescent, Stuck, BudgetExhausted };
  Outcome outcome = Outcome::BudgetExhausted;
  std::uint64_t eventsProcessed = 0;
  std::uint64_t grants = 0;
  std::uint64_t upgradeConversions = 0;
  /// Stale write-backs dropped at the arbiter (ownership already taken).
  std::uint64_t writebackAborts = 0;
  /// Memory responses parked behind an in-flight write-back/flush.
  std::uint64_t parkedResponses = 0;
  /// Times a snoop queue head had to wait for its own transaction's
  /// completion (the Section 2.4-style blocking rule).
  std::uint64_t headOfLineBlocks = 0;
  std::uint64_t opsBound = 0;
  Tick endTime = 0;

  [[nodiscard]] bool ok() const { return outcome == Outcome::Quiescent; }
};

[[nodiscard]] std::string toString(BusRunResult::Outcome o);

/// The whole bus machine: arbiter + caches + memory + processors.
/// Deliberately one class — the bus is a centralized medium and the
/// companion-paper protocol is far smaller than the directory one.
class BusSystem {
 public:
  BusSystem(const BusConfig& config, proto::EventSink& sink);
  ~BusSystem();
  BusSystem(const BusSystem&) = delete;
  BusSystem& operator=(const BusSystem&) = delete;

  void setProgram(NodeId proc, workload::Program program);

  /// Run to quiescence (or until maxEvents).
  BusRunResult run(std::uint64_t maxEvents = 100'000'000);

  [[nodiscard]] const BusConfig& config() const { return config_; }
  /// Node id used for memory stamps (numProcessors, like a directory node).
  [[nodiscard]] NodeId memoryNode() const { return config_.numProcessors; }
  [[nodiscard]] MsiState lineState(NodeId proc, BlockId block) const;
  [[nodiscard]] const BlockValue& memoryImage(BlockId block) const;
  [[nodiscard]] std::uint64_t silentEvictions() const {
    return silentEvictions_;
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  BusConfig config_;
  std::uint64_t silentEvictions_ = 0;
  friend struct Impl;
};

}  // namespace lcdc::bus
