// The directory controller (Section 2.2/2.3).
//
// Each block has a *home* directory entry recording the block's state (one
// of the six states of Section 2.2), the CACHED set of node IDs, and —
// because the directory distributes memory — the block's storage itself.
// Transactions on a block are serialized here (Section 3.1), which is what
// makes the whole Lamport construction possible.
//
// The controller is a pure transition system: `handle` consumes one message
// and produces outgoing messages through an Outbox plus observation events
// through an EventSink.  It performs no I/O, owns no threads and reads no
// clocks, so the event-driven simulator and the explicit-state model
// checker drive the *same* code.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/timestamp.hpp"
#include "common/types.hpp"
#include "proto/events.hpp"
#include "proto/messages.hpp"

namespace lcdc::proto {

/// Outgoing-message buffer filled by the transition functions.  The inline
/// capacity covers the widest single transition (a home reply plus one
/// invalidation per other sharer), so dispatching an event allocates
/// nothing.
struct Outbox {
  struct Entry {
    NodeId dst;
    Message msg;
  };
  common::SmallVector<Entry, 8> msgs;

  void send(NodeId dst, Message msg) {
    msgs.push_back(Entry{dst, std::move(msg)});
  }
  void clear() { msgs.clear(); }
};

/// Globally shared transaction-id allocator (ids are unique across all
/// directory slices so traces are unambiguous).
struct TxnCounter {
  /// Atomic so the model checker's workers can share one counter: every
  /// copied world aliases the same counter, and the ids it hands out are
  /// canonicalized away before hashing, so only allocation uniqueness
  /// matters — not order.
  std::atomic<TransactionId> next{1};
  TransactionId allocate() { return next.fetch_add(1, std::memory_order_relaxed); }
};

/// Protocol-relevant fields of a directory entry.  This is the projection
/// the model checker hashes; simulator-only bookkeeping (clock, txn ids,
/// statistics) lives outside it.
struct DirEntryCore {
  DirState state = DirState::Idle;
  /// CACHED: sorted set of node ids (Section 2.2 semantics per state).
  NodeList cached;
  /// While Busy-*: the requester whose transaction is in progress.
  NodeId busyRequester = kNoNode;
  /// While Busy-*: the request that opened the busy period.
  ReqType busyReq{};
};

/// Full directory entry: core + memory storage + verification bookkeeping.
struct DirEntry {
  DirEntryCore core;
  BlockValue mem;

  /// This entry's logical clock (Section 3.2: "each directory entry has a
  /// global clock").
  GlobalTime clock = 0;
  /// Number of transactions serialized on this block so far.
  SerialIdx serialCount = 0;
  /// While Busy-*: identity of the in-progress transaction.
  TxnInfo busyTxn{};
  /// While Busy-Shared: the home's serialization-time stamp of the busy
  /// transaction (re-sent if the transaction completes through the home,
  /// i.e. transaction 13).
  GlobalTime busyHomeTs = 0;
  /// While Busy-*: stamps to relay to the upgrader when the transaction
  /// completes through the home (presently unused beyond the fwd itself).
  StampList busyStamps;
};

/// The A-state of a directory entry: Idle=A_X, Shared=A_S, Exclusive=A_I
/// (Section 3.1).  Only defined when the busy bit is clear; during busy
/// periods we report the pre/post states of the owning transaction.
[[nodiscard]] AState dirAState(DirState s);

/// Per-directory statistics, keyed for the Table 1 reproduction.
struct DirStats {
  std::unordered_map<std::uint8_t, std::uint64_t> txnByKind;
  std::unordered_map<std::uint8_t, std::uint64_t> nackByKind;
  std::uint64_t requests = 0;

  void merge(const DirStats& other);
};

class DirectoryController {
 public:
  /// `self` is this directory slice's node id; it owns every block with
  /// homeOf(block) == self.
  DirectoryController(NodeId self, const ProtoConfig& config, EventSink& sink,
                      TxnCounter& txns);

  /// Install a block with its initial memory value.  Must be called before
  /// any message for the block arrives.
  void addBlock(BlockId block, BlockValue initial);

  /// Process one incoming protocol message addressed to this directory.
  void handle(const Message& m, Outbox& out);

  [[nodiscard]] const DirEntry& entry(BlockId block) const;
  [[nodiscard]] bool hasBlock(BlockId block) const {
    return entries_.contains(block);
  }
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const DirStats& stats() const { return stats_; }

  /// True when every owned entry is non-busy (quiescence check).
  [[nodiscard]] bool quiescent() const;

  /// Return every owned entry to its addBlock() state (Idle, memory all
  /// zeroes, clock 0), in place — entry nodes and buffers are kept.
  void reset();

  // -- checkpoint access ----------------------------------------------------
  // Raw entry table for full-fidelity serialization (model checker
  // frontier blobs).  Not for protocol logic.

  [[nodiscard]] std::unordered_map<BlockId, DirEntry>& entriesRaw() {
    return entries_;
  }
  [[nodiscard]] const std::unordered_map<BlockId, DirEntry>& entriesRaw()
      const {
    return entries_;
  }

 private:
  DirEntry& entryMut(BlockId block);

  void onGetS(const Message& m, DirEntry& e, Outbox& out);
  void onGetX(const Message& m, DirEntry& e, Outbox& out);
  void onUpgrade(const Message& m, DirEntry& e, Outbox& out);
  void onWriteback(const Message& m, DirEntry& e, Outbox& out);
  void onUpdateS(const Message& m, DirEntry& e, Outbox& out);
  void onUpdateX(const Message& m, DirEntry& e, Outbox& out);

  /// Serialize a new transaction on `e`'s block.
  TxnInfo serialize(DirEntry& e, BlockId block, TxnKind kind, NodeId requester);

  /// Home assigns a downgrade stamp (plain clock increment).
  GlobalTime stampDowngrade(DirEntry& e, const TxnInfo& txn, AState oldA,
                            AState newA);
  /// Home assigns an upgrade stamp (1 + max of own clock and carried stamps).
  GlobalTime stampUpgrade(DirEntry& e, const TxnInfo& txn,
                          const StampList& carried, AState oldA, AState newA);

  void nack(const Message& m, NackKind kind, Outbox& out);

  static void cachedInsert(NodeList& cached, NodeId n);
  static void cachedErase(NodeList& cached, NodeId n);
  static bool cachedContains(const NodeList& cached, NodeId n);

  NodeId self_;
  ProtoConfig config_;
  EventSink* sink_;
  TxnCounter* txns_;
  std::unordered_map<BlockId, DirEntry> entries_;
  DirStats stats_;
};

}  // namespace lcdc::proto
