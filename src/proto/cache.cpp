#include "proto/cache.hpp"

#include <algorithm>
#include <sstream>

#include "common/expect.hpp"

namespace lcdc::proto {

namespace {

std::string describe(const Message& m, NodeId self) {
  std::ostringstream os;
  os << "cache@" << self << " got " << toString(m.type) << " for block "
     << m.block << " from node " << m.src;
  return os.str();
}

GlobalTime maxStamp(const StampList& stamps) {
  GlobalTime best = 0;
  for (const auto& s : stamps) best = std::max(best, s.ts);
  return best;
}

bool contains(const NodeList& v, NodeId n) {
  return std::find(v.begin(), v.end(), n) != v.end();
}

/// Does the message carry a Lamport stamp assigned by `node`?  A request
/// carries its issuer's "pre-close" stamp exactly when the issuer silently
/// evicted the block and may therefore be buffering (or about to buffer)
/// the invalidation we are waiting on — the precondition for treating a
/// forwarded request as an implicit acknowledgment.  Without it, the
/// requester has already acknowledged normally (the ack is in flight), and
/// the forward must simply be buffered.
bool hasStampFrom(const StampList& stamps, NodeId node) {
  return std::any_of(stamps.begin(), stamps.end(),
                     [node](const TsStamp& s) { return s.node == node; });
}

}  // namespace

CacheController::CacheController(NodeId self, const ProtoConfig& config,
                                 EventSink& sink, CacheClient& client)
    : self_(self), config_(config), sink_(&sink), client_(&client) {}

Line& CacheController::lineMut(BlockId block) { return lines_[block]; }

CacheState CacheController::state(BlockId block) const {
  const Line* line = findLine(block);
  return line ? line->cstate : CacheState::Invalid;
}

const Line* CacheController::findLine(BlockId block) const {
  const auto it = lines_.find(block);
  return it == lines_.end() ? nullptr : &it->second;
}

std::size_t CacheController::linesHeld() const { return held_; }

void CacheController::recountLinesHeld() {
  held_ = 0;
  heldRO_.clear();
  heldRW_.clear();
  for (const auto& [b, line] : lines_) {
    if (line.cstate == CacheState::Invalid) continue;
    ++held_;
    if (auto* set = stateSet(line.cstate)) setInsert(*set, b);
  }
}

void CacheController::reset() {
  clock_ = 0;
  for (auto& [b, line] : lines_) {
    line.cstate = CacheState::Invalid;
    line.astate = AState::I;
    line.data.clear();
    line.mshr.reset();
    line.ignoreFwdTxn = kNoTransaction;
    line.dropInvTxn = kNoTransaction;
    line.epochTxn = kNoTransaction;
    line.epochSerial = 0;
    line.epochTs = 0;
    line.epochStartData.clear();
  }
  held_ = 0;
  heldRO_.clear();
  heldRW_.clear();
  stats_ = CacheStats{};
}

void CacheController::setInsert(common::SmallVector<BlockId, 8>& v,
                                BlockId b) {
  const auto it = std::lower_bound(v.begin(), v.end(), b);
  if (it == v.end() || *it != b) v.insert(it, b);
}

void CacheController::setErase(common::SmallVector<BlockId, 8>& v,
                               BlockId b) {
  const auto it = std::lower_bound(v.begin(), v.end(), b);
  if (it != v.end() && *it == b) v.erase(it);
}

bool CacheController::quiescent() const {
  return std::all_of(lines_.begin(), lines_.end(), [](const auto& kv) {
    const Line& line = kv.second;
    return !line.mshr.has_value() && line.ignoreFwdTxn == kNoTransaction &&
           line.dropInvTxn == kNoTransaction;
  });
}

common::SmallVector<BlockId, 8> CacheController::blocksInState(
    CacheState s) const {
  common::SmallVector<BlockId, 8> out;
  // The per-state sets are already sorted, so filtering them preserves
  // the sorted order the map scan used to produce.
  const common::SmallVector<BlockId, 8>* held =
      s == CacheState::ReadOnly    ? &heldRO_
      : s == CacheState::ReadWrite ? &heldRW_
                                   : nullptr;
  if (held != nullptr) {
    for (const BlockId b : *held) {
      const auto it = lines_.find(b);
      if (it == lines_.end()) continue;
      const Line& line = it->second;
      if (!line.mshr && line.ignoreFwdTxn == kNoTransaction &&
          line.dropInvTxn == kNoTransaction) {
        out.push_back(b);
      }
    }
    return out;
  }
  for (const auto& [b, line] : lines_) {
    if (line.cstate == s && !line.mshr && line.ignoreFwdTxn == kNoTransaction &&
        line.dropInvTxn == kNoTransaction) {
      out.push_back(b);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Lamport stamping (Section 3.2)
// ---------------------------------------------------------------------------
GlobalTime CacheController::stampDowngrade(Line& line, BlockId block,
                                           TransactionId txn, SerialIdx serial,
                                           AState newA) {
  const AState oldA = line.astate;
  clock_ += 1;
  line.astate = newA;
  sink_->onStamp(self_, txn, serial, block, StampRole::Downgrade, clock_, oldA,
                 newA);
  return clock_;
}

GlobalTime CacheController::stampUpgrade(Line& line, BlockId block,
                                         TransactionId txn, SerialIdx serial,
                                         const StampList& stamps,
                                         AState newA) {
  const AState oldA = line.astate;
  clock_ = 1 + std::max(clock_, maxStamp(stamps));
  line.astate = newA;
  sink_->onStamp(self_, txn, serial, block, StampRole::Upgrade, clock_, oldA,
                 newA);
  return clock_;
}

// ---------------------------------------------------------------------------
// Processor-facing API
// ---------------------------------------------------------------------------
bool CacheController::canBind(BlockId block, OpKind kind) const {
  const Line* line = findLine(block);
  if (line == nullptr || line->mshr.has_value()) return false;
  if (kind == OpKind::Load) return line->cstate != CacheState::Invalid;
  return line->cstate == CacheState::ReadWrite;
}

BindResult CacheController::bind(BlockId block, OpKind kind, WordIdx word,
                                 Word storeValue) {
  LCDC_EXPECT(canBind(block, kind), "bind() without permission");
  Line& line = lineMut(block);
  LCDC_EXPECT(word < line.data.size(), "bind() word out of range");
  BindResult r;
  if (kind == OpKind::Store) {
    line.data[word] = storeValue;
    r.value = storeValue;
  } else {
    r.value = line.data[word];
  }
  r.boundTxn = line.epochTxn;
  r.boundSerial = line.epochSerial;
  r.txnTs = line.epochTs;
  return r;
}

bool CacheController::requestBlocked(BlockId block) const {
  const Line* line = findLine(block);
  if (line == nullptr) return false;
  return line->mshr.has_value() || line->ignoreFwdTxn != kNoTransaction ||
         line->dropInvTxn != kNoTransaction;
}

void CacheController::issueRequest(BlockId block, ReqType req, NodeId home,
                                   Outbox& out) {
  LCDC_EXPECT(!requestBlocked(block), "issueRequest on a blocked line");
  Line& line = lineMut(block);

  Message m;
  m.block = block;
  m.requester = self_;
  Mshr ms;
  ms.req = req;

  switch (req) {
    case ReqType::GetShared:
    case ReqType::GetExclusive:
      LCDC_EXPECT(line.cstate == CacheState::Invalid,
                  "GetS/GetX from a non-invalid line");
      m.type = req == ReqType::GetShared ? MsgType::GetS : MsgType::GetX;
      if (line.astate == AState::S) {
        // Re-request after Put-Shared: pre-close the stale shared epoch so
        // the stamp can serve as our downgrade stamp on the deadlock path
        // (Section 2.5; DESIGN.md "Timestamp assignment points").
        clock_ += 1;
        ms.earlyStamp = clock_;
        m.stamps.push_back(TsStamp{self_, clock_});
      }
      break;
    case ReqType::Upgrade:
      LCDC_EXPECT(line.cstate == CacheState::ReadOnly,
                  "Upgrade from a non-read-only line");
      m.type = MsgType::Upgrade;
      break;
    case ReqType::Writeback:
      LCDC_EXPECT(false, "use writeback() for evictions");
  }

  stats_.requestsIssued += 1;
  line.mshr = std::move(ms);
  out.send(home, std::move(m));
}

void CacheController::writeback(BlockId block, NodeId home, Outbox& out) {
  LCDC_EXPECT(!requestBlocked(block), "writeback on a blocked line");
  Line& line = lineMut(block);
  LCDC_EXPECT(line.cstate == CacheState::ReadWrite,
              "writeback of a non-read-write line");
  // The owner's downgrade stamp is assigned at issue: it travels on the
  // Writeback so the home (the transaction's upgrader) can use it.  The
  // A-state record itself is emitted when the ack pins down the
  // transaction identity.
  clock_ += 1;
  Mshr ms;
  ms.req = ReqType::Writeback;
  ms.earlyStamp = clock_;

  Message m;
  m.type = MsgType::Writeback;
  m.block = block;
  m.requester = self_;
  m.data = line.data;
  m.stamps.push_back(TsStamp{self_, clock_});

  // Binding stops now: the block is relinquished (DESIGN.md).
  setCState(line, block, CacheState::Invalid);
  line.data.clear();
  line.mshr = std::move(ms);
  stats_.writebacks += 1;
  stats_.requestsIssued += 1;
  out.send(home, std::move(m));
}

void CacheController::putShared(BlockId block) {
  LCDC_EXPECT(!requestBlocked(block), "putShared on a blocked line");
  Line& line = lineMut(block);
  LCDC_EXPECT(line.cstate == CacheState::ReadOnly,
              "putShared of a non-read-only line");
  LCDC_EXPECT(config_.putSharedEnabled, "putShared with the extension off");
  setCState(line, block, CacheState::Invalid);
  line.data.clear();
  // The A-state deliberately stays A_S: the home still believes we share
  // the block (Section 3.1: "the A-state is not just a synonym for the
  // processor's cache state").
  stats_.putShareds += 1;
  sink_->onPutShared(self_, block);
}

// ---------------------------------------------------------------------------
// Network-facing dispatch
// ---------------------------------------------------------------------------
void CacheController::handle(const Message& m, Outbox& out) {
  Line& line = lineMut(m.block);
  switch (m.type) {
    case MsgType::DataShared: onDataShared(m, line, out); return;
    case MsgType::DataExclusive: onDataExclusive(m, line, out); return;
    case MsgType::UpgradeAck: onUpgradeAck(m, line, out); return;
    case MsgType::OwnerData: onOwnerData(m, line, out); return;
    case MsgType::InvAck: onInvAck(m, line, out); return;
    case MsgType::Inv: onInv(m, m.block, line, out); return;
    case MsgType::FwdGetS:
    case MsgType::FwdGetX: onFwd(m, m.block, line, out); return;
    case MsgType::WbAck: onWbAck(m, line, out); return;
    case MsgType::WbBusyAck: onWbBusyAck(m, line, out); return;
    case MsgType::Nack: onNackMsg(m, line, out); return;
    default:
      LCDC_EXPECT(false, describe(m, self_) + ": not a cache message");
  }
}

// ---------------------------------------------------------------------------
// Replies to our own requests
// ---------------------------------------------------------------------------
void CacheController::onDataShared(const Message& m, Line& line, Outbox& out) {
  LCDC_EXPECT(line.mshr && line.mshr->req == ReqType::GetShared,
              describe(m, self_) + ": no matching Get-Shared outstanding");
  completeShared(m, m.block, line, out);
}

void CacheController::completeShared(const Message& m, BlockId block,
                                     Line& line, Outbox& out) {
  Mshr ms = std::move(*line.mshr);
  line.mshr.reset();
  for (const auto& s : m.stamps) ms.stamps.push_back(s);

  const GlobalTime ts =
      stampUpgrade(line, block, m.txn, m.serial, ms.stamps, AState::S);
  setCState(line, block, CacheState::ReadOnly);
  line.data = m.data;
  line.epochTxn = m.txn;
  line.epochSerial = m.serial;
  line.epochTs = ts;
  line.epochStartData = line.data;
  sink_->onValueReceived(self_, m.txn, block, line.data);
  client_->onComplete(block, ReqType::GetShared);
  drainBuffered(block, std::move(ms.buffered), out);
}

void CacheController::onDataExclusive(const Message& m, Line& line,
                                      Outbox& out) {
  LCDC_EXPECT(line.mshr && line.mshr->req == ReqType::GetExclusive,
              describe(m, self_) + ": no matching Get-Exclusive outstanding");
  Mshr& ms = *line.mshr;
  LCDC_EXPECT(!ms.replySeen, "duplicate Get-Exclusive reply");
  ms.replySeen = true;
  ms.invListKnown = true;
  ms.data = m.data;
  ms.txn = m.txn;
  ms.serial = m.serial;
  for (const auto& s : m.stamps) ms.stamps.push_back(s);
  for (const NodeId t : m.invTargets) {
    if (!contains(ms.earlyAcks, t)) ms.acksPending.push_back(t);
  }
  ms.earlyAcks.clear();

  // A forwarded request buffered before we knew the invalidation-target
  // list may be the Section 2.5 implicit acknowledgment.
  if (config_.mutant != Mutant::NoDeadlockDetection) {
    for (std::size_t i = 0; i < ms.buffered.size(); ++i) {
      const Message& b = ms.buffered[i];
      if ((b.type == MsgType::FwdGetS || b.type == MsgType::FwdGetX) &&
          contains(ms.acksPending, b.requester) &&
          hasStampFrom(b.stamps, b.requester)) {
        Message fwd = ms.buffered[i];
        ms.buffered.erase(ms.buffered.begin() +
                          static_cast<std::ptrdiff_t>(i));
        resolveDeadlock(fwd, m.block, line);
        break;
      }
    }
  }
  tryCompleteExclusive(m.block, line, out);
}

void CacheController::onUpgradeAck(const Message& m, Line& line, Outbox& out) {
  LCDC_EXPECT(line.mshr && line.mshr->req == ReqType::Upgrade,
              describe(m, self_) + ": no matching Upgrade outstanding");
  LCDC_EXPECT(line.cstate == CacheState::ReadOnly,
              "UpgradeAck for a line we no longer hold read-only");
  Mshr& ms = *line.mshr;
  LCDC_EXPECT(!ms.replySeen, "duplicate Upgrade reply");
  ms.replySeen = true;
  ms.invListKnown = true;
  ms.txn = m.txn;
  ms.serial = m.serial;
  for (const auto& s : m.stamps) ms.stamps.push_back(s);
  for (const NodeId t : m.invTargets) {
    if (!contains(ms.earlyAcks, t)) ms.acksPending.push_back(t);
  }
  ms.earlyAcks.clear();
  if (config_.mutant != Mutant::NoDeadlockDetection) {
    for (std::size_t i = 0; i < ms.buffered.size(); ++i) {
      const Message& b = ms.buffered[i];
      if ((b.type == MsgType::FwdGetS || b.type == MsgType::FwdGetX) &&
          contains(ms.acksPending, b.requester) &&
          hasStampFrom(b.stamps, b.requester)) {
        Message fwd = ms.buffered[i];
        ms.buffered.erase(ms.buffered.begin() +
                          static_cast<std::ptrdiff_t>(i));
        resolveDeadlock(fwd, m.block, line);
        break;
      }
    }
  }
  tryCompleteExclusive(m.block, line, out);
}

void CacheController::onOwnerData(const Message& m, Line& line, Outbox& out) {
  LCDC_EXPECT(line.mshr, describe(m, self_) + ": no request outstanding");
  Mshr& ms = *line.mshr;
  if (m.ignoreBufferedInv) retireSupersededInv(m, m.block, line);
  if (ms.req == ReqType::GetShared) {
    completeShared(m, m.block, line, out);
    return;
  }
  LCDC_EXPECT(ms.req == ReqType::GetExclusive,
              describe(m, self_) + ": OwnerData for an Upgrade/Writeback");
  LCDC_EXPECT(!ms.replySeen, "duplicate Get-Exclusive reply");
  ms.replySeen = true;
  ms.invListKnown = true;  // the forwarded path has no invalidations
  ms.data = m.data;
  ms.txn = m.txn;
  ms.serial = m.serial;
  for (const auto& s : m.stamps) ms.stamps.push_back(s);
  tryCompleteExclusive(m.block, line, out);
}

void CacheController::retireSupersededInv(const Message& m, BlockId block,
                                          Line& line) {
  // Section 2.5 deadlock resolution, requester side.  Our A-state performs
  // the pending A_S -> A_I change for the transaction whose invalidation we
  // are told to ignore, using the pre-close stamp assigned when we issued
  // the re-request; the upgrade for our own transaction follows in the
  // caller.
  LCDC_EXPECT(line.mshr, "ignoreBufferedInv outside an outstanding request");
  Mshr& ms = *line.mshr;
  LCDC_EXPECT(ms.earlyStamp != 0,
              "deadlock-resolution data for a request with no pre-close "
              "stamp (requester had not silently evicted?)");
  LCDC_EXPECT(m.closesTxn != kNoTransaction, "missing closesTxn");
  LCDC_EXPECT(line.astate == AState::S,
              "superseded invalidation but A-state is not A_S");
  line.astate = AState::I;
  sink_->onStamp(self_, m.closesTxn, m.closesSerial, block,
                 StampRole::Downgrade, ms.earlyStamp, AState::S, AState::I);

  const auto it = std::find_if(
      ms.buffered.begin(), ms.buffered.end(), [&](const Message& b) {
        return b.type == MsgType::Inv && b.txn == m.closesTxn;
      });
  if (it != ms.buffered.end()) {
    ms.buffered.erase(it);
    stats_.invsDropped += 1;
  } else {
    // The invalidation is still in flight; drop it (without acknowledging)
    // when it arrives, and issue no new request until then.
    line.dropInvTxn = m.closesTxn;
  }
}

void CacheController::onInvAck(const Message& m, Line& line, Outbox& out) {
  if (!line.mshr) {
    // Only reachable under the SkipInvAckWait fault injection, where we
    // completed without waiting and acks straggle in afterwards.
    LCDC_EXPECT(config_.mutant == Mutant::SkipInvAckWait,
                describe(m, self_) + ": InvAck with no request outstanding");
    return;
  }
  Mshr& ms = *line.mshr;
  LCDC_EXPECT(ms.req == ReqType::GetExclusive || ms.req == ReqType::Upgrade,
              describe(m, self_) + ": InvAck for a non-exclusive request");
  for (const auto& s : m.stamps) ms.stamps.push_back(s);
  if (ms.invListKnown) {
    const auto it = std::find(ms.acksPending.begin(), ms.acksPending.end(),
                              m.src);
    LCDC_EXPECT(it != ms.acksPending.end(),
                describe(m, self_) + ": unexpected invalidation ack");
    ms.acksPending.erase(it);
  } else {
    ms.earlyAcks.push_back(m.src);
  }
  tryCompleteExclusive(m.block, line, out);
}

void CacheController::resolveDeadlock(const Message& fwd, BlockId block,
                                      Line& line) {
  Mshr& ms = *line.mshr;
  // The forwarded request is the implicit acknowledgment; its requester's
  // downgrade stamp is the pre-close stamp carried on the request.
  const auto it =
      std::find(ms.acksPending.begin(), ms.acksPending.end(), fwd.requester);
  LCDC_EXPECT(it != ms.acksPending.end(), "resolveDeadlock: not owed an ack");
  ms.acksPending.erase(it);
  bool foundStamp = false;
  for (const auto& s : fwd.stamps) {
    if (s.node == fwd.requester) {
      ms.stamps.push_back(s);
      foundStamp = true;
    }
  }
  LCDC_EXPECT(foundStamp,
              "implicit acknowledgment without the requester's pre-close "
              "stamp");
  LCDC_EXPECT(!ms.pendingFwd.has_value(), "two concurrent deadlock forwards");
  ms.pendingFwd = fwd;
  stats_.deadlocksResolved += 1;
  sink_->onDeadlockResolved(self_, block, fwd.requester);
}

void CacheController::tryCompleteExclusive(BlockId block, Line& line,
                                           Outbox& out) {
  Mshr& ms = *line.mshr;
  if (!ms.replySeen) return;
  const bool acksDone = ms.acksPending.empty() ||
                        config_.mutant == Mutant::SkipInvAckWait;
  if (!ms.invListKnown || !acksDone) return;

  Mshr done = std::move(*line.mshr);
  line.mshr.reset();
  const GlobalTime ts = stampUpgrade(line, block, done.txn, done.serial,
                                     done.stamps, AState::X);
  if (done.req == ReqType::GetExclusive) {
    line.data = std::move(done.data);
  }
  // For Upgrade, the node "receives a value from itself" (Section 2.4).
  setCState(line, block, CacheState::ReadWrite);
  line.epochTxn = done.txn;
  line.epochSerial = done.serial;
  line.epochTs = ts;
  line.epochStartData = line.data;
  sink_->onValueReceived(self_, done.txn, block, line.data);
  client_->onComplete(block, done.req);
  if (done.pendingFwd.has_value()) {
    serviceFwd(*done.pendingFwd, block, line, out, done.txn, done.serial);
  }
  drainBuffered(block, std::move(done.buffered), out);
}

void CacheController::onWbAck(const Message& m, Line& line, Outbox& out) {
  LCDC_EXPECT(line.mshr && line.mshr->req == ReqType::Writeback,
              describe(m, self_) + ": no Writeback outstanding");
  Mshr done = std::move(*line.mshr);
  line.mshr.reset();
  // The ack pins down the transaction; the downgrade stamp was pre-assigned
  // at issue.
  line.astate = AState::I;
  sink_->onStamp(self_, m.txn, m.serial, m.block, StampRole::Downgrade,
                 done.earlyStamp, AState::X, AState::I);
  client_->onComplete(m.block, ReqType::Writeback);
  drainBuffered(m.block, std::move(done.buffered), out);
}

void CacheController::onWbBusyAck(const Message& m, Line& line, Outbox& out) {
  LCDC_EXPECT(line.mshr && line.mshr->req == ReqType::Writeback,
              describe(m, self_) + ": no Writeback outstanding");
  Mshr done = std::move(*line.mshr);
  line.mshr.reset();
  // Transactions 13/14a: our writeback merged with the forwarded request;
  // our A_X -> A_I downgrade belongs to the combined transaction.
  line.astate = AState::I;
  sink_->onStamp(self_, m.txn, m.serial, m.block, StampRole::Downgrade,
                 done.earlyStamp, AState::X, AState::I);

  // Discard the forwarded request the home told us to ignore: it is either
  // already buffered or still in flight.
  const auto it = std::find_if(
      done.buffered.begin(), done.buffered.end(), [&](const Message& b) {
        return (b.type == MsgType::FwdGetS || b.type == MsgType::FwdGetX) &&
               b.txn == m.txn;
      });
  if (it != done.buffered.end()) {
    done.buffered.erase(it);
    stats_.fwdsDropped += 1;
  } else {
    line.ignoreFwdTxn = m.txn;
  }
  client_->onComplete(m.block, ReqType::Writeback);
  drainBuffered(m.block, std::move(done.buffered), out);
}

void CacheController::onNackMsg(const Message& m, Line& line, Outbox& out) {
  LCDC_EXPECT(line.mshr, describe(m, self_) + ": NACK with no request");
  LCDC_EXPECT(line.mshr->req == m.nackedReq,
              describe(m, self_) + ": NACK for a different request type");
  LCDC_EXPECT(m.nackedReq != ReqType::Writeback,
              "the directory never NACKs writebacks");
  Mshr done = std::move(*line.mshr);
  line.mshr.reset();
  stats_.nacksReceived += 1;
  // A retried request is a fresh network transaction; the original's
  // resources (including any pre-close stamp) are freed (Section 2.4).
  client_->onNacked(m.block, done.req, m.nackKind);
  drainBuffered(m.block, std::move(done.buffered), out);
}

// ---------------------------------------------------------------------------
// External demands: invalidations and forwarded requests
// ---------------------------------------------------------------------------
void CacheController::onInv(const Message& m, BlockId block, Line& line,
                            Outbox& out) {
  if (line.dropInvTxn != kNoTransaction && line.dropInvTxn == m.txn) {
    // The superseded invalidation finally arrived (Section 2.5): drop it
    // without acknowledging; its A-state change was already recorded.
    line.dropInvTxn = kNoTransaction;
    stats_.invsDropped += 1;
    client_->onLineUnblocked(block);
    return;
  }
  if (line.mshr.has_value()) {
    // Section 2.4: buffer until the outstanding transaction completes.
    stats_.invalidationsBuffered += 1;
    line.mshr->buffered.push_back(m);
    return;
  }
  switch (line.cstate) {
    case CacheState::ReadOnly:
      if (config_.mutant == Mutant::IgnoreInvalidation) {
        // BUG (fault injection): acknowledge but keep the line readable.
        Message ack;
        ack.type = MsgType::InvAck;
        ack.block = block;
        ack.requester = m.requester;
        ack.txn = m.txn;
        ack.serial = m.serial;
        out.send(m.requester, std::move(ack));
        return;
      }
      applyInv(m, block, line, out);
      return;
    case CacheState::Invalid:
      // A stale invalidation for a silently-evicted copy: acknowledge it
      // (Section 2.5 addition 3).
      LCDC_EXPECT(line.astate == AState::S,
                  describe(m, self_) +
                      ": invalidation for a block with A-state A_I");
      stats_.staleInvAcks += 1;
      applyInv(m, block, line, out);
      return;
    case CacheState::ReadWrite:
      LCDC_EXPECT(false, describe(m, self_) +
                             ": invalidation addressed to the owner");
      return;
  }
}

void CacheController::applyInv(const Message& m, BlockId block, Line& line,
                               Outbox& out) {
  const GlobalTime ts =
      stampDowngrade(line, block, m.txn, m.serial, AState::I);
  setCState(line, block, CacheState::Invalid);
  line.data.clear();
  stats_.invalidationsApplied += 1;
  Message ack;
  ack.type = MsgType::InvAck;
  ack.block = block;
  ack.requester = m.requester;
  ack.txn = m.txn;
  ack.serial = m.serial;
  ack.stamps = {TsStamp{self_, ts}};
  out.send(m.requester, std::move(ack));
}

void CacheController::onFwd(const Message& m, BlockId block, Line& line,
                            Outbox& out) {
  if (line.ignoreFwdTxn != kNoTransaction && line.ignoreFwdTxn == m.txn) {
    // Busy-writeback epilogue: the forwarded request we were told to ignore
    // arrived after the busy ack.
    line.ignoreFwdTxn = kNoTransaction;
    stats_.fwdsDropped += 1;
    client_->onLineUnblocked(block);
    return;
  }
  if (line.mshr.has_value()) {
    Mshr& ms = *line.mshr;
    const bool exclusiveReq =
        ms.req == ReqType::GetExclusive || ms.req == ReqType::Upgrade;
    if (exclusiveReq && ms.invListKnown &&
        contains(ms.acksPending, m.requester) &&
        hasStampFrom(m.stamps, m.requester) &&
        config_.mutant != Mutant::NoDeadlockDetection) {
      resolveDeadlock(m, block, line);
      tryCompleteExclusive(block, line, out);
      return;
    }
    stats_.forwardsBuffered += 1;
    ms.buffered.push_back(m);
    return;
  }
  serviceFwd(m, block, line, out);
}

void CacheController::serviceFwd(const Message& m, BlockId block, Line& line,
                                 Outbox& out, TransactionId closesTxn,
                                 SerialIdx closesSerial) {
  LCDC_EXPECT(line.cstate == CacheState::ReadWrite,
              describe(m, self_) + ": forwarded request but not the owner");
  const bool isGetS = m.type == MsgType::FwdGetS;
  const BlockValue& payload = config_.mutant == Mutant::ForwardStaleValue
                                  ? line.epochStartData
                                  : line.data;

  Message reply;
  reply.type = MsgType::OwnerData;
  reply.block = block;
  reply.requester = m.requester;
  reply.txn = m.txn;
  reply.serial = m.serial;
  reply.data = payload;
  reply.stamps = m.stamps;  // the home's stamp (and the requester's own)
  if (closesTxn != kNoTransaction) {
    reply.ignoreBufferedInv = true;
    reply.closesTxn = closesTxn;
    reply.closesSerial = closesSerial;
  }

  Message update;
  update.block = block;
  update.requester = m.requester;
  update.txn = m.txn;
  update.serial = m.serial;

  const NodeId home = m.src;  // forwards always come from the home

  if (isGetS) {
    const GlobalTime ts = stampDowngrade(line, block, m.txn, m.serial,
                                         AState::S);
    reply.stamps.push_back(TsStamp{self_, ts});
    setCState(line, block, CacheState::ReadOnly);
    // We stay a reader: subsequent loads belong to the *shared* epoch this
    // transaction opens at us (Claim 4), not to the exclusive epoch that
    // just ended.
    line.epochTxn = m.txn;
    line.epochSerial = m.serial;
    line.epochTs = ts;
    line.epochStartData = line.data;
    update.type = MsgType::UpdateS;
    update.data = payload;
    // Memory becomes the valid copy when the home applies this update; the
    // entry clock must absorb our stamp so later readers served from
    // memory stay above this exclusive epoch (Claim 3(b) chain).
    update.stamps.push_back(TsStamp{self_, ts});
  } else {
    const GlobalTime ts = stampDowngrade(line, block, m.txn, m.serial,
                                         AState::I);
    reply.stamps.push_back(TsStamp{self_, ts});
    setCState(line, block, CacheState::Invalid);
    line.data.clear();
    update.type = MsgType::UpdateX;
  }
  out.send(m.requester, std::move(reply));
  out.send(home, std::move(update));
}

void CacheController::drainBuffered(BlockId block,
                                    common::SmallVector<Message, 2> buffered,
                                    Outbox& out) {
  for (const Message& m : buffered) {
    // The line may have changed as earlier buffered messages applied;
    // re-dispatch through the normal paths.
    Line& line = lineMut(block);
    if (m.type == MsgType::Inv) {
      onInv(m, block, line, out);
    } else if (m.type == MsgType::FwdGetS || m.type == MsgType::FwdGetX) {
      onFwd(m, block, line, out);
    } else {
      LCDC_EXPECT(false, "only invalidations and forwards are buffered");
    }
  }
}

}  // namespace lcdc::proto
