#include "proto/directory.hpp"

#include <algorithm>
#include <sstream>

#include "common/expect.hpp"

namespace lcdc::proto {

namespace {

std::string describe(const Message& m, NodeId self) {
  std::ostringstream os;
  os << "dir@" << self << " got " << toString(m.type) << " for block "
     << m.block << " from node " << m.src;
  return os.str();
}

GlobalTime maxStamp(const StampList& stamps) {
  GlobalTime best = 0;
  for (const auto& s : stamps) best = std::max(best, s.ts);
  return best;
}

}  // namespace

EventSink& nullSink() {
  static EventSink sink;
  return sink;
}

AState dirAState(DirState s) {
  switch (s) {
    case DirState::Idle: return AState::X;
    case DirState::Shared: return AState::S;
    case DirState::Exclusive: return AState::I;
    default: break;
  }
  // During busy periods the directory's A-state is in transition; callers
  // must not ask for it (Section 3.1: defined "when the busy bit is not
  // set").
  LCDC_EXPECT(false, "dirAState queried during a busy period");
}

void DirStats::merge(const DirStats& other) {
  for (const auto& [k, v] : other.txnByKind) txnByKind[k] += v;
  for (const auto& [k, v] : other.nackByKind) nackByKind[k] += v;
  requests += other.requests;
}

DirectoryController::DirectoryController(NodeId self, const ProtoConfig& config,
                                         EventSink& sink, TxnCounter& txns)
    : self_(self), config_(config), sink_(&sink), txns_(&txns) {}

void DirectoryController::addBlock(BlockId block, BlockValue initial) {
  LCDC_EXPECT(!entries_.contains(block), "block added twice");
  LCDC_EXPECT(initial.size() == config_.wordsPerBlock,
              "initial value has wrong word count");
  DirEntry e;
  e.mem = std::move(initial);
  entries_.emplace(block, std::move(e));
}

const DirEntry& DirectoryController::entry(BlockId block) const {
  const auto it = entries_.find(block);
  LCDC_EXPECT(it != entries_.end(), "entry() for foreign block");
  return it->second;
}

DirEntry& DirectoryController::entryMut(BlockId block) {
  const auto it = entries_.find(block);
  LCDC_EXPECT(it != entries_.end(), "message for a block not homed here");
  return it->second;
}

bool DirectoryController::quiescent() const {
  return std::all_of(entries_.begin(), entries_.end(), [](const auto& kv) {
    const DirState s = kv.second.core.state;
    return s == DirState::Idle || s == DirState::Shared ||
           s == DirState::Exclusive;
  });
}

void DirectoryController::reset() {
  for (auto& [b, e] : entries_) {
    e.core.state = DirState::Idle;
    e.core.cached.clear();
    e.core.busyRequester = kNoNode;
    e.core.busyReq = ReqType{};
    e.mem.assign(config_.wordsPerBlock, 0);
    e.clock = 0;
    e.serialCount = 0;
    e.busyTxn = TxnInfo{};
    e.busyHomeTs = 0;
    e.busyStamps.clear();
  }
  // Zero the per-kind counters in place rather than clear(): these maps
  // are node-based, so clear+reinsert would cost one allocation per kind
  // per run.  A zero-valued entry is indistinguishable from an absent one
  // to every consumer (they look up kinds, never iterate raw).
  for (auto& [k, v] : stats_.txnByKind) v = 0;
  for (auto& [k, v] : stats_.nackByKind) v = 0;
  stats_.requests = 0;
}

void DirectoryController::handle(const Message& m, Outbox& out) {
  DirEntry& e = entryMut(m.block);
  switch (m.type) {
    case MsgType::GetS: stats_.requests++; onGetS(m, e, out); return;
    case MsgType::GetX: stats_.requests++; onGetX(m, e, out); return;
    case MsgType::Upgrade: stats_.requests++; onUpgrade(m, e, out); return;
    case MsgType::Writeback: stats_.requests++; onWriteback(m, e, out); return;
    case MsgType::UpdateS: onUpdateS(m, e, out); return;
    case MsgType::UpdateX: onUpdateX(m, e, out); return;
    default:
      LCDC_EXPECT(false, describe(m, self_) + ": not a directory message");
  }
}

TxnInfo DirectoryController::serialize(DirEntry& e, BlockId block, TxnKind kind,
                                       NodeId requester) {
  TxnInfo txn;
  txn.id = txns_->allocate();
  txn.serial = ++e.serialCount;
  txn.kind = kind;
  txn.block = block;
  txn.requester = requester;
  stats_.txnByKind[static_cast<std::uint8_t>(kind)] += 1;
  sink_->onSerialize(txn);
  return txn;
}

GlobalTime DirectoryController::stampDowngrade(DirEntry& e, const TxnInfo& txn,
                                               AState oldA, AState newA) {
  e.clock += 1;
  sink_->onStamp(self_, txn.id, txn.serial, txn.block, StampRole::Downgrade,
                 e.clock, oldA, newA);
  return e.clock;
}

GlobalTime DirectoryController::stampUpgrade(DirEntry& e, const TxnInfo& txn,
                                             const StampList& carried,
                                             AState oldA, AState newA) {
  e.clock = 1 + std::max(e.clock, maxStamp(carried));
  sink_->onStamp(self_, txn.id, txn.serial, txn.block, StampRole::Upgrade,
                 e.clock, oldA, newA);
  return e.clock;
}

void DirectoryController::nack(const Message& m, NackKind kind, Outbox& out) {
  stats_.nackByKind[static_cast<std::uint8_t>(kind)] += 1;
  sink_->onNack(m.src, m.block, kind);
  Message reply;
  reply.type = MsgType::Nack;
  reply.block = m.block;
  reply.requester = m.src;
  reply.nackKind = kind;
  reply.nackedReq = m.type == MsgType::GetS      ? ReqType::GetShared
                    : m.type == MsgType::GetX    ? ReqType::GetExclusive
                    : m.type == MsgType::Upgrade ? ReqType::Upgrade
                                                 : ReqType::Writeback;
  out.send(m.src, std::move(reply));
}

void DirectoryController::cachedInsert(NodeList& cached, NodeId n) {
  const auto it = std::lower_bound(cached.begin(), cached.end(), n);
  if (it == cached.end() || *it != n) cached.insert(it, n);
}

void DirectoryController::cachedErase(NodeList& cached, NodeId n) {
  const auto it = std::lower_bound(cached.begin(), cached.end(), n);
  if (it != cached.end() && *it == n) cached.erase(it);
}

bool DirectoryController::cachedContains(const NodeList& cached,
                                         NodeId n) {
  return std::binary_search(cached.begin(), cached.end(), n);
}

// ---------------------------------------------------------------------------
// Get-Shared (transactions 1-4)
// ---------------------------------------------------------------------------
void DirectoryController::onGetS(const Message& m, DirEntry& e, Outbox& out) {
  auto& core = e.core;
  switch (core.state) {
    case DirState::Idle: {
      // Transaction 1: clear CACHED, add requester, send block, go Shared.
      const TxnInfo txn = serialize(e, m.block, TxnKind::GetS_Idle, m.src);
      const GlobalTime ts = stampDowngrade(e, txn, AState::X, AState::S);
      core.cached.clear();
      cachedInsert(core.cached, m.src);
      core.state = DirState::Shared;
      Message reply;
      reply.type = MsgType::DataShared;
      reply.block = m.block;
      reply.requester = m.src;
      reply.txn = txn.id;
      reply.serial = txn.serial;
      reply.data = e.mem;
      reply.stamps = {TsStamp{self_, ts}};
      out.send(m.src, std::move(reply));
      return;
    }
    case DirState::Shared: {
      // Transaction 2: add requester to CACHED and send the block.
      const TxnInfo txn = serialize(e, m.block, TxnKind::GetS_Shared, m.src);
      const GlobalTime ts = stampDowngrade(e, txn, AState::S, AState::S);
      cachedInsert(core.cached, m.src);
      Message reply;
      reply.type = MsgType::DataShared;
      reply.block = m.block;
      reply.requester = m.src;
      reply.txn = txn.id;
      reply.serial = txn.serial;
      reply.data = e.mem;
      reply.stamps = {TsStamp{self_, ts}};
      out.send(m.src, std::move(reply));
      return;
    }
    case DirState::Exclusive: {
      if (config_.mutant == Mutant::StaleDataFromHome) {
        // BUG (fault injection): answer from (stale) local memory instead of
        // forwarding to the owner.  The requester is not recorded in CACHED,
        // so it will never be invalidated and keeps reading a dead value.
        const TxnInfo txn = serialize(e, m.block, TxnKind::GetS_Shared, m.src);
        const GlobalTime ts = stampDowngrade(e, txn, AState::I, AState::I);
        Message reply;
        reply.type = MsgType::DataShared;
        reply.block = m.block;
        reply.requester = m.src;
        reply.txn = txn.id;
        reply.serial = txn.serial;
        reply.data = e.mem;
        reply.stamps = {TsStamp{self_, ts}};
        out.send(m.src, std::move(reply));
        return;
      }
      // Transaction 3: go Busy-Shared and forward to the current owner, who
      // will send the block to the requester and an update to us.
      LCDC_EXPECT(core.cached.size() == 1,
                  "Exclusive entry must have exactly one owner");
      const NodeId owner = core.cached.front();
      LCDC_EXPECT(owner != m.src, "owner issued Get-Shared for its own block");
      const TxnInfo txn = serialize(e, m.block, TxnKind::GetS_Exclusive, m.src);
      // Home is affected by every Get-Shared transaction and downgrades by
      // definition (Section 3.1); its A-state here goes A_I -> A_S once the
      // update arrives.
      const GlobalTime ts = stampDowngrade(e, txn, AState::I, AState::S);
      core.state = DirState::BusyShared;
      core.busyRequester = m.src;
      core.busyReq = ReqType::GetShared;
      core.cached.clear();
      cachedInsert(core.cached, m.src);
      e.busyTxn = txn;
      e.busyHomeTs = ts;
      Message fwd;
      fwd.type = MsgType::FwdGetS;
      fwd.block = m.block;
      fwd.requester = m.src;
      fwd.txn = txn.id;
      fwd.serial = txn.serial;
      fwd.stamps = m.stamps;  // requester's pre-close stamp, if any
      fwd.stamps.push_back(TsStamp{self_, ts});
      out.send(owner, std::move(fwd));
      return;
    }
    case DirState::BusyShared:
    case DirState::BusyExclusive:
    case DirState::BusyIdle: {
      if (config_.mutant == Mutant::NoBusyNack) {
        // BUG (fault injection): serve the request from memory while a
        // transaction is in progress, without recording the requester.
        const TxnInfo txn = serialize(e, m.block, TxnKind::GetS_Shared, m.src);
        const GlobalTime ts = stampDowngrade(e, txn, AState::S, AState::S);
        Message reply;
        reply.type = MsgType::DataShared;
        reply.block = m.block;
        reply.requester = m.src;
        reply.txn = txn.id;
        reply.serial = txn.serial;
        reply.data = e.mem;
        reply.stamps = {TsStamp{self_, ts}};
        out.send(m.src, std::move(reply));
        return;
      }
      nack(m, NackKind::GetS_Busy, out);  // Transaction 4
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Get-Exclusive (transactions 5-8)
// ---------------------------------------------------------------------------
void DirectoryController::onGetX(const Message& m, DirEntry& e, Outbox& out) {
  auto& core = e.core;
  switch (core.state) {
    case DirState::Idle: {
      // Transaction 5.
      const TxnInfo txn = serialize(e, m.block, TxnKind::GetX_Idle, m.src);
      const GlobalTime ts = stampDowngrade(e, txn, AState::X, AState::I);
      core.cached.clear();
      cachedInsert(core.cached, m.src);
      core.state = DirState::Exclusive;
      Message reply;
      reply.type = MsgType::DataExclusive;
      reply.block = m.block;
      reply.requester = m.src;
      reply.txn = txn.id;
      reply.serial = txn.serial;
      reply.data = e.mem;
      reply.stamps = {TsStamp{self_, ts}};
      out.send(m.src, std::move(reply));
      return;
    }
    case DirState::Shared: {
      // Transaction 6: invalidate all sharers; requester collects the acks.
      // A requester whose own (stale, silently-evicted) id is still in
      // CACHED is excluded: self-invalidation is meaningless (DESIGN.md).
      const TxnInfo txn = serialize(e, m.block, TxnKind::GetX_Shared, m.src);
      const GlobalTime ts = stampDowngrade(e, txn, AState::S, AState::I);
      NodeList targets = core.cached;
      cachedErase(targets, m.src);
      for (const NodeId sharer : targets) {
        Message inv;
        inv.type = MsgType::Inv;
        inv.block = m.block;
        inv.requester = m.src;
        inv.txn = txn.id;
        inv.serial = txn.serial;
        out.send(sharer, std::move(inv));
      }
      core.cached.clear();
      cachedInsert(core.cached, m.src);
      core.state = DirState::Exclusive;
      Message reply;
      reply.type = MsgType::DataExclusive;
      reply.block = m.block;
      reply.requester = m.src;
      reply.txn = txn.id;
      reply.serial = txn.serial;
      reply.data = e.mem;
      reply.invTargets = std::move(targets);
      reply.stamps = {TsStamp{self_, ts}};
      out.send(m.src, std::move(reply));
      return;
    }
    case DirState::Exclusive: {
      // Transaction 7: forward to the owner; it will pass data + ownership
      // directly to the requester and send us an update.  The home's
      // A-state is A_I before and after, so the home assigns no stamp.
      LCDC_EXPECT(core.cached.size() == 1,
                  "Exclusive entry must have exactly one owner");
      const NodeId owner = core.cached.front();
      LCDC_EXPECT(owner != m.src,
                  "owner issued Get-Exclusive for a block it owns");
      const TxnInfo txn = serialize(e, m.block, TxnKind::GetX_Exclusive, m.src);
      core.state = DirState::BusyExclusive;
      core.busyRequester = m.src;
      core.busyReq = ReqType::GetExclusive;
      core.cached.clear();
      cachedInsert(core.cached, m.src);
      e.busyTxn = txn;
      Message fwd;
      fwd.type = MsgType::FwdGetX;
      fwd.block = m.block;
      fwd.requester = m.src;
      fwd.txn = txn.id;
      fwd.serial = txn.serial;
      fwd.stamps = m.stamps;  // requester's pre-close stamp, if any
      out.send(owner, std::move(fwd));
      return;
    }
    case DirState::BusyShared:
    case DirState::BusyExclusive:
    case DirState::BusyIdle:
      nack(m, NackKind::GetX_Busy, out);  // Transaction 8
      return;
  }
}

// ---------------------------------------------------------------------------
// Upgrade (transactions 9-11)
// ---------------------------------------------------------------------------
void DirectoryController::onUpgrade(const Message& m, DirEntry& e, Outbox& out) {
  auto& core = e.core;
  switch (core.state) {
    case DirState::Idle:
      // Appendix B: impossible.  An upgrader holds a read-only copy, so the
      // directory cannot believe nobody holds the block.
      LCDC_EXPECT(false, describe(m, self_) + ": Upgrade at Idle directory");
      return;
    case DirState::Shared: {
      // Transaction 9: like transaction 6 but without sending data.
      LCDC_EXPECT(cachedContains(core.cached, m.src),
                  "upgrader not recorded as a sharer");
      const TxnInfo txn = serialize(e, m.block, TxnKind::Upg_Shared, m.src);
      const GlobalTime ts = stampDowngrade(e, txn, AState::S, AState::I);
      NodeList targets = core.cached;
      cachedErase(targets, m.src);
      for (const NodeId sharer : targets) {
        Message inv;
        inv.type = MsgType::Inv;
        inv.block = m.block;
        inv.requester = m.src;
        inv.txn = txn.id;
        inv.serial = txn.serial;
        out.send(sharer, std::move(inv));
      }
      core.cached.clear();
      cachedInsert(core.cached, m.src);
      core.state = DirState::Exclusive;
      Message reply;
      reply.type = MsgType::UpgradeAck;
      reply.block = m.block;
      reply.requester = m.src;
      reply.txn = txn.id;
      reply.serial = txn.serial;
      reply.invTargets = std::move(targets);
      reply.stamps = {TsStamp{self_, ts}};
      out.send(m.src, std::move(reply));
      return;
    }
    case DirState::Exclusive:
      // Transaction 10: another writer won; an invalidation is already on
      // its way to the upgrader, which must retry with Get-Exclusive.
      LCDC_EXPECT(core.cached.size() == 1 && core.cached.front() != m.src,
                  "owner issued Upgrade for a block it owns exclusively");
      nack(m, NackKind::Upg_Exclusive, out);
      return;
    case DirState::BusyShared:
    case DirState::BusyExclusive:
    case DirState::BusyIdle:
      nack(m, NackKind::Upg_Busy, out);  // Transaction 11
      return;
  }
}

// ---------------------------------------------------------------------------
// Writeback (transactions 12-14)
// ---------------------------------------------------------------------------
void DirectoryController::onWriteback(const Message& m, DirEntry& e,
                                      Outbox& out) {
  auto& core = e.core;
  switch (core.state) {
    case DirState::Idle:
    case DirState::Shared:
      // Appendix B: impossible — a writeback implies a read-write copy
      // exists, contradicting Idle/Shared.
      LCDC_EXPECT(false,
                  describe(m, self_) + ": Writeback at " +
                      lcdc::toString(core.state) + " directory");
      return;
    case DirState::Exclusive: {
      // Transaction 12: the common case.
      LCDC_EXPECT(core.cached.size() == 1 && core.cached.front() == m.src,
                  "writeback from a node the directory does not consider "
                  "the owner");
      const TxnInfo txn = serialize(e, m.block, TxnKind::Wb_Exclusive, m.src);
      // The home upgrades (A_I -> A_X: memory becomes the valid copy).
      const GlobalTime ts =
          stampUpgrade(e, txn, m.stamps, AState::I, AState::X);
      (void)ts;
      e.mem = m.data;
      sink_->onValueReceived(self_, txn.id, m.block, e.mem);
      core.cached.clear();
      core.state = DirState::Idle;
      Message ack;
      ack.type = MsgType::WbAck;
      ack.block = m.block;
      ack.requester = m.src;
      ack.txn = txn.id;
      ack.serial = txn.serial;
      out.send(m.src, std::move(ack));
      return;
    }
    case DirState::BusyShared: {
      // Transaction 13: the writeback and our forwarded Get-Shared crossed
      // in the network.  Combine both requests: satisfy the reader from the
      // written-back data and tell the former owner to ignore the forward.
      LCDC_EXPECT(m.src != core.busyRequester,
                  "Appendix B: writeback requester cannot be in CACHED while "
                  "Busy-Shared");
      LCDC_EXPECT(core.busyReq == ReqType::GetShared,
                  "Busy-Shared entry not owned by a Get-Shared");
      const TxnInfo txn = e.busyTxn;
      TxnInfo combined = txn;
      combined.kind = TxnKind::Wb_BusyShared;
      stats_.txnByKind[static_cast<std::uint8_t>(TxnKind::GetS_Exclusive)] -= 1;
      stats_.txnByKind[static_cast<std::uint8_t>(TxnKind::Wb_BusyShared)] += 1;
      sink_->onTxnConverted(txn.id, TxnKind::Wb_BusyShared);
      // The home already assigned its downgrade stamp for this transaction
      // at serialization (a node stamps a transaction once); memory now
      // becomes the valid copy, so the entry clock absorbs the owner's
      // writeback stamp — this is what keeps Claim 3(b)'s chain intact for
      // the *next* reader served from memory (see DESIGN.md).
      e.clock = std::max(e.clock, maxStamp(m.stamps));
      e.mem = m.data;
      sink_->onValueReceived(self_, combined.id, m.block, e.mem);
      core.state = DirState::Shared;
      // CACHED keeps only the new reader; the former owner wrote back.
      Message reply;
      reply.type = MsgType::DataShared;
      reply.block = m.block;
      reply.requester = core.busyRequester;
      reply.txn = combined.id;
      reply.serial = combined.serial;
      reply.data = e.mem;
      reply.stamps = m.stamps;  // former owner's writeback stamp
      reply.stamps.push_back(TsStamp{self_, e.busyHomeTs});
      out.send(core.busyRequester, std::move(reply));
      Message busyAck;
      busyAck.type = MsgType::WbBusyAck;
      busyAck.block = m.block;
      busyAck.requester = m.src;
      busyAck.txn = combined.id;
      busyAck.serial = combined.serial;
      out.send(m.src, std::move(busyAck));
      core.busyRequester = kNoNode;
      return;
    }
    case DirState::BusyExclusive: {
      LCDC_EXPECT(core.busyReq == ReqType::GetExclusive,
                  "Busy-Exclusive entry not owned by a Get-Exclusive");
      if (m.src != core.busyRequester) {
        // Transaction 14a: same race as 13 but the waiting requester wants
        // the block read-write.  The home answers on the owner's behalf;
        // memory does NOT become valid (entry goes Exclusive).
        const TxnInfo txn = e.busyTxn;
        TxnInfo combined = txn;
        combined.kind = TxnKind::Wb_BusyExclusive;
        stats_.txnByKind[static_cast<std::uint8_t>(TxnKind::GetX_Exclusive)] -= 1;
        stats_.txnByKind[static_cast<std::uint8_t>(TxnKind::Wb_BusyExclusive)] += 1;
        sink_->onTxnConverted(txn.id, TxnKind::Wb_BusyExclusive);
        core.state = DirState::Exclusive;
        Message reply;
        reply.type = MsgType::OwnerData;
        reply.block = m.block;
        reply.requester = core.busyRequester;
        reply.txn = combined.id;
        reply.serial = combined.serial;
        reply.data = m.data;
        reply.stamps = m.stamps;  // former owner's writeback stamp
        out.send(core.busyRequester, std::move(reply));
        Message busyAck;
        busyAck.type = MsgType::WbBusyAck;
        busyAck.block = m.block;
        busyAck.requester = m.src;
        busyAck.txn = combined.id;
        busyAck.serial = combined.serial;
        out.send(m.src, std::move(busyAck));
        core.busyRequester = kNoNode;
        return;
      }
      // Transaction 14b: the requester's writeback beat the former owner's
      // update message.  Accept the data, ack, and wait in Busy-Idle for
      // the straggling update.
      const TxnInfo txn =
          serialize(e, m.block, TxnKind::Wb_BusyExclusiveSelf, m.src);
      const GlobalTime ts =
          stampUpgrade(e, txn, m.stamps, AState::I, AState::X);
      (void)ts;
      e.mem = m.data;
      sink_->onValueReceived(self_, txn.id, m.block, e.mem);
      core.cached.clear();
      core.state = DirState::BusyIdle;
      core.busyRequester = kNoNode;
      Message ack;
      ack.type = MsgType::WbAck;
      ack.block = m.block;
      ack.requester = m.src;
      ack.txn = txn.id;
      ack.serial = txn.serial;
      out.send(m.src, std::move(ack));
      return;
    }
    case DirState::BusyIdle:
      LCDC_EXPECT(false,
                  describe(m, self_) + ": Writeback at Busy-Idle directory "
                  "(Appendix B: impossible)");
      return;
  }
}

void DirectoryController::onUpdateS(const Message& m, DirEntry& e, Outbox& out) {
  auto& core = e.core;
  LCDC_EXPECT(core.state == DirState::BusyShared,
              describe(m, self_) + ": UpdateS outside Busy-Shared");
  // Transaction 3 completes: store the block, re-include the former owner
  // in CACHED, go Shared.  Memory becomes the valid copy, so the entry
  // clock absorbs the former owner's downgrade stamp (Claim 3(b) chain).
  e.clock = std::max(e.clock, maxStamp(m.stamps));
  e.mem = m.data;
  sink_->onValueReceived(self_, e.busyTxn.id, m.block, e.mem);
  cachedInsert(core.cached, m.src);
  core.state = DirState::Shared;
  core.busyRequester = kNoNode;
}

void DirectoryController::onUpdateX(const Message& m, DirEntry& e, Outbox& out) {
  auto& core = e.core;
  if (core.state == DirState::BusyExclusive) {
    // Transaction 7 completes.
    core.state = DirState::Exclusive;
    core.busyRequester = kNoNode;
    return;
  }
  if (core.state == DirState::BusyIdle) {
    // Transaction 14b epilogue: the straggling update finally arrived.
    core.state = DirState::Idle;
    return;
  }
  LCDC_EXPECT(false, describe(m, self_) + ": UpdateX at " +
                         lcdc::toString(core.state) + " directory");
}

}  // namespace lcdc::proto
