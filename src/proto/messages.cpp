#include "proto/messages.hpp"

namespace lcdc::proto {

std::string toString(MsgType t) {
  switch (t) {
    case MsgType::GetS: return "GetS";
    case MsgType::GetX: return "GetX";
    case MsgType::Upgrade: return "Upgrade";
    case MsgType::Writeback: return "Writeback";
    case MsgType::DataShared: return "DataShared";
    case MsgType::DataExclusive: return "DataExclusive";
    case MsgType::UpgradeAck: return "UpgradeAck";
    case MsgType::Nack: return "Nack";
    case MsgType::WbAck: return "WbAck";
    case MsgType::WbBusyAck: return "WbBusyAck";
    case MsgType::FwdGetS: return "FwdGetS";
    case MsgType::FwdGetX: return "FwdGetX";
    case MsgType::Inv: return "Inv";
    case MsgType::OwnerData: return "OwnerData";
    case MsgType::InvAck: return "InvAck";
    case MsgType::UpdateS: return "UpdateS";
    case MsgType::UpdateX: return "UpdateX";
    case MsgType::Renew: return "Renew";
    case MsgType::FlushReq: return "FlushReq";
    case MsgType::FlushData: return "FlushData";
  }
  return "MsgType(?)";
}

}  // namespace lcdc::proto
