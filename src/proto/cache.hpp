// The cache controller of a processing node (Sections 2.3-2.5).
//
// Responsibilities, straight from the spec:
//   * at most one outstanding request per block (multiple blocks fine);
//   * buffer invalidations and forwarded requests while a transaction for
//     the block is outstanding; apply them right after it completes
//     (Section 2.4);
//   * NACKed requests free their resources; the processor re-issues a
//     fresh request appropriate to the block's *current* state;
//   * value management per Facts 1 and 2: a bound ST updates the local
//     copy; a LD binds to the current copy; whenever the block is sent
//     away (forward, writeback, update) the current copy travels with it;
//   * the Section 2.5 extension: Put-Shared silent eviction, acking stale
//     invalidations, and requester-side deadlock detection (a forwarded
//     request from a node we are owed an invalidation ack by is an
//     implicit ack).
//
// Lamport bookkeeping (Section 3.2): one logical clock per node, bumped by
// 1 at each downgrade and to 1+max(own, carried stamps) at each upgrade.
// Two stamps are assigned *early* by necessity (DESIGN.md):
//   * the writeback downgrade stamp at WB issue (it travels on the WB
//     message so the home — the WB's upgrader — can use it);
//   * the "pre-close" stamp when re-requesting a block after Put-Shared
//     (it travels on the request so that, on the deadlock path, the GetX
//     holder can use it as the implicit ack's stamp).
//
// Like the directory, this is a pure transition system driven through an
// Outbox; the simulator and the model checker share it.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/timestamp.hpp"
#include "common/types.hpp"
#include "proto/directory.hpp"  // Outbox
#include "proto/events.hpp"
#include "proto/messages.hpp"

namespace lcdc::proto {

/// Callbacks into whoever drives the cache (the simulated processor).
/// Called synchronously from CacheController::handle, *before* buffered
/// invalidations/forwards are applied — this is what implements the
/// Section 2.4 rule that an operation whose transaction completes is bound
/// "even if an invalidation arrived in the meantime".
class CacheClient {
 public:
  virtual ~CacheClient() = default;
  /// The outstanding request on `block` completed; permission is in place.
  virtual void onComplete(BlockId block, ReqType req) = 0;
  /// The outstanding request was NACKed; re-issue later (the retried
  /// request must take the block's current state into account).
  virtual void onNacked(BlockId block, ReqType req, NackKind kind) = 0;
  /// A line blocked on a to-be-dropped forward/invalidation became free.
  virtual void onLineUnblocked(BlockId block) = 0;
};

/// Result of binding one LD/ST (Facts 1-2 value semantics).
struct BindResult {
  Word value = 0;  ///< value loaded (LD) or stored (ST)
  TransactionId boundTxn = kNoTransaction;
  SerialIdx boundSerial = 0;
  /// This node's Lamport stamp of the bound transaction (the epoch start).
  GlobalTime txnTs = 0;
};

/// The in-flight request state for one block (one MSHR per block at most).
struct Mshr {
  ReqType req{};
  /// Home reply received (data or upgrade ack)?
  bool replySeen = false;
  /// For GetX/Upgrade: do we know the invalidation-target list yet?
  bool invListKnown = false;
  /// Sharers whose InvAck is still outstanding.
  NodeList acksPending;
  /// InvAcks that arrived before the home's reply told us the target list.
  NodeList earlyAcks;
  /// Payload carried by the reply (GetS/GetX data).
  BlockValue data;
  /// Transaction identity, learned from the reply.
  TransactionId txn = kNoTransaction;
  SerialIdx serial = 0;
  /// Stamps collected for the upgrade computation.
  StampList stamps;
  /// Pre-assigned downgrade stamp: the writeback stamp (for Writeback
  /// MSHRs) or the pre-close stamp (re-request after Put-Shared); 0 if none.
  GlobalTime earlyStamp = 0;
  /// Deadlock resolution: forwarded request to service right after this
  /// request completes, answering with ignoreBufferedInv set.
  std::optional<Message> pendingFwd;
  /// Messages buffered while this request is outstanding (arrival order).
  /// Usually zero or one deep; bursts under heavy contention spill.
  common::SmallVector<Message, 2> buffered;
};

/// One cache line.
struct Line {
  CacheState cstate = CacheState::Invalid;
  AState astate = AState::I;
  BlockValue data;
  std::optional<Mshr> mshr;
  /// Set by a busy writeback ack when the racing forward had not yet
  /// arrived: drop the forwarded request carrying this transaction id; no
  /// new request for the block until it has arrived and been dropped.
  TransactionId ignoreFwdTxn = kNoTransaction;
  /// Set by deadlock-resolution data when the invalidation it supersedes
  /// had not yet arrived: drop (do not acknowledge) the invalidation
  /// carrying this transaction id; no new request until then.
  TransactionId dropInvTxn = kNoTransaction;
  /// Transaction that opened the current epoch at this node.
  TransactionId epochTxn = kNoTransaction;
  SerialIdx epochSerial = 0;
  /// This node's stamp of epochTxn (the epoch's start in Lamport time).
  GlobalTime epochTs = 0;
  /// Value the block had when the current epoch started (used only by the
  /// ForwardStaleValue fault injection).
  BlockValue epochStartData;
};

/// Per-cache statistics.
struct CacheStats {
  std::uint64_t requestsIssued = 0;
  std::uint64_t nacksReceived = 0;
  std::uint64_t retries = 0;
  std::uint64_t putShareds = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidationsApplied = 0;
  std::uint64_t invalidationsBuffered = 0;
  std::uint64_t forwardsBuffered = 0;
  std::uint64_t staleInvAcks = 0;
  std::uint64_t deadlocksResolved = 0;
  std::uint64_t fwdsDropped = 0;
  std::uint64_t invsDropped = 0;
};

class CacheController {
 public:
  using HomeMap = NodeId (*)(BlockId, const void* ctx);

  CacheController(NodeId self, const ProtoConfig& config, EventSink& sink,
                  CacheClient& client);

  // -- processor-facing API -------------------------------------------------

  /// Can `kind` bind right now?  (Permission held, no outstanding request.)
  [[nodiscard]] bool canBind(BlockId block, OpKind kind) const;

  /// Bind one operation (the caller then assigns the op's full Lamport
  /// timestamp from the returned transaction stamp and its program order).
  BindResult bind(BlockId block, OpKind kind, WordIdx word, Word storeValue);

  /// True when no new request may be issued for the block (outstanding
  /// MSHR, or a pending to-be-dropped forward/invalidation).
  [[nodiscard]] bool requestBlocked(BlockId block) const;

  /// Issue a coherence request towards `home`.  GetShared/GetExclusive
  /// require an invalid line, Upgrade a read-only line.
  void issueRequest(BlockId block, ReqType req, NodeId home, Outbox& out);

  /// Evict a read-write line: issue a Writeback (the line stops binding
  /// immediately; the data travels with the request).
  void writeback(BlockId block, NodeId home, Outbox& out);

  /// Section 2.5 Put-Shared: silently drop a read-only line.  A local
  /// action, not a transaction; the A-state intentionally stays A_S.
  void putShared(BlockId block);

  // -- network-facing API ---------------------------------------------------

  /// Process one incoming protocol message addressed to this cache.
  void handle(const Message& m, Outbox& out);

  // -- introspection --------------------------------------------------------

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] GlobalTime clock() const { return clock_; }
  [[nodiscard]] CacheState state(BlockId block) const;
  [[nodiscard]] const Line* findLine(BlockId block) const;
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t linesHeld() const;
  /// True when no request is outstanding anywhere (quiescence check).
  [[nodiscard]] bool quiescent() const;
  /// Blocks currently held with the given state (eviction candidates).
  /// Sorted, so the result is independent of hash-map iteration order.
  [[nodiscard]] common::SmallVector<BlockId, 8> blocksInState(
      CacheState s) const;

  // -- checkpoint access ----------------------------------------------------
  // Raw state for full-fidelity serialization (the model checker stores
  // frontier worlds as byte blobs).  Not for protocol logic: mutating
  // through these bypasses every invariant the transition functions keep.

  [[nodiscard]] GlobalTime& clockRaw() { return clock_; }
  [[nodiscard]] GlobalTime clockRaw() const { return clock_; }
  [[nodiscard]] std::unordered_map<BlockId, Line>& linesRaw() {
    return lines_;
  }
  [[nodiscard]] const std::unordered_map<BlockId, Line>& linesRaw() const {
    return lines_;
  }
  /// Rebuild the held-lines count after restoring lines through linesRaw().
  void recountLinesHeld();

  /// Return to the freshly constructed state, in place: every line reverts
  /// to Invalid/A_I with no MSHR, but map nodes and value-buffer capacity
  /// are kept so a reused controller re-runs without heap traffic.
  void reset();

 private:
  Line& lineMut(BlockId block);

  /// Every cstate write goes through here so linesHeld() and the sorted
  /// per-state block sets (eviction candidates) stay O(1)-ish instead of
  /// rescanning the whole line map.
  void setCState(Line& line, BlockId block, CacheState s) {
    if (line.cstate == s) return;
    if (line.cstate == CacheState::Invalid) {
      held_ += 1;
    } else if (s == CacheState::Invalid) {
      held_ -= 1;
    }
    if (auto* from = stateSet(line.cstate)) setErase(*from, block);
    if (auto* to = stateSet(s)) setInsert(*to, block);
    line.cstate = s;
  }

  common::SmallVector<BlockId, 8>* stateSet(CacheState s) {
    if (s == CacheState::ReadOnly) return &heldRO_;
    if (s == CacheState::ReadWrite) return &heldRW_;
    return nullptr;
  }

  static void setInsert(common::SmallVector<BlockId, 8>& v, BlockId b);
  static void setErase(common::SmallVector<BlockId, 8>& v, BlockId b);

  GlobalTime stampDowngrade(Line& line, BlockId block, TransactionId txn,
                            SerialIdx serial, AState newA);
  GlobalTime stampUpgrade(Line& line, BlockId block, TransactionId txn,
                          SerialIdx serial, const StampList& stamps,
                          AState newA);

  void onDataShared(const Message& m, Line& line, Outbox& out);
  void onDataExclusive(const Message& m, Line& line, Outbox& out);
  void onUpgradeAck(const Message& m, Line& line, Outbox& out);
  void onOwnerData(const Message& m, Line& line, Outbox& out);
  void onInvAck(const Message& m, Line& line, Outbox& out);
  void onInv(const Message& m, BlockId block, Line& line, Outbox& out);
  void onFwd(const Message& m, BlockId block, Line& line, Outbox& out);
  void onWbAck(const Message& m, Line& line, Outbox& out);
  void onWbBusyAck(const Message& m, Line& line, Outbox& out);
  void onNackMsg(const Message& m, Line& line, Outbox& out);

  /// Apply an invalidation to a line with no outstanding request.
  void applyInv(const Message& m, BlockId block, Line& line, Outbox& out);
  /// Answer a forwarded request as the current owner.  When `closesTxn` is
  /// set this is the deadlock-resolution path: the reply carries
  /// ignoreBufferedInv plus the transaction whose invalidation it retires.
  void serviceFwd(const Message& m, BlockId block, Line& line, Outbox& out,
                  TransactionId closesTxn = kNoTransaction,
                  SerialIdx closesSerial = 0);

  /// Complete a GetX/Upgrade once data + all (possibly implicit) acks are
  /// in.
  void tryCompleteExclusive(BlockId block, Line& line, Outbox& out);
  /// Complete a GetS with the given data-bearing reply.
  void completeShared(const Message& m, BlockId block, Line& line, Outbox& out);
  /// Apply messages that were buffered behind a completed transaction.
  void drainBuffered(BlockId block, common::SmallVector<Message, 2> buffered,
                     Outbox& out);
  /// Section 2.5 deadlock detection: treat `fwd` as an implicit ack.
  void resolveDeadlock(const Message& fwd, BlockId block, Line& line);
  /// Handle the ignoreBufferedInv marker on deadlock-resolution data.
  void retireSupersededInv(const Message& m, BlockId block, Line& line);

  NodeId self_;
  ProtoConfig config_;
  EventSink* sink_;
  CacheClient* client_;
  GlobalTime clock_ = 0;
  std::unordered_map<BlockId, Line> lines_;
  std::size_t held_ = 0;  // lines with cstate != Invalid
  common::SmallVector<BlockId, 8> heldRO_;  // sorted blocks in ReadOnly
  common::SmallVector<BlockId, 8> heldRW_;  // sorted blocks in ReadWrite
  CacheStats stats_;
};

}  // namespace lcdc::proto
