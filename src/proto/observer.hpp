// The composable observer pipeline over proto::EventSink.
//
//   sim::System --> TeeSink --> { trace::Trace, verify::StreamCheckerSet,
//                                 verify::StatsObserver, ... }
//
// Observer re-declares every EventSink handler pure virtual: a pipeline
// stage must say explicitly what it does with each event (an empty body is
// a visible decision, a missing override is a compile error) — the
// antidote to EventSink's silent-no-op footgun.  ObserverAdapter restores
// the no-op defaults for observers that genuinely only sample a few
// events, but keeps them one deliberate derivation away.
#pragma once

#include <initializer_list>
#include <vector>

#include "proto/events.hpp"

namespace lcdc::proto {

/// Explicit observer interface: derive from this (not EventSink) for
/// pipeline stages, and the compiler enforces that every event — the
/// lifecycle hooks included — is handled on purpose.
class Observer : public EventSink {
 public:
  void onRunBegin(const SystemConfig& config) override = 0;
  void onRunEnd(const RunResult& result) override = 0;
  void onSerialize(const TxnInfo& txn) override = 0;
  void onTxnConverted(TransactionId id, TxnKind newKind) override = 0;
  void onStamp(NodeId node, TransactionId txn, SerialIdx serial, BlockId block,
               StampRole role, GlobalTime ts, AState oldA,
               AState newA) override = 0;
  void onValueReceived(NodeId node, TransactionId txn, BlockId block,
                       const BlockValue& value) override = 0;
  void onOperation(const OpRecord& op) override = 0;
  void onNack(NodeId requester, BlockId block, NackKind kind) override = 0;
  void onPutShared(NodeId node, BlockId block) override = 0;
  void onDeadlockResolved(NodeId node, BlockId block,
                          NodeId impliedAcker) override = 0;
};

/// Observer with explicit no-op defaults, for stages that only sample a
/// subset of the stream.
class ObserverAdapter : public Observer {
 public:
  void onRunBegin(const SystemConfig&) override {}
  void onRunEnd(const RunResult&) override {}
  void onSerialize(const TxnInfo&) override {}
  void onTxnConverted(TransactionId, TxnKind) override {}
  void onStamp(NodeId, TransactionId, SerialIdx, BlockId, StampRole,
               GlobalTime, AState, AState) override {}
  void onValueReceived(NodeId, TransactionId, BlockId,
                       const BlockValue&) override {}
  void onOperation(const OpRecord&) override {}
  void onNack(NodeId, BlockId, NackKind) override {}
  void onPutShared(NodeId, BlockId) override {}
  void onDeadlockResolved(NodeId, BlockId, NodeId) override {}
};

/// Fan-out sink: forwards every event, in attach order, to each attached
/// sink.  Attached sinks are borrowed, not owned; they must outlive the
/// TeeSink.  Attaching a trace recorder plus streaming checkers gives
/// online verification and a replayable trace from one run.
class TeeSink final : public EventSink {
 public:
  TeeSink() = default;
  TeeSink(std::initializer_list<EventSink*> sinks) : sinks_(sinks) {}

  void attach(EventSink& sink) { sinks_.push_back(&sink); }
  /// Detach everything (persistent tees re-wire their sinks per run).
  void clear() { sinks_.clear(); }
  [[nodiscard]] std::size_t attached() const { return sinks_.size(); }

  void onRunBegin(const SystemConfig& config) override {
    for (EventSink* s : sinks_) s->onRunBegin(config);
  }
  void onRunEnd(const RunResult& result) override {
    for (EventSink* s : sinks_) s->onRunEnd(result);
  }
  void onSerialize(const TxnInfo& txn) override {
    for (EventSink* s : sinks_) s->onSerialize(txn);
  }
  void onTxnConverted(TransactionId id, TxnKind newKind) override {
    for (EventSink* s : sinks_) s->onTxnConverted(id, newKind);
  }
  void onStamp(NodeId node, TransactionId txn, SerialIdx serial, BlockId block,
               StampRole role, GlobalTime ts, AState oldA,
               AState newA) override {
    for (EventSink* s : sinks_) {
      s->onStamp(node, txn, serial, block, role, ts, oldA, newA);
    }
  }
  void onValueReceived(NodeId node, TransactionId txn, BlockId block,
                       const BlockValue& value) override {
    for (EventSink* s : sinks_) s->onValueReceived(node, txn, block, value);
  }
  void onOperation(const OpRecord& op) override {
    for (EventSink* s : sinks_) s->onOperation(op);
  }
  void onNack(NodeId requester, BlockId block, NackKind kind) override {
    for (EventSink* s : sinks_) s->onNack(requester, block, kind);
  }
  void onPutShared(NodeId node, BlockId block) override {
    for (EventSink* s : sinks_) s->onPutShared(node, block);
  }
  void onDeadlockResolved(NodeId node, BlockId block,
                          NodeId impliedAcker) override {
    for (EventSink* s : sinks_) s->onDeadlockResolved(node, block, impliedAcker);
  }

 private:
  std::vector<EventSink*> sinks_;
};

}  // namespace lcdc::proto
