// The message vocabulary of the directory protocol (Section 2.3).
//
// Coherence traffic falls into four groups:
//   * requests      — node -> home          (Get-Shared, Get-Exclusive,
//                                            Upgrade, Writeback)
//   * home replies  — home -> requester     (data/ack/NACK, writeback acks)
//   * home demands  — home -> third parties (invalidations, forwarded
//                                            requests)
//   * peer traffic  — owner/sharer -> requester (data, inv acks) and
//                     owner -> home (update messages)
//
// Messages additionally piggyback the Lamport timestamps that affected
// nodes assign to the transaction (Section 3.2: "We can think of each
// affected node as sending its timestamp of T along with its message to
// N").  The timestamps are a conceptual verification device: the protocol's
// control decisions never read them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/small_vector.hpp"
#include "common/timestamp.hpp"
#include "common/types.hpp"

namespace lcdc::proto {

enum class MsgType : std::uint8_t {
  // Requests (requester -> home).
  GetS,        ///< request a read-only copy
  GetX,        ///< request a read-write copy
  Upgrade,     ///< promote read-only to read-write
  Writeback,   ///< return a read-write block to the home (carries data)

  // Home replies (home -> requester).
  DataShared,     ///< data for a Get-Shared served by the home
  DataExclusive,  ///< data + invalidation list for a Get-Exclusive
  UpgradeAck,     ///< invalidation list (no data) for an Upgrade
  Nack,           ///< negative acknowledgment; retry later
  WbAck,          ///< normal writeback acknowledgment (transaction 12/14b)
  WbBusyAck,      ///< "busy" writeback ack: ignore the forwarded request
                  ///  that is in flight towards you (transactions 13/14a)

  // Home demands (home -> current owner / sharers).
  FwdGetS,  ///< forward a Get-Shared to the exclusive owner
  FwdGetX,  ///< forward a Get-Exclusive to the exclusive owner
  Inv,      ///< invalidate your read-only copy; ack the requester

  // Peer traffic.
  OwnerData,   ///< owner -> requester: data answering a forwarded request
  InvAck,      ///< sharer -> requester: invalidation acknowledged
  UpdateS,     ///< owner -> home: downgrade update carrying data (txn 3)
  UpdateX,     ///< owner -> home: ownership-transfer update (txn 7)

  // Tardis backend (timestamp-lease coherence).  Tardis reuses GetS, GetX,
  // Writeback, DataShared, DataExclusive, Nack and WbAck; only the
  // lease-renewal and home-centric flush traffic needs its own vocabulary.
  // New types append here so the per-type histograms of the directory and
  // bus models keep their historical row indices.
  Renew,      ///< sharer -> home: extend an expired read lease (may skip
              ///  the data payload when the version is unchanged)
  FlushReq,   ///< home -> owner: return the block (a reader or writer is
              ///  waiting at the home; Tardis has no forwarding)
  FlushData,  ///< owner -> home: data + final write timestamp answering a
              ///  FlushReq (the owner's copy of an in-flight Writeback
              ///  when the eviction raced the request)
};

/// Number of MsgType enumerators — sizes the per-type traffic histograms.
inline constexpr std::size_t kNumMsgTypes =
    static_cast<std::size_t>(MsgType::FlushData) + 1;

[[nodiscard]] std::string toString(MsgType t);

/// One Lamport stamp attached by an affected node.  `node` identifies who
/// assigned it so the upgrader can account for every affected node.
struct TsStamp {
  NodeId node = kNoNode;
  GlobalTime ts = 0;
};

/// Node-id lists carried by messages (invalidation targets, CACHED sets,
/// pending-ack sets).  Bounded by the processor count; the inline capacity
/// covers every configuration the campaign derives, so list copies stay off
/// the heap.
using NodeList = common::SmallVector<NodeId, 8>;

/// Lamport stamps relayed towards an upgrader: at most one per affected
/// node, so the same bound applies.
using StampList = common::SmallVector<TsStamp, 8>;

/// A protocol message.  One struct covers the whole vocabulary; unused
/// fields stay empty.  Keeping a single value type makes the network, the
/// trace and the model checker uniform.
struct Message {
  MsgType type{};
  BlockId block = 0;

  /// Sender of this concrete message (filled by the network layer).
  NodeId src = kNoNode;
  /// The *original requester* of the transaction this message belongs to.
  /// For forwarded requests and invalidations this is who the receiver must
  /// answer; for replies it equals the destination.
  NodeId requester = kNoNode;

  /// Transaction identity, assigned at serialization by the home.  NACKs
  /// carry kNoTransaction.
  TransactionId txn = kNoTransaction;
  /// Per-block serialization index of `txn` at the home (1-based).
  SerialIdx serial = 0;

  /// Block payload for data-bearing messages.
  BlockValue data;
  /// For DataExclusive/UpgradeAck: the sharers that were sent invalidations
  /// and whose InvAcks the requester must collect.  (The Origin sends only a
  /// count; we send the list so the requester can implement the Section 2.5
  /// deadlock detection — "a forwarded request from the very node from which
  /// it is to receive an acknowledgment".)
  NodeList invTargets;

  /// For OwnerData produced by the deadlock-detection path: tells the
  /// requester to discard (without acknowledging) the invalidation that is
  /// buffered or still in flight towards it.
  bool ignoreBufferedInv = false;
  /// With ignoreBufferedInv: the transaction whose invalidation must be
  /// discarded (the sender's own Get-Exclusive/Upgrade), so the receiver
  /// can record its A_S -> A_I change and match the right invalidation.
  TransactionId closesTxn = kNoTransaction;
  SerialIdx closesSerial = 0;

  /// For Nack: which NACK case fired (statistics / tests).
  NackKind nackKind{};
  /// For Nack: the request type being bounced.
  ReqType nackedReq{};

  /// Lamport stamps of the transaction assigned by affected nodes, relayed
  /// towards the upgrader.  A forwarded request carries the home's stamp;
  /// the owner's reply then carries both the home's and the owner's.
  StampList stamps;

  // -- Tardis timestamp plumbing --------------------------------------------
  // Unlike the directory protocol's stamps (a pure verification device),
  // Tardis control decisions READ these timestamps: leases are granted
  // above them and loads are validated against them.

  /// Requests/Renew: the requester's current Lamport operation time; the
  /// home grants leases whose frontier clears it so the stalled operation
  /// is always bindable on arrival.
  GlobalTime reqTs = 0;
  /// Replies: the upgrade timestamp of the granted transaction (what the
  /// requester binds its operations to).
  GlobalTime grantTs = 0;
  /// DataShared/Renew replies: the read-lease frontier rts; loads binding
  /// above it must renew.
  GlobalTime leaseEnd = 0;
  /// Writeback/FlushData: the owner's final write frontier (last exclusive
  /// operation time), which the home's next grant must clear.
  GlobalTime flushTs = 0;
};

}  // namespace lcdc::proto
