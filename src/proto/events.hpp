// Observation interface between the protocol core and the verification
// machinery.
//
// The protocol never *reads* anything reported here — Lamport clocks are "a
// conceptual device used to reason about the protocol" (Section 3.1) — but
// it reports every event the proofs of Section 3 quantify over:
//
//   * serialization of a transaction at the block's home directory,
//   * every A-state change with the Lamport stamp the node assigned,
//   * the binding and timestamping of every LD/ST operation,
//   * every NACK, value transfer and local action (Put-Shared).
//
// The trace module records these into an execution trace; the verify module
// then replays the trace against Claims 2-4, Lemmas 1-3 and the Main
// Theorem.  Consumers join cache-side records with the directory's
// onSerialize record via the transaction id.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/run_result.hpp"
#include "common/timestamp.hpp"
#include "common/types.hpp"

namespace lcdc::proto {

/// Identity and classification of one serialized transaction.
struct TxnInfo {
  TransactionId id = kNoTransaction;
  SerialIdx serial = 0;  ///< position in the block's serialization order
  TxnKind kind{};
  BlockId block = 0;
  NodeId requester = kNoNode;
};

/// Whether a node's A-state change for a transaction is the transaction's
/// unique upgrade or one of its downgrades (Section 3.1).
enum class StampRole : std::uint8_t { Downgrade, Upgrade };

/// One bound LD/ST operation with its full Lamport timestamp (Section 3.2).
struct OpRecord {
  NodeId proc = kNoNode;
  std::uint64_t progIdx = 0;  ///< position in the processor's program order
  OpKind kind{};
  BlockId block = 0;
  WordIdx word = 0;
  Word value = 0;  ///< value loaded / value stored
  TransactionId boundTxn = kNoTransaction;
  SerialIdx boundSerial = 0;
  Timestamp ts;
  /// TSO extension: the load was served from the processor's own store
  /// buffer (boundTxn is kNoTransaction; the value must equal the latest
  /// same-processor program-order-earlier store to the word).
  bool forwarded = false;
  /// Real-time observation order; 0 when emitted, filled by the recorder.
  std::uint64_t order = 0;
};

/// Compatibility shim: every handler defaults to a no-op so ad-hoc sinks
/// can override only what they care about.  That default is also a
/// footgun — a typo'd override silently observes nothing — so pipeline
/// observers should derive from proto::Observer (observer.hpp), which
/// re-declares every handler pure virtual.
class EventSink {
 public:
  virtual ~EventSink() = default;

  // -- lifecycle --------------------------------------------------------------

  /// The simulator is about to start delivering events.  Hands observers
  /// the run's shape (processor count, store-buffer depth, mutant, ...)
  /// so they need no out-of-band config plumbing.
  virtual void onRunBegin(const SystemConfig& config) {}
  /// The run ended; always the last callback of a sim::System::run().
  virtual void onRunEnd(const RunResult& result) {}

  // -- protocol events --------------------------------------------------------

  /// The home directory serialized (accepted) a transaction.
  virtual void onSerialize(const TxnInfo& txn) {}

  /// A writeback racing an in-progress forwarded transaction merged into it
  /// (transactions 13 / 14a): the in-progress transaction `id` changes kind.
  virtual void onTxnConverted(TransactionId id, TxnKind newKind) {}

  /// Node `node` assigned Lamport stamp `ts` to transaction `txn` and its
  /// A-state for the block changed `oldA -> newA` (possibly oldA == newA
  /// for the home's by-definition Get-Shared downgrades, Section 3.1).
  virtual void onStamp(NodeId node, TransactionId txn, SerialIdx serial,
                       BlockId block, StampRole role, GlobalTime ts,
                       AState oldA, AState newA) {}

  /// Node `node` received the block's value when transaction `txn`
  /// completed there (for Upgrade transactions this is the value the node
  /// "receives from itself"; the home receives values via writebacks and
  /// updates).
  virtual void onValueReceived(NodeId node, TransactionId txn, BlockId block,
                               const BlockValue& value) {}

  /// A LD/ST operation was bound and timestamped.
  virtual void onOperation(const OpRecord& op) {}

  /// The home NACKed a request (cases 4, 8, 10, 11).
  virtual void onNack(NodeId requester, BlockId block, NackKind kind) {}

  /// A node silently evicted a read-only block (Section 2.5 Put-Shared
  /// action; not a transaction, never timestamped).
  virtual void onPutShared(NodeId node, BlockId block) {}

  /// A requester waiting for invalidation acks received a forwarded request
  /// from the very node it is waiting on, and applied the Section 2.5
  /// deadlock resolution (implicit acknowledgment).
  virtual void onDeadlockResolved(NodeId node, BlockId block,
                                  NodeId impliedAcker) {}
};

/// Shared no-op sink (model checker, micro-benchmarks).
EventSink& nullSink();

}  // namespace lcdc::proto
