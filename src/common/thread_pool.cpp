#include "common/thread_pool.hpp"

namespace lcdc {

namespace {

// Identifies the current thread's worker slot so submit() from inside a
// task lands on the submitting worker's own deque.
thread_local const ThreadPool* tlsPool = nullptr;
thread_local unsigned tlsIndex = 0;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  deques_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const unsigned target =
      tlsPool == this
          ? tlsIndex
          : static_cast<unsigned>(nextDeque_.fetch_add(1) % deques_.size());
  // pending_ rises before the task becomes stealable, so a worker that
  // finishes it instantly can never drive the counter below zero.
  pending_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lk(deques_[target]->mu);
    deques_[target]->tasks.push_back(std::move(task));
  }
  {
    // queued_ changes under mu_ so a worker that just evaluated the sleep
    // predicate cannot miss the wakeup.
    std::lock_guard<std::mutex> lk(mu_);
    queued_.fetch_add(1);
  }
  cv_.notify_one();
}

bool ThreadPool::tryPop(unsigned self, std::function<void()>& task,
                        bool& stolen) {
  {
    Deque& own = *deques_[self];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1);
      stolen = false;
      return true;
    }
  }
  for (std::size_t off = 1; off < deques_.size(); ++off) {
    Deque& victim = *deques_[(self + off) % deques_.size()];
    std::lock_guard<std::mutex> lk(victim.mu);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      queued_.fetch_sub(1);
      stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned self) {
  tlsPool = this;
  tlsIndex = self;
  std::function<void()> task;
  bool stolen = false;
  for (;;) {
    if (tryPop(self, task, stolen)) {
      task();
      task = nullptr;
      executed_.fetch_add(1);
      if (stolen) stolen_.fetch_add(1);
      if (pending_.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lk(mu_);
        doneCv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return stop_ || queued_.load() > 0; });
    if (stop_ && queued_.load() == 0) return;
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  doneCv_.wait(lk, [this] { return pending_.load() == 0; });
}

PoolStats ThreadPool::stats() const {
  return PoolStats{executed_.load(), stolen_.load()};
}

}  // namespace lcdc
