// A recycling node pool for the simulate-and-verify hot path.
//
// The streaming checkers keep their per-transaction state in node-based
// containers (std::map of pending transactions, hash maps of live ones,
// deques of merge-window operations).  Transactions are born and retired
// millions of times per run, so the node insert/erase cycle is the last
// heap churn left once messages and envelopes are pooled.  PoolResource
// gives those containers malloc-free steady state without changing their
// semantics at all: nodes are carved from Arena slabs on first use and
// recycled through per-size free lists forever after.
//
// Design:
//   * A handful of size classes, created lazily by the first allocation of
//     each (rounded) size.  A container family only ever allocates a few
//     distinct node sizes, so a small fixed table suffices.
//   * Requests that are too large (hash-bucket arrays) or that arrive when
//     the table is full fall through to operator new.  Provenance cannot
//     mix: deallocate() only consults existing classes, and a class for
//     size S exists exactly when some allocation of size S was pooled —
//     in which case every allocation of size S was pooled.
//   * Single-threaded by design, like the checkers that own it: one
//     resource per checker (or per worker), never shared across threads.
//
// PoolAllocator<T> adapts a PoolResource to the standard allocator
// interface; containers constructed with allocators sharing one resource
// recycle each other's nodes.  clear()-ing a pooled container returns its
// nodes to the resource, so a reused checker re-runs with zero heap
// traffic once its high-water footprint is reached.
#pragma once

#include <cstddef>
#include <new>

#include "common/arena.hpp"
#include "common/expect.hpp"

namespace lcdc::common {

class PoolResource {
 public:
  /// Slabs default to 64 KiB: big enough to amortize the Arena mutex,
  /// small enough that per-checker pools stay cheap.
  explicit PoolResource(std::size_t slabBytes = std::size_t{1} << 16)
      : arena_(slabBytes), cursor_(arena_) {}

  PoolResource(const PoolResource&) = delete;
  PoolResource& operator=(const PoolResource&) = delete;

  void* allocate(std::size_t bytes) {
    bytes = roundUp(bytes);
    if (bytes > kMaxPooledBytes) return ::operator new(bytes);
    SizeClass* c = findOrCreate(bytes);
    if (c == nullptr) return ::operator new(bytes);
    if (c->free != nullptr) {
      FreeNode* n = c->free;
      c->free = n->next;
      return n;
    }
    carved_ += bytes;
    return cursor_.alloc(bytes);
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    bytes = roundUp(bytes);
    if (bytes <= kMaxPooledBytes) {
      // Lookup only — a class for this size exists iff the matching
      // allocate() was served from the pool (see header comment).
      for (std::size_t i = 0; i < classCount_; ++i) {
        if (classes_[i].bytes == bytes) {
          auto* n = static_cast<FreeNode*>(p);
          n->next = classes_[i].free;
          classes_[i].free = n;
          return;
        }
      }
    }
    ::operator delete(p);
  }

  /// Bytes ever carved from slabs (the pool's high-water footprint).
  [[nodiscard]] std::size_t bytesCarved() const { return carved_; }
  [[nodiscard]] std::size_t bytesReserved() const {
    return arena_.bytesReserved();
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct SizeClass {
    std::size_t bytes = 0;
    FreeNode* free = nullptr;
  };

  static constexpr std::size_t kAlign = 16;  // >= any node type here
  static constexpr std::size_t kMaxPooledBytes = 1024;
  static constexpr std::size_t kClasses = 16;

  static std::size_t roundUp(std::size_t bytes) {
    return (bytes + (kAlign - 1)) & ~(kAlign - 1);
  }

  SizeClass* findOrCreate(std::size_t bytes) {
    for (std::size_t i = 0; i < classCount_; ++i) {
      if (classes_[i].bytes == bytes) return &classes_[i];
    }
    if (classCount_ == kClasses) return nullptr;
    classes_[classCount_].bytes = bytes;
    return &classes_[classCount_++];
  }

  Arena arena_;
  ArenaRef cursor_;
  SizeClass classes_[kClasses];
  std::size_t classCount_ = 0;
  std::size_t carved_ = 0;
};

template <class T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(PoolResource* pool) noexcept : pool_(pool) {}
  template <class U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept
      : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(pool_->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_->deallocate(p, n * sizeof(T));
  }

  [[nodiscard]] PoolResource* pool() const noexcept { return pool_; }

  template <class U>
  friend bool operator==(const PoolAllocator& a, const PoolAllocator<U>& b) {
    return a.pool_ == b.pool();
  }
  template <class U>
  friend bool operator!=(const PoolAllocator& a, const PoolAllocator<U>& b) {
    return !(a == b);
  }

 private:
  PoolResource* pool_;
};

}  // namespace lcdc::common
