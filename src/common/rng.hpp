// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic choice in the simulator (message latencies, workload op
// streams, eviction decisions) flows from one of these generators so that a
// run is exactly reproducible from its seed — a hard requirement for
// debugging protocol races and for the property-test sweeps.
//
// xoshiro256** (Blackman & Vigna) seeded via splitmix64: small, fast, and
// high quality; we avoid std::mt19937 whose state is bulky to fork per
// component.
#pragma once

#include <array>
#include <cstdint>

namespace lcdc {

/// splitmix64 step; used for seeding and for cheap hash mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x1905'0628'1998'0702ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive).  Debiased by rejection.
  constexpr std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full 64-bit range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + draw % span;
  }

  /// Bernoulli draw with probability numer/denom.
  constexpr bool chance(std::uint64_t numer, std::uint64_t denom) {
    return uniform(0, denom - 1) < numer;
  }

  /// Uniform double in [0, 1).
  constexpr double uniformReal() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent child generator (for per-component streams).
  [[nodiscard]] constexpr Rng fork() {
    std::uint64_t seed = (*this)();
    return Rng(seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lcdc
