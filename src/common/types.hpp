// Core vocabulary types shared by every module of the reproduction.
//
// The paper's system (Figure 1) is a set of processing nodes and directory
// nodes exchanging messages over an unordered interconnect.  We give every
// participant a NodeId; blocks of memory are BlockId; the coherence
// transactions serialized at a block's directory get a TransactionId plus a
// per-block serialization index (the order "seen at the Home", Section 3.1).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/small_vector.hpp"

namespace lcdc {

/// Identity of a node (processing node or directory node).  Directory
/// entries live at a block's *home* node; in the default configuration each
/// processing node is co-located with a directory slice (the paper notes the
/// system "subsumes the case where each directory node is co-located with a
/// processing node").
using NodeId = std::uint32_t;

/// Identity of a memory block (cache-line granularity).
using BlockId = std::uint32_t;

/// Word index within a block.
using WordIdx = std::uint32_t;

/// Value stored in one word of a block.
using Word = std::uint64_t;

/// Globally unique id of a (non-NACKed) coherence transaction, assigned at
/// the moment the home serializes the request.  NACKed requests are *not*
/// transactions: a retry "is equivalent to a new network transaction"
/// (Section 2.4).
using TransactionId = std::uint64_t;

/// Position of a transaction in its block's serialization order at the home
/// directory (Section 3.1: "Transactions on a given block are serialized by
/// the block's directory").  1-based; 0 means "no transaction yet".
using SerialIdx = std::uint64_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr TransactionId kNoTransaction =
    std::numeric_limits<TransactionId>::max();

/// The four coherence requests of Table 1.
enum class ReqType : std::uint8_t {
  GetShared,     ///< invalid -> read-only
  GetExclusive,  ///< invalid -> read-write
  Upgrade,       ///< read-only -> read-write
  Writeback,     ///< read-write -> invalid
};

/// Cache permission for a block at a processing node (Section 2.1: "Blocks
/// may be present in a processor's cache in one of three states").
enum class CacheState : std::uint8_t { Invalid, ReadOnly, ReadWrite };

/// The conceptual Address-state of Section 3.1.  It tracks the *home's view*
/// of a node's permission and, unlike the cache state, is not changed by
/// local actions such as Put-Shared.
enum class AState : std::uint8_t { I, S, X };

/// Directory entry states (Section 2.2).
enum class DirState : std::uint8_t {
  Idle,
  Shared,
  Exclusive,
  BusyShared,
  BusyExclusive,
  BusyIdle,
};

/// The 14 distinct transactions of Section 2.3, numbered as in the paper.
/// NACKed requests are tracked separately (they are not transactions).
enum class TxnKind : std::uint8_t {
  GetS_Idle = 1,         ///< 1.  Get-Shared, directory Idle
  GetS_Shared = 2,       ///< 2.  Get-Shared, directory Shared
  GetS_Exclusive = 3,    ///< 3.  Get-Shared, directory Exclusive (forward)
  GetX_Idle = 5,         ///< 5.  Get-Exclusive, directory Idle
  GetX_Shared = 6,       ///< 6.  Get-Exclusive, directory Shared (invals)
  GetX_Exclusive = 7,    ///< 7.  Get-Exclusive, directory Exclusive (fwd)
  Upg_Shared = 9,        ///< 9.  Upgrade, directory Shared
  Wb_Exclusive = 12,     ///< 12. Writeback, directory Exclusive
  Wb_BusyShared = 13,    ///< 13. Writeback racing a forwarded Get-Shared
  Wb_BusyExclusive = 14, ///< 14a. Writeback racing a forwarded Get-Exclusive
  Wb_BusyExclusiveSelf = 15, ///< 14b. Writeback beating the owner's update
};

/// NACK cases (transactions 4, 8, 10, 11 in the paper's numbering).
enum class NackKind : std::uint8_t {
  GetS_Busy = 4,   ///< 4.  Get-Shared while directory Busy-Any
  GetX_Busy = 8,   ///< 8.  Get-Exclusive while directory Busy-Any
  Upg_Exclusive = 10, ///< 10. Upgrade lost the race to another writer
  Upg_Busy = 11,   ///< 11. Upgrade while directory Busy-Any
};

/// Memory operations (Section 1: "memory operations (loads (LDs) and stores
/// (STs))").
enum class OpKind : std::uint8_t { Load, Store };

/// A block's data payload: a fixed number of words chosen by the system
/// configuration.  Value semantics; the inline capacity covers the default
/// wordsPerBlock so copying a payload costs no heap traffic on the
/// simulator's hot path (larger configurations spill transparently).
using BlockValue = common::SmallVector<Word, 4>;

[[nodiscard]] std::string toString(ReqType t);
[[nodiscard]] std::string toString(CacheState s);
[[nodiscard]] std::string toString(AState s);
[[nodiscard]] std::string toString(DirState s);
[[nodiscard]] std::string toString(TxnKind k);
[[nodiscard]] std::string toString(NackKind k);
[[nodiscard]] std::string toString(OpKind k);

/// True if the A-state change oldS -> newS is an upgrade in the paper's
/// sense (I->S, I->X, or S->X).  Section 3.1: "Each transaction implies an
/// upgrade of A-state at exactly one node."
[[nodiscard]] constexpr bool isAStateUpgrade(AState oldS, AState newS) {
  return static_cast<int>(newS) > static_cast<int>(oldS);
}

/// True if the change is a downgrade (X->S, X->I, or S->I).
[[nodiscard]] constexpr bool isAStateDowngrade(AState oldS, AState newS) {
  return static_cast<int>(newS) < static_cast<int>(oldS);
}

}  // namespace lcdc
