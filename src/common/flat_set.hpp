// Open-addressing concurrent visited set for the model checker.
//
// Stores 64-bit fingerprints plus a 32-bit payload (state id) in two
// parallel flat slabs with linear probing.  Insertion claims a slot by
// CAS on the fingerprint word, then publishes the payload with a release
// store; racing inserters of the same fingerprint spin briefly on the
// payload and then run the caller-supplied byte-equality check, so a
// fingerprint collision degrades to an extra probe instead of a lost
// state (full encodings are compared, never trusted to the hash alone).
//
// Concurrency contract:
//   * `insert`/`find` may run from any number of threads concurrently.
//   * `reserveFor` (growth/rehash) is single-threaded and must be called
//     only while no insert/find is in flight — the explorer calls it at
//     wave boundaries, sized by the wave's successor upper bound, so the
//     table NEVER grows mid-wave.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>

#include "common/expect.hpp"

namespace lcdc {

/// 64-bit hash over a byte span (xxhash-style multiply/rotate lanes).
/// Quality matters: the flat set's probe lengths and the correctness
/// fallback rate are both functions of fingerprint avalanche.
inline std::uint64_t fingerprintHash(const std::byte* data, std::size_t len) {
  constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ULL;
  constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
  constexpr std::uint64_t kP3 = 0x165667B19E3779F9ULL;
  auto rotl = [](std::uint64_t v, int r) {
    return (v << r) | (v >> (64 - r));
  };
  auto read64 = [](const std::byte* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
           << (8 * i);
    }
    return v;
  };
  std::uint64_t h = kP3 ^ (static_cast<std::uint64_t>(len) * kP1);
  const std::byte* p = data;
  std::size_t n = len;
  while (n >= 8) {
    h ^= rotl(read64(p) * kP2, 31) * kP1;
    h = rotl(h, 27) * kP1 + kP2;
    p += 8;
    n -= 8;
  }
  std::uint64_t tail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tail |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
            << (8 * i);
  }
  if (n != 0) {
    h ^= rotl(tail * kP2, 31) * kP1;
    h = rotl(h, 27) * kP1 + kP2;
  }
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

class FlatFingerprintSet {
 public:
  static constexpr std::uint32_t kPendingPayload = 0xFFFFFFFFu;

  struct InsertResult {
    std::uint32_t payload = 0;
    bool inserted = false;
    std::uint32_t probes = 0;  ///< extra slots visited past the home slot
  };

  explicit FlatFingerprintSet(std::size_t initialCapacity = 1u << 16) {
    std::size_t cap = 64;
    while (cap < initialCapacity) cap <<= 1;
    rebuild(cap);
  }

  FlatFingerprintSet(const FlatFingerprintSet&) = delete;
  FlatFingerprintSet& operator=(const FlatFingerprintSet&) = delete;

  /// Insert fingerprint `fp`.  On winning an empty slot, calls
  /// `assign()` exactly once to produce the payload (the caller stores
  /// the full encoding there) and publishes it.  On finding an occupied
  /// slot with the same fingerprint, waits for that slot's payload and
  /// calls `equals(payload)`; a `false` answer (true 64-bit collision)
  /// continues the probe instead of deduplicating.
  template <typename EqualsFn, typename AssignFn>
  InsertResult insert(std::uint64_t fp, EqualsFn&& equals, AssignFn&& assign) {
    fp = normalize(fp);
    std::size_t idx = fp & mask_;
    std::uint32_t probes = 0;
    for (;;) {
      std::uint64_t cur = fps_[idx].load(std::memory_order_acquire);
      if (cur == kEmpty) {
        if (fps_[idx].compare_exchange_strong(cur, fp,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
          const std::uint32_t payload = assign();
          LCDC_EXPECT(payload != kPendingPayload,
                      "flat set payload collides with pending sentinel");
          payloads_[idx].store(payload, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_relaxed);
          return {payload, true, probes};
        }
        // Lost the race; `cur` now holds the winner's fingerprint.
      }
      if (cur == fp) {
        const std::uint32_t payload = waitPayload(idx);
        if (equals(payload)) return {payload, false, probes};
        // Same fingerprint, different state bytes: keep probing.
      }
      idx = (idx + 1) & mask_;
      ++probes;
      LCDC_EXPECT(probes <= capacity_, "flat set full (reserveFor missing)");
    }
  }

  /// Lookup without inserting (used by the POR visited-before-wave
  /// proviso).  Returns the payload if a byte-equal entry is present.
  template <typename EqualsFn>
  std::optional<std::uint32_t> find(std::uint64_t fp, EqualsFn&& equals) const {
    fp = normalize(fp);
    std::size_t idx = fp & mask_;
    std::uint32_t probes = 0;
    for (;;) {
      const std::uint64_t cur = fps_[idx].load(std::memory_order_acquire);
      if (cur == kEmpty) return std::nullopt;
      if (cur == fp) {
        const std::uint32_t payload = waitPayload(idx);
        if (equals(payload)) return payload;
      }
      idx = (idx + 1) & mask_;
      ++probes;
      if (probes > capacity_) return std::nullopt;
    }
  }

  /// Single-threaded: guarantee room for `extra` further insertions at
  /// <= 50% load, rehashing into a larger slab if needed.  Must not run
  /// concurrently with insert/find.
  void reserveFor(std::size_t extra) {
    const std::size_t need = size_.load(std::memory_order_relaxed) + extra;
    if (need * 2 <= capacity_) return;
    std::size_t cap = capacity_;
    while (need * 2 > cap) cap <<= 1;
    auto oldFps = std::move(fps_);
    auto oldPayloads = std::move(payloads_);
    const std::size_t oldCap = capacity_;
    rebuild(cap);
    for (std::size_t i = 0; i < oldCap; ++i) {
      const std::uint64_t fp = oldFps[i].load(std::memory_order_relaxed);
      if (fp == kEmpty) continue;
      std::size_t idx = fp & mask_;
      while (fps_[idx].load(std::memory_order_relaxed) != kEmpty) {
        idx = (idx + 1) & mask_;
      }
      fps_[idx].store(fp, std::memory_order_relaxed);
      payloads_[idx].store(oldPayloads[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t bytes() const {
    return capacity_ * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  }

 private:
  static constexpr std::uint64_t kEmpty = 0;

  /// Fingerprint 0 is the empty-slot marker; remap a real hash of 0 to an
  /// arbitrary fixed odd constant (still compared against full bytes, so
  /// this costs at most a fallback comparison).
  static std::uint64_t normalize(std::uint64_t fp) {
    return fp != kEmpty ? fp : 0x9E3779B97F4A7C15ULL;
  }

  std::uint32_t waitPayload(std::size_t idx) const {
    std::uint32_t p = payloads_[idx].load(std::memory_order_acquire);
    while (p == kPendingPayload) {
      p = payloads_[idx].load(std::memory_order_acquire);
    }
    return p;
  }

  void rebuild(std::size_t cap) {
    fps_ = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
    payloads_ = std::make_unique<std::atomic<std::uint32_t>[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      fps_[i].store(kEmpty, std::memory_order_relaxed);
      payloads_[i].store(kPendingPayload, std::memory_order_relaxed);
    }
    capacity_ = cap;
    mask_ = cap - 1;
  }

  std::unique_ptr<std::atomic<std::uint64_t>[]> fps_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> payloads_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> size_{0};
};

}  // namespace lcdc
