// Open-addressing concurrent visited set for the model checker, plus the
// Holzmann-style bitstate filter backing `lcdc mc --visited bitstate`.
//
// Stores 64-bit fingerprints plus a 32-bit payload (state id) in two
// parallel flat slabs with linear probing.  Insertion claims a slot by
// CAS on the fingerprint word, then publishes the payload with a release
// store; racing inserters of the same fingerprint spin briefly on the
// payload and then run the caller-supplied byte-equality check, so a
// fingerprint collision degrades to an extra probe instead of a lost
// state (full encodings are compared, never trusted to the hash alone).
//
// Visited modes (DESIGN.md §14):
//   * `Mode::Exact` — the behaviour above: fingerprint hit falls back to
//     a caller byte-equality check, so the set is lossless.
//   * `Mode::Compact` — hash compaction: a fingerprint hit IS a
//     duplicate; the equality callback is never invoked and no encoding
//     needs to be retained.  Two distinct states sharing a 64-bit
//     fingerprint silently merge — the expected number of such merges is
//     bounded by n(n-1)/2 / 2^64 and reported as the omission bound.
//
// Concurrency contract:
//   * `insert`/`find` may run from any number of threads concurrently.
//   * `reserveFor` (growth/rehash) and `clear` are single-threaded and
//     must be called only while no insert/find is in flight — the
//     explorer calls them at wave boundaries, sized by the wave's
//     successor upper bound, so the table NEVER grows mid-wave.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/expect.hpp"

namespace lcdc {

/// 64-bit hash over a byte span (xxhash-style multiply/rotate lanes).
/// Quality matters: the flat set's probe lengths and the correctness
/// fallback rate are both functions of fingerprint avalanche.
inline std::uint64_t fingerprintHash(const std::byte* data, std::size_t len) {
  constexpr std::uint64_t kP1 = 0x9E3779B185EBCA87ULL;
  constexpr std::uint64_t kP2 = 0xC2B2AE3D27D4EB4FULL;
  constexpr std::uint64_t kP3 = 0x165667B19E3779F9ULL;
  auto rotl = [](std::uint64_t v, int r) {
    return (v << r) | (v >> (64 - r));
  };
  auto read64 = [](const std::byte* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
           << (8 * i);
    }
    return v;
  };
  std::uint64_t h = kP3 ^ (static_cast<std::uint64_t>(len) * kP1);
  const std::byte* p = data;
  std::size_t n = len;
  while (n >= 8) {
    h ^= rotl(read64(p) * kP2, 31) * kP1;
    h = rotl(h, 27) * kP1 + kP2;
    p += 8;
    n -= 8;
  }
  std::uint64_t tail = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tail |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
            << (8 * i);
  }
  if (n != 0) {
    h ^= rotl(tail * kP2, 31) * kP1;
    h = rotl(h, 27) * kP1 + kP2;
  }
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

class FlatFingerprintSet {
 public:
  static constexpr std::uint32_t kPendingPayload = 0xFFFFFFFFu;
  /// Largest payload a caller may store.  0xFFFFFFFF is the pending
  /// sentinel and 0xFFFFFFFE the explorer's "no parent" marker, so the
  /// usable id space ends here; `insert` throws SimError past it (the
  /// 2^32-state guard — beyond this the payload slab cannot name states
  /// and the run must switch to `--visited bitstate`).
  static constexpr std::uint32_t kMaxPayload = 0xFFFFFFFDu;

  enum class Mode : std::uint8_t { Exact, Compact };

  struct InsertResult {
    std::uint32_t payload = 0;
    bool inserted = false;
    std::uint32_t probes = 0;  ///< extra slots visited past the home slot
  };

  explicit FlatFingerprintSet(std::size_t initialCapacity = 1u << 16,
                              Mode mode = Mode::Exact)
      : mode_(mode) {
    std::size_t cap = 64;
    while (cap < initialCapacity) cap <<= 1;
    rebuild(cap);
  }

  FlatFingerprintSet(const FlatFingerprintSet&) = delete;
  FlatFingerprintSet& operator=(const FlatFingerprintSet&) = delete;

  /// Insert fingerprint `fp`.  On winning an empty slot, calls
  /// `assign()` exactly once to produce the payload (the caller stores
  /// the full encoding there) and publishes it.  On finding an occupied
  /// slot with the same fingerprint: in Exact mode, waits for that slot's
  /// payload and calls `equals(payload)` — a `false` answer (true 64-bit
  /// collision) continues the probe instead of deduplicating; in Compact
  /// mode the fingerprint match alone deduplicates and `equals` is never
  /// invoked.
  template <typename EqualsFn, typename AssignFn>
  InsertResult insert(std::uint64_t fp, EqualsFn&& equals, AssignFn&& assign) {
    fp = normalize(fp);
    std::size_t idx = fp & mask_;
    std::uint32_t probes = 0;
    for (;;) {
      std::uint64_t cur = fps_[idx].load(std::memory_order_acquire);
      if (cur == kEmpty) {
        if (fps_[idx].compare_exchange_strong(cur, fp,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
          const std::uint32_t payload = assign();
          if (payload > kMaxPayload) {
            // Publish something valid before throwing so concurrent
            // probers of this slot never spin forever on the sentinel.
            payloads_[idx].store(kMaxPayload, std::memory_order_release);
            throw SimError(
                "flat set payload exceeds the 32-bit state-id space "
                "(2^32-2 states); rerun with --visited bitstate");
          }
          payloads_[idx].store(payload, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_relaxed);
          return {payload, true, probes};
        }
        // Lost the race; `cur` now holds the winner's fingerprint.
      }
      if (cur == fp) {
        const std::uint32_t payload = waitPayload(idx);
        if (mode_ == Mode::Compact || equals(payload)) {
          return {payload, false, probes};
        }
        // Same fingerprint, different state bytes: keep probing.
      }
      idx = (idx + 1) & mask_;
      ++probes;
      LCDC_EXPECT(probes <= capacity_, "flat set full (reserveFor missing)");
    }
  }

  /// Lookup without inserting (used by the POR visited-before-wave
  /// proviso).  Returns the payload if a byte-equal entry is present
  /// (Compact mode: if the fingerprint is present).
  template <typename EqualsFn>
  std::optional<std::uint32_t> find(std::uint64_t fp, EqualsFn&& equals) const {
    fp = normalize(fp);
    std::size_t idx = fp & mask_;
    std::uint32_t probes = 0;
    for (;;) {
      const std::uint64_t cur = fps_[idx].load(std::memory_order_acquire);
      if (cur == kEmpty) return std::nullopt;
      if (cur == fp) {
        const std::uint32_t payload = waitPayload(idx);
        if (mode_ == Mode::Compact || equals(payload)) return payload;
      }
      idx = (idx + 1) & mask_;
      ++probes;
      if (probes > capacity_) return std::nullopt;
    }
  }

  /// Single-threaded: guarantee room for `extra` further insertions at
  /// <= 50% load, rehashing into a larger slab if needed.  Must not run
  /// concurrently with insert/find.
  void reserveFor(std::size_t extra) {
    const std::size_t need = size_.load(std::memory_order_relaxed) + extra;
    if (need * 2 <= capacity_) return;
    std::size_t cap = capacity_;
    while (need * 2 > cap) cap <<= 1;
    auto oldFps = std::move(fps_);
    auto oldPayloads = std::move(payloads_);
    const std::size_t oldCap = capacity_;
    rebuild(cap);
    for (std::size_t i = 0; i < oldCap; ++i) {
      const std::uint64_t fp = oldFps[i].load(std::memory_order_relaxed);
      if (fp == kEmpty) continue;
      std::size_t idx = fp & mask_;
      while (fps_[idx].load(std::memory_order_relaxed) != kEmpty) {
        idx = (idx + 1) & mask_;
      }
      fps_[idx].store(fp, std::memory_order_relaxed);
      payloads_[idx].store(oldPayloads[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
  }

  /// Single-threaded: drop every entry but keep the slabs at their
  /// current capacity.  The out-of-core explorer reuses one set as the
  /// per-wave bitstate claim table, clearing it at each wave boundary.
  void clear() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      fps_[i].store(kEmpty, std::memory_order_relaxed);
      payloads_[i].store(kPendingPayload, std::memory_order_relaxed);
    }
    size_.store(0, std::memory_order_relaxed);
  }

  /// Single-threaded iteration over every occupied slot (slab order —
  /// callers must not depend on it; the bitstate barrier publication
  /// only ORs bits, which commutes).
  template <typename Fn>
  void forEachFingerprint(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity_; ++i) {
      const std::uint64_t fp = fps_[i].load(std::memory_order_relaxed);
      if (fp != kEmpty) fn(fp);
    }
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t bytes() const {
    return capacity_ * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  }
  /// Slab bytes after a hypothetical `reserveFor(extra)` — what the
  /// memory-limit check charges for the coming wave, so the rehash
  /// transient (old + new slab live at once) never silently overshoots
  /// `--mem-limit-mb`.
  [[nodiscard]] std::size_t bytesAfterReserve(std::size_t extra) const {
    const std::size_t need = size_.load(std::memory_order_relaxed) + extra;
    if (need * 2 <= capacity_) return bytes();
    std::size_t cap = capacity_;
    while (need * 2 > cap) cap <<= 1;
    // During the rehash both slabs are live: charge the sum.
    return (cap + capacity_) * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  }
  [[nodiscard]] Mode mode() const { return mode_; }

 private:
  static constexpr std::uint64_t kEmpty = 0;

  /// Fingerprint 0 is the empty-slot marker; remap a real hash of 0 to an
  /// arbitrary fixed odd constant (still compared against full bytes, so
  /// this costs at most a fallback comparison).
  static std::uint64_t normalize(std::uint64_t fp) {
    return fp != kEmpty ? fp : 0x9E3779B97F4A7C15ULL;
  }

  std::uint32_t waitPayload(std::size_t idx) const {
    std::uint32_t p = payloads_[idx].load(std::memory_order_acquire);
    while (p == kPendingPayload) {
      p = payloads_[idx].load(std::memory_order_acquire);
    }
    return p;
  }

  void rebuild(std::size_t cap) {
    fps_ = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
    payloads_ = std::make_unique<std::atomic<std::uint32_t>[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      fps_[i].store(kEmpty, std::memory_order_relaxed);
      payloads_[i].store(kPendingPayload, std::memory_order_relaxed);
    }
    capacity_ = cap;
    mask_ = cap - 1;
  }

  std::unique_ptr<std::atomic<std::uint64_t>[]> fps_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> payloads_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> size_{0};
  Mode mode_ = Mode::Exact;
};

/// Holzmann-style bitstate (supertrace) filter: a power-of-two Bloom
/// array with k derived bit positions per fingerprint.  Backing store
/// for `lcdc mc --visited bitstate`.
///
/// Concurrency contract (narrower than FlatFingerprintSet, by design):
/// `testAll` may run from any number of threads, but `setAll` is
/// single-threaded and must never overlap a `testAll` — the explorer
/// queries a frozen wave-start snapshot during expansion and publishes
/// the wave's new fingerprints at the barrier.  That discipline is what
/// makes bitstate counts independent of `--jobs`: membership answers
/// never depend on in-wave thread interleaving.  Words are plain
/// uint64s (no atomics) for exactly this reason.
class BitstateFilter {
 public:
  static constexpr std::uint32_t kDefaultHashes = 3;

  /// Size the array to `megabytes` MiB rounded down to a power of two of
  /// bits (at least 2^20 bits = 128 KiB).
  explicit BitstateFilter(std::size_t megabytes,
                          std::uint32_t hashes = kDefaultHashes)
      : hashes_(hashes == 0 ? 1 : hashes) {
    std::uint64_t bits = 1ULL << 20;
    const std::uint64_t budget = static_cast<std::uint64_t>(megabytes) << 23;
    while (bits * 2 <= budget) bits <<= 1;
    bits_ = bits;
    words_.assign(static_cast<std::size_t>(bits_ >> 6), 0);
  }

  BitstateFilter(const BitstateFilter&) = delete;
  BitstateFilter& operator=(const BitstateFilter&) = delete;

  /// True iff every derived bit is set (i.e. `fp` is *possibly* seen; a
  /// false answer is definitive).
  [[nodiscard]] bool testAll(std::uint64_t fp) const {
    std::uint64_t h1 = 0;
    std::uint64_t h2 = 0;
    derive(fp, h1, h2);
    for (std::uint32_t i = 0; i < hashes_; ++i) {
      const std::uint64_t bit = (h1 + i * h2) & (bits_ - 1);
      if ((words_[static_cast<std::size_t>(bit >> 6)] &
           (1ULL << (bit & 63))) == 0) {
        return false;
      }
    }
    return true;
  }

  /// Set every derived bit (single-threaded: barrier publication only).
  void setAll(std::uint64_t fp) {
    std::uint64_t h1 = 0;
    std::uint64_t h2 = 0;
    derive(fp, h1, h2);
    for (std::uint32_t i = 0; i < hashes_; ++i) {
      const std::uint64_t bit = (h1 + i * h2) & (bits_ - 1);
      words_[static_cast<std::size_t>(bit >> 6)] |= 1ULL << (bit & 63);
    }
  }

  /// Population count over the whole array — the `m_ones/m` fill ratio
  /// feeding the reported omission bound `insertCalls * (ones/m)^k`.
  [[nodiscard]] std::uint64_t onesCount() const {
    std::uint64_t ones = 0;
    for (const std::uint64_t w : words_) {
      std::uint64_t v = w;
      while (v != 0) {
        v &= v - 1;
        ++ones;
      }
    }
    return ones;
  }

  [[nodiscard]] std::uint64_t bitCount() const { return bits_; }
  [[nodiscard]] std::uint32_t hashCount() const { return hashes_; }
  [[nodiscard]] std::size_t bytes() const { return words_.size() * 8; }

  /// Raw word access for checkpoint dump/load.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }
  void loadWords(std::vector<std::uint64_t> words, std::uint32_t hashes) {
    if (words.size() != words_.size()) {
      throw SimError(
          "bitstate checkpoint size mismatch: dump has " +
          std::to_string(words.size()) + " words, --bitstate-mb configures " +
          std::to_string(words_.size()) +
          " (resume with the original --bitstate-mb)");
    }
    words_ = std::move(words);
    hashes_ = hashes == 0 ? 1 : hashes;
  }

 private:
  /// Double hashing: h2 is re-mixed from fp and forced odd so the k
  /// probe positions stay distinct over the power-of-two bit space.
  static void derive(std::uint64_t fp, std::uint64_t& h1, std::uint64_t& h2) {
    h1 = fp;
    std::uint64_t m = fp;
    m ^= m >> 33;
    m *= 0xFF51AFD7ED558CCDULL;
    m ^= m >> 33;
    m *= 0xC4CEB9FE1A85EC53ULL;
    m ^= m >> 33;
    h2 = m | 1;
  }

  std::vector<std::uint64_t> words_;
  std::uint64_t bits_ = 0;
  std::uint32_t hashes_ = kDefaultHashes;
};

}  // namespace lcdc
