// Bump allocation for the model checker's hot path.
//
// The explorer allocates two kinds of short-lived-or-append-only byte
// blobs at very high rate: canonical state encodings (append-only, live
// until exploration ends) and serialized frontier worlds (live for exactly
// one BFS wave).  Going through malloc for each would cost a lock + ~16
// bytes of header per blob; instead an `Arena` hands out large blocks
// under a mutex (rare) and each worker bumps a thread-private cursor
// through its current block (`ArenaRef`, lock-free).
//
// Contract:
//   * `ArenaRef::alloc` is unsynchronized and must only be used from one
//     thread at a time (the explorer creates one per frontier chunk).
//   * Blobs are raw bytes with no alignment guarantee — callers store
//     byte streams, not objects.
//   * `reset()` frees every block; all pointers previously handed out
//     become invalid.  The caller must quiesce all ArenaRefs first (the
//     explorer resets only at wave boundaries).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace lcdc {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 20;

  explicit Arena(std::size_t blockBytes = kDefaultBlockBytes)
      : blockBytes_(blockBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Hand out a fresh block of at least `atLeast` bytes; `usable` reports
  /// the block's actual size.  Thread-safe (one mutex acquisition per
  /// block, i.e. per ~1 MiB of blob data, not per blob).
  std::byte* grabBlock(std::size_t atLeast, std::size_t& usable) {
    const std::size_t size = atLeast > blockBytes_ ? atLeast : blockBytes_;
    auto block = std::make_unique<std::byte[]>(size);
    std::byte* p = block.get();
    {
      const std::lock_guard<std::mutex> lk(mu_);
      blocks_.push_back(std::move(block));
    }
    bytesReserved_.fetch_add(size, std::memory_order_relaxed);
    usable = size;
    return p;
  }

  /// Free every block.  All outstanding pointers become dangling; callers
  /// must have dropped their ArenaRefs.
  void reset() {
    std::vector<std::unique_ptr<std::byte[]>> gone;
    {
      const std::lock_guard<std::mutex> lk(mu_);
      gone.swap(blocks_);
    }
    bytesReserved_.store(0, std::memory_order_relaxed);
  }

  /// Total bytes of blocks currently held (reserved, not necessarily
  /// bump-allocated yet) — the number the --mem-limit-mb accounting sums.
  [[nodiscard]] std::size_t bytesReserved() const {
    return bytesReserved_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t blockBytes_;
  std::mutex mu_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::atomic<std::size_t> bytesReserved_{0};
};

/// A single-threaded bump cursor over blocks grabbed from a shared Arena.
class ArenaRef {
 public:
  explicit ArenaRef(Arena& arena) : arena_(&arena) {}

  std::byte* alloc(std::size_t n) {
    if (n > left_) {
      std::size_t usable = 0;
      cur_ = arena_->grabBlock(n, usable);
      left_ = usable;
    }
    std::byte* p = cur_;
    cur_ += n;
    left_ -= n;
    return p;
  }

 private:
  Arena* arena_;
  std::byte* cur_ = nullptr;
  std::size_t left_ = 0;
};

}  // namespace lcdc
