// The paper's Lamport timestamp: a 3-tuple (global, local, processor-id)
// ordered lexicographically (Section 1).
//
//  * global — ticks of the per-node logical clock; delineates coherence
//    epochs (only transactions advance it).
//  * local  — orders LD/ST operations that share a global timestamp,
//    preserving program order within an epoch; allows an unbounded number
//    of operations between transactions.
//  * pid    — arbitrary tiebreaker making the order total.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace lcdc {

/// Value of a logical (global) clock.
using GlobalTime = std::uint64_t;

/// Value of the per-processor local (intra-epoch) counter.
using LocalTime = std::uint64_t;

/// A full Lamport timestamp for a LD/ST operation.  Transactions only carry
/// the global component (Section 3.2: "Local timestamps are not needed for
/// transactions").
struct Timestamp {
  GlobalTime global = 0;
  LocalTime local = 0;
  NodeId pid = kNoNode;

  friend constexpr auto operator<=>(const Timestamp&, const Timestamp&) = default;
};

[[nodiscard]] std::string toString(const Timestamp& ts);

}  // namespace lcdc
