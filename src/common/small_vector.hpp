// A vector with inline storage for its first N elements.
//
// The simulator's hot path moves protocol messages between controllers,
// outboxes and network envelopes millions of times per run.  A `Message`
// whose variable-length fields (invalidation targets, Lamport stamps, the
// block payload) live in `std::vector` costs up to three heap round-trips
// per copy; with SmallVector the common case — every field within its
// inline capacity — is a flat member-wise copy and a `Message` travels
// with zero heap traffic.
//
// Semantics follow std::vector where implemented: contiguous storage,
// amortized-doubling growth past the inline capacity, element order
// preserved by insert/erase.  Differences: no allocator parameter, and
// moving an inline-stored vector moves elements (O(size)) instead of
// stealing a buffer — for the small sizes this type is built for that is
// still cheaper than one allocation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>
#include <new>
#include <type_traits>
#include <utility>

namespace lcdc::common {

template <class T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be at least one element");

 public:
  using value_type = T;
  using size_type = std::size_t;
  using iterator = T*;
  using const_iterator = const T*;
  using reference = T&;
  using const_reference = const T&;

  SmallVector() noexcept : data_(inlineData()), size_(0), capacity_(N) {}

  explicit SmallVector(size_type n) : SmallVector() { resize(n); }

  SmallVector(size_type n, const T& value) : SmallVector() {
    assign(n, value);
  }

  SmallVector(std::initializer_list<T> init) : SmallVector() {
    reserve(init.size());
    for (const T& v : init) emplace_back(v);
  }

  template <class It,
            class = typename std::iterator_traits<It>::iterator_category>
  SmallVector(It first, It last) : SmallVector() {
    for (; first != last; ++first) emplace_back(*first);
  }

  SmallVector(const SmallVector& other) : SmallVector() {
    reserve(other.size_);
    for (size_type i = 0; i < other.size_; ++i) emplace_back(other.data_[i]);
  }

  SmallVector(SmallVector&& other) noexcept : SmallVector() {
    stealOrMove(std::move(other));
  }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear();
      releaseHeap();
      stealOrMove(std::move(other));
    }
    return *this;
  }

  SmallVector& operator=(std::initializer_list<T> init) {
    clear();
    reserve(init.size());
    for (const T& v : init) emplace_back(v);
    return *this;
  }

  ~SmallVector() {
    clear();
    releaseHeap();
  }

  // -- element access ---------------------------------------------------------

  [[nodiscard]] reference operator[](size_type i) { return data_[i]; }
  [[nodiscard]] const_reference operator[](size_type i) const {
    return data_[i];
  }
  [[nodiscard]] reference front() { return data_[0]; }
  [[nodiscard]] const_reference front() const { return data_[0]; }
  [[nodiscard]] reference back() { return data_[size_ - 1]; }
  [[nodiscard]] const_reference back() const { return data_[size_ - 1]; }
  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }

  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator cbegin() const noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator cend() const noexcept { return data_ + size_; }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] size_type size() const noexcept { return size_; }
  [[nodiscard]] size_type capacity() const noexcept { return capacity_; }
  /// True while the elements still live in the inline buffer.
  [[nodiscard]] bool inlined() const noexcept { return data_ == inlineData(); }

  // -- modifiers --------------------------------------------------------------

  void reserve(size_type n) {
    if (n > capacity_) grow(n);
  }

  void clear() noexcept {
    destroyRange(0, size_);
    size_ = 0;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <class... Args>
  reference emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(size_ + 1);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  void resize(size_type n) {
    if (n < size_) {
      destroyRange(n, size_);
      size_ = n;
      return;
    }
    reserve(n);
    while (size_ < n) emplace_back();
  }

  void resize(size_type n, const T& value) {
    if (n < size_) {
      destroyRange(n, size_);
      size_ = n;
      return;
    }
    reserve(n);
    while (size_ < n) emplace_back(value);
  }

  void assign(size_type n, const T& value) {
    clear();
    reserve(n);
    while (size_ < n) emplace_back(value);
  }

  template <class It,
            class = typename std::iterator_traits<It>::iterator_category>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) emplace_back(*first);
  }

  iterator insert(const_iterator pos, const T& value) {
    const size_type at = static_cast<size_type>(pos - data_);
    if (size_ == capacity_) grow(size_ + 1);
    if (at == size_) {
      emplace_back(value);
    } else {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
      for (size_type i = size_ - 1; i > at; --i) {
        data_[i] = std::move(data_[i - 1]);
      }
      data_[at] = value;
      ++size_;
    }
    return data_ + at;
  }

  iterator erase(const_iterator pos) {
    const size_type at = static_cast<size_type>(pos - data_);
    for (size_type i = at + 1; i < size_; ++i) {
      data_[i - 1] = std::move(data_[i]);
    }
    pop_back();
    return data_ + at;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  [[nodiscard]] T* inlineData() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_));
  }
  [[nodiscard]] const T* inlineData() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_));
  }

  void destroyRange(size_type from, size_type to) noexcept {
    for (size_type i = from; i < to; ++i) data_[i].~T();
  }

  /// Free the heap buffer (elements must already be destroyed) and return
  /// to the inline buffer.
  void releaseHeap() noexcept {
    if (!inlined()) {
      ::operator delete(static_cast<void*>(data_));
      data_ = inlineData();
      capacity_ = N;
    }
  }

  void grow(size_type need) {
    size_type cap = capacity_ * 2;
    if (cap < need) cap = need;
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    for (size_type i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!inlined()) ::operator delete(static_cast<void*>(data_));
    data_ = fresh;
    capacity_ = cap;
  }

  /// Move-construct from `other`: steal its heap buffer when it has one,
  /// move elements when it is inline.  `other` is left empty and inline.
  void stealOrMove(SmallVector&& other) noexcept {
    if (other.inlined()) {
      for (size_type i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
      }
      size_ = other.size_;
      other.clear();
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inlineData();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_;
  size_type size_;
  size_type capacity_;
};

/// std::vector interop for tests and serialization round-trips (C++20
/// rewrites this into the reversed comparison and != as well).
template <class T, std::size_t N, class A>
[[nodiscard]] bool operator==(const SmallVector<T, N>& a,
                              const std::vector<T, A>& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace lcdc::common
