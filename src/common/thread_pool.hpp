// Work-stealing thread pool for the verification-campaign subsystem.
//
// The campaign runner fans thousands of seeded simulations across cores;
// individual seeds vary wildly in cost (a seed that provokes the Figure 2
// deadlock path can run 50x longer than a quiet one), so a single shared
// queue would serialize on the fast seeds while one worker grinds the slow
// one.  Each worker therefore owns a deque: it pushes/pops work at the back
// (LIFO, cache-warm) and, when empty, steals from the *front* of a victim's
// deque (FIFO, the oldest — and statistically largest — task).
//
// Design notes:
//   * per-deque mutexes rather than a lock-free Chase-Lev deque: campaign
//     tasks are whole simulations (milliseconds each), so queue overhead is
//     noise, and the mutex version is trivially data-race-free — which the
//     TSan CI job must be able to prove for the whole campaign stack.
//   * submit() is callable from worker threads too (a task may spawn
//     subtasks, e.g. minimization probes); external submitters round-robin
//     across deques so the initial fan-out is balanced.
//   * wait() blocks until every submitted task (including tasks submitted
//     by tasks) has finished; the pool stays usable for the next wave —
//     the campaign's --until-coverage mode runs seeds in waves.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lcdc {

/// Aggregate scheduling counters, exposed so the campaign report and the
/// throughput bench can show how much stealing actually happened.
struct PoolStats {
  std::uint64_t tasksExecuted = 0;
  std::uint64_t tasksStolen = 0;  ///< executed tasks that were stolen
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task.  Thread-safe; callable from worker threads (the
  /// task lands on the calling worker's own deque).
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have run.  Must not be called from a
  /// worker thread (it would deadlock on its own pending task).
  void wait();

  [[nodiscard]] unsigned threadCount() const {
    return static_cast<unsigned>(workers_.size());
  }
  [[nodiscard]] PoolStats stats() const;

 private:
  struct Deque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void workerLoop(unsigned self);
  bool tryPop(unsigned self, std::function<void()>& task, bool& stolen);

  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards sleeping/wake + done signalling
  std::condition_variable cv_;     // workers sleep here when idle
  std::condition_variable doneCv_; // wait() sleeps here
  bool stop_ = false;

  std::atomic<std::uint64_t> pending_{0};    // submitted but not finished
  std::atomic<std::uint64_t> queued_{0};     // sitting in a deque right now
  std::atomic<std::uint64_t> nextDeque_{0};  // external submit round-robin
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
};

}  // namespace lcdc
