// Outcome of driving a system to completion.  Lives in common/ (not sim/)
// because it is part of the observer API: proto::EventSink's onRunEnd hook
// hands every observer the final result, so the protocol-facing headers
// need the type without pulling in the whole simulator.
#pragma once

#include <cstdint>
#include <string>

namespace lcdc {

struct RunResult {
  enum class Outcome {
    Quiescent,     ///< all programs finished, protocol drained
    Deadlock,      ///< no deliverable events but programs incomplete
    Livelock,      ///< events keep flowing but no operation binds
    BudgetExhausted,
  };
  Outcome outcome = Outcome::BudgetExhausted;
  std::uint64_t eventsProcessed = 0;
  std::uint64_t endTime = 0;  ///< final simulated tick (net::Tick)
  std::uint64_t opsBound = 0;
  std::string detail;

  [[nodiscard]] bool ok() const { return outcome == Outcome::Quiescent; }
};

[[nodiscard]] inline std::string toString(RunResult::Outcome o) {
  switch (o) {
    case RunResult::Outcome::Quiescent: return "quiescent";
    case RunResult::Outcome::Deadlock: return "deadlock";
    case RunResult::Outcome::Livelock: return "livelock";
    case RunResult::Outcome::BudgetExhausted: return "budget-exhausted";
  }
  return "outcome(?)";
}

}  // namespace lcdc
