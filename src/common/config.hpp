// Configuration records for the protocol core and the simulated system.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace lcdc {

/// Deliberate protocol bugs for fault-injection experiments (bench S3,
/// mutation tests).  Each mutant is a realistic coherence bug of the subtle
/// kind the paper argues is "missed by high-level intuitive reasoning"; the
/// Lamport-clock checkers must catch every one of them.
enum class Mutant : std::uint8_t {
  None = 0,
  /// Requester of Get-Exclusive/Upgrade proceeds as soon as the home's reply
  /// arrives, without waiting for invalidation acknowledgments (breaks the
  /// single-writer guarantee; classic premature-write bug).
  SkipInvAckWait,
  /// Home answers a Get-Shared from directory state Exclusive with its own
  /// (stale) memory copy instead of forwarding to the owner (breaks value
  /// propagation, Lemma 3).
  StaleDataFromHome,
  /// A sharer acknowledges an invalidation but "forgets" to invalidate its
  /// cached copy and keeps reading it (breaks epoch containment, Lemma 2).
  IgnoreInvalidation,
  /// The owner answering a forwarded Get-Shared sends the block's value as
  /// of the start of its exclusive epoch, dropping its own stores
  /// (breaks Fact 2 / Lemma 3).
  ForwardStaleValue,
  /// The home does not NACK requests that arrive in Busy-Any states and
  /// instead processes them as if the directory were in its pre-busy state
  /// (corrupts the serialization order).
  NoBusyNack,
  /// Disable the Section 2.5 deadlock detection at a requester waiting for
  /// invalidation acks; with Put-Shared enabled this recreates Figure 2's
  /// deadlock.
  NoDeadlockDetection,
  /// Tardis backend only: the home hands out an exclusive grant without
  /// first bumping its entry clock past the block's read lease frontier
  /// (rts), so a writer's upgrade timestamp can land inside a still-live
  /// read lease (breaks Claim 3(a)/Lemma 1 — the lease-vs-owner
  /// disjointness that carries Tardis's single-writer argument).
  DropLeaseBump,
};

[[nodiscard]] const char* toString(Mutant m);

/// Which coherence backend a SystemConfig drives.  The backend registry
/// (proto::backendFor) maps each value to a proto::CoherenceBackend that
/// builds the system and the matching VerifyConfig.
enum class ProtocolKind : std::uint8_t {
  Directory = 0,  ///< the paper's SGI-Origin-style directory protocol
  Bus,            ///< the snooping-bus companion model (Section 4.1 remark)
  Tardis,         ///< timestamp-lease coherence (arXiv 1501.04504)
};

[[nodiscard]] const char* toString(ProtocolKind k);

/// Protocol-level switches.  The same config drives the event simulator and
/// the model checker, so both always exercise the same protocol variant.
struct ProtoConfig {
  /// Words per memory block (payload size; values carry store attribution).
  WordIdx wordsPerBlock = 4;
  /// Enable the Section 2.5 extension: silent eviction of read-only blocks
  /// (Put-Shared), acknowledgment of stale invalidations, and the
  /// requester-side deadlock detection.
  bool putSharedEnabled = true;
  /// Fault injection (Mutant::None for the faithful protocol).
  Mutant mutant = Mutant::None;
  /// Tardis backend only: logical lease length L.  A read grant at upgrade
  /// timestamp u extends the block's read frontier to at least u + L; a
  /// load whose Lamport time would exceed the frontier must renew first.
  /// Small values force the renewal/expiry paths; the directory and bus
  /// backends ignore this field.
  std::uint32_t leaseLength = 16;
};

/// Full system configuration (Figure 1 topology plus workload plumbing).
struct SystemConfig {
  ProtoConfig proto{};
  /// Which coherence backend this configuration is meant to drive.  The
  /// system emitting a run stamps this into onRunBegin, and the streaming
  /// checkers refuse a VerifyConfig built for a different backend (a
  /// mismatched pair would silently mis-check; see DESIGN.md §12).
  ProtocolKind protocol = ProtocolKind::Directory;
  /// Number of processing nodes.
  NodeId numProcessors = 4;
  /// Number of directory/home nodes; blocks are interleaved across them
  /// (home(b) = b mod numDirectories).  The directory slice of node d is
  /// co-located with processing node d when numDirectories == numProcessors.
  NodeId numDirectories = 4;
  /// Number of memory blocks.
  BlockId numBlocks = 64;
  /// Cache capacity per node, in blocks; exceeding it triggers evictions
  /// (Writeback for read-write lines, Put-Shared for read-only lines when
  /// the extension is enabled).  0 means unbounded.
  std::uint32_t cacheCapacity = 0;
  /// Network latency bounds (inclusive), in simulated ticks.  With
  /// minLatency < maxLatency messages routinely overtake one another, which
  /// is exactly the unordered-delivery environment of Section 2.1.
  std::uint64_t minLatency = 1;
  std::uint64_t maxLatency = 40;
  /// Delay before a NACKed request is retried (plus a random jitter of the
  /// same magnitude), in ticks.
  std::uint64_t retryDelay = 8;
  /// Bus backend only: max random snoop-processing delay per node per bus
  /// command (the bus has no point-to-point network, so min/maxLatency do
  /// not apply to it).  Other backends ignore this field.
  std::uint64_t busSnoopDelayMax = 16;
  /// Master seed; all randomness in a run derives from it.
  std::uint64_t seed = 1;
  /// TSO extension (the paper's Section 5 future work: "consistency models
  /// other than sequential consistency").  When > 0, each processor gets a
  /// FIFO store buffer of this depth: stores retire (bind) lazily, loads
  /// bypass them and forward from the buffer on a hit — the resulting
  /// executions satisfy TSO but in general not SC.  0 = plain SC processor.
  std::uint32_t storeBufferDepth = 0;
};

}  // namespace lcdc
