#include <sstream>

#include "common/config.hpp"
#include "common/expect.hpp"
#include "common/timestamp.hpp"
#include "common/types.hpp"

namespace lcdc {

std::string toString(ReqType t) {
  switch (t) {
    case ReqType::GetShared: return "Get-Shared";
    case ReqType::GetExclusive: return "Get-Exclusive";
    case ReqType::Upgrade: return "Upgrade";
    case ReqType::Writeback: return "Writeback";
  }
  return "ReqType(?)";
}

std::string toString(CacheState s) {
  switch (s) {
    case CacheState::Invalid: return "invalid";
    case CacheState::ReadOnly: return "read-only";
    case CacheState::ReadWrite: return "read-write";
  }
  return "CacheState(?)";
}

std::string toString(AState s) {
  switch (s) {
    case AState::I: return "A_I";
    case AState::S: return "A_S";
    case AState::X: return "A_X";
  }
  return "AState(?)";
}

std::string toString(DirState s) {
  switch (s) {
    case DirState::Idle: return "Idle";
    case DirState::Shared: return "Shared";
    case DirState::Exclusive: return "Exclusive";
    case DirState::BusyShared: return "Busy-Shared";
    case DirState::BusyExclusive: return "Busy-Exclusive";
    case DirState::BusyIdle: return "Busy-Idle";
  }
  return "DirState(?)";
}

std::string toString(TxnKind k) {
  switch (k) {
    case TxnKind::GetS_Idle: return "1:GetS/Idle";
    case TxnKind::GetS_Shared: return "2:GetS/Shared";
    case TxnKind::GetS_Exclusive: return "3:GetS/Exclusive";
    case TxnKind::GetX_Idle: return "5:GetX/Idle";
    case TxnKind::GetX_Shared: return "6:GetX/Shared";
    case TxnKind::GetX_Exclusive: return "7:GetX/Exclusive";
    case TxnKind::Upg_Shared: return "9:Upg/Shared";
    case TxnKind::Wb_Exclusive: return "12:Wb/Exclusive";
    case TxnKind::Wb_BusyShared: return "13:Wb/Busy-Shared";
    case TxnKind::Wb_BusyExclusive: return "14a:Wb/Busy-Exclusive";
    case TxnKind::Wb_BusyExclusiveSelf: return "14b:Wb/Busy-Exclusive-self";
  }
  return "TxnKind(?)";
}

std::string toString(NackKind k) {
  switch (k) {
    case NackKind::GetS_Busy: return "4:GetS/Busy-Any";
    case NackKind::GetX_Busy: return "8:GetX/Busy-Any";
    case NackKind::Upg_Exclusive: return "10:Upg/Exclusive";
    case NackKind::Upg_Busy: return "11:Upg/Busy-Any";
  }
  return "NackKind(?)";
}

std::string toString(OpKind k) {
  return k == OpKind::Load ? "LD" : "ST";
}

std::string toString(const Timestamp& ts) {
  std::ostringstream os;
  os << '(' << ts.global << ',' << ts.local << ",p" << ts.pid << ')';
  return os.str();
}

const char* toString(Mutant m) {
  switch (m) {
    case Mutant::None: return "none";
    case Mutant::SkipInvAckWait: return "skip-inv-ack-wait";
    case Mutant::StaleDataFromHome: return "stale-data-from-home";
    case Mutant::IgnoreInvalidation: return "ignore-invalidation";
    case Mutant::ForwardStaleValue: return "forward-stale-value";
    case Mutant::NoBusyNack: return "no-busy-nack";
    case Mutant::NoDeadlockDetection: return "no-deadlock-detection";
    case Mutant::DropLeaseBump: return "drop-lease-bump";
  }
  return "mutant(?)";
}

const char* toString(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::Directory: return "dir";
    case ProtocolKind::Bus: return "bus";
    case ProtocolKind::Tardis: return "tardis";
  }
  return "protocol(?)";
}

void failExpect(const char* cond, const char* file, int line,
                const std::string& msg) {
  std::ostringstream os;
  os << "protocol invariant violated: " << cond << " at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw ProtocolError(os.str());
}

}  // namespace lcdc
