// Runtime checking for protocol invariants.
//
// The paper proves several situations "impossible" (Appendix B): e.g. a
// Writeback arriving at an Idle or Shared directory.  In an executable
// reproduction these become hard runtime checks: if one fires, either the
// protocol implementation or the paper's reasoning is wrong, and we want a
// loud, diagnosable failure rather than silent corruption.  Checks stay on
// in release builds; they are far off the simulator's critical path.
#pragma once

#include <stdexcept>
#include <string>

namespace lcdc {

/// Thrown when a protocol invariant (an Appendix-B "impossible" case or an
/// internal consistency condition) is violated.
class ProtocolError : public std::logic_error {
 public:
  explicit ProtocolError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a simulator precondition (configuration, API misuse) fails.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void failExpect(const char* cond, const char* file, int line,
                             const std::string& msg);

}  // namespace lcdc

/// Always-on invariant check.  `msg` may use stream-free string composition.
#define LCDC_EXPECT(cond, msg)                                   \
  do {                                                           \
    if (!(cond)) {                                               \
      ::lcdc::failExpect(#cond, __FILE__, __LINE__, (msg));      \
    }                                                            \
  } while (false)
