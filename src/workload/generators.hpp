// Workload generators: LD/ST/evict streams that exercise the protocol's
// interesting regimes — read sharing, invalidation storms, ownership
// migration, writeback races and Put-Shared re-requests.
//
// All generators are deterministic functions of their configuration
// (including the seed) and emit globally unique store values so the
// sequential-consistency replay can attribute every load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/program.hpp"

namespace lcdc::workload {

struct WorkloadConfig {
  std::uint64_t seed = 1;
  NodeId numProcessors = 4;
  BlockId numBlocks = 64;
  WordIdx wordsPerBlock = 4;
  std::uint64_t opsPerProcessor = 1000;
  /// Percent of (non-evict) operations that are stores.
  std::uint32_t storePercent = 30;
  /// Percent of program steps that are evict directives (drives writeback
  /// races and Put-Shared).
  std::uint32_t evictPercent = 5;
};

/// Uniform random accesses over all blocks — the broad-coverage stress mix.
[[nodiscard]] std::vector<Program> uniformRandom(const WorkloadConfig& cfg);

/// Most accesses hit a few hot blocks: heavy invalidation and busy-NACK
/// contention (where transactions 4/8/10/11 and 13/14 live).
[[nodiscard]] std::vector<Program> hotBlock(const WorkloadConfig& cfg,
                                            std::uint32_t hotPercent = 85,
                                            BlockId hotBlocks = 2);

/// Processor 0 produces into a region, the rest consume it round after
/// round: classic single-writer/many-reader sharing.
[[nodiscard]] std::vector<Program> producerConsumer(const WorkloadConfig& cfg);

/// Each block migrates processor to processor in read-modify-write bursts:
/// the Get-Shared/Get-Exclusive-at-Exclusive forwarding paths.
[[nodiscard]] std::vector<Program> migratory(const WorkloadConfig& cfg);

/// All processors hammer distinct words of the same blocks: maximal
/// ownership ping-pong with no data dependence (false sharing).
[[nodiscard]] std::vector<Program> falseSharing(const WorkloadConfig& cfg);

/// 95% loads over a shared region with occasional writers: wide CACHED
/// sets, large invalidation fan-outs.
[[nodiscard]] std::vector<Program> readMostly(const WorkloadConfig& cfg);

/// Tardis lease churn: a rotating writer bursts over a small shared region
/// while the other processors interleave shared loads with private-block
/// stores that advance their Lamport clocks — the pattern that expires and
/// renews read leases.  (Runs fine on the other backends too; it is simply
/// an adversarial sharing mix there.)
[[nodiscard]] std::vector<Program> leaseChurn(const WorkloadConfig& cfg);

/// Decorate programs with prefetch hints: for `percent`% of the memory
/// operations, insert a matching prefetch `lookahead` steps earlier
/// (Section 2.3's decoupling of coherence requests from processor events).
[[nodiscard]] std::vector<Program> addPrefetchHints(
    std::vector<Program> programs, std::uint32_t lookahead,
    std::uint32_t percent, std::uint64_t seed);

// -- campaign plumbing -------------------------------------------------------
//
// The campaign subsystem fans out thousands of seeded sub-runs; it needs
// (a) the generator family as a first-class value it can derive from a
// seed, and (b) statistically independent child seeds, so that sub-campaign
// i of master seed M is a pure function of (M, i) no matter which worker
// thread runs it or in which order.

/// The named generator families above, as a value the campaign can select
/// by derived seed and the CLI can parse by name.
enum class Kind : std::uint8_t {
  Uniform,
  Hot,
  ProdCons,
  Migratory,
  FalseShare,
  ReadMostly,
  LeaseChurn,  ///< Tardis lease expiry/renewal churn (appended last: the
               ///  seed-equivalence matrix pins the first six families)
};
inline constexpr std::uint8_t kNumKinds = 7;

[[nodiscard]] const char* toString(Kind k);

/// Parse a CLI name ("uniform", "hot", ...).  Throws SimError on an
/// unknown name.
[[nodiscard]] Kind kindFromName(const std::string& name);

/// Dispatch to the family's generator (default extra parameters).
[[nodiscard]] std::vector<Program> make(Kind kind, const WorkloadConfig& cfg);

/// `make`, generating into the caller's buffers: `out` is resized to the
/// processor count and each program's step storage is reused (cleared, not
/// reallocated).  Campaign workers derive thousands of cases per thread;
/// generating into one retained CaseSpec keeps the per-sub-run cost at the
/// steps themselves instead of a fresh vector tree each time.  The emitted
/// programs are identical to `make`'s.
void makeInto(Kind kind, const WorkloadConfig& cfg, std::vector<Program>& out);

/// Derive child seed `index` from a master seed: one splitmix64 stream per
/// master, mixed with the index, so sub-campaign seeds collide neither with
/// each other nor with the master across campaign sizes.
[[nodiscard]] std::uint64_t deriveSeed(std::uint64_t masterSeed,
                                       std::uint64_t index);

}  // namespace lcdc::workload
