// Program representation: the LD/ST stream each simulated processor
// executes, plus directives that drive the cache actions the paper's races
// depend on (evictions, Put-Shared).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace lcdc::workload {

/// One program step.  Besides plain loads and stores, a program may carry
/// explicit eviction directives — the decoupled "coherence requests are not
/// tied to processor events" behaviour of Section 2.3 — which scripted
/// scenarios and stress workloads use to provoke writeback races and the
/// Put-Shared deadlock.
enum class StepKind : std::uint8_t {
  Load,
  Store,
  /// Evict the block: Writeback when held read-write; Put-Shared when held
  /// read-only (requires the Section 2.5 extension); no-op when not cached.
  Evict,
  /// Prefetch the block read-only / read-write without binding an
  /// operation.  Section 2.3 decouples coherence requests from processor
  /// events ("a Get-Shared request could be generated even before a
  /// processor suffers a read miss ... prefetching blocks into its cache");
  /// these steps exercise that decoupling.  The processor does NOT stall:
  /// it issues the request (if the line is invalid and unblocked) and moves
  /// on; a later operation on the block binds when the prefetch completes.
  PrefetchShared,
  PrefetchExclusive,
};

struct Step {
  StepKind kind{};
  BlockId block = 0;
  WordIdx word = 0;
  Word storeValue = 0;
};

struct Program {
  std::vector<Step> steps;
};

[[nodiscard]] inline Step load(BlockId b, WordIdx w) {
  return Step{StepKind::Load, b, w, 0};
}
[[nodiscard]] inline Step store(BlockId b, WordIdx w, Word v) {
  return Step{StepKind::Store, b, w, v};
}
[[nodiscard]] inline Step evict(BlockId b) {
  return Step{StepKind::Evict, b, 0, 0};
}
[[nodiscard]] inline Step prefetchShared(BlockId b) {
  return Step{StepKind::PrefetchShared, b, 0, 0};
}
[[nodiscard]] inline Step prefetchExclusive(BlockId b) {
  return Step{StepKind::PrefetchExclusive, b, 0, 0};
}

/// Store values are made globally unique so the sequential-consistency
/// replay can attribute every loaded value to the store that produced it.
/// Word 0 is reserved for "initial value".
[[nodiscard]] inline Word makeStoreValue(NodeId proc, std::uint64_t seq) {
  return (static_cast<Word>(proc) + 1) << 40 | (seq + 1);
}

}  // namespace lcdc::workload
