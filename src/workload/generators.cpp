#include "workload/generators.hpp"

#include "common/expect.hpp"

namespace lcdc::workload {

namespace {

/// Per-processor generation state: one RNG stream and one store-value
/// counter per processor.
struct ProcGen {
  Rng rng;
  std::uint64_t storeSeq = 0;
};

std::vector<ProcGen> makeGens(const WorkloadConfig& cfg) {
  Rng master(cfg.seed ^ 0x776F726B'6C6F6164ULL);
  std::vector<ProcGen> gens;
  gens.reserve(cfg.numProcessors);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    gens.push_back(ProcGen{master.fork(), 0});
  }
  return gens;
}

Step randomStep(const WorkloadConfig& cfg, ProcGen& g, NodeId proc,
                BlockId block) {
  const WordIdx word =
      static_cast<WordIdx>(g.rng.uniform(0, cfg.wordsPerBlock - 1));
  if (g.rng.chance(cfg.evictPercent, 100)) return evict(block);
  if (g.rng.chance(cfg.storePercent, 100)) {
    return store(block, word, makeStoreValue(proc, g.storeSeq++));
  }
  return load(block, word);
}

/// Size `out` for the processor count, clearing each program's steps while
/// keeping their capacity — the buffer-reuse half of makeInto's contract.
void prepare(std::vector<Program>& out, NodeId procs) {
  out.resize(procs);
  for (Program& p : out) p.steps.clear();
}

void uniformRandomInto(const WorkloadConfig& cfg, std::vector<Program>& programs) {
  LCDC_EXPECT(cfg.numBlocks >= 1 && cfg.wordsPerBlock >= 1, "empty memory");
  auto gens = makeGens(cfg);
  prepare(programs, cfg.numProcessors);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    ProcGen& g = gens[p];
    programs[p].steps.reserve(cfg.opsPerProcessor);
    for (std::uint64_t i = 0; i < cfg.opsPerProcessor; ++i) {
      const BlockId block =
          static_cast<BlockId>(g.rng.uniform(0, cfg.numBlocks - 1));
      programs[p].steps.push_back(randomStep(cfg, g, p, block));
    }
  }
}

void hotBlockInto(const WorkloadConfig& cfg, std::uint32_t hotPercent,
                  BlockId hotBlocks, std::vector<Program>& programs) {
  LCDC_EXPECT(hotBlocks >= 1 && hotBlocks <= cfg.numBlocks,
              "hotBlocks out of range");
  auto gens = makeGens(cfg);
  prepare(programs, cfg.numProcessors);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    ProcGen& g = gens[p];
    for (std::uint64_t i = 0; i < cfg.opsPerProcessor; ++i) {
      const bool hot = g.rng.chance(hotPercent, 100);
      const BlockId block =
          hot ? static_cast<BlockId>(g.rng.uniform(0, hotBlocks - 1))
              : static_cast<BlockId>(g.rng.uniform(0, cfg.numBlocks - 1));
      programs[p].steps.push_back(randomStep(cfg, g, p, block));
    }
  }
}

void producerConsumerInto(const WorkloadConfig& cfg,
                          std::vector<Program>& programs) {
  auto gens = makeGens(cfg);
  prepare(programs, cfg.numProcessors);
  const BlockId region = std::min<BlockId>(cfg.numBlocks, 8);
  const std::uint64_t rounds =
      std::max<std::uint64_t>(1, cfg.opsPerProcessor / (region * 2));
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (BlockId b = 0; b < region; ++b) {
      // The producer writes every word, then evicts half the time so
      // consumers sometimes hit memory and sometimes trigger forwards.
      for (WordIdx w = 0; w < cfg.wordsPerBlock; ++w) {
        programs[0].steps.push_back(
            store(b, w, makeStoreValue(0, gens[0].storeSeq++)));
      }
      if (gens[0].rng.chance(1, 2)) programs[0].steps.push_back(evict(b));
      for (NodeId p = 1; p < cfg.numProcessors; ++p) {
        const WordIdx w = static_cast<WordIdx>(
            gens[p].rng.uniform(0, cfg.wordsPerBlock - 1));
        programs[p].steps.push_back(load(b, w));
        if (gens[p].rng.chance(1, 4)) programs[p].steps.push_back(evict(b));
      }
    }
  }
}

void migratoryInto(const WorkloadConfig& cfg, std::vector<Program>& programs) {
  auto gens = makeGens(cfg);
  prepare(programs, cfg.numProcessors);
  const BlockId region = std::min<BlockId>(cfg.numBlocks, 16);
  const std::uint64_t rounds =
      std::max<std::uint64_t>(1, cfg.opsPerProcessor / 4);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const BlockId b = static_cast<BlockId>(r % region);
    // Each processor in turn: read-modify-write (classic migratory data).
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      ProcGen& g = gens[p];
      const WordIdx w =
          static_cast<WordIdx>(g.rng.uniform(0, cfg.wordsPerBlock - 1));
      programs[p].steps.push_back(load(b, w));
      programs[p].steps.push_back(
          store(b, w, makeStoreValue(p, g.storeSeq++)));
    }
  }
}

void falseSharingInto(const WorkloadConfig& cfg,
                      std::vector<Program>& programs) {
  LCDC_EXPECT(cfg.wordsPerBlock >= cfg.numProcessors ||
                  cfg.wordsPerBlock >= 1,
              "false sharing needs at least one word");
  auto gens = makeGens(cfg);
  prepare(programs, cfg.numProcessors);
  const BlockId region = std::min<BlockId>(cfg.numBlocks, 4);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    ProcGen& g = gens[p];
    const WordIdx myWord = static_cast<WordIdx>(p % cfg.wordsPerBlock);
    for (std::uint64_t i = 0; i < cfg.opsPerProcessor; ++i) {
      const BlockId b = static_cast<BlockId>(g.rng.uniform(0, region - 1));
      if (g.rng.chance(60, 100)) {
        programs[p].steps.push_back(
            store(b, myWord, makeStoreValue(p, g.storeSeq++)));
      } else {
        programs[p].steps.push_back(load(b, myWord));
      }
    }
  }
}

void readMostlyInto(const WorkloadConfig& cfg, std::vector<Program>& programs) {
  WorkloadConfig tweaked = cfg;
  tweaked.storePercent = 5;
  auto gens = makeGens(tweaked);
  prepare(programs, cfg.numProcessors);
  const BlockId region = std::min<BlockId>(cfg.numBlocks, 16);
  for (NodeId p = 0; p < cfg.numProcessors; ++p) {
    ProcGen& g = gens[p];
    for (std::uint64_t i = 0; i < cfg.opsPerProcessor; ++i) {
      const BlockId b = static_cast<BlockId>(g.rng.uniform(0, region - 1));
      programs[p].steps.push_back(randomStep(tweaked, g, p, b));
    }
  }
}

void leaseChurnInto(const WorkloadConfig& cfg, std::vector<Program>& programs) {
  LCDC_EXPECT(cfg.numBlocks >= 1 && cfg.wordsPerBlock >= 1, "empty memory");
  auto gens = makeGens(cfg);
  prepare(programs, cfg.numProcessors);
  const BlockId region = std::min<BlockId>(cfg.numBlocks, 4);
  const std::uint64_t rounds =
      std::max<std::uint64_t>(1, cfg.opsPerProcessor / 8);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // One writer per round, rotating, bursts over the whole shared region:
    // under Tardis every burst lifts the blocks' timestamps past the read
    // frontier, so the readers' outstanding leases are logically dead.
    const NodeId writer = static_cast<NodeId>(r % cfg.numProcessors);
    for (NodeId p = 0; p < cfg.numProcessors; ++p) {
      ProcGen& g = gens[p];
      if (p == writer) {
        for (BlockId b = 0; b < region; ++b) {
          const WordIdx w =
              static_cast<WordIdx>(g.rng.uniform(0, cfg.wordsPerBlock - 1));
          programs[p].steps.push_back(
              store(b, w, makeStoreValue(p, g.storeSeq++)));
        }
        if (g.rng.chance(1, 3)) {
          programs[p].steps.push_back(
              evict(static_cast<BlockId>(g.rng.uniform(0, region - 1))));
        }
      } else {
        // Readers interleave shared-region loads with stores to a private
        // block: each private exclusive grant advances the reader's own
        // Lamport clock, which is what actually walks it past a lease end
        // (loads bound to one lease never advance global time on their
        // own).  After ~leaseLength pairs the next load must Renew.
        const BlockId shared =
            static_cast<BlockId>(g.rng.uniform(0, region - 1));
        const BlockId priv =
            cfg.numBlocks > region
                ? static_cast<BlockId>(region + (p % (cfg.numBlocks - region)))
                : shared;
        for (int i = 0; i < 4; ++i) {
          const WordIdx w =
              static_cast<WordIdx>(g.rng.uniform(0, cfg.wordsPerBlock - 1));
          programs[p].steps.push_back(load(shared, w));
          programs[p].steps.push_back(
              store(priv, w, makeStoreValue(p, g.storeSeq++)));
        }
      }
    }
  }
}

}  // namespace

std::vector<Program> uniformRandom(const WorkloadConfig& cfg) {
  std::vector<Program> programs;
  uniformRandomInto(cfg, programs);
  return programs;
}

std::vector<Program> hotBlock(const WorkloadConfig& cfg,
                              std::uint32_t hotPercent, BlockId hotBlocks) {
  std::vector<Program> programs;
  hotBlockInto(cfg, hotPercent, hotBlocks, programs);
  return programs;
}

std::vector<Program> producerConsumer(const WorkloadConfig& cfg) {
  std::vector<Program> programs;
  producerConsumerInto(cfg, programs);
  return programs;
}

std::vector<Program> migratory(const WorkloadConfig& cfg) {
  std::vector<Program> programs;
  migratoryInto(cfg, programs);
  return programs;
}

std::vector<Program> falseSharing(const WorkloadConfig& cfg) {
  std::vector<Program> programs;
  falseSharingInto(cfg, programs);
  return programs;
}

std::vector<Program> readMostly(const WorkloadConfig& cfg) {
  std::vector<Program> programs;
  readMostlyInto(cfg, programs);
  return programs;
}

std::vector<Program> leaseChurn(const WorkloadConfig& cfg) {
  std::vector<Program> programs;
  leaseChurnInto(cfg, programs);
  return programs;
}

std::vector<Program> addPrefetchHints(std::vector<Program> programs,
                                      std::uint32_t lookahead,
                                      std::uint32_t percent,
                                      std::uint64_t seed) {
  Rng rng(seed ^ 0x70726566'65746368ULL);
  for (Program& prog : programs) {
    Rng mine = rng.fork();
    // Collect hint insertions first (position -> steps), then rebuild.
    std::vector<std::vector<Step>> hints(prog.steps.size() + 1);
    for (std::size_t i = 0; i < prog.steps.size(); ++i) {
      const Step& s = prog.steps[i];
      if (s.kind != StepKind::Load && s.kind != StepKind::Store) continue;
      if (!mine.chance(percent, 100)) continue;
      const std::size_t at = i > lookahead ? i - lookahead : 0;
      hints[at].push_back(s.kind == StepKind::Load
                              ? prefetchShared(s.block)
                              : prefetchExclusive(s.block));
    }
    Program rebuilt;
    rebuilt.steps.reserve(prog.steps.size() * 2);
    for (std::size_t i = 0; i <= prog.steps.size(); ++i) {
      for (const Step& h : hints[i]) rebuilt.steps.push_back(h);
      if (i < prog.steps.size()) rebuilt.steps.push_back(prog.steps[i]);
    }
    prog = std::move(rebuilt);
  }
  return programs;
}

const char* toString(Kind k) {
  switch (k) {
    case Kind::Uniform: return "uniform";
    case Kind::Hot: return "hot";
    case Kind::ProdCons: return "prodcons";
    case Kind::Migratory: return "migratory";
    case Kind::FalseShare: return "falseshare";
    case Kind::ReadMostly: return "readmostly";
    case Kind::LeaseChurn: return "leasechurn";
  }
  return "?";
}

Kind kindFromName(const std::string& name) {
  for (std::uint8_t i = 0; i < kNumKinds; ++i) {
    const Kind k = static_cast<Kind>(i);
    if (name == toString(k)) return k;
  }
  throw SimError("unknown workload: " + name +
                 " (try uniform|hot|prodcons|migratory|falseshare|"
                 "readmostly|leasechurn)");
}

std::vector<Program> make(Kind kind, const WorkloadConfig& cfg) {
  std::vector<Program> programs;
  makeInto(kind, cfg, programs);
  return programs;
}

void makeInto(Kind kind, const WorkloadConfig& cfg,
              std::vector<Program>& out) {
  switch (kind) {
    case Kind::Uniform: return uniformRandomInto(cfg, out);
    case Kind::Hot: return hotBlockInto(cfg, 85, 2, out);
    case Kind::ProdCons: return producerConsumerInto(cfg, out);
    case Kind::Migratory: return migratoryInto(cfg, out);
    case Kind::FalseShare: return falseSharingInto(cfg, out);
    case Kind::ReadMostly: return readMostlyInto(cfg, out);
    case Kind::LeaseChurn: return leaseChurnInto(cfg, out);
  }
  throw SimError("unknown workload kind");
}

std::uint64_t deriveSeed(std::uint64_t masterSeed, std::uint64_t index) {
  // Two dependent splitmix64 steps: the first whitens the master, the
  // second mixes in the index, so neighbouring indices land in unrelated
  // parts of the sequence and seed 0 is safe.
  std::uint64_t s = masterSeed ^ 0x63616D70'6169676EULL;  // "campaign"
  const std::uint64_t whitened = splitmix64(s);
  std::uint64_t t = whitened ^ (index * 0x9E3779B97F4A7C15ULL);
  return splitmix64(t);
}

}  // namespace lcdc::workload
