// Tardis timestamp-lease coherence (Yu & Devadas, arXiv 1501.04504),
// certified by the *unchanged* Lamport-clock checkers.
//
// Tardis is the strongest available generalization test for the paper's
// method: it is a directory protocol whose control decisions *read* logical
// timestamps (the paper's clocks are a pure verification device), and it
// has no invalidation fan-out at all — a writer never contacts the sharers.
// Instead:
//
//   * every block has a read-lease frontier rts at its home; a Get-Shared
//     grants a lease [u, rts] and the reader may bind loads only while its
//     own Lamport clock is within the lease (expired leases renew),
//   * an exclusive grant is timestamped *above* the lease frontier
//     (u_X >= rts + 1), so the writer's epoch starts after every
//     outstanding reader lease ends — in logical time, not physical time.
//
// That is exactly the paper's Lemma 1 disjointness, constructed rather
// than proven after the fact: sharers are "invalidated" by the passage of
// logical time.  The mapping onto the Section 3 vocabulary:
//
//   transaction     = one serialized request at the block's home
//   upgrade stamp   = the grant timestamp u = 1 + max(home clock, req ts)
//   downgrades      = home's by-definition A-state drop at u; for an
//                     exclusive grant, every leased sharer S->I at rts + 1;
//                     the flushed owner X->I at 1 + max(home clock, flushTs)
//   home clock hc   = per-entry clock absorbing every stamp it emits and
//                     (crucially) every lease frontier it hands out — the
//                     "bump" whose omission is Mutant::DropLeaseBump
//
// The home emits *all* stamps of a transaction at serialization time; the
// caches never stamp.  This is legal relativity — Section 3.2 lets any
// affected node's stamp be assigned by the serializing agent as long as
// the per-node clock discipline holds — and it keeps Claim 2's
// per-(node, block) monotonicity a one-line invariant: hc only grows.
//
// Known caveat (documented in DESIGN.md §12 and pinned by a test): lease
// renewal gives no *physical-time* progress bound.  A reader whose lease
// keeps expiring under continuous write contention re-fetches every time;
// programs of finite length always quiesce, but a hypothetical free-running
// reader could be starved of lease validity forever.  The checkers are
// indifferent — every bound load still lands inside a valid epoch.
#pragma once

#include <atomic>
#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "clock/lamport.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/run_result.hpp"
#include "net/network.hpp"
#include "proto/events.hpp"
#include "proto/messages.hpp"
#include "workload/program.hpp"

namespace lcdc::tardis {

using lcdc::RunResult;

/// Aggregate counters over the whole run (leases are the interesting part:
/// random traffic almost never expires a lease unless leaseLength is small).
struct TardisStats {
  std::uint64_t txnsSerialized = 0;
  std::uint64_t sharedGrants = 0;     ///< Get-Shared/Renew transactions
  std::uint64_t exclusiveGrants = 0;  ///< Get-Exclusive transactions
  std::uint64_t leaseRenewals = 0;    ///< of the shared grants: Renew-typed
  std::uint64_t leaseExpiries = 0;    ///< reader found its lease expired
  std::uint64_t flushes = 0;          ///< FlushReq answered with FlushData
  /// Of the flushes: the FlushReq overtook its own DataExclusive on the
  /// unordered network and was answered the moment the grant arrived.
  std::uint64_t deferredFlushes = 0;
  std::uint64_t writebacks = 0;       ///< Writeback transactions serialized
  std::uint64_t nacksSent = 0;
  std::uint64_t staleWbAcks = 0;      ///< stale writebacks acked, no txn
  std::uint64_t staleFlushDrops = 0;  ///< stale FlushData dropped
  std::uint64_t retriesIssued = 0;
  std::uint64_t capacityEvictions = 0;
};

/// The full Tardis machine: processors + homes over the same unordered
/// net::Network as the directory simulator, driven as a deterministic
/// discrete-event simulation with the identical node numbering (processors
/// 0..P-1, homes P..P+D-1) and observation stream.
class TardisSystem {
 public:
  TardisSystem(const SystemConfig& config, proto::EventSink& sink,
               net::Network::Mode mode = net::Network::Mode::RandomLatency);

  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] net::Tick now() const { return now_; }
  [[nodiscard]] const TardisStats& stats() const { return stats_; }

  void setProgram(NodeId proc, const workload::Program& program);
  void setProgram(NodeId proc, workload::Program&& program);

  /// Rewind to the freshly constructed state under a new seed, in place
  /// (same RNG derivations as the constructor; container capacity kept).
  void reset(std::uint64_t seed);

  /// Kick every processor once (issue the first round of requests).
  void start();

  /// Deliver the next due event (timed modes).  False when nothing is
  /// pending.
  bool stepEvent();

  /// Run to quiescence / deadlock / livelock, or until maxEvents.
  RunResult run(std::uint64_t maxEvents = 200'000'000);

  // -- manual-mode scripting (tests) ----------------------------------------
  void deliverManual(std::size_t idx);
  void kick(NodeId proc);
  void advanceTime(net::Tick ticks);

  // -- state inspection ------------------------------------------------------
  [[nodiscard]] bool allProgramsDone() const;
  [[nodiscard]] bool quiescent() const;
  [[nodiscard]] std::uint64_t totalOpsBound() const;
  /// The block's current read-lease frontier rts at its home.
  [[nodiscard]] GlobalTime leaseFrontier(BlockId block) const;
  [[nodiscard]] NodeId home(BlockId block) const {
    return config_.numProcessors +
           static_cast<NodeId>(block % config_.numDirectories);
  }

 private:
  // -- home side -------------------------------------------------------------

  enum class HomeState : std::uint8_t { Idle, Shared, Exclusive, Busy };

  struct HomeEntry {
    HomeState state = HomeState::Idle;
    NodeId owner = kNoNode;  ///< Exclusive/Busy: current owner (the flusher)
    /// The owner's grant timestamp.  Carried in FlushReq so the owner can
    /// tell a flush aimed at its in-flight grant from a stale one: grant
    /// timestamps strictly increase per block, so they name the epoch.
    GlobalTime ownerGrantTs = 0;
    GlobalTime rts = 0;      ///< read-lease frontier
    GlobalTime hc = 0;       ///< entry clock; absorbs every emitted stamp
    SerialIdx serialCount = 0;
    BlockValue mem;
    /// Leased readers (bookkeeping for A-state attribution; Tardis never
    /// sends them anything — their leases simply end at rts).
    proto::NodeList sharers;
    // Busy: the single parked request the flush will satisfy.
    NodeId pendingRequester = kNoNode;
    bool pendingIsGetX = false;
    GlobalTime pendingReqTs = 0;
  };

  void homeHandle(const proto::Message& m);
  void homeGetS(HomeEntry& e, const proto::Message& m, bool isRenew);
  void homeGetX(HomeEntry& e, const proto::Message& m);
  void homeWriteback(HomeEntry& e, const proto::Message& m);
  void homeFlushData(HomeEntry& e, const proto::Message& m);
  /// Serialize the parked request once the owner's data (FlushData or a
  /// racing Writeback) reaches the home.
  void homeCompleteBusy(HomeEntry& e, BlockId block, GlobalTime flushTs,
                        const BlockValue& data);
  void grantShared(HomeEntry& e, BlockId block, NodeId requester,
                   GlobalTime reqTs, TxnKind kind);
  void grantExclusive(HomeEntry& e, BlockId block, NodeId requester,
                      GlobalTime reqTs);

  proto::TxnInfo serializeTxn(HomeEntry& e, BlockId block, TxnKind kind,
                              NodeId requester);
  /// Emit one stamp on the home's authority and absorb it into hc.
  void emitStamp(HomeEntry& e, NodeId node, const proto::TxnInfo& txn,
                 proto::StampRole role, GlobalTime ts, AState oldA,
                 AState newA);
  /// Extend the lease frontier past `u` and (unless Mutant::DropLeaseBump)
  /// bump hc over it so the next exclusive grant clears every lease.
  void extendLease(HomeEntry& e, GlobalTime u);
  void sendNack(BlockId block, NodeId requester, NackKind kind, ReqType req);

  // -- processor side --------------------------------------------------------

  enum class LineState : std::uint8_t { Invalid, SharedLease, Exclusive };

  struct Line {
    LineState state = LineState::Invalid;
    GlobalTime grantTs = 0;   ///< upgrade ts of the granting transaction
    GlobalTime leaseEnd = 0;  ///< SharedLease: rts at grant time
    GlobalTime flushTs = 0;   ///< Exclusive: running write frontier
    TransactionId txn = kNoTransaction;
    SerialIdx serial = 0;
    BlockValue data;
  };

  /// An evicted exclusive line whose Writeback is still un-acked; kept so a
  /// racing FlushReq can be answered from it.
  struct WbRecord {
    GlobalTime flushTs = 0;
    GlobalTime grantTs = 0;  ///< the evicted epoch's grant ts (what it closes)
    BlockValue data;
  };

  struct Proc {
    NodeId id = 0;
    clk::OpStamper stamper{0};
    Rng rng{0};
    workload::Program program;
    std::size_t pc = 0;
    std::unordered_map<BlockId, Line> lines;
    std::unordered_map<BlockId, WbRecord> wbPending;
    /// FlushReqs that overtook their own DataExclusive on the unordered
    /// network (block -> the grant ts the FlushReq named).  Answered the
    /// moment the matching grant lands; a mismatched entry is a stale
    /// flush from a previous ownership and is dropped with the reply.
    std::unordered_map<BlockId, GlobalTime> deferredFlush;
    std::unordered_map<BlockId, net::Tick> notBefore;
    bool waiting = false;  ///< one outstanding request (in-order processor)
    BlockId waitBlock = 0;
    std::uint64_t opsBound = 0;
  };

  void procDeliver(Proc& p, const proto::Message& m);
  /// Advance: bind every bindable step, issue at most one request.  Returns
  /// the wake tick when pacing a retry (net::kNever otherwise).
  net::Tick procProgress(Proc& p);
  void bindOp(Proc& p, Line& line, const workload::Step& step);
  void installLine(Proc& p, BlockId block, LineState s,
                   const proto::Message& m);
  void evictLine(Proc& p, BlockId block, Line& line);
  void maybeCapacityEvict(Proc& p, BlockId incoming);
  void sendRequest(Proc& p, BlockId block, proto::MsgType type);

  // -- event loop ------------------------------------------------------------

  struct Timer {
    net::Tick at;
    NodeId proc;
    friend bool operator>(const Timer& a, const Timer& b) {
      return a.at != b.at ? a.at > b.at : a.proc > b.proc;
    }
  };

  RunResult runLoop(std::uint64_t maxEvents);
  void dispatch(const net::Envelope& env);
  void progress(NodeId proc);
  void send(NodeId src, NodeId dst, proto::Message msg);

  SystemConfig config_;
  proto::EventSink* sink_;
  Rng rng_;
  net::Network net_;
  std::atomic<TransactionId> nextTxn_{1};
  std::vector<Proc> procs_;
  std::unordered_map<BlockId, HomeEntry> homes_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  net::Tick now_ = 0;
  TardisStats stats_;
};

}  // namespace lcdc::tardis
