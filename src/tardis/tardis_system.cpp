#include "tardis/tardis_system.hpp"

#include <algorithm>
#include <sstream>

#include "common/expect.hpp"

namespace lcdc::tardis {

namespace {

bool sharersContain(const proto::NodeList& sharers, NodeId n) {
  return std::find(sharers.begin(), sharers.end(), n) != sharers.end();
}

void sharersInsert(proto::NodeList& sharers, NodeId n) {
  if (!sharersContain(sharers, n)) sharers.push_back(n);
}

}  // namespace

TardisSystem::TardisSystem(const SystemConfig& config, proto::EventSink& sink,
                           net::Network::Mode mode)
    : config_(config), sink_(&sink), rng_(config.seed),
      net_(mode, Rng(config.seed ^ 0x6E657477'6F726BULL), config.minLatency,
           config.maxLatency) {
  // The run stream identifies its backend: streaming checkers configured
  // for a different protocol must refuse it (DESIGN.md §12).
  config_.protocol = ProtocolKind::Tardis;
  LCDC_EXPECT(config_.numProcessors >= 1, "need at least one processor");
  LCDC_EXPECT(config_.numDirectories >= 1, "need at least one directory");
  LCDC_EXPECT(config_.proto.wordsPerBlock >= 1, "blocks need at least 1 word");
  if (config_.proto.leaseLength == 0) config_.proto.leaseLength = 1;
  if (config_.storeBufferDepth > 0) {
    throw SimError(
        "tardis backend does not support the TSO store-buffer extension "
        "(storeBufferDepth must be 0)");
  }
  if (config_.proto.mutant != Mutant::None &&
      config_.proto.mutant != Mutant::DropLeaseBump) {
    throw SimError(std::string("mutant '") + toString(config_.proto.mutant) +
                   "' targets the directory protocol; the tardis backend "
                   "only implements 'drop-lease-bump'");
  }

  procs_.resize(config_.numProcessors);
  for (NodeId p = 0; p < config_.numProcessors; ++p) {
    procs_[p].id = p;
    procs_[p].stamper = clk::OpStamper(p);
    procs_[p].rng = rng_.fork();
  }
  for (BlockId b = 0; b < config_.numBlocks; ++b) {
    homes_[b].mem = BlockValue(config_.proto.wordsPerBlock, 0);
  }
}

void TardisSystem::setProgram(NodeId proc, const workload::Program& program) {
  LCDC_EXPECT(proc < procs_.size(), "processor index out of range");
  procs_[proc].program = program;
  procs_[proc].pc = 0;
}

void TardisSystem::setProgram(NodeId proc, workload::Program&& program) {
  LCDC_EXPECT(proc < procs_.size(), "processor index out of range");
  procs_[proc].program = std::move(program);
  procs_[proc].pc = 0;
}

void TardisSystem::reset(std::uint64_t seed) {
  // Mirror the constructor's RNG derivations exactly (see sim::System):
  // master from `seed`, network from seed ^ "network", per-processor forks
  // in id order.
  config_.seed = seed;
  rng_ = Rng(seed);
  net_.reset(Rng(seed ^ 0x6E657477'6F726BULL));
  nextTxn_.store(1, std::memory_order_relaxed);
  for (auto& p : procs_) {
    p.stamper.reset();
    p.rng = rng_.fork();
    p.pc = 0;
    p.lines.clear();
    p.wbPending.clear();
    p.deferredFlush.clear();
    p.notBefore.clear();
    p.waiting = false;
    p.opsBound = 0;
  }
  for (auto& [block, e] : homes_) {
    e.state = HomeState::Idle;
    e.owner = kNoNode;
    e.ownerGrantTs = 0;
    e.rts = 0;
    e.hc = 0;
    e.serialCount = 0;
    e.mem.assign(config_.proto.wordsPerBlock, 0);
    e.sharers.clear();
    e.pendingRequester = kNoNode;
    e.pendingIsGetX = false;
    e.pendingReqTs = 0;
  }
  while (!timers_.empty()) timers_.pop();
  stats_ = TardisStats{};
  now_ = 0;
}

void TardisSystem::send(NodeId src, NodeId dst, proto::Message msg) {
  (void)net_.send(src, dst, now_, std::move(msg));
}

void TardisSystem::start() {
  for (NodeId p = 0; p < procs_.size(); ++p) progress(p);
}

void TardisSystem::progress(NodeId proc) {
  const net::Tick wake = procProgress(procs_[proc]);
  if (wake != net::kNever) timers_.push(Timer{wake, proc});
}

void TardisSystem::dispatch(const net::Envelope& env) {
  if (env.dst < config_.numProcessors) {
    procDeliver(procs_[env.dst], env.msg);
    progress(env.dst);
  } else {
    homeHandle(env.msg);
  }
}

bool TardisSystem::stepEvent() {
  const net::Tick tNet = net_.empty() ? net::kNever : net_.nextDeliveryTime();
  while (!timers_.empty() && timers_.top().at <= now_) {
    const Timer t = timers_.top();
    timers_.pop();
    progress(t.proc);
    return true;
  }
  const net::Tick tTimer = timers_.empty() ? net::kNever : timers_.top().at;
  if (tNet == net::kNever && tTimer == net::kNever) return false;

  if (tNet <= tTimer) {
    now_ = std::max(now_, tNet);
    dispatch(net_.popNext());
  } else {
    const Timer t = timers_.top();
    timers_.pop();
    now_ = std::max(now_, t.at);
    progress(t.proc);
  }
  return true;
}

RunResult TardisSystem::run(std::uint64_t maxEvents) {
  sink_->onRunBegin(config_);
  RunResult result = runLoop(maxEvents);
  sink_->onRunEnd(result);
  return result;
}

RunResult TardisSystem::runLoop(std::uint64_t maxEvents) {
  RunResult result;
  std::uint64_t lastBound = totalOpsBound();
  std::uint64_t lastBoundEvent = 0;
  const std::uint64_t window = 400'000 + 2'000ull * config_.numProcessors;

  start();
  while (result.eventsProcessed < maxEvents) {
    if (!stepEvent()) {
      result.endTime = now_;
      result.opsBound = totalOpsBound();
      if (allProgramsDone()) {
        LCDC_EXPECT(quiescent(), "no events pending but not quiescent");
        result.outcome = RunResult::Outcome::Quiescent;
      } else {
        result.outcome = RunResult::Outcome::Deadlock;
        std::ostringstream os;
        os << "no deliverable events; stalled processors:";
        for (const auto& p : procs_) {
          if (p.pc < p.program.steps.size()) os << ' ' << p.id << "@pc=" << p.pc;
        }
        result.detail = os.str();
      }
      return result;
    }
    result.eventsProcessed += 1;
    if ((result.eventsProcessed & 0xFFF) == 0) {
      const std::uint64_t bound = totalOpsBound();
      if (bound != lastBound) {
        lastBound = bound;
        lastBoundEvent = result.eventsProcessed;
      } else if (!allProgramsDone() &&
                 result.eventsProcessed - lastBoundEvent > window) {
        result.outcome = RunResult::Outcome::Livelock;
        result.endTime = now_;
        result.opsBound = bound;
        result.detail = "no operation bound within the progress window";
        return result;
      }
    }
  }
  result.endTime = now_;
  result.opsBound = totalOpsBound();
  return result;
}

void TardisSystem::deliverManual(std::size_t idx) {
  now_ += 1;
  dispatch(net_.deliverIndex(idx));
}

void TardisSystem::kick(NodeId proc) { progress(proc); }

void TardisSystem::advanceTime(net::Tick ticks) {
  now_ += ticks;
  for (NodeId p = 0; p < procs_.size(); ++p) progress(p);
}

bool TardisSystem::allProgramsDone() const {
  return std::all_of(procs_.begin(), procs_.end(), [](const Proc& p) {
    return p.pc >= p.program.steps.size();
  });
}

bool TardisSystem::quiescent() const {
  if (!net_.empty()) return false;
  for (const auto& p : procs_) {
    if (p.waiting || !p.wbPending.empty()) return false;
  }
  for (const auto& [block, e] : homes_) {
    if (e.state == HomeState::Busy) return false;
  }
  return true;
}

std::uint64_t TardisSystem::totalOpsBound() const {
  std::uint64_t n = 0;
  for (const auto& p : procs_) n += p.opsBound;
  return n;
}

GlobalTime TardisSystem::leaseFrontier(BlockId block) const {
  const auto it = homes_.find(block);
  LCDC_EXPECT(it != homes_.end(), "unknown block");
  return it->second.rts;
}

// -- processor side ----------------------------------------------------------

net::Tick TardisSystem::procProgress(Proc& p) {
  if (p.waiting) return net::kNever;
  while (p.pc < p.program.steps.size()) {
    const workload::Step& step = p.program.steps[p.pc];
    switch (step.kind) {
      case workload::StepKind::Evict: {
        const auto it = p.lines.find(step.block);
        if (it != p.lines.end()) {
          if (it->second.state == LineState::Exclusive) {
            evictLine(p, step.block, it->second);
          } else {
            sink_->onPutShared(p.id, step.block);
          }
          p.lines.erase(it);
        }
        p.pc += 1;
        continue;
      }
      case workload::StepKind::PrefetchShared:
      case workload::StepKind::PrefetchExclusive:
        // Tardis has no speculative grant worth modelling here: a prefetch
        // would just be an early lease that may expire before use.
        p.pc += 1;
        continue;
      case workload::StepKind::Load:
      case workload::StepKind::Store:
        break;
    }

    // A re-request for a block whose Writeback is still un-acked must wait
    // for the WbAck (the single writeback record per block is our MSHR).
    if (p.wbPending.contains(step.block)) return net::kNever;

    const auto it = p.lines.find(step.block);
    Line* line = it != p.lines.end() ? &it->second : nullptr;
    if (line && line->state == LineState::Exclusive) {
      bindOp(p, *line, step);
      p.pc += 1;
      continue;
    }
    if (step.kind == workload::StepKind::Load && line &&
        line->state == LineState::SharedLease) {
      if (p.stamper.lastGlobal() <= line->leaseEnd) {
        bindOp(p, *line, step);
        p.pc += 1;
        continue;
      }
      // Lease expired in logical time: renew before binding.  The Renew
      // carries our frozen clock, so the home's fresh frontier always
      // clears it — one round trip, no renew storm.
      const auto nb = p.notBefore.find(step.block);
      if (nb != p.notBefore.end() && nb->second > now_) return nb->second;
      stats_.leaseExpiries += 1;
      sendRequest(p, step.block, proto::MsgType::Renew);
      return net::kNever;
    }
    // Miss: Load needs a lease, Store needs exclusivity.
    const auto nb = p.notBefore.find(step.block);
    if (nb != p.notBefore.end() && nb->second > now_) return nb->second;
    sendRequest(p, step.block,
                step.kind == workload::StepKind::Load ? proto::MsgType::GetS
                                                      : proto::MsgType::GetX);
    return net::kNever;
  }
  return net::kNever;
}

void TardisSystem::sendRequest(Proc& p, BlockId block, proto::MsgType type) {
  proto::Message m;
  m.type = type;
  m.block = block;
  m.requester = p.id;
  m.reqTs = p.stamper.lastGlobal();
  send(p.id, home(block), std::move(m));
  p.waiting = true;
  p.waitBlock = block;
}

void TardisSystem::bindOp(Proc& p, Line& line, const workload::Step& step) {
  const Timestamp ts = p.stamper.stamp(line.grantTs);
  Word value = 0;
  if (step.kind == workload::StepKind::Store) {
    line.data[step.word] = step.storeValue;
    value = step.storeValue;
  } else {
    value = line.data[step.word];
  }
  if (line.state == LineState::Exclusive && ts.global > line.flushTs) {
    line.flushTs = ts.global;
  }
  proto::OpRecord op;
  op.proc = p.id;
  op.progIdx = p.opsBound;
  op.kind = step.kind == workload::StepKind::Store ? OpKind::Store
                                                   : OpKind::Load;
  op.block = step.block;
  op.word = step.word;
  op.value = value;
  op.boundTxn = line.txn;
  op.boundSerial = line.serial;
  op.ts = ts;
  sink_->onOperation(op);
  p.opsBound += 1;
}

void TardisSystem::installLine(Proc& p, BlockId block, LineState s,
                               const proto::Message& m) {
  Line& line = p.lines[block];
  line.state = s;
  line.grantTs = m.grantTs;
  line.leaseEnd = m.leaseEnd;
  line.flushTs = m.grantTs;
  line.txn = m.txn;
  line.serial = m.serial;
  line.data = m.data;
  maybeCapacityEvict(p, block);
}

void TardisSystem::evictLine(Proc& p, BlockId block, Line& line) {
  proto::Message wb;
  wb.type = proto::MsgType::Writeback;
  wb.block = block;
  wb.requester = p.id;
  wb.flushTs = line.flushTs;
  wb.grantTs = line.grantTs;  // names the ownership epoch this Wb closes
  wb.data = line.data;
  p.wbPending.emplace(block, WbRecord{line.flushTs, line.grantTs, line.data});
  send(p.id, home(block), std::move(wb));
}

void TardisSystem::maybeCapacityEvict(Proc& p, BlockId incoming) {
  if (config_.cacheCapacity == 0 || p.lines.size() <= config_.cacheCapacity) {
    return;
  }
  // Deterministic victim: the lowest-numbered other block, leased lines
  // first (they cost nothing to drop).
  BlockId sharedVictim = kNoNode;
  BlockId anyVictim = kNoNode;
  for (const auto& [b, line] : p.lines) {
    if (b == incoming) continue;
    if (line.state == LineState::SharedLease && b < sharedVictim) {
      sharedVictim = b;
    }
    if (b < anyVictim) anyVictim = b;
  }
  const BlockId victim = sharedVictim != kNoNode ? sharedVictim : anyVictim;
  if (victim == kNoNode) return;
  const auto it = p.lines.find(victim);
  if (it->second.state == LineState::Exclusive) {
    evictLine(p, victim, it->second);
  } else {
    sink_->onPutShared(p.id, victim);
  }
  p.lines.erase(it);
  stats_.capacityEvictions += 1;
}

void TardisSystem::procDeliver(Proc& p, const proto::Message& m) {
  switch (m.type) {
    case proto::MsgType::DataShared:
      installLine(p, m.block, LineState::SharedLease, m);
      p.waiting = false;
      p.notBefore.erase(m.block);
      // A parked FlushReq can only be stale here (it named an exclusive
      // grant; this reply is a lease): drop it.
      p.deferredFlush.erase(m.block);
      return;
    case proto::MsgType::DataExclusive: {
      installLine(p, m.block, LineState::Exclusive, m);
      p.waiting = false;
      p.notBefore.erase(m.block);
      const auto df = p.deferredFlush.find(m.block);
      if (df != p.deferredFlush.end()) {
        const bool ours = df->second == m.grantTs;
        p.deferredFlush.erase(df);
        if (ours) {
          // The FlushReq that overtook this very grant: the home is Busy
          // waiting on us, so hand the block straight back.  No op was
          // bound, so the line's flushTs is still the grant ts.
          const auto it = p.lines.find(m.block);
          proto::Message fd;
          fd.type = proto::MsgType::FlushData;
          fd.block = m.block;
          fd.requester = p.id;
          fd.flushTs = it->second.flushTs;
          fd.grantTs = it->second.grantTs;
          fd.data = it->second.data;
          p.lines.erase(it);
          send(p.id, home(m.block), std::move(fd));
          stats_.flushes += 1;
          stats_.deferredFlushes += 1;
        }
      }
      return;
    }
    case proto::MsgType::Nack:
      p.waiting = false;
      p.notBefore[m.block] =
          now_ + config_.retryDelay + p.rng.uniform(0, config_.retryDelay);
      stats_.retriesIssued += 1;
      // A parked FlushReq named a grant this nacked request will never
      // receive: it was stale (a previous ownership's flush).
      p.deferredFlush.erase(m.block);
      return;
    case proto::MsgType::FlushReq: {
      const auto it = p.lines.find(m.block);
      // The grant-ts match is load-bearing: a stale FlushReq (its Busy
      // epoch already completed through our Writeback) can arrive after we
      // re-acquired the block, and answering it would flush the NEW line
      // while the home still records us as its owner.
      if (it != p.lines.end() && it->second.state == LineState::Exclusive &&
          it->second.grantTs == m.grantTs) {
        proto::Message fd;
        fd.type = proto::MsgType::FlushData;
        fd.block = m.block;
        fd.requester = p.id;
        fd.flushTs = it->second.flushTs;
        fd.grantTs = it->second.grantTs;
        fd.data = it->second.data;
        p.lines.erase(it);
        send(p.id, home(m.block), std::move(fd));
        stats_.flushes += 1;
        return;
      }
      if (const auto wb = p.wbPending.find(m.block); wb != p.wbPending.end()) {
        // The eviction raced the flush: re-supply the written-back copy so
        // the home can complete whichever of the two reaches it first.
        proto::Message fd;
        fd.type = proto::MsgType::FlushData;
        fd.block = m.block;
        fd.requester = p.id;
        fd.flushTs = wb->second.flushTs;
        fd.grantTs = wb->second.grantTs;
        fd.data = wb->second.data;
        send(p.id, home(m.block), std::move(fd));
        stats_.flushes += 1;
        return;
      }
      if (p.waiting && p.waitBlock == m.block) {
        // The FlushReq raced past its own grant on the unordered network:
        // the home went Busy the instant it granted us exclusivity, and
        // its flush request beat the DataExclusive here.  Park it keyed by
        // the grant ts it names — procDeliver answers it the moment the
        // matching grant lands.  (A stale flush from a previous ownership
        // carries an older grant ts and can never match.)
        p.deferredFlush[m.block] = m.grantTs;
        return;
      }
      // Nothing held and nothing pending: the home was already satisfied
      // through our Writeback; drop.
      return;
    }
    case proto::MsgType::WbAck:
      p.wbPending.erase(m.block);
      return;
    default:
      LCDC_EXPECT(false, "unexpected message at a tardis processor");
  }
}

// -- home side ---------------------------------------------------------------

void TardisSystem::homeHandle(const proto::Message& m) {
  const auto it = homes_.find(m.block);
  LCDC_EXPECT(it != homes_.end(), "message for unknown block");
  HomeEntry& e = it->second;
  switch (m.type) {
    case proto::MsgType::GetS:
    case proto::MsgType::Renew:
      homeGetS(e, m, m.type == proto::MsgType::Renew);
      return;
    case proto::MsgType::GetX:
      homeGetX(e, m);
      return;
    case proto::MsgType::Writeback:
      homeWriteback(e, m);
      return;
    case proto::MsgType::FlushData:
      homeFlushData(e, m);
      return;
    default:
      LCDC_EXPECT(false, "unexpected message at a tardis home");
  }
}

void TardisSystem::homeGetS(HomeEntry& e, const proto::Message& m,
                            bool isRenew) {
  switch (e.state) {
    case HomeState::Busy:
      sendNack(m.block, m.requester, NackKind::GetS_Busy, ReqType::GetShared);
      return;
    case HomeState::Exclusive:
      LCDC_EXPECT(e.owner != m.requester, "owner re-requesting a lease");
      e.state = HomeState::Busy;
      e.pendingRequester = m.requester;
      e.pendingIsGetX = false;
      e.pendingReqTs = m.reqTs;
      if (isRenew) stats_.leaseRenewals += 1;
      {
        proto::Message fr;
        fr.type = proto::MsgType::FlushReq;
        fr.block = m.block;
        fr.requester = m.requester;
        fr.grantTs = e.ownerGrantTs;
        send(home(m.block), e.owner, std::move(fr));
      }
      return;
    case HomeState::Idle:
    case HomeState::Shared:
      if (isRenew) stats_.leaseRenewals += 1;
      grantShared(e, m.block, m.requester, m.reqTs,
                  e.state == HomeState::Idle ? TxnKind::GetS_Idle
                                             : TxnKind::GetS_Shared);
      return;
  }
}

void TardisSystem::homeGetX(HomeEntry& e, const proto::Message& m) {
  switch (e.state) {
    case HomeState::Busy:
      sendNack(m.block, m.requester, NackKind::GetX_Busy,
               ReqType::GetExclusive);
      return;
    case HomeState::Exclusive:
      LCDC_EXPECT(e.owner != m.requester, "owner re-requesting exclusivity");
      e.state = HomeState::Busy;
      e.pendingRequester = m.requester;
      e.pendingIsGetX = true;
      e.pendingReqTs = m.reqTs;
      {
        proto::Message fr;
        fr.type = proto::MsgType::FlushReq;
        fr.block = m.block;
        fr.requester = m.requester;
        fr.grantTs = e.ownerGrantTs;
        send(home(m.block), e.owner, std::move(fr));
      }
      return;
    case HomeState::Idle:
    case HomeState::Shared:
      grantExclusive(e, m.block, m.requester, m.reqTs);
      return;
  }
}

void TardisSystem::homeWriteback(HomeEntry& e, const proto::Message& m) {
  const NodeId self = home(m.block);
  // The epoch match (grantTs == ownerGrantTs) is load-bearing: a stale
  // flush from an earlier ownership of the SAME node can linger in flight
  // and must not close an epoch it does not name — completing a later Busy
  // period early would hand out a second exclusive copy.
  if (e.state == HomeState::Exclusive && e.owner == m.requester &&
      m.grantTs == e.ownerGrantTs) {
    const proto::TxnInfo txn =
        serializeTxn(e, m.block, TxnKind::Wb_Exclusive, m.requester);
    const GlobalTime tsD = 1 + std::max(e.hc, m.flushTs);
    emitStamp(e, m.requester, txn, proto::StampRole::Downgrade, tsD, AState::X,
              AState::I);
    // The home takes the block back at the same instant: its A_I -> A_X
    // change is the transaction's unique upgrade (Claim 3(a) holds with
    // equality, as in the bus companion).
    emitStamp(e, self, txn, proto::StampRole::Upgrade, tsD, AState::I,
              AState::X);
    e.mem = m.data;
    e.state = HomeState::Idle;
    e.owner = kNoNode;
    e.ownerGrantTs = 0;
    sink_->onValueReceived(self, txn.id, m.block, e.mem);
    stats_.writebacks += 1;
  } else if (e.state == HomeState::Busy && e.owner == m.requester &&
             m.grantTs == e.ownerGrantTs) {
    // The owner's eviction raced our FlushReq; its written-back copy is the
    // flush data.  The pending transaction completes, and the later
    // FlushData resend (if any) arrives stale.
    homeCompleteBusy(e, m.block, m.flushTs, m.data);
  } else {
    stats_.staleWbAcks += 1;
  }
  proto::Message ack;
  ack.type = proto::MsgType::WbAck;
  ack.block = m.block;
  ack.requester = m.requester;
  send(self, m.requester, std::move(ack));
}

void TardisSystem::homeFlushData(HomeEntry& e, const proto::Message& m) {
  if (e.state == HomeState::Busy && e.owner == m.requester &&
      m.grantTs == e.ownerGrantTs) {
    homeCompleteBusy(e, m.block, m.flushTs, m.data);
  } else {
    // Stale: the racing Writeback got there first and completed the
    // transaction, or the flush names an earlier ownership epoch of the
    // same node (see homeWriteback).
    stats_.staleFlushDrops += 1;
  }
}

void TardisSystem::homeCompleteBusy(HomeEntry& e, BlockId block,
                                    GlobalTime flushTs,
                                    const BlockValue& data) {
  const NodeId self = home(block);
  const NodeId oldOwner = e.owner;
  const NodeId r = e.pendingRequester;
  const TxnKind kind =
      e.pendingIsGetX ? TxnKind::GetX_Exclusive : TxnKind::GetS_Exclusive;
  const proto::TxnInfo txn = serializeTxn(e, block, kind, r);
  const GlobalTime tsD = 1 + std::max(e.hc, flushTs);
  emitStamp(e, oldOwner, txn, proto::StampRole::Downgrade, tsD, AState::X,
            AState::I);
  // hc absorbed tsD, so the grant lands strictly above the flushed
  // owner's last write — Lemma 1's owner-to-owner handoff.
  const GlobalTime u = 1 + std::max(e.hc, e.pendingReqTs);
  e.mem = data;
  proto::Message reply;
  reply.block = block;
  reply.requester = r;
  reply.txn = txn.id;
  reply.serial = txn.serial;
  reply.grantTs = u;
  reply.data = e.mem;
  if (e.pendingIsGetX) {
    emitStamp(e, self, txn, proto::StampRole::Downgrade, u, AState::I,
              AState::I);
    emitStamp(e, r, txn, proto::StampRole::Upgrade, u, AState::I, AState::X);
    e.state = HomeState::Exclusive;
    e.owner = r;
    e.ownerGrantTs = u;
    reply.type = proto::MsgType::DataExclusive;
    stats_.exclusiveGrants += 1;
  } else {
    emitStamp(e, self, txn, proto::StampRole::Downgrade, u, AState::I,
              AState::S);
    emitStamp(e, r, txn, proto::StampRole::Upgrade, u, AState::I, AState::S);
    extendLease(e, u);
    e.sharers.clear();
    sharersInsert(e.sharers, r);
    e.state = HomeState::Shared;
    e.owner = kNoNode;
    e.ownerGrantTs = 0;
    reply.type = proto::MsgType::DataShared;
    reply.leaseEnd = e.rts;
    stats_.sharedGrants += 1;
  }
  e.pendingRequester = kNoNode;
  e.pendingReqTs = 0;
  send(self, r, std::move(reply));
  sink_->onValueReceived(r, txn.id, block, e.mem);
}

void TardisSystem::grantShared(HomeEntry& e, BlockId block, NodeId requester,
                               GlobalTime reqTs, TxnKind kind) {
  const NodeId self = home(block);
  const proto::TxnInfo txn = serializeTxn(e, block, kind, requester);
  const GlobalTime u = 1 + std::max(e.hc, reqTs);
  emitStamp(e, self, txn, proto::StampRole::Downgrade, u,
            e.state == HomeState::Idle ? AState::X : AState::S, AState::S);
  emitStamp(e, requester, txn, proto::StampRole::Upgrade, u,
            sharersContain(e.sharers, requester) ? AState::S : AState::I,
            AState::S);
  extendLease(e, u);
  sharersInsert(e.sharers, requester);
  e.state = HomeState::Shared;

  proto::Message reply;
  reply.type = proto::MsgType::DataShared;
  reply.block = block;
  reply.requester = requester;
  reply.txn = txn.id;
  reply.serial = txn.serial;
  reply.grantTs = u;
  reply.leaseEnd = e.rts;
  reply.data = e.mem;
  send(self, requester, std::move(reply));
  sink_->onValueReceived(requester, txn.id, block, e.mem);
  stats_.sharedGrants += 1;
}

void TardisSystem::grantExclusive(HomeEntry& e, BlockId block,
                                  NodeId requester, GlobalTime reqTs) {
  const NodeId self = home(block);
  const bool wasSharer = sharersContain(e.sharers, requester);
  const TxnKind kind = e.state == HomeState::Idle
                           ? TxnKind::GetX_Idle
                           : (wasSharer ? TxnKind::Upg_Shared
                                        : TxnKind::GetX_Shared);
  const proto::TxnInfo txn = serializeTxn(e, block, kind, requester);
  const GlobalTime u = 1 + std::max(e.hc, reqTs);
  // Every outstanding lease ends at the frontier: the leased readers'
  // S -> I downgrades are stamped just past it.  No message is sent to
  // them — this is the invalidation-free trick, and u > rts (the bump
  // Mutant::DropLeaseBump omits) is what keeps Claim 3(a)/Lemma 1 intact.
  for (const NodeId s : e.sharers) {
    if (s == requester) continue;
    emitStamp(e, s, txn, proto::StampRole::Downgrade, e.rts + 1, AState::S,
              AState::I);
  }
  emitStamp(e, self, txn, proto::StampRole::Downgrade, u,
            e.state == HomeState::Idle ? AState::X : AState::S, AState::I);
  emitStamp(e, requester, txn, proto::StampRole::Upgrade, u,
            wasSharer ? AState::S : AState::I, AState::X);
  e.sharers.clear();
  e.state = HomeState::Exclusive;
  e.owner = requester;
  e.ownerGrantTs = u;

  proto::Message reply;
  reply.type = proto::MsgType::DataExclusive;
  reply.block = block;
  reply.requester = requester;
  reply.txn = txn.id;
  reply.serial = txn.serial;
  reply.grantTs = u;
  reply.data = e.mem;
  send(self, requester, std::move(reply));
  sink_->onValueReceived(requester, txn.id, block, e.mem);
  stats_.exclusiveGrants += 1;
}

proto::TxnInfo TardisSystem::serializeTxn(HomeEntry& e, BlockId block,
                                          TxnKind kind, NodeId requester) {
  proto::TxnInfo info;
  info.id = nextTxn_.fetch_add(1, std::memory_order_relaxed);
  info.serial = ++e.serialCount;
  info.kind = kind;
  info.block = block;
  info.requester = requester;
  sink_->onSerialize(info);
  stats_.txnsSerialized += 1;
  return info;
}

void TardisSystem::emitStamp(HomeEntry& e, NodeId node,
                             const proto::TxnInfo& txn, proto::StampRole role,
                             GlobalTime ts, AState oldA, AState newA) {
  sink_->onStamp(node, txn.id, txn.serial, txn.block, role, ts, oldA, newA);
  if (ts > e.hc) e.hc = ts;
}

void TardisSystem::extendLease(HomeEntry& e, GlobalTime u) {
  const GlobalTime frontier = u + config_.proto.leaseLength;
  if (frontier > e.rts) e.rts = frontier;
  // The bump: the entry clock must clear the frontier so the next
  // exclusive grant is stamped above every outstanding lease.
  if (config_.proto.mutant != Mutant::DropLeaseBump && e.rts > e.hc) {
    e.hc = e.rts;
  }
}

void TardisSystem::sendNack(BlockId block, NodeId requester, NackKind kind,
                            ReqType req) {
  proto::Message m;
  m.type = proto::MsgType::Nack;
  m.block = block;
  m.requester = requester;
  m.nackKind = kind;
  m.nackedReq = req;
  send(home(block), requester, std::move(m));
  sink_->onNack(requester, block, kind);
  stats_.nacksSent += 1;
}

}  // namespace lcdc::tardis
