// Hot-loop performance counters for the simulate-and-verify path.
//
// Opt-in the same way as mc::McPerfCounters: the deterministic outputs of
// a run (trace, stats, verdicts) never read these, so they are safe to
// collect without perturbing seed-equivalence, and callers only print
// them when asked (`lcdc run --perf`, `lcdc campaign --perf`).  Wall time
// is measured by the caller around the run loop; the queue counters come
// from the network's calendar queue, which maintains them unconditionally
// (they are a handful of increments per event).
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <ostream>

#include "net/calendar_queue.hpp"

namespace lcdc::sim {

struct SimPerfCounters {
  std::uint64_t runs = 0;       ///< sub-runs aggregated into this counter
  std::uint64_t events = 0;     ///< simulator events processed
  std::uint64_t opsBound = 0;   ///< program operations bound
  std::uint64_t wallNanos = 0;  ///< wall-clock spent inside System::run
  net::CalendarStats queue;     ///< network calendar-queue op counters

  [[nodiscard]] double eventsPerSec() const {
    return wallNanos == 0 ? 0.0
                          : static_cast<double>(events) * 1e9 /
                                static_cast<double>(wallNanos);
  }

  /// Fraction of queue pushes that missed the wheel window and hit the
  /// overflow heap (should stay ~0 for a well-sized wheel).
  [[nodiscard]] double overflowRate() const {
    return queue.pushes == 0 ? 0.0
                             : static_cast<double>(queue.overflowPushes) /
                                   static_cast<double>(queue.pushes);
  }

  /// Record one completed sub-run.
  void note(std::uint64_t runEvents, std::uint64_t runOpsBound,
            std::uint64_t nanos, const net::CalendarStats& q) {
    runs += 1;
    events += runEvents;
    opsBound += runOpsBound;
    wallNanos += nanos;
    queue.pushes += q.pushes;
    queue.pops += q.pops;
    queue.overflowPushes += q.overflowPushes;
    queue.overflowPops += q.overflowPops;
    queue.maxDepth = std::max(queue.maxDepth, q.maxDepth);
    queue.poolNodes = std::max(queue.poolNodes, q.poolNodes);
  }

  void merge(const SimPerfCounters& o) {
    runs += o.runs;
    events += o.events;
    opsBound += o.opsBound;
    wallNanos += o.wallNanos;
    queue.pushes += o.queue.pushes;
    queue.pops += o.queue.pops;
    queue.overflowPushes += o.queue.overflowPushes;
    queue.overflowPops += o.queue.overflowPops;
    queue.maxDepth = std::max(queue.maxDepth, o.queue.maxDepth);
    queue.poolNodes = std::max(queue.poolNodes, o.queue.poolNodes);
  }

  void print(std::ostream& os) const {
    os << "sim perf: " << runs << " run(s), " << events << " events in "
       << static_cast<double>(wallNanos) * 1e-9 << " s ("
       << eventsPerSec() << " events/s), " << opsBound << " ops bound\n"
       << "  net queue: " << queue.pushes << " pushes, " << queue.pops
       << " pops, " << queue.overflowPushes << " overflow pushes ("
       << overflowRate() * 100.0 << "%), max depth " << queue.maxDepth
       << ", pool high-water " << queue.poolNodes << " nodes\n";
  }
};

}  // namespace lcdc::sim
