// The full target multiprocessor of Figure 1: processing nodes (processor +
// cache + network interface) and directory nodes (directory slice + memory)
// joined by an unordered interconnect, driven as a deterministic
// discrete-event simulation.
//
// Node numbering: processors are 0..P-1, directory nodes P..P+D-1 (the
// co-located configuration the paper mentions is just D == P with both
// roles sharing a chassis; keeping the id spaces disjoint keeps processor
// clocks and directory-entry clocks separate, as Section 3.2 requires).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/run_result.hpp"
#include "net/network.hpp"
#include "proto/directory.hpp"
#include "proto/events.hpp"
#include "sim/processor.hpp"
#include "workload/program.hpp"

namespace lcdc::sim {

// RunResult moved to common/run_result.hpp (it is part of the observer
// API: proto::EventSink::onRunEnd receives it); these aliases keep the
// historical sim:: spelling working.
using lcdc::RunResult;
using lcdc::toString;

class System {
 public:
  System(const SystemConfig& config, proto::EventSink& sink,
         net::Network::Mode mode = net::Network::Mode::RandomLatency);

  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] Processor& processor(NodeId i);
  [[nodiscard]] proto::DirectoryController& directory(std::size_t idx);
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] NodeId home(BlockId b) const { return homeOf(b, config_); }
  [[nodiscard]] net::Tick now() const { return now_; }

  /// Lvalue programs are copy-assigned into the processor's retained
  /// buffer (no allocation at steady state); rvalues are moved.
  void setProgram(NodeId proc, const workload::Program& program);
  void setProgram(NodeId proc, workload::Program&& program);

  /// Rewind the whole system to the freshly constructed state under a new
  /// seed, in place: same topology and network mode, every component back
  /// at time zero with re-derived RNG streams (identical to constructing
  /// System with `seed`), but all container capacity, pool slabs, and
  /// envelope free lists retained.  Campaign workers reuse one System per
  /// thread across thousands of sub-runs this way; a reset-then-run is
  /// byte-identical to a construct-then-run with the same seed.
  void reset(std::uint64_t seed);

  /// Kick every processor once (issue the first round of requests).
  void start();

  /// Deliver the next due event (timed modes).  False when nothing is
  /// pending.
  bool stepEvent();

  /// Run to quiescence / deadlock / livelock, or until maxEvents.
  RunResult run(std::uint64_t maxEvents = 200'000'000);

  // -- manual-mode scripting (tests, scripted scenarios) ---------------------

  /// Deliver the i-th pending message (Manual network mode), dispatching it
  /// and letting the receiving processor progress.
  void deliverManual(std::size_t idx);
  /// Deliver the first pending message satisfying `pred`; false if none.
  bool deliverManualFirst(
      const std::function<bool(const net::Envelope&)>& pred);
  /// Let one processor progress (bind ops / issue requests) right now.
  void kick(NodeId proc);
  /// Advance simulated time (retry pacing in manual mode).
  void advanceTime(net::Tick ticks);

  // -- model-checker replay hooks ---------------------------------------------
  // Drive the protocol directly, bypassing programs: the MC replay bridge
  // (mc/replay.hpp) re-executes an exploration schedule step by step.

  /// Issue a coherence request from `proc` right now (no retry pacing).
  void injectRequest(NodeId proc, BlockId block, ReqType req);
  /// Evict: write back a read-write line / put-shared a read-only line.
  void injectEvict(NodeId proc, BlockId block);
  /// Bind one operation directly when the cache permits (emitting it to
  /// the sink); false when the line has no permission.
  bool injectBind(NodeId proc, BlockId block, OpKind kind, WordIdx word,
                  Word value);

  // -- state inspection -------------------------------------------------------

  [[nodiscard]] bool allProgramsDone() const;
  [[nodiscard]] bool quiescent() const;
  [[nodiscard]] std::uint64_t totalOpsBound() const;
  [[nodiscard]] proto::DirStats aggregateDirStats() const;
  [[nodiscard]] proto::CacheStats aggregateCacheStats() const;

 private:
  RunResult runLoop(std::uint64_t maxEvents);
  void dispatch(const net::Envelope& env);
  void flush(NodeId src, proto::Outbox& out);
  void progress(NodeId proc);

  struct Timer {
    net::Tick at;
    NodeId proc;
    friend bool operator>(const Timer& a, const Timer& b) {
      return a.at != b.at ? a.at > b.at : a.proc > b.proc;
    }
  };

  SystemConfig config_;
  proto::EventSink* sink_;
  Rng rng_;
  net::Network net_;
  proto::TxnCounter txns_;
  std::vector<std::unique_ptr<Processor>> procs_;
  std::vector<std::unique_ptr<proto::DirectoryController>> dirs_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  net::Tick now_ = 0;
  /// Scratch outbox reused across every dispatch/progress so spill
  /// capacity (bursts wider than the inline entries) is paid for once.
  proto::Outbox outbox_;
};

}  // namespace lcdc::sim
