// A simulated in-order processor (Section 2.4 behaviour requirements).
//
// The processor walks its program in order.  For each step it either binds
// the operation immediately (permission in cache), or issues the coherence
// request that will grant permission and stalls until that transaction
// completes.  Binding happens synchronously inside the cache's completion
// callback — before buffered invalidations are applied — implementing the
// rule that "upon completion of T, OP is bound to T, even if an
// invalidation arrived in the meantime".  Because binding is strictly in
// program order in real time, the 4th-bullet requirement of Section 2.4
// holds by construction.
//
// NACKed requests are retried after a configurable (jittered) delay; the
// retried request "takes into account the current state of the block" — in
// particular an Upgrade NACKed because the line got invalidated retries as
// a Get-Exclusive (transaction 10's required behaviour).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "clock/lamport.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "proto/cache.hpp"
#include "workload/program.hpp"

namespace lcdc::sim {

/// Per-processor statistics.
struct ProcStats {
  std::uint64_t loadsBound = 0;
  std::uint64_t storesBound = 0;
  std::uint64_t retriesIssued = 0;
  std::uint64_t capacityEvictions = 0;
  std::uint64_t prefetchesIssued = 0;
  std::uint64_t loadsForwarded = 0;
  /// Longest run of consecutive NACKs for a single block before the
  /// request finally completed — a starvation indicator (Section 5 future
  /// work: reasoning about starvation in NACK-based protocols).
  std::uint64_t maxNackStreak = 0;
};

class Processor final : public proto::CacheClient {
 public:
  Processor(NodeId id, const SystemConfig& config, proto::EventSink& sink,
            Rng rng);

  /// Copy-assigns into the retained program buffer: a reused processor
  /// re-running programs of similar length allocates nothing here.
  void setProgram(const workload::Program& program);
  void setProgram(workload::Program&& program);

  /// Return to the freshly constructed state with a new RNG stream, in
  /// place: caches, pacing state, and the store buffer revert, but every
  /// container keeps its capacity so a reused processor runs alloc-free.
  void reset(Rng rng);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] bool done() const {
    return pc_ >= program_.steps.size() && storeBuffer_.empty();
  }
  [[nodiscard]] std::size_t pc() const { return pc_; }
  [[nodiscard]] proto::CacheController& cache() { return cache_; }
  [[nodiscard]] const proto::CacheController& cache() const { return cache_; }
  [[nodiscard]] const ProcStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t opsBound() const {
    return stats_.loadsBound + stats_.storesBound;
  }

  /// Deliver a protocol message to this node's cache.
  void deliver(const proto::Message& m, proto::Outbox& out);

  /// Bind one operation outside any program (MC counterexample replay).
  /// Op indices continue from the operations bound so far; false when the
  /// cache has no permission.
  bool bindDirect(BlockId block, OpKind kind, WordIdx word, Word value);

  /// Advance: bind every immediately bindable step and issue at most the
  /// request needed by the current step.  `now` is the simulated time (for
  /// retry pacing).  Returns the tick at which the processor wants to be
  /// woken if it is pacing a retry (kNever otherwise).
  net::Tick tryProgress(net::Tick now, proto::Outbox& out);

  // -- proto::CacheClient ----------------------------------------------------
  void onComplete(BlockId block, ReqType req) override;
  void onNacked(BlockId block, ReqType req, NackKind kind) override;
  void onLineUnblocked(BlockId block) override;

  [[nodiscard]] std::size_t storeBufferDepthUsed() const {
    return storeBuffer_.size();
  }

 private:
  /// A store parked in the TSO store buffer, waiting to retire.
  struct BufferedStore {
    BlockId block;
    WordIdx word;
    Word value;
    std::uint64_t progIdx;
  };

  /// Bind program steps while the cache allows it (no messages involved).
  /// In TSO mode this also enqueues stores into the store buffer and
  /// forwards loads from it.
  void bindEligible();
  /// Retire store-buffer entries (oldest first) whose lines are writable.
  /// No messages involved — callable from completion callbacks, which is
  /// what preserves the Section 2.4 bind-at-completion rule for buffered
  /// stores.
  void drainStoreBufferBinds();
  /// Issue the coherence request the store-buffer head needs, if any.
  /// Returns the wake tick when pacing a retry.
  net::Tick progressStoreBuffer(net::Tick now, proto::Outbox& out);
  /// The program-counter walk of tryProgress (evictions, prefetches, and
  /// the request needed by the current step).
  net::Tick progressProgram(net::Tick now, proto::Outbox& out);
  void emitOp(OpKind kind, BlockId block, WordIdx word, Word value,
              std::uint64_t progIdx, const proto::BindResult& bound,
              bool forwarded);
  void maybeCapacityEvict(BlockId incoming, proto::Outbox& out);

  NodeId id_;
  SystemConfig config_;
  proto::EventSink* sink_;
  proto::CacheController cache_;
  clk::OpStamper stamper_;
  Rng rng_;
  workload::Program program_;
  std::size_t pc_ = 0;
  ProcStats stats_;
  /// Per-block earliest next request time (retry pacing after a NACK).
  std::unordered_map<BlockId, net::Tick> notBefore_;
  /// Set when a NACK asked us to retry (so tryProgress re-issues).
  bool wantRetry_ = false;
  /// NACK bookkeeping captured in the callback, applied by tryProgress
  /// (which knows the simulated time).
  std::optional<BlockId> nackedBlock_;
  net::Tick pendingDelay_ = 0;
  /// TSO store buffer (empty/unused when config.storeBufferDepth == 0).
  std::deque<BufferedStore> storeBuffer_;
  /// Consecutive NACKs per block (starvation tracking).
  std::unordered_map<BlockId, std::uint64_t> nackStreak_;
};

/// Home-node map: blocks are interleaved across directory nodes, which are
/// numbered after the processors (processor ids 0..P-1, directory ids
/// P..P+D-1).  Keeping the id spaces disjoint keeps each directory entry's
/// logical clock distinct from any processor clock, as Section 3.2
/// prescribes.
[[nodiscard]] inline NodeId homeOf(BlockId block, const SystemConfig& cfg) {
  return cfg.numProcessors + static_cast<NodeId>(block % cfg.numDirectories);
}

}  // namespace lcdc::sim
