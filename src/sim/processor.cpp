#include "sim/processor.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace lcdc::sim {

Processor::Processor(NodeId id, const SystemConfig& config,
                     proto::EventSink& sink, Rng rng)
    : id_(id), config_(config), sink_(&sink),
      cache_(id, config.proto, sink, *this), stamper_(id), rng_(rng) {}

void Processor::setProgram(const workload::Program& program) {
  // Element-wise assignment reuses the steps vector's capacity, unlike
  // copy-construct-then-move (which would allocate a fresh buffer every
  // sub-run — the old campaign hot-loop leak).
  program_.steps.assign(program.steps.begin(), program.steps.end());
  pc_ = 0;
}

void Processor::setProgram(workload::Program&& program) {
  program_ = std::move(program);
  pc_ = 0;
}

void Processor::reset(Rng rng) {
  cache_.reset();
  stamper_.reset();
  rng_ = rng;
  pc_ = 0;
  stats_ = ProcStats{};
  // Zero in place: a 0 entry behaves exactly like an absent one (no wait,
  // no streak), and keeping the nodes means a reused processor re-runs
  // the same program without hash-map churn.
  for (auto& [b, t] : notBefore_) t = 0;
  for (auto& [b, n] : nackStreak_) n = 0;
  wantRetry_ = false;
  nackedBlock_.reset();
  pendingDelay_ = 0;
  storeBuffer_.clear();
}

void Processor::deliver(const proto::Message& m, proto::Outbox& out) {
  cache_.handle(m, out);
}

bool Processor::bindDirect(BlockId block, OpKind kind, WordIdx word,
                           Word value) {
  if (!cache_.canBind(block, kind)) return false;
  const proto::BindResult r = cache_.bind(block, kind, word, value);
  emitOp(kind, block, word, r.value, opsBound(), r, /*forwarded=*/false);
  return true;
}

void Processor::onComplete(BlockId block, ReqType req) {
  nackStreak_[block] = 0;
  // Section 2.4: operations whose transaction just completed bind *now*,
  // before the cache applies anything it buffered.
  bindEligible();
}

void Processor::onNacked(BlockId block, ReqType req, NackKind kind) {
  const std::uint64_t streak = ++nackStreak_[block];
  stats_.maxNackStreak = std::max(stats_.maxNackStreak, streak);
  const net::Tick delay =
      config_.retryDelay + rng_.uniform(0, config_.retryDelay);
  // tryProgress consults notBefore_ against the current simulated time.
  pendingDelay_ = delay;
  nackedBlock_ = block;
  wantRetry_ = true;
}

void Processor::onLineUnblocked(BlockId block) { wantRetry_ = true; }

void Processor::emitOp(OpKind kind, BlockId block, WordIdx word, Word value,
                       std::uint64_t progIdx, const proto::BindResult& bound,
                       bool forwarded) {
  proto::OpRecord op;
  op.proc = id_;
  op.progIdx = progIdx;
  op.kind = kind;
  op.block = block;
  op.word = word;
  op.value = value;
  op.boundTxn = bound.boundTxn;
  op.boundSerial = bound.boundSerial;
  op.forwarded = forwarded;
  op.ts = stamper_.stamp(bound.txnTs);
  sink_->onOperation(op);
  if (kind == OpKind::Load) {
    stats_.loadsBound += 1;
  } else {
    stats_.storesBound += 1;
  }
}

void Processor::drainStoreBufferBinds() {
  // Retire in FIFO order only (TSO preserves store->store order); stop at
  // the first store whose line is not writable yet.
  while (!storeBuffer_.empty()) {
    const BufferedStore& head = storeBuffer_.front();
    if (!cache_.canBind(head.block, OpKind::Store)) return;
    const proto::BindResult r =
        cache_.bind(head.block, OpKind::Store, head.word, head.value);
    emitOp(OpKind::Store, head.block, head.word, head.value, head.progIdx, r,
           /*forwarded=*/false);
    storeBuffer_.pop_front();
  }
}

void Processor::bindEligible() {
  drainStoreBufferBinds();
  const bool tso = config_.storeBufferDepth > 0;
  while (pc_ < program_.steps.size()) {
    const workload::Step& step = program_.steps[pc_];
    if (step.kind != workload::StepKind::Load &&
        step.kind != workload::StepKind::Store) {
      // Evictions and prefetches are handled by tryProgress (they may emit
      // messages).
      return;
    }
    if (tso && step.kind == workload::StepKind::Store) {
      if (storeBuffer_.size() >= config_.storeBufferDepth) return;  // full
      storeBuffer_.push_back(
          BufferedStore{step.block, step.word, step.storeValue, pc_});
      ++pc_;
      drainStoreBufferBinds();  // retire immediately when possible
      continue;
    }
    if (tso && step.kind == workload::StepKind::Load) {
      // TSO load forwarding: the youngest buffered store to the same word
      // supplies the value without touching the coherence protocol.
      const BufferedStore* hit = nullptr;
      for (const BufferedStore& b : storeBuffer_) {
        if (b.block == step.block && b.word == step.word) hit = &b;
      }
      if (hit != nullptr) {
        emitOp(OpKind::Load, step.block, step.word, hit->value, pc_,
               proto::BindResult{}, /*forwarded=*/true);
        stats_.loadsForwarded += 1;
        ++pc_;
        continue;
      }
    }
    const OpKind kind =
        step.kind == workload::StepKind::Load ? OpKind::Load : OpKind::Store;
    if (!cache_.canBind(step.block, kind)) return;
    const proto::BindResult r =
        cache_.bind(step.block, kind, step.word, step.storeValue);
    emitOp(kind, step.block, step.word, r.value, pc_, r,
           /*forwarded=*/false);
    ++pc_;
  }
}

net::Tick Processor::progressStoreBuffer(net::Tick now, proto::Outbox& out) {
  drainStoreBufferBinds();
  if (storeBuffer_.empty()) return net::kNever;
  const BufferedStore& head = storeBuffer_.front();
  if (cache_.requestBlocked(head.block)) return net::kNever;  // in flight
  const auto nb = notBefore_.find(head.block);
  if (nb != notBefore_.end() && now < nb->second) return nb->second;
  const CacheState cs = cache_.state(head.block);
  const ReqType req = cs == CacheState::ReadOnly ? ReqType::Upgrade
                                                 : ReqType::GetExclusive;
  maybeCapacityEvict(head.block, out);
  if (cache_.requestBlocked(head.block)) return net::kNever;
  cache_.issueRequest(head.block, req, homeOf(head.block, config_), out);
  return net::kNever;
}

net::Tick Processor::tryProgress(net::Tick now, proto::Outbox& out) {
  if (wantRetry_ && nackedBlock_.has_value()) {
    notBefore_[*nackedBlock_] = now + pendingDelay_;
    nackedBlock_.reset();
    stats_.retriesIssued += 1;
  }
  wantRetry_ = false;

  bindEligible();
  net::Tick wake = progressProgram(now, out);
  if (config_.storeBufferDepth > 0) {
    // Run AFTER the program loop: walking the program may have refilled the
    // store buffer (stores enqueue without stalling), and the new head may
    // need a coherence request right now.
    wake = std::min(wake, progressStoreBuffer(now, out));
  }
  return wake;
}

net::Tick Processor::progressProgram(net::Tick now, proto::Outbox& out) {
  net::Tick wake = net::kNever;
  while (pc_ < program_.steps.size()) {
    const workload::Step& step = program_.steps[pc_];

    if (step.kind == workload::StepKind::Evict) {
      if (cache_.requestBlocked(step.block)) return wake;  // wait
      const CacheState cs = cache_.state(step.block);
      if (cs == CacheState::ReadWrite) {
        cache_.writeback(step.block, homeOf(step.block, config_), out);
        return wake;  // wait for the ack before moving on
      }
      if (cs == CacheState::ReadOnly && config_.proto.putSharedEnabled) {
        cache_.putShared(step.block);
      }
      ++pc_;  // not cached (or read-only without the extension): no-op
      bindEligible();
      continue;
    }

    if (step.kind == workload::StepKind::PrefetchShared ||
        step.kind == workload::StepKind::PrefetchExclusive) {
      // Section 2.3: coherence requests decoupled from processor events.
      // Prefetches are hints: issue the request if the line is free and the
      // permission is missing, then move on WITHOUT stalling; a NACKed
      // prefetch simply dies (the demand access re-requests later).
      const bool wantWrite =
          step.kind == workload::StepKind::PrefetchExclusive;
      const CacheState cs = cache_.state(step.block);
      const bool satisfied =
          cs == CacheState::ReadWrite ||
          (!wantWrite && cs == CacheState::ReadOnly);
      if (!cache_.requestBlocked(step.block) && !satisfied) {
        const auto nb = notBefore_.find(step.block);
        if (nb == notBefore_.end() || now >= nb->second) {
          maybeCapacityEvict(step.block, out);
          if (!cache_.requestBlocked(step.block)) {
            const ReqType req = !wantWrite ? ReqType::GetShared
                                : cs == CacheState::ReadOnly
                                    ? ReqType::Upgrade
                                    : ReqType::GetExclusive;
            cache_.issueRequest(step.block, req,
                                homeOf(step.block, config_), out);
            stats_.prefetchesIssued += 1;
          }
        }
      }
      ++pc_;
      bindEligible();
      continue;
    }

    const OpKind kind =
        step.kind == workload::StepKind::Load ? OpKind::Load : OpKind::Store;
    if (config_.storeBufferDepth > 0 && kind == OpKind::Store) {
      // The store buffer is full (else bindEligible would have consumed the
      // step); it drains through progressStoreBuffer above.
      return wake;
    }
    if (config_.storeBufferDepth > 0 && kind == OpKind::Load) {
      // Re-run forwarding/binding; a racing drain may have freed the way.
      const std::size_t before = pc_;
      bindEligible();
      if (pc_ != before) continue;
    }
    if (cache_.canBind(step.block, kind)) {
      bindEligible();
      continue;
    }
    if (cache_.requestBlocked(step.block)) return wake;  // transaction pending

    // Retry pacing after a NACK.
    const auto nb = notBefore_.find(step.block);
    if (nb != notBefore_.end() && now < nb->second) {
      return std::min(wake, nb->second);
    }

    // Decide the request from the block's *current* state (Section 2.4).
    const CacheState cs = cache_.state(step.block);
    ReqType req;
    if (kind == OpKind::Load) {
      LCDC_EXPECT(cs == CacheState::Invalid, "load stall with permission");
      req = ReqType::GetShared;
    } else if (cs == CacheState::ReadOnly) {
      req = ReqType::Upgrade;
    } else {
      LCDC_EXPECT(cs == CacheState::Invalid, "store stall with permission");
      req = ReqType::GetExclusive;
    }
    maybeCapacityEvict(step.block, out);
    if (cache_.requestBlocked(step.block)) return wake;  // eviction raced us
    cache_.issueRequest(step.block, req, homeOf(step.block, config_), out);
    return wake;  // stall until completion
  }
  return wake;
}

void Processor::maybeCapacityEvict(BlockId incoming, proto::Outbox& out) {
  if (config_.cacheCapacity == 0) return;
  if (cache_.linesHeld() < config_.cacheCapacity) return;
  // Prefer dropping a read-only line (Put-Shared when available); fall back
  // to writing back a read-write line.  The victim must not be the block we
  // are about to request and must not have an outstanding transaction.
  auto pick = [&](CacheState s) -> std::optional<BlockId> {
    auto candidates = cache_.blocksInState(s);
    if (const auto it =
            std::find(candidates.begin(), candidates.end(), incoming);
        it != candidates.end()) {
      candidates.erase(it);
    }
    if (candidates.empty()) return std::nullopt;
    return candidates[rng_.uniform(0, candidates.size() - 1)];
  };
  if (config_.proto.putSharedEnabled) {
    if (const auto b = pick(CacheState::ReadOnly)) {
      cache_.putShared(*b);
      stats_.capacityEvictions += 1;
      return;
    }
  }
  if (const auto b = pick(CacheState::ReadWrite)) {
    cache_.writeback(*b, homeOf(*b, config_), out);
    stats_.capacityEvictions += 1;
  }
}

}  // namespace lcdc::sim
