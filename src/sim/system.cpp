#include "sim/system.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/expect.hpp"

namespace lcdc::sim {

System::System(const SystemConfig& config, proto::EventSink& sink,
               net::Network::Mode mode)
    : config_(config), sink_(&sink), rng_(config.seed),
      net_(mode, Rng(config.seed ^ 0x6E657477'6F726BULL), config.minLatency,
           config.maxLatency) {
  LCDC_EXPECT(config_.numProcessors >= 1, "need at least one processor");
  LCDC_EXPECT(config_.numDirectories >= 1, "need at least one directory");
  LCDC_EXPECT(config_.proto.wordsPerBlock >= 1, "blocks need at least 1 word");

  procs_.reserve(config_.numProcessors);
  for (NodeId p = 0; p < config_.numProcessors; ++p) {
    procs_.push_back(
        std::make_unique<Processor>(p, config_, sink, rng_.fork()));
  }
  dirs_.reserve(config_.numDirectories);
  for (NodeId d = 0; d < config_.numDirectories; ++d) {
    dirs_.push_back(std::make_unique<proto::DirectoryController>(
        config_.numProcessors + d, config_.proto, sink, txns_));
  }
  for (BlockId b = 0; b < config_.numBlocks; ++b) {
    dirs_[b % config_.numDirectories]->addBlock(
        b, BlockValue(config_.proto.wordsPerBlock, 0));
  }
}

void System::reset(std::uint64_t seed) {
  // Mirror the constructor's RNG derivations exactly: the master stream
  // seeds from `seed`, the network from seed ^ "network", and each
  // processor forks from the master in id order — so a reset-then-run is
  // byte-identical to constructing a fresh System with this seed.
  config_.seed = seed;
  rng_ = Rng(seed);
  net_.reset(Rng(seed ^ 0x6E657477'6F726BULL));
  txns_.next.store(1, std::memory_order_relaxed);
  for (auto& p : procs_) p->reset(rng_.fork());
  for (auto& d : dirs_) d->reset();
  while (!timers_.empty()) timers_.pop();
  // A run aborted by a thrown invariant can leave messages in the scratch
  // outbox; drop them so the next run starts clean.
  outbox_.clear();
  now_ = 0;
}

Processor& System::processor(NodeId i) {
  LCDC_EXPECT(i < procs_.size(), "processor index out of range");
  return *procs_[i];
}

proto::DirectoryController& System::directory(std::size_t idx) {
  LCDC_EXPECT(idx < dirs_.size(), "directory index out of range");
  return *dirs_[idx];
}

void System::setProgram(NodeId proc, const workload::Program& program) {
  processor(proc).setProgram(program);
}

void System::setProgram(NodeId proc, workload::Program&& program) {
  processor(proc).setProgram(std::move(program));
}

void System::start() {
  for (NodeId p = 0; p < procs_.size(); ++p) progress(p);
}

void System::flush(NodeId src, proto::Outbox& out) {
  for (auto& entry : out.msgs) {
    (void)net_.send(src, entry.dst, now_, std::move(entry.msg));
  }
  out.clear();
}

void System::progress(NodeId proc) {
  Processor& p = *procs_[proc];
  proto::Outbox& out = outbox_;
  const net::Tick wake = p.tryProgress(now_, out);
  flush(proc, out);
  if (wake != net::kNever) timers_.push(Timer{wake, proc});
}

void System::dispatch(const net::Envelope& env) {
  proto::Outbox& out = outbox_;
  if (env.dst < config_.numProcessors) {
    procs_[env.dst]->deliver(env.msg, out);
    flush(env.dst, out);
    progress(env.dst);
  } else {
    const std::size_t d = env.dst - config_.numProcessors;
    LCDC_EXPECT(d < dirs_.size(), "message addressed to unknown node");
    dirs_[d]->handle(env.msg, out);
    flush(env.dst, out);
  }
}

bool System::stepEvent() {
  const net::Tick tNet = net_.empty() ? net::kNever : net_.nextDeliveryTime();
  net::Tick tTimer = net::kNever;
  while (!timers_.empty() && timers_.top().at <= now_) {
    // Stale timers (the processor already progressed) fire immediately.
    const Timer t = timers_.top();
    timers_.pop();
    progress(t.proc);
    return true;
  }
  if (!timers_.empty()) tTimer = timers_.top().at;
  if (tNet == net::kNever && tTimer == net::kNever) return false;

  if (tNet <= tTimer) {
    now_ = std::max(now_, tNet);
    dispatch(net_.popNext());
  } else {
    const Timer t = timers_.top();
    timers_.pop();
    now_ = std::max(now_, t.at);
    progress(t.proc);
  }
  return true;
}

RunResult System::run(std::uint64_t maxEvents) {
  sink_->onRunBegin(config_);
  RunResult result = runLoop(maxEvents);
  sink_->onRunEnd(result);
  return result;
}

RunResult System::runLoop(std::uint64_t maxEvents) {
  RunResult result;
  std::uint64_t lastBound = totalOpsBound();
  std::uint64_t lastBoundEvent = 0;
  // Generous no-binding-progress window: NACK retry storms legitimately
  // take many events, but an unbounded storm with zero bindings is a
  // livelock.
  const std::uint64_t window = 400'000 + 2'000ull * config_.numProcessors;

  start();
  while (result.eventsProcessed < maxEvents) {
    if (!stepEvent()) {
      result.endTime = now_;
      result.opsBound = totalOpsBound();
      if (allProgramsDone()) {
        LCDC_EXPECT(quiescent(), "no events pending but not quiescent");
        result.outcome = RunResult::Outcome::Quiescent;
      } else {
        result.outcome = RunResult::Outcome::Deadlock;
        std::ostringstream os;
        os << "no deliverable events; stalled processors:";
        for (const auto& p : procs_) {
          if (!p->done()) os << ' ' << p->id() << "@pc=" << p->pc();
        }
        result.detail = os.str();
      }
      return result;
    }
    result.eventsProcessed += 1;
    if ((result.eventsProcessed & 0xFFF) == 0) {
      const std::uint64_t bound = totalOpsBound();
      if (bound != lastBound) {
        lastBound = bound;
        lastBoundEvent = result.eventsProcessed;
      } else if (!allProgramsDone() &&
                 result.eventsProcessed - lastBoundEvent > window) {
        result.outcome = RunResult::Outcome::Livelock;
        result.endTime = now_;
        result.opsBound = bound;
        result.detail = "no operation bound within the progress window";
        return result;
      }
    }
  }
  result.endTime = now_;
  result.opsBound = totalOpsBound();
  return result;
}

void System::deliverManual(std::size_t idx) {
  now_ += 1;
  dispatch(net_.deliverIndex(idx));
}

bool System::deliverManualFirst(
    const std::function<bool(const net::Envelope&)>& pred) {
  const auto& pending = net_.pending();
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pred(pending[i])) {
      deliverManual(i);
      return true;
    }
  }
  return false;
}

void System::kick(NodeId proc) { progress(proc); }

void System::injectRequest(NodeId proc, BlockId block, ReqType req) {
  proto::Outbox& out = outbox_;
  processor(proc).cache().issueRequest(block, req, home(block), out);
  flush(proc, out);
}

void System::injectEvict(NodeId proc, BlockId block) {
  proto::CacheController& cache = processor(proc).cache();
  proto::Outbox& out = outbox_;
  const CacheState cs = cache.state(block);
  if (cs == CacheState::ReadWrite) {
    cache.writeback(block, home(block), out);
  } else if (cs == CacheState::ReadOnly && config_.proto.putSharedEnabled) {
    cache.putShared(block);
  }
  flush(proc, out);
}

bool System::injectBind(NodeId proc, BlockId block, OpKind kind, WordIdx word,
                        Word value) {
  return processor(proc).bindDirect(block, kind, word, value);
}

void System::advanceTime(net::Tick ticks) {
  now_ += ticks;
  for (NodeId p = 0; p < procs_.size(); ++p) progress(p);
}

bool System::allProgramsDone() const {
  return std::all_of(procs_.begin(), procs_.end(),
                     [](const auto& p) { return p->done(); });
}

bool System::quiescent() const {
  if (!net_.empty()) return false;
  for (const auto& p : procs_) {
    if (!p->cache().quiescent()) return false;
  }
  for (const auto& d : dirs_) {
    if (!d->quiescent()) return false;
  }
  return true;
}

std::uint64_t System::totalOpsBound() const {
  std::uint64_t n = 0;
  for (const auto& p : procs_) n += p->opsBound();
  return n;
}

proto::DirStats System::aggregateDirStats() const {
  proto::DirStats s;
  for (const auto& d : dirs_) s.merge(d->stats());
  return s;
}

proto::CacheStats System::aggregateCacheStats() const {
  proto::CacheStats s;
  for (const auto& p : procs_) {
    const proto::CacheStats& c = p->cache().stats();
    s.requestsIssued += c.requestsIssued;
    s.nacksReceived += c.nacksReceived;
    s.putShareds += c.putShareds;
    s.writebacks += c.writebacks;
    s.invalidationsApplied += c.invalidationsApplied;
    s.invalidationsBuffered += c.invalidationsBuffered;
    s.forwardsBuffered += c.forwardsBuffered;
    s.staleInvAcks += c.staleInvAcks;
    s.deadlocksResolved += c.deadlocksResolved;
    s.fwdsDropped += c.fwdsDropped;
    s.invsDropped += c.invsDropped;
  }
  return s;
}

}  // namespace lcdc::sim
