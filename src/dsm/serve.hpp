// The DSM serving runtimes behind `lcdc serve`.
//
// Two runtimes drive the same NodeEngine/CertifierEngine byte-for-byte:
//
//  * serveMem — deterministic loopback: every node plus the certifier in
//    one thread, frames routed through in-memory queues by a fixed
//    round-robin schedule, the load driver embedded.  Fixed seeds give a
//    fixed merged event stream, verdict and per-node counters — the mode
//    ctest and the determinism suite run.
//
//  * serveTcp — the real thing: one thread per node and one for the
//    certifier, nonblocking TCP loopback sockets (transport.hpp), frames
//    on the wire, load driven by a separate `lcdc load` process.  The
//    merged event stream is still deterministic for deterministic node
//    streams (the certifier sorts by (clock, node, seq)), but node
//    streams themselves depend on arrival timing — TCP mode is the
//    robustness/throughput path, mem mode the reproducibility path.
//
// Shutdown discipline (both modes): stop accepting queued program chunks,
// drain the protocol to quiescence (every in-flight transaction
// completes), then FIN the event streams and take the final checker
// verdict.  Draining first is what keeps the verdict honest — the
// checkers' end-of-stream claims assume every serialized transaction
// completed, which a mid-flight cutoff would violate spuriously.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "dsm/certifier.hpp"
#include "dsm/node.hpp"
#include "proto/events.hpp"
#include "verify/checkers.hpp"
#include "workload/generators.hpp"

namespace lcdc::dsm {

struct ServeConfig {
  /// Shape of the served system.  numProcessors == numDirectories ==
  /// `nodes` (one co-located processor + home shard per node).
  SystemConfig system;
  std::uint32_t nodes = 3;
  /// Certifier port; node i listens on port+1+i.  0 = ephemeral ports
  /// everywhere (in-process tests; the bound ports are in ServePorts).
  std::uint16_t port = 0;
  /// Exit after the first completed load session instead of serving until
  /// SIGINT (CI smoke and benches).
  bool once = false;
  std::uint64_t heartbeatEveryPumps = 16;
  /// Reap client connections (not in an active session) silent this long.
  std::uint64_t idleTimeoutMs = 30'000;
  /// SIGINT: maximum wait for the protocol to drain before FINning with
  /// work still in flight (the verdict is then flagged undrained).
  std::uint64_t drainTimeoutMs = 10'000;
  /// Optional sink archiving the certifier's merged stream (borrowed).
  proto::EventSink* archive = nullptr;
  /// Optional: set (release) by serveTcp once the ServePorts out-param is
  /// fully written — lets a caller on another thread wait for the bound
  /// ports race-free (in-process tests).
  std::atomic<bool>* portsReady = nullptr;
};

/// The embedded load of serveMem (TCP mode loads via `lcdc load`).
struct MemLoadSpec {
  workload::Kind kind = workload::Kind::Uniform;
  std::uint64_t totalOps = 10'000;  ///< across all nodes
  std::uint64_t seed = 1;           ///< workload master seed
  std::uint32_t chunkSteps = 1024;  ///< program steps per chunk
  std::uint32_t window = 2;         ///< outstanding chunks per node
};

struct ServeResult {
  verify::CheckReport report;
  std::uint64_t opsBound = 0;
  std::vector<NodeStats> nodeStats;
  CertifierStats certStats;
  std::uint64_t dialRetries = 0;  ///< failed connect attempts, all dials
  /// False when a SIGINT drain timed out: streams were FINned with work
  /// in flight, so violations may be shutdown artifacts.
  bool drained = true;
  double seconds = 0;  ///< wall clock, serve start to verdict

  [[nodiscard]] bool ok() const { return report.ok() && drained; }
};

/// Bound listening ports of a TCP serve (== the configured ones unless
/// ephemeral).  `lcdc load` derives node ports the same way: certifier on
/// `cert`, node i on `node[i]`.
struct ServePorts {
  std::uint16_t cert = 0;
  std::vector<std::uint16_t> node;
};

/// Deterministic single-threaded loopback serve with embedded load.
[[nodiscard]] ServeResult serveMem(const ServeConfig& cfg,
                                   const MemLoadSpec& load);

/// TCP serve.  Binds all listeners up front (publishing bound ports via
/// `ports`, which may be null), serves until the load session completes
/// (`cfg.once`) or `*stop` becomes nonzero (SIGINT handler sets it; may
/// be null), then drains, FINs and returns the verdict.
[[nodiscard]] ServeResult serveTcp(const ServeConfig& cfg,
                                   const volatile std::sig_atomic_t* stop,
                                   ServePorts* ports);

}  // namespace lcdc::dsm
