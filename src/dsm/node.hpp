// One DSM node: the transport-agnostic engine behind `lcdc serve`.
//
// Node i hosts the two roles of the paper's co-located configuration:
// processing node i (a sim::Processor driving the cache-side protocol)
// and home shard N+i (a proto::DirectoryController owning every block b
// with b % N == i).  Both are the *same* pure transition systems the
// simulator and model checker drive; the engine only adds what a real
// distributed runtime needs — frame routing, a transport-level Lamport
// clock, program-chunk execution for load clients, and the event stream
// to the certifier.
//
// The engine performs no I/O itself: incoming frames are pushed through
// onFrame(), outgoing frames leave through the FrameShip interface, and
// pump() advances one scheduling quantum.  The TCP runtime calls these
// from a per-node thread's poll loop; the deterministic loopback runtime
// calls them from a single-threaded round-robin scheduler — same engine,
// byte-identical frames.
//
// Transport Lamport clock (wire.hpp): ++ on every emitted event and sent
// message; max-merge + 1 on every received message.  Because a node's
// events and sends interleave on one monotone clock, any cross-node
// effect carries a strictly larger clock than its cause — the certifier's
// (clock, node, seq) merge therefore linearizes the per-node event
// streams consistently with causality, which is exactly what the
// streaming checkers assume (e.g. a home's onSerialize always precedes
// the remote onStamp events of the same transaction).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "dsm/wire.hpp"
#include "proto/directory.hpp"
#include "sim/processor.hpp"
#include "trace/codec.hpp"

namespace lcdc::dsm {

/// Logical destination of an outgoing frame; the runtime maps it to a
/// connection (TCP) or an inbox (loopback).
struct Endpoint {
  enum class Kind : std::uint8_t { Peer, Certifier, Client };
  Kind kind = Kind::Peer;
  std::uint32_t id = 0;  ///< peer node id (Kind::Peer only)
};

/// Frame egress interface implemented by each runtime.
class FrameShip {
 public:
  virtual ~FrameShip() = default;
  virtual void ship(const Endpoint& to, const Frame& frame) = 0;
};

/// Per-node runtime counters (the deterministic part of the stats block).
struct NodeStats {
  std::uint64_t opsBound = 0;
  std::uint64_t chunksDone = 0;
  std::uint64_t msgsSent = 0;      ///< MSG frames shipped to peers
  std::uint64_t msgsReceived = 0;  ///< MSG frames delivered from peers
  std::uint64_t eventsEmitted = 0;
  std::uint64_t heartbeats = 0;
  /// Chunk execution latencies in pump quanta (wall-clock latency is the
  /// runtime's to measure; this one is deterministic in loopback mode).
  std::vector<std::uint64_t> chunkPumpLatency;
};

class NodeEngine {
 public:
  /// `cfg` must be the co-located shape: numProcessors == numDirectories
  /// == the node count; node ids 0..N-1 are processors, N+i is node i's
  /// home shard.
  NodeEngine(NodeId node, const SystemConfig& cfg, FrameShip& ship,
             std::uint64_t heartbeatEveryPumps = 16);
  ~NodeEngine();

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t clock() const { return clock_; }

  /// Handle one decoded frame (Msg from a peer, Program from a client).
  void onFrame(const Frame& f);

  /// One scheduling quantum: advance the node's tick, let the processor
  /// progress (bind ops, issue/retry requests), roll chunks over, and
  /// heartbeat the certifier when due.
  void pump();

  /// Stop accepting queued program chunks (graceful-shutdown path: the
  /// chunk being executed still completes so the protocol drains to a
  /// complete event stream).
  void abandonQueuedChunks();

  /// The final chunk (ProgramFrame::last) has fully executed.
  [[nodiscard]] bool loadDone() const { return loadDone_; }

  /// Locally drained: nothing queued, processor idle, every owned
  /// directory entry non-busy.  (In-flight frames are the runtime's to
  /// account for — see the serve supervisor's sent==received check.)
  [[nodiscard]] bool quiet() const;

  /// Ship the event stream's FIN.  Call exactly once, after quiescence.
  void finishEvents();

 private:
  /// proto::Observer that wraps every protocol event into an EventFrame
  /// tagged with the node's transport clock.
  class WireSink;

  void emitEvent(const trace::EventRecord& e);
  /// Route the scratch outbox: local destinations loop back through the
  /// work queue, remote ones ship as MSG frames.  `logicalSrc` stamps
  /// Message::src (the network layer's job in the simulator).
  void flushOutbox(NodeId logicalSrc);
  void drainWork();
  void startNextChunk();
  void noteChunkDoneIfReady();

  [[nodiscard]] NodeId physOf(NodeId logical) const {
    return logical < cfg_.numProcessors ? logical
                                        : logical - cfg_.numProcessors;
  }

  NodeId node_;
  SystemConfig cfg_;
  FrameShip* ship_;
  std::uint64_t heartbeatEvery_;

  std::unique_ptr<WireSink> sink_;
  proto::TxnCounter txns_;
  std::unique_ptr<sim::Processor> proc_;
  std::unique_ptr<proto::DirectoryController> dir_;
  proto::Outbox outbox_;
  std::deque<proto::Outbox::Entry> work_;

  std::uint64_t clock_ = 0;  ///< transport Lamport clock
  std::uint64_t seq_ = 0;    ///< event stream sequence number
  net::Tick tick_ = 0;       ///< local tick (retry pacing)
  std::uint64_t pumps_ = 0;
  std::uint64_t lastEventSeqAtHeartbeat_ = 0;

  std::deque<ProgramFrame> chunkQueue_;
  /// Steps in all *completed* chunks: chunk-relative OpRecord::progIdx is
  /// rebased by this so the certifier sees one contiguous program order
  /// per processor (the program-order checker requires monotone indices).
  std::uint64_t progBase_ = 0;
  std::uint64_t currentChunkSteps_ = 0;
  bool haveChunk_ = false;
  bool chunkIsLast_ = false;
  std::uint64_t currentChunk_ = 0;
  std::uint64_t chunkStartPump_ = 0;
  bool loadDone_ = false;
  bool finished_ = false;

  NodeStats stats_;
};

}  // namespace lcdc::dsm
