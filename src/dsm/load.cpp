#include "dsm/load.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <memory>
#include <mutex>
#include <poll.h>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/expect.hpp"
#include "dsm/transport.hpp"
#include "dsm/wire.hpp"

namespace lcdc::dsm {

namespace {

/// One node's client-side session state.
struct NodeSession {
  std::uint32_t node = 0;
  std::unique_ptr<Conn> conn;
  std::vector<ProgramFrame> chunks;
  std::size_t sent = 0;
  std::uint64_t done = 0;
  std::uint64_t finalOps = 0;
  bool finished = false;
  std::deque<std::uint64_t> sendMs;  ///< send times of outstanding chunks
};

/// Drive a set of node sessions to completion; RTTs append to `rtts`.
void driveSessions(std::vector<NodeSession*>& sessions, std::uint32_t window,
                   std::vector<double>& rtts) {
  std::vector<pollfd> pfds;
  std::vector<Frame> frames;

  const auto pushChunks = [&](NodeSession& s) {
    while (s.sent < s.chunks.size() && s.sendMs.size() < window) {
      s.conn->queue(Frame{s.chunks[s.sent]});
      s.sendMs.push_back(monotonicMs());
      s.sent += 1;
    }
  };
  for (NodeSession* s : sessions) pushChunks(*s);

  for (;;) {
    bool allDone = true;
    bool wantWrite = false;
    for (NodeSession* s : sessions) {
      if (!s->finished) allDone = false;
      if (s->conn->wantWrite()) {
        wantWrite = true;
        if (!s->conn->writePending()) {
          throw SimError("node connection failed during load");
        }
      }
    }
    if (allDone) return;

    pfds.clear();
    for (NodeSession* s : sessions) {
      pfds.push_back(pollfd{s->conn->fd(), POLLIN, 0});
    }
    (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                 wantWrite ? 0 : 10);

    for (NodeSession* s : sessions) {
      if (s->finished) continue;
      frames.clear();
      if (!s->conn->readFrames(frames)) {
        throw SimError("serve closed the connection mid-session (node " +
                       std::to_string(s->node) + ")");
      }
      for (const Frame& f : frames) {
        if (std::holds_alternative<HelloFrame>(f)) continue;  // late reply
        const auto* d = std::get_if<ChunkDoneFrame>(&f);
        LCDC_EXPECT(d != nullptr, "unexpected frame kind from serve");
        LCDC_EXPECT(!s->sendMs.empty(), "CHUNK_DONE without outstanding chunk");
        rtts.push_back(
            static_cast<double>(monotonicMs() - s->sendMs.front()));
        s->sendMs.pop_front();
        s->done += 1;
        s->finalOps = d->opsBound;
        if (d->chunk + 1 == s->chunks.size()) s->finished = true;
        pushChunks(*s);
      }
    }
  }
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - std::floor(idx);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

/// Blocking HELLO exchange on a fresh client connection.
HelloFrame awaitHello(Conn& conn) {
  std::vector<Frame> frames;
  const std::uint64_t t0 = monotonicMs();
  for (;;) {
    if (conn.wantWrite() && !conn.writePending()) {
      throw SimError("connection failed during the hello exchange");
    }
    if (!conn.readFrames(frames)) {
      throw SimError("serve closed the connection during the hello exchange");
    }
    for (Frame& f : frames) {
      if (auto* h = std::get_if<HelloFrame>(&f)) {
        LCDC_EXPECT(h->version == kWireVersion, "wire version mismatch");
        return *h;
      }
    }
    LCDC_EXPECT(monotonicMs() - t0 < 10'000, "no hello reply from the serve");
    pollfd p{conn.fd(), POLLIN, 0};
    (void)::poll(&p, 1, 10);
  }
}

}  // namespace

LoadResult runLoad(const LoadConfig& cfg) {
  LCDC_EXPECT(cfg.totalOps >= 1, "load needs at least one operation");
  const std::uint64_t t0 = monotonicMs();
  LoadResult r;

  // Probe node 0 for the topology and configuration.
  const auto nodePort = [&](std::uint32_t i) {
    if (!cfg.nodePorts.empty()) {
      LCDC_EXPECT(i < cfg.nodePorts.size(),
                  "serve announced more nodes than --node-ports given");
      return cfg.nodePorts[i];
    }
    return static_cast<std::uint16_t>(cfg.port + 1 + i);
  };
  std::vector<NodeSession> sessions;
  HelloFrame clientHello;
  clientHello.role = Role::Client;
  clientHello.sender = 0;

  const DialResult probe = dial(nodePort(0), 100, 10);
  r.dialRetries += probe.retries;
  sessions.emplace_back();
  sessions[0].conn = std::make_unique<Conn>(probe.fd);
  sessions[0].conn->queue(Frame{clientHello});
  const HelloFrame serveHello = awaitHello(*sessions[0].conn);
  const std::uint32_t n = serveHello.nodes;
  LCDC_EXPECT(n >= 1, "serve announced no nodes");
  r.nodes = n;

  for (std::uint32_t i = 1; i < n; ++i) {
    const DialResult d = dial(nodePort(i), 100, 10);
    r.dialRetries += d.retries;
    sessions.emplace_back();
    sessions[i].node = i;
    sessions[i].conn = std::make_unique<Conn>(d.fd);
    HelloFrame h = clientHello;
    h.sender = i % std::max<std::uint32_t>(1, cfg.clients);
    sessions[i].conn->queue(Frame{h});
  }

  // Generate every node's program from the serve's announced shape — the
  // same deterministic generators the simulator runs.
  workload::WorkloadConfig wcfg;
  wcfg.seed = cfg.seed;
  wcfg.numProcessors = n;
  wcfg.numBlocks = serveHello.config.numBlocks;
  wcfg.wordsPerBlock = serveHello.config.proto.wordsPerBlock;
  wcfg.opsPerProcessor = std::max<std::uint64_t>(1, cfg.totalOps / n);
  const std::vector<workload::Program> programs =
      workload::make(cfg.kind, wcfg);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::size_t at = 0;
    std::uint64_t idx = 0;
    const workload::Program& prog = programs[i];
    do {
      ProgramFrame f;
      f.chunk = idx++;
      const std::size_t len = std::min<std::size_t>(
          std::max<std::uint32_t>(1, cfg.chunkSteps), prog.steps.size() - at);
      f.steps.assign(prog.steps.begin() + static_cast<std::ptrdiff_t>(at),
                     prog.steps.begin() + static_cast<std::ptrdiff_t>(at + len));
      at += len;
      f.last = at >= prog.steps.size();
      sessions[i].chunks.push_back(std::move(f));
    } while (at < prog.steps.size());
  }

  // Partition nodes across client threads and drive them to completion.
  const std::uint32_t effClients =
      std::min(std::max<std::uint32_t>(1, cfg.clients), n);
  const std::uint32_t window = std::max<std::uint32_t>(1, cfg.window);
  std::vector<std::vector<double>> rtts(effClients);
  std::vector<std::string> errors(effClients);
  std::vector<std::thread> threads;
  for (std::uint32_t c = 0; c < effClients; ++c) {
    threads.emplace_back([&, c] {
      try {
        std::vector<NodeSession*> mine;
        for (std::uint32_t i = c; i < n; i += effClients) {
          mine.push_back(&sessions[i]);
        }
        driveSessions(mine, window, rtts[c]);
      } catch (const std::exception& e) {
        errors[c] = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& e : errors) {
    if (!e.empty()) throw SimError("load client failed: " + e);
  }

  std::vector<double> allRtts;
  for (std::vector<double>& v : rtts) {
    allRtts.insert(allRtts.end(), v.begin(), v.end());
    r.chunksDone += v.size();
  }
  for (const NodeSession& s : sessions) r.opsBound += s.finalOps;
  r.seconds = static_cast<double>(monotonicMs() - t0) / 1000.0;
  r.opsPerSec = r.seconds > 0
                    ? static_cast<double>(r.opsBound) / r.seconds
                    : 0;
  r.p50Ms = percentile(allRtts, 0.50);
  r.p99Ms = percentile(allRtts, 0.99);
  return r;
}

}  // namespace lcdc::dsm
