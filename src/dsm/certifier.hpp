// The certifier: merges per-node event streams into one causally
// consistent stream and runs the full streaming checker suite over it,
// live.
//
// Each node's EVENT frames arrive in (clock, seq) order on that node's
// connection, but across connections arrival order is arbitrary.  The
// certifier runs a k-way merge keyed by (clock, node, seq): a queued head
// is released only when every other unfinished stream either has a queued
// event to compare against or has advanced its clock watermark past the
// head (heartbeats and FIN raise the watermark while a node is silent).
// Per-node clocks are strictly monotone and max-merged across messages,
// so the merged order is consistent with causality — in particular a
// transaction's home-side serialization always precedes the remote stamps
// it caused, which is the delivery contract verify::StreamCheckerSet
// needs.
//
// The engine is transport-agnostic and single-threaded: the TCP runtime
// feeds it from the certifier thread's poll loop, the loopback runtime
// from the round-robin scheduler.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "dsm/wire.hpp"
#include "proto/observer.hpp"
#include "verify/stream.hpp"

namespace lcdc::dsm {

/// Certifier-side counters for the stats block.
struct CertifierStats {
  std::uint64_t eventsMerged = 0;
  std::uint64_t heartbeats = 0;
  /// Peak number of events buffered across the merge queues — the
  /// "checker lag" metric: how far certification trailed the fastest
  /// node at its worst.
  std::size_t peakLag = 0;
  [[nodiscard]] std::size_t checkerBytes() const { return checkerBytes_; }
  std::size_t checkerBytes_ = 0;
};

class CertifierEngine {
 public:
  explicit CertifierEngine(std::uint32_t nodes);
  ~CertifierEngine();

  /// Extra sinks (e.g. a trace::Trace archiving the merged stream) see
  /// every merged event after the checkers.  Borrowed; attach before the
  /// first hello.
  void attachExtra(proto::EventSink& sink);

  /// First HELLO configures the checker suite from the announced
  /// SystemConfig; later HELLOs must agree.
  void onHello(const HelloFrame& h);
  void onEvent(std::uint32_t node, const EventFrame& f);
  void onHeartbeat(std::uint32_t node, const HeartbeatFrame& f);
  void onFin(std::uint32_t node, const FinFrame& f);

  [[nodiscard]] bool configured() const { return checkers_ != nullptr; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] bool allFinished() const { return finCount_ == nodes_; }
  [[nodiscard]] std::size_t lag() const;
  [[nodiscard]] const CertifierStats& stats() const { return stats_; }

  /// End of certification: flush the merge queues (requires every stream
  /// FINished — enforced), finish the checkers, return the verdict.
  /// `opsBound` feeds the synthesized RunResult handed to onRunEnd
  /// observers.
  verify::CheckReport finish(std::uint64_t opsBound);

 private:
  struct Stream {
    std::deque<EventFrame> q;
    std::uint64_t watermark = 0;  ///< future events have clock > this
    std::uint64_t nextSeq = 0;    ///< gap detection
    bool finished = false;
  };

  void release();  ///< merge-release every provably-safe head
  void dispatch(const EventFrame& f);

  std::uint32_t nodes_;
  std::vector<Stream> streams_;
  std::uint32_t finCount_ = 0;

  SystemConfig config_{};
  std::unique_ptr<verify::StreamCheckerSet> checkers_;
  proto::TeeSink tee_;  ///< checkers + extras, in that order
  std::vector<proto::EventSink*> extras_;

  CertifierStats stats_;
};

}  // namespace lcdc::dsm
