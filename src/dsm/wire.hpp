// The dsm wire format: versioned, length-prefixed frames carrying the
// directory protocol between nodes and the event stream to the certifier.
//
// Every frame is [u32 little-endian payload length][payload]; payload
// byte 0 is the frame type, the rest is varint-encoded through the shared
// trace codec (trace/codec.hpp) — the same byte-level vocabulary the
// model checker's world blobs and archived binary traces use, so
// proto::Message and the EventSink records have exactly one encoding.
//
// Version negotiation: every connection opens with a HELLO carrying
// kWireVersion; a receiver rejects mismatched versions by closing the
// connection (the dialer's retry/backoff surfaces the failure).  The
// frame-type space is append-only; unknown types are a hard decode error,
// so any vocabulary change bumps kWireVersion.
//
// Lamport clocks on the wire: each node runs a transport-level Lamport
// clock (ticked on every emitted event and sent message, max-merged on
// receipt).  MSG and EVENT frames carry it; the certifier k-way-merges
// per-node event streams by (clock, node, seq), which linearizes the
// streams consistently with causality — the property the online checkers
// need (a transaction's home serialization is always merged before any
// remote stamp it caused).  HEARTBEAT frames advance a silent node's
// merge watermark so one idle node cannot stall certification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "common/config.hpp"
#include "proto/messages.hpp"
#include "trace/codec.hpp"
#include "workload/program.hpp"

namespace lcdc::dsm {

inline constexpr std::uint64_t kWireVersion = 1;

/// Who is opening a connection (HELLO), from the dialer's perspective.
enum class Role : std::uint8_t {
  Peer = 0,    ///< a node dialing a peer node (protocol messages)
  Events = 1,  ///< a node dialing the certifier (event stream)
  Client = 2,  ///< a load client dialing a node (programs / completions)
};

struct HelloFrame {
  std::uint64_t version = kWireVersion;
  Role role = Role::Peer;
  /// Dialing node's id (nodes); client index (clients); certifier: unused.
  std::uint32_t sender = 0;
  /// Topology size, so both ends agree on the processor/home id split.
  std::uint32_t nodes = 0;
  /// The serving configuration.  Nodes announce it; the certifier derives
  /// its VerifyConfig from the first HELLO, and load clients build their
  /// workload from the acceptor's reply.
  SystemConfig config;
};

/// One directory-protocol message, node to node.  `dst` is the *logical*
/// protocol id (processor p < N, home shard N+p); the transport routes it
/// to the hosting node.
struct MsgFrame {
  std::uint64_t clock = 0;
  NodeId dst = kNoNode;
  proto::Message msg;
};

/// One protocol event for the certifier, tagged with the emitting node's
/// transport clock and a per-node sequence number (gap detection).
struct EventFrame {
  std::uint64_t clock = 0;
  std::uint64_t seq = 0;
  trace::EventRecord event;
};

/// Clock watermark from an idle node: every future event from the sender
/// has clock strictly greater than this.
struct HeartbeatFrame {
  std::uint64_t clock = 0;
};

/// End of an event stream: `events` is the total EVENT frames sent, so
/// the certifier can assert nothing was lost.
struct FinFrame {
  std::uint64_t clock = 0;
  std::uint64_t events = 0;
};

/// A chunk of a processor's program from a load client.  Chunks execute
/// in order; `last` marks the final chunk of the load session.
struct ProgramFrame {
  std::uint64_t chunk = 0;
  bool last = false;
  std::vector<workload::Step> steps;
};

/// Node -> client: chunk fully executed (every LD/ST bound, store buffer
/// drained).  `opsBound` is the node's cumulative bound-operation count.
struct ChunkDoneFrame {
  std::uint64_t chunk = 0;
  std::uint64_t opsBound = 0;
};

using Frame = std::variant<HelloFrame, MsgFrame, EventFrame, HeartbeatFrame,
                           FinFrame, ProgramFrame, ChunkDoneFrame>;

/// Serialize `f` (length prefix included) appending to `out`.
void encodeFrame(const Frame& f, std::vector<std::byte>& out);

/// Incremental frame decoder over a byte stream.  feed() bytes as they
/// arrive; next() yields complete frames (throws SimError on a malformed
/// or oversized frame — wire corruption is always fatal for the
/// connection).
class FrameDecoder {
 public:
  /// Frames larger than this are rejected as corruption.
  static constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 26;

  void feed(const std::byte* data, std::size_t n);
  [[nodiscard]] std::optional<Frame> next();
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
};

}  // namespace lcdc::dsm
