#include "dsm/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "common/expect.hpp"

namespace lcdc::dsm {

namespace {

void setNonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  LCDC_EXPECT(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "cannot make socket nonblocking");
}

void setNodelay(int fd) {
  const int one = 1;
  // Best effort: latency tuning, not correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopbackAddr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

std::uint64_t monotonicMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  LCDC_EXPECT(fd_ >= 0, "cannot create listening socket");
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopbackAddr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw SimError("cannot bind 127.0.0.1:" + std::to_string(port) + ": " +
                   err);
  }
  LCDC_EXPECT(::listen(fd_, 64) == 0, "cannot listen on socket");
  setNonblocking(fd_);
  socklen_t len = sizeof(addr);
  LCDC_EXPECT(
      ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "cannot read the bound port");
  port_ = ntohs(addr.sin_port);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

int Listener::acceptOne() const {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return -1;
  setNonblocking(fd);
  setNodelay(fd);
  return fd;
}

DialResult dial(std::uint16_t port, std::uint32_t maxAttempts,
                std::uint32_t backoffMs) {
  DialResult r;
  for (std::uint32_t attempt = 0; attempt < maxAttempts; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    LCDC_EXPECT(fd >= 0, "cannot create socket");
    sockaddr_in addr = loopbackAddr(port);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      setNonblocking(fd);
      setNodelay(fd);
      r.fd = fd;
      return r;
    }
    ::close(fd);
    r.retries += 1;
    // Linear backoff: peers race through startup in arbitrary order, and
    // the refused-connection window is short.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoffMs * (attempt + 1)));
  }
  throw SimError("cannot connect to 127.0.0.1:" + std::to_string(port) +
                 " after " + std::to_string(maxAttempts) + " attempts");
}

Conn::Conn(int fd) : fd_(fd), lastRxMs_(monotonicMs()) {
  LCDC_EXPECT(fd_ >= 0, "Conn needs a valid fd");
}

Conn::~Conn() {
  if (fd_ >= 0) ::close(fd_);
}

void Conn::queue(const Frame& f) {
  // Compact once the consumed prefix dominates (same policy as the
  // decoder's buffer).
  if (outPos_ > 4096 && outPos_ * 2 > out_.size()) {
    out_.erase(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(outPos_));
    outPos_ = 0;
  }
  encodeFrame(f, out_);
}

bool Conn::readFrames(std::vector<Frame>& out) {
  std::byte buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      bytesIn_ += static_cast<std::uint64_t>(n);
      lastRxMs_ = monotonicMs();
      dec_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // orderly close
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  while (auto f = dec_.next()) out.push_back(std::move(*f));
  return true;
}

bool Conn::writePending() {
  while (outPos_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + outPos_, out_.size() - outPos_,
                             MSG_NOSIGNAL);
    if (n > 0) {
      bytesOut_ += static_cast<std::uint64_t>(n);
      outPos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  if (outPos_ == out_.size()) {
    out_.clear();
    outPos_ = 0;
  }
  return true;
}

void Conn::flushBlocking() {
  while (wantWrite()) {
    if (!writePending()) {
      throw SimError("connection failed while flushing");
    }
    if (!wantWrite()) break;
    pollfd p{};
    p.fd = fd_;
    p.events = POLLOUT;
    (void)::poll(&p, 1, 100);
  }
}

}  // namespace lcdc::dsm
