#include "dsm/node.hpp"

#include <utility>

#include "common/expect.hpp"
#include "proto/observer.hpp"

namespace lcdc::dsm {

// Every protocol event becomes an EventFrame for the certifier, tagged
// with the node's transport clock at emission.  Orders are left 0: the
// *certifier* assigns real-time observation order as it merges, which is
// the order the streaming checkers' Claim 2 reasoning is about.
class NodeEngine::WireSink final : public proto::Observer {
 public:
  explicit WireSink(NodeEngine& owner) : owner_(&owner) {}

  void onRunBegin(const SystemConfig&) override {}
  void onRunEnd(const RunResult&) override {}
  void onSerialize(const proto::TxnInfo& txn) override {
    owner_->emitEvent(trace::SerializeRecord{txn, 0});
  }
  void onTxnConverted(TransactionId id, TxnKind newKind) override {
    owner_->emitEvent(trace::ConvertRecord{id, newKind, 0});
  }
  void onStamp(NodeId node, TransactionId txn, SerialIdx serial, BlockId block,
               proto::StampRole role, GlobalTime ts, AState oldA,
               AState newA) override {
    owner_->emitEvent(
        trace::StampRecord{node, txn, serial, block, role, ts, oldA, newA, 0});
  }
  void onValueReceived(NodeId node, TransactionId txn, BlockId block,
                       const BlockValue& value) override {
    owner_->emitEvent(trace::ValueRecord{node, txn, block, value, 0});
  }
  void onOperation(const proto::OpRecord& op) override {
    // Chunk-relative -> whole-session program index (see progBase_).
    proto::OpRecord global = op;
    global.progIdx += owner_->progBase_;
    owner_->emitEvent(global);
  }
  void onNack(NodeId requester, BlockId block, NackKind kind) override {
    owner_->emitEvent(trace::NackRecord{requester, block, kind, 0});
  }
  void onPutShared(NodeId node, BlockId block) override {
    owner_->emitEvent(trace::PutSharedRecord{node, block, 0});
  }
  void onDeadlockResolved(NodeId node, BlockId block,
                          NodeId impliedAcker) override {
    owner_->emitEvent(trace::DeadlockRecord{node, block, impliedAcker, 0});
  }

 private:
  NodeEngine* owner_;
};

NodeEngine::NodeEngine(NodeId node, const SystemConfig& cfg, FrameShip& ship,
                       std::uint64_t heartbeatEveryPumps)
    : node_(node),
      cfg_(cfg),
      ship_(&ship),
      heartbeatEvery_(heartbeatEveryPumps) {
  LCDC_EXPECT(cfg_.numProcessors == cfg_.numDirectories,
              "dsm nodes co-locate one processor with one home shard");
  LCDC_EXPECT(node_ < cfg_.numProcessors, "dsm node id out of range");
  LCDC_EXPECT(heartbeatEvery_ >= 1, "heartbeat interval must be positive");

  // Partition the transaction-id space by node so shards allocate globally
  // unique ids without coordination (2^40 transactions per shard dwarfs
  // any load session).
  txns_.next.store(1 + (static_cast<TransactionId>(node_) << 40),
                   std::memory_order_relaxed);

  sink_ = std::make_unique<WireSink>(*this);
  proc_ = std::make_unique<sim::Processor>(
      node_, cfg_, *sink_, Rng(cfg_.seed ^ (0x70726F63ULL + node_)));
  dir_ = std::make_unique<proto::DirectoryController>(
      cfg_.numProcessors + node_, cfg_.proto, *sink_, txns_);
  for (BlockId b = 0; b < cfg_.numBlocks; ++b) {
    if (b % cfg_.numDirectories == node_) {
      dir_->addBlock(b, BlockValue(cfg_.proto.wordsPerBlock, 0));
    }
  }
}

NodeEngine::~NodeEngine() = default;

void NodeEngine::emitEvent(const trace::EventRecord& e) {
  ++clock_;
  EventFrame f;
  f.clock = clock_;
  f.seq = seq_++;
  f.event = e;
  ++stats_.eventsEmitted;
  ship_->ship(Endpoint{Endpoint::Kind::Certifier, 0}, Frame{std::move(f)});
}

void NodeEngine::flushOutbox(NodeId logicalSrc) {
  for (auto& entry : outbox_.msgs) {
    entry.msg.src = logicalSrc;  // the network layer's job in the simulator
    const NodeId host = physOf(entry.dst);
    if (host == node_) {
      work_.push_back(std::move(entry));
    } else {
      ++clock_;
      ++stats_.msgsSent;
      MsgFrame m;
      m.clock = clock_;
      m.dst = entry.dst;
      m.msg = std::move(entry.msg);
      ship_->ship(Endpoint{Endpoint::Kind::Peer, host}, Frame{std::move(m)});
    }
  }
  outbox_.clear();
}

void NodeEngine::drainWork() {
  while (!work_.empty()) {
    proto::Outbox::Entry entry = std::move(work_.front());
    work_.pop_front();
    if (entry.dst < cfg_.numProcessors) {
      proc_->deliver(entry.msg, outbox_);
      flushOutbox(entry.dst);
      // Completion callbacks may have unblocked the program; let the
      // processor issue its next request right away (mirrors the
      // simulator's dispatch -> progress sequencing).
      (void)proc_->tryProgress(tick_, outbox_);
      flushOutbox(entry.dst);
    } else {
      dir_->handle(entry.msg, outbox_);
      flushOutbox(entry.dst);
    }
  }
}

void NodeEngine::onFrame(const Frame& f) {
  if (const auto* m = std::get_if<MsgFrame>(&f)) {
    clock_ = std::max(clock_, m->clock) + 1;
    ++stats_.msgsReceived;
    LCDC_EXPECT(physOf(m->dst) == node_, "MSG frame routed to wrong node");
    work_.push_back(proto::Outbox::Entry{m->dst, m->msg});
    drainWork();
    noteChunkDoneIfReady();
  } else if (const auto* p = std::get_if<ProgramFrame>(&f)) {
    chunkQueue_.push_back(*p);
    startNextChunk();
  } else {
    throw SimError("unexpected frame kind at dsm node");
  }
}

void NodeEngine::startNextChunk() {
  if (haveChunk_ || chunkQueue_.empty()) return;
  ProgramFrame p = std::move(chunkQueue_.front());
  chunkQueue_.pop_front();
  progBase_ += currentChunkSteps_;
  currentChunkSteps_ = p.steps.size();
  currentChunk_ = p.chunk;
  chunkIsLast_ = p.last;
  chunkStartPump_ = pumps_;
  haveChunk_ = true;
  proc_->setProgram(workload::Program{std::move(p.steps)});
}

void NodeEngine::noteChunkDoneIfReady() {
  while (haveChunk_ && proc_->done()) {
    haveChunk_ = false;
    ++stats_.chunksDone;
    stats_.opsBound = proc_->opsBound();
    stats_.chunkPumpLatency.push_back(pumps_ - chunkStartPump_);
    if (chunkIsLast_) loadDone_ = true;
    ChunkDoneFrame done;
    done.chunk = currentChunk_;
    done.opsBound = proc_->opsBound();
    ship_->ship(Endpoint{Endpoint::Kind::Client, 0}, Frame{done});
    startNextChunk();
    if (haveChunk_) {
      (void)proc_->tryProgress(tick_, outbox_);
      flushOutbox(node_);
      drainWork();
    }
  }
}

void NodeEngine::pump() {
  ++pumps_;
  ++tick_;
  startNextChunk();
  (void)proc_->tryProgress(tick_, outbox_);
  flushOutbox(node_);
  drainWork();
  noteChunkDoneIfReady();

  if (!finished_ && pumps_ % heartbeatEvery_ == 0) {
    if (seq_ == lastEventSeqAtHeartbeat_) {
      // Idle since the last beat: advance the certifier's merge watermark
      // (every future event carries clock > clock_).
      ++stats_.heartbeats;
      ship_->ship(Endpoint{Endpoint::Kind::Certifier, 0},
                  Frame{HeartbeatFrame{clock_}});
    }
    lastEventSeqAtHeartbeat_ = seq_;
  }
}

void NodeEngine::abandonQueuedChunks() {
  chunkQueue_.clear();
  // The chunk in flight still runs to completion so the event stream
  // drains to a checker-complete state.
}

bool NodeEngine::quiet() const {
  return !haveChunk_ && chunkQueue_.empty() && work_.empty() &&
         proc_->done() && proc_->cache().quiescent() && dir_->quiescent();
}

void NodeEngine::finishEvents() {
  LCDC_EXPECT(!finished_, "finishEvents called twice");
  finished_ = true;
  ship_->ship(Endpoint{Endpoint::Kind::Certifier, 0},
              Frame{FinFrame{clock_, seq_}});
}

}  // namespace lcdc::dsm
