// `lcdc load`: the TCP load driver for a running `lcdc serve`.
//
// The driver probes node 0 for the serve topology and configuration
// (HELLO exchange), generates every node's program deterministically from
// the workload seed — the exact generators the simulator uses — and
// streams them to the nodes in windowed chunks, measuring chunk
// completion round-trips.  The serve side certifies; the load side only
// measures: ops/s and latency come from here, the verdict from the
// certifier.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/generators.hpp"

namespace lcdc::dsm {

struct LoadConfig {
  /// Base (certifier) port of the target serve; node i is at port+1+i.
  std::uint16_t port = 0;
  /// Explicit node ports, overriding the port+1+i derivation — for serves
  /// bound to ephemeral ports (in-process tests pass ServePorts::node).
  std::vector<std::uint16_t> nodePorts;
  /// Total operations across all nodes (split evenly).
  std::uint64_t totalOps = 100'000;
  /// Client threads; each drives the nodes with id % clients == its index
  /// (capped at the node count).
  std::uint32_t clients = 1;
  workload::Kind kind = workload::Kind::Uniform;
  std::uint64_t seed = 1;
  std::uint32_t chunkSteps = 1024;
  /// Outstanding chunks per node (pipeline depth).
  std::uint32_t window = 2;
};

struct LoadResult {
  std::uint32_t nodes = 0;       ///< topology learned from the serve
  std::uint64_t opsBound = 0;    ///< sum of the nodes' final bound counts
  std::uint64_t chunksDone = 0;
  std::uint64_t dialRetries = 0;
  double seconds = 0;
  double opsPerSec = 0;
  /// Chunk completion round-trip percentiles (pipeline latency: send of
  /// the chunk to its CHUNK_DONE, queueing included).
  double p50Ms = 0;
  double p99Ms = 0;
};

/// Run one load session against the serve at `cfg.port`.  Throws SimError
/// when the serve is unreachable or a connection fails mid-session.
[[nodiscard]] LoadResult runLoad(const LoadConfig& cfg);

}  // namespace lcdc::dsm
